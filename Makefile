GO ?= go

.PHONY: build test race vet fmt bench bench-go check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# bench measures the ingest→fire→emit hot path and the storage-level
# consumption primitives at several basket depths, writing the perf
# trajectory (with the pre-chunking baseline) to BENCH_results.json.
bench:
	$(GO) run ./cmd/hotpathbench -o BENCH_results.json

# bench-go runs the paper-experiment testing.B benchmarks once each.
bench-go:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

check: build vet fmt test
