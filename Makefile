GO ?= go

.PHONY: build test race vet vet-tool lint fmt bench bench-go bench-profile bench-sched bench-partitioned bench-partitioned-smoke bench-windowed bench-windowed-smoke bench-join bench-join-smoke bench-durability bench-durability-smoke bench-obs bench-obs-smoke bench-multiquery bench-multiquery-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# vet-tool builds the repository's vet binary once so vet/lint runs
# reuse it instead of recompiling through `go run`.
VET_TOOL := bin/datacell-vet

vet-tool:
	$(GO) build -o $(VET_TOOL) ./cmd/datacell-vet

# vet runs the stock `go vet` passes plus the custom invariant analyzers
# (lockorder, atomicmix, capturerestore, errcmp — see docs/INVARIANTS.md
# and lockorder.conf).
vet: vet-tool
	./$(VET_TOOL) ./...

# lint is vet plus the external linters. staticcheck (curated set in
# staticcheck.conf) and govulncheck run only when installed: the CI lint
# job installs pinned versions; a hermetic local toolchain skips them
# with a notice.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipped (CI lint job runs it)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo "govulncheck ./..."; govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; skipped (CI lint job runs it)"; \
	fi

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# bench measures the ingest→fire→emit hot path, the storage-level
# consumption primitives at several basket depths, and the partitioned
# single-query throughput at GOMAXPROCS 1/2/4 and 1/2/4 shards, writing
# the perf trajectory (with the pre-chunking baseline) to
# BENCH_results.json.
bench:
	$(GO) run ./cmd/hotpathbench -o BENCH_results.json

# bench-partitioned runs only the partitioned-throughput scenario at
# -cpus 1,2,4 (full workload) and prints the report to stdout.
bench-partitioned:
	$(GO) run ./cmd/hotpathbench -scenario partitioned -cpus 1,2,4 -o -

# bench-partitioned-smoke is the CI sanity run: tiny workload, still
# exercising the sharded ingest → shard pipelines → merge path.
bench-partitioned-smoke:
	$(GO) run ./cmd/hotpathbench -scenario partitioned -smoke -cpus 1,2,4 -o -

# bench-windowed runs the event-time windowed throughput scenario:
# flat vs sharded, in-order vs 10%-disordered input.
bench-windowed:
	$(GO) run ./cmd/hotpathbench -scenario windowed -cpus 1,2,4 -o -

# bench-windowed-smoke is the CI sanity run for the watermarked
# windowed path (sharded window runners + window-aligned merge).
bench-windowed-smoke:
	$(GO) run ./cmd/hotpathbench -scenario windowed -smoke -cpus 1,2,4 -o -

# bench-join runs the streaming-join throughput scenario: stream-stream
# symmetric-hash join with a WITHIN band (flat vs co-partitioned) and
# stream-table enrichment (flat vs broadcast).
bench-join:
	$(GO) run ./cmd/hotpathbench -scenario join -cpus 1,2,4 -o -

# bench-join-smoke is the CI sanity run: tiny workload, still exercising
# symmetric state, expiry, and the broadcast table hash.
bench-join-smoke:
	$(GO) run ./cmd/hotpathbench -scenario join -smoke -cpus 1,2,4 -o -

# bench-durability runs the durability scenario: WAL-off vs WAL-on
# ingest throughput (group-committed batches from concurrent ingesters)
# and dirty-crash recovery time against logs of growing size.
bench-durability:
	$(GO) run ./cmd/hotpathbench -scenario durability -o -

# bench-durability-smoke is the CI sanity run: tiny workload, still
# exercising group commit, the copy-and-reopen crash image, and replay.
bench-durability-smoke:
	$(GO) run ./cmd/hotpathbench -scenario durability -smoke -o -

# bench-obs runs the instrumentation-overhead A/B: the partitioned
# workload with the observability layer on vs off, interleaved
# best-of-3; fails if the instrumentation tax exceeds 5% ns/tuple.
bench-obs:
	$(GO) run ./cmd/hotpathbench -scenario obs -o -

# bench-obs-smoke is the CI sanity run: tiny workload, looser (25%)
# overhead gate since scheduler noise dominates short runs.
bench-obs-smoke:
	$(GO) run ./cmd/hotpathbench -scenario obs -smoke -o -

# bench-multiquery runs the shared-scan multi-query scenario: N
# continuous filters over one stream at N = 1, 100, 10k — the routed
# shared scan (predicate-indexed routing, common-subplan sharing)
# against the naive per-query replica arrangement.
bench-multiquery:
	$(GO) run ./cmd/hotpathbench -scenario multiquery -o -

# bench-multiquery-smoke is the CI sanity run: tiny workload, replica
# arm capped at 100 queries; still registers 10k routed queries.
bench-multiquery-smoke:
	$(GO) run ./cmd/hotpathbench -scenario multiquery -smoke -o -

# bench-go runs the paper-experiment testing.B benchmarks once each.
bench-go:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# bench-profile reruns the partitioned scenario with CPU, allocation,
# mutex-contention, and blocking profiles armed, for hunting hot-path
# contention (inspect with `go tool pprof cpu.pprof` etc.). Profiling
# biases the timings, so the numbers printed here are not comparable to
# `make bench` output.
bench-profile:
	$(GO) run ./cmd/hotpathbench -scenario partitioned -cpus 1,4 -o - \
		-cpuprofile cpu.pprof -memprofile mem.pprof \
		-mutexprofile mutex.pprof -blockprofile block.pprof

# bench-sched runs the scheduler micro-benchmarks with -benchmem: the
# steady-state firing loop must report 0 allocs/op and ~0 claim-misses.
bench-sched:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/scheduler/

check: build vet fmt test
