GO ?= go

.PHONY: build test vet fmt bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

check: build vet fmt test
