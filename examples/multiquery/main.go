// Command multiquery demonstrates the paper's §2.5 processing strategies
// on one stream: N standing range queries run once under separate baskets
// (input replicated per query), once under shared baskets (one copy,
// watermarked), and once as a cascade of disjoint ranges (each stage sees
// only what earlier stages rejected). It prints the per-strategy
// throughput so the trade-offs are visible.
package main

import (
	"context"
	"fmt"
	"time"

	datacell "repro"
)

const (
	nQueries = 8
	nTuples  = 200_000
	domain   = 80 // values 0..79, ranges of width 10 per query
)

func makeRows() [][]datacell.Value {
	rows := make([][]datacell.Value, nTuples)
	for i := range rows {
		rows[i] = []datacell.Value{datacell.Int(int64(i*2654435761) % domain)}
	}
	return rows
}

func runStrategy(strategy datacell.Strategy) (time.Duration, int64) {
	ctx := context.Background()
	eng, err := datacell.Open(ctx, datacell.Config{})
	if err != nil {
		panic(err)
	}
	datacell.MustExec(eng, "CREATE BASKET s (v INT)")
	for i := 0; i < nQueries; i++ {
		lo, hi := i*10, (i+1)*10
		stmt := fmt.Sprintf(
			"CREATE CONTINUOUS QUERY q%d WITH (strategy = %s, polling = true) AS "+
				"SELECT * FROM [SELECT * FROM s] AS x WHERE x.v >= %d AND x.v < %d",
			i, strategy, lo, hi)
		datacell.MustExec(eng, stmt)
	}
	rows := makeRows()
	start := time.Now()
	if err := eng.Ingest(ctx, "s", rows); err != nil {
		panic(err)
	}
	eng.Drain()
	elapsed := time.Since(start)

	var matched int64
	for i := 0; i < nQueries; i++ {
		q, _ := eng.Query(fmt.Sprintf("q%d", i))
		matched += q.Stats().TuplesOut
	}
	return elapsed, matched
}

func runCascade() (time.Duration, int64) {
	ctx := context.Background()
	eng, err := datacell.Open(ctx, datacell.Config{})
	if err != nil {
		panic(err)
	}
	datacell.MustExec(eng, "CREATE BASKET s (v INT)")
	preds := make([]datacell.CascadePredicate, nQueries)
	for i := range preds {
		preds[i] = datacell.CascadePredicate{
			Attr: "v",
			Lo:   datacell.Int(int64(i * 10)),
			Hi:   datacell.Int(int64((i + 1) * 10)),
		}
	}
	c, err := eng.RegisterCascade("casc", "s", preds)
	if err != nil {
		panic(err)
	}
	rows := makeRows()
	start := time.Now()
	if err := eng.Ingest(ctx, "s", rows); err != nil {
		panic(err)
	}
	eng.Drain()
	elapsed := time.Since(start)

	var matched int64
	for i := 0; i < c.Stages(); i++ {
		for {
			select {
			case rel := <-c.Subscription(i).C():
				matched += int64(rel.NumRows())
				continue
			default:
			}
			break
		}
	}
	return elapsed, matched
}

func main() {
	fmt.Printf("%d disjoint range queries over %d tuples\n\n", nQueries, nTuples)
	fmt.Printf("%-18s %12s %14s %12s\n", "strategy", "elapsed", "tuples/s", "matched")
	for _, s := range []datacell.Strategy{datacell.SeparateBaskets, datacell.SharedBaskets} {
		elapsed, matched := runStrategy(s)
		fmt.Printf("%-18s %12v %14.0f %12d\n",
			s, elapsed.Round(time.Millisecond), float64(nTuples)/elapsed.Seconds(), matched)
	}
	elapsed, matched := runCascade()
	fmt.Printf("%-18s %12v %14.0f %12d\n",
		"cascade", elapsed.Round(time.Millisecond), float64(nTuples)/elapsed.Seconds(), matched)
	fmt.Println("\nshared avoids the per-query input copy; the cascade also shrinks")
	fmt.Println("the input for every later stage (disjoint predicates, §2.5).")
}
