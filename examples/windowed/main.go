// Command windowed runs sliding-window trading analytics over a synthetic
// tick stream: a 1000-trade window sliding by 100 computes per-symbol
// volume-weighted statistics, evaluated incrementally (per-pane summaries,
// §3.1's basic-window model). A second identical query runs in
// re-evaluation mode to show both strategies produce the same answers at
// different costs.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	datacell "repro"
)

const (
	nTrades = 50_000
	window  = 1000
	slide   = 100
)

var symbols = []string{"ACME", "WIDG", "GLOB", "NANO"}

func main() {
	ctx := context.Background()
	eng, err := datacell.Open(ctx, datacell.Config{})
	if err != nil {
		log.Fatal(err)
	}
	datacell.MustExec(eng, "CREATE BASKET trades (sym VARCHAR, price DOUBLE, qty INT)")

	query := fmt.Sprintf(`
		SELECT t.sym AS sym, COUNT(*) AS trades, AVG(t.price) AS avg_price,
		       MIN(t.price) AS low, MAX(t.price) AS high, SUM(t.qty) AS volume
		FROM [SELECT * FROM trades] AS t
		GROUP BY t.sym
		WINDOW ROWS %d SLIDE %d`, window, slide)

	// The two standing queries differ only in their WITH options — the
	// window evaluation strategy and the subscription depth are DDL.
	datacell.MustExec(eng, fmt.Sprintf(
		"CREATE CONTINUOUS QUERY stats_incremental WITH (window_mode = incremental, depth = 4096) AS %s", query))
	datacell.MustExec(eng, fmt.Sprintf(
		"CREATE CONTINUOUS QUERY stats_reeval WITH (window_mode = reeval, depth = 4096) AS %s", query))
	inc, err := eng.Query("stats_incremental")
	if err != nil {
		log.Fatal(err)
	}
	re, err := eng.Query("stats_reeval")
	if err != nil {
		log.Fatal(err)
	}

	// Generate the tick stream (deterministic).
	rng := rand.New(rand.NewSource(7))
	price := map[string]float64{}
	for _, s := range symbols {
		price[s] = 100
	}
	rows := make([][]datacell.Value, nTrades)
	for i := range rows {
		sym := symbols[rng.Intn(len(symbols))]
		price[sym] *= 1 + (rng.Float64()-0.5)/100
		rows[i] = []datacell.Value{
			datacell.Str(sym),
			datacell.Float(price[sym]),
			datacell.Int(int64(1 + rng.Intn(100))),
		}
	}

	start := time.Now()
	if err := eng.Ingest(ctx, "trades", rows); err != nil {
		log.Fatal(err)
	}
	eng.Drain()
	elapsed := time.Since(start)

	incWindows, reWindows := drain(inc), drain(re)
	if len(incWindows) != len(reWindows) {
		log.Fatalf("strategy disagreement: %d vs %d windows", len(incWindows), len(reWindows))
	}
	fmt.Printf("%d trades, window %d slide %d → %d window results per strategy (%.0f trades/s including both)\n\n",
		nTrades, window, slide, len(incWindows), float64(nTrades)/elapsed.Seconds())

	last := incWindows[len(incWindows)-1]
	fmt.Printf("latest result batch (may span windows):\n%-6s %8s %10s %10s %10s %9s\n",
		"sym", "trades", "avg", "low", "high", "volume")
	for i := 0; i < last.NumRows(); i++ {
		row := last.Row(i)
		fmt.Printf("%-6s %8d %10.2f %10.2f %10.2f %9d\n",
			row[0].S, row[1].I, row[2].F, row[3].F, row[4].F, row[5].I)
	}
}

func drain(q *datacell.Query) []*datacell.Relation {
	var out []*datacell.Relation
	for {
		select {
		case rel := <-q.Subscription().C():
			out = append(out, rel)
		default:
			return out
		}
	}
}
