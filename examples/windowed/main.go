// Command windowed runs sliding-window trading analytics over a synthetic
// tick stream: a 1000-trade window sliding by 100 computes per-symbol
// volume-weighted statistics, evaluated incrementally (per-pane summaries,
// §3.1's basic-window model). A second identical query runs in
// re-evaluation mode to show both strategies produce the same answers at
// different costs.
//
// The second half demonstrates event-time windows under out-of-order
// arrival: trades carry their own exchange timestamp, the feed delivers
// them shuffled within a bounded delay, and a watermarked WINDOW RANGE
// query (WITH (timestamp = et, lateness = ...)) still produces exactly
// the windows a sorted feed would — while stragglers beyond the bound
// are counted as late instead of corrupting past windows.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	datacell "repro"
)

const (
	nTrades = 50_000
	window  = 1000
	slide   = 100
)

var symbols = []string{"ACME", "WIDG", "GLOB", "NANO"}

func main() {
	ctx := context.Background()
	eng, err := datacell.Open(ctx, datacell.Config{})
	if err != nil {
		log.Fatal(err)
	}
	datacell.MustExec(eng, "CREATE BASKET trades (sym VARCHAR, price DOUBLE, qty INT)")

	query := fmt.Sprintf(`
		SELECT t.sym AS sym, COUNT(*) AS trades, AVG(t.price) AS avg_price,
		       MIN(t.price) AS low, MAX(t.price) AS high, SUM(t.qty) AS volume
		FROM [SELECT * FROM trades] AS t
		GROUP BY t.sym
		WINDOW ROWS %d SLIDE %d`, window, slide)

	// The two standing queries differ only in their WITH options — the
	// window evaluation strategy and the subscription depth are DDL.
	datacell.MustExec(eng, fmt.Sprintf(
		"CREATE CONTINUOUS QUERY stats_incremental WITH (window_mode = incremental, depth = 4096) AS %s", query))
	datacell.MustExec(eng, fmt.Sprintf(
		"CREATE CONTINUOUS QUERY stats_reeval WITH (window_mode = reeval, depth = 4096) AS %s", query))
	inc, err := eng.Query("stats_incremental")
	if err != nil {
		log.Fatal(err)
	}
	re, err := eng.Query("stats_reeval")
	if err != nil {
		log.Fatal(err)
	}

	// Generate the tick stream (deterministic).
	rng := rand.New(rand.NewSource(7))
	price := map[string]float64{}
	for _, s := range symbols {
		price[s] = 100
	}
	rows := make([][]datacell.Value, nTrades)
	for i := range rows {
		sym := symbols[rng.Intn(len(symbols))]
		price[sym] *= 1 + (rng.Float64()-0.5)/100
		rows[i] = []datacell.Value{
			datacell.Str(sym),
			datacell.Float(price[sym]),
			datacell.Int(int64(1 + rng.Intn(100))),
		}
	}

	start := time.Now()
	if err := eng.Ingest(ctx, "trades", rows); err != nil {
		log.Fatal(err)
	}
	eng.Drain()
	elapsed := time.Since(start)

	incWindows, reWindows := drain(inc), drain(re)
	if len(incWindows) != len(reWindows) {
		log.Fatalf("strategy disagreement: %d vs %d windows", len(incWindows), len(reWindows))
	}
	fmt.Printf("%d trades, window %d slide %d → %d window results per strategy (%.0f trades/s including both)\n\n",
		nTrades, window, slide, len(incWindows), float64(nTrades)/elapsed.Seconds())

	last := incWindows[len(incWindows)-1]
	fmt.Printf("latest result batch (may span windows):\n%-6s %8s %10s %10s %10s %9s\n",
		"sym", "trades", "avg", "low", "high", "volume")
	for i := 0; i < last.NumRows(); i++ {
		row := last.Row(i)
		fmt.Printf("%-6s %8d %10.2f %10.2f %10.2f %9d\n",
			row[0].S, row[1].I, row[2].F, row[3].F, row[4].F, row[5].I)
	}

	eventTimeDemo(ctx, eng, rng)
}

// eventTimeDemo: out-of-order event time with a watermark. Trades carry
// an exchange timestamp (et, in ms); the feed shuffles them within a
// 200ms delivery delay, and two stragglers arrive a full second late.
func eventTimeDemo(ctx context.Context, eng *datacell.Engine, rng *rand.Rand) {
	const lateness = 200 // ms of tolerated disorder
	datacell.MustExec(eng, "CREATE BASKET ticks (sym VARCHAR, qty INT, et INT)")
	datacell.MustExec(eng, fmt.Sprintf(`
		CREATE CONTINUOUS QUERY per_second WITH (timestamp = et, lateness = %d, depth = 4096) AS
		SELECT t.sym AS sym, COUNT(*) AS trades, SUM(t.qty) AS volume
		FROM [SELECT * FROM ticks] AS t
		GROUP BY t.sym
		WINDOW RANGE 1000`, lateness))
	q, err := eng.Query("per_second")
	if err != nil {
		log.Fatal(err)
	}

	// 5 seconds of trades, one every ~5ms, delivered out of order: each
	// tuple is delayed by up to lateness/2 relative to its event time.
	type tick struct {
		sym string
		qty int64
		et  int64
	}
	var feed []tick
	for et := int64(0); et < 5000; et += 5 {
		feed = append(feed, tick{symbols[rng.Intn(len(symbols))], int64(1 + rng.Intn(9)), et})
	}
	rng.Shuffle(len(feed), func(i, j int) {
		if d := feed[i].et - feed[j].et; -lateness/2 < d && d < lateness/2 {
			feed[i], feed[j] = feed[j], feed[i]
		}
	})
	rows := make([][]datacell.Value, len(feed))
	for i, t := range feed {
		rows[i] = []datacell.Value{datacell.Str(t.sym), datacell.Int(t.qty), datacell.Int(t.et)}
	}
	if err := eng.Ingest(ctx, "ticks", rows); err != nil {
		log.Fatal(err)
	}
	eng.Drain() // process the feed: windows up to the watermark emit
	// Two stragglers from the first second surface only now — a full
	// four seconds behind the watermark, far beyond the lateness bound.
	late := [][]datacell.Value{
		{datacell.Str("ACME"), datacell.Int(1), datacell.Int(250)},
		{datacell.Str("WIDG"), datacell.Int(1), datacell.Int(700)},
	}
	if err := eng.Ingest(ctx, "ticks", late); err != nil {
		log.Fatal(err)
	}
	eng.Drain()

	windows := drain(q)
	wm, _ := q.Watermark()
	fmt.Printf("\nevent-time windows (1s tumbling, lateness %dms, shuffled feed):\n", lateness)
	fmt.Printf("%d window batches emitted, watermark at %dms, late tuples dropped+counted: %d\n",
		len(windows), wm, q.LateTuples())
	for _, rel := range windows {
		for i := 0; i < rel.NumRows(); i++ {
			row := rel.Row(i)
			fmt.Printf("  %-6s trades=%3d volume=%4d\n", row[0].S, row[1].I, row[2].I)
		}
	}
}

func drain(q *datacell.Query) []*datacell.Relation {
	var out []*datacell.Relation
	for {
		select {
		case rel := <-q.Subscription().C():
			out = append(out, rel)
		default:
			return out
		}
	}
}
