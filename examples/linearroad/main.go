// Command linearroad runs a scaled Linear Road benchmark (the workload the
// paper reports running "out of the box", §5) through the DataCell engine:
// synthetic expressway traffic streams in, per-minute segment statistics
// run as a windowed continuous SQL query, and a toll/accident processor
// issues notifications. The run is validated tuple-for-tuple against an
// oracle implementation and reports the response-time distribution.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/linearroad"
)

func main() {
	xways := flag.Int("xways", 1, "number of expressways (the benchmark's L factor)")
	vehicles := flag.Int("vehicles", 200, "vehicles per expressway")
	duration := flag.Int("duration", 600, "simulated seconds")
	seed := flag.Int64("seed", 42, "traffic generator seed")
	flag.Parse()

	cfg := linearroad.GenConfig{
		XWays:            *xways,
		VehiclesPerXWay:  *vehicles,
		DurationSec:      *duration,
		Seed:             *seed,
		AccidentEverySec: 120,
	}
	fmt.Printf("Linear Road (scaled): L=%d, %d vehicles/xway, %d simulated seconds\n",
		cfg.XWays, cfg.VehiclesPerXWay, cfg.DurationSec)

	records := linearroad.Generate(cfg)
	fmt.Printf("generated %d position reports\n", len(records))

	want := linearroad.Reference(records)

	sys, err := linearroad.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := sys.Run(records); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	got := sys.Notifications()

	// Validation.
	if len(got) != len(want) {
		log.Fatalf("VALIDATION FAILED: %d notifications, oracle says %d", len(got), len(want))
	}
	var tolls, alerts, revenue int64
	for i := range want {
		if got[i] != want[i] {
			log.Fatalf("VALIDATION FAILED at notification %d: got %+v, want %+v", i, got[i], want[i])
		}
		if got[i].Accident {
			alerts++
		}
		if got[i].Toll > 0 {
			tolls++
			revenue += got[i].Toll
		}
	}

	fmt.Printf("\nprocessed in %v (%.0f reports/s)\n", elapsed.Round(time.Millisecond),
		float64(len(records))/elapsed.Seconds())
	fmt.Printf("notifications: %d (tolls charged: %d, accident alerts: %d, revenue: %d)\n",
		len(got), tolls, alerts, revenue)
	fmt.Printf("per-second-batch response time: %s\n", sys.Latency.Summary())
	maxResp := time.Duration(sys.Latency.Max())
	fmt.Printf("max response %v vs the benchmark's 5s bound: ", maxResp)
	if maxResp < 5*time.Second {
		fmt.Println("PASS")
	} else {
		fmt.Println("FAIL")
	}
	fmt.Println("validation vs oracle: PASS (exact match)")
}
