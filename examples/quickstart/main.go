// Command quickstart is the Figure-1 pipeline of the paper in miniature:
// a receptor feeds sensor readings into a basket, one continuous query
// (a factory) filters them, and an emitter delivers the qualifying tuples
// — all through the public API.
package main

import (
	"fmt"
	"log"
	"time"

	datacell "repro"
)

func main() {
	eng := datacell.New(datacell.Config{Workers: 2})
	datacell.MustExec(eng, "CREATE BASKET sensors (id INT, temp DOUBLE)")

	// The continuous query: the bracketed basket expression consumes the
	// stream; the outer WHERE is the standing filter.
	alerts, err := eng.RegisterContinuous("overheat",
		"SELECT * FROM [SELECT * FROM sensors] AS s WHERE s.temp > 30.0")
	if err != nil {
		log.Fatal(err)
	}

	eng.Start()
	defer eng.Stop()

	// A receptor thread: ten readings, two of them hot.
	go func() {
		temps := []float64{21.5, 22.0, 31.2, 23.9, 19.4, 25.0, 35.8, 24.1, 22.2, 20.0}
		for i, temp := range temps {
			err := eng.Ingest("sensors", [][]datacell.Value{
				{datacell.Int(int64(i)), datacell.Float(temp)},
			})
			if err != nil {
				log.Fatal(err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// The emitter side: collect until both alerts arrived.
	hot := 0
	timeout := time.After(5 * time.Second)
	for hot < 2 {
		select {
		case batch := <-alerts.Results():
			for i := 0; i < batch.NumRows(); i++ {
				row := batch.Row(i)
				fmt.Printf("ALERT sensor=%d temp=%.1f°C\n", row[0].I, row[1].F)
				hot++
			}
		case <-timeout:
			log.Fatal("timed out waiting for alerts")
		}
	}

	st := alerts.Stats()
	fmt.Printf("processed %d tuples in %d firings, emitted %d alerts\n",
		st.TuplesIn, st.Firings, st.TuplesOut)
}
