// Command quickstart is the Figure-1 pipeline of the paper in miniature:
// a receptor feeds sensor readings into a basket, one continuous query
// (a factory) filters them, and an emitter delivers the qualifying tuples
// — all through the public API: Open a session, install the standing
// query with CREATE CONTINUOUS QUERY, and consume its Subscription.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	datacell "repro"
)

func main() {
	ctx := context.Background()
	eng, err := datacell.Open(ctx, datacell.Config{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	datacell.MustExec(eng, "CREATE BASKET sensors (id INT, temp DOUBLE)")

	// The continuous query: the bracketed basket expression consumes the
	// stream; the outer WHERE is the standing filter. Continuous queries
	// are ordinary DDL statements.
	datacell.MustExec(eng, `CREATE CONTINUOUS QUERY overheat AS
		SELECT * FROM [SELECT * FROM sensors] AS s WHERE s.temp > 30.0`)
	alerts, err := eng.Query("overheat")
	if err != nil {
		log.Fatal(err)
	}

	if err := eng.Start(ctx); err != nil {
		log.Fatal(err)
	}
	defer eng.Stop(ctx)

	// A receptor thread: ten readings, two of them hot.
	go func() {
		temps := []float64{21.5, 22.0, 31.2, 23.9, 19.4, 25.0, 35.8, 24.1, 22.2, 20.0}
		for i, temp := range temps {
			err := eng.Ingest(ctx, "sensors", [][]datacell.Value{
				{datacell.Int(int64(i)), datacell.Float(temp)},
			})
			if err != nil {
				log.Fatal(err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// The emitter side: receive until both alerts arrived.
	recvCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	sub := alerts.Subscription()
	hot := 0
	for hot < 2 {
		batch, err := sub.Recv(recvCtx)
		if err != nil {
			log.Fatalf("waiting for alerts: %v", err)
		}
		for i := 0; i < batch.NumRows(); i++ {
			row := batch.Row(i)
			fmt.Printf("ALERT sensor=%d temp=%.1f°C\n", row[0].I, row[1].F)
			hot++
		}
	}

	st := alerts.Stats()
	fmt.Printf("processed %d tuples in %d firings, emitted %d alerts\n",
		st.TuplesIn, st.Firings, st.TuplesOut)
}
