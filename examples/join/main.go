// Command join demonstrates first-class streaming joins.
//
// Part 1 — enrichment (stream ⋈ table): a click stream is joined against
// a slowly-changing user reference table. The table side is materialized
// once as a hash index and re-snapshot only when the table changes;
// clicks arriving before their user is registered are consumed unmatched
// (enrichment sees the table as of arrival).
//
// Part 2 — correlation (stream ⋈ stream): orders and shipments arrive on
// two streams, shuffled in event time within a bounded delay, and a
// symmetric-hash join with a WITHIN band pairs each order with the
// shipments that occurred at most `band` ticks away. Matches that span
// firings are found exactly once; hash-table entries behind the
// watermark are expired, so the join state stays bounded no matter how
// long the streams run — the expired count is reported at the end.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	datacell "repro"
)

const (
	nEvents  = 20_000
	band     = 64 // WITHIN band, in event-time ticks
	lateness = 16 // bounded shuffle of the event-time feed
)

func main() {
	ctx := context.Background()
	eng, err := datacell.Open(ctx, datacell.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// --- Part 1: stream-table enrichment --------------------------------
	datacell.MustExec(eng, "CREATE BASKET clicks (uid INT, page INT)")
	datacell.MustExec(eng, "CREATE TABLE users (uid INT, name VARCHAR)")
	datacell.MustExec(eng, "INSERT INTO users VALUES (1, 'ada'), (2, 'grace')")
	datacell.MustExec(eng, `CREATE CONTINUOUS QUERY enriched WITH (polling = true) AS
		SELECT c.uid AS uid, c.page AS page, users.name AS name
		FROM [SELECT * FROM clicks] AS c JOIN users ON c.uid = users.uid`)
	enriched, err := eng.Query("enriched")
	if err != nil {
		log.Fatal(err)
	}

	ingestClicks := func(uids ...int64) {
		rows := make([][]datacell.Value, len(uids))
		for i, u := range uids {
			rows[i] = []datacell.Value{datacell.Int(u), datacell.Int(int64(i))}
		}
		if err := eng.Ingest(ctx, "clicks", rows); err != nil {
			log.Fatal(err)
		}
	}
	ingestClicks(1, 2, 3) // uid 3 is unknown — consumed unmatched
	eng.Drain()
	// The reference table changes; only later clicks see the new user.
	datacell.MustExec(eng, "INSERT INTO users VALUES (3, 'edsger')")
	ingestClicks(3)
	eng.Drain()
	rel := datacell.MustExec(eng, "SELECT * FROM enriched_out")
	fmt.Println("-- enriched clicks (uid 3 matches only after registration) --")
	fmt.Print(rel)
	fmt.Printf("table rows materialized in join state: %d\n\n", enriched.JoinState())

	// --- Part 2: stream-stream correlation under shuffled event time ----
	datacell.MustExec(eng, "CREATE BASKET orders (k INT, amount INT, et INT)")
	datacell.MustExec(eng, "CREATE BASKET shipments (k INT, carrier INT, et INT)")
	datacell.MustExec(eng, fmt.Sprintf(`CREATE CONTINUOUS QUERY correlated
		WITH (polling = true, timestamp = et, lateness = %d) AS
		SELECT o.k AS k, o.amount AS amount, s.carrier AS carrier
		FROM [SELECT * FROM orders] AS o JOIN [SELECT * FROM shipments] AS s
		ON o.k = s.k WITHIN %d`, lateness, band))
	correlated, err := eng.Query("correlated")
	if err != nil {
		log.Fatal(err)
	}

	// Both feeds advance one event-time tick per row, shuffled within the
	// lateness bound; a shipment matches its order iff they are at most
	// `band` ticks apart.
	rng := rand.New(rand.NewSource(42))
	feed := func(n int) [][3]int64 {
		rows := make([][3]int64, n)
		for i := range rows {
			rows[i] = [3]int64{int64(i % 997), rng.Int63n(1000), int64(i)}
		}
		for base := 0; base < n; base += lateness {
			end := base + lateness
			if end > n {
				end = n
			}
			rng.Shuffle(end-base, func(a, b int) {
				rows[base+a], rows[base+b] = rows[base+b], rows[base+a]
			})
		}
		return rows
	}
	orders, shipments := feed(nEvents), feed(nEvents)

	peakState := int64(0)
	send := func(stream string, rows [][3]int64) {
		batch := make([][]datacell.Value, len(rows))
		for i, r := range rows {
			batch[i] = []datacell.Value{datacell.Int(r[0]), datacell.Int(r[1]), datacell.Int(r[2])}
		}
		if err := eng.Ingest(ctx, stream, batch); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < nEvents; i += 512 {
		end := i + 512
		if end > nEvents {
			end = nEvents
		}
		send("orders", orders[i:end])
		send("shipments", shipments[i:end])
		eng.Drain()
		if st := correlated.JoinState(); st > peakState {
			peakState = st
		}
	}

	st := correlated.Stats()
	fmt.Println("-- order/shipment correlation (WITHIN band) --")
	fmt.Printf("orders+shipments ingested: %d\n", 2*nEvents)
	fmt.Printf("matched pairs:             %d\n", st.TuplesOut)
	fmt.Printf("expired state rows:        %d\n", st.JoinEvictions)
	fmt.Printf("late probes:               %d\n", st.Late)
	fmt.Printf("peak join state:           %d rows (vs %d tuples seen)\n", peakState, 2*nEvents)

	if err := eng.Stop(ctx); err != nil {
		log.Fatal(err)
	}
}
