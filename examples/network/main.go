// Command network demonstrates the DataCell as a network of queries
// inside the kernel (§3.2): a fraud-screening pipeline where one query's
// output basket feeds the next query, a shared common factory serves
// several residual queries at once, a high-priority query is scheduled
// first, and an overloaded low-value query sheds load.
//
// Pipeline over a payments stream (account INT, amount DOUBLE, country VARCHAR):
//
//	payments ──► large (amount > 900) ──► foreign_large (country <> 'NL')
//	payments ──► filter group: suspicious = amount > 500, with members
//	             round_amounts  (amount % 100 = 0)
//	             repeat_account (account % 7 = 0 — a stand-in risk rule)
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	datacell "repro"
)

func main() {
	ctx := context.Background()
	eng, err := datacell.Open(ctx, datacell.Config{})
	if err != nil {
		log.Fatal(err)
	}
	datacell.MustExec(eng, "CREATE BASKET payments (account INT, amount DOUBLE, country VARCHAR)")

	// Stage 1 → stage 2: a chained query network. The `large_out` basket
	// is the second query's input. Both stages are plain DDL.
	datacell.MustExec(eng, `CREATE CONTINUOUS QUERY large WITH (polling = true, priority = 10) AS
		SELECT p.account AS account, p.amount AS amount, p.country AS country
		FROM [SELECT * FROM payments] AS p WHERE p.amount > 900.0`)
	datacell.MustExec(eng, `CREATE CONTINUOUS QUERY foreign_large WITH (priority = 10, depth = 1024) AS
		SELECT * FROM [SELECT * FROM large_out] AS x WHERE x.country <> 'NL'`)
	foreign, err := eng.Query("foreign_large")
	if err != nil {
		log.Fatal(err)
	}

	// A shared-factory group: the common `amount > 500` filter runs once;
	// the residual factories only see what it admits.
	group, err := eng.RegisterFilterGroup("susp", "payments", "x.amount > 500.0",
		[]datacell.GroupMember{
			{Name: "round_amounts", Residual: "x.amount % 100.0 = 0.0"},
			{Name: "repeat_account", Residual: "x.account % 7 = 0"},
		})
	if err != nil {
		log.Fatal(err)
	}

	// A low-priority audit trail that tolerates loss under pressure.
	datacell.MustExec(eng, `CREATE CONTINUOUS QUERY audit
		WITH (priority = -5, shed_limit = 2000, polling = true) AS
		SELECT * FROM [SELECT * FROM payments] AS p`)
	audit, err := eng.Query("audit")
	if err != nil {
		log.Fatal(err)
	}

	// Feed a deterministic workload.
	rng := rand.New(rand.NewSource(11))
	countries := []string{"NL", "DE", "FR", "US"}
	const n = 100_000
	rows := make([][]datacell.Value, n)
	for i := range rows {
		rows[i] = []datacell.Value{
			datacell.Int(int64(rng.Intn(5000))),
			datacell.Float(float64(rng.Intn(100000)) / 100),
			datacell.Str(countries[rng.Intn(len(countries))]),
		}
	}
	if err := eng.Ingest(ctx, "payments", rows); err != nil {
		log.Fatal(err)
	}
	eng.Drain()

	foreignHits := 0
	for {
		select {
		case rel := <-foreign.Subscription().C():
			foreignHits += rel.NumRows()
			continue
		default:
		}
		break
	}

	fmt.Printf("ingested %d payments\n\n", n)
	large, _ := eng.Query("large")
	fmt.Printf("chained network: large → foreign_large\n")
	fmt.Printf("  large admitted        %6d\n", large.Stats().TuplesOut)
	fmt.Printf("  foreign alerts        %6d\n", foreignHits)

	fmt.Printf("\nshared factory group (common filter evaluated once):\n")
	fmt.Printf("  common examined       %6d, admitted %d\n",
		group.Common.Stats().TuplesIn, group.Common.Stats().TuplesOut)
	for _, m := range group.Members {
		fmt.Printf("  %-20s  examined %6d, matched %d\n",
			m.Name, m.Stats().TuplesIn, m.Stats().TuplesOut)
	}

	fmt.Printf("\nlow-priority audit with load shedding:\n")
	fmt.Printf("  processed %d, shed %d (bounded backlog under burst)\n",
		audit.Stats().TuplesIn, audit.Shed())
}
