// Package datacell is a stream engine built on top of a relational
// column-store kernel, reproducing "DataCell: Building a Data Stream
// Engine on top of a Relational Database Kernel" (Liarou & Kersten,
// VLDB 2009).
//
// Instead of a from-scratch dataflow system, the DataCell stores arriving
// tuples in baskets (timestamped, main-memory column tables) and
// repeatedly throws standing SQL queries at them with the full machinery
// of a relational kernel: vectorized selections, hash joins, grouped
// aggregation, a rule-based optimizer. Continuous queries are ordinary
// SQL: a SELECT whose FROM clause contains a basket expression — a
// bracketed sub-query whose referenced tuples are consumed from the
// underlying basket — installed with the CREATE CONTINUOUS QUERY DDL.
// A Petri-net scheduler fires factories (compiled continuous queries)
// whenever their input baskets hold tuples, and emitters deliver results
// to subscribers.
//
// # Quick start
//
//	eng, err := datacell.Open(ctx, datacell.Config{})
//	datacell.MustExec(eng, "CREATE BASKET trades (sym VARCHAR, price DOUBLE)")
//	datacell.MustExec(eng, `CREATE CONTINUOUS QUERY spikes AS
//	    SELECT * FROM [SELECT * FROM trades] AS t WHERE t.price > 100`)
//	eng.Start(ctx)
//	defer eng.Stop(ctx)
//	eng.Ingest(ctx, "trades", [][]datacell.Value{{datacell.Str("ACME"), datacell.Float(101.5)}})
//	q, _ := eng.Query("spikes")
//	batch, err := q.Subscription().Recv(ctx)
//
// The whole lifecycle is SQL-first: CREATE/DROP CONTINUOUS QUERY, DROP
// BASKET, and SHOW QUERIES/BASKETS/TABLES/STREAMS execute through
// Engine.Exec, the same entry point used by script execution and the TCP
// control listener. Query behavior is tuned per query, either with WITH
// options in the DDL (strategy, min_tuples, window_mode, priority,
// shed_limit, depth, polling, backpressure) or with the equivalent Go
// QueryOption helpers on RegisterContinuous.
//
// Failures are typed: sentinel errors (ErrUnknownStream,
// ErrDuplicateQuery, ErrEngineStopped, ...) are asserted with errors.Is,
// and SQL syntax errors carry line/column positions via *ParseError
// (errors.As). Exec and Ingest honor context cancellation; Stop drains
// gracefully and is idempotent.
//
// Three processing strategies from the paper are available per query:
// separate baskets (private input replica), shared baskets (watermarked
// single copy), and the cascade of disjoint range predicates. Sliding
// windows (count- or time-based) are expressed with the WINDOW clause and
// evaluated either by re-evaluation or incrementally via per-pane
// summaries.
//
// Joins are streaming operators: a query joining two streams holds
// symmetric hash state (every cross-firing match found exactly once,
// bounded by JOIN ... WITHIN and expired behind the watermark), a query
// joining its stream with a table keeps a cached table-side hash
// re-snapshot on change, and on partitioned streams equi-joins run
// co-partitioned (or with the table broadcast) across shard pipelines.
//
// Opening with Config.DataDir makes the engine durable: acknowledged
// ingest batches and DDL are group-committed to a segmented write-ahead
// log, operator state (baskets, window panes, join state, delivery
// frontiers) is checkpointed periodically, and the next Open replays the
// log tail past the newest checkpoint — continuous queries resume
// without losing acknowledged tuples or re-emitting delivered results.
// A clean Stop writes a final checkpoint so clean restarts skip replay.
// See Engine.Checkpoint, Engine.Stats, and Query.Checkpoint.
//
// # Migrating from the pre-session API
//
//   - datacell.New(cfg) still works but Open(ctx, cfg) is preferred: it
//     validates the configuration and stops the engine when ctx ends.
//   - Engine.Exec, Ingest, IngestColumns, Start, and Stop now take a
//     context.Context as their first argument.
//   - Engine.RegisterContinuous remains as the Go-level twin of CREATE
//     CONTINUOUS QUERY; the server-side "CONTINUOUS <name> <select>"
//     script extension is gone — use the DDL.
//   - Query.Results() is replaced by Query.Subscription(), a handle with
//     Recv(ctx)/C()/Close()/Err(); Cascade.Results(i) likewise became
//     Cascade.Subscription(i).
package datacell

import (
	"context"
	"fmt"

	"repro/internal/catalog"
	idc "repro/internal/datacell"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/vector"
	"repro/internal/window"
)

// Engine is a DataCell instance: a catalog of streams and tables, the
// scheduler, and the registered continuous queries.
type Engine = idc.Engine

// Config parameterizes Open.
type Config = idc.Config

// Query is a registered continuous query.
type Query = idc.Query

// Subscription is a handle on a continuous query's result delivery:
// Recv(ctx) or C() to consume, Close() to detach without stopping the
// query, Err() for the close reason.
type Subscription = idc.Subscription

// QueryOption configures RegisterContinuous.
type QueryOption = idc.QueryOption

// Strategy selects a continuous query's input arrangement (§2.5 of the
// paper).
type Strategy = idc.Strategy

// Processing strategies.
const (
	// SeparateBaskets gives each query a private input basket (maximum
	// independence, replicated input).
	SeparateBaskets = idc.SeparateBaskets
	// SharedBaskets shares one basket among all queries; tuples are
	// retained until every query has seen them.
	SharedBaskets = idc.SharedBaskets
	// RoutedScan runs one shared scan per stream and routes each batch
	// through a predicate index to only the possibly-matching queries;
	// identical plans are evaluated once and fanned out. Opt-in; shapes
	// the shared scan cannot serve fall back to SharedBaskets.
	RoutedScan = idc.RoutedScan
)

// PartitionSpec declares stream sharding — the Go equivalent of CREATE
// BASKET ... WITH (partitions = N, partition_by = col), accepted by
// Engine.CreatePartitionedStream. Partitionable continuous queries over
// a sharded stream run as N parallel shard pipelines whose emissions a
// merge transition recombines (see Query.Shards and Query.MergeLag).
type PartitionSpec = partition.Spec

// Backpressure selects what a subscription does when its consumer falls
// behind.
type Backpressure = idc.Backpressure

// Backpressure policies.
const (
	// BackpressureBlock retains results until the consumer catches up.
	BackpressureBlock = idc.BackpressureBlock
	// BackpressureDropOldest evicts the oldest undelivered batch.
	BackpressureDropOldest = idc.BackpressureDropOldest
)

// Typed errors, asserted with errors.Is.
var (
	// ErrUnknownStream reports a reference to a stream that was never created.
	ErrUnknownStream = idc.ErrUnknownStream
	// ErrUnknownQuery reports a name that is not a registered continuous query.
	ErrUnknownQuery = idc.ErrUnknownQuery
	// ErrDuplicateQuery reports a continuous-query name collision.
	ErrDuplicateQuery = idc.ErrDuplicateQuery
	// ErrDuplicateName reports a CREATE collision with an existing object.
	ErrDuplicateName = idc.ErrDuplicateName
	// ErrEngineStopped reports use of an engine after Stop.
	ErrEngineStopped = idc.ErrEngineStopped
	// ErrNotContinuous reports continuous registration of a plain query.
	ErrNotContinuous = idc.ErrNotContinuous
	// ErrContinuousViaExec reports a continuous SELECT passed to Exec bare.
	ErrContinuousViaExec = idc.ErrContinuousViaExec
	// ErrStreamInUse reports DROP of a stream that queries still read.
	ErrStreamInUse = idc.ErrStreamInUse
	// ErrSubscriptionClosed reports delivery after a subscription closed.
	ErrSubscriptionClosed = idc.ErrSubscriptionClosed
	// ErrInvalidOption reports an unknown or malformed query option.
	ErrInvalidOption = idc.ErrInvalidOption
	// ErrSelfJoin reports a continuous query joining a stream with itself.
	ErrSelfJoin = idc.ErrSelfJoin
	// ErrUnsupportedJoin reports a stream-stream join shape the streaming
	// executor cannot run incrementally (non-equi, multi-way, windowed).
	ErrUnsupportedJoin = idc.ErrUnsupportedJoin
	// ErrCorruptWAL reports unrecoverable write-ahead-log damage: an
	// interior torn frame, checksum mismatch, or sequence gap (a torn
	// tail on the final segment is truncated silently instead).
	ErrCorruptWAL = idc.ErrCorruptWAL
	// ErrCheckpointMismatch reports a checkpoint image that does not fit
	// the catalog rebuilt from the DDL journal.
	ErrCheckpointMismatch = idc.ErrCheckpointMismatch
	// ErrNotDurable reports a durability operation on an engine opened
	// without Config.DataDir.
	ErrNotDurable = idc.ErrNotDurable
)

// ParseError is a SQL syntax error with line/column position, asserted
// with errors.As.
type ParseError = sql.ParseError

// CascadePredicate is one disjoint-range stage of a cascade.
type CascadePredicate = idc.CascadePredicate

// Cascade is a registered chain of disjoint-range stages.
type Cascade = idc.Cascade

// GroupMember is one query of a shared-factory filter group.
type GroupMember = idc.GroupMember

// FilterGroup is a registered shared-factory group (§3.2: one common
// factory feeds several residual factories).
type FilterGroup = idc.FilterGroup

// WindowMode selects the windowed evaluation strategy (§3.1).
type WindowMode = window.Mode

// Window evaluation strategies.
const (
	// ReEvaluate computes each window from scratch.
	ReEvaluate = window.ReEvaluate
	// Incremental merges per-pane summaries (the basic-window model).
	Incremental = window.Incremental
)

// Value is one scalar in the engine's type system.
type Value = vector.Value

// Relation is a materialized result set.
type Relation = storage.Relation

// Column defines one stream or table attribute.
type Column = catalog.Column

// Schema is an ordered column list.
type Schema = catalog.Schema

// Clock abstracts time for deterministic runs.
type Clock = metrics.Clock

// ManualClock is an explicitly advanced clock.
type ManualClock = metrics.ManualClock

// Type enumerates column types.
type Type = vector.Type

// Column types.
const (
	Int64     = vector.Int64
	Float64   = vector.Float64
	Bool      = vector.Bool
	String    = vector.String
	Timestamp = vector.Timestamp
)

// Open creates an engine whose lifetime is bounded by ctx: when ctx ends,
// the engine stops as if Stop had been called.
func Open(ctx context.Context, cfg Config) (*Engine, error) { return idc.Open(ctx, cfg) }

// New creates an engine without a bounding context.
//
// Deprecated: prefer Open, which validates the configuration and ties the
// engine lifetime to a context.
func New(cfg Config) *Engine { return idc.New(cfg) }

// NewManualClock returns a manually advanced clock starting at ns.
func NewManualClock(ns int64) *ManualClock { return metrics.NewManualClock(ns) }

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return catalog.NewSchema(cols...) }

// Col is shorthand for a Column definition.
func Col(name string, t Type) Column { return Column{Name: name, Type: t} }

// Int wraps an int64.
func Int(v int64) Value { return vector.NewInt(v) }

// Float wraps a float64.
func Float(v float64) Value { return vector.NewFloat(v) }

// Str wraps a string.
func Str(v string) Value { return vector.NewString(v) }

// BoolVal wraps a bool.
func BoolVal(v bool) Value { return vector.NewBool(v) }

// TS wraps a timestamp (nanoseconds since the epoch).
func TS(ns int64) Value { return vector.NewTimestamp(ns) }

// Null returns the NULL of type t.
func Null(t Type) Value { return vector.NullValue(t) }

// Query options re-exported from the engine; each has a WITH (...)
// equivalent in the CREATE CONTINUOUS QUERY DDL.
var (
	// WithStrategy selects the basket arrangement (strategy = ...).
	WithStrategy = idc.WithStrategy
	// WithMinTuples sets the factory firing threshold (min_tuples = ...).
	WithMinTuples = idc.WithMinTuples
	// WithWindowMode pins the window evaluation strategy (window_mode = ...).
	WithWindowMode = idc.WithWindowMode
	// WithSubscriptionDepth sizes the result channel (depth = ...).
	WithSubscriptionDepth = idc.WithSubscriptionDepth
	// WithSQLPolling disables the subscription emitter; poll <name>_out
	// (polling = true).
	WithSQLPolling = idc.WithSQLPolling
	// WithPriority schedules the query's factory ahead of lower priorities
	// (priority = ...).
	WithPriority = idc.WithPriority
	// WithLoadShedding bounds the query's private input basket, evicting
	// the oldest tuples under overload (shed_limit = ...).
	WithLoadShedding = idc.WithLoadShedding
	// WithLateness sets the out-of-order tolerance of a time-based window
	// (lateness = ...); the watermark trails the stream's maximum seen
	// timestamp by this much.
	WithLateness = idc.WithLateness
	// WithEventTimeColumn slices a time-based window by a user column
	// (timestamp = ...) instead of the implicit arrival stamp.
	WithEventTimeColumn = idc.WithEventTimeColumn
	// WithBackpressure selects the subscription overflow policy
	// (backpressure = block | drop_oldest).
	WithBackpressure = idc.WithBackpressure
	// WithDurable includes or excludes the query's operator state from
	// checkpoints on a durable engine (durable = true | false).
	WithDurable = idc.WithDurable
	// WithCheckpointInterval tightens the engine's background checkpoint
	// cadence to at most d (checkpoint_interval = ...).
	WithCheckpointInterval = idc.WithCheckpointInterval
)

// EngineStats is the durability posture reported by Engine.Stats: WAL
// size, checkpoint coverage, and what the last Open had to replay.
type EngineStats = idc.EngineStats

// CheckpointInfo is a query's durability posture, from Query.Checkpoint.
type CheckpointInfo = idc.CheckpointInfo

// MustExec runs a statement and panics on error — for examples and setup
// code where failure is a programming bug.
func MustExec(e *Engine, stmt string) *Relation {
	rel, err := e.Exec(context.Background(), stmt)
	if err != nil {
		panic(fmt.Sprintf("datacell: MustExec(%q): %v", stmt, err))
	}
	return rel
}
