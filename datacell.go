// Package datacell is a stream engine built on top of a relational
// column-store kernel, reproducing "DataCell: Building a Data Stream
// Engine on top of a Relational Database Kernel" (Liarou & Kersten,
// VLDB 2009).
//
// Instead of a from-scratch dataflow system, the DataCell stores arriving
// tuples in baskets (timestamped, main-memory column tables) and
// repeatedly throws standing SQL queries at them with the full machinery
// of a relational kernel: vectorized selections, hash joins, grouped
// aggregation, a rule-based optimizer. Continuous queries are ordinary
// SELECT statements whose FROM clause contains a basket expression — a
// bracketed sub-query whose referenced tuples are consumed from the
// underlying basket:
//
//	SELECT * FROM [SELECT * FROM trades] AS t WHERE t.price > 100
//
// A Petri-net scheduler fires factories (compiled continuous queries)
// whenever their input baskets hold tuples, and emitters deliver results
// to subscribers.
//
// # Quick start
//
//	eng := datacell.New(datacell.Config{})
//	datacell.MustExec(eng, "CREATE BASKET trades (sym VARCHAR, price DOUBLE)")
//	q, _ := eng.RegisterContinuous("spikes",
//	    "SELECT * FROM [SELECT * FROM trades] AS t WHERE t.price > 100")
//	eng.Start()
//	defer eng.Stop()
//	eng.Ingest("trades", [][]datacell.Value{{datacell.Str("ACME"), datacell.Float(101.5)}})
//	batch := <-q.Results()
//
// Three processing strategies from the paper are available per query:
// separate baskets (private input replica), shared baskets (watermarked
// single copy), and the cascade of disjoint range predicates. Sliding
// windows (count- or time-based) are expressed with the WINDOW clause and
// evaluated either by re-evaluation or incrementally via per-pane
// summaries.
package datacell

import (
	"fmt"

	"repro/internal/catalog"
	idc "repro/internal/datacell"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/vector"
	"repro/internal/window"
)

// Engine is a DataCell instance: a catalog of streams and tables, the
// scheduler, and the registered continuous queries.
type Engine = idc.Engine

// Config parameterizes New.
type Config = idc.Config

// Query is a registered continuous query.
type Query = idc.Query

// QueryOption configures RegisterContinuous.
type QueryOption = idc.QueryOption

// Strategy selects a continuous query's input arrangement (§2.5 of the
// paper).
type Strategy = idc.Strategy

// Processing strategies.
const (
	// SeparateBaskets gives each query a private input basket (maximum
	// independence, replicated input).
	SeparateBaskets = idc.SeparateBaskets
	// SharedBaskets shares one basket among all queries; tuples are
	// retained until every query has seen them.
	SharedBaskets = idc.SharedBaskets
)

// CascadePredicate is one disjoint-range stage of a cascade.
type CascadePredicate = idc.CascadePredicate

// Cascade is a registered chain of disjoint-range stages.
type Cascade = idc.Cascade

// GroupMember is one query of a shared-factory filter group.
type GroupMember = idc.GroupMember

// FilterGroup is a registered shared-factory group (§3.2: one common
// factory feeds several residual factories).
type FilterGroup = idc.FilterGroup

// WindowMode selects the windowed evaluation strategy (§3.1).
type WindowMode = window.Mode

// Window evaluation strategies.
const (
	// ReEvaluate computes each window from scratch.
	ReEvaluate = window.ReEvaluate
	// Incremental merges per-pane summaries (the basic-window model).
	Incremental = window.Incremental
)

// Value is one scalar in the engine's type system.
type Value = vector.Value

// Relation is a materialized result set.
type Relation = storage.Relation

// Column defines one stream or table attribute.
type Column = catalog.Column

// Schema is an ordered column list.
type Schema = catalog.Schema

// Clock abstracts time for deterministic runs.
type Clock = metrics.Clock

// ManualClock is an explicitly advanced clock.
type ManualClock = metrics.ManualClock

// Type enumerates column types.
type Type = vector.Type

// Column types.
const (
	Int64     = vector.Int64
	Float64   = vector.Float64
	Bool      = vector.Bool
	String    = vector.String
	Timestamp = vector.Timestamp
)

// New creates an engine.
func New(cfg Config) *Engine { return idc.New(cfg) }

// NewManualClock returns a manually advanced clock starting at ns.
func NewManualClock(ns int64) *ManualClock { return metrics.NewManualClock(ns) }

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return catalog.NewSchema(cols...) }

// Col is shorthand for a Column definition.
func Col(name string, t Type) Column { return Column{Name: name, Type: t} }

// Int wraps an int64.
func Int(v int64) Value { return vector.NewInt(v) }

// Float wraps a float64.
func Float(v float64) Value { return vector.NewFloat(v) }

// Str wraps a string.
func Str(v string) Value { return vector.NewString(v) }

// BoolVal wraps a bool.
func BoolVal(v bool) Value { return vector.NewBool(v) }

// TS wraps a timestamp (nanoseconds since the epoch).
func TS(ns int64) Value { return vector.NewTimestamp(ns) }

// Null returns the NULL of type t.
func Null(t Type) Value { return vector.NullValue(t) }

// Query options re-exported from the engine.
var (
	// WithStrategy selects the basket arrangement.
	WithStrategy = idc.WithStrategy
	// WithMinTuples sets the factory firing threshold.
	WithMinTuples = idc.WithMinTuples
	// WithWindowMode pins the window evaluation strategy.
	WithWindowMode = idc.WithWindowMode
	// WithSubscriptionDepth sizes the result channel.
	WithSubscriptionDepth = idc.WithSubscriptionDepth
	// WithSQLPolling disables the subscription emitter; poll <name>_out.
	WithSQLPolling = idc.WithSQLPolling
	// WithPriority schedules the query's factory ahead of lower priorities.
	WithPriority = idc.WithPriority
	// WithLoadShedding bounds the query's private input basket, evicting
	// the oldest tuples under overload.
	WithLoadShedding = idc.WithLoadShedding
)

// MustExec runs a statement and panics on error — for examples and setup
// code where failure is a programming bug.
func MustExec(e *Engine, stmt string) *Relation {
	rel, err := e.Exec(stmt)
	if err != nil {
		panic(fmt.Sprintf("datacell: MustExec(%q): %v", stmt, err))
	}
	return rel
}
