// Command lroad drives the scaled Linear Road benchmark (experiment E5):
// it generates deterministic expressway traffic, plays it through the
// DataCell pipeline, validates every notification against the oracle, and
// reports throughput and the response-time distribution against the
// benchmark's 5-second bound.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/linearroad"
)

func main() {
	xways := flag.Int("xways", 1, "expressways (the benchmark's L factor)")
	vehicles := flag.Int("vehicles", 200, "vehicles per expressway")
	duration := flag.Int("duration", 600, "simulated seconds")
	seed := flag.Int64("seed", 42, "generator seed")
	accidents := flag.Int("accident-every", 120, "seconds between injected accidents (0 = none)")
	flag.Parse()

	cfg := linearroad.GenConfig{
		XWays:            *xways,
		VehiclesPerXWay:  *vehicles,
		DurationSec:      *duration,
		Seed:             *seed,
		AccidentEverySec: *accidents,
	}
	records := linearroad.Generate(cfg)
	fmt.Printf("Linear Road: L=%d vehicles/xway=%d duration=%ds → %d position reports\n",
		cfg.XWays, cfg.VehiclesPerXWay, cfg.DurationSec, len(records))

	want := linearroad.Reference(records)
	sys, err := linearroad.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := sys.Run(records); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	got := sys.Notifications()

	ok := len(got) == len(want)
	var tolls, alerts, revenue int64
	if ok {
		for i := range want {
			if got[i] != want[i] {
				ok = false
				break
			}
			if got[i].Accident {
				alerts++
			} else if got[i].Toll > 0 {
				tolls++
				revenue += got[i].Toll
			}
		}
	}
	fmt.Printf("throughput: %.0f reports/s (%v total)\n",
		float64(len(records))/elapsed.Seconds(), elapsed.Round(time.Millisecond))
	fmt.Printf("notifications: %d | tolls: %d | accident alerts: %d | revenue: %d\n",
		len(got), tolls, alerts, revenue)
	fmt.Printf("response time: %s\n", sys.Latency.Summary())
	maxResp := time.Duration(sys.Latency.Max())
	fmt.Printf("5s response bound: %s (max %v)\n", passFail(maxResp < 5*time.Second), maxResp)
	fmt.Printf("oracle validation: %s\n", passFail(ok))
	if !ok || maxResp >= 5*time.Second {
		os.Exit(1)
	}
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
