// Command hotpathbench measures the basket hot path — ingest → fire →
// emit — and the storage-level consumption primitives behind it, at
// several basket depths. It writes BENCH_results.json so every PR leaves
// a perf trajectory behind (`make bench`).
//
// The scenarios are chosen to expose the cost model of basket
// consumption:
//
//   - drop_prefix: a steady-state queue at depth D — every op appends a
//     batch and drops an equally sized prefix. With suffix-copying
//     storage the cost is O(D) per op; with chunked storage it is O(1)
//     amortized (whole consumed chunks are released).
//   - remove_tail: a predicate-window shape — every op appends a batch
//     and removes exactly those tuples again from the end, leaving a
//     permanent backlog of D retained tuples. Suffix-copying storage
//     rewrites all D survivors per op.
//   - ingest_emit_window: the full engine path for a §2.6 predicate
//     window over a basket holding D retained (non-qualifying) tuples:
//     Ingest → factory firing → subscription delivery.
//   - ingest_emit_all: headline end-to-end throughput of a consume-all
//     continuous filter (no retained backlog).
//   - partitioned_throughput: one grouped continuous query over a
//     hash-partitioned stream, driven by the concurrent scheduler at
//     several GOMAXPROCS settings (-cpus) and shard counts — the
//     multicore scaling the partition subsystem buys. Single-query
//     ingest-to-merge throughput is reported per (cpus, shards) pair.
//   - windowed_throughput: one event-time windowed GROUP BY (aligned
//     with the partition key) over the same sharded stream, with the
//     input either in timestamp order or k% displaced within the
//     declared lateness — the cost of watermarked out-of-order window
//     maintenance, flat vs sharded.
//   - join_throughput: streaming joins — a stream-stream equi-join with
//     a WITHIN band (symmetric hash state, event-time expiry) and a
//     stream-table enrichment join (cached table-side hash), each flat
//     vs co-partitioned/broadcast across 4 shards.
//   - durability: the WAL tax — the same continuous filter with the
//     write-ahead log off vs on (group-committed ingest) — and
//     dirty-crash recovery time (Open + tail replay) vs log size.
//   - multiquery: queries-vs-throughput of N continuous filters over one
//     stream — the shared routed scan (one scan per stream, predicate-
//     indexed routing, common-subplan sharing) against the naive
//     per-query replica-basket arrangement, at N = 1, 100, 10k.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	datacell "repro"
	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/vector"
)

// batch is the per-op ingest size; depths grow 10× per step so the
// depth-proportionality (or flatness) of consumption cost is visible.
const batch = 256

var depths = []int{1_000, 10_000, 100_000}

// Result is one measured scenario.
type Result struct {
	Name         string  `json:"name"`
	Depth        int     `json:"depth,omitempty"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	TuplesPerSec float64 `json:"tuples_per_sec,omitempty"`
}

// PartResult is one partitioned-throughput measurement: a single
// grouped continuous query over a stream sharded Shards ways, executed
// by the concurrent scheduler at GOMAXPROCS = Cpus.
type PartResult struct {
	Name         string  `json:"name"`
	Cpus         int     `json:"cpus"`
	Shards       int     `json:"shards"`
	Tuples       int     `json:"tuples"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
	NsPerTuple   float64 `json:"ns_per_tuple"`
}

// WindowedResult is one windowed-throughput measurement: an event-time
// windowed aligned GROUP BY over a stream sharded Shards ways, with
// DisorderPct percent of the input displaced (within lateness).
type WindowedResult struct {
	Name         string  `json:"name"`
	Cpus         int     `json:"cpus"`
	Shards       int     `json:"shards"`
	DisorderPct  int     `json:"disorder_pct"`
	Tuples       int     `json:"tuples"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
	NsPerTuple   float64 `json:"ns_per_tuple"`
	LateTuples   int64   `json:"late_tuples"`
}

// JoinResult is one join-throughput measurement: a streaming join
// (stream-stream with WITHIN state, or stream-table enrichment) over a
// stream sharded Shards ways.
type JoinResult struct {
	Name         string  `json:"name"`
	Mode         string  `json:"mode"` // stream_stream or stream_table
	Cpus         int     `json:"cpus"`
	Shards       int     `json:"shards"`
	Tuples       int     `json:"tuples"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
	NsPerTuple   float64 `json:"ns_per_tuple"`
	Matches      int64   `json:"matches"`
	JoinState    int64   `json:"join_state"`
	Evictions    int64   `json:"join_evictions"`
}

// DurabilityResult is one durability measurement: ingest throughput of
// the same continuous filter with the WAL off vs on (the group-commit
// fsync tax), and crash-recovery wall time against logs of growing size.
type DurabilityResult struct {
	Name            string  `json:"name"`
	Mode            string  `json:"mode"` // wal_off | wal_on | recovery
	Tuples          int     `json:"tuples"`
	TuplesPerSec    float64 `json:"tuples_per_sec,omitempty"`
	NsPerTuple      float64 `json:"ns_per_tuple,omitempty"`
	WALBytes        int64   `json:"wal_bytes,omitempty"`
	RecoveryMs      float64 `json:"recovery_ms,omitempty"`
	ReplayedRecords int64   `json:"replayed_records,omitempty"`
}

// ObsResult is one instrumentation-overhead measurement: the
// partitioned-throughput workload run with the observability layer
// enabled (the default) vs disabled (Config.DisableMetrics), best of
// `rounds` interleaved runs per arm. OverheadPct is set on the "on"
// row: ns/tuple regression of instrumentation relative to the off arm.
type ObsResult struct {
	Name         string  `json:"name"`
	Metrics      string  `json:"metrics"` // on | off
	Cpus         int     `json:"cpus"`
	Shards       int     `json:"shards"`
	Tuples       int     `json:"tuples"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
	NsPerTuple   float64 `json:"ns_per_tuple"`
	OverheadPct  float64 `json:"overhead_pct,omitempty"`
}

// MultiResult is one arm of the shared-scan multi-query scenario:
// Queries continuous filters registered over one stream, driven
// batch-by-batch with a deterministic drain. Strategy "routed" shares
// one scan per stream with predicate-indexed routing; "separate" is the
// naive per-query replica-basket arrangement. NsPerBatch is the number
// the routing layer must keep (near-)flat in Queries.
type MultiResult struct {
	Name         string  `json:"name"`
	Strategy     string  `json:"strategy"` // routed | separate
	Workload     string  `json:"workload"` // mixed | nonmatch
	Queries      int     `json:"queries"`
	BatchRows    int     `json:"batch_rows"`
	Batches      int     `json:"batches"`
	Tuples       int     `json:"tuples"`
	RegisterMs   float64 `json:"register_ms"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
	NsPerTuple   float64 `json:"ns_per_tuple"`
	NsPerBatch   float64 `json:"ns_per_batch"`
	RowsOut      int64   `json:"rows_out"`
}

// Report is the BENCH_results.json document: the numbers measured by
// this run plus the recorded pre-refactor baseline for comparison.
type Report struct {
	Note        string             `json:"note"`
	GoOS        string             `json:"goos"`
	GoArch      string             `json:"goarch"`
	NumCPU      int                `json:"num_cpu"`
	Baseline    []Result           `json:"before_chunked_storage"`
	Current     []Result           `json:"current"`
	PartBefore  []PartResult       `json:"partitioned_before_execution_core,omitempty"`
	Partitioned []PartResult       `json:"partitioned,omitempty"`
	Windowed    []WindowedResult   `json:"windowed,omitempty"`
	Join        []JoinResult       `json:"join,omitempty"`
	Durability  []DurabilityResult `json:"durability,omitempty"`
	Obs         []ObsResult        `json:"obs_overhead,omitempty"`
	Multi       []MultiResult      `json:"multiquery,omitempty"`
}

// baseline holds the numbers measured on the flat (suffix-copying)
// storage layer immediately before the chunked refactor (commit
// f207497, same harness, same machine class). Kept in-source so `make
// bench` always emits the before/after pair.
var baseline = []Result{
	{Name: "drop_prefix", Depth: 1_000, NsPerOp: 2947, AllocsPerOp: 2, BytesPerOp: 20607, TuplesPerSec: 86.9e6},
	{Name: "drop_prefix", Depth: 10_000, NsPerOp: 16193, AllocsPerOp: 2, BytesPerOp: 188542, TuplesPerSec: 15.8e6},
	{Name: "drop_prefix", Depth: 100_000, NsPerOp: 78805, AllocsPerOp: 2, BytesPerOp: 802944, TuplesPerSec: 3.2e6},
	{Name: "remove_tail", Depth: 1_000, NsPerOp: 7742, AllocsPerOp: 4, BytesPerOp: 41087, TuplesPerSec: 33.1e6},
	{Name: "remove_tail", Depth: 10_000, NsPerOp: 60853, AllocsPerOp: 4, BytesPerOp: 368762, TuplesPerSec: 4.2e6},
	{Name: "remove_tail", Depth: 100_000, NsPerOp: 628252, AllocsPerOp: 4, BytesPerOp: 3415659, TuplesPerSec: 0.41e6},
	{Name: "ingest_emit_window", Depth: 1_000, NsPerOp: 24905, AllocsPerOp: 50, BytesPerOp: 99087, TuplesPerSec: 10.3e6},
	{Name: "ingest_emit_window", Depth: 10_000, NsPerOp: 152292, AllocsPerOp: 50, BytesPerOp: 754413, TuplesPerSec: 1.7e6},
	{Name: "ingest_emit_window", Depth: 100_000, NsPerOp: 1411593, AllocsPerOp: 50, BytesPerOp: 6846749, TuplesPerSec: 0.18e6},
	{Name: "ingest_emit_all", NsPerOp: 12149, AllocsPerOp: 51, BytesPerOp: 31542, TuplesPerSec: 21.1e6},
}

// partBaseline holds the partitioned-throughput numbers measured
// immediately before the execution-core rework (global ready-set scan,
// lock-all shard fan-out, per-shard output baskets) on the same 1-CPU
// container class, so the scaling table always carries its before/after
// pair. The headline failure mode was negative scaling under
// oversubscription: at GOMAXPROCS=4 on one core, 4 shards ran at 0.27x
// the flat pipeline because every append woke every worker to rescan
// every transition.
var partBaseline = []PartResult{
	{Name: "partitioned_throughput", Cpus: 1, Shards: 1, Tuples: 524288, TuplesPerSec: 6709616, NsPerTuple: 149.0},
	{Name: "partitioned_throughput", Cpus: 1, Shards: 2, Tuples: 524288, TuplesPerSec: 5097598, NsPerTuple: 196.2},
	{Name: "partitioned_throughput", Cpus: 1, Shards: 4, Tuples: 524288, TuplesPerSec: 5943288, NsPerTuple: 168.3},
	{Name: "partitioned_throughput", Cpus: 2, Shards: 1, Tuples: 524288, TuplesPerSec: 6553780, NsPerTuple: 152.6},
	{Name: "partitioned_throughput", Cpus: 2, Shards: 2, Tuples: 524288, TuplesPerSec: 3060799, NsPerTuple: 326.7},
	{Name: "partitioned_throughput", Cpus: 2, Shards: 4, Tuples: 524288, TuplesPerSec: 2883754, NsPerTuple: 346.8},
	{Name: "partitioned_throughput", Cpus: 4, Shards: 1, Tuples: 524288, TuplesPerSec: 4574543, NsPerTuple: 218.6},
	{Name: "partitioned_throughput", Cpus: 4, Shards: 2, Tuples: 524288, TuplesPerSec: 1261367, NsPerTuple: 792.8},
	{Name: "partitioned_throughput", Cpus: 4, Shards: 4, Tuples: 524288, TuplesPerSec: 1249942, NsPerTuple: 800.0},
}

func measure(name string, depth int, tuplesPerOp int, fn func(b *testing.B)) Result {
	res := testing.Benchmark(fn)
	r := Result{
		Name:        name,
		Depth:       depth,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
	if tuplesPerOp > 0 && res.T > 0 {
		r.TuplesPerSec = float64(tuplesPerOp) * float64(res.N) / res.T.Seconds()
	}
	fmt.Fprintf(os.Stderr, "%-20s depth=%-7d %12.0f ns/op %8d allocs/op %12d B/op\n",
		name, depth, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	return r
}

// intBatch builds one append batch whose values are all v.
func intBatch(n int, v int64) []*vector.Vector {
	col := vector.NewWithCap(vector.Int64, n)
	for i := 0; i < n; i++ {
		col.AppendInt(v)
	}
	return []*vector.Vector{col}
}

func newIntTable(depth int) *storage.Table {
	schema := catalog.NewSchema(catalog.Column{Name: "v", Type: vector.Int64})
	t := storage.NewTable("bench", schema)
	for filled := 0; filled < depth; filled += batch {
		n := batch
		if depth-filled < n {
			n = depth - filled
		}
		if err := t.AppendBatch(intBatch(n, 900)); err != nil {
			log.Fatal(err)
		}
	}
	return t
}

// benchDropPrefix: steady-state queue at the given depth.
func benchDropPrefix(depth int) Result {
	return measure("drop_prefix", depth, batch, func(b *testing.B) {
		t := newIntTable(depth)
		in := intBatch(batch, 900)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := t.AppendBatch(in); err != nil {
				b.Fatal(err)
			}
			t.DropPrefix(batch)
		}
		if t.NumRows() != depth {
			b.Fatalf("depth drifted to %d", t.NumRows())
		}
	})
}

// benchRemoveTail: predicate-window shape — D permanently retained
// tuples, each op's arrivals removed again from the end.
func benchRemoveTail(depth int) Result {
	return measure("remove_tail", depth, batch, func(b *testing.B) {
		t := newIntTable(depth)
		in := intBatch(batch, 100)
		pos := make([]int, batch)
		for i := range pos {
			pos[i] = depth + i
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := t.AppendBatch(in); err != nil {
				b.Fatal(err)
			}
			t.Remove(pos)
		}
		if t.NumRows() != depth {
			b.Fatalf("depth drifted to %d", t.NumRows())
		}
	})
}

func mustEngine(stmts ...string) *datacell.Engine {
	eng := datacell.New(datacell.Config{})
	for _, s := range stmts {
		if _, err := eng.Exec(context.Background(), s); err != nil {
			log.Fatal(err)
		}
	}
	return eng
}

func intRows(n int, v int64) [][]datacell.Value {
	rows := make([][]datacell.Value, n)
	for i := range rows {
		rows[i] = []datacell.Value{datacell.Int(v)}
	}
	return rows
}

// benchIngestEmitWindow: full engine path with a predicate window whose
// basket permanently retains depth non-qualifying tuples.
func benchIngestEmitWindow(depth int) Result {
	return measure("ingest_emit_window", depth, batch, func(b *testing.B) {
		eng := mustEngine("CREATE BASKET s (v INT)")
		q, err := eng.RegisterContinuous("q",
			"SELECT * FROM [SELECT * FROM s WHERE v < 500] AS x",
			datacell.WithBackpressure(datacell.BackpressureDropOldest),
			datacell.WithSubscriptionDepth(4))
		if err != nil {
			log.Fatal(err)
		}
		drain := func() {
			for {
				select {
				case <-q.Subscription().C():
					continue
				default:
				}
				return
			}
		}
		// Retained backlog: non-qualifying tuples stay in the basket.
		ctx := context.Background()
		for filled := 0; filled < depth; filled += batch {
			n := batch
			if depth-filled < n {
				n = depth - filled
			}
			if err := eng.Ingest(ctx, "s", intRows(n, 900)); err != nil {
				log.Fatal(err)
			}
		}
		eng.Drain()
		drain()
		rows := intRows(batch, 100)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.Ingest(ctx, "s", rows); err != nil {
				b.Fatal(err)
			}
			eng.Drain()
			drain()
		}
	})
}

// benchIngestEmitAll: consume-all continuous filter, headline throughput.
func benchIngestEmitAll() Result {
	return measure("ingest_emit_all", 0, batch, func(b *testing.B) {
		eng := mustEngine("CREATE BASKET s (v INT)")
		q, err := eng.RegisterContinuous("q",
			"SELECT * FROM [SELECT * FROM s] AS x WHERE x.v < 500",
			datacell.WithBackpressure(datacell.BackpressureDropOldest),
			datacell.WithSubscriptionDepth(4))
		if err != nil {
			log.Fatal(err)
		}
		drain := func() {
			for {
				select {
				case <-q.Subscription().C():
					continue
				default:
				}
				return
			}
		}
		rows := intRows(batch, 100)
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.Ingest(ctx, "s", rows); err != nil {
				b.Fatal(err)
			}
			eng.Drain()
			drain()
		}
	})
}

// benchPartitioned measures single-query ingest-to-merge throughput of
// a grouped continuous query over a stream sharded `shards` ways, with
// the concurrent scheduler pool at GOMAXPROCS = cpus. The query groups
// by the partition column, so shard pipelines aggregate independently
// and the merge stage concatenates — the partition-aligned fast path.
func benchPartitioned(cpus, shards, tuples int) PartResult {
	return benchPartitionedMetrics(cpus, shards, tuples, false)
}

// benchPartitionedMetrics is benchPartitioned with the observability
// layer toggled: disableMetrics compiles out the registry, observers,
// and trace rings, isolating the instrumentation tax for the obs
// scenario's A/B comparison.
func benchPartitionedMetrics(cpus, shards, tuples int, disableMetrics bool) PartResult {
	prev := runtime.GOMAXPROCS(cpus)
	defer runtime.GOMAXPROCS(prev)
	ctx := context.Background()

	eng := datacell.New(datacell.Config{Workers: cpus, DisableMetrics: disableMetrics})
	ddl := fmt.Sprintf("CREATE BASKET p (k INT, v INT) WITH (partitions = %d, partition_by = k)", shards)
	if _, err := eng.Exec(ctx, ddl); err != nil {
		log.Fatal(err)
	}
	q, err := eng.RegisterContinuous("agg",
		"SELECT x.k, COUNT(*) AS c, SUM(x.v) AS sv FROM [SELECT * FROM p] AS x GROUP BY x.k",
		datacell.WithBackpressure(datacell.BackpressureDropOldest),
		datacell.WithSubscriptionDepth(4))
	if err != nil {
		log.Fatal(err)
	}
	if shards > 1 && q.Shards() != shards {
		log.Fatalf("query fell back to %d shard(s), want %d", q.Shards(), shards)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range q.Subscription().C() {
		}
	}()
	if err := eng.Start(ctx); err != nil {
		log.Fatal(err)
	}

	// Pre-build ingest batches: 4096 distinct group keys spread across
	// shards by hash, so the ingest loop measures routing + pipelines, not
	// row construction.
	const batchRows, groups, nBatches = 4096, 4096, 8
	batches := make([][]*vector.Vector, nBatches)
	for b := range batches {
		k := vector.NewWithCap(vector.Int64, batchRows)
		v := vector.NewWithCap(vector.Int64, batchRows)
		for i := 0; i < batchRows; i++ {
			k.AppendInt(int64((b*batchRows + i*7) % groups))
			v.AppendInt(int64(i))
		}
		batches[b] = []*vector.Vector{k, v}
	}

	start := time.Now()
	sent := 0
	for b := 0; sent < tuples; b++ {
		if err := eng.IngestColumns(ctx, "p", batches[b%nBatches]); err != nil {
			log.Fatal(err)
		}
		sent += batchRows
	}
	deadline := time.Now().Add(2 * time.Minute)
	for q.Stats().TuplesIn < int64(sent) || q.MergeLag() > 0 {
		if time.Now().After(deadline) {
			log.Fatalf("partitioned bench stalled: %d of %d consumed, merge lag %d",
				q.Stats().TuplesIn, sent, q.MergeLag())
		}
		time.Sleep(100 * time.Microsecond)
	}
	elapsed := time.Since(start)
	if err := eng.Stop(ctx); err != nil {
		log.Fatal(err)
	}
	<-done

	r := PartResult{
		Name:         "partitioned_throughput",
		Cpus:         cpus,
		Shards:       shards,
		Tuples:       sent,
		TuplesPerSec: float64(sent) / elapsed.Seconds(),
		NsPerTuple:   float64(elapsed.Nanoseconds()) / float64(sent),
	}
	fmt.Fprintf(os.Stderr, "%-22s cpus=%d shards=%d %12.0f tuples/s %8.1f ns/tuple\n",
		r.Name, cpus, shards, r.TuplesPerSec, r.NsPerTuple)
	return r
}

// benchObs measures the observability layer's hot-path tax: the
// partitioned-throughput workload with metrics enabled vs disabled,
// interleaved over `rounds` rounds (best run per arm, so scheduler and
// allocator warm-up noise cancels instead of biasing one arm). When the
// on-arm's ns/tuple exceeds the off-arm's by more than maxOverheadPct
// the process exits nonzero — the acceptance gate for "instrumentation
// is effectively free".
func benchObs(cpus, shards, tuples, rounds int, maxOverheadPct float64) []ObsResult {
	var on, off PartResult
	for r := 0; r < rounds; r++ {
		for _, disabled := range []bool{true, false} {
			res := benchPartitionedMetrics(cpus, shards, tuples, disabled)
			if disabled {
				if off.Tuples == 0 || res.NsPerTuple < off.NsPerTuple {
					off = res
				}
			} else if on.Tuples == 0 || res.NsPerTuple < on.NsPerTuple {
				on = res
			}
		}
	}
	overhead := (on.NsPerTuple - off.NsPerTuple) / off.NsPerTuple * 100
	fmt.Fprintf(os.Stderr, "obs_overhead           cpus=%d shards=%d on=%.1f off=%.1f ns/tuple (%.2f%% overhead, limit %.0f%%)\n",
		cpus, shards, on.NsPerTuple, off.NsPerTuple, overhead, maxOverheadPct)
	if overhead > maxOverheadPct {
		log.Fatalf("instrumentation overhead %.2f%% exceeds %.0f%% budget", overhead, maxOverheadPct)
	}
	mk := func(p PartResult, metrics string, ov float64) ObsResult {
		return ObsResult{
			Name: "obs_overhead", Metrics: metrics, Cpus: p.Cpus, Shards: p.Shards,
			Tuples: p.Tuples, TuplesPerSec: p.TuplesPerSec, NsPerTuple: p.NsPerTuple,
			OverheadPct: ov,
		}
	}
	return []ObsResult{mk(off, "off", 0), mk(on, "on", overhead)}
}

// benchMultiquery measures the per-batch cost of running many continuous
// queries over one stream: nQueries filters registered with the given
// strategy, then tuples rows ingested in fixed batches with a
// deterministic Drain after each ingest (no scheduler workers, so the
// measurement is pure pipeline cost, not wake-up latency).
//
// Workloads:
//   - "mixed": selective equality predicates (WHERE v = i) over a value
//     domain sized so ~1% of them match every batch, plus ~1% always-
//     match residual queries — the paper's many-subscribers shape.
//   - "nonmatch": every query is a selective equality that no batch
//     value ever hits — isolates routing overhead, since a routed scan
//     should do one index probe per batch and evaluate nothing.
func benchMultiquery(strategy datacell.Strategy, workload string, nQueries, tuples int) MultiResult {
	ctx := context.Background()
	eng := mustEngine("CREATE BASKET mq (v INT)")

	alwaysN := nQueries / 100
	selective := nQueries - alwaysN
	matchDomain := selective / 100
	if matchDomain < 1 {
		matchDomain = 1
	}
	if workload == "nonmatch" {
		alwaysN, selective, matchDomain = 0, nQueries, 0
	}

	regStart := time.Now()
	queries := make([]*datacell.Query, 0, nQueries)
	for i := 0; i < nQueries; i++ {
		text := fmt.Sprintf("SELECT x.v FROM [SELECT * FROM mq] AS x WHERE x.v = %d", i)
		if i >= selective {
			text = "SELECT x.v FROM [SELECT * FROM mq] AS x"
		}
		q, err := eng.RegisterContinuous(fmt.Sprintf("mq%d", i), text,
			datacell.WithStrategy(strategy), datacell.WithSQLPolling())
		if err != nil {
			log.Fatal(err)
		}
		if q.Strategy != strategy {
			log.Fatalf("mq%d fell back to strategy %s, want %s", i, q.Strategy, strategy)
		}
		queries = append(queries, q)
	}
	registerMs := float64(time.Since(regStart).Nanoseconds()) / 1e6

	// Prebuild a few distinct ingest batches so the timed loop measures
	// routing + evaluation, not row construction. Mixed batches cycle
	// values through [0, matchDomain); nonmatch batches carry a value no
	// registered predicate accepts.
	const batchRows, distinct = 1024, 8
	nBatches := tuples / batchRows
	if nBatches < 1 {
		nBatches = 1
	}
	prebuilt := make([][]*vector.Vector, distinct)
	for b := range prebuilt {
		v := vector.NewWithCap(vector.Int64, batchRows)
		for i := 0; i < batchRows; i++ {
			if matchDomain == 0 {
				v.AppendInt(-1)
			} else {
				v.AppendInt(int64((b*batchRows + i) % matchDomain))
			}
		}
		prebuilt[b] = []*vector.Vector{v}
	}

	start := time.Now()
	for b := 0; b < nBatches; b++ {
		if err := eng.IngestColumns(ctx, "mq", prebuilt[b%distinct]); err != nil {
			log.Fatal(err)
		}
		eng.Drain()
	}
	elapsed := time.Since(start)

	var rowsOut int64
	for _, q := range queries {
		rowsOut += q.Stats().TuplesOut
	}
	sent := nBatches * batchRows
	r := MultiResult{
		Name:         "multiquery",
		Strategy:     strategy.String(),
		Workload:     workload,
		Queries:      nQueries,
		BatchRows:    batchRows,
		Batches:      nBatches,
		Tuples:       sent,
		RegisterMs:   registerMs,
		TuplesPerSec: float64(sent) / elapsed.Seconds(),
		NsPerTuple:   float64(elapsed.Nanoseconds()) / float64(sent),
		NsPerBatch:   float64(elapsed.Nanoseconds()) / float64(nBatches),
		RowsOut:      rowsOut,
	}
	fmt.Fprintf(os.Stderr, "%-22s strategy=%-8s workload=%-8s queries=%-6d %12.0f tuples/s %10.0f ns/batch rows_out=%d reg=%.0fms\n",
		r.Name, r.Strategy, r.Workload, r.Queries, r.TuplesPerSec, r.NsPerBatch, r.RowsOut, r.RegisterMs)
	return r
}

// benchWindowed measures ingest-to-merge throughput of an event-time
// windowed GROUP BY aligned with the partition key (tumbling 4096-tick
// windows, lateness 512) over a stream sharded `shards` ways.
// disorderPct percent of the tuples are displaced backward in event time
// by up to the lateness bound, so the window runners exercise the
// out-of-order insertion path without dropping anything as late.
func benchWindowed(cpus, shards, disorderPct, tuples int) WindowedResult {
	prev := runtime.GOMAXPROCS(cpus)
	defer runtime.GOMAXPROCS(prev)
	ctx := context.Background()

	const lateness = 512
	eng := datacell.New(datacell.Config{Workers: cpus})
	ddl := fmt.Sprintf("CREATE BASKET w (k INT, v INT, et INT) WITH (partitions = %d, partition_by = k)", shards)
	if _, err := eng.Exec(ctx, ddl); err != nil {
		log.Fatal(err)
	}
	q, err := eng.RegisterContinuous("winagg",
		"SELECT x.k, COUNT(*) AS c, SUM(x.v) AS sv FROM [SELECT * FROM w] AS x GROUP BY x.k WINDOW RANGE 4096 SLIDE 4096",
		datacell.WithEventTimeColumn("et"),
		datacell.WithLateness(lateness),
		datacell.WithBackpressure(datacell.BackpressureDropOldest),
		datacell.WithSubscriptionDepth(4))
	if err != nil {
		log.Fatal(err)
	}
	if shards > 1 && q.Shards() != shards {
		log.Fatalf("windowed query fell back to %d shard(s), want %d", q.Shards(), shards)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range q.Subscription().C() {
		}
	}()
	if err := eng.Start(ctx); err != nil {
		log.Fatal(err)
	}

	// Pre-build the key/value columns; the event-time column is rebuilt
	// per send because it must advance monotonically for the whole run
	// (one tick per tuple, a disordered tuple pulled back by up to
	// lateness/2 — within the declared bound, so nothing counts late).
	const batchRows, groups, nBatches = 4096, 1024, 8
	rng := newSplitmix(99)
	batches := make([][]*vector.Vector, nBatches)
	for b := range batches {
		k := vector.NewWithCap(vector.Int64, batchRows)
		v := vector.NewWithCap(vector.Int64, batchRows)
		for i := 0; i < batchRows; i++ {
			k.AppendInt(int64((b*batchRows + i*7) % groups))
			v.AppendInt(int64(i))
		}
		batches[b] = []*vector.Vector{k, v}
	}
	et := int64(lateness) // start beyond the displacement range

	start := time.Now()
	sent := 0
	for b := 0; sent < tuples; b++ {
		e := vector.NewWithCap(vector.Int64, batchRows)
		for i := 0; i < batchRows; i++ {
			ts := et
			if disorderPct > 0 && int(rng()%100) < disorderPct {
				ts -= int64(rng() % (lateness / 2))
			}
			e.AppendInt(ts)
			et++
		}
		kv := batches[b%nBatches]
		if err := eng.IngestColumns(ctx, "w", []*vector.Vector{kv[0], kv[1], e}); err != nil {
			log.Fatal(err)
		}
		sent += batchRows
	}
	deadline := time.Now().Add(2 * time.Minute)
	for q.Stats().TuplesIn < int64(sent) || q.MergeLag() > 0 {
		if time.Now().After(deadline) {
			log.Fatalf("windowed bench stalled: %d of %d consumed, merge lag %d",
				q.Stats().TuplesIn, sent, q.MergeLag())
		}
		time.Sleep(100 * time.Microsecond)
	}
	elapsed := time.Since(start)
	late := q.LateTuples()
	if late != 0 {
		// Displacement stays strictly inside the lateness bound, so any
		// late count is a watermark-correctness regression, not noise.
		log.Fatalf("windowed bench dropped %d tuples as late under bounded disorder", late)
	}
	if err := eng.Stop(ctx); err != nil {
		log.Fatal(err)
	}
	<-done

	r := WindowedResult{
		Name:         "windowed_throughput",
		Cpus:         cpus,
		Shards:       shards,
		DisorderPct:  disorderPct,
		Tuples:       sent,
		TuplesPerSec: float64(sent) / elapsed.Seconds(),
		NsPerTuple:   float64(elapsed.Nanoseconds()) / float64(sent),
		LateTuples:   late,
	}
	fmt.Fprintf(os.Stderr, "%-22s cpus=%d shards=%d disorder=%d%% %12.0f tuples/s %8.1f ns/tuple late=%d\n",
		r.Name, cpus, shards, disorderPct, r.TuplesPerSec, r.NsPerTuple, late)
	return r
}

// benchJoinStreamStream measures a stream-stream equi-join with a WITHIN
// band: both streams advance one event-time tick per tuple, keys are
// spread over a domain wide enough that each tuple finds a bounded number
// of band partners, and the symmetric hash state is expired behind the
// watermark. With shards > 1 both streams are hash-partitioned on the
// join key, so the join runs co-partitioned.
func benchJoinStreamStream(cpus, shards, tuples int) JoinResult {
	prev := runtime.GOMAXPROCS(cpus)
	defer runtime.GOMAXPROCS(prev)
	ctx := context.Background()

	const within, lateness, keys = 4096, 512, 1 << 16
	eng := datacell.New(datacell.Config{Workers: cpus})
	with := ""
	if shards > 1 {
		with = fmt.Sprintf(" WITH (partitions = %d, partition_by = k)", shards)
	}
	for _, ddl := range []string{
		"CREATE BASKET ja (k INT, v INT, et INT)" + with,
		"CREATE BASKET jb (k INT, v INT, et INT)" + with,
	} {
		if _, err := eng.Exec(ctx, ddl); err != nil {
			log.Fatal(err)
		}
	}
	q, err := eng.RegisterContinuous("join",
		fmt.Sprintf(`SELECT l.k AS k, l.v AS lv, r.v AS rv
			FROM [SELECT * FROM ja] AS l JOIN [SELECT * FROM jb] AS r
			ON l.k = r.k WITHIN %d`, within),
		datacell.WithEventTimeColumn("et"),
		datacell.WithLateness(lateness),
		datacell.WithBackpressure(datacell.BackpressureDropOldest),
		datacell.WithSubscriptionDepth(4))
	if err != nil {
		log.Fatal(err)
	}
	if shards > 1 && q.Shards() != shards {
		log.Fatalf("join query fell back to %d shard(s), want %d", q.Shards(), shards)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range q.Subscription().C() {
		}
	}()
	if err := eng.Start(ctx); err != nil {
		log.Fatal(err)
	}

	// Both sides share the key schedule (7·et mod keys), so each event
	// tick yields exactly one band match per side pair — bounded match
	// cardinality, non-trivial probe work.
	const batchRows = 4096
	mkBatch := func(base int64) []*vector.Vector {
		k := vector.NewWithCap(vector.Int64, batchRows)
		v := vector.NewWithCap(vector.Int64, batchRows)
		e := vector.NewWithCap(vector.Int64, batchRows)
		for i := 0; i < batchRows; i++ {
			et := base + int64(i)
			k.AppendInt((et * 7) % keys)
			v.AppendInt(int64(i))
			e.AppendInt(et)
		}
		return []*vector.Vector{k, v, e}
	}

	start := time.Now()
	sent := 0
	et := int64(0)
	for sent < tuples {
		if err := eng.IngestColumns(ctx, "ja", mkBatch(et)); err != nil {
			log.Fatal(err)
		}
		if err := eng.IngestColumns(ctx, "jb", mkBatch(et)); err != nil {
			log.Fatal(err)
		}
		et += batchRows
		sent += 2 * batchRows
	}
	deadline := time.Now().Add(2 * time.Minute)
	for q.Stats().TuplesIn < int64(sent) || q.MergeLag() > 0 {
		if time.Now().After(deadline) {
			log.Fatalf("join bench stalled: %d of %d consumed, merge lag %d",
				q.Stats().TuplesIn, sent, q.MergeLag())
		}
		time.Sleep(100 * time.Microsecond)
	}
	elapsed := time.Since(start)
	st := q.Stats()
	if err := eng.Stop(ctx); err != nil {
		log.Fatal(err)
	}
	<-done

	r := JoinResult{
		Name:         "join_throughput",
		Mode:         "stream_stream",
		Cpus:         cpus,
		Shards:       shards,
		Tuples:       sent,
		TuplesPerSec: float64(sent) / elapsed.Seconds(),
		NsPerTuple:   float64(elapsed.Nanoseconds()) / float64(sent),
		Matches:      st.TuplesOut,
		JoinState:    st.JoinState,
		Evictions:    st.JoinEvictions,
	}
	fmt.Fprintf(os.Stderr, "%-22s mode=%-13s cpus=%d shards=%d %12.0f tuples/s %8.1f ns/tuple state=%d evicted=%d\n",
		r.Name, r.Mode, cpus, shards, r.TuplesPerSec, r.NsPerTuple, r.JoinState, r.Evictions)
	return r
}

// benchJoinStreamTable measures stream-table enrichment: each stream
// tuple probes a cached hash of a 4096-row reference table (rebuilt only
// when the table changes). With shards > 1 the table is broadcast to
// every shard pipeline.
func benchJoinStreamTable(cpus, shards, tuples int) JoinResult {
	prev := runtime.GOMAXPROCS(cpus)
	defer runtime.GOMAXPROCS(prev)
	ctx := context.Background()

	const refRows, keys = 4096, 8192 // every second key matches
	eng := datacell.New(datacell.Config{Workers: cpus})
	with := ""
	if shards > 1 {
		with = fmt.Sprintf(" WITH (partitions = %d, partition_by = k)", shards)
	}
	if _, err := eng.Exec(ctx, "CREATE BASKET js (k INT, v INT)"+with); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Exec(ctx, "CREATE TABLE jref (k INT, name VARCHAR)"); err != nil {
		log.Fatal(err)
	}
	var ins strings.Builder
	for i := 0; i < refRows; i++ {
		if i%512 == 0 {
			if i > 0 {
				if _, err := eng.Exec(ctx, ins.String()); err != nil {
					log.Fatal(err)
				}
			}
			ins.Reset()
			ins.WriteString("INSERT INTO jref VALUES ")
		} else {
			ins.WriteString(", ")
		}
		fmt.Fprintf(&ins, "(%d, 'name%d')", i*2, i)
	}
	if _, err := eng.Exec(ctx, ins.String()); err != nil {
		log.Fatal(err)
	}
	q, err := eng.RegisterContinuous("enrich",
		`SELECT s.k AS k, s.v AS v, jref.name AS name
		 FROM [SELECT * FROM js] AS s JOIN jref ON s.k = jref.k`,
		datacell.WithBackpressure(datacell.BackpressureDropOldest),
		datacell.WithSubscriptionDepth(4))
	if err != nil {
		log.Fatal(err)
	}
	if shards > 1 && q.Shards() != shards {
		log.Fatalf("enrichment query fell back to %d shard(s), want %d", q.Shards(), shards)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range q.Subscription().C() {
		}
	}()
	if err := eng.Start(ctx); err != nil {
		log.Fatal(err)
	}

	const batchRows, nBatches = 4096, 8
	batches := make([][]*vector.Vector, nBatches)
	for b := range batches {
		k := vector.NewWithCap(vector.Int64, batchRows)
		v := vector.NewWithCap(vector.Int64, batchRows)
		for i := 0; i < batchRows; i++ {
			k.AppendInt(int64((b*batchRows + i*7) % keys))
			v.AppendInt(int64(i))
		}
		batches[b] = []*vector.Vector{k, v}
	}

	start := time.Now()
	sent := 0
	for b := 0; sent < tuples; b++ {
		if err := eng.IngestColumns(ctx, "js", batches[b%nBatches]); err != nil {
			log.Fatal(err)
		}
		sent += batchRows
	}
	deadline := time.Now().Add(2 * time.Minute)
	for q.Stats().TuplesIn < int64(sent) || q.MergeLag() > 0 {
		if time.Now().After(deadline) {
			log.Fatalf("enrichment bench stalled: %d of %d consumed, merge lag %d",
				q.Stats().TuplesIn, sent, q.MergeLag())
		}
		time.Sleep(100 * time.Microsecond)
	}
	elapsed := time.Since(start)
	st := q.Stats()
	if err := eng.Stop(ctx); err != nil {
		log.Fatal(err)
	}
	<-done

	r := JoinResult{
		Name:         "join_throughput",
		Mode:         "stream_table",
		Cpus:         cpus,
		Shards:       shards,
		Tuples:       sent,
		TuplesPerSec: float64(sent) / elapsed.Seconds(),
		NsPerTuple:   float64(elapsed.Nanoseconds()) / float64(sent),
		Matches:      st.TuplesOut,
		JoinState:    st.JoinState,
		Evictions:    st.JoinEvictions,
	}
	fmt.Fprintf(os.Stderr, "%-22s mode=%-13s cpus=%d shards=%d %12.0f tuples/s %8.1f ns/tuple state=%d\n",
		r.Name, r.Mode, cpus, shards, r.TuplesPerSec, r.NsPerTuple, r.JoinState)
	return r
}

// benchDurability measures the durability tax and the recovery path:
// the same consume-all continuous filter is driven with the WAL off
// (volatile engine) and on (group-committed ingest), and crash recovery
// is timed against logs of growing size — the engine is "killed" by
// copying its live data directory without Stop, so the reopened copy
// must replay the whole tail.
func benchDurability(tuples int) []DurabilityResult {
	ctx := context.Background()
	const batchRows, nBatches = 4096, 8
	batches := make([][]*vector.Vector, nBatches)
	for b := range batches {
		k := vector.NewWithCap(vector.Int64, batchRows)
		v := vector.NewWithCap(vector.Int64, batchRows)
		for i := 0; i < batchRows; i++ {
			k.AppendInt(int64((b*batchRows + i*7) % 4096))
			v.AppendInt(int64(i % 1000))
		}
		batches[b] = []*vector.Vector{k, v}
	}

	// run ingests n tuples through a filter query from several
	// concurrent ingesters — the group-commit shape: committers that
	// arrive during an fsync share the next round, so the per-batch
	// durability tax amortizes. It returns the elapsed wall time with
	// the engine still running (so a durable run's directory can be
	// copied "mid-crash" before Stop).
	const ingesters = 8
	run := func(dir string, n int) (time.Duration, int, *datacell.Engine) {
		var eng *datacell.Engine
		if dir == "" {
			eng = datacell.New(datacell.Config{Workers: 2})
		} else {
			var err error
			eng, err = datacell.Open(ctx, datacell.Config{Workers: 2, DataDir: dir, CheckpointInterval: -1})
			if err != nil {
				log.Fatal(err)
			}
		}
		if _, err := eng.Exec(ctx, "CREATE BASKET d (k INT, v INT)"); err != nil {
			log.Fatal(err)
		}
		q, err := eng.RegisterContinuous("filt",
			"SELECT * FROM [SELECT * FROM d] AS x WHERE x.v < 500",
			datacell.WithBackpressure(datacell.BackpressureDropOldest),
			datacell.WithSubscriptionDepth(4))
		if err != nil {
			log.Fatal(err)
		}
		go func() {
			for range q.Subscription().C() {
			}
		}()
		if err := eng.Start(ctx); err != nil {
			log.Fatal(err)
		}
		perWorker := (n + ingesters*batchRows - 1) / (ingesters * batchRows)
		sent := perWorker * ingesters * batchRows
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < ingesters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for b := 0; b < perWorker; b++ {
					if err := eng.IngestColumns(ctx, "d", batches[(w+b)%nBatches]); err != nil {
						log.Fatal(err)
					}
				}
			}(w)
		}
		wg.Wait()
		deadline := time.Now().Add(2 * time.Minute)
		for q.Stats().TuplesIn < int64(sent) {
			if time.Now().After(deadline) {
				log.Fatalf("durability bench stalled: %d of %d consumed", q.Stats().TuplesIn, sent)
			}
			time.Sleep(100 * time.Microsecond)
		}
		return time.Since(start), sent, eng
	}

	// Throughput runs use a 4x longer stream than the recovery points:
	// at the base count a wal_off pass lasts only ~10 ms, so process
	// warm-up and the phase of the GC cycle dominate the reading and the
	// wal_on/wal_off ratio swings run to run. The longer window averages
	// those out; recovery keeps the smaller graded sizes so replay cost
	// vs log length stays visible.
	thr := tuples * 4

	var out []DurabilityResult
	elOff, sentOff, engOff := run("", thr)
	if err := engOff.Stop(ctx); err != nil {
		log.Fatal(err)
	}
	r := DurabilityResult{
		Name:         "durability",
		Mode:         "wal_off",
		Tuples:       sentOff,
		TuplesPerSec: float64(sentOff) / elOff.Seconds(),
		NsPerTuple:   float64(elOff.Nanoseconds()) / float64(sentOff),
	}
	fmt.Fprintf(os.Stderr, "%-22s mode=%-9s %12.0f tuples/s %8.1f ns/tuple\n",
		r.Name, r.Mode, r.TuplesPerSec, r.NsPerTuple)
	out = append(out, r)

	for _, n := range []int{tuples / 4, tuples / 2, thr} {
		dir, err := os.MkdirTemp("", "dcdur-*")
		if err != nil {
			log.Fatal(err)
		}
		rdir, err := os.MkdirTemp("", "dcrec-*")
		if err != nil {
			log.Fatal(err)
		}
		el, sent, eng := run(dir, n)
		st := eng.Stats()
		if err := copyTree(dir, rdir); err != nil {
			log.Fatal(err)
		}
		if err := eng.Stop(ctx); err != nil {
			log.Fatal(err)
		}
		if n == thr {
			r := DurabilityResult{
				Name:         "durability",
				Mode:         "wal_on",
				Tuples:       sent,
				TuplesPerSec: float64(sent) / el.Seconds(),
				NsPerTuple:   float64(el.Nanoseconds()) / float64(sent),
				WALBytes:     st.WALBytes,
			}
			fmt.Fprintf(os.Stderr, "%-22s mode=%-9s %12.0f tuples/s %8.1f ns/tuple wal=%dB\n",
				r.Name, r.Mode, r.TuplesPerSec, r.NsPerTuple, r.WALBytes)
			out = append(out, r)
		}
		t0 := time.Now()
		e2, err := datacell.Open(ctx, datacell.Config{DataDir: rdir, CheckpointInterval: -1})
		if err != nil {
			log.Fatal(err)
		}
		rec := time.Since(t0)
		rst := e2.Stats()
		if err := e2.Stop(ctx); err != nil {
			log.Fatal(err)
		}
		rr := DurabilityResult{
			Name:            "durability",
			Mode:            "recovery",
			Tuples:          sent,
			WALBytes:        st.WALBytes,
			RecoveryMs:      float64(rec.Microseconds()) / 1000,
			ReplayedRecords: rst.RecoveredRecords,
		}
		fmt.Fprintf(os.Stderr, "%-22s mode=%-9s %8d tuples  wal=%-9dB recovered in %7.2f ms (%d records)\n",
			rr.Name, rr.Mode, rr.Tuples, rr.WALBytes, rr.RecoveryMs, rr.ReplayedRecords)
		out = append(out, rr)
		os.RemoveAll(dir)
		os.RemoveAll(rdir)
	}
	return out
}

// copyTree clones a durability data directory — the crash image a
// recovery run reopens.
func copyTree(src, dst string) error {
	return filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
}

// newSplitmix is a tiny deterministic PRNG so batch construction does
// not depend on math/rand ordering across Go versions.
func newSplitmix(seed uint64) func() uint64 {
	state := seed
	return func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}

func parseCpus(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			log.Fatalf("bad -cpus entry %q", f)
		}
		out = append(out, n)
	}
	return out
}

// startProfiles arms the requested pprof profiles and returns the hook
// that flushes them on exit. Mutex and block profiling are sampled at
// full rate only when their output file is requested — both bias the
// timings they observe, so a profiling run's numbers are for hunting
// contention, not for BENCH_results.json.
func startProfiles(cpu, mem, mutex, block string) func() {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
	}
	if mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if block != "" {
		runtime.SetBlockProfileRate(1)
	}
	writeProfile := func(name, path string, debug int) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			log.Fatalf("%s profile: %v", name, err)
		}
		defer f.Close()
		if err := pprof.Lookup(name).WriteTo(f, debug); err != nil {
			log.Fatalf("%s profile: %v", name, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s profile %s\n", name, path)
	}
	return func() {
		if cpu != "" {
			pprof.StopCPUProfile()
			fmt.Fprintf(os.Stderr, "wrote cpu profile %s\n", cpu)
		}
		if mem != "" {
			runtime.GC() // settle allocations so the heap profile is exact
		}
		writeProfile("allocs", mem, 0)
		writeProfile("mutex", mutex, 0)
		writeProfile("block", block, 0)
	}
}

func main() {
	out := flag.String("o", "BENCH_results.json", "output file ('-' for stdout)")
	scenario := flag.String("scenario", "all", "hotpath, partitioned, windowed, join, durability, obs, multiquery, or all")
	cpusFlag := flag.String("cpus", "1,2,4", "GOMAXPROCS settings for the partitioned/windowed scenarios")
	smoke := flag.Bool("smoke", false, "tiny partitioned/windowed workload (CI sanity run)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex-contention profile to this file on exit")
	blockProfile := flag.String("blockprofile", "", "write a blocking profile to this file on exit")
	flag.Parse()
	defer startProfiles(*cpuProfile, *memProfile, *mutexProfile, *blockProfile)()

	var results []Result
	if *scenario == "all" || *scenario == "hotpath" {
		for _, d := range depths {
			results = append(results, benchDropPrefix(d))
		}
		for _, d := range depths {
			results = append(results, benchRemoveTail(d))
		}
		for _, d := range depths {
			results = append(results, benchIngestEmitWindow(d))
		}
		results = append(results, benchIngestEmitAll())
	}

	var part []PartResult
	if *scenario == "all" || *scenario == "partitioned" {
		tuples := 1 << 19
		if *smoke {
			tuples = 1 << 14
		}
		for _, c := range parseCpus(*cpusFlag) {
			for _, shards := range []int{1, 2, 4} {
				part = append(part, benchPartitioned(c, shards, tuples))
			}
		}
	}

	var win []WindowedResult
	if *scenario == "all" || *scenario == "windowed" {
		tuples := 1 << 19
		if *smoke {
			tuples = 1 << 14
		}
		for _, c := range parseCpus(*cpusFlag) {
			for _, shards := range []int{1, 4} {
				for _, disorder := range []int{0, 10} {
					win = append(win, benchWindowed(c, shards, disorder, tuples))
				}
			}
		}
	}

	var join []JoinResult
	if *scenario == "all" || *scenario == "join" {
		tuples := 1 << 19
		if *smoke {
			tuples = 1 << 14
		}
		for _, c := range parseCpus(*cpusFlag) {
			for _, shards := range []int{1, 4} {
				join = append(join, benchJoinStreamStream(c, shards, tuples))
				join = append(join, benchJoinStreamTable(c, shards, tuples))
			}
		}
	}

	var dur []DurabilityResult
	if *scenario == "all" || *scenario == "durability" {
		tuples := 1 << 18
		if *smoke {
			tuples = 1 << 14
		}
		dur = benchDurability(tuples)
	}

	var obsRes []ObsResult
	if *scenario == "all" || *scenario == "obs" {
		tuples, rounds, limit := 1<<19, 3, 5.0
		if *smoke {
			// Smoke workloads are too small for a tight bound: a single
			// scheduler hiccup is worth more than 5% of the run. Keep the
			// gate but loosen it to a sanity threshold.
			tuples, rounds, limit = 1<<16, 2, 25.0
		}
		obsRes = benchObs(1, 1, tuples, rounds, limit)
	}

	var multi []MultiResult
	if *scenario == "all" || *scenario == "multiquery" {
		tuples := 1 << 17
		if *smoke {
			tuples = 1 << 14
		}
		for _, n := range []int{1, 100, 10_000} {
			multi = append(multi, benchMultiquery(datacell.RoutedScan, "mixed", n, tuples))
		}
		for _, n := range []int{1, 100, 10_000} {
			t := tuples
			if n == 10_000 {
				if *smoke {
					// Registering 10k replica pipelines alone dwarfs a CI
					// smoke run; the full run records the comparison.
					continue
				}
				t = tuples / 8
			}
			multi = append(multi, benchMultiquery(datacell.SeparateBaskets, "mixed", n, t))
		}
		for _, n := range []int{1, 10_000} {
			multi = append(multi, benchMultiquery(datacell.RoutedScan, "nonmatch", n, tuples))
		}
	}

	rep := Report{
		Note: "basket hot-path trajectory: 'before_chunked_storage' was measured on the flat " +
			"suffix-copying storage layer (commit f207497); 'current' is this checkout. " +
			"batch=256 rows/op; depth is the resident basket backlog during the op. " +
			"'partitioned' is single-query ingest-to-merge throughput of a grouped continuous " +
			"query at GOMAXPROCS=cpus with the stream hash-sharded `shards` ways (4096-row " +
			"batches, 4096 groups); shard scaling needs num_cpu >= shards to materialize — " +
			"'partitioned_before_execution_core' is the same scenario before the sharded " +
			"run-queue / targeted-wakeup / ring-handoff rework (on a 1-CPU container both " +
			"sides only show the contention tax, not the speedup; see num_cpu). " +
			"'windowed' is an event-time tumbling-window GROUP BY aligned with the partition key " +
			"(window 4096 ticks, lateness 512), flat vs sharded, with disorder_pct of the input " +
			"displaced backward within the lateness bound — late_tuples must stay 0. " +
			"'join' is streaming-join throughput: stream_stream is a symmetric-hash equi-join " +
			"with WITHIN 4096 ticks (state expired behind the watermark, co-partitioned when " +
			"shards > 1), stream_table is enrichment against a 4096-row reference table " +
			"(cached table-side hash, broadcast when shards > 1). " +
			"'durability' is the WAL tax and recovery path: the same continuous filter driven " +
			"with the WAL off vs on (group-committed 4096-row ingest batches, background " +
			"checkpointer off), and dirty-crash recovery wall time (Open + full tail replay of " +
			"a copied live data directory) against logs of growing size. " +
			"'obs_overhead' is the partitioned workload with the observability layer on vs off " +
			"(Config.DisableMetrics), interleaved best-of-N per arm; overhead_pct on the 'on' row " +
			"is the instrumentation tax and the run fails above the stated budget. " +
			"'multiquery' is the shared-scan scenario: N continuous filters over one stream " +
			"(selective equality predicates sized so ~1% match each batch, plus ~1% always-match " +
			"residuals; 'nonmatch' arms match nothing), driven batch-by-batch with a deterministic " +
			"drain. strategy=routed shares one scan per stream with predicate-indexed routing and " +
			"common-subplan sharing; strategy=separate is the naive per-query replica arrangement. " +
			"ns_per_batch is the figure routing must keep near-flat as N grows.",
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Baseline:    baseline,
		Current:     results,
		PartBefore:  partBaseline,
		Partitioned: part,
		Windowed:    win,
		Join:        join,
		Durability:  dur,
		Obs:         obsRes,
		Multi:       multi,
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
