// Command datacell-vet is the repository's vet tool: it runs the stock
// `go vet` passes and then the custom invariant analyzers from
// internal/analysis/passes — lockorder, atomicmix, capturerestore, and
// errcmp (see docs/INVARIANTS.md for the invariants they encode).
//
// Usage:
//
//	datacell-vet [flags] [packages]
//
// With no packages, ./... is analyzed. Exit status is 1 when stock vet
// or any custom analyzer reports a diagnostic. False positives are
// suppressed in source with `//lint:ignore <analyzer> <reason>` on the
// flagged line or the line above; deliberate lock-order inversions are
// declared as `allow` edges in lockorder.conf.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/analysis/passes/atomicmix"
	"repro/internal/analysis/passes/capturerestore"
	"repro/internal/analysis/passes/errcmp"
	"repro/internal/analysis/passes/lockorder"
)

func main() {
	var (
		configPath = flag.String("lockorder.config", "", "lock hierarchy config file (default <module root>/lockorder.conf)")
		rootPkg    = flag.String("capturerestore.root", "repro/internal/datacell", "package owning the checkpoint image walk")
		modPrefix  = flag.String("errcmp.module", "repro/", "import path prefix of module sentinel errors")
		noStockVet = flag.Bool("nostdvet", false, "skip the stock `go vet` passes")
	)
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	ok := true
	if !*noStockVet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			if _, isExit := err.(*exec.ExitError); !isExit {
				fmt.Fprintf(os.Stderr, "datacell-vet: running go vet: %v\n", err)
				os.Exit(2)
			}
			ok = false
		}
	}

	res, err := load.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datacell-vet: %v\n", err)
		os.Exit(2)
	}

	cfgPath := *configPath
	if cfgPath == "" {
		cfgPath = filepath.Join(res.ModuleDir, "lockorder.conf")
	}
	lockCfg, err := lockorder.LoadConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datacell-vet: %v\n", err)
		os.Exit(2)
	}

	analyzers := []*analysis.Analyzer{
		lockorder.NewAnalyzer(lockCfg),
		atomicmix.Analyzer,
		capturerestore.NewAnalyzer(*rootPkg),
		errcmp.NewAnalyzer(*modPrefix),
	}
	diags, err := analysis.Run(res.Pkgs, analyzers, func(pkgPath string) bool {
		return res.Targets[pkgPath]
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "datacell-vet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		pos := res.Fset.Position(d.Pos)
		rel := pos.Filename
		if r, err := filepath.Rel(res.ModuleDir, pos.Filename); err == nil && r != "" && r[0] != '.' {
			rel = r
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [%s]\n", rel, pos.Line, pos.Column, d.Message, d.Analyzer.Name)
	}
	if len(diags) > 0 || !ok {
		os.Exit(1)
	}
}
