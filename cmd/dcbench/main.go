// Command dcbench regenerates the paper-reproduction experiment tables
// (DESIGN.md §3): the Figure-1 pipeline and experiments E1–E7. Run all of
// them or a single one:
//
//	dcbench                 # everything at full scale
//	dcbench -exp e1         # one experiment
//	dcbench -scale 0.1      # quicker, smaller run
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: f1, e1..e7, or all")
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = full)")
	flag.Parse()

	s := experiments.Scale(*scale)
	runners := map[string]func(experiments.Scale) (*experiments.Table, error){
		"f1": experiments.F1,
		"e1": experiments.E1,
		"e2": experiments.E2,
		"e3": experiments.E3,
		"e4": experiments.E4,
		"e5": experiments.E5,
		"e6": experiments.E6,
		"e7": experiments.E7,
	}

	name := strings.ToLower(*exp)
	if name == "all" {
		tables, err := experiments.All(s)
		for _, t := range tables {
			fmt.Println(t)
		}
		if err != nil {
			log.Fatal(err)
		}
		return
	}
	fn, ok := runners[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want f1, e1..e7, all)\n", *exp)
		os.Exit(2)
	}
	tbl, err := fn(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tbl)
}
