// Command datacelld runs the DataCell as a network stream engine: TCP
// receptors accept flat-text tuples into streams, TCP emitters deliver
// continuous-query results to subscribers, and a control port accepts SQL
// (§2.1's adapter periphery).
//
// The engine is configured by a small script of statements executed at
// startup (-init), e.g.:
//
//	CREATE BASKET sensors (id INT, temp DOUBLE);
//	CREATE CONTINUOUS QUERY overheat AS
//	    SELECT * FROM [SELECT * FROM sensors] AS s WHERE s.temp > 30.0;
//
// The same DDL works live over the control port: CREATE CONTINUOUS QUERY,
// DROP CONTINUOUS QUERY, and SHOW QUERIES/BASKETS all route through the
// one SQL entry point.
//
// Ports:
//
//	-ingest  : one connection per stream; the first line names the stream,
//	           subsequent lines are comma-separated tuples.
//	-results : the first line names a continuous query; result tuples follow.
//	-sql     : one-time SQL per line; results return as text.
//	-metrics : observability HTTP endpoint (/metrics Prometheus text,
//	           /healthz, /debug/pprof/); empty disables it.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	datacell "repro"
	"repro/internal/server"
)

func main() {
	ingestAddr := flag.String("ingest", "127.0.0.1:7711", "stream ingestion listener")
	resultAddr := flag.String("results", "127.0.0.1:7712", "result subscription listener")
	sqlAddr := flag.String("sql", "127.0.0.1:7713", "one-time SQL listener")
	initFile := flag.String("init", "", "statement script executed at startup")
	workers := flag.Int("workers", 4, "scheduler workers")
	metricsAddr := flag.String("metrics", "", "observability HTTP listener (/metrics, /healthz, /debug/pprof/); empty = off")
	dataDir := flag.String("data", "", "durable data directory (WAL + checkpoints); empty = in-memory")
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	eng, err := datacell.Open(ctx, datacell.Config{
		Workers:     *workers,
		MetricsAddr: *metricsAddr,
		DataDir:     *dataDir,
	})
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	srv := server.New(eng)
	srv.Logf = log.Printf

	if *initFile != "" {
		script, err := os.ReadFile(*initFile)
		if err != nil {
			log.Fatalf("init script: %v", err)
		}
		if err := srv.RunScript(ctx, string(script)); err != nil {
			log.Fatalf("init script: %v", err)
		}
	}
	if err := eng.Start(ctx); err != nil {
		log.Fatalf("start: %v", err)
	}

	in, err := srv.ListenIngest(*ingestAddr)
	if err != nil {
		log.Fatal(err)
	}
	res, err := srv.ListenResults(*resultAddr)
	if err != nil {
		log.Fatal(err)
	}
	ctl, err := srv.ListenSQL(*sqlAddr)
	if err != nil {
		log.Fatal(err)
	}
	if m := eng.MetricsAddr(); m != "" {
		log.Printf("datacelld: ingest=%s results=%s sql=%s metrics=http://%s/metrics", in, res, ctl, m)
	} else {
		log.Printf("datacelld: ingest=%s results=%s sql=%s", in, res, ctl)
	}

	<-ctx.Done()
	log.Printf("datacelld: shutting down")
	srv.Close()
	drainCtx, drainCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer drainCancel()
	if err := eng.Stop(drainCtx); err != nil {
		log.Printf("datacelld: drain incomplete: %v", err)
	}
}
