// Command datacelld runs the DataCell as a network stream engine: TCP
// receptors accept flat-text tuples into streams, TCP emitters deliver
// continuous-query results to subscribers, and a control port accepts SQL
// (§2.1's adapter periphery).
//
// The engine is configured by a small script of statements executed at
// startup (-init), e.g.:
//
//	CREATE BASKET sensors (id INT, temp DOUBLE);
//	CONTINUOUS overheat SELECT * FROM [SELECT * FROM sensors] AS s WHERE s.temp > 30.0;
//
// Ports:
//
//	-ingest  : one connection per stream; the first line names the stream,
//	           subsequent lines are comma-separated tuples.
//	-results : the first line names a continuous query; result tuples follow.
//	-sql     : one-time SQL per line; results return as text.
package main

import (
	"flag"
	"log"
	"os"

	datacell "repro"
	"repro/internal/server"
)

func main() {
	ingestAddr := flag.String("ingest", "127.0.0.1:7711", "stream ingestion listener")
	resultAddr := flag.String("results", "127.0.0.1:7712", "result subscription listener")
	sqlAddr := flag.String("sql", "127.0.0.1:7713", "one-time SQL listener")
	initFile := flag.String("init", "", "statement script executed at startup")
	workers := flag.Int("workers", 4, "scheduler workers")
	flag.Parse()

	eng := datacell.New(datacell.Config{Workers: *workers})
	srv := server.New(eng)
	srv.Logf = log.Printf

	if *initFile != "" {
		script, err := os.ReadFile(*initFile)
		if err != nil {
			log.Fatalf("init script: %v", err)
		}
		if err := srv.RunScript(string(script)); err != nil {
			log.Fatalf("init script: %v", err)
		}
	}
	eng.Start()
	defer eng.Stop()

	in, err := srv.ListenIngest(*ingestAddr)
	if err != nil {
		log.Fatal(err)
	}
	res, err := srv.ListenResults(*resultAddr)
	if err != nil {
		log.Fatal(err)
	}
	ctl, err := srv.ListenSQL(*sqlAddr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("datacelld: ingest=%s results=%s sql=%s", in, res, ctl)
	select {} // serve forever
}
