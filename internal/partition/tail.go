package partition

import (
	"sync"
	"sync/atomic"

	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/metrics"
	"repro/internal/ring"
	"repro/internal/storage"
	"repro/internal/vector"
)

// Tail is the shard-pipeline→merge handoff: a bounded SPSC ring of result
// batches that replaces the per-shard output basket on the partitioned
// path. The shard factory is the producer (factories never fire
// concurrently with themselves, so production is serialized by the
// scheduler's claim machine); the merge transition is the consumer. A
// producer-side append is one ring push plus one atomic add — no basket
// lock, no timestamp-vector allocation on the merge's critical path.
//
// Tail implements catalog.Source so SHOW BASKETS and ad-hoc SELECTs keep
// working against q_out#i names, and the factory output-sink interface so
// shard factories can write it like a basket.
type Tail struct {
	name   string
	schema *catalog.Schema // result schema + implicit ts column
	clock  metrics.Clock

	ring    *ring.SPSC[tailItem]
	pending atomic.Int64 // buffered tuples
	drained atomic.Int64 // cumulative tuples handed to the merge

	// wake is the merge transition's Handle.Wake, attached after the merge
	// is registered; atomic so early firings (before attachment) are safe.
	wake atomic.Pointer[func()]

	// Overflow preserves FIFO when the ring fills (same discipline as
	// InboxShard). cmu serializes the consumer role: merge drains,
	// snapshots, and checkpoint capture may come from different
	// goroutines.
	hasOverflow atomic.Bool
	ovMu        sync.Mutex
	overflow    []tailItem
	cmu         sync.Mutex
}

// tailItem is one produced result batch.
type tailItem struct {
	cols []*vector.Vector // result columns, no ts
	ts   int64            // production timestamp
}

// NewTail creates a tail for result batches of the given schema (without
// the implicit ts column) and ring capacity in batches.
func NewTail(name string, schema *catalog.Schema, capacity int, clock metrics.Clock) *Tail {
	if clock == nil {
		clock = metrics.WallClock{}
	}
	return &Tail{
		name:   name,
		schema: schema.WithTimestamp(),
		clock:  clock,
		ring:   ring.New[tailItem](capacity),
	}
}

// Name returns the tail's catalog name.
func (t *Tail) Name() string { return t.name }

// Schema implements catalog.Source; it includes the implicit ts column.
func (t *Tail) Schema() *catalog.Schema { return t.schema }

// SetWake attaches the consumer's wake hook, called after every push.
func (t *Tail) SetWake(fn func()) {
	if fn == nil {
		t.wake.Store(nil)
		return
	}
	t.wake.Store(&fn)
}

// Pending returns the number of buffered tuples (lock-free).
func (t *Tail) Pending() int { return int(t.pending.Load()) }

// Drained returns the cumulative number of tuples consumed by the merge.
func (t *Tail) Drained() int64 { return t.drained.Load() }

// Batches returns the number of buffered batches (ring plus overflow).
func (t *Tail) Batches() int {
	n := t.ring.Len()
	if t.hasOverflow.Load() {
		t.ovMu.Lock()
		n += len(t.overflow)
		t.ovMu.Unlock()
	}
	return n
}

// AppendRelation accepts one result batch from the producing shard
// factory (the factory output-sink interface). A trailing ts column, if
// present, is dropped — the tail stamps its own production time.
func (t *Tail) AppendRelation(r *storage.Relation) error {
	cols := r.Cols
	if len(cols) == t.schema.Len() {
		cols = cols[:len(cols)-1]
	}
	if len(cols) == 0 || cols[0].Len() == 0 {
		return nil
	}
	it := tailItem{cols: cols, ts: t.clock.Now()}
	if t.hasOverflow.Load() || !t.ring.Push(it) {
		t.ovMu.Lock()
		if !t.hasOverflow.Load() && len(t.overflow) == 0 && t.ring.Push(it) {
			t.ovMu.Unlock()
		} else {
			t.overflow = append(t.overflow, it)
			t.hasOverflow.Store(true)
			t.ovMu.Unlock()
		}
	}
	t.pending.Add(int64(cols[0].Len()))
	if w := t.wake.Load(); w != nil {
		(*w)()
	}
	return nil
}

// peekAll visits every buffered batch oldest-first without consuming;
// the caller holds cmu. It returns the number of batches visited, which
// a subsequent discard(n) consumes.
func (t *Tail) peekAll(fn func(it tailItem)) int {
	n := 0
	t.ring.Do(func(it tailItem) {
		fn(it)
		n++
	})
	if t.hasOverflow.Load() {
		t.ovMu.Lock()
		for _, it := range t.overflow {
			fn(it)
			n++
		}
		t.ovMu.Unlock()
	}
	return n
}

// discard consumes the n oldest batches (previously visited by peekAll);
// the caller holds cmu.
func (t *Tail) discard(n int) {
	rows := int64(0)
	popped := 0
	for popped < n {
		it, ok := t.ring.Pop()
		if !ok {
			break
		}
		rows += int64(it.cols[0].Len())
		popped++
	}
	rest := n - popped
	if rest > 0 {
		t.ovMu.Lock()
		for i := 0; i < rest && i < len(t.overflow); i++ {
			rows += int64(t.overflow[i].cols[0].Len())
		}
		remain := len(t.overflow) - rest
		copy(t.overflow, t.overflow[rest:])
		for j := remain; j < len(t.overflow); j++ {
			t.overflow[j] = tailItem{}
		}
		t.overflow = t.overflow[:remain]
		if remain == 0 {
			t.hasOverflow.Store(false)
		}
		t.ovMu.Unlock()
	}
	t.pending.Add(-rows)
	t.drained.Add(rows)
}

// Snapshot implements catalog.Source: a chunked view of the buffered
// batches, with the implicit ts column materialized per batch.
func (t *Tail) Snapshot() bat.View {
	t.cmu.Lock()
	defer t.cmu.Unlock()
	var view bat.View
	t.peekAll(func(it tailItem) {
		n := it.cols[0].Len()
		ts := vector.NewWithCap(vector.Timestamp, n)
		for i := 0; i < n; i++ {
			ts.AppendInt(it.ts)
		}
		full := append(append([]*vector.Vector(nil), it.cols...), ts)
		view.Chunks = append(view.Chunks, bat.Chunk{Cols: full})
	})
	return view
}

// TailImage is a serializable snapshot of a tail's buffered batches —
// part of the checkpoint cut.
type TailImage struct {
	Batches [][]vector.Wire
	TS      []int64
}

// CaptureState deep-copies the buffered batches. The engine holds its
// consistency gate while calling, so no producer is mid-push.
func (t *Tail) CaptureState() TailImage {
	t.cmu.Lock()
	defer t.cmu.Unlock()
	var img TailImage
	t.peekAll(func(it tailItem) {
		img.Batches = append(img.Batches, vector.WireColumns(it.cols))
		img.TS = append(img.TS, it.ts)
	})
	return img
}

// RestoreState loads a captured image into an empty tail.
func (t *Tail) RestoreState(img TailImage) error {
	t.cmu.Lock()
	defer t.cmu.Unlock()
	for i, ws := range img.Batches {
		it := tailItem{cols: vector.ColumnsFromWire(ws), ts: img.TS[i]}
		if !t.ring.Push(it) {
			t.overflow = append(t.overflow, it)
			t.hasOverflow.Store(true)
		}
		t.pending.Add(int64(it.cols[0].Len()))
	}
	return nil
}
