package partition

import (
	"sync"
	"sync/atomic"

	"repro/internal/ring"
	"repro/internal/vector"
)

// Inbox is the lock-free ingest→shard handoff: the fan-out publishes one
// batch's shard slices to per-shard SPSC rings with a single atomic epoch
// store per batch, replacing the old discipline of locking every shard
// basket at once.
//
// The atomicity invariant the old all-locks scheme provided is preserved
// by epoch publication: each slice carries the batch's epoch, and shard
// consumers only admit items with epoch ≤ the published epoch, which is
// advanced (release store) only after every shard's slice is staged. No
// shard can therefore process its slice of a batch before the sibling
// slices are visible — exactly what the shared watermark group of a
// partitioned windowed query assumes ("every tuple below my group read
// was already routed to my input").
//
// Producers are serialized by pmu (the engine's fan-out may be called
// from many ingest goroutines); each shard's consumer is the shard basket
// itself, which drains under its own lock (see basket.Feed).
type Inbox struct {
	pmu    sync.Mutex
	epoch  atomic.Int64
	shards []*InboxShard
}

// inboxBatch is one shard slice of one published batch.
type inboxBatch struct {
	epoch int64
	ts    int64
	cols  []*vector.Vector
}

// InboxShard is one shard's staging queue; it implements basket.Feed.
type InboxShard struct {
	parent  *Inbox
	ring    *ring.SPSC[inboxBatch]
	pending atomic.Int64 // staged tuples
	// Overflow preserves FIFO when the ring fills: once any item has gone
	// to the overflow list, later items follow it until the consumer has
	// drained the list (hasOverflow gates the producer's fast path).
	hasOverflow atomic.Bool
	ovMu        sync.Mutex
	overflow    []inboxBatch
}

// NewInbox creates an inbox with one staging ring of the given capacity
// (in batches) per shard.
func NewInbox(shards, capacity int) *Inbox {
	ib := &Inbox{shards: make([]*InboxShard, shards)}
	for i := range ib.shards {
		ib.shards[i] = &InboxShard{parent: ib, ring: ring.New[inboxBatch](capacity)}
	}
	return ib
}

// Shard returns shard i's feed.
func (ib *Inbox) Shard(i int) *InboxShard { return ib.shards[i] }

// Publish stages one batch's shard slices (parts[i] goes to shard i; nil
// or empty slices are skipped) and then publishes them with a single
// atomic epoch store. ts is the arrival timestamp the slices will be
// stamped with on admission.
func (ib *Inbox) Publish(parts [][]*vector.Vector, ts int64) {
	ib.pmu.Lock()
	ep := ib.epoch.Load() + 1
	for i, part := range parts {
		if len(part) == 0 || part[0].Len() == 0 {
			continue
		}
		ib.shards[i].put(inboxBatch{epoch: ep, ts: ts, cols: part})
	}
	ib.epoch.Store(ep) // release: all slices of epoch ep are now staged
	ib.pmu.Unlock()
}

// put stages one slice; the caller holds pmu (single producer).
func (sh *InboxShard) put(b inboxBatch) {
	if sh.hasOverflow.Load() || !sh.ring.Push(b) {
		sh.ovMu.Lock()
		// The consumer may have drained the overflow (and cleared the
		// flag) while we waited for the lock; retry the fast path so the
		// ring is preferred again.
		if !sh.hasOverflow.Load() && len(sh.overflow) == 0 && sh.ring.Push(b) {
			sh.ovMu.Unlock()
		} else {
			sh.overflow = append(sh.overflow, b)
			sh.hasOverflow.Store(true)
			sh.ovMu.Unlock()
		}
	}
	sh.pending.Add(int64(b.cols[0].Len()))
}

// Pending implements basket.Feed.
func (sh *InboxShard) Pending() int { return int(sh.pending.Load()) }

// Drain implements basket.Feed: emit every staged batch whose epoch has
// been published, oldest first. The caller (the shard basket, under its
// lock) is the single consumer.
func (sh *InboxShard) Drain(emit func(cols []*vector.Vector, ts int64) error) error {
	ep := sh.parent.epoch.Load()
	for {
		b, ok := sh.ring.Peek()
		if !ok || b.epoch > ep {
			break
		}
		sh.ring.Pop()
		sh.pending.Add(-int64(b.cols[0].Len()))
		if err := emit(b.cols, b.ts); err != nil {
			return err
		}
	}
	if !sh.hasOverflow.Load() {
		return nil
	}
	sh.ovMu.Lock()
	defer sh.ovMu.Unlock()
	// Overflow items are strictly newer than anything left in the ring;
	// if the ring still holds items (epoch > ep), the overflow does too,
	// and the loop below stops immediately — FIFO is preserved.
	i := 0
	for ; i < len(sh.overflow); i++ {
		b := sh.overflow[i]
		if b.epoch > ep {
			break
		}
		sh.pending.Add(-int64(b.cols[0].Len()))
		if err := emit(b.cols, b.ts); err != nil {
			i++
			break
		}
	}
	if i > 0 {
		rest := len(sh.overflow) - i
		copy(sh.overflow, sh.overflow[i:])
		for j := rest; j < len(sh.overflow); j++ {
			sh.overflow[j] = inboxBatch{}
		}
		sh.overflow = sh.overflow[:rest]
	}
	if len(sh.overflow) == 0 && sh.ring.Len() == 0 {
		sh.hasOverflow.Store(false)
	}
	return nil
}
