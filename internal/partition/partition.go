// Package partition implements hash-sharded parallel execution for
// continuous queries: a partitioned stream owns N shard baskets, the
// ingest fan-out routes every tuple to exactly one shard (hashing the
// declared partition column, or round-robin when none is declared), each
// query over the stream is cloned into N independent shard pipelines, and
// a merge transition recombines the shard emissions into one result
// stream — order-preserving per shard, with a global aggregation stage
// only when the query's grouping keys are not aligned with the partition
// key.
//
// The subsystem converts the chunked zero-copy basket storage into
// multicore throughput: shard transitions are ordinary Petri-net
// transitions, so the concurrent scheduler's worker pool finally has
// same-query work to run in parallel.
package partition

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/sql"
	"repro/internal/vector"
)

// MaxShards bounds the partitions option; more shards than cores only
// adds scheduling overhead.
const MaxShards = 1024

// Spec declares how a stream is partitioned. It is expressed in DDL as
// CREATE BASKET s (...) WITH (partitions = N, partition_by = col).
type Spec struct {
	// Shards is the number of shard baskets; values below 2 mean the
	// stream is not partitioned.
	Shards int
	// By names the user column whose hash routes a tuple to its shard.
	// Empty means round-robin routing.
	By string
}

// Enabled reports whether the spec actually shards the stream.
func (s Spec) Enabled() bool { return s.Shards > 1 }

// FromOptions extracts the partitioning options (partitions,
// partition_by) from a WITH list, returning the spec and the remaining
// unrecognized options.
func FromOptions(opts []sql.OptionSpec) (Spec, []sql.OptionSpec, error) {
	var spec Spec
	var rest []sql.OptionSpec
	for _, o := range opts {
		switch strings.ToLower(o.Key) {
		case "partitions":
			n, err := strconv.Atoi(o.Val)
			if err != nil || n < 1 || n > MaxShards {
				return Spec{}, nil, fmt.Errorf("partition: partitions = %q (want an integer in 1..%d)", o.Val, MaxShards)
			}
			spec.Shards = n
		case "partition_by":
			if o.Val == "" {
				return Spec{}, nil, fmt.Errorf("partition: partition_by needs a column name")
			}
			spec.By = o.Val
		default:
			rest = append(rest, o)
		}
	}
	if spec.By != "" && spec.Shards == 0 {
		return Spec{}, nil, fmt.Errorf("partition: partition_by without partitions")
	}
	return spec, rest, nil
}

// Router assigns incoming tuples to shards: by hash of the partition
// column when one is declared, round-robin otherwise. It is safe for
// concurrent use.
type Router struct {
	spec   Spec
	keyIdx int    // index of spec.By in the user schema; -1 = round-robin
	rr     uint64 // round-robin cursor (atomic)
}

// NewRouter validates the spec against the stream's user schema (no ts
// column) and returns a router.
func NewRouter(schema *catalog.Schema, spec Spec) (*Router, error) {
	if !spec.Enabled() {
		return nil, fmt.Errorf("partition: spec has %d shards", spec.Shards)
	}
	keyIdx := -1
	if spec.By != "" {
		keyIdx = schema.Index(spec.By)
		if keyIdx < 0 {
			return nil, fmt.Errorf("partition: partition_by column %q not in schema %s", spec.By, schema)
		}
	}
	return &Router{spec: spec, keyIdx: keyIdx}, nil
}

// Shards returns the shard count.
func (r *Router) Shards() int { return r.spec.Shards }

// Spec returns the routing spec.
func (r *Router) Spec() Spec { return r.spec }

// mix64 is the splitmix64 finalizer: a cheap avalanching mixer so that
// sequential or low-entropy keys still spread across shards.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashString is FNV-1a 64 over the bytes, post-mixed.
func hashString(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return mix64(h)
}

// ShardOf maps one partition-key value to its shard. NULLs hash to shard
// 0 so every tuple has exactly one home.
func (r *Router) ShardOf(v vector.Value) int {
	if r.keyIdx < 0 {
		return int(atomic.AddUint64(&r.rr, 1)-1) % r.spec.Shards
	}
	return r.shardOfValue(v)
}

func (r *Router) shardOfValue(v vector.Value) int {
	if v.Null {
		return 0
	}
	n := uint64(r.spec.Shards)
	switch v.Typ {
	case vector.Int64, vector.Timestamp:
		return int(mix64(uint64(v.I)) % n)
	case vector.Float64:
		return int(mix64(math.Float64bits(v.F)) % n)
	case vector.Bool:
		if v.B {
			return int(mix64(1) % n)
		}
		return int(mix64(0) % n)
	default:
		return int(hashString(v.S) % n)
	}
}

// Split routes a batch of user columns into per-shard column batches.
// parts[i] is nil when shard i receives no rows; per-shard relative row
// order is the arrival order. When every row of the batch lands in one
// shard the input columns are handed through without copying — the
// zero-copy path for pre-partitioned feeds.
func (r *Router) Split(cols []*vector.Vector) ([][]*vector.Vector, error) {
	shards := r.spec.Shards
	parts := make([][]*vector.Vector, shards)
	n := 0
	if len(cols) > 0 {
		n = cols[0].Len()
	}
	if n == 0 {
		return parts, nil
	}
	ids := make([]int, n)
	if r.keyIdx < 0 {
		base := atomic.AddUint64(&r.rr, uint64(n)) - uint64(n)
		for i := range ids {
			ids[i] = int((base + uint64(i)) % uint64(shards))
		}
	} else {
		if r.keyIdx >= len(cols) {
			return nil, fmt.Errorf("partition: batch has %d columns, key is column %d", len(cols), r.keyIdx)
		}
		key := cols[r.keyIdx]
		for i := 0; i < n; i++ {
			ids[i] = r.shardOfValue(key.Get(i))
		}
	}

	// Single-shard fast path: hand the batch through untouched.
	single := true
	for _, id := range ids[1:] {
		if id != ids[0] {
			single = false
			break
		}
	}
	if single {
		parts[ids[0]] = cols
		return parts, nil
	}

	pos := make([][]int, shards)
	for i, id := range ids {
		pos[id] = append(pos[id], i)
	}
	for s, ps := range pos {
		if len(ps) == 0 {
			continue
		}
		out := make([]*vector.Vector, len(cols))
		for c, col := range cols {
			out[c] = col.Take(ps)
		}
		parts[s] = out
	}
	return parts, nil
}
