// Windowed partitioned execution: AnalyzeWindowed decides whether a
// time-windowed continuous query can run as N shard pipelines, and
// WindowedMerge is the transition that aligns per-shard window emissions
// on the shared slide grid and merges them window by window.
//
// Shard runners evaluate over their shard's subsequence of the stream;
// because window boundaries are aligned to slide multiples, every shard
// slices the same grid. Two recombinations exist:
//
//   - Aligned (group keys include the partition column): per-shard window
//     results are already final and concatenate (the plain Merge).
//   - Re-aggregation: shards emit per-window partial aggregates tagged
//     with the window end; WindowedMerge buffers them until every shard's
//     delivered frontier passes the boundary, then re-aggregates the
//     union and replays HAVING/projection — one merged result per
//     window, same as a single pipeline would emit.
package partition

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/basket"
	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/vector"
	"repro/internal/window"
)

// WindowEndColumn is the tag column shard pipelines append to their
// per-window partials so the merge can align pane grids across shards.
const WindowEndColumn = "wend"

// WindowedAnalysis is AnalyzeWindowed's verdict on one windowed
// continuous query.
type WindowedAnalysis struct {
	// OK reports whether the query can run sharded; when false, Reason
	// says why and the engine falls back to a single pipeline.
	OK     bool
	Reason string
	// Aligned means per-shard window results are final (concat merge).
	Aligned bool
	// ShardPlan is what each shard's window runner evaluates: the full
	// plan when aligned, the bare Aggregate subtree (per-window partials)
	// otherwise.
	ShardPlan plan.Node
	// Agg is the query's aggregate node (re-aggregation only) — the
	// engine builds the shard runners' partial evaluators from it.
	Agg *plan.Aggregate
	// MergePlan re-aggregates one window's union of shard partials and
	// replays HAVING and the projection (nil when aligned).
	MergePlan plan.Node
	// MergeSource is the scan-override key the merge plan reads.
	MergeSource string
}

func windowedFallback(reason string) WindowedAnalysis { return WindowedAnalysis{Reason: reason} }

// AnalyzeWindowed inspects a compiled windowed continuous-query plan and
// decides the shard/merge decomposition. Only time-based windows shard:
// a count window is defined over the whole stream's arrival order, which
// no shard observes. The plan must have the mergeable-pane shape (the
// StatStream basic-window model RecognizeIncremental accepts) — plans
// that only re-evaluation can run stay on one pipeline.
func AnalyzeWindowed(p plan.Node, stream, partitionBy, mergeSource string, w *sql.WindowClause) WindowedAnalysis {
	if w.Kind != sql.WindowRange {
		return windowedFallback("count windows are defined over the whole stream's arrival order")
	}
	if w.Size%w.Slide != 0 {
		return windowedFallback("pane alignment needs size divisible by slide")
	}
	if _, ok := window.RecognizeIncremental(p); !ok {
		return windowedFallback("plan shape has no mergeable pane summaries (re-evaluation only)")
	}
	// RecognizeIncremental pins the shape to Project(Select?(Aggregate(Scan))).
	proj := p.(*plan.Project)
	inner := proj.Child
	if sel, ok := inner.(*plan.Select); ok {
		inner = sel.Child
	}
	agg := inner.(*plan.Aggregate)
	sc := agg.Child.(*plan.Scan)
	if !sc.Consuming || !strings.EqualFold(sc.Source, stream) {
		return windowedFallback(fmt.Sprintf("the scan must consume stream %q", stream))
	}

	if aligned(agg, sc, partitionBy) {
		// Every group lives wholly in one shard: per-shard window results
		// (including HAVING) are already final.
		return WindowedAnalysis{OK: true, Aligned: true, ShardPlan: p}
	}
	for _, a := range agg.Aggs {
		switch a.Kind {
		case algebra.AggCount, algebra.AggCountAll, algebra.AggSum, algebra.AggMin, algebra.AggMax:
		default:
			return windowedFallback(fmt.Sprintf("%s partials cannot be merged across shards", a.Kind))
		}
	}
	mp, err := reaggMergePlan(p, agg, mergeSource)
	if err != nil {
		return windowedFallback(err.Error())
	}
	return WindowedAnalysis{OK: true, ShardPlan: agg, Agg: agg, MergePlan: mp, MergeSource: mergeSource}
}

// WindowedMerge recombines per-window partial aggregates from N shard
// pipelines. Shard emissions carry a trailing wend column (the window
// end); the merge buckets them by wend and merges a window only once
// every shard's delivered frontier has passed it — so no shard can still
// be sitting on partials for that window. It implements
// scheduler.Transition; the scheduler's claim flag keeps firings serial.
type WindowedMerge struct {
	name      string
	source    string // merge-plan scan override key
	shardOuts []*basket.Basket
	out       *basket.Basket
	plan      plan.Node
	cat       *catalog.Catalog
	// frontiers report each shard factory's delivered window frontier.
	frontiers []func() int64
	// wendIdx is the position of the wend tag in the shard-out schema
	// (its user columns; the implicit ts follows it).
	wendIdx int

	mu      sync.Mutex
	pending map[int64]*storage.Relation // window end → buffered partials
	rows    int                         // buffered partial rows
	merged  int64                       // windows merged so far
	through int64                       // highest window end merged

	drained int64 // atomic: partial tuples drained from shard outs
	late    int64 // atomic: partials that arrived after their window merged
}

// NewWindowedMerge builds the transition. partialWidth is the number of
// partial columns preceding the wend tag in the shard-out schema.
func NewWindowedMerge(name, source string, shardOuts []*basket.Basket, out *basket.Basket,
	mergePlan plan.Node, cat *catalog.Catalog, partialWidth int, frontiers []func() int64) *WindowedMerge {
	return &WindowedMerge{
		name:      name,
		source:    source,
		shardOuts: shardOuts,
		out:       out,
		plan:      mergePlan,
		cat:       cat,
		frontiers: frontiers,
		wendIdx:   partialWidth,
		pending:   map[int64]*storage.Relation{},
		through:   math.MinInt64,
	}
}

// Name implements scheduler.Transition.
func (m *WindowedMerge) Name() string { return m.name }

// minFrontier is the window boundary every shard has delivered up to.
func (m *WindowedMerge) minFrontier() int64 {
	min := int64(math.MaxInt64)
	for _, f := range m.frontiers {
		if v := f(); v < min {
			min = v
		}
	}
	return min
}

// Ready implements scheduler.Transition: fire when a shard emitted, or a
// buffered window fell behind every shard's frontier.
func (m *WindowedMerge) Ready() bool {
	for _, b := range m.shardOuts {
		if b.Len() > 0 {
			return true
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.pending) == 0 {
		return false
	}
	minF := m.minFrontier()
	for end := range m.pending {
		if end <= minF {
			return true
		}
	}
	return false
}

// Lag returns shard-emitted partial tuples not yet merged into the
// output basket (in the shard outs plus buffered per window).
func (m *WindowedMerge) Lag() int {
	n := 0
	for _, b := range m.shardOuts {
		n += b.Len()
	}
	m.mu.Lock()
	n += m.rows
	m.mu.Unlock()
	return n
}

// Merged returns the cumulative number of partial tuples drained.
func (m *WindowedMerge) Merged() int64 { return atomic.LoadInt64(&m.drained) }

// Late returns the number of partial rows dropped because their window
// had already been merged when they surfaced — only possible outside the
// stream's declared lateness bound.
func (m *WindowedMerge) Late() int64 { return atomic.LoadInt64(&m.late) }

// WindowedMergeState is the serializable image of a WindowedMerge for
// checkpoints: the per-window buffered partials plus the progress
// counters. Pending windows hold tuples already drained from the shard
// outs, so losing them would silently drop shard contributions.
type WindowedMergeState struct {
	Pending map[int64][]vector.Wire
	Rows    int
	Merged  int64
	Through int64
	Drained int64
	Late    int64
}

// Snapshot captures the merge state. The engine holds its consistency
// gate while calling, so no Fire is in flight.
func (m *WindowedMerge) Snapshot() *WindowedMergeState {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := &WindowedMergeState{
		Pending: make(map[int64][]vector.Wire, len(m.pending)),
		Rows:    m.rows,
		Merged:  m.merged,
		Through: m.through,
		Drained: atomic.LoadInt64(&m.drained),
		Late:    atomic.LoadInt64(&m.late),
	}
	for end, rel := range m.pending {
		st.Pending[end] = vector.WireColumns(rel.Cols)
	}
	return st
}

// Restore loads a snapshot into a freshly built merge (pending buckets
// carry the shard-out schema).
func (m *WindowedMerge) Restore(st *WindowedMergeState) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.pending) != 0 {
		return fmt.Errorf("windowed merge %s: restore into non-empty merge", m.name)
	}
	schema := m.shardOuts[0].Schema()
	for end, cols := range st.Pending {
		m.pending[end] = &storage.Relation{Schema: schema, Cols: vector.ColumnsFromWire(cols)}
	}
	m.rows = st.Rows
	m.merged = st.Merged
	m.through = st.Through
	atomic.StoreInt64(&m.drained, st.Drained)
	atomic.StoreInt64(&m.late, st.Late)
	return nil
}

// Fire implements scheduler.Transition: drain the shard outs, bucket the
// partials by window end, and merge every window the frontiers have
// closed, in boundary order.
func (m *WindowedMerge) Fire() error {
	// The frontier snapshot MUST precede the drain: a frontier is
	// published only after the shard's partials are appended, so every
	// window at or below this reading is fully contained in what the
	// drain below picks up. A reading taken after the drain could cover
	// partials delivered in between — merging on it would drop a shard's
	// contribution and mislabel it late on the next firing.
	minF := m.minFrontier()

	counts := make([]int, len(m.shardOuts))
	var drained []*storage.Relation
	total := 0
	for i, b := range m.shardOuts {
		b.Lock()
		view, n := b.LockedSnapshot()
		b.Unlock()
		counts[i] = n
		total += n
		if n > 0 {
			// Copy out: the prefix is dropped below, and buffered partials
			// must survive later basket compaction.
			drained = append(drained, &storage.Relation{Schema: b.Schema(), Cols: view.CloneColumns()})
		}
	}

	m.mu.Lock()
	for _, rel := range drained {
		wend := rel.Cols[m.wendIdx]
		byEnd := map[int64][]int{}
		var ends []int64
		for i := 0; i < rel.NumRows(); i++ {
			e := wend.Get(i).I
			if _, seen := byEnd[e]; !seen {
				ends = append(ends, e)
			}
			byEnd[e] = append(byEnd[e], i)
		}
		for _, e := range ends {
			if e <= m.through {
				// The window is already merged and delivered; a straggler
				// shard emission for it can only be counted, not applied.
				atomic.AddInt64(&m.late, int64(len(byEnd[e])))
				continue
			}
			part := rel.Take(byEnd[e])
			if acc, ok := m.pending[e]; ok {
				acc.AppendRelation(part)
			} else {
				m.pending[e] = part
			}
			m.rows += len(byEnd[e])
		}
	}
	m.mu.Unlock()

	// The drained prefixes are safely buffered; release them.
	for i, b := range m.shardOuts {
		if counts[i] == 0 {
			continue
		}
		b.Lock()
		b.LockedDropPrefix(counts[i])
		b.Unlock()
	}
	atomic.AddInt64(&m.drained, int64(total))

	m.mu.Lock()
	defer m.mu.Unlock()
	var due []int64
	for end := range m.pending {
		if end <= minF {
			due = append(due, end)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	for _, end := range due {
		rel := m.pending[end]
		// The merge plan scans the bare partial columns; the wend tag and
		// the baskets' implicit ts are dropped from the override.
		cols := rel.Cols[:m.wendIdx]
		ctx := exec.NewContext(m.cat)
		ctx.Overrides[strings.ToLower(m.source)] = bat.ViewOf(cols...)
		res, err := exec.Run(m.plan, ctx)
		if err != nil {
			return fmt.Errorf("windowed merge %s: %w", m.name, err)
		}
		if err := m.out.AppendRelation(res); err != nil {
			return fmt.Errorf("windowed merge %s: %w", m.name, err)
		}
		m.rows -= rel.NumRows()
		delete(m.pending, end)
		if end > m.through {
			m.through = end
		}
		m.merged++
	}
	return nil
}
