package partition

import (
	"strings"
	"testing"

	"repro/internal/basket"
	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/vector"
)

// joinCatalog holds two partitionable streams a(k, v) / b(k, w) and a
// table ref(k, name).
func joinCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	sa := catalog.NewSchema(
		catalog.Column{Name: "k", Type: vector.Int64},
		catalog.Column{Name: "v", Type: vector.Int64},
	)
	sb := catalog.NewSchema(
		catalog.Column{Name: "k", Type: vector.Int64},
		catalog.Column{Name: "w", Type: vector.Int64},
	)
	if err := cat.Register("a", catalog.KindBasket, basket.New("a", sa, nil)); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register("b", catalog.KindBasket, basket.New("b", sb, nil)); err != nil {
		t.Fatal(err)
	}
	ref := storage.NewTable("ref", catalog.NewSchema(
		catalog.Column{Name: "k", Type: vector.Int64},
		catalog.Column{Name: "name", Type: vector.String},
	))
	if err := cat.Register("ref", catalog.KindTable, ref); err != nil {
		t.Fatal(err)
	}
	return cat
}

func buildJoinPlan(t *testing.T, query string) plan.Node {
	t.Helper()
	sel, err := sql.ParseSelect(query)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(sel, joinCatalog(t))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The AnalyzeJoin decision matrix: co-partitioned, broadcast, and every
// fallback reason.
func TestAnalyzeJoinMatrix(t *testing.T) {
	specs := map[string]Spec{
		"a": {Shards: 4, By: "k"},
		"b": {Shards: 4, By: "k"},
	}
	lookup := func(name string) (Spec, bool) {
		s, ok := specs[strings.ToLower(name)]
		return s, ok
	}
	symSQL := `SELECT l.v AS v, r.w AS w FROM [SELECT * FROM a] AS l JOIN [SELECT * FROM b] AS r ON l.k = r.k`
	refSQL := `SELECT s.v AS v, ref.name AS name FROM [SELECT * FROM a] AS s JOIN ref ON s.k = ref.k`

	t.Run("co-partitioned", func(t *testing.T) {
		an := AnalyzeJoin(buildJoinPlan(t, symSQL), lookup)
		if !an.OK || an.Broadcast || an.Shards != 4 || an.LeftStream != "a" || an.RightStream != "b" {
			t.Fatalf("analysis = %+v", an)
		}
	})
	t.Run("broadcast", func(t *testing.T) {
		an := AnalyzeJoin(buildJoinPlan(t, refSQL), lookup)
		if !an.OK || !an.Broadcast || an.StreamSide != 'L' || an.Stream != "a" {
			t.Fatalf("analysis = %+v", an)
		}
	})
	t.Run("broadcast-table-left", func(t *testing.T) {
		an := AnalyzeJoin(buildJoinPlan(t,
			`SELECT s.v AS v FROM ref JOIN [SELECT * FROM a] AS s ON ref.k = s.k`), lookup)
		if !an.OK || !an.Broadcast || an.StreamSide != 'R' {
			t.Fatalf("analysis = %+v", an)
		}
	})

	fallbacks := []struct {
		name   string
		query  string
		lookup func(string) (Spec, bool)
		reason string
	}{
		{"no-join", `SELECT x.v AS v FROM [SELECT * FROM a] AS x`, lookup, "no join"},
		{"aggregate-above-join", `SELECT COUNT(*) AS c FROM [SELECT * FROM a] AS l JOIN [SELECT * FROM b] AS r ON l.k = r.k`, lookup, "aggregation"},
		{"non-equi", `SELECT l.v AS v, r.w AS w FROM [SELECT * FROM a] AS l JOIN [SELECT * FROM b] AS r ON l.k < r.k`, lookup, "equi-join"},
		{"key-not-partition-column", `SELECT l.v AS v, r.w AS w FROM [SELECT * FROM a] AS l JOIN [SELECT * FROM b] AS r ON l.v = r.w`, lookup, "partition column"},
		{"unpartitioned", symSQL, func(string) (Spec, bool) { return Spec{}, false }, "must be partitioned"},
		{"shard-mismatch", symSQL, func(name string) (Spec, bool) {
			if name == "a" {
				return Spec{Shards: 4, By: "k"}, true
			}
			return Spec{Shards: 2, By: "k"}, true
		}, "shard counts differ"},
		{"round-robin", symSQL, func(string) (Spec, bool) { return Spec{Shards: 4}, true }, "round-robin"},
	}
	for _, c := range fallbacks {
		t.Run("fallback-"+c.name, func(t *testing.T) {
			an := AnalyzeJoin(buildJoinPlan(t, c.query), c.lookup)
			if an.OK {
				t.Fatalf("unexpectedly partitionable: %+v", an)
			}
			if !strings.Contains(an.Reason, c.reason) {
				t.Errorf("reason %q does not mention %q", an.Reason, c.reason)
			}
		})
	}
}

// InspectJoin classifies sides and shapes.
func TestInspectJoinShape(t *testing.T) {
	p := buildJoinPlan(t, `SELECT s.v AS v, ref.name AS name FROM [SELECT * FROM a] AS s JOIN ref ON s.k = ref.k`)
	shape := InspectJoin(p)
	if shape.Joins != 1 || shape.Join == nil {
		t.Fatalf("shape = %+v", shape)
	}
	if shape.LeftStream == nil || !strings.EqualFold(shape.LeftStream.Source, "a") {
		t.Errorf("left stream = %+v", shape.LeftStream)
	}
	if !shape.RightTablesOnly || shape.LeftTablesOnly {
		t.Errorf("tables-only flags: L=%v R=%v", shape.LeftTablesOnly, shape.RightTablesOnly)
	}
	if !shape.RowPreserving {
		t.Error("row-preserving shape misclassified")
	}
}
