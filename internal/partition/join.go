// Join partitioning analysis: InspectJoin classifies the join structure
// of a continuous-query plan, and AnalyzeJoin decides whether the join
// can run as N parallel shard pipelines:
//
//   - Co-partitioned (stream ⋈ stream): both streams are hash-partitioned
//     on their join key with the same shard count, so two matching tuples
//     always land on the same shard index — shard i joins a#i with b#i
//     and the emissions concatenate.
//   - Broadcast (stream ⋈ table): each shard joins its subset of the
//     stream against the whole table; since every stream tuple lives in
//     exactly one shard, concatenation is again exact, whatever the key.
//
// Everything else (multi-way joins, aggregation above a join, non-equi
// conditions, unpartitioned or differently-sharded streams) falls back to
// a single pipeline, with the reason recorded for diagnostics.
package partition

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/plan"
)

// JoinShape classifies the join structure of a plan.
type JoinShape struct {
	// Joins is the number of Join nodes in the plan.
	Joins int
	// Join is the single join node (nil unless Joins == 1).
	Join *plan.Join
	// RowPreserving reports that no Aggregate, Distinct, or Sort appears
	// anywhere in the plan, so shard emissions concatenate exactly.
	RowPreserving bool
	// LeftStream / RightStream are the consuming (stream) scans of the
	// join's two inputs, nil when a side has none or several.
	LeftStream, RightStream *plan.Scan
	// LeftTablesOnly / RightTablesOnly report that every scan on that
	// side is a non-consuming table scan.
	LeftTablesOnly, RightTablesOnly bool
}

// InspectJoin walks a compiled plan and classifies its joins.
func InspectJoin(p plan.Node) JoinShape {
	shape := JoinShape{RowPreserving: true}
	plan.Walk(p, func(n plan.Node) {
		switch x := n.(type) {
		case *plan.Aggregate, *plan.Distinct, *plan.Sort:
			shape.RowPreserving = false
		case *plan.Join:
			shape.Joins++
			shape.Join = x
		}
	})
	if shape.Joins != 1 {
		shape.Join = nil
		return shape
	}
	shape.LeftStream, shape.LeftTablesOnly = classifySide(shape.Join.L)
	shape.RightStream, shape.RightTablesOnly = classifySide(shape.Join.R)
	return shape
}

// classifySide reports the single consuming scan of one join input (nil
// when none or several) and whether the side reads tables only.
func classifySide(side plan.Node) (stream *plan.Scan, tablesOnly bool) {
	streams := 0
	tablesOnly = true
	plan.Walk(side, func(n plan.Node) {
		if sc, ok := n.(*plan.Scan); ok && sc.Consuming {
			streams++
			stream = sc
			tablesOnly = false
		}
	})
	if streams != 1 {
		stream = nil
	}
	return stream, tablesOnly
}

// JoinAnalysis is AnalyzeJoin's verdict.
type JoinAnalysis struct {
	// OK reports whether the join can run sharded; when false, Reason
	// says why and the engine falls back to a single pipeline.
	OK     bool
	Reason string
	// Broadcast marks the stream×table decomposition (the table side is
	// read whole by every shard); otherwise the join is co-partitioned
	// stream×stream.
	Broadcast bool
	// StreamSide says which join input is the stream ('L' or 'R') for
	// broadcast joins.
	StreamSide byte
	// LeftStream / RightStream name the two streams of a co-partitioned
	// join; Stream names the broadcast join's stream.
	LeftStream, RightStream string
	Stream                  string
	// Shards is the pipeline fan-out.
	Shards int
}

func joinFallback(reason string) JoinAnalysis { return JoinAnalysis{Reason: reason} }

// AnalyzeJoin decides the shard decomposition of a join plan. lookup
// resolves a stream name to its partitioning spec (ok=false for
// unpartitioned streams).
func AnalyzeJoin(p plan.Node, lookup func(stream string) (Spec, bool)) JoinAnalysis {
	shape := InspectJoin(p)
	switch {
	case shape.Joins == 0:
		return joinFallback("plan has no join")
	case shape.Joins > 1:
		return joinFallback("multi-way joins run on one pipeline")
	case !shape.RowPreserving:
		return joinFallback("aggregation, DISTINCT, or ORDER BY above a join needs tuples from every shard")
	}
	j := shape.Join
	lw := j.L.Schema().Len()
	var lkey, rkey expr.Expr
	if j.On != nil {
		lkey, rkey, _ = expr.EquiKeys(j.On, lw)
	}

	// Stream ⋈ stream: co-partitioned when both sides are hash-sharded on
	// their join key with the same fan-out.
	if shape.LeftStream != nil && shape.RightStream != nil {
		lspec, lok := lookup(shape.LeftStream.Source)
		rspec, rok := lookup(shape.RightStream.Source)
		switch {
		case !lok || !rok:
			return joinFallback("both join streams must be partitioned")
		case lspec.Shards != rspec.Shards:
			return joinFallback(fmt.Sprintf("shard counts differ (%d vs %d)", lspec.Shards, rspec.Shards))
		case lspec.By == "" || rspec.By == "":
			return joinFallback("round-robin streams cannot co-partition a join")
		case lkey == nil:
			return joinFallback("co-partitioning needs an equi-join conjunct")
		case !keyMatches(lkey, j.L, shape.LeftStream, lspec.By):
			return joinFallback(fmt.Sprintf("left join key is not the partition column %q", lspec.By))
		case !keyMatches(rkey, j.R, shape.RightStream, rspec.By):
			return joinFallback(fmt.Sprintf("right join key is not the partition column %q", rspec.By))
		}
		return JoinAnalysis{OK: true,
			LeftStream:  shape.LeftStream.Source,
			RightStream: shape.RightStream.Source,
			Shards:      lspec.Shards,
		}
	}

	// Stream ⋈ table: broadcast the table side to every shard pipeline.
	var stream *plan.Scan
	var side byte
	switch {
	case shape.LeftStream != nil && shape.RightTablesOnly:
		stream, side = shape.LeftStream, 'L'
	case shape.RightStream != nil && shape.LeftTablesOnly:
		stream, side = shape.RightStream, 'R'
	default:
		return joinFallback("join sides are neither two streams nor stream×table")
	}
	spec, ok := lookup(stream.Source)
	if !ok {
		return joinFallback(fmt.Sprintf("stream %q is not partitioned", stream.Source))
	}
	if lkey == nil {
		return joinFallback("broadcast joins need an equi-join conjunct")
	}
	return JoinAnalysis{OK: true, Broadcast: true, StreamSide: side,
		Stream: stream.Source, Shards: spec.Shards}
}

// keyMatches reports whether a join key expression is exactly the named
// source column of the side's stream scan. The key is resolved in the
// side's output frame; sideMapping traces it through Select/Project
// chains back to the scan's (possibly pruned) column list.
func keyMatches(key expr.Expr, side plan.Node, sc *plan.Scan, column string) bool {
	cr, ok := key.(*expr.ColRef)
	if !ok {
		return false
	}
	srcIdx := sideMapping(side, cr.Index)
	if srcIdx < 0 {
		return false
	}
	return strings.EqualFold(sc.Src.Columns[srcIdx].Name, column)
}

// sideMapping maps a column of a join input's output frame to the
// underlying scan's source-schema position (-1 when the chain is not a
// recognizable Select/Project chain over one scan, or the column is
// computed).
func sideMapping(n plan.Node, col int) int {
	for {
		switch x := n.(type) {
		case *plan.Scan:
			if col < 0 || col >= len(x.Cols) {
				return -1
			}
			return x.Cols[col]
		case *plan.Select:
			n = x.Child
		case *plan.Project:
			cr, ok := x.Exprs[col].(*expr.ColRef)
			if !ok {
				return -1
			}
			col = cr.Index
			n = x.Child
		default:
			return -1
		}
	}
}
