package partition

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/basket"
	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/vector"
)

func testSchema() *catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Name: "k", Type: vector.Int64},
		catalog.Column{Name: "v", Type: vector.Int64},
		catalog.Column{Name: "s", Type: vector.String},
	)
}

func batchOf(rows [][3]interface{}) []*vector.Vector {
	k := vector.New(vector.Int64)
	v := vector.New(vector.Int64)
	s := vector.New(vector.String)
	for _, r := range rows {
		k.AppendInt(int64(r[0].(int)))
		v.AppendInt(int64(r[1].(int)))
		s.AppendString(r[2].(string))
	}
	return []*vector.Vector{k, v, s}
}

// TestSplitHashProperty is the routing property test: every ingested
// tuple lands in exactly one shard, rows with equal keys land in the
// same shard, the union of the shards equals the flat input (as a
// sequence-per-shard preserving arrival order), and routing is purely a
// function of the key.
func TestSplitHashProperty(t *testing.T) {
	r, err := NewRouter(testSchema(), Spec{Shards: 4, By: "k"})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	keyShard := map[int64]int{}
	for round := 0; round < 50; round++ {
		n := 1 + rng.Intn(64)
		var rows [][3]interface{}
		for i := 0; i < n; i++ {
			rows = append(rows, [3]interface{}{rng.Intn(10), i, fmt.Sprint(i)})
		}
		cols := batchOf(rows)
		parts, err := r.Split(cols)
		if err != nil {
			t.Fatal(err)
		}
		if len(parts) != 4 {
			t.Fatalf("parts = %d", len(parts))
		}
		// Flat model: walk shards, record every (k, v) with its shard; v is
		// unique per row in this batch, so it identifies the row.
		total := 0
		seen := map[int64]int{} // v → shard
		order := map[int][]int64{}
		for sh, part := range parts {
			if part == nil {
				continue
			}
			pn := part[0].Len()
			total += pn
			for i := 0; i < pn; i++ {
				k := part[0].Get(i).I
				v := part[1].Get(i).I
				if prev, dup := seen[v]; dup {
					t.Fatalf("row v=%d in shards %d and %d", v, prev, sh)
				}
				seen[v] = sh
				order[sh] = append(order[sh], v)
				if want, ok := keyShard[k]; ok && want != sh {
					t.Fatalf("key %d routed to shard %d, earlier to %d", k, sh, want)
				}
				keyShard[k] = sh
			}
		}
		if total != n {
			t.Fatalf("union of shards has %d rows, ingested %d", total, n)
		}
		// Arrival order within each shard: v values must be increasing.
		for sh, vs := range order {
			for i := 1; i < len(vs); i++ {
				if vs[i] < vs[i-1] {
					t.Fatalf("shard %d out of order: %v", sh, vs)
				}
			}
		}
	}
}

// TestSplitSingleShardZeroCopy checks the pass-through path: a batch
// whose rows all hash to one shard is handed through as the same column
// slice, not copied.
func TestSplitSingleShardZeroCopy(t *testing.T) {
	r, err := NewRouter(testSchema(), Spec{Shards: 4, By: "k"})
	if err != nil {
		t.Fatal(err)
	}
	cols := batchOf([][3]interface{}{{5, 0, "a"}, {5, 1, "b"}, {5, 2, "c"}})
	parts, err := r.Split(cols)
	if err != nil {
		t.Fatal(err)
	}
	found := -1
	for sh, part := range parts {
		if part != nil {
			if found >= 0 {
				t.Fatalf("single-key batch split across shards %d and %d", found, sh)
			}
			found = sh
			if part[0] != cols[0] {
				t.Error("single-shard batch was copied instead of handed through")
			}
		}
	}
	if found < 0 {
		t.Fatal("batch routed nowhere")
	}
}

// TestSplitRoundRobin checks keyless routing: a batch spreads evenly and
// the cursor carries across batches.
func TestSplitRoundRobin(t *testing.T) {
	r, err := NewRouter(testSchema(), Spec{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for round := 0; round < 10; round++ {
		var rows [][3]interface{}
		for i := 0; i < 10; i++ { // 10 % 4 != 0: carries remainder across batches
			rows = append(rows, [3]interface{}{i, i, "x"})
		}
		parts, err := r.Split(batchOf(rows))
		if err != nil {
			t.Fatal(err)
		}
		for sh, part := range parts {
			if part != nil {
				counts[sh] += part[0].Len()
			}
		}
	}
	for sh, c := range counts {
		if c != 25 {
			t.Errorf("shard %d got %d of 100 round-robin rows", sh, counts)
			_ = sh
		}
	}
}

func TestFromOptions(t *testing.T) {
	spec, rest, err := FromOptions([]sql.OptionSpec{
		{Key: "partitions", Val: "4"},
		{Key: "partition_by", Val: "k"},
		{Key: "other", Val: "1"},
	})
	if err != nil || spec.Shards != 4 || spec.By != "k" || len(rest) != 1 || rest[0].Key != "other" {
		t.Fatalf("spec=%+v rest=%v err=%v", spec, rest, err)
	}
	if _, _, err := FromOptions([]sql.OptionSpec{{Key: "partitions", Val: "zero"}}); err == nil {
		t.Error("non-integer partitions accepted")
	}
	if _, _, err := FromOptions([]sql.OptionSpec{{Key: "partitions", Val: "0"}}); err == nil {
		t.Error("partitions = 0 accepted")
	}
	if _, _, err := FromOptions([]sql.OptionSpec{{Key: "partition_by", Val: "k"}}); err == nil {
		t.Error("partition_by without partitions accepted")
	}
}

func TestRouterRejectsUnknownColumn(t *testing.T) {
	if _, err := NewRouter(testSchema(), Spec{Shards: 4, By: "nope"}); err == nil {
		t.Error("unknown partition_by column accepted")
	}
}

// buildPlan compiles a continuous query against a catalog holding the
// partitioned stream s (plus a static table for join shapes).
func buildPlan(t *testing.T, query string) plan.Node {
	t.Helper()
	cat := catalog.New()
	b := basket.New("s", testSchema(), nil)
	if err := cat.RegisterPartitioned("s", catalog.KindBasket, b, 4, "k"); err != nil {
		t.Fatal(err)
	}
	sel, err := sql.ParseSelect(query)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAnalyzeModes(t *testing.T) {
	cases := []struct {
		name  string
		query string
		ok    bool
		mode  MergeMode
	}{
		{"filter", "SELECT * FROM [SELECT * FROM s] AS x WHERE x.v > 3", true, MergeConcat},
		{"project", "SELECT x.v + 1 AS w FROM [SELECT * FROM s] AS x", true, MergeConcat},
		{"aligned group", "SELECT x.k, COUNT(*) AS c FROM [SELECT * FROM s] AS x GROUP BY x.k", true, MergeConcat},
		{"aligned multi-key", "SELECT x.v, x.k, SUM(x.v) AS sv FROM [SELECT * FROM s] AS x GROUP BY x.v, x.k", true, MergeConcat},
		{"global group", "SELECT x.v, COUNT(*) AS c, SUM(x.k) AS sk FROM [SELECT * FROM s] AS x GROUP BY x.v", true, MergeReagg},
		{"global scalar", "SELECT COUNT(*) AS c, MAX(x.v) AS m FROM [SELECT * FROM s] AS x", true, MergeReagg},
		{"global having", "SELECT x.v, COUNT(*) AS c FROM [SELECT * FROM s] AS x GROUP BY x.v HAVING COUNT(*) > 1", true, MergeReagg},
		{"distinct", "SELECT DISTINCT x.v FROM [SELECT * FROM s] AS x", true, MergeDistinct},
		{"avg", "SELECT AVG(x.v) AS a FROM [SELECT * FROM s] AS x", false, 0},
		{"count distinct", "SELECT COUNT(DISTINCT x.v) AS c FROM [SELECT * FROM s] AS x", false, 0},
		{"order by", "SELECT * FROM [SELECT * FROM s] AS x ORDER BY x.v", false, 0},
		{"limit", "SELECT * FROM [SELECT * FROM s] AS x LIMIT 5", false, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := buildPlan(t, tc.query)
			an := Analyze(p, "s", "k", "q#partials")
			if an.OK != tc.ok {
				t.Fatalf("OK = %v (%s), want %v", an.OK, an.Reason, tc.ok)
			}
			if an.OK && an.Mode != tc.mode {
				t.Errorf("mode = %v, want %v", an.Mode, tc.mode)
			}
			if an.OK && an.Mode == MergeReagg && an.MergePlan == nil {
				t.Error("reagg without a merge plan")
			}
		})
	}
}
