// Plan analysis and the merge transition: Analyze decides whether a
// continuous query can run as N shard pipelines and what recombination
// its emissions need; Merge is the Petri-net transition that drains the
// shard output baskets into the query's final output basket.
package partition

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/basket"
	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
)

// MergeMode selects how shard emissions recombine.
type MergeMode uint8

// Merge modes.
const (
	// MergeConcat appends shard emissions as-is (row-preserving queries,
	// and grouped queries whose keys are aligned with the partition key so
	// every group lives wholly in one shard).
	MergeConcat MergeMode = iota
	// MergeDistinct re-deduplicates across shards (SELECT DISTINCT whose
	// rows may collide across shards).
	MergeDistinct
	// MergeReagg runs a global aggregation stage over the shards' partial
	// aggregates (grouping keys not aligned with the partition key).
	MergeReagg
)

// String names the mode.
func (m MergeMode) String() string {
	switch m {
	case MergeDistinct:
		return "distinct"
	case MergeReagg:
		return "reaggregate"
	default:
		return "concat"
	}
}

// Analysis is Analyze's verdict on one continuous query.
type Analysis struct {
	// OK reports whether the query can be partitioned; when false, Reason
	// says why and the engine falls back to a single pipeline.
	OK     bool
	Reason string
	Mode   MergeMode
	// ShardPlan is what each shard factory executes. For MergeReagg it is
	// the query's Aggregate subtree (shards emit partial aggregates); for
	// the other modes it is the full plan.
	ShardPlan plan.Node
	// MergePlan, when non-nil, is run by the merge transition over the
	// union of drained shard emissions (bound to MergeSource); nil means
	// plain concatenation.
	MergePlan plan.Node
	// MergeSource is the scan-override key the merge plan reads.
	MergeSource string
}

func notPartitionable(reason string) Analysis { return Analysis{Reason: reason} }

// Analyze inspects a compiled continuous-query plan and decides the
// shard/merge decomposition. p must be the optimized plan of a query
// whose single basket expression reads stream; partitionBy is the
// stream's partition column ("" for round-robin). mergeSource names the
// override the merge plan scans (any stable, collision-free key).
func Analyze(p plan.Node, stream, partitionBy, mergeSource string) Analysis {
	var scans []*plan.Scan
	var aggs []*plan.Aggregate
	hasJoin, hasSort := false, false
	plan.Walk(p, func(n plan.Node) {
		switch x := n.(type) {
		case *plan.Scan:
			scans = append(scans, x)
		case *plan.Aggregate:
			aggs = append(aggs, x)
		case *plan.Join:
			hasJoin = true
		case *plan.Sort:
			hasSort = true
		}
	})

	switch {
	case hasJoin:
		return notPartitionable("join plans decompose via AnalyzeJoin (co-partitioned / broadcast), not the single-stream analyzer")
	case hasSort:
		return notPartitionable("ORDER BY / LIMIT is a global order over all shards")
	case len(scans) != 1:
		return notPartitionable(fmt.Sprintf("plan has %d scans, want exactly the stream scan", len(scans)))
	case len(aggs) > 1:
		return notPartitionable("nested aggregation")
	}
	sc := scans[0]
	if !sc.Consuming || !strings.EqualFold(sc.Source, stream) {
		return notPartitionable(fmt.Sprintf("the single scan must consume stream %q", stream))
	}

	if len(aggs) == 0 {
		if hasDistinct(p) {
			return Analysis{OK: true, Mode: MergeDistinct, ShardPlan: p,
				MergePlan: distinctMergePlan(p, mergeSource), MergeSource: mergeSource}
		}
		return Analysis{OK: true, Mode: MergeConcat, ShardPlan: p}
	}

	agg := aggs[0]
	if aligned(agg, sc, partitionBy) {
		// Every group lives wholly in one shard: per-shard results
		// (including HAVING) are already final.
		return Analysis{OK: true, Mode: MergeConcat, ShardPlan: p}
	}
	for _, a := range agg.Aggs {
		switch a.Kind {
		case algebra.AggCount, algebra.AggCountAll, algebra.AggSum, algebra.AggMin, algebra.AggMax:
		default:
			return notPartitionable(fmt.Sprintf("%s partials cannot be merged across shards", a.Kind))
		}
	}
	mp, err := reaggMergePlan(p, agg, mergeSource)
	if err != nil {
		return notPartitionable(err.Error())
	}
	return Analysis{OK: true, Mode: MergeReagg, ShardPlan: agg, MergePlan: mp, MergeSource: mergeSource}
}

func hasDistinct(p plan.Node) bool {
	for {
		switch x := p.(type) {
		case *plan.Distinct:
			return true
		case *plan.Project:
			p = x.Child
		case *plan.Select:
			p = x.Child
		default:
			return false
		}
	}
}

// aligned reports whether one of the grouping keys is exactly the
// partition column, so each group's rows all hash to the same shard. The
// key indexes refer to the aggregate's child schema — the (possibly
// column-pruned) scan output — so they are mapped back through Scan.Cols
// to source-schema positions.
func aligned(agg *plan.Aggregate, sc *plan.Scan, partitionBy string) bool {
	if partitionBy == "" {
		return false
	}
	srcIdx := sc.Src.Index(partitionBy)
	if srcIdx < 0 {
		return false
	}
	for _, k := range agg.Keys {
		cr, ok := k.(*expr.ColRef)
		if !ok {
			continue
		}
		if cr.Index < len(sc.Cols) && sc.Cols[cr.Index] == srcIdx {
			return true
		}
	}
	return false
}

// partialScan builds the merge plan's scan over the union of drained
// shard emissions. Shard pipelines hand the merge bare partial columns
// (no implicit ts — the SPSC tail carries batches, not basket rows), so
// the scan reads the partial schema directly.
func partialScan(partial *catalog.Schema, source string) *plan.Scan {
	cols := make([]int, partial.Len())
	for i := range cols {
		cols[i] = i
	}
	return &plan.Scan{Source: source, Kind: catalog.KindBasket, Cols: cols, Src: partial, Out: partial}
}

// distinctMergePlan re-deduplicates the union of shard emissions.
func distinctMergePlan(p plan.Node, source string) plan.Node {
	return &plan.Distinct{Child: partialScan(p.Schema(), source)}
}

// reaggMergePlan rebuilds the query's post-aggregation pipeline over a
// global re-aggregation of the shards' partial aggregates: COUNT partials
// are summed, SUM/MIN/MAX merge with themselves, then the original HAVING
// filter and projection apply unchanged (the merged aggregate's output
// schema is positionally identical to the per-shard one).
func reaggMergePlan(p plan.Node, agg *plan.Aggregate, source string) (plan.Node, error) {
	partial := agg.Out
	mergeAgg := &plan.Aggregate{Child: partialScan(partial, source), Out: partial}
	for i := range agg.Keys {
		c := partial.Columns[i]
		mergeAgg.Keys = append(mergeAgg.Keys, &expr.ColRef{Index: i, Name: c.Name, Typ: c.Type})
	}
	for j, a := range agg.Aggs {
		idx := len(agg.Keys) + j
		c := partial.Columns[idx]
		kind := a.Kind
		if kind == algebra.AggCount || kind == algebra.AggCountAll {
			kind = algebra.AggSum
		}
		mergeAgg.Aggs = append(mergeAgg.Aggs, plan.AggSpec{
			Kind: kind,
			Arg:  &expr.ColRef{Index: idx, Name: c.Name, Typ: c.Type},
			Name: a.Name,
		})
	}

	// Rebuild the chain above the aggregate: [Distinct] Project [Select].
	var distinct bool
	top := p
	if d, ok := top.(*plan.Distinct); ok {
		distinct = true
		top = d.Child
	}
	proj, ok := top.(*plan.Project)
	if !ok {
		return nil, fmt.Errorf("unexpected plan shape above aggregation (%T)", top)
	}
	inner := proj.Child
	var root plan.Node = mergeAgg
	switch x := inner.(type) {
	case *plan.Aggregate:
		// nothing between projection and aggregate
	case *plan.Select:
		if _, ok := x.Child.(*plan.Aggregate); !ok {
			return nil, fmt.Errorf("unexpected plan shape under HAVING (%T)", x.Child)
		}
		root = &plan.Select{Child: root, Pred: x.Pred}
	default:
		return nil, fmt.Errorf("unexpected plan shape above aggregation (%T)", inner)
	}
	root = &plan.Project{Child: root, Exprs: proj.Exprs, Out: proj.Out}
	if distinct {
		root = &plan.Distinct{Child: root}
	}
	return root, nil
}

// Merge is the transition that recombines shard emissions into the
// query's final output basket. Shard pipelines hand it result batches
// over per-shard SPSC tails; firing drains the tails in shard order —
// preserving each shard's emission order — and either appends the union
// directly (concat) or runs the merge plan over it (global distinct /
// re-aggregation). It implements scheduler.Transition; the scheduler's
// claim machine keeps firings serial, so merged batches never interleave.
type Merge struct {
	name   string
	source string // merge-plan scan override key
	tails  []*Tail
	out    *basket.Basket
	plan   plan.Node // nil = concat
	cat    *catalog.Catalog
	merged int64 // atomic: partial tuples drained so far
}

// NewMerge builds the merge transition. mergePlan may be nil for plain
// concatenation; source must match the Analysis' MergeSource.
func NewMerge(name, source string, tails []*Tail, out *basket.Basket, mergePlan plan.Node, cat *catalog.Catalog) *Merge {
	return &Merge{name: name, source: source, tails: tails, out: out, plan: mergePlan, cat: cat}
}

// Name implements scheduler.Transition.
func (m *Merge) Name() string { return m.name }

// SetWake attaches the merge's scheduler wake hook to every input tail,
// so a shard emission wakes exactly this transition.
func (m *Merge) SetWake(fn func()) {
	for _, t := range m.tails {
		t.SetWake(fn)
	}
}

// Tails returns the merge's input tails (checkpoint capture).
func (m *Merge) Tails() []*Tail { return m.tails }

// Ready implements scheduler.Transition: fire when any shard emitted.
// Pending is an atomic counter, so readiness costs no locks.
func (m *Merge) Ready() bool {
	for _, t := range m.tails {
		if t.Pending() > 0 {
			return true
		}
	}
	return false
}

// Lag returns the number of shard-emitted tuples not yet merged — the
// merge backlog surfaced by SHOW QUERIES.
func (m *Merge) Lag() int {
	n := 0
	for _, t := range m.tails {
		n += t.Pending()
	}
	return n
}

// Merged returns the cumulative number of partial tuples drained.
func (m *Merge) Merged() int64 { return atomic.LoadInt64(&m.merged) }

// Fire implements scheduler.Transition. It peeks every tail's buffered
// batches without consuming, appends one merged batch to the output
// basket, and only then discards the peeked prefix — the factory
// convention: a failed firing leaves its inputs in place for retry,
// losing nothing. Batches pushed concurrently with the firing stay
// buffered for the next one (the push wakes the merge again).
func (m *Merge) Fire() error {
	counts := make([]int, len(m.tails))
	var chunks []bat.Chunk
	total := 0
	for i, t := range m.tails {
		t.cmu.Lock()
		counts[i] = t.peekAll(func(it tailItem) {
			chunks = append(chunks, bat.Chunk{Cols: it.cols})
			total += it.cols[0].Len()
		})
		t.cmu.Unlock()
	}
	if total == 0 {
		return nil
	}
	if m.plan == nil {
		// Plain concat: hand each ring batch to the output basket
		// chunk-wise under one lock — the basket's tail chunk absorbs
		// them without the per-firing union materialization a single
		// concatenated relation would cost.
		m.out.Lock()
		appended := 0
		var appendErr error
		for _, ch := range chunks {
			if err := m.out.LockedAppendRelation(&storage.Relation{Schema: m.out.Schema(), Cols: ch.Cols}); err != nil {
				appendErr = fmt.Errorf("merge %s: %w", m.name, err)
				break
			}
			appended++
		}
		m.out.Unlock()
		if appended > 0 {
			m.out.NotifyAppend()
		}
		if appendErr != nil {
			// Ack only the appended prefix: downstream listeners were
			// already notified of it, so the retry must not re-append it;
			// the failed chunk and everything after it stay buffered in
			// the shard tails for the next firing.
			total = 0
			for _, ch := range chunks[:appended] {
				total += ch.Cols[0].Len()
			}
			rem := appended
			for i := range counts {
				if counts[i] > rem {
					counts[i] = rem
				}
				rem -= counts[i]
			}
			m.ack(counts, total)
			return appendErr
		}
	} else {
		// The union in shard order: the partial-aggregate input for a
		// merge plan, evaluated over the chunks without copying them.
		union := bat.View{Chunks: chunks}
		ctx := exec.NewContext(m.cat)
		ctx.Overrides[strings.ToLower(m.source)] = union
		rel, err := exec.Run(m.plan, ctx)
		if err != nil {
			return fmt.Errorf("merge %s: %w", m.name, err)
		}
		if err := m.out.AppendRelation(rel); err != nil {
			return fmt.Errorf("merge %s: %w", m.name, err)
		}
	}
	m.ack(counts, total)
	return nil
}

// ack discards the consumed prefix from each shard tail and credits the
// merged-row counter.
func (m *Merge) ack(counts []int, total int) {
	for i, t := range m.tails {
		if counts[i] == 0 {
			continue
		}
		t.cmu.Lock()
		t.discard(counts[i])
		t.cmu.Unlock()
	}
	atomic.AddInt64(&m.merged, int64(total))
}
