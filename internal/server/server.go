// Package server exposes the DataCell engine over TCP: receptor listeners
// accept flat-text tuples into streams, emitter listeners deliver
// continuous-query results to subscribers, and a control listener executes
// one-time SQL — the adapter periphery of §2.1 as a network daemon.
package server

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"

	datacell "repro"
	"repro/internal/adapters"
	"repro/internal/catalog"
	"repro/internal/sql"
)

// Server wires one engine to its listeners.
type Server struct {
	eng *datacell.Engine

	mu        sync.Mutex
	listeners []net.Listener
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...interface{})
}

// New wraps an engine.
func New(eng *datacell.Engine) *Server { return &Server{eng: eng} }

func (s *Server) logf(format string, args ...interface{}) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// RunScript executes a statement script: semicolon-separated SQL, split
// by the lexer (string literals and comments are respected) and executed
// through Engine.Exec — continuous queries are ordinary CREATE CONTINUOUS
// QUERY statements, the same code path as every other front end.
func (s *Server) RunScript(ctx context.Context, script string) error {
	stmts, err := sql.SplitStatements(script)
	if err != nil {
		return err
	}
	for _, stmt := range stmts {
		if _, err := s.eng.Exec(ctx, stmt); err != nil {
			return err
		}
	}
	return nil
}

// ListenIngest starts the stream-ingestion listener and returns its bound
// address. Protocol: the first line names the stream; each further line
// is one comma-separated tuple.
func (s *Server) ListenIngest(addr string) (net.Addr, error) {
	return s.listen(addr, s.ServeIngest)
}

// ListenResults starts the result-subscription listener. Protocol: the
// first line names a continuous query; result tuples stream back.
func (s *Server) ListenResults(addr string) (net.Addr, error) {
	return s.listen(addr, s.ServeResults)
}

// ListenSQL starts the one-time SQL listener (one statement per line).
func (s *Server) ListenSQL(addr string) (net.Addr, error) {
	return s.listen(addr, s.ServeSQL)
}

// ListenMetrics starts the observability HTTP listener (/metrics
// Prometheus text, /healthz, /debug/pprof/) on addr. It errors when the
// engine was opened with DisableMetrics. Alternatively, setting
// Config.MetricsAddr serves the same handler from the engine itself;
// this helper exists for front ends that manage all listeners in one
// place.
func (s *Server) ListenMetrics(addr string) (net.Addr, error) {
	h := s.eng.MetricsHandler()
	if h == nil {
		return nil, fmt.Errorf("server: engine metrics are disabled")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.listeners = append(s.listeners, ln)
	s.mu.Unlock()
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), nil
}

func (s *Server) listen(addr string, handle func(io.ReadWriteCloser)) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.listeners = append(s.listeners, ln)
	s.mu.Unlock()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go handle(conn)
		}
	}()
	return ln.Addr(), nil
}

// Close stops all listeners.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ln := range s.listeners {
		_ = ln.Close()
	}
	s.listeners = nil
}

// ServeIngest handles one receptor connection.
func (s *Server) ServeIngest(conn io.ReadWriteCloser) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	streamName, err := r.ReadString('\n')
	if err != nil {
		return
	}
	streamName = strings.TrimSpace(streamName)
	b, err := s.eng.Stream(streamName)
	if err != nil {
		fmt.Fprintf(conn, "ERR %v\n", err)
		return
	}
	userSchema := &catalog.Schema{Columns: b.Schema().Columns[:b.UserWidth()]}

	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 64*1024), 1024*1024)
	var pending [][]datacell.Value
	flush := func() {
		if len(pending) > 0 {
			if err := s.eng.Ingest(context.Background(), streamName, pending); err != nil {
				s.logf("ingest %s: %v", streamName, err)
			}
			pending = pending[:0]
		}
	}
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		row, err := adapters.ParseTuple(userSchema, line)
		if err != nil {
			s.logf("ingest %s: %v", streamName, err)
			continue
		}
		pending = append(pending, row)
		if len(pending) >= 128 {
			flush()
		}
	}
	flush()
}

// ServeResults handles one subscriber connection.
func (s *Server) ServeResults(conn io.ReadWriteCloser) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	name, err := r.ReadString('\n')
	if err != nil {
		return
	}
	q, err := s.eng.Query(strings.TrimSpace(name))
	if err != nil {
		fmt.Fprintf(conn, "ERR %v\n", err)
		return
	}
	sub := q.Subscription()
	if sub == nil {
		fmt.Fprintf(conn, "ERR query %q has no subscription (polling mode)\n", q.Name)
		return
	}
	w := bufio.NewWriter(conn)
	for rel := range sub.C() {
		userW := rel.Schema.Len()
		if rel.Schema.Index(catalog.TimestampColumn) == userW-1 {
			userW-- // strip the output basket's delivery timestamp
		}
		for i := 0; i < rel.NumRows(); i++ {
			row := rel.Row(i)
			if _, err := fmt.Fprintln(w, adapters.FormatTuple(row[:userW])); err != nil {
				return
			}
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// ServeSQL handles one control connection.
func (s *Server) ServeSQL(conn io.ReadWriteCloser) {
	defer conn.Close()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 64*1024), 1024*1024)
	w := bufio.NewWriter(conn)
	for scanner.Scan() {
		stmt := strings.TrimSpace(scanner.Text())
		if stmt == "" {
			continue
		}
		rel, err := s.eng.Exec(context.Background(), stmt)
		switch {
		case err != nil:
			fmt.Fprintf(w, "ERR %v\n", err)
		case rel != nil:
			fmt.Fprint(w, rel.String())
			fmt.Fprintln(w, "OK")
		default:
			fmt.Fprintln(w, "OK")
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}
