package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	datacell "repro"
)

func newServer(t *testing.T) (*Server, *datacell.Engine) {
	t.Helper()
	ctx := context.Background()
	eng, err := datacell.Open(ctx, datacell.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng)
	if err := s.RunScript(ctx, `
		CREATE BASKET sensors (id INT, temp DOUBLE);
		CREATE CONTINUOUS QUERY hot AS
			SELECT * FROM [SELECT * FROM sensors] AS x WHERE x.temp > 30.0;
	`); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		_ = eng.Stop(ctx)
	})
	return s, eng
}

func dial(t *testing.T, addr net.Addr) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return conn
}

func TestRunScriptErrors(t *testing.T) {
	ctx := context.Background()
	eng := datacell.New(datacell.Config{})
	s := New(eng)
	if err := s.RunScript(ctx, "CREATE CONTINUOUS QUERY justaname"); err == nil {
		t.Error("CREATE CONTINUOUS QUERY without AS select should fail")
	}
	if err := s.RunScript(ctx, "BOGUS SQL"); err == nil {
		t.Error("bad SQL should fail")
	}
	if err := s.RunScript(ctx, "  ;;  ;"); err != nil {
		t.Errorf("empty statements should be skipped: %v", err)
	}
	// A semicolon inside a string literal is not a statement boundary.
	if err := s.RunScript(ctx, "CREATE TABLE t1 (v VARCHAR); INSERT INTO t1 VALUES ('a;b')"); err != nil {
		t.Errorf("semicolon in literal: %v", err)
	}
	if rel, err := eng.Exec(ctx, "SELECT COUNT(*) FROM t1"); err != nil || rel.Cols[0].Get(0).I != 1 {
		t.Errorf("literal row lost: %v %v", rel, err)
	}
}

func TestEndToEndTCP(t *testing.T) {
	s, _ := newServer(t)
	ingestAddr, err := s.ListenIngest("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resultAddr, err := s.ListenResults("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sqlAddr, err := s.ListenSQL("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Subscribe first.
	sub := dial(t, resultAddr)
	fmt.Fprintln(sub, "hot")
	results := bufio.NewScanner(sub)

	// Feed tuples, one cold and two hot, plus one malformed line.
	in := dial(t, ingestAddr)
	fmt.Fprintln(in, "sensors")
	fmt.Fprintln(in, "1,20.5")
	fmt.Fprintln(in, "not,a,tuple")
	fmt.Fprintln(in, "2,31.5")
	fmt.Fprintln(in, "3,40.0")
	_ = in.Close()

	var got []string
	deadline := time.After(5 * time.Second)
	lines := make(chan string)
	go func() {
		for results.Scan() {
			lines <- results.Text()
		}
		close(lines)
	}()
	for len(got) < 2 {
		select {
		case l, ok := <-lines:
			if !ok {
				t.Fatalf("subscription closed early; got %v", got)
			}
			got = append(got, l)
		case <-deadline:
			t.Fatalf("timeout; got %v", got)
		}
	}
	if got[0] != "2,31.5" || got[1] != "3,40" {
		t.Errorf("results = %v", got)
	}

	// One-time SQL over the control port.
	ctl := dial(t, sqlAddr)
	fmt.Fprintln(ctl, "SELECT COUNT(*) FROM sensors")
	r := bufio.NewScanner(ctl)
	var resp []string
	for r.Scan() {
		resp = append(resp, r.Text())
		if r.Text() == "OK" || strings.HasPrefix(r.Text(), "ERR") {
			break
		}
	}
	joined := strings.Join(resp, "\n")
	if !strings.Contains(joined, "OK") {
		t.Errorf("sql response = %q", joined)
	}

	// Error paths.
	badIn := dial(t, ingestAddr)
	fmt.Fprintln(badIn, "nosuchstream")
	br := bufio.NewScanner(badIn)
	if !br.Scan() || !strings.HasPrefix(br.Text(), "ERR") {
		t.Errorf("expected ERR for unknown stream, got %q", br.Text())
	}

	badSub := dial(t, resultAddr)
	fmt.Fprintln(badSub, "nosuchquery")
	bs := bufio.NewScanner(badSub)
	if !bs.Scan() || !strings.HasPrefix(bs.Text(), "ERR") {
		t.Errorf("expected ERR for unknown query, got %q", bs.Text())
	}

	badCtl := dial(t, sqlAddr)
	fmt.Fprintln(badCtl, "SELECT broken FROM nowhere")
	bc := bufio.NewScanner(badCtl)
	if !bc.Scan() || !strings.HasPrefix(bc.Text(), "ERR") {
		t.Errorf("expected ERR for bad SQL, got %q", bc.Text())
	}
}

func TestDDLOverSQLPort(t *testing.T) {
	s, eng := newServer(t)
	sqlAddr, err := s.ListenSQL("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctl := dial(t, sqlAddr)
	fmt.Fprintln(ctl, "CREATE TABLE ref (k INT, v VARCHAR)")
	r := bufio.NewScanner(ctl)
	if !r.Scan() || r.Text() != "OK" {
		t.Fatalf("create: %q", r.Text())
	}
	fmt.Fprintln(ctl, "INSERT INTO ref VALUES (1, 'one')")
	if !r.Scan() || r.Text() != "OK" {
		t.Fatalf("insert: %q", r.Text())
	}
	rel, err := eng.Exec(context.Background(), "SELECT v FROM ref WHERE k = 1")
	if err != nil || rel.NumRows() != 1 {
		t.Fatalf("rel = %v err = %v", rel, err)
	}
}

// TestContinuousDDLOverSQLPort verifies the one-code-path criterion: the
// continuous-query lifecycle works over the TCP control listener exactly
// as it does via Engine.Exec and RunScript.
func TestContinuousDDLOverSQLPort(t *testing.T) {
	s, eng := newServer(t)
	sqlAddr, err := s.ListenSQL("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctl := dial(t, sqlAddr)
	r := bufio.NewScanner(ctl)

	fmt.Fprintln(ctl, "CREATE CONTINUOUS QUERY cold WITH (strategy = shared, polling = true) AS SELECT * FROM [SELECT * FROM sensors] AS x WHERE x.temp < 0.0")
	if !r.Scan() || r.Text() != "OK" {
		t.Fatalf("create continuous: %q", r.Text())
	}
	if q, err := eng.Query("cold"); err != nil || q.Strategy != datacell.SharedBaskets {
		t.Fatalf("query not registered via TCP: %v", err)
	}

	// SHOW QUERIES over the wire lists both standing queries.
	fmt.Fprintln(ctl, "SHOW QUERIES")
	var show []string
	for r.Scan() {
		show = append(show, r.Text())
		if r.Text() == "OK" || strings.HasPrefix(r.Text(), "ERR") {
			break
		}
	}
	joined := strings.Join(show, "\n")
	if !strings.Contains(joined, "cold") || !strings.Contains(joined, "hot") {
		t.Errorf("SHOW QUERIES = %q", joined)
	}

	fmt.Fprintln(ctl, "DROP CONTINUOUS QUERY cold")
	if !r.Scan() || r.Text() != "OK" {
		t.Fatalf("drop continuous: %q", r.Text())
	}
	if _, err := eng.Query("cold"); err == nil {
		t.Error("query survived DROP over TCP")
	}
	fmt.Fprintln(ctl, "DROP CONTINUOUS QUERY cold")
	if !r.Scan() || !strings.HasPrefix(r.Text(), "ERR") {
		t.Errorf("double drop should ERR, got %q", r.Text())
	}
}
