package route

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bat"
	"repro/internal/expr"
	"repro/internal/vector"
)

func col(idx int, name string, t vector.Type) *expr.ColRef {
	return &expr.ColRef{Index: idx, Name: name, Typ: t}
}

func intConst(v int64) *expr.Const { return &expr.Const{Val: vector.NewInt(v)} }

func bin(op expr.BinOp, l, r expr.Expr) expr.Expr { return &expr.Binary{Op: op, L: l, R: r} }

func intBatch(vals ...int64) bat.View {
	v := vector.NewWithCap(vector.Int64, len(vals))
	for _, x := range vals {
		v.AppendInt(x)
	}
	return bat.ViewOf(v)
}

func matchSet(ix *Index, batch bat.View) map[string]bool {
	got := map[string]bool{}
	for _, p := range ix.Match(batch, nil) {
		got[p.(string)] = true
	}
	return got
}

func TestAnalyzeKinds(t *testing.T) {
	c := col(0, "v", vector.Int64)
	cases := []struct {
		pred expr.Expr
		want Kind
	}{
		{nil, Residual},
		{bin(expr.CmpEq, c, intConst(7)), Eq},
		{bin(expr.CmpEq, intConst(7), c), Eq}, // flipped orientation
		{bin(expr.CmpGt, c, intConst(3)), Range},
		{bin(expr.And, bin(expr.CmpGt, c, intConst(3)), bin(expr.CmpLe, c, intConst(9))), Range},
		{bin(expr.And, bin(expr.CmpGt, c, intConst(3)), bin(expr.CmpEq, c, intConst(5))), Eq},
		{bin(expr.And, bin(expr.CmpGt, c, intConst(9)), bin(expr.CmpLt, c, intConst(3))), Never},
		{bin(expr.CmpEq, c, &expr.Const{Val: vector.NullValue(vector.Int64)}), Never},
		{bin(expr.Or, bin(expr.CmpEq, c, intConst(1)), bin(expr.CmpEq, c, intConst(2))), Residual},
		{bin(expr.CmpEq, c, bin(expr.Add, intConst(1), intConst(2))), Residual},
		// 3.5 can never equal an integer column.
		{bin(expr.CmpEq, c, &expr.Const{Val: vector.NewFloat(3.5)}), Never},
		// 3.0 can.
		{bin(expr.CmpEq, c, &expr.Const{Val: vector.NewFloat(3)}), Eq},
	}
	for i, tc := range cases {
		if got := Analyze(tc.pred).Kind(); got != tc.want {
			t.Errorf("case %d (%v): kind = %v, want %v", i, tc.pred, got, tc.want)
		}
	}
}

func TestMatchRouting(t *testing.T) {
	c := col(0, "v", vector.Int64)
	ix := NewIndex()
	ix.Add(1, Analyze(bin(expr.CmpEq, c, intConst(7))), "eq7")
	ix.Add(2, Analyze(bin(expr.CmpEq, c, intConst(100))), "eq100")
	ix.Add(3, Analyze(bin(expr.And, bin(expr.CmpGe, c, intConst(50)), bin(expr.CmpLt, c, intConst(60)))), "rng50_60")
	ix.Add(4, Analyze(nil), "all")
	ix.Add(5, Analyze(bin(expr.CmpEq, c, &expr.Const{Val: vector.NullValue(vector.Int64)})), "never")
	ix.FlushIfDirty()

	got := matchSet(ix, intBatch(1, 7, 42))
	for _, want := range []string{"eq7", "all"} {
		if !got[want] {
			t.Errorf("batch(1,7,42): missing %q in %v", want, got)
		}
	}
	for _, no := range []string{"eq100", "rng50_60", "never"} {
		if got[no] {
			t.Errorf("batch(1,7,42): unexpected %q", no)
		}
	}

	got = matchSet(ix, intBatch(55))
	if !got["rng50_60"] || !got["all"] || got["eq7"] {
		t.Errorf("batch(55): got %v", got)
	}
	// Range overlap is judged on min/max: 49 and 61 straddle the band.
	got = matchSet(ix, intBatch(49, 61))
	if !got["rng50_60"] {
		t.Errorf("batch(49,61): min/max overlap should route rng50_60, got %v", got)
	}
	got = matchSet(ix, intBatch(10, 20))
	if got["rng50_60"] {
		t.Errorf("batch(10,20): rng50_60 should be skipped, got %v", got)
	}
}

func TestPendingMatchesConservatively(t *testing.T) {
	c := col(0, "v", vector.Int64)
	ix := NewIndex()
	ix.Add(1, Analyze(bin(expr.CmpEq, c, intConst(100))), "eq100")
	// No flush: the pending overlay must still route the entry.
	if got := matchSet(ix, intBatch(1)); !got["eq100"] {
		t.Fatalf("pending entry not matched: %v", got)
	}
	ix.FlushIfDirty()
	if got := matchSet(ix, intBatch(1)); got["eq100"] {
		t.Fatalf("flushed eq entry matched a non-matching batch: %v", got)
	}
	ix.Remove(1)
	if got := matchSet(ix, intBatch(100)); len(got) != 0 {
		t.Fatalf("removed entry matched: %v", got)
	}
}

func TestConcurrentAddRemoveMatch(t *testing.T) {
	c := col(0, "v", vector.Int64)
	ix := NewIndex()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		id := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			id++
			ix.Add(id, Analyze(bin(expr.CmpEq, c, intConst(int64(id%16)))), fmt.Sprint(id))
			if id%4 == 0 {
				ix.FlushIfDirty()
			}
			if id%3 == 0 {
				ix.Remove(id - 1)
			}
		}
	}()
	go func() {
		defer wg.Done()
		batch := intBatch(1, 2, 3, 4, 5)
		for i := 0; i < 2000; i++ {
			ix.Match(batch, nil)
		}
		close(stop)
	}()
	wg.Wait()
}
