// Package route implements the predicate index behind shared-scan
// multi-query execution: a discrimination network over the selection
// predicates of the continuous queries registered on one stream. Each
// ingested batch is matched against the index once — equality predicates
// through per-column hash buckets probed with the batch's distinct
// values, range predicates through min/max interval overlap, everything
// else through a residual always-visit list — so a batch reaches only
// the query groups whose filters can possibly match it, and the other
// groups cost nothing per firing.
//
// The index is copy-on-write: Match loads an immutable snapshot with one
// atomic read, while Add/Remove build replacement state under a writer
// mutex. Additions park in a pending overlay (matched conservatively as
// always-match) until the owner calls FlushIfDirty, which folds them
// into a fresh snapshot — this keeps registering N queries O(N) instead
// of O(N²) full rebuilds.
//
// Matching is conservative by construction: an anchor atom is one
// conjunct of the query's predicate, so "anchor cannot match" implies
// "predicate cannot match", and anything the index cannot normalize
// falls back to the residual list. The index never proves a match — the
// routed group still evaluates its full plan — it only proves misses.
package route

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/bat"
	"repro/internal/expr"
	"repro/internal/vector"
)

// Kind classifies the anchor atom a predicate was indexed under.
type Kind uint8

// Anchor kinds.
const (
	// Residual predicates are visited on every batch (no indexable atom).
	Residual Kind = iota
	// Eq predicates anchor on one column = constant conjunct.
	Eq
	// Range predicates anchor on an interval over one numeric column.
	Range
	// Never predicates can never match (e.g. x = NULL, or an empty
	// interval); their entries are not routed at all.
	Never
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case Eq:
		return "eq"
	case Range:
		return "range"
	case Never:
		return "never"
	default:
		return "residual"
	}
}

// vkey is a normalized equality-bucket key: the column's value domain
// collapsed to one comparable struct. Keys are normalized from the
// column side's declared type, so a registered constant and a batch
// value for the same column always normalize identically.
type vkey struct {
	kind uint8 // 0 int (Int64/Timestamp), 1 float, 2 string, 3 bool
	i    int64
	f    float64
	s    string
	b    bool
}

const (
	keyInt uint8 = iota
	keyFloat
	keyString
	keyBool
)

// interval is a closed/open bound pair over one numeric column, kept in
// the column's native domain (int64 for Int64/Timestamp, float64 for
// Float64) so routing never loses precision to a cross-domain cast.
// Integer bounds fold strictness in (x > 5 becomes lo=6); float bounds
// carry open flags.
type interval struct {
	isFloat        bool
	hasLo, hasHi   bool
	loI, hiI       int64
	loF, hiF       float64
	loOpen, hiOpen bool // float bounds only
}

func (iv *interval) empty() bool {
	if !iv.hasLo || !iv.hasHi {
		return false
	}
	if iv.isFloat {
		if iv.loF > iv.hiF {
			return true
		}
		return iv.loF == iv.hiF && (iv.loOpen || iv.hiOpen)
	}
	return iv.loI > iv.hiI
}

// Pred is a predicate's routing classification: the anchor atom the
// index discriminates on. Build one with Analyze.
type Pred struct {
	kind Kind
	col  int    // anchor column (Eq/Range)
	name string // anchor column name, for diagnostics
	key  vkey   // Eq anchor
	iv   interval
}

// Kind returns the anchor classification.
func (p Pred) Kind() Kind { return p.kind }

// Describe renders the anchor for EXPLAIN output.
func (p Pred) Describe() string {
	switch p.kind {
	case Eq:
		return fmt.Sprintf("eq(%s)", p.name)
	case Range:
		return fmt.Sprintf("range(%s)", p.name)
	case Never:
		return "never"
	default:
		return "residual"
	}
}

// Analyze classifies a predicate (nil means "no filter") by extracting
// the most selective indexable anchor atom from its top-level conjuncts:
// an equality with a constant if one exists, else the intersected
// constant range over one column, else residual. A conjunct that can
// never hold (x = NULL, an empty range) makes the whole predicate Never.
func Analyze(e expr.Expr) Pred {
	if e == nil {
		return Pred{kind: Residual}
	}
	var eqAnchor *Pred
	type colRange struct {
		name string
		iv   interval
	}
	ranges := map[int]*colRange{}
	order := []int{}
	for _, c := range expr.SplitConjuncts(e) {
		b, ok := c.(*expr.Binary)
		if !ok || !b.Op.IsComparison() {
			continue
		}
		col, cst, op, ok := comparisonAtom(b)
		if !ok {
			continue
		}
		if cst.Val.Null {
			// A comparison with NULL is never true; the conjunct — and so
			// the whole predicate — cannot match.
			return Pred{kind: Never}
		}
		if op == expr.CmpEq {
			k, st := eqKey(col.Typ, cst.Val)
			switch st {
			case atomNever:
				return Pred{kind: Never}
			case atomOK:
				if eqAnchor == nil {
					eqAnchor = &Pred{kind: Eq, col: col.Index, name: col.Name, key: k}
				}
			}
			continue
		}
		if op == expr.CmpNe {
			continue // excludes one value; useless as an anchor
		}
		iv, st := rangeBound(col.Typ, op, cst.Val)
		switch st {
		case atomNever:
			return Pred{kind: Never}
		case atomSkip:
			continue
		}
		cr := ranges[col.Index]
		if cr == nil {
			cr = &colRange{name: col.Name, iv: iv}
			ranges[col.Index] = cr
			order = append(order, col.Index)
		} else {
			cr.iv = intersect(cr.iv, iv)
		}
		if cr.iv.empty() {
			return Pred{kind: Never}
		}
	}
	if eqAnchor != nil {
		return *eqAnchor
	}
	// Prefer the most constrained column: two-sided bounds beat one-sided.
	best := -1
	bestScore := 0
	for _, col := range order {
		score := 0
		if ranges[col].iv.hasLo {
			score++
		}
		if ranges[col].iv.hasHi {
			score++
		}
		if score > bestScore {
			best, bestScore = col, score
		}
	}
	if best >= 0 {
		return Pred{kind: Range, col: best, name: ranges[best].name, iv: ranges[best].iv}
	}
	return Pred{kind: Residual}
}

// comparisonAtom matches column-op-constant in either orientation,
// flipping the operator when the constant is on the left.
func comparisonAtom(b *expr.Binary) (*expr.ColRef, *expr.Const, expr.BinOp, bool) {
	if col, ok := b.L.(*expr.ColRef); ok {
		if cst, ok := b.R.(*expr.Const); ok {
			return col, cst, b.Op, true
		}
		return nil, nil, 0, false
	}
	cst, ok := b.L.(*expr.Const)
	if !ok {
		return nil, nil, 0, false
	}
	col, ok := b.R.(*expr.ColRef)
	if !ok {
		return nil, nil, 0, false
	}
	return col, cst, flip(b.Op), true
}

func flip(op expr.BinOp) expr.BinOp {
	switch op {
	case expr.CmpLt:
		return expr.CmpGt
	case expr.CmpLe:
		return expr.CmpGe
	case expr.CmpGt:
		return expr.CmpLt
	case expr.CmpGe:
		return expr.CmpLe
	default:
		return op // =, <> are symmetric
	}
}

type atomStatus uint8

const (
	atomOK atomStatus = iota
	atomSkip
	atomNever
)

// eqKey normalizes an equality constant into the column's value domain.
func eqKey(colType vector.Type, v vector.Value) (vkey, atomStatus) {
	switch colType {
	case vector.Int64, vector.Timestamp:
		switch v.Typ {
		case vector.Int64, vector.Timestamp:
			return vkey{kind: keyInt, i: v.I}, atomOK
		case vector.Float64:
			if v.F != math.Trunc(v.F) || v.F < math.MinInt64 || v.F >= math.MaxInt64 {
				return vkey{}, atomNever // 3.5 never equals an integer
			}
			return vkey{kind: keyInt, i: int64(v.F)}, atomOK
		}
	case vector.Float64:
		switch v.Typ {
		case vector.Int64, vector.Timestamp, vector.Float64:
			f := v.AsFloat()
			if math.IsNaN(f) {
				return vkey{}, atomNever
			}
			return vkey{kind: keyFloat, f: f}, atomOK
		}
	case vector.String:
		if v.Typ == vector.String {
			return vkey{kind: keyString, s: v.S}, atomOK
		}
	case vector.Bool:
		if v.Typ == vector.Bool {
			return vkey{kind: keyBool, b: v.B}, atomOK
		}
	}
	return vkey{}, atomSkip // cross-type compare the index cannot judge
}

// rangeBound turns one inequality conjunct into a native-domain interval.
func rangeBound(colType vector.Type, op expr.BinOp, v vector.Value) (interval, atomStatus) {
	switch colType {
	case vector.Int64, vector.Timestamp:
		var c int64
		switch v.Typ {
		case vector.Int64, vector.Timestamp:
			c = v.I
		case vector.Float64:
			return floatBoundOnInt(op, v.F)
		default:
			return interval{}, atomSkip
		}
		switch op {
		case expr.CmpLt:
			if c == math.MinInt64 {
				return interval{}, atomNever
			}
			return interval{hasHi: true, hiI: c - 1}, atomOK
		case expr.CmpLe:
			return interval{hasHi: true, hiI: c}, atomOK
		case expr.CmpGt:
			if c == math.MaxInt64 {
				return interval{}, atomNever
			}
			return interval{hasLo: true, loI: c + 1}, atomOK
		case expr.CmpGe:
			return interval{hasLo: true, loI: c}, atomOK
		}
	case vector.Float64:
		if v.Typ != vector.Int64 && v.Typ != vector.Timestamp && v.Typ != vector.Float64 {
			return interval{}, atomSkip
		}
		c := v.AsFloat()
		if math.IsNaN(c) {
			return interval{}, atomNever
		}
		switch op {
		case expr.CmpLt:
			return interval{isFloat: true, hasHi: true, hiF: c, hiOpen: true}, atomOK
		case expr.CmpLe:
			return interval{isFloat: true, hasHi: true, hiF: c}, atomOK
		case expr.CmpGt:
			return interval{isFloat: true, hasLo: true, loF: c, loOpen: true}, atomOK
		case expr.CmpGe:
			return interval{isFloat: true, hasLo: true, loF: c}, atomOK
		}
	}
	return interval{}, atomSkip
}

// floatBoundOnInt bounds an integer column by a float constant: the
// tightest integer bound that keeps every satisfying integer inside.
func floatBoundOnInt(op expr.BinOp, c float64) (interval, atomStatus) {
	if math.IsNaN(c) {
		return interval{}, atomNever
	}
	const lim = float64(math.MaxInt64 / 2) // stay far from int64 edges
	if c > lim {
		if op == expr.CmpLt || op == expr.CmpLe {
			return interval{}, atomSkip // always true for in-range ints
		}
		return interval{}, atomNever
	}
	if c < -lim {
		if op == expr.CmpGt || op == expr.CmpGe {
			return interval{}, atomSkip
		}
		return interval{}, atomNever
	}
	switch op {
	case expr.CmpLt: // largest int < c
		return interval{hasHi: true, hiI: int64(math.Ceil(c)) - 1}, atomOK
	case expr.CmpLe: // largest int <= c
		return interval{hasHi: true, hiI: int64(math.Floor(c))}, atomOK
	case expr.CmpGt: // smallest int > c
		return interval{hasLo: true, loI: int64(math.Floor(c)) + 1}, atomOK
	default: // CmpGe: smallest int >= c
		return interval{hasLo: true, loI: int64(math.Ceil(c))}, atomOK
	}
}

// intersect merges two intervals over the same column. Mixed domains
// cannot arise: the domain is a function of the column type.
func intersect(a, b interval) interval {
	out := a
	if b.hasLo {
		switch {
		case !out.hasLo:
			out.hasLo, out.loI, out.loF, out.loOpen = true, b.loI, b.loF, b.loOpen
		case out.isFloat && (b.loF > out.loF || (b.loF == out.loF && b.loOpen)):
			out.loF, out.loOpen = b.loF, b.loOpen
		case !out.isFloat && b.loI > out.loI:
			out.loI = b.loI
		}
	}
	if b.hasHi {
		switch {
		case !out.hasHi:
			out.hasHi, out.hiI, out.hiF, out.hiOpen = true, b.hiI, b.hiF, b.hiOpen
		case out.isFloat && (b.hiF < out.hiF || (b.hiF == out.hiF && b.hiOpen)):
			out.hiF, out.hiOpen = b.hiF, b.hiOpen
		case !out.isFloat && b.hiI < out.hiI:
			out.hiI = b.hiI
		}
	}
	return out
}

// entry is one indexed predicate with its opaque payload (the caller's
// query group).
type entry struct {
	id      uint64
	payload any
	pred    Pred
}

// state is the immutable matching structure Match reads with a single
// atomic load: the discrimination network plus the pending overlay of
// entries added since the last rebuild (visited unconditionally). The
// network and the overlay are published together so a concurrent
// rebuild — which moves entries from the overlay into the network, or
// drops removed ones from both — can never leave Match seeing an entry
// in both places (duplicate routing) or in neither (a silently missed
// batch).
type state struct {
	eq       map[int]map[vkey][]*entry // column -> value -> entries
	rngs     []*entry
	residual []*entry
	pending  []*entry
}

var emptyState = &state{}

// Index is the predicate-routing index for one stream.
type Index struct {
	// mu serializes writers (Add/Remove/FlushIfDirty); readers go through
	// the atomic state pointer only.
	mu     sync.Mutex
	master map[uint64]*entry // all registered entries, by id (under mu)
	size   atomic.Int64
	st     atomic.Pointer[state]
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	ix := &Index{master: map[uint64]*entry{}}
	ix.st.Store(emptyState)
	return ix
}

// Len returns the number of registered entries (Never entries included).
func (ix *Index) Len() int { return int(ix.size.Load()) }

// Add registers a predicate under id. The entry lands in the pending
// overlay (matched as always-match) until the next FlushIfDirty folds it
// into the snapshot, so registration cost stays flat in index size.
func (ix *Index) Add(id uint64, p Pred, payload any) {
	e := &entry{id: id, payload: payload, pred: p}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.master[id] = e
	ix.size.Add(1)
	if p.kind == Never {
		return // never matches; no need to route it at all
	}
	old := ix.st.Load()
	pending := make([]*entry, len(old.pending)+1)
	copy(pending, old.pending)
	pending[len(old.pending)] = e
	ix.st.Store(&state{eq: old.eq, rngs: old.rngs, residual: old.residual, pending: pending})
}

// Remove drops the entry registered under id and publishes a rebuilt
// snapshot, so no later Match can return its payload.
func (ix *Index) Remove(id uint64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.master[id]; !ok {
		return
	}
	delete(ix.master, id)
	ix.size.Add(-1)
	ix.rebuildLocked()
}

// FlushIfDirty folds pending additions into the discrimination network.
// The scan transition calls it at the top of each firing, so
// steady-state matching never pays the always-visit overlay for long.
func (ix *Index) FlushIfDirty() {
	if len(ix.st.Load().pending) == 0 {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(ix.st.Load().pending) == 0 {
		return
	}
	ix.rebuildLocked()
}

// rebuildLocked publishes a fresh state from master with an empty
// pending overlay. Caller holds mu.
func (ix *Index) rebuildLocked() {
	next := &state{eq: map[int]map[vkey][]*entry{}}
	for _, e := range ix.master {
		switch e.pred.kind {
		case Eq:
			buckets := next.eq[e.pred.col]
			if buckets == nil {
				buckets = map[vkey][]*entry{}
				next.eq[e.pred.col] = buckets
			}
			buckets[e.pred.key] = append(buckets[e.pred.key], e)
		case Range:
			next.rngs = append(next.rngs, e)
		case Residual:
			next.residual = append(next.residual, e)
		}
	}
	ix.st.Store(next)
}

// colStats caches one column's batch min/max for interval overlap tests.
type colStats struct {
	any        bool
	minI, maxI int64
	minF, maxF float64
}

// Match appends to out the payloads of every entry whose predicate may
// match the batch: residual and pending entries always, equality entries
// whose bucket key occurs among the batch's distinct values, range
// entries whose interval overlaps the batch column's min/max. Each
// distinct predicate atom is evaluated once per batch, not once per
// query. Safe for concurrent use with Add/Remove.
func (ix *Index) Match(batch bat.View, out []any) []any {
	st := ix.st.Load()
	for _, e := range st.residual {
		out = append(out, e.payload)
	}
	for _, e := range st.pending {
		out = append(out, e.payload)
	}
	for col, buckets := range st.eq {
		out = probeColumn(batch, col, buckets, out)
	}
	if len(st.rngs) > 0 {
		stats := map[int]*colStats{}
		for _, e := range st.rngs {
			st := stats[e.pred.col]
			if st == nil {
				st = columnStats(batch, e.pred.col)
				stats[e.pred.col] = st
			}
			if overlaps(&e.pred.iv, st) {
				out = append(out, e.payload)
			}
		}
	}
	return out
}

// probeColumn hashes the batch's distinct non-null values of one column
// into the eq buckets — one pass over the rows regardless of how many
// queries anchor on the column.
func probeColumn(batch bat.View, col int, buckets map[vkey][]*entry, out []any) []any {
	seen := map[vkey]struct{}{}
	probe := func(k vkey) {
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		for _, e := range buckets[k] {
			out = append(out, e.payload)
		}
	}
	for _, ch := range batch.Chunks {
		if col >= len(ch.Cols) {
			continue
		}
		v := ch.Cols[col]
		nulls := v.HasNulls()
		switch v.Type() {
		case vector.Int64, vector.Timestamp:
			for i, x := range v.Ints() {
				if nulls && v.IsNull(i) {
					continue
				}
				probe(vkey{kind: keyInt, i: x})
			}
		case vector.Float64:
			for i, x := range v.Floats() {
				if nulls && v.IsNull(i) {
					continue
				}
				probe(vkey{kind: keyFloat, f: x})
			}
		case vector.String:
			for i, x := range v.Strings() {
				if nulls && v.IsNull(i) {
					continue
				}
				probe(vkey{kind: keyString, s: x})
			}
		case vector.Bool:
			for i, x := range v.Bools() {
				if nulls && v.IsNull(i) {
					continue
				}
				probe(vkey{kind: keyBool, b: x})
			}
		}
	}
	return out
}

// columnStats computes the batch min/max of one column, skipping nulls.
func columnStats(batch bat.View, col int) *colStats {
	st := &colStats{}
	for _, ch := range batch.Chunks {
		if col >= len(ch.Cols) {
			continue
		}
		v := ch.Cols[col]
		nulls := v.HasNulls()
		switch v.Type() {
		case vector.Int64, vector.Timestamp:
			for i, x := range v.Ints() {
				if nulls && v.IsNull(i) {
					continue
				}
				if !st.any {
					st.any, st.minI, st.maxI = true, x, x
				} else if x < st.minI {
					st.minI = x
				} else if x > st.maxI {
					st.maxI = x
				}
			}
		case vector.Float64:
			for i, x := range v.Floats() {
				if nulls && v.IsNull(i) {
					continue
				}
				if !st.any {
					st.any, st.minF, st.maxF = true, x, x
				} else if x < st.minF {
					st.minF = x
				} else if x > st.maxF {
					st.maxF = x
				}
			}
		}
	}
	return st
}

// overlaps reports whether any value in [min, max] can fall inside iv.
func overlaps(iv *interval, st *colStats) bool {
	if !st.any {
		return false
	}
	if iv.isFloat {
		if iv.hasLo && (st.maxF < iv.loF || (st.maxF == iv.loF && iv.loOpen)) {
			return false
		}
		if iv.hasHi && (st.minF > iv.hiF || (st.minF == iv.hiF && iv.hiOpen)) {
			return false
		}
		return true
	}
	if iv.hasLo && st.maxI < iv.loI {
		return false
	}
	if iv.hasHi && st.minI > iv.hiI {
		return false
	}
	return true
}
