// Package bat implements Binary Association Tables, the storage unit of
// the columnar kernel. A BAT pairs a virtual dense head (the tuple key
// sequence) with a tail vector holding one attribute's values, exactly as
// in MonetDB: all attributes of relational tuple t sit at the same position
// in their respective BATs, so tuple reconstruction is positional.
package bat

import (
	"fmt"

	"repro/internal/vector"
)

// OID identifies a tuple. Head columns are virtual: the OID of position i
// in a BAT with head sequence base hseq is hseq+i, never materialized.
type OID int64

// BAT is a two-column table with a virtual dense head.
type BAT struct {
	hseq OID
	tail *vector.Vector
}

// New returns an empty BAT with head sequence starting at 0.
func New(t vector.Type) *BAT { return &BAT{tail: vector.New(t)} }

// NewWithSeq returns an empty BAT whose head sequence starts at hseq.
func NewWithSeq(t vector.Type, hseq OID) *BAT {
	return &BAT{hseq: hseq, tail: vector.New(t)}
}

// Wrap adopts an existing vector as the tail of a BAT with head base hseq.
func Wrap(tail *vector.Vector, hseq OID) *BAT { return &BAT{hseq: hseq, tail: tail} }

// Hseq returns the first OID of the (virtual) head column.
func (b *BAT) Hseq() OID { return b.hseq }

// Tail returns the tail vector. Callers must not append to it directly;
// use the BAT's Append methods so the head sequence stays consistent.
func (b *BAT) Tail() *vector.Vector { return b.tail }

// Type returns the tail type.
func (b *BAT) Type() vector.Type { return b.tail.Type() }

// Len returns the number of tuples.
func (b *BAT) Len() int { return b.tail.Len() }

// OIDAt returns the OID of position i.
func (b *BAT) OIDAt(i int) OID { return b.hseq + OID(i) }

// Pos translates an OID back into a position, or -1 if out of range.
func (b *BAT) Pos(o OID) int {
	p := int(o - b.hseq)
	if p < 0 || p >= b.Len() {
		return -1
	}
	return p
}

// Get returns the tail value at position i.
func (b *BAT) Get(i int) vector.Value { return b.tail.Get(i) }

// AppendValue appends one value, assigning it the next OID.
func (b *BAT) AppendValue(v vector.Value) { b.tail.AppendValue(v) }

// AppendVector bulk-appends a run of values.
func (b *BAT) AppendVector(v *vector.Vector) { b.tail.AppendVector(v) }

// Window returns a view BAT over positions [lo, hi); its head sequence is
// shifted so OIDs are preserved.
func (b *BAT) Window(lo, hi int) *BAT {
	return &BAT{hseq: b.hseq + OID(lo), tail: b.tail.Window(lo, hi)}
}

// Take materializes the tuples at the given positions into a fresh BAT
// with a new dense head starting at 0 (MonetDB's leftfetchjoin).
func (b *BAT) Take(pos []int) *BAT {
	return &BAT{tail: b.tail.Take(pos)}
}

// Clone deep-copies the BAT.
func (b *BAT) Clone() *BAT {
	return &BAT{hseq: b.hseq, tail: b.tail.Clone()}
}

// DropPrefix removes the first n tuples and advances the head sequence,
// preserving the OIDs of the survivors. Baskets use this to discard
// consumed tuples.
func (b *BAT) DropPrefix(n int) {
	b.tail.DropPrefix(n)
	b.hseq += OID(n)
}

// String renders a short preview.
func (b *BAT) String() string {
	return fmt.Sprintf("BAT@%d %s", b.hseq, b.tail)
}

// Candidates is a sorted list of positions produced by selection operators
// and consumed by projections — MonetDB's candidate lists.
type Candidates []int

// All returns the candidate list selecting every position in [0, n).
func All(n int) Candidates {
	c := make(Candidates, n)
	for i := range c {
		c[i] = i
	}
	return c
}

// Intersect returns the positions present in both sorted lists.
func Intersect(a, b Candidates) Candidates {
	out := make(Candidates, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Union returns the positions present in either sorted list.
func Union(a, b Candidates) Candidates {
	out := make(Candidates, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Difference returns the positions in a that are not in b (both sorted).
func Difference(a, b Candidates) Candidates {
	out := make(Candidates, 0, len(a))
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			out = append(out, x)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
