package bat

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/vector"
)

func intsBAT(vals ...int64) *BAT {
	b := New(vector.Int64)
	for _, v := range vals {
		b.AppendValue(vector.NewInt(v))
	}
	return b
}

func TestAppendAndOIDs(t *testing.T) {
	b := intsBAT(10, 20, 30)
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.OIDAt(0) != 0 || b.OIDAt(2) != 2 {
		t.Errorf("OIDs wrong: %d %d", b.OIDAt(0), b.OIDAt(2))
	}
	if b.Get(1).I != 20 {
		t.Errorf("Get(1) = %v", b.Get(1))
	}
}

func TestNewWithSeq(t *testing.T) {
	b := NewWithSeq(vector.Int64, 100)
	b.AppendValue(vector.NewInt(1))
	if b.OIDAt(0) != 100 {
		t.Errorf("OIDAt(0) = %d, want 100", b.OIDAt(0))
	}
	if b.Pos(100) != 0 {
		t.Errorf("Pos(100) = %d", b.Pos(100))
	}
	if b.Pos(99) != -1 || b.Pos(101) != -1 {
		t.Error("Pos out of range should be -1")
	}
}

func TestDropPrefixPreservesOIDs(t *testing.T) {
	b := intsBAT(10, 20, 30, 40)
	b.DropPrefix(2)
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.Hseq() != 2 {
		t.Errorf("Hseq = %d, want 2", b.Hseq())
	}
	// OID 2 still maps to value 30.
	if p := b.Pos(2); p != 0 || b.Get(p).I != 30 {
		t.Errorf("OID 2 -> pos %d val %v", p, b.Get(0))
	}
}

func TestWindowPreservesOIDs(t *testing.T) {
	b := intsBAT(1, 2, 3, 4, 5)
	w := b.Window(2, 4)
	if w.Len() != 2 || w.Hseq() != 2 {
		t.Fatalf("window: len=%d hseq=%d", w.Len(), w.Hseq())
	}
	if w.Get(0).I != 3 {
		t.Errorf("window Get(0) = %v", w.Get(0))
	}
}

func TestTake(t *testing.T) {
	b := intsBAT(5, 6, 7, 8)
	got := b.Take([]int{3, 0})
	if got.Len() != 2 || got.Get(0).I != 8 || got.Get(1).I != 5 {
		t.Errorf("Take: %v", got)
	}
	if got.Hseq() != 0 {
		t.Errorf("Take should reset head, got %d", got.Hseq())
	}
}

func TestCloneIndependence(t *testing.T) {
	b := intsBAT(1)
	c := b.Clone()
	c.AppendValue(vector.NewInt(2))
	if b.Len() != 1 {
		t.Error("Clone shares tail")
	}
}

func TestAppendVector(t *testing.T) {
	b := intsBAT(1)
	b.AppendVector(vector.FromInts([]int64{2, 3}))
	if b.Len() != 3 || b.Get(2).I != 3 {
		t.Errorf("AppendVector: %v", b)
	}
}

func TestAll(t *testing.T) {
	c := All(4)
	if len(c) != 4 || c[0] != 0 || c[3] != 3 {
		t.Errorf("All(4) = %v", c)
	}
	if len(All(0)) != 0 {
		t.Error("All(0) should be empty")
	}
}

func TestIntersect(t *testing.T) {
	got := Intersect(Candidates{1, 3, 5, 7}, Candidates{3, 4, 5, 6})
	want := Candidates{3, 5}
	if len(got) != len(want) {
		t.Fatalf("Intersect = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Intersect = %v, want %v", got, want)
		}
	}
	if len(Intersect(Candidates{1}, Candidates{})) != 0 {
		t.Error("Intersect with empty should be empty")
	}
}

func TestUnion(t *testing.T) {
	got := Union(Candidates{1, 3}, Candidates{2, 3, 4})
	want := Candidates{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Union = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Union = %v, want %v", got, want)
		}
	}
}

func TestDifference(t *testing.T) {
	got := Difference(Candidates{1, 2, 3, 4}, Candidates{2, 4})
	want := Candidates{1, 3}
	if len(got) != len(want) {
		t.Fatalf("Difference = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Difference = %v, want %v", got, want)
		}
	}
}

func normalize(raw []uint8) Candidates {
	seen := map[int]bool{}
	for _, r := range raw {
		seen[int(r)] = true
	}
	out := make(Candidates, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Property: set-algebra identities over candidate lists.
func TestPropCandidateSetAlgebra(t *testing.T) {
	f := func(ra, rb []uint8) bool {
		a, b := normalize(ra), normalize(rb)
		inter := Intersect(a, b)
		uni := Union(a, b)
		diff := Difference(a, b)
		// |A∪B| = |A| + |B| - |A∩B|
		if len(uni) != len(a)+len(b)-len(inter) {
			return false
		}
		// A\B and A∩B partition A.
		if len(diff)+len(inter) != len(a) {
			return false
		}
		// Union is sorted and deduplicated.
		for i := 1; i < len(uni); i++ {
			if uni[i] <= uni[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: DropPrefix keeps OID→value mapping stable.
func TestPropDropPrefixOIDStable(t *testing.T) {
	f := func(vals []int64, nRaw uint8) bool {
		b := New(vector.Int64)
		b.AppendVector(vector.FromInts(append([]int64(nil), vals...)))
		n := int(nRaw)
		if n > b.Len() {
			n = b.Len()
		}
		// Record OID → value for survivors.
		type pair struct {
			o OID
			v int64
		}
		var want []pair
		for i := n; i < b.Len(); i++ {
			want = append(want, pair{b.OIDAt(i), b.Get(i).I})
		}
		b.DropPrefix(n)
		for _, p := range want {
			pos := b.Pos(p.o)
			if pos < 0 || b.Get(pos).I != p.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
