package bat

import "repro/internal/vector"

// Chunk is one immutable run of aligned column segments: position i of
// every column belongs to the tuple with OID Base+i. Chunks are the unit
// of basket consumption — a fully consumed chunk is released whole, and
// rewriting one chunk never disturbs its neighbours.
type Chunk struct {
	Base OID
	Cols []*vector.Vector
}

// Len returns the number of tuples in the chunk.
func (c Chunk) Len() int {
	if len(c.Cols) == 0 {
		return 0
	}
	return c.Cols[0].Len()
}

// View is a chunked, read-only snapshot of a columnar source: the list of
// chunks alive at snapshot time. Chunk references are shared with the
// source, so taking a view copies no tuple data; the source keeps views
// valid by never mutating a published chunk in place. Hseq is the OID of
// the view's first tuple.
type View struct {
	Hseq   OID
	Chunks []Chunk
}

// ViewOf wraps flat columns as a single-chunk view with head OID 0 — the
// bridge for callers that already hold materialized columns (window
// contents, test fixtures).
func ViewOf(cols ...*vector.Vector) View {
	return View{Chunks: []Chunk{{Cols: cols}}}
}

// NumRows returns the total tuple count across chunks.
func (v View) NumRows() int {
	n := 0
	for _, c := range v.Chunks {
		n += c.Len()
	}
	return n
}

// NumCols returns the column count (0 for a chunkless view).
func (v View) NumCols() int {
	if len(v.Chunks) == 0 {
		return 0
	}
	return len(v.Chunks[0].Cols)
}

// Get returns the value of column col at view-relative row.
func (v View) Get(col, row int) vector.Value {
	for _, c := range v.Chunks {
		n := c.Len()
		if row < n {
			return c.Cols[col].Get(row)
		}
		row -= n
	}
	return vector.Value{}
}

// Slice returns the sub-view of rows [lo, hi). Fully covered chunks are
// shared; boundary chunks are windowed (no copying). The sub-view's Hseq
// advances by lo.
func (v View) Slice(lo, hi int) View {
	out := View{Hseq: v.Hseq + OID(lo)}
	base := 0
	for _, c := range v.Chunks {
		n := c.Len()
		a, b := lo-base, hi-base
		base += n
		if a < 0 {
			a = 0
		}
		if b > n {
			b = n
		}
		if a >= b {
			continue
		}
		if a == 0 && b == n {
			out.Chunks = append(out.Chunks, c)
			continue
		}
		w := make([]*vector.Vector, len(c.Cols))
		for i, col := range c.Cols {
			w[i] = col.Window(a, b)
		}
		out.Chunks = append(out.Chunks, Chunk{Base: c.Base + OID(a), Cols: w})
	}
	// Preserve the column layout even when the slice is empty, so scans
	// over an empty view still see correctly typed columns.
	if len(out.Chunks) == 0 && len(v.Chunks) > 0 {
		c := v.Chunks[0]
		w := make([]*vector.Vector, len(c.Cols))
		for i, col := range c.Cols {
			w[i] = col.Window(0, 0)
		}
		out.Chunks = append(out.Chunks, Chunk{Base: out.Hseq, Cols: w})
	}
	return out
}

// Column materializes one column as a flat vector. A single-chunk view
// returns the chunk's vector directly (zero copy); multi-chunk views
// concatenate.
func (v View) Column(i int) *vector.Vector {
	if len(v.Chunks) == 1 {
		return v.Chunks[0].Cols[i]
	}
	out := vector.NewWithCap(v.colType(i), v.NumRows())
	for _, c := range v.Chunks {
		out.AppendVector(c.Cols[i])
	}
	return out
}

// Columns materializes every column (see Column for the sharing rule).
func (v View) Columns() []*vector.Vector {
	out := make([]*vector.Vector, v.NumCols())
	for i := range out {
		out[i] = v.Column(i)
	}
	return out
}

// CloneColumns materializes every column as a fresh deep copy, sharing
// nothing with the view — for callers that buffer the batch beyond the
// snapshot's lifetime (window runners).
func (v View) CloneColumns() []*vector.Vector {
	out := make([]*vector.Vector, v.NumCols())
	for i := range out {
		col := vector.NewWithCap(v.colType(i), v.NumRows())
		for _, c := range v.Chunks {
			col.AppendVector(c.Cols[i])
		}
		out[i] = col
	}
	return out
}

// TakeColumn gathers column col at the given sorted view-relative
// positions — Take over a chunked column, visiting only the chunks the
// candidate list touches.
func (v View) TakeColumn(col int, pos Candidates) *vector.Vector {
	out := vector.NewWithCap(v.colType(col), len(pos))
	i, base := 0, 0
	for _, c := range v.Chunks {
		if i >= len(pos) {
			break
		}
		n := c.Len()
		if pos[i] >= base+n {
			base += n
			continue
		}
		j := i
		for j < len(pos) && pos[j] < base+n {
			j++
		}
		out.AppendTake(c.Cols[col], pos[i:j], base)
		i, base = j, base+n
	}
	return out
}

func (v View) colType(i int) vector.Type {
	if len(v.Chunks) == 0 {
		return vector.Unknown
	}
	return v.Chunks[0].Cols[i].Type()
}

// Complement returns the positions in [lo, hi) absent from the sorted
// list drop (whose entries share the same coordinate space) —
// Difference(Range(lo, hi), drop) without materializing the range.
func Complement(lo, hi int, drop Candidates) Candidates {
	capHint := hi - lo - len(drop)
	if capHint < 0 {
		capHint = 0
	}
	out := make(Candidates, 0, capHint)
	j := 0
	for p := lo; p < hi; p++ {
		if j < len(drop) && drop[j] == p {
			j++
			continue
		}
		out = append(out, p)
	}
	return out
}
