package bat

import (
	"testing"

	"repro/internal/vector"
)

// chunked builds a 3-chunk view over the values 0..9 (chunks of 4, 4, 2)
// with head OID 100.
func chunked() View {
	mk := func(vals ...int64) Chunk {
		return Chunk{Cols: []*vector.Vector{vector.FromInts(vals)}}
	}
	v := View{Hseq: 100, Chunks: []Chunk{
		mk(0, 1, 2, 3), mk(4, 5, 6, 7), mk(8, 9),
	}}
	base := v.Hseq
	for i := range v.Chunks {
		v.Chunks[i].Base = base
		base += OID(v.Chunks[i].Len())
	}
	return v
}

func TestViewCounts(t *testing.T) {
	v := chunked()
	if v.NumRows() != 10 || v.NumCols() != 1 {
		t.Fatalf("rows=%d cols=%d", v.NumRows(), v.NumCols())
	}
	if (View{}).NumRows() != 0 || (View{}).NumCols() != 0 {
		t.Error("empty view should be 0x0")
	}
}

func TestViewGet(t *testing.T) {
	v := chunked()
	for i := int64(0); i < 10; i++ {
		if got := v.Get(0, int(i)).I; got != i {
			t.Errorf("Get(0, %d) = %d", i, got)
		}
	}
}

func TestViewSlice(t *testing.T) {
	v := chunked()
	s := v.Slice(3, 9) // spans all three chunks
	if s.NumRows() != 6 || s.Hseq != 103 {
		t.Fatalf("rows=%d hseq=%d", s.NumRows(), s.Hseq)
	}
	for i := 0; i < 6; i++ {
		if got := s.Get(0, i).I; got != int64(3+i) {
			t.Errorf("slice[%d] = %d", i, got)
		}
	}
	// The middle chunk must be shared, not rewindowed.
	if s.Chunks[1].Cols[0] != v.Chunks[1].Cols[0] {
		t.Error("fully covered chunk should be shared by reference")
	}
	if s.Chunks[1].Base != 104 {
		t.Errorf("middle chunk base = %d, want 104", s.Chunks[1].Base)
	}
}

func TestViewSliceEmptyKeepsLayout(t *testing.T) {
	v := chunked()
	s := v.Slice(4, 4)
	if s.NumRows() != 0 {
		t.Fatalf("rows = %d", s.NumRows())
	}
	if s.NumCols() != 1 {
		t.Error("empty slice must keep the column layout")
	}
}

func TestViewColumnAndClone(t *testing.T) {
	v := chunked()
	col := v.Column(0)
	if col.Len() != 10 || col.Get(7).I != 7 {
		t.Fatalf("flattened: %v", col)
	}
	single := View{Chunks: v.Chunks[:1]}
	if single.Column(0) != v.Chunks[0].Cols[0] {
		t.Error("single-chunk Column should be zero-copy")
	}
	clone := v.CloneColumns()
	if len(clone) != 1 || clone[0].Len() != 10 || clone[0].Get(9).I != 9 {
		t.Fatalf("clone: %v", clone)
	}
}

func TestViewTakeColumn(t *testing.T) {
	v := chunked()
	got := v.TakeColumn(0, Candidates{0, 3, 4, 7, 9})
	want := []int64{0, 3, 4, 7, 9}
	if got.Len() != len(want) {
		t.Fatalf("len = %d", got.Len())
	}
	for i, w := range want {
		if got.Get(i).I != w {
			t.Errorf("take[%d] = %d, want %d", i, got.Get(i).I, w)
		}
	}
	if v.TakeColumn(0, nil).Len() != 0 {
		t.Error("empty take should be empty")
	}
}

func TestViewTakeColumnNulls(t *testing.T) {
	a := vector.New(vector.Int64)
	a.AppendInt(1)
	a.AppendNull()
	b := vector.New(vector.Int64)
	b.AppendNull()
	b.AppendInt(4)
	v := View{Chunks: []Chunk{{Cols: []*vector.Vector{a}}, {Base: 2, Cols: []*vector.Vector{b}}}}
	got := v.TakeColumn(0, Candidates{1, 2, 3})
	if !got.IsNull(0) || !got.IsNull(1) || got.IsNull(2) || got.Get(2).I != 4 {
		t.Errorf("null take: %v", got)
	}
}

func TestComplement(t *testing.T) {
	got := Complement(0, 6, Candidates{1, 4})
	want := Candidates{0, 2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Complement: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Complement: %v, want %v", got, want)
		}
	}
	if got := Complement(2, 5, Candidates{3}); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("offset Complement: %v", got)
	}
	if got := Complement(0, 3, nil); len(got) != 3 {
		t.Errorf("Complement of nothing: %v", got)
	}
}
