package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is the comment prefix that suppresses a diagnostic:
//
//	//lint:ignore <analyzer> <reason>   suppress one analyzer
//	//lint:ignore all <reason>          suppress every analyzer
//
// The directive applies to diagnostics reported on its own source line or
// on the line directly below it (so it can ride at the end of the flagged
// line or stand alone above it). A reason is required — a bare directive
// suppresses nothing.
const ignoreDirective = "//lint:ignore"

// suppressions maps file name → line → analyzer names suppressed there
// ("all" matches every analyzer).
type suppressions map[string]map[int][]string

// collectSuppressions scans a file's comments for ignore directives.
func collectSuppressions(fset *token.FileSet, files []*ast.File, into suppressions) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignoreDirective))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // analyzer name and reason are both required
				}
				pos := fset.Position(c.Pos())
				m := into[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					into[pos.Filename] = m
				}
				// Cover the directive's own line and the next one.
				m[pos.Line] = append(m[pos.Line], fields[0])
				m[pos.Line+1] = append(m[pos.Line+1], fields[0])
			}
		}
	}
}

// suppressed reports whether d is covered by an ignore directive.
func (s suppressions) suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	for _, name := range s[pos.Filename][pos.Line] {
		if name == "all" || name == d.Analyzer.Name {
			return true
		}
	}
	return false
}
