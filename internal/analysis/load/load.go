// Package load type-checks the packages of the enclosing Go module for
// static analysis, using only the standard library.
//
// It shells out to `go list -json -deps` for the package graph (which the
// go command prints in dependency order), parses and type-checks every
// in-module package itself, and delegates standard-library imports to the
// stock source importer. Doing the module packages by hand — rather than
// using go/importer's "source" mode for everything — is what makes object
// identity canonical across packages: each module package is checked
// exactly once, so a types.Object reached through an import is
// pointer-identical to the one seen when its defining package was
// analyzed. Analyzer facts rely on that.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// Result is a loaded, type-checked module subgraph.
type Result struct {
	Fset *token.FileSet
	// Pkgs holds every in-module package reached from the patterns, in
	// dependency order (imports before importers) — the order the
	// analysis driver requires.
	Pkgs []*analysis.Package
	// Targets is the set of package paths the patterns named directly
	// (dependencies pulled in transitively are excluded).
	Targets map[string]bool
	// ModuleDir is the root directory of the main module.
	ModuleDir string
}

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists, parses, and type-checks the module packages matched by
// patterns (plus their in-module dependencies). Test files are not
// loaded — the invariants the analyzers enforce live in shipping code.
func Load(dir string, patterns []string) (*Result, error) {
	args := append([]string{"list", "-e", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var listed []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := &listedPackage{}
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		listed = append(listed, lp)
	}

	res := &Result{Fset: token.NewFileSet(), Targets: map[string]bool{}}
	// The source importer handles standard-library imports by
	// type-checking them from GOROOT source; with cgo off, packages like
	// net use their pure-Go paths, so no cgo preprocessing is needed.
	build.Default.CgoEnabled = false
	srcImp := importer.ForCompiler(res.Fset, "source", nil).(types.ImporterFrom)
	chain := &chainedImporter{module: map[string]*types.Package{}, std: srcImp}

	for _, lp := range listed {
		if lp.Standard {
			continue // resolved lazily by the source importer
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if res.ModuleDir == "" && lp.Dir != "" {
			if root, err := moduleRoot(lp.Dir); err == nil {
				res.ModuleDir = root
			}
		}
		pkg, err := check(res.Fset, chain, lp)
		if err != nil {
			return nil, err
		}
		chain.module[lp.ImportPath] = pkg.Types
		res.Pkgs = append(res.Pkgs, pkg)
		if !lp.DepOnly {
			res.Targets[lp.ImportPath] = true
		}
	}
	if len(res.Pkgs) == 0 {
		return nil, fmt.Errorf("no module packages matched %v", patterns)
	}
	return res, nil
}

// check parses and type-checks one module package.
func check(fset *token.FileSet, imp types.ImporterFrom, lp *listedPackage) (*analysis.Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(lp.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, typeErrs[0])
	}
	return &analysis.Package{
		Path:      lp.ImportPath,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// chainedImporter resolves in-module imports from the already-checked
// cache and everything else (the standard library) via the source
// importer. Module packages appear in dependency order, so a cache miss
// for a module path is a loader bug, not a race.
type chainedImporter struct {
	module map[string]*types.Package
	std    types.ImporterFrom
}

func (c *chainedImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c *chainedImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := c.module[path]; ok {
		return p, nil
	}
	return c.std.ImportFrom(path, dir, mode)
}

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", err
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" || gomod == "NUL" {
		return "", fmt.Errorf("not in a module")
	}
	return filepath.Dir(gomod), nil
}
