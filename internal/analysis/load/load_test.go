package load_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/load"
)

func TestLoad(t *testing.T) {
	res, err := load.Load(".", []string{"repro/internal/basket"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Targets["repro/internal/basket"] {
		t.Errorf("targets = %v, want repro/internal/basket", res.Targets)
	}
	if !strings.HasSuffix(res.ModuleDir, "repo") {
		t.Errorf("module dir = %q", res.ModuleDir)
	}
	// Dependency order: every in-module import of a package must appear
	// before the package itself.
	seen := map[string]bool{}
	byPath := map[string]bool{}
	for _, p := range res.Pkgs {
		byPath[p.Path] = true
	}
	for _, p := range res.Pkgs {
		if p.Types == nil || p.TypesInfo == nil || len(p.Files) == 0 {
			t.Fatalf("%s: incompletely loaded", p.Path)
		}
		for _, imp := range p.Types.Imports() {
			if byPath[imp.Path()] && !seen[imp.Path()] {
				t.Errorf("%s: module import %s not loaded before importer", p.Path, imp.Path())
			}
		}
		seen[p.Path] = true
	}
}
