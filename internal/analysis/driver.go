package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Package is one type-checked package handed to the driver. The driver
// requires the slice it receives to be in dependency order (every
// package after all packages it imports) and all packages to share one
// FileSet — the loader under internal/analysis/load guarantees both.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Run applies every analyzer to every package, in order. Facts exported
// by a pass are visible to the same analyzer's later passes, which is
// why dependency order matters. Diagnostics are only kept for packages
// where keep(pkg.Path) is true (keep == nil keeps everything), are
// filtered through //lint:ignore suppressions, and come back sorted by
// position. The error aggregates analyzer failures, not findings.
func Run(pkgs []*Package, analyzers []*Analyzer, keep func(pkgPath string) bool) ([]Diagnostic, error) {
	stores := make(map[*Analyzer]*FactStore, len(analyzers))
	for _, a := range analyzers {
		stores[a] = NewFactStore()
	}
	sup := suppressions{}
	var diags []Diagnostic
	var errs []error
	for _, pkg := range pkgs {
		collectSuppressions(pkg.Fset, pkg.Files, sup)
		wanted := keep == nil || keep(pkg.Path)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				facts:     stores[a],
			}
			pass.Report = func(d Diagnostic) {
				if d.Analyzer == nil {
					d.Analyzer = a
				}
				// A fact-driven analyzer may anchor a diagnostic in an
				// already-analyzed dependency; keep those too.
				if wanted || keep(posPkgPath(pkgs, pkg.Fset, d.Pos)) {
					diags = append(diags, d)
				}
			}
			if _, err := a.Run(pass); err != nil {
				errs = append(errs, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err))
			}
		}
	}
	out := diags[:0]
	for _, d := range diags {
		if !sup.suppressed(pkgs[0].Fset, d) {
			out = append(out, d)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := pkgs[0].Fset.Position(out[i].Pos), pkgs[0].Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Message < out[j].Message
	})
	if len(errs) > 0 {
		msg := ""
		for i, e := range errs {
			if i > 0 {
				msg += "; "
			}
			msg += e.Error()
		}
		return out, fmt.Errorf("%s", msg)
	}
	return out, nil
}

// posPkgPath finds the package whose files contain pos.
func posPkgPath(pkgs []*Package, fset *token.FileSet, pos token.Pos) string {
	if !pos.IsValid() {
		return ""
	}
	name := fset.Position(pos).Filename
	for _, p := range pkgs {
		for _, f := range p.Files {
			if fset.Position(f.Pos()).Filename == name {
				return p.Path
			}
		}
	}
	return ""
}
