package capturerestore_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/capturerestore"
)

func TestCaptureRestore(t *testing.T) {
	analysistest.Run(t, "testdata",
		[]*analysis.Analyzer{capturerestore.NewAnalyzer("root")},
		"state", "root")
}
