// Package capturerestore enforces the checkpoint-state contract.
//
// Operator state in this engine is checkpointed through paired hooks:
// a type that exposes CaptureState must expose RestoreState, and a type
// whose Snapshot returns a *XxxState must expose Restore — otherwise
// its state is written into checkpoint images that recovery can never
// apply. The analyzer also tracks reachability: every hook-bearing type
// must actually be capture-called somewhere in the packages that feed
// the checkpoint image walk (captureImage in the root package), or its
// state silently never reaches the WAL. Hook calls anywhere in the
// module are recorded as facts; the root package's pass performs the
// reachability audit.
package capturerestore

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// hasHooks marks a type that exposes checkpoint hooks; Capture names the
// capturing hook for diagnostics.
type hasHooks struct {
	Capture string
}

func (*hasHooks) AFact() {}

// captureCalled marks a hook-bearing type whose capture hook is invoked
// somewhere in the module.
type captureCalled struct{}

func (*captureCalled) AFact() {}

// NewAnalyzer builds the capturerestore analyzer. rootPkg is the package
// containing the checkpoint image walk; its pass (which the driver runs
// after all the packages it imports) performs the reachability audit.
func NewAnalyzer(rootPkg string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "capturerestore",
		Doc:  "check that checkpoint Capture hooks have Restore counterparts and are reachable from the image walk",
	}
	a.Run = func(pass *analysis.Pass) (any, error) {
		run(pass, rootPkg)
		return nil, nil
	}
	return a
}

func run(pass *analysis.Pass, rootPkg string) {
	// Pairing: every named type in this package with a capture hook must
	// have the matching restore hook.
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		ms := types.NewMethodSet(types.NewPointer(named))
		capture := ""
		switch {
		case lookupMethod(ms, "CaptureState") != nil:
			capture = "CaptureState"
			if lookupMethod(ms, "RestoreState") == nil {
				pass.Reportf(tn.Pos(),
					"%s has CaptureState but no RestoreState: its checkpoint state can never be recovered (see docs/INVARIANTS.md)",
					tn.Name())
			}
		case snapshotReturnsState(lookupMethod(ms, "Snapshot")):
			capture = "Snapshot"
			if lookupMethod(ms, "Restore") == nil {
				pass.Reportf(tn.Pos(),
					"%s has a state-returning Snapshot but no Restore: its checkpoint state can never be recovered (see docs/INVARIANTS.md)",
					tn.Name())
			}
		}
		if capture != "" {
			pass.ExportObjectFact(tn, &hasHooks{Capture: capture})
		}
	}

	// Reachability inputs: record every capture-hook method call against
	// the receiver's type.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name != "CaptureState" && name != "Snapshot" {
				return true
			}
			fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if fn == nil {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || sig.Recv() == nil {
				return true
			}
			if tn := receiverTypeName(sig); tn != nil {
				pass.ExportObjectFact(tn, &captureCalled{})
			}
			return true
		})
	}

	// The root package closes the audit: every hook-bearing type seen so
	// far must have been capture-called by now, or checkpoints silently
	// omit its state.
	if pass.Pkg.Path() != rootPkg {
		return
	}
	for _, of := range pass.AllObjectFacts() {
		hooks, ok := of.Fact.(*hasHooks)
		if !ok {
			continue
		}
		var called captureCalled
		if pass.ImportObjectFact(of.Object, &called) {
			continue
		}
		pass.Reportf(of.Object.Pos(),
			"%s has checkpoint hook %s but is never capture-called: its state is unreachable from the checkpoint image walk (see docs/INVARIANTS.md)",
			of.Object.Name(), hooks.Capture)
	}
}

// lookupMethod finds a method by name in a method set.
func lookupMethod(ms *types.MethodSet, name string) *types.Func {
	for i := 0; i < ms.Len(); i++ {
		if fn, ok := ms.At(i).Obj().(*types.Func); ok && fn.Name() == name {
			return fn
		}
	}
	return nil
}

// snapshotReturnsState reports whether fn is a Snapshot method returning
// a single *XxxState — the shape the checkpoint image walk consumes.
// Snapshot methods returning views, traces, or plain values are
// observational and carry no restore obligation.
func snapshotReturnsState(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	ptr, ok := sig.Results().At(0).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	return strings.HasSuffix(named.Obj().Name(), "State")
}

// receiverTypeName resolves a method signature's receiver to its
// defining TypeName.
func receiverTypeName(sig *types.Signature) *types.TypeName {
	t := sig.Recv().Type()
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}
