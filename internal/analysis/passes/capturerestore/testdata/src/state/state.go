// Package state declares the hook-bearing types for the capturerestore
// golden test; package root performs the capture calls.
package state

// Good has paired hooks and is capture-called from root.
type Good struct{ n int }

func (g *Good) CaptureState() int  { return g.n }
func (g *Good) RestoreState(n int) { g.n = n }

// Missing captures but cannot restore.
type Missing struct{ n int } // want `Missing has CaptureState but no RestoreState`

func (m *Missing) CaptureState() int { return m.n }

// SnapState is a checkpoint-state payload by naming convention.
type SnapState struct{ N int }

// Snapper snapshots state but cannot restore it.
type Snapper struct{ n int } // want `Snapper has a state-returning Snapshot but no Restore`

func (s *Snapper) Snapshot() *SnapState { return &SnapState{N: s.n} }

// Paired snapshots state and can restore it.
type Paired struct{ n int }

func (p *Paired) Snapshot() *SnapState  { return &SnapState{N: p.n} }
func (p *Paired) Restore(st *SnapState) { p.n = st.N }

// View is observational: Snapshot not returning *XxxState carries no
// restore obligation.
type View struct{ Rows int }

type Viewer struct{ rows int }

func (v *Viewer) Snapshot() *View { return &View{Rows: v.rows} }

// Orphan is correctly paired but never capture-called anywhere, so its
// state never reaches a checkpoint image.
type Orphan struct{ n int } // want `Orphan has checkpoint hook CaptureState but is never capture-called`

func (o *Orphan) CaptureState() int  { return o.n }
func (o *Orphan) RestoreState(n int) { o.n = n }

// Suppressed documents a deliberately capture-only type.
//
//lint:ignore capturerestore exercised by the suppression test
type Suppressed struct{ n int }

func (s *Suppressed) CaptureState() int { return s.n }

func init() {
	// Keep Suppressed reachable so only the pairing diagnostic (the
	// suppressed one) would fire.
	var s Suppressed
	_ = s.CaptureState()
}
