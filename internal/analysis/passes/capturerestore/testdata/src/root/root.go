// Package root is the checkpoint-image-walk package of the
// capturerestore golden test: the reachability audit runs here.
package root

import "state"

func captureImage(g *state.Good, m *state.Missing, s *state.Snapper, p *state.Paired) {
	_ = g.CaptureState()
	_ = m.CaptureState()
	_ = s.Snapshot()
	_ = p.Snapshot()
}
