package atomicmix_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, "testdata",
		[]*analysis.Analyzer{atomicmix.Analyzer},
		"atomictest")
}
