// Package atomicmix flags mixed atomic and plain access to struct
// fields.
//
// A field whose address is ever passed to a sync/atomic function
// (atomic.AddInt64(&s.f, 1), atomic.LoadPointer(&s.p), ...) is an
// atomic field: every other access must also go through sync/atomic,
// because a plain read or write racing an atomic one is undefined under
// the Go memory model even when it "usually works". The analyzer
// records such fields as facts in a first sweep (so uses in importing
// packages are caught too) and then reports every plain read or write.
// Fields of the atomic.Int64-style wrapper types are compiler-enforced
// and ignored. Struct-literal initialization before the value escapes
// is exempt; anything else deliberate needs
// `//lint:ignore atomicmix <reason>`.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// atomicField marks a struct field as accessed via sync/atomic.
type atomicField struct{}

func (*atomicField) AFact() {}

// Analyzer is the atomicmix pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "flag plain reads/writes of struct fields that are accessed with sync/atomic",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	// Sweep 1: find fields used atomically in this package, remember the
	// selector expressions that are part of the atomic calls themselves.
	atomicUses := map[*ast.SelectorExpr]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if f := fieldObject(pass, sel); f != nil {
					pass.ExportObjectFact(f, &atomicField{})
					atomicUses[sel] = true
				}
			}
			return true
		})
	}

	// Sweep 2: any other selector resolving to an atomic field is a
	// plain access. Composite-literal keys (Foo{f: 0}) are construction
	// before the value is shared and are allowed.
	for _, file := range pass.Files {
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			if cl, ok := n.(*ast.CompositeLit); ok {
				for _, elt := range cl.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						// The key identifier is exempt; the value is not.
						ast.Inspect(kv.Value, visit)
						continue
					}
					ast.Inspect(elt, visit)
				}
				if cl.Type != nil {
					ast.Inspect(cl.Type, visit)
				}
				return false
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if atomicUses[sel] {
				return true
			}
			f := fieldObject(pass, sel)
			if f == nil {
				return true
			}
			var fact atomicField
			if !pass.ImportObjectFact(f, &fact) {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"plain access of atomic field %s.%s: all reads and writes must use sync/atomic (see docs/INVARIANTS.md)",
				fieldOwner(f), f.Name())
			return true
		}
		ast.Inspect(file, visit)
	}
	return nil, nil
}

// isAtomicCall reports whether call is a direct call of a sync/atomic
// package function.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	// Package functions only; methods on atomic.Int64 etc. carry their
	// own type safety.
	return fn.Type().(*types.Signature).Recv() == nil
}

// fieldObject resolves sel to the struct-field *types.Var it selects, or
// nil if sel is not a field selection.
func fieldObject(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	if v == nil || !v.IsField() {
		return nil
	}
	return v
}

// fieldOwner renders the declaring struct's name for diagnostics, best
// effort (falls back to the package path).
func fieldOwner(f *types.Var) string {
	if f.Pkg() == nil {
		return "?"
	}
	scope := f.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == f {
				return tn.Name()
			}
		}
	}
	return f.Pkg().Path()
}
