// Package atomictest is the golden package for the atomicmix analyzer.
package atomictest

import "sync/atomic"

type Counter struct {
	hits  int64        // atomic: every access must go through sync/atomic
	safe  atomic.Int64 // wrapper type: compiler-enforced, analyzer ignores it
	plain int64        // never touched atomically: plain access is fine
}

func (c *Counter) Inc() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *Counter) Load() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *Counter) BadRead() int64 {
	return c.hits // want `plain access of atomic field Counter\.hits`
}

func (c *Counter) BadWrite() {
	c.hits = 0 // want `plain access of atomic field Counter\.hits`
}

func (c *Counter) Fine() int64 {
	return c.plain
}

func (c *Counter) Wrapper() int64 {
	return c.safe.Load()
}

// Struct-literal keys are construction before the value escapes.
func New() *Counter {
	return &Counter{hits: 0}
}

func (c *Counter) Suppressed() int64 {
	//lint:ignore atomicmix single-threaded teardown path
	return c.hits
}
