package lockorder_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/lockorder"
)

func testConfig() *lockorder.Config {
	return &lockorder.Config{
		Levels: map[string]int{
			"a.DB.gate":         10,
			"a.DB.mu":           20,
			"a.Runner.runnerMu": 30,
			"a.Basket.mu":       40,
			"a.globalMu":        50,
			"b.bigMu":           60,
		},
		Allows: []lockorder.AllowEdge{
			{From: "a.Basket.mu", To: "a.Runner.runnerMu", In: "a.handoff"},
		},
		Strict: map[string]bool{"b": true},
	}
}

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata",
		[]*analysis.Analyzer{lockorder.NewAnalyzer(testConfig())},
		"a", "b")
}

func TestParseConfig(t *testing.T) {
	cfg, err := lockorder.ParseConfig(strings.NewReader(`
# comment
lock p.T.mu 10
lock p.other 20

allow p.other -> p.T.mu in p.T.swap
strict p
`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Levels["p.T.mu"] != 10 || cfg.Levels["p.other"] != 20 {
		t.Errorf("levels = %v", cfg.Levels)
	}
	if len(cfg.Allows) != 1 || cfg.Allows[0].In != "p.T.swap" {
		t.Errorf("allows = %v", cfg.Allows)
	}
	if !cfg.Strict["p"] {
		t.Errorf("strict = %v", cfg.Strict)
	}

	for _, bad := range []string{
		"lock p.T.mu",                  // missing level
		"lock p.T.mu ten",              // bad level
		"lock p.T.mu 1\nlock p.T.mu 2", // duplicate
		"allow p.a p.b",                // missing arrow
		"allow p.a -> p.b somewhere",   // bad `in`
		"allow p.a -> p.b",             // unclassified classes
		"strict",                       // missing package
		"frobnicate p",                 // unknown directive
	} {
		if _, err := lockorder.ParseConfig(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseConfig(%q): expected error", bad)
		}
	}
}
