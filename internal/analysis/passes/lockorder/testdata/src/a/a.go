// Package a mirrors the engine's lock shapes for the lockorder golden
// test. Hierarchy (see the test's config): DB.gate 10 < DB.mu 20 <
// Runner.runnerMu 30 < Basket.mu 40 < globalMu 50.
package a

import "sync"

type DB struct {
	gate sync.RWMutex
	mu   sync.Mutex
}

type Runner struct {
	runnerMu sync.Mutex
}

type Basket struct {
	mu sync.Mutex
}

var globalMu sync.Mutex

// Descending the hierarchy is fine.
func fine(d *DB, r *Runner) {
	d.gate.RLock()
	d.mu.Lock()
	r.runnerMu.Lock()
	r.runnerMu.Unlock()
	d.mu.Unlock()
	d.gate.RUnlock()
}

// Ascending is an inversion.
func inverted(d *DB, r *Runner) {
	r.runnerMu.Lock()
	d.gate.RLock() // want `a\.DB\.gate \(level 10\) acquired while holding a\.Runner\.runnerMu \(level 30\)`
	d.gate.RUnlock()
	r.runnerMu.Unlock()
}

// Releasing clears the held-set: gate is gone by the time mu is taken.
func released(d *DB) {
	d.mu.Lock()
	d.mu.Unlock()
	d.gate.RLock()
	d.gate.RUnlock()
}

// Deferred unlock keeps the lock held for the rest of the function.
func deferredInversion(d *DB) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.gate.RLock() // want `a\.DB\.gate \(level 10\) acquired while holding a\.DB\.mu \(level 20\)`
	d.gate.RUnlock()
}

// Same-level locks are peers: nesting among them is allowed.
func peers(b1, b2 *Basket) {
	b1.mu.Lock()
	b2.mu.Lock()
	b2.mu.Unlock()
	b1.mu.Unlock()
}

// LockGate is a helper whose acquisition is visible one call level away.
func LockGate(d *DB) {
	d.gate.RLock()
	d.gate.RUnlock()
}

// LockGlobal is called cross-package from b.
func LockGlobal() {
	globalMu.Lock()
	globalMu.Unlock()
}

func oneLevelDeep(d *DB, r *Runner) {
	r.runnerMu.Lock()
	LockGate(d) // want `call to LockGate acquires a\.DB\.gate \(level 10\) while holding a\.Runner\.runnerMu \(level 30\)`
	r.runnerMu.Unlock()
}

// handoff pins the basket across the runner handoff — blessed by an
// `allow ... in a.handoff` edge in the test config.
func handoff(r *Runner, b *Basket) {
	b.mu.Lock()
	r.runnerMu.Lock()
	b.mu.Unlock()
	r.runnerMu.Unlock()
}

// The same inversion outside the blessed function is flagged.
func notHandoff(r *Runner, b *Basket) {
	b.mu.Lock()
	r.runnerMu.Lock() // want `a\.Runner\.runnerMu \(level 30\) acquired while holding a\.Basket\.mu \(level 40\)`
	b.mu.Unlock()
	r.runnerMu.Unlock()
}

// A lock balanced inside a branch does not leak into the suffix.
func branches(d *DB, cond bool) {
	if cond {
		d.mu.Lock()
		d.mu.Unlock()
	}
	d.gate.RLock()
	d.gate.RUnlock()
}

// Function literals run with their own empty held-set (go/defer).
func literals(d *DB, r *Runner) {
	r.runnerMu.Lock()
	go func() {
		d.gate.RLock()
		d.gate.RUnlock()
	}()
	r.runnerMu.Unlock()
}

// Suppression: the inversion below is deliberate and documented.
func suppressed(d *DB, r *Runner) {
	r.runnerMu.Lock()
	//lint:ignore lockorder exercised by the suppression test
	d.gate.RLock()
	d.gate.RUnlock()
	r.runnerMu.Unlock()
}

// Acquire and Release are lock wrappers: callers' held-sets track their
// net effect through the call summary.
func (b *Basket) Acquire() { b.mu.Lock() }
func (b *Basket) Release() { b.mu.Unlock() }

func wrapperHeld(r *Runner, b *Basket) {
	b.Acquire()
	r.runnerMu.Lock() // want `a\.Runner\.runnerMu \(level 30\) acquired while holding a\.Basket\.mu \(level 40\)`
	r.runnerMu.Unlock()
	b.Release()
}

func wrapperReleased(r *Runner, b *Basket) {
	b.Acquire()
	b.Release()
	r.runnerMu.Lock()
	r.runnerMu.Unlock()
}

// Locks taken in a loop stay held after it (lock-all-inputs pattern).
func loopHeld(r *Runner, bs []*Basket) {
	for _, b := range bs {
		b.mu.Lock()
	}
	r.runnerMu.Lock() // want `a\.Runner\.runnerMu \(level 30\) acquired while holding a\.Basket\.mu \(level 40\)`
	r.runnerMu.Unlock()
	for _, b := range bs {
		b.mu.Unlock()
	}
}

// Locals are unclassified; package a is not strict, so this is fine.
func localLock() {
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
}
