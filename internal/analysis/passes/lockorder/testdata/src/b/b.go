// Package b exercises the strict mode and cross-package call summaries
// of the lockorder golden test. It is marked strict in the test config.
package b

import (
	"sync"

	"a"
)

var bigMu sync.Mutex // classified at level 60

func crossPackage() {
	bigMu.Lock()
	a.LockGlobal() // want `call to LockGlobal acquires a\.globalMu \(level 50\) while holding b\.bigMu \(level 60\)`
	bigMu.Unlock()
}

func unclassified() {
	var mu sync.Mutex
	mu.Lock() // want `acquisition of unclassified lock mu in strict package b`
	mu.Unlock()
}
