// Package lockorder flags mutex acquisitions that invert the documented
// lock hierarchy (docs/INVARIANTS.md, lockorder.conf).
//
// Every mutex the engine owns is classified in a checked-in config file
// with an integer level; outer locks have lower levels. Within a function
// body the analyzer tracks the multiset of held lock classes and reports
// any acquisition whose level is strictly below one already held. The
// check extends one level through direct calls: each function's own
// acquisitions are summarized as a fact, and a call made while holding a
// lock is checked against the callee's summary. Deliberate inversions are
// declared in the config as `allow` edges (optionally scoped to the
// function that performs the acquisition); one-off suppressions use
// `//lint:ignore lockorder <reason>`. Packages marked `strict` in the
// config additionally flag acquisitions of unclassified sync.Mutex /
// sync.RWMutex values, so new locks must be placed in the hierarchy.
package lockorder

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Config is the parsed lock-hierarchy configuration.
type Config struct {
	// Levels maps a lock class key to its hierarchy level (lower =
	// acquired first). Keys are "pkgpath.Type.field" for struct-field
	// locks and "pkgpath.var" for package-level locks.
	Levels map[string]int
	// Allows lists blessed inversions.
	Allows []AllowEdge
	// Strict packages flag unclassified mutex acquisitions.
	Strict map[string]bool
}

// AllowEdge blesses acquiring To while holding From even though To's
// level is below From's. If In is non-empty the edge only applies when
// the acquisition happens inside that function ("pkgpath.Type.method" or
// "pkgpath.func").
type AllowEdge struct {
	From, To, In string
}

// LoadConfig reads a config file (see ParseConfig for the grammar).
func LoadConfig(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cfg, err := ParseConfig(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}

// ParseConfig parses the lockorder config grammar:
//
//	# comment
//	lock <class> <level>
//	allow <classA> -> <classB> [in <func>]
//	strict <pkgpath>
func ParseConfig(r io.Reader) (*Config, error) {
	cfg := &Config{Levels: map[string]int{}, Strict: map[string]bool{}}
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "lock":
			if len(fields) != 3 {
				return nil, fmt.Errorf("line %d: want `lock <class> <level>`", lineno)
			}
			lvl, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("line %d: bad level %q", lineno, fields[2])
			}
			if _, dup := cfg.Levels[fields[1]]; dup {
				return nil, fmt.Errorf("line %d: duplicate lock class %s", lineno, fields[1])
			}
			cfg.Levels[fields[1]] = lvl
		case "allow":
			// allow A -> B [in F]
			ok := (len(fields) == 4 || len(fields) == 6) && fields[2] == "->"
			if ok && len(fields) == 6 && fields[4] != "in" {
				ok = false
			}
			if !ok {
				return nil, fmt.Errorf("line %d: want `allow <classA> -> <classB> [in <func>]`", lineno)
			}
			e := AllowEdge{From: fields[1], To: fields[3]}
			if len(fields) == 6 {
				e.In = fields[5]
			}
			cfg.Allows = append(cfg.Allows, e)
		case "strict":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: want `strict <pkgpath>`", lineno)
			}
			cfg.Strict[fields[1]] = true
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, e := range cfg.Allows {
		if _, ok := cfg.Levels[e.From]; !ok {
			return nil, fmt.Errorf("allow edge references unclassified lock %s", e.From)
		}
		if _, ok := cfg.Levels[e.To]; !ok {
			return nil, fmt.Errorf("allow edge references unclassified lock %s", e.To)
		}
	}
	return cfg, nil
}

func (c *Config) allowed(held, acquired, acqFn string) bool {
	for _, e := range c.Allows {
		if e.From == held && e.To == acquired && (e.In == "" || e.In == acqFn) {
			return true
		}
	}
	return false
}

// lockSummary records a function's direct locking behavior (function
// literals excluded — they run on their own goroutine or at defer time,
// with their own held-set):
//
//   - Acquires: every class acquired anywhere in the body, even if
//     released again — a call made while holding a higher lock is
//     checked against these.
//   - NetHeld: classes still held when the unconditional path returns —
//     lock-wrapper methods (e.g. Basket.Lock) report their lock here,
//     so callers' held-sets track wrapper-acquired locks.
//   - NetFreed: classes released without a matching acquisition —
//     unlock wrappers (e.g. Basket.Unlock) report theirs here.
type lockSummary struct {
	Acquires []string
	NetHeld  []string
	NetFreed []string
}

func (*lockSummary) AFact() {}

// NewAnalyzer builds the lockorder analyzer for one hierarchy config.
func NewAnalyzer(cfg *Config) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "lockorder",
		Doc:  "flag mutex acquisitions that invert the documented lock hierarchy",
	}
	a.Run = func(pass *analysis.Pass) (any, error) {
		c := &checker{pass: pass, cfg: cfg}
		// Sweep 1: summarize every function's direct acquisitions, so
		// same-package calls (in any declaration order) and importing
		// packages can check one level deep.
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				var acquires []string
				c.forEachCall(fd.Body, func(call *ast.CallExpr) {
					if class, kind, ok := c.lockOp(call); ok && (kind == opLock || kind == opRLock) && class != "" {
						acquires = append(acquires, class)
					}
				})
				netHeld, netFreed := c.netEffect(fd.Body)
				if len(acquires) > 0 || len(netHeld) > 0 || len(netFreed) > 0 {
					pass.ExportObjectFact(fn, &lockSummary{
						Acquires: acquires, NetHeld: netHeld, NetFreed: netFreed,
					})
				}
			}
		}
		// Sweep 2: simulate held-sets and report.
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				fnKey := ""
				if fn != nil {
					fnKey = funcKey(fn)
				}
				c.simulate(fd.Body, fnKey)
				// Function literals get a fresh, empty held-set: they run
				// later (go/defer) or as callbacks, not inline under the
				// enclosing function's locks in any way we can prove.
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if fl, ok := n.(*ast.FuncLit); ok {
						c.simulate(fl.Body, fnKey+".func")
						return false
					}
					return true
				})
			}
		}
		return nil, nil
	}
	return a
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opRLock
	opUnlock
	opRUnlock
)

type checker struct {
	pass *analysis.Pass
	cfg  *Config
}

// lockOp reports whether call is Lock/RLock/Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex, and if so the lock's class key ("" when
// the lock value is unclassified, e.g. a local variable).
func (c *checker) lockOp(call *ast.CallExpr) (class string, kind lockOpKind, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", opNone, false
	}
	fn, _ := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", opNone, false
	}
	switch fn.Name() {
	case "Lock":
		kind = opLock
	case "RLock":
		kind = opRLock
	case "Unlock":
		kind = opUnlock
	case "RUnlock":
		kind = opRUnlock
	default:
		return "", opNone, false
	}
	return c.classify(sel.X), kind, true
}

// classify maps the receiver expression of a Lock call to its class key,
// or "" if it is not a classified-shape lock (local variable, parameter).
func (c *checker) classify(expr ast.Expr) string {
	expr = ast.Unparen(expr)
	if u, ok := expr.(*ast.UnaryExpr); ok && u.Op == token.AND {
		expr = ast.Unparen(u.X)
	}
	if s, ok := expr.(*ast.StarExpr); ok {
		expr = ast.Unparen(s.X)
	}
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		if selInfo, ok := c.pass.TypesInfo.Selections[e]; ok && selInfo.Kind() == types.FieldVal {
			recv := selInfo.Recv()
			for {
				if p, ok := recv.(*types.Pointer); ok {
					recv = p.Elem()
					continue
				}
				break
			}
			if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name
			}
			return ""
		}
		// Qualified identifier: pkg.Var
		if v, ok := c.pass.TypesInfo.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.Ident:
		if v, ok := c.pass.TypesInfo.Uses[e].(*types.Var); ok && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	return ""
}

// callee resolves the statically-called function of a CallExpr, if any.
func (c *checker) callee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := c.pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := c.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcKey names a function the way the config's `in` clause does.
func funcKey(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		for {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
				continue
			}
			break
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + "." + fn.Name()
}

// held tracks the multiset of lock classes currently held, with the
// position each acquisition happened at (for diagnostics).
type held map[string][]token.Pos

func (h held) clone() held {
	out := make(held, len(h))
	for k, v := range h {
		out[k] = append([]token.Pos(nil), v...)
	}
	return out
}

// simulate walks a function body in statement order, maintaining the
// held-set and reporting inversions.
func (c *checker) simulate(body *ast.BlockStmt, fnKey string) {
	c.stmts(body.List, held{}, fnKey)
}

func (c *checker) stmts(list []ast.Stmt, h held, fnKey string) {
	for _, st := range list {
		c.stmt(st, h, fnKey)
	}
}

func (c *checker) stmt(st ast.Stmt, h held, fnKey string) {
	switch s := st.(type) {
	case *ast.BlockStmt:
		c.stmts(s.List, h, fnKey)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, h, fnKey)
		}
		c.calls(s.Cond, h, fnKey)
		// Branches run on copies: a lock acquired inside one branch is
		// assumed balanced there, so the straight-line suffix is checked
		// against the pre-branch held-set (conservative, avoids merge
		// explosion).
		c.stmts(s.Body.List, h.clone(), fnKey)
		if s.Else != nil {
			c.stmt(s.Else, h.clone(), fnKey)
		}
	case *ast.ForStmt:
		// Loop bodies run on the shared held-set (one symbolic
		// iteration): the lock-all-inputs-in-a-loop pattern must leave
		// its acquisitions visible to the code after the loop.
		if s.Init != nil {
			c.stmt(s.Init, h, fnKey)
		}
		if s.Cond != nil {
			c.calls(s.Cond, h, fnKey)
		}
		c.stmts(s.Body.List, h, fnKey)
		if s.Post != nil {
			c.stmt(s.Post, h, fnKey)
		}
	case *ast.RangeStmt:
		c.calls(s.X, h, fnKey)
		c.stmts(s.Body.List, h, fnKey)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, h, fnKey)
		}
		if s.Tag != nil {
			c.calls(s.Tag, h, fnKey)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.stmts(cc.Body, h.clone(), fnKey)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, h, fnKey)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.stmts(cc.Body, h.clone(), fnKey)
			}
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				if cc.Comm != nil {
					c.stmt(cc.Comm, h.clone(), fnKey)
				}
				c.stmts(cc.Body, h.clone(), fnKey)
			}
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, h, fnKey)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the rest of the
		// function, which sequential tracking models by ignoring it. A
		// deferred Lock (rare) is also ignored. Other deferred calls are
		// checked against the held-set at defer time — an approximation,
		// but deferred cleanup running under more locks than at
		// registration is itself suspect.
		if _, _, isLockOp := c.lockOp(s.Call); !isLockOp {
			c.checkCall(s.Call, h, fnKey)
			for _, arg := range s.Call.Args {
				c.calls(arg, h, fnKey)
			}
		}
	case *ast.GoStmt:
		// The goroutine body starts with an empty held-set (function
		// literals are simulated separately); its arguments are
		// evaluated here.
		for _, arg := range s.Call.Args {
			c.calls(arg, h, fnKey)
		}
	case *ast.ExprStmt:
		c.calls(s.X, h, fnKey)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.calls(e, h, fnKey)
		}
		for _, e := range s.Lhs {
			c.calls(e, h, fnKey)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.calls(e, h, fnKey)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						c.calls(e, h, fnKey)
					}
				}
			}
		}
	case *ast.SendStmt:
		c.calls(s.Chan, h, fnKey)
		c.calls(s.Value, h, fnKey)
	case *ast.IncDecStmt:
		c.calls(s.X, h, fnKey)
	}
}

// calls processes every call expression under e (in source order,
// skipping function literal bodies) against the current held-set.
func (c *checker) calls(e ast.Expr, h held, fnKey string) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			c.checkCall(call, h, fnKey)
		}
		return true
	})
}

// forEachCall visits every call expression in body outside function
// literals.
func (c *checker) forEachCall(body *ast.BlockStmt, fn func(*ast.CallExpr)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			fn(call)
		}
		return true
	})
}

// checkCall updates the held-set for lock operations and checks other
// calls one level deep via their summaries.
func (c *checker) checkCall(call *ast.CallExpr, h held, fnKey string) {
	if class, kind, ok := c.lockOp(call); ok {
		switch kind {
		case opLock, opRLock:
			if class == "" {
				if c.cfg.Strict[c.pass.Pkg.Path()] {
					c.pass.Reportf(call.Pos(),
						"acquisition of unclassified lock %s in strict package %s; add a `lock` entry to lockorder.conf (see docs/INVARIANTS.md)",
						types.ExprString(ast.Unparen(call.Fun).(*ast.SelectorExpr).X), c.pass.Pkg.Path())
				}
				return
			}
			c.checkAcquire(call.Pos(), class, fnKey, h, "")
			h[class] = append(h[class], call.Pos())
		case opUnlock, opRUnlock:
			if class == "" {
				return
			}
			if stack := h[class]; len(stack) > 0 {
				h[class] = stack[:len(stack)-1]
				if len(h[class]) == 0 {
					delete(h, class)
				}
			}
		}
		return
	}
	// Not a lock operation: check the callee's summarized acquisitions
	// against the held-set, then apply its net effect.
	fn := c.callee(call)
	if fn == nil {
		return
	}
	var sum lockSummary
	if !c.pass.ImportObjectFact(fn, &sum) {
		return
	}
	calleeKey := funcKey(fn)
	if len(h) > 0 {
		for _, class := range sum.Acquires {
			c.checkAcquire(call.Pos(), class, calleeKey, h, fn.Name())
		}
	}
	// Apply the callee's net effect so lock-wrapper methods move locks in
	// and out of the caller's held-set.
	for _, class := range sum.NetFreed {
		if stack := h[class]; len(stack) > 0 {
			h[class] = stack[:len(stack)-1]
			if len(h[class]) == 0 {
				delete(h, class)
			}
		}
	}
	for _, class := range sum.NetHeld {
		h[class] = append(h[class], call.Pos())
	}
}

// netEffect computes the locks a body leaves held or newly released on
// its unconditional path: direct sync Lock/Unlock calls at the top
// level (conditional branches and function literals excluded), with
// deferred unlocks applied at exit.
func (c *checker) netEffect(body *ast.BlockStmt) (netHeld, netFreed []string) {
	held := map[string]int{}
	freed := map[string]int{}
	var order []string // first-acquisition order, for stable output
	var deferred []string
	var walk func(list []ast.Stmt)
	apply := func(class string, kind lockOpKind) {
		switch kind {
		case opLock, opRLock:
			if held[class] == 0 {
				order = append(order, class)
			}
			held[class]++
		case opUnlock, opRUnlock:
			if held[class] > 0 {
				held[class]--
			} else {
				if freed[class] == 0 {
					order = append(order, class)
				}
				freed[class]++
			}
		}
	}
	flat := func(st ast.Stmt) {
		ast.Inspect(st, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if class, kind, ok := c.lockOp(call); ok && class != "" {
					apply(class, kind)
				}
			}
			return true
		})
	}
	walk = func(list []ast.Stmt) {
		for _, st := range list {
			switch s := st.(type) {
			case *ast.BlockStmt:
				walk(s.List)
			case *ast.LabeledStmt:
				walk([]ast.Stmt{s.Stmt})
			case *ast.DeferStmt:
				if class, kind, ok := c.lockOp(s.Call); ok && class != "" &&
					(kind == opUnlock || kind == opRUnlock) {
					deferred = append(deferred, class)
				}
			case *ast.ForStmt:
				// One symbolic iteration, matching the simulator.
				walk(s.Body.List)
			case *ast.RangeStmt:
				walk(s.Body.List)
			case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt,
				*ast.SelectStmt, *ast.GoStmt:
				// Conditional or concurrent: contributes no net effect.
			default:
				flat(st)
			}
		}
	}
	walk(body.List)
	for _, class := range deferred {
		apply(class, opUnlock)
	}
	for _, class := range order {
		for i := 0; i < held[class]; i++ {
			netHeld = append(netHeld, class)
		}
		for i := 0; i < freed[class]; i++ {
			netFreed = append(netFreed, class)
		}
	}
	return netHeld, netFreed
}

// checkAcquire reports an inversion if acquiring class at pos while h is
// held violates the hierarchy. acqFn is the function performing the
// acquisition (for allow-edge scoping); via names the called function
// when the acquisition is one level away.
func (c *checker) checkAcquire(pos token.Pos, class, acqFn string, h held, via string) {
	lvl, ok := c.cfg.Levels[class]
	if !ok {
		return
	}
	for heldClass, stack := range h {
		if len(stack) == 0 {
			continue
		}
		heldLvl, ok := c.cfg.Levels[heldClass]
		if !ok || heldLvl <= lvl {
			continue
		}
		if c.cfg.allowed(heldClass, class, acqFn) {
			continue
		}
		if via != "" {
			c.pass.Reportf(pos,
				"call to %s acquires %s (level %d) while holding %s (level %d): inverts the lock hierarchy (see docs/INVARIANTS.md)",
				via, class, lvl, heldClass, heldLvl)
		} else {
			c.pass.Reportf(pos,
				"%s (level %d) acquired while holding %s (level %d): inverts the lock hierarchy (see docs/INVARIANTS.md)",
				class, lvl, heldClass, heldLvl)
		}
	}
}
