package errcmp_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/errcmp"
)

func TestErrcmp(t *testing.T) {
	analysistest.Run(t, "testdata",
		[]*analysis.Analyzer{errcmp.NewAnalyzer("errs")},
		"errs", "uses")
}
