// Package uses compares errors against the errs sentinels in both the
// flagged and the allowed ways.
package uses

import (
	"errors"
	"io"

	"errs"
)

func Bad(err error) bool {
	return err == errs.ErrNotFound // want `error compared with ErrNotFound using ==`
}

func BadNeq(err error) bool {
	return err != errs.ErrCorrupt // want `error compared with ErrCorrupt using !=`
}

func BadReversed(err error) bool {
	return errs.ErrNotFound == err // want `error compared with ErrNotFound using ==`
}

func Good(err error) bool {
	return errors.Is(err, errs.ErrNotFound)
}

func NilCheck(err error) bool {
	return err == nil
}

// Sentinels from outside the module follow their own conventions.
func Foreign(err error) bool {
	return err == io.EOF
}

func Switch(err error) int {
	switch err {
	case errs.ErrNotFound: // want `switch on error compares against sentinel ErrNotFound by identity`
		return 1
	case nil:
		return 0
	}
	return 2
}

func Suppressed(err error) bool {
	//lint:ignore errcmp unwrapped by construction on this path
	return err == errs.ErrNotFound
}
