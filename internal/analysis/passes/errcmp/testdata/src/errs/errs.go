// Package errs declares module sentinel errors for the errcmp golden
// test.
package errs

import "errors"

var (
	ErrNotFound = errors.New("not found")
	ErrCorrupt  = errors.New("corrupt")
)

// Same-package identity comparison is flagged too.
func IsNotFound(err error) bool {
	return err == ErrNotFound // want `error compared with ErrNotFound using ==`
}
