// Package errcmp flags == / != comparisons against the module's typed
// sentinel errors.
//
// Sentinels like datacell.ErrNotDurable or wal.ErrCorruptWAL travel
// through fmt.Errorf("...: %w", err) wrapping on their way out of the
// engine, so an identity comparison that works today silently breaks
// the moment a call site adds context. Comparisons must use errors.Is.
// The analyzer flags binary ==/!= expressions and switch cases where one
// side is error-typed and the other names a package-level Err* variable
// declared in a module package. Comparisons with nil are fine, as are
// sentinels from outside the module (io.EOF follows its own
// documented conventions).
package errcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// NewAnalyzer builds the errcmp analyzer. modulePrefix is the import
// path prefix identifying this module's packages (e.g. "repro/").
func NewAnalyzer(modulePrefix string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "errcmp",
		Doc:  "flag ==/!= comparisons against module sentinel errors; use errors.Is",
	}
	a.Run = func(pass *analysis.Pass) (any, error) {
		run(pass, modulePrefix)
		return nil, nil
	}
	return a
}

func run(pass *analysis.Pass, modulePrefix string) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op != token.EQL && e.Op != token.NEQ {
					return true
				}
				sentinel := sentinelVar(pass, modulePrefix, e.X)
				other := e.Y
				if sentinel == nil {
					sentinel = sentinelVar(pass, modulePrefix, e.Y)
					other = e.X
				}
				if sentinel == nil || !isErrorExpr(pass, other) {
					return true
				}
				pass.Reportf(e.OpPos,
					"error compared with %s using %s: sentinel %s may be wrapped; use errors.Is (see docs/INVARIANTS.md)",
					sentinel.Name(), e.Op, sentinel.Name())
			case *ast.SwitchStmt:
				if e.Tag == nil || !isErrorExpr(pass, e.Tag) {
					return true
				}
				for _, clause := range e.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, val := range cc.List {
						if sentinel := sentinelVar(pass, modulePrefix, val); sentinel != nil {
							pass.Reportf(val.Pos(),
								"switch on error compares against sentinel %s by identity: sentinel may be wrapped; use errors.Is (see docs/INVARIANTS.md)",
								sentinel.Name())
						}
					}
				}
			}
			return true
		})
	}
}

// sentinelVar resolves e to a package-level Err* error variable declared
// inside the module, or nil.
func sentinelVar(pass *analysis.Pass, modulePrefix string, e ast.Expr) *types.Var {
	var ident *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		ident = x
	case *ast.SelectorExpr:
		ident = x.Sel
	default:
		return nil
	}
	v, _ := pass.TypesInfo.Uses[ident].(*types.Var)
	if v == nil || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	if !strings.HasPrefix(v.Pkg().Path()+"/", modulePrefix) &&
		!strings.HasPrefix(v.Pkg().Path(), modulePrefix) {
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return v
}

// isErrorExpr reports whether e's static type is (or implements) error.
func isErrorExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return isErrorType(tv.Type)
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorType)
}
