package analysis

import (
	"go/types"
	"reflect"
)

// FactStore holds one analyzer's object facts for a whole driver run.
// Objects are canonical because the driver type-checks every module
// package exactly once against one shared importer, so a types.Object
// seen from an importing package is pointer-identical to the one the
// defining package's pass saw.
type FactStore struct {
	byObj map[types.Object][]Fact
	order []ObjectFact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{byObj: map[types.Object][]Fact{}}
}

func (s *FactStore) add(obj types.Object, f Fact) {
	// At most one fact per (object, concrete type), like x/tools.
	t := reflect.TypeOf(f)
	for i, old := range s.byObj[obj] {
		if reflect.TypeOf(old) == t {
			s.byObj[obj][i] = f
			for j := range s.order {
				if s.order[j].Object == obj && reflect.TypeOf(s.order[j].Fact) == t {
					s.order[j].Fact = f
				}
			}
			return
		}
	}
	s.byObj[obj] = append(s.byObj[obj], f)
	s.order = append(s.order, ObjectFact{Object: obj, Fact: f})
}

func (s *FactStore) get(obj types.Object, ptr Fact) bool {
	pv := reflect.ValueOf(ptr)
	if pv.Kind() != reflect.Pointer {
		panic("analysis: ImportObjectFact requires a pointer to a Fact")
	}
	want := pv.Type().Elem()
	for _, f := range s.byObj[obj] {
		fv := reflect.ValueOf(f)
		if fv.Kind() == reflect.Pointer {
			fv = fv.Elem()
		}
		if fv.Type() == want {
			pv.Elem().Set(fv)
			return true
		}
	}
	return false
}

func (s *FactStore) all() []ObjectFact {
	out := make([]ObjectFact, len(s.order))
	copy(out, s.order)
	return out
}
