// Package analysis is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, built only on the standard library's
// go/ast, go/types, and go/token. This repository's toolchain is hermetic
// (no module proxy), so the x/tools dependency cannot be vendored; the
// API below is a compatible subset — an Analyzer's Run receives a *Pass
// with the type-checked package and reports Diagnostics — so the custom
// vet passes under internal/analysis/... can be ported to the real
// go/analysis driver unchanged if the dependency ever becomes available.
//
// Supported beyond the minimal core:
//
//   - Object facts (ExportObjectFact / ImportObjectFact / AllObjectFacts):
//     packages are analyzed in dependency order by the driver, so a fact
//     exported on an object in one package is visible to every pass that
//     analyzes a package importing it. Facts are in-process only (one
//     shared token.FileSet), never serialized.
//   - Suppression: a diagnostic is dropped when the source line it is
//     reported on, or the line above it, carries a comment of the form
//     `//lint:ignore <analyzer> <reason>` (or `//lint:ignore all ...`).
//     See suppress.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:ignore
	// suppressions. It must be a valid Go identifier.
	Name string
	// Doc is the analyzer's documentation: one summary line, then prose.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer *Analyzer
}

// Fact is a marker interface for analyzer facts attached to objects.
// Implementations are plain structs; AFact is a no-op tag.
type Fact interface{ AFact() }

// ObjectFact pairs an object with one fact recorded on it.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)

	// facts is the analyzer's whole-run fact store, shared across all
	// packages the driver analyzes (keyed by canonical types.Object).
	facts *FactStore
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer})
}

// ExportObjectFact records a fact on obj, visible to later passes of the
// same analyzer (packages are analyzed in dependency order).
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if obj == nil || f == nil {
		return
	}
	p.facts.add(obj, f)
}

// ImportObjectFact reports whether a fact of ptr's concrete type was
// recorded on obj, copying it into ptr when found. ptr must be a pointer
// to a Fact implementation, as in x/tools.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if obj == nil {
		return false
	}
	return p.facts.get(obj, ptr)
}

// AllObjectFacts returns every object fact this analyzer has exported so
// far in the whole run, in export order.
func (p *Pass) AllObjectFacts() []ObjectFact {
	return p.facts.all()
}
