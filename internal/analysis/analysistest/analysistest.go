// Package analysistest runs analyzers over golden packages and checks
// their diagnostics against expectations written in the source, in the
// style of golang.org/x/tools/go/analysis/analysistest.
//
// A golden package lives in testdata/src/<name>/ next to the test. Lines
// that should be flagged carry a trailing comment:
//
//	mu.Lock() // want `runnerMu acquired while holding`
//
// The argument is a regular expression (backquoted or double-quoted Go
// string) that must match one diagnostic reported on that line; several
// arguments mean several diagnostics. Lines without a want comment must
// produce no diagnostics.
package analysistest

import (
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads the named golden packages from dir/src (in the order given —
// list dependencies first, as the driver requires) and applies the
// analyzers, failing t for every mismatch between reported diagnostics
// and // want expectations. It returns the surviving diagnostics so
// callers can make extra assertions.
func Run(t *testing.T, dir string, analyzers []*analysis.Analyzer, pkgNames ...string) []analysis.Diagnostic {
	t.Helper()

	fset := token.NewFileSet()
	build.Default.CgoEnabled = false
	srcImp := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	cache := map[string]*types.Package{}
	imp := importerFunc(func(path, fromDir string) (*types.Package, error) {
		if p, ok := cache[path]; ok {
			return p, nil
		}
		return srcImp.ImportFrom(path, fromDir, 0)
	})

	var pkgs []*analysis.Package
	want := map[string]map[int][]*regexp.Regexp{} // file → line → pending expectations
	for _, name := range pkgNames {
		pkgDir := filepath.Join(dir, "src", name)
		entries, err := os.ReadDir(pkgDir)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(pkgDir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("analysistest: %v", err)
			}
			files = append(files, f)
			collectWants(t, fset, f, want)
		}
		if len(files) == 0 {
			t.Fatalf("analysistest: no Go files in %s", pkgDir)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(name, fset, files, info)
		if err != nil {
			t.Fatalf("analysistest: type-checking %s: %v", name, err)
		}
		cache[name] = tpkg
		pkgs = append(pkgs, &analysis.Package{
			Path: name, Fset: fset, Files: files, Types: tpkg, TypesInfo: info,
		})
	}

	diags, err := analysis.Run(pkgs, analyzers, nil)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		exps := want[pos.Filename][pos.Line]
		matched := -1
		for i, re := range exps {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s", pos.Filename, pos.Line, d.Analyzer.Name, d.Message)
			continue
		}
		want[pos.Filename][pos.Line] = append(exps[:matched], exps[matched+1:]...)
	}
	for file, lines := range want {
		for line, exps := range lines {
			for _, re := range exps {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, line, re)
			}
		}
	}
	return diags
}

// wantRe matches one argument of a want comment: a double-quoted or
// backquoted Go string literal.
var wantRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// collectWants records the // want expectations of one file.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, into map[string]map[int][]*regexp.Regexp) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "want ") && text != "want" {
				continue
			}
			rest := strings.TrimPrefix(text, "want")
			pos := fset.Position(c.Pos())
			args := wantRe.FindAllString(rest, -1)
			if len(args) == 0 {
				t.Fatalf("%s:%d: want comment with no pattern", pos.Filename, pos.Line)
			}
			for _, a := range args {
				pat, err := strconv.Unquote(a)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, a, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
				}
				m := into[pos.Filename]
				if m == nil {
					m = map[int][]*regexp.Regexp{}
					into[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], re)
			}
		}
	}
}

// importerFunc adapts a function to types.ImporterFrom.
type importerFunc func(path, dir string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path, "") }
func (f importerFunc) ImportFrom(path, dir string, _ types.ImportMode) (*types.Package, error) {
	return f(path, dir)
}
