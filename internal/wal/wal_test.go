package wal

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func appendCommit(t *testing.T, w *WAL, payload string) int64 {
	t.Helper()
	seq, err := w.Append([]byte(payload))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Commit(context.Background(), seq); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	return seq
}

func collect(t *testing.T, w *WAL, from int64) map[int64]string {
	t.Helper()
	got := map[int64]string{}
	if err := w.Replay(from, func(seq int64, payload []byte) error {
		got[seq] = string(payload)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if seq := appendCommit(t, w, fmt.Sprintf("rec-%d", i)); seq != int64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.DurableSeq() != 10 {
		t.Fatalf("DurableSeq = %d, want 10", w2.DurableSeq())
	}
	got := collect(t, w2, 1)
	if len(got) != 10 {
		t.Fatalf("replayed %d records, want 10", len(got))
	}
	for i := 0; i < 10; i++ {
		if got[int64(i+1)] != fmt.Sprintf("rec-%d", i) {
			t.Fatalf("seq %d = %q", i+1, got[int64(i+1)])
		}
	}
	// Replay honors the from cursor.
	if got := collect(t, w2, 8); len(got) != 3 {
		t.Fatalf("replay from 8 gave %d records, want 3", len(got))
	}
}

func TestRotationAndMultiSegmentReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		appendCommit(t, w, fmt.Sprintf("record-payload-%03d", i))
	}
	st := w.Stats()
	if st.Segments < 3 {
		t.Fatalf("Segments = %d, want several (rotation at 64 bytes)", st.Segments)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.DurableSeq() != n {
		t.Fatalf("DurableSeq = %d, want %d", w2.DurableSeq(), n)
	}
	got := collect(t, w2, 1)
	if len(got) != n {
		t.Fatalf("replayed %d, want %d", len(got), n)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		appendCommit(t, w, fmt.Sprintf("rec-%d", i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-write: chop bytes off the single segment.
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if len(segs) != 1 {
		t.Fatalf("segments = %d, want 1", len(segs))
	}
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], info.Size()-3); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after torn tail: %v", err)
	}
	defer w2.Close()
	if w2.DurableSeq() != 4 {
		t.Fatalf("DurableSeq = %d, want 4 (last record torn)", w2.DurableSeq())
	}
	got := collect(t, w2, 1)
	if len(got) != 4 || got[4] != "rec-3" {
		t.Fatalf("replay after truncation = %v", got)
	}
}

func TestCorruptInteriorSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		appendCommit(t, w, fmt.Sprintf("record-%02d", i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d", len(segs))
	}
	// Flip a payload byte in the FIRST segment: interior corruption.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+1] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{SegmentBytes: 32}); !errors.Is(err, ErrCorruptWAL) {
		t.Fatalf("Open = %v, want ErrCorruptWAL", err)
	}
}

func TestPrune(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 48})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 30; i++ {
		appendCommit(t, w, fmt.Sprintf("record-payload-%02d", i))
	}
	before := w.Stats()
	if before.Segments < 3 {
		t.Fatalf("want >=3 segments before prune, got %d", before.Segments)
	}
	if err := w.Prune(20); err != nil {
		t.Fatal(err)
	}
	after := w.Stats()
	if after.Segments >= before.Segments {
		t.Fatalf("prune removed nothing: %d -> %d segments", before.Segments, after.Segments)
	}
	// Everything past the prune point must still replay. (Records <= 20
	// may also survive if their segment straddles the boundary.)
	got := collect(t, w, 21)
	if len(got) != 0 {
		// Replay only visits records recovered at Open, and this log was
		// created fresh, so nothing should surface here.
		t.Fatalf("fresh log replay returned %d records", len(got))
	}
}

func TestPruneThenReopenReplays(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 48})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		appendCommit(t, w, fmt.Sprintf("record-payload-%02d", i))
	}
	if err := w.Prune(20); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{SegmentBytes: 48})
	if err != nil {
		t.Fatalf("Open after prune: %v", err)
	}
	defer w2.Close()
	if w2.DurableSeq() != 30 {
		t.Fatalf("DurableSeq = %d, want 30", w2.DurableSeq())
	}
	got := collect(t, w2, 21)
	for seq := int64(21); seq <= 30; seq++ {
		want := fmt.Sprintf("record-payload-%02d", seq-1)
		if got[seq] != want {
			t.Fatalf("seq %d = %q, want %q", seq, got[seq], want)
		}
	}
}

func TestConcurrentAppendCommit(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 50
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seq, err := w.Append([]byte(fmt.Sprintf("g%d-i%d", g, i)))
				if err != nil {
					errCh <- err
					return
				}
				if err := w.Commit(context.Background(), seq); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := w.LastSeq(); got != writers*per {
		t.Fatalf("LastSeq = %d, want %d", got, writers*per)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := len(collect(t, w2, 1)); got != writers*per {
		t.Fatalf("replayed %d, want %d", got, writers*per)
	}
}

func TestClosedOperations(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendCommit(t, w, "x")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if _, err := w.Append([]byte("y")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
}

// TestReopenEmptyActiveSegment reproduces a crash between Open and the
// first append: the abandoned empty active segment must not collide
// with the next Open's fresh segment.
func TestReopenEmptyActiveSegment(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen with empty active segment: %v", err)
	}
	appendCommit(t, w2, "after")
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if got := collect(t, w3, 1); len(got) != 1 || got[1] != "after" {
		t.Fatalf("replay after empty reopen = %v", got)
	}
}
