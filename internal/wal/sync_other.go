//go:build !linux

package wal

import "os"

// datasync falls back to a full fsync where the platform has no
// separate data-only barrier.
func datasync(f *os.File) error { return f.Sync() }
