// Package wal implements the durability subsystem's write-ahead log: a
// segmented, length-prefixed, CRC-checked record log with group commit.
// The engine appends one record per state change (DDL, ingest batch,
// delivery frontier); a background syncer batches fsyncs so concurrent
// committers share one disk flush (group commit), keeping sustained
// ingest near memory speed.
//
// Recovery is torn-write tolerant: opening a log scans every segment,
// verifies each record's CRC, and truncates the final segment at the
// first bad frame — a torn tail is exactly what a crash mid-write
// leaves behind. A bad frame anywhere before the tail is real
// corruption and surfaces as ErrCorruptWAL.
package wal

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

var (
	// ErrCorruptWAL marks corruption that truncation cannot repair: a bad
	// record in the interior of the log, or a gap between segments.
	ErrCorruptWAL = errors.New("wal: corrupt log")
	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("wal: closed")
)

const (
	segmentSuffix = ".wal"
	headerSize    = 8       // u32 length + u32 crc32(payload)
	maxRecordSize = 1 << 30 // sanity bound on the length prefix
)

// Options configures a log.
type Options struct {
	// SegmentBytes is the rotation threshold (default 64 MiB). Small
	// values are useful in tests to exercise multi-segment recovery.
	SegmentBytes int64

	// OnSync, if set, is called after every physical fsync round with
	// its duration. It runs on the sync goroutine and must not block.
	OnSync func(d time.Duration)
}

// Stats is a point-in-time summary of the log's physical state.
type Stats struct {
	Segments  int   // sealed segments plus the active one
	Bytes     int64 // total bytes across all segments
	LastSeq   int64 // last appended sequence number (0 = empty log)
	SyncedSeq int64 // last sequence number known durable
}

// segment is one sealed log file (kept open so an in-flight group
// fsync never races a rotation's close).
type segment struct {
	path     string
	firstSeq int64 // sequence number of the segment's first record
	records  int64
	bytes    int64
	f        *os.File // nil for segments recovered from a previous run
}

// WAL is a segmented write-ahead log. Append and Commit are safe for
// concurrent use; Replay must run before the first Append of concurrent
// writers (the engine replays during Open, single-threaded).
type WAL struct {
	dir  string
	opts Options

	mu       sync.Mutex
	sealed   []*segment
	active   *segment
	f        *os.File
	bw       *bufio.Writer
	segBytes int64
	nextSeq  int64 // sequence number the next Append receives
	written  int64 // last appended seq
	synced   int64 // last seq known durable
	durable  int64 // last seq recovered at Open (pre-existing records)
	err      error
	closed   bool

	syncKick chan struct{}
	syncDone chan struct{} // closed and replaced after every fsync round
	loopDone chan struct{}
}

// Open scans dir for existing segments, repairs a torn tail, and
// prepares a fresh active segment for new appends. The previous run's
// records are replayable via Replay; DurableSeq reports how far they
// reach.
func Open(dir string, opts Options) (*WAL, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 64 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &WAL{
		dir:      dir,
		opts:     opts,
		nextSeq:  1,
		syncKick: make(chan struct{}, 1),
		syncDone: make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	if err := w.recoverSegments(); err != nil {
		return nil, err
	}
	w.durable = w.nextSeq - 1
	w.written = w.durable
	w.synced = w.durable
	if err := w.openActive(); err != nil {
		return nil, err
	}
	go w.syncLoop()
	return w, nil
}

// recoverSegments scans the directory's segments in sequence order,
// validates frames, truncates a torn tail on the final segment, and
// errors on interior corruption or sequence gaps.
func (w *WAL) recoverSegments() error {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return err
	}
	var segs []*segment
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		first, err := strconv.ParseInt(strings.TrimSuffix(name, segmentSuffix), 16, 64)
		if err != nil {
			continue // foreign file; ignore
		}
		segs = append(segs, &segment{path: filepath.Join(w.dir, name), firstSeq: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	next := int64(1)
	if len(segs) > 0 {
		// The log may have been pruned behind a checkpoint: it legally
		// starts at the first surviving segment.
		next = segs[0].firstSeq
	}
	for i, seg := range segs {
		if seg.firstSeq != next {
			return fmt.Errorf("%w: segment %s starts at seq %d, want %d", ErrCorruptWAL, seg.path, seg.firstSeq, next)
		}
		last := i == len(segs)-1
		records, validBytes, scanErr := scanSegment(seg.path)
		if scanErr != nil && !last {
			return fmt.Errorf("%w: %s: %v", ErrCorruptWAL, seg.path, scanErr)
		}
		if scanErr != nil {
			// Torn tail: drop everything at and past the first bad frame.
			if err := os.Truncate(seg.path, validBytes); err != nil {
				return err
			}
		}
		seg.records = records
		seg.bytes = validBytes
		next += records
	}
	// A record-less final segment (a crash right after rotation or
	// before the first append, or a torn tail truncated to nothing)
	// holds no data and its name would collide with the fresh active
	// segment; drop it.
	if n := len(segs); n > 0 && segs[n-1].records == 0 {
		if err := os.Remove(segs[n-1].path); err != nil {
			return err
		}
		segs = segs[:n-1]
	}
	w.sealed = segs
	w.nextSeq = next
	return nil
}

// scanSegment walks one segment file, returning the number of valid
// records and the byte offset where validity ends. A non-nil error
// means the file has invalid content at that offset.
func scanSegment(path string) (records, validBytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	var head [headerSize]byte
	for {
		_, rerr := io.ReadFull(br, head[:])
		if rerr == io.EOF {
			return records, validBytes, nil
		}
		if rerr != nil {
			return records, validBytes, fmt.Errorf("torn header: %v", rerr)
		}
		n := binary.LittleEndian.Uint32(head[0:4])
		crc := binary.LittleEndian.Uint32(head[4:8])
		if n == 0 || n > maxRecordSize {
			return records, validBytes, fmt.Errorf("invalid record length %d", n)
		}
		payload := make([]byte, n)
		if _, rerr := io.ReadFull(br, payload); rerr != nil {
			return records, validBytes, fmt.Errorf("torn payload: %v", rerr)
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return records, validBytes, fmt.Errorf("crc mismatch")
		}
		records++
		validBytes += headerSize + int64(n)
	}
}

// openActive creates a fresh segment for new appends.
func (w *WAL) openActive() error {
	seg := &segment{path: w.segmentPath(w.nextSeq), firstSeq: w.nextSeq}
	f, err := os.OpenFile(seg.path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	seg.f = f
	w.active = seg
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<20)
	w.segBytes = 0
	return nil
}

func (w *WAL) segmentPath(firstSeq int64) string {
	return filepath.Join(w.dir, fmt.Sprintf("%016x%s", firstSeq, segmentSuffix))
}

// DurableSeq returns the last sequence number recovered at Open — the
// replayable extent of the previous run's log.
func (w *WAL) DurableSeq() int64 { return w.durable }

// LastSeq returns the last appended sequence number.
func (w *WAL) LastSeq() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.written
}

// Append frames and buffers one record, returning its sequence number.
// The record is NOT durable until Commit (or Sync) returns for a
// sequence at or past it.
func (w *WAL) Append(payload []byte) (int64, error) {
	if len(payload) == 0 {
		return 0, fmt.Errorf("wal: empty record")
	}
	if len(payload) > maxRecordSize {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	var head [headerSize]byte
	binary.LittleEndian.PutUint32(head[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(head[4:8], crc32.ChecksumIEEE(payload))

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if w.err != nil {
		return 0, w.err
	}
	if w.segBytes >= w.opts.SegmentBytes && w.active.records > 0 {
		if err := w.rotateLocked(); err != nil {
			w.err = err
			return 0, err
		}
	}
	if _, err := w.bw.Write(head[:]); err != nil {
		w.err = err
		return 0, err
	}
	if _, err := w.bw.Write(payload); err != nil {
		w.err = err
		return 0, err
	}
	seq := w.nextSeq
	w.nextSeq++
	w.written = seq
	n := int64(headerSize + len(payload))
	w.segBytes += n
	w.active.records++
	w.active.bytes += n
	return seq, nil
}

// rotateLocked seals the active segment (flushed and fsynced, so every
// record in it is durable) and opens a fresh one. Sealed files stay
// open until Close or Prune, so an in-flight group fsync holding the
// old handle never touches a closed fd.
func (w *WAL) rotateLocked() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := datasync(w.f); err != nil {
		return err
	}
	w.synced = w.written
	w.sealed = append(w.sealed, w.active)
	return w.openActive()
}

// Commit blocks until every record at or below seq is durable — the
// group-commit wait. Concurrent committers share fsync rounds issued by
// the background syncer.
func (w *WAL) Commit(ctx context.Context, seq int64) error {
	for {
		w.mu.Lock()
		if w.err != nil {
			err := w.err
			w.mu.Unlock()
			return err
		}
		if w.synced >= seq {
			w.mu.Unlock()
			return nil
		}
		if w.closed {
			w.mu.Unlock()
			return ErrClosed
		}
		done := w.syncDone
		w.mu.Unlock()
		select {
		case w.syncKick <- struct{}{}:
		default:
		}
		select {
		case <-done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Sync flushes and fsyncs everything appended so far.
func (w *WAL) Sync() error { return w.syncOnce() }

// syncLoop is the group-commit worker: each kick triggers one flush +
// fsync pass covering every record appended before it. Between the kick
// and the pass it yields the processor and drains queued kicks, so
// committers woken by the previous round get to append before the next
// round captures its target — without the yield, the first waker's kick
// starts a round that covers only the fastest one or two appends and
// the rest pay a full extra fsync.
func (w *WAL) syncLoop() {
	defer close(w.loopDone)
	for range w.syncKick {
		runtime.Gosched()
	drain:
		for {
			select {
			case _, ok := <-w.syncKick:
				if !ok {
					break drain
				}
			default:
				break drain
			}
		}
		_ = w.syncOnce()
	}
}

func (w *WAL) syncOnce() error {
	w.mu.Lock()
	if w.closed && w.f == nil {
		w.mu.Unlock()
		return ErrClosed
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	target := w.written
	if target <= w.synced {
		done := w.syncDone
		w.syncDone = make(chan struct{})
		w.mu.Unlock()
		close(done)
		return nil
	}
	err := w.bw.Flush()
	f := w.f
	onSync := w.opts.OnSync
	w.mu.Unlock()
	if err == nil {
		// Outside the lock: appends proceed while the disk flushes — the
		// next round picks them up (group commit). A rotation in between
		// is safe: it fsyncs the sealed file itself and sealed files stay
		// open, so this handle is never stale-closed.
		start := time.Now()
		err = datasync(f)
		if onSync != nil {
			onSync(time.Since(start))
		}
	}
	w.mu.Lock()
	if err != nil && w.err == nil {
		w.err = err
	}
	if err == nil && target > w.synced {
		w.synced = target
	}
	done := w.syncDone
	w.syncDone = make(chan struct{})
	w.mu.Unlock()
	close(done)
	return err
}

// Replay streams the records recovered at Open (seq <= DurableSeq),
// starting at from (pass 1, or checkpointSeq+1), in sequence order.
// Records appended after Open are not visited.
func (w *WAL) Replay(from int64, fn func(seq int64, payload []byte) error) error {
	if from < 1 {
		from = 1
	}
	w.mu.Lock()
	segs := append([]*segment(nil), w.sealed...)
	durable := w.durable
	active := w.active
	w.mu.Unlock()
	for _, seg := range segs {
		if seg == active || seg.firstSeq > durable {
			break
		}
		if seg.firstSeq+seg.records <= from {
			continue
		}
		if err := replaySegment(seg, from, durable, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(seg *segment, from, durable int64, fn func(int64, []byte) error) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	var head [headerSize]byte
	seq := seg.firstSeq
	for i := int64(0); i < seg.records; i++ {
		if _, err := io.ReadFull(br, head[:]); err != nil {
			return fmt.Errorf("%w: %s: %v", ErrCorruptWAL, seg.path, err)
		}
		n := binary.LittleEndian.Uint32(head[0:4])
		crc := binary.LittleEndian.Uint32(head[4:8])
		if n == 0 || n > maxRecordSize {
			return fmt.Errorf("%w: %s: invalid record length %d", ErrCorruptWAL, seg.path, n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return fmt.Errorf("%w: %s: %v", ErrCorruptWAL, seg.path, err)
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return fmt.Errorf("%w: %s: crc mismatch at seq %d", ErrCorruptWAL, seg.path, seq)
		}
		if seq >= from && seq <= durable {
			if err := fn(seq, payload); err != nil {
				return err
			}
		}
		seq++
	}
	return nil
}

// Prune deletes sealed segments whose every record is at or below upTo
// (typically the latest checkpoint's sequence number). A segment
// survives unless the next segment starts at or below upTo+1.
func (w *WAL) Prune(upTo int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	kept := w.sealed[:0]
	for i, seg := range w.sealed {
		var nextFirst int64
		if i+1 < len(w.sealed) {
			nextFirst = w.sealed[i+1].firstSeq
		} else {
			nextFirst = w.active.firstSeq
		}
		if nextFirst <= upTo+1 && seg.firstSeq+seg.records <= upTo+1 {
			if seg.f != nil {
				_ = seg.f.Close()
			}
			if err := os.Remove(seg.path); err != nil {
				kept = append(kept, seg)
				w.sealed = append(kept, w.sealed[i+1:]...)
				return err
			}
			continue
		}
		kept = append(kept, seg)
	}
	w.sealed = kept
	return nil
}

// Stats reports the log's physical state.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := Stats{LastSeq: w.written, SyncedSeq: w.synced}
	for _, seg := range w.sealed {
		st.Segments++
		st.Bytes += seg.bytes
	}
	if w.active != nil {
		st.Segments++
		st.Bytes += w.active.bytes
	}
	return st
}

// Close flushes, fsyncs, and closes every file. Further operations
// return ErrClosed.
func (w *WAL) Close() error {
	err := w.syncOnce()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	close(w.syncKick)
	for _, seg := range w.sealed {
		if seg.f != nil {
			_ = seg.f.Close()
		}
	}
	if w.f != nil {
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
		w.f = nil
	}
	w.mu.Unlock()
	<-w.loopDone
	if errors.Is(err, ErrClosed) {
		return nil
	}
	return err
}
