//go:build linux

package wal

import (
	"os"
	"syscall"
)

// datasync persists a segment's data and size without the pure-metadata
// inode update (mtime/ctime) a full fsync also journals. The log's
// group-commit round is fsync-latency-bound, so the cheaper barrier is
// taken where the kernel offers it; crash safety is unchanged — frame
// payloads and the file length are exactly what replay needs.
func datasync(f *os.File) error {
	for {
		err := syscall.Fdatasync(int(f.Fd()))
		if err != syscall.EINTR {
			return err
		}
	}
}
