// Package catalog holds the schema metadata of the engine: column
// definitions for tables and baskets, and the registry that resolves names
// during planning.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/bat"
	"repro/internal/vector"
)

// ErrNotFound is wrapped by Lookup failures so higher layers (the engine
// surfaces it as ErrUnknownStream) can branch with errors.Is instead of
// matching message strings.
var ErrNotFound = errors.New("catalog: unknown table or basket")

// TimestampColumn is the name of the implicit arrival-time column every
// basket carries (paper §2.2: "for each relational table there exists an
// extra column, the timestamp column").
const TimestampColumn = "ts"

// Column describes one attribute.
type Column struct {
	Name string
	Type vector.Type
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from name/type pairs.
func NewSchema(cols ...Column) *Schema { return &Schema{Columns: cols} }

// Index returns the position of the named column (case-insensitive), or -1.
func (s *Schema) Index(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// Clone deep-copies the schema.
func (s *Schema) Clone() *Schema {
	return &Schema{Columns: append([]Column(nil), s.Columns...)}
}

// WithTimestamp returns a copy of the schema with the implicit basket
// timestamp column appended (if not already present).
func (s *Schema) WithTimestamp() *Schema {
	if s.Index(TimestampColumn) >= 0 {
		return s.Clone()
	}
	out := s.Clone()
	out.Columns = append(out.Columns, Column{Name: TimestampColumn, Type: vector.Timestamp})
	return out
}

// String renders the schema as "(a BIGINT, b DOUBLE)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
	}
	b.WriteByte(')')
	return b.String()
}

// SourceKind distinguishes the two relation kinds of the DataCell.
type SourceKind uint8

// Relation kinds.
const (
	KindTable SourceKind = iota
	KindBasket
)

// String returns "TABLE" or "BASKET".
func (k SourceKind) String() string {
	if k == KindBasket {
		return "BASKET"
	}
	return "TABLE"
}

// Source is anything the planner can scan: a static table or a basket.
// Snapshot must return a stable, read-only chunked view aligned with the
// source's schema; the view must stay valid across later appends and
// consumption (sources never mutate a published chunk in place).
type Source interface {
	Schema() *Schema
	Snapshot() bat.View
}

// Entry is one catalog registration. Partitioned streams carry their
// sharding declaration (Partitions/PartitionBy); the shard baskets
// themselves register as separate entries with Shard >= 0 pointing back
// at the parent.
type Entry struct {
	Name   string
	Kind   SourceKind
	Source Source
	// Partitions is the declared shard count of a partitioned source (0
	// for unpartitioned entries).
	Partitions int
	// PartitionBy is the hash-routing column ("" = round-robin).
	PartitionBy string
	// Shard is this entry's shard index within Parent, or -1.
	Shard int
	// Parent names the partitioned source a shard entry belongs to.
	Parent string
}

// Catalog is a concurrency-safe name → source registry.
type Catalog struct {
	mu      sync.RWMutex
	entries map[string]*Entry
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{entries: make(map[string]*Entry)}
}

// Register adds a source under the given name. Names are case-insensitive
// and must be unique across tables and baskets.
func (c *Catalog) Register(name string, kind SourceKind, src Source) error {
	return c.register(&Entry{Name: name, Kind: kind, Source: src, Shard: -1})
}

// RegisterPartitioned adds a partitioned source: the entry records the
// shard count and routing column so introspection can report them.
func (c *Catalog) RegisterPartitioned(name string, kind SourceKind, src Source, partitions int, by string) error {
	return c.register(&Entry{Name: name, Kind: kind, Source: src,
		Partitions: partitions, PartitionBy: by, Shard: -1})
}

// RegisterShard adds shard number shard of the partitioned source parent.
func (c *Catalog) RegisterShard(name string, kind SourceKind, src Source, parent string, shard int) error {
	return c.register(&Entry{Name: name, Kind: kind, Source: src,
		Shard: shard, Parent: parent})
}

func (c *Catalog) register(e *Entry) error {
	key := strings.ToLower(e.Name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[key]; exists {
		return fmt.Errorf("catalog: %q already exists", e.Name)
	}
	c.entries[key] = e
	return nil
}

// Drop removes a registration.
func (c *Catalog) Drop(name string) error {
	key := strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[key]; !exists {
		return fmt.Errorf("catalog: %q does not exist", name)
	}
	delete(c.entries, key)
	return nil
}

// Lookup resolves a name.
func (c *Catalog) Lookup(name string) (*Entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return e, nil
}

// Names lists all registered names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}
