package catalog

import (
	"testing"

	"repro/internal/bat"
	"repro/internal/vector"
)

type fakeSource struct{ s *Schema }

func (f *fakeSource) Schema() *Schema    { return f.s }
func (f *fakeSource) Snapshot() bat.View { return bat.View{} }

func twoCol() *Schema {
	return NewSchema(
		Column{Name: "a", Type: vector.Int64},
		Column{Name: "b", Type: vector.Float64},
	)
}

func TestSchemaIndex(t *testing.T) {
	s := twoCol()
	if s.Index("a") != 0 || s.Index("B") != 1 {
		t.Errorf("Index: a=%d B=%d", s.Index("a"), s.Index("B"))
	}
	if s.Index("zzz") != -1 {
		t.Error("missing column should be -1")
	}
}

func TestSchemaNamesAndString(t *testing.T) {
	s := twoCol()
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	if s.String() != "(a BIGINT, b DOUBLE)" {
		t.Errorf("String = %s", s)
	}
}

func TestSchemaWithTimestamp(t *testing.T) {
	s := twoCol()
	ts := s.WithTimestamp()
	if ts.Len() != 3 || ts.Index(TimestampColumn) != 2 {
		t.Errorf("WithTimestamp = %v", ts)
	}
	if ts.Columns[2].Type != vector.Timestamp {
		t.Error("ts column should be TIMESTAMP")
	}
	// Idempotent.
	if ts.WithTimestamp().Len() != 3 {
		t.Error("WithTimestamp not idempotent")
	}
	// Source schema untouched.
	if s.Len() != 2 {
		t.Error("WithTimestamp mutated source")
	}
}

func TestSchemaCloneIndependence(t *testing.T) {
	s := twoCol()
	c := s.Clone()
	c.Columns[0].Name = "zzz"
	if s.Columns[0].Name != "a" {
		t.Error("Clone shares columns")
	}
}

func TestCatalogRegisterLookup(t *testing.T) {
	c := New()
	src := &fakeSource{s: twoCol()}
	if err := c.Register("Sensors", KindBasket, src); err != nil {
		t.Fatal(err)
	}
	e, err := c.Lookup("sensors")
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != KindBasket || e.Name != "Sensors" {
		t.Errorf("entry = %+v", e)
	}
	if _, err := c.Lookup("nope"); err == nil {
		t.Error("lookup of missing name should fail")
	}
}

func TestCatalogDuplicate(t *testing.T) {
	c := New()
	src := &fakeSource{s: twoCol()}
	_ = c.Register("t", KindTable, src)
	if err := c.Register("T", KindBasket, src); err == nil {
		t.Error("duplicate registration (case-insensitive) should fail")
	}
}

func TestCatalogDrop(t *testing.T) {
	c := New()
	src := &fakeSource{s: twoCol()}
	_ = c.Register("t", KindTable, src)
	if err := c.Drop("T"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup("t"); err == nil {
		t.Error("dropped name should not resolve")
	}
	if err := c.Drop("t"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestCatalogNamesSorted(t *testing.T) {
	c := New()
	src := &fakeSource{s: twoCol()}
	_ = c.Register("zeta", KindTable, src)
	_ = c.Register("alpha", KindBasket, src)
	names := c.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Errorf("Names = %v", names)
	}
}

func TestSourceKindString(t *testing.T) {
	if KindTable.String() != "TABLE" || KindBasket.String() != "BASKET" {
		t.Error("SourceKind strings wrong")
	}
}
