package storage

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/vector"
)

func intSchema() *catalog.Schema {
	return catalog.NewSchema(catalog.Column{Name: "v", Type: vector.Int64})
}

// fillSeq appends rows carrying their own OID as the value, so any view
// can be checked against its head OID.
func fillSeq(t *testing.T, tb *Table, n int) {
	t.Helper()
	start := int64(tb.Hseq()) + int64(tb.NumRows())
	for i := int64(0); i < int64(n); i++ {
		if err := tb.AppendRow([]vector.Value{vector.NewInt(start + i)}); err != nil {
			t.Fatal(err)
		}
	}
}

// checkSeq asserts that the table content is exactly the OID sequence
// hseq..hseq+rows.
func checkSeq(t *testing.T, tb *Table) {
	t.Helper()
	view := tb.Snapshot()
	hseq := int64(tb.Hseq())
	for i := 0; i < view.NumRows(); i++ {
		if got := view.Get(0, i).I; got != hseq+int64(i) {
			t.Fatalf("row %d = %d, want %d", i, got, hseq+int64(i))
		}
	}
}

func TestSealingProducesChunks(t *testing.T) {
	tb := NewTable("t", intSchema())
	tb.SetChunkTarget(8)
	fillSeq(t, tb, 30)
	chunks, rows, dropped := tb.Stats()
	if rows != 30 || dropped != 0 {
		t.Fatalf("rows=%d dropped=%d", rows, dropped)
	}
	if chunks != 4 { // 8+8+8+6
		t.Fatalf("chunks = %d, want 4", chunks)
	}
	checkSeq(t, tb)
}

func TestAppendBatchSplitsAtTarget(t *testing.T) {
	tb := NewTable("t", intSchema())
	tb.SetChunkTarget(10)
	vals := make([]int64, 35)
	for i := range vals {
		vals[i] = int64(i)
	}
	if err := tb.AppendBatch([]*vector.Vector{vector.FromInts(vals)}); err != nil {
		t.Fatal(err)
	}
	chunks, rows, _ := tb.Stats()
	if rows != 35 || chunks != 4 {
		t.Fatalf("rows=%d chunks=%d", rows, chunks)
	}
	for _, ch := range tb.Snapshot().Chunks {
		if ch.Len() > 10 {
			t.Fatalf("oversized chunk: %d", ch.Len())
		}
	}
	checkSeq(t, tb)
}

func TestDropPrefixReleasesWholeChunks(t *testing.T) {
	tb := NewTable("t", intSchema())
	tb.SetChunkTarget(8)
	fillSeq(t, tb, 32)
	before := tb.Snapshot()

	tb.DropPrefix(20) // 2 whole chunks + 4 rows of the third
	if tb.NumRows() != 12 || tb.Hseq() != 20 {
		t.Fatalf("rows=%d hseq=%d", tb.NumRows(), tb.Hseq())
	}
	checkSeq(t, tb)
	// The surviving sealed chunk is shared with the pre-drop snapshot's
	// backing, not copied: dropping again still reads the right values.
	tb.DropPrefix(5)
	if tb.Hseq() != 25 {
		t.Fatalf("hseq=%d", tb.Hseq())
	}
	checkSeq(t, tb)
	// The pre-drop snapshot still reads the full original content.
	if before.NumRows() != 32 || before.Get(0, 0).I != 0 || before.Get(0, 31).I != 31 {
		t.Error("prior snapshot disturbed by DropPrefix")
	}
}

func TestDropPrefixIntoTail(t *testing.T) {
	tb := NewTable("t", intSchema())
	tb.SetChunkTarget(8)
	fillSeq(t, tb, 12) // one sealed chunk + 4 tail rows
	tb.DropPrefix(10)  // reaches 2 rows into the tail
	if tb.NumRows() != 2 || tb.Hseq() != 10 {
		t.Fatalf("rows=%d hseq=%d", tb.NumRows(), tb.Hseq())
	}
	checkSeq(t, tb)
	// Appends after the tail was frozen keep working.
	fillSeq(t, tb, 3)
	if tb.NumRows() != 5 {
		t.Fatalf("rows=%d", tb.NumRows())
	}
	checkSeq(t, tb)
}

func TestRetainSharesUntouchedChunks(t *testing.T) {
	tb := NewTable("t", intSchema())
	tb.SetChunkTarget(8)
	fillSeq(t, tb, 24) // 3 sealed chunks
	firstChunk := tb.Snapshot().Chunks[0].Cols[0]

	// Remove rows only from the middle chunk.
	tb.Remove([]int{9, 12})
	if tb.NumRows() != 22 {
		t.Fatalf("rows=%d", tb.NumRows())
	}
	if got := tb.Snapshot().Chunks[0].Cols[0]; got != firstChunk {
		t.Error("untouched chunk should be shared, not rewritten")
	}
	// Values: 0..8, 10, 11, 13..23 renumbered from hseq 2.
	view := tb.Snapshot()
	want := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 11, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23}
	for i, w := range want {
		if got := view.Get(0, i).I; got != w {
			t.Fatalf("row %d = %d, want %d", i, got, w)
		}
	}
	if tb.Hseq() != 2 {
		t.Fatalf("hseq=%d", tb.Hseq())
	}
}

// TestSetChunkTargetSealsOversizedTail: shrinking the target below the
// current tail size must seal the tail instead of leaving later appends
// with negative headroom.
func TestSetChunkTargetSealsOversizedTail(t *testing.T) {
	tb := NewTable("t", intSchema())
	fillSeq(t, tb, 10) // tail holds 10 rows under the default target
	tb.SetChunkTarget(5)
	if err := tb.AppendBatch([]*vector.Vector{vector.FromInts([]int64{10, 11, 12})}); err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 13 {
		t.Fatalf("rows=%d", tb.NumRows())
	}
	checkSeq(t, tb)
}

func TestStatsCountsDropped(t *testing.T) {
	tb := NewTable("t", intSchema())
	tb.SetChunkTarget(4)
	fillSeq(t, tb, 10)
	tb.DropPrefix(6)
	tb.Remove([]int{0})
	chunks, rows, dropped := tb.Stats()
	if rows != 3 || dropped != 7 {
		t.Fatalf("rows=%d dropped=%d", rows, dropped)
	}
	if chunks < 1 {
		t.Fatalf("chunks=%d", chunks)
	}
}

// TestPropChunkedMatchesFlatModel drives a chunked table and a flat
// reference slice through the same random op sequence and compares
// content, head OID, and pre-op snapshot stability after every step.
func TestPropChunkedMatchesFlatModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		tb := NewTable("t", intSchema())
		tb.SetChunkTarget(1 + rng.Intn(9))
		var model []int64 // model[i] is the value at position i
		next := int64(0)
		var hseq int64

		for step := 0; step < 60; step++ {
			prior := tb.Snapshot()
			priorVals := append([]int64(nil), model...)

			switch op := rng.Intn(4); {
			case op == 0 || len(model) == 0: // append batch
				n := 1 + rng.Intn(12)
				vals := make([]int64, n)
				for i := range vals {
					vals[i] = next
					next++
				}
				if err := tb.AppendBatch([]*vector.Vector{vector.FromInts(vals)}); err != nil {
					t.Fatal(err)
				}
				model = append(model, vals...)
			case op == 1: // drop prefix
				n := rng.Intn(len(model) + 1)
				tb.DropPrefix(n)
				model = model[n:]
				hseq += int64(n)
			case op == 2: // remove random sorted positions
				var pos []int
				for i := range model {
					if rng.Intn(3) == 0 {
						pos = append(pos, i)
					}
				}
				tb.Remove(pos)
				kept := model[:0]
				j := 0
				for i, v := range model {
					if j < len(pos) && pos[j] == i {
						j++
						continue
					}
					kept = append(kept, v)
				}
				hseq += int64(len(model) - len(kept))
				model = kept
			default: // truncate
				hseq += int64(len(model))
				tb.Truncate()
				model = model[:0]
			}

			if tb.NumRows() != len(model) {
				t.Fatalf("trial %d step %d: rows=%d model=%d", trial, step, tb.NumRows(), len(model))
			}
			if int64(tb.Hseq()) != hseq {
				t.Fatalf("trial %d step %d: hseq=%d model=%d", trial, step, tb.Hseq(), hseq)
			}
			view := tb.Snapshot()
			for i, w := range model {
				if got := view.Get(0, i).I; got != w {
					t.Fatalf("trial %d step %d row %d: %d, want %d", trial, step, i, got, w)
				}
			}
			// The snapshot taken before this op still reads the old content.
			for i, w := range priorVals {
				if got := prior.Get(0, i).I; got != w {
					t.Fatalf("trial %d step %d: prior snapshot row %d = %d, want %d",
						trial, step, i, got, w)
				}
			}
		}
	}
}

// TestStressSnapshotStability is the -race stress for the consumption
// contract: snapshots taken before DropPrefix/Retain keep reading correct
// values while appends and consumption run concurrently. Every row's
// value is its OID, so any view is self-checking against the head OID of
// the moment it was taken.
func TestStressSnapshotStability(t *testing.T) {
	tb := NewTable("t", intSchema())
	tb.SetChunkTarget(16)
	const total = 4000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Appender: values follow the OID sequence.
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := int64(0)
		for next < total {
			n := int64(1 + next%7)
			vals := make([]int64, 0, n)
			for i := int64(0); i < n && next < total; i++ {
				vals = append(vals, next)
				next++
			}
			if err := tb.AppendBatch([]*vector.Vector{vector.FromInts(vals)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Consumer: alternates DropPrefix and Remove-from-the-front.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(11))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			n := tb.NumRows()
			if n == 0 {
				runtime.Gosched()
				continue
			}
			k := 1 + rng.Intn(n)
			if i%2 == 0 {
				tb.DropPrefix(k)
			} else {
				pos := make([]int, k)
				for j := range pos {
					pos[j] = j
				}
				tb.Remove(pos)
			}
		}
	}()

	// Readers: every snapshot must be internally consistent — value at
	// view row i equals the view's first value plus i (both consumption
	// paths only ever remove prefixes here).
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				view := tb.Snapshot()
				n := view.NumRows()
				if n == 0 {
					continue
				}
				first := view.Get(0, 0).I
				for i := 0; i < n; i++ {
					if got := view.Get(0, i).I; got != first+int64(i) {
						t.Errorf("snapshot row %d = %d, want %d", i, got, first+int64(i))
						return
					}
				}
			}
		}()
	}

	// Wait until everything appended has been consumed, then stop the
	// consumer and readers (the appender exits on its own).
	for tb.NumRows() > 0 || int64(tb.Hseq()) < total {
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()
}
