package storage

import (
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/vector"
)

func schemaAB() *catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Name: "a", Type: vector.Int64},
		catalog.Column{Name: "b", Type: vector.String},
	)
}

func rowIS(i int64, s string) []vector.Value {
	return []vector.Value{vector.NewInt(i), vector.NewString(s)}
}

func TestAppendRowAndSnapshot(t *testing.T) {
	tb := NewTable("t", schemaAB())
	if err := tb.AppendRow(rowIS(1, "x")); err != nil {
		t.Fatal(err)
	}
	if err := tb.AppendRow(rowIS(2, "y")); err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	snap := tb.Snapshot().Columns()
	if snap[0].Get(1).I != 2 || snap[1].Get(0).S != "x" {
		t.Errorf("snapshot: %v %v", snap[0], snap[1])
	}
}

func TestAppendRowArityError(t *testing.T) {
	tb := NewTable("t", schemaAB())
	if err := tb.AppendRow([]vector.Value{vector.NewInt(1)}); err == nil {
		t.Error("short row should fail")
	}
}

func TestAppendBatchTypeError(t *testing.T) {
	tb := NewTable("t", schemaAB())
	err := tb.AppendBatch([]*vector.Vector{
		vector.FromFloats([]float64{1}), vector.FromStrings([]string{"x"}),
	})
	if err == nil {
		t.Error("wrong column type should fail")
	}
	err = tb.AppendBatch([]*vector.Vector{vector.FromInts([]int64{1})})
	if err == nil {
		t.Error("wrong column count should fail")
	}
	err = tb.AppendBatch([]*vector.Vector{
		vector.FromInts([]int64{1, 2}), vector.FromStrings([]string{"x"}),
	})
	if err == nil {
		t.Error("ragged batch should fail")
	}
}

func TestSnapshotStableAcrossAppends(t *testing.T) {
	tb := NewTable("t", schemaAB())
	_ = tb.AppendRow(rowIS(1, "x"))
	snap := tb.Snapshot().Columns()
	for i := 0; i < 100; i++ {
		_ = tb.AppendRow(rowIS(int64(i), "later"))
	}
	if snap[0].Len() != 1 || snap[0].Get(0).I != 1 {
		t.Errorf("snapshot changed: %v", snap[0])
	}
}

func TestDropPrefixAdvancesHseq(t *testing.T) {
	tb := NewTable("t", schemaAB())
	for i := int64(0); i < 5; i++ {
		_ = tb.AppendRow(rowIS(i, "r"))
	}
	tb.DropPrefix(3)
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	if tb.Hseq() != 3 {
		t.Errorf("Hseq = %d, want 3", tb.Hseq())
	}
	if tb.Snapshot().Get(0, 0).I != 3 {
		t.Error("wrong survivor")
	}
}

func TestRemoveAndRetain(t *testing.T) {
	tb := NewTable("t", schemaAB())
	for i := int64(0); i < 5; i++ {
		_ = tb.AppendRow(rowIS(i, "r"))
	}
	tb.Remove([]int{1, 3})
	if tb.NumRows() != 3 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	snap := tb.Snapshot()
	want := []int64{0, 2, 4}
	for i, w := range want {
		if snap.Get(0, i).I != w {
			t.Errorf("row %d = %d, want %d", i, snap.Get(0, i).I, w)
		}
	}
	tb.Retain([]int{2})
	if tb.NumRows() != 1 || tb.Snapshot().Get(0, 0).I != 4 {
		t.Error("Retain failed")
	}
	tb.Remove(nil) // no-op
	if tb.NumRows() != 1 {
		t.Error("Remove(nil) should be a no-op")
	}
}

func TestTruncate(t *testing.T) {
	tb := NewTable("t", schemaAB())
	for i := int64(0); i < 4; i++ {
		_ = tb.AppendRow(rowIS(i, "r"))
	}
	tb.Truncate()
	if tb.NumRows() != 0 {
		t.Errorf("NumRows = %d after truncate", tb.NumRows())
	}
	if tb.Hseq() != 4 {
		t.Errorf("Hseq = %d, want 4", tb.Hseq())
	}
}

func TestConcurrentAppendAndSnapshot(t *testing.T) {
	tb := NewTable("t", schemaAB())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 250; i++ {
				_ = tb.AppendRow(rowIS(i, "c"))
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				view := tb.Snapshot()
				if view.NumCols() != 2 {
					t.Error("wrong column count")
					return
				}
				for _, ch := range view.Chunks {
					if ch.Cols[0].Len() != ch.Cols[1].Len() {
						t.Error("ragged snapshot chunk")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if tb.NumRows() != 1000 {
		t.Errorf("NumRows = %d, want 1000", tb.NumRows())
	}
}

func TestRelationRoundTrip(t *testing.T) {
	r := NewRelation(schemaAB())
	r.AppendRow(rowIS(7, "seven"))
	r.AppendRow(rowIS(8, "eight"))
	if r.NumRows() != 2 {
		t.Fatalf("NumRows = %d", r.NumRows())
	}
	row := r.Row(1)
	if row[0].I != 8 || row[1].S != "eight" {
		t.Errorf("Row(1) = %v", row)
	}
}

func TestRelationTake(t *testing.T) {
	r := NewRelation(schemaAB())
	for i := int64(0); i < 4; i++ {
		r.AppendRow(rowIS(i, "r"))
	}
	got := r.Take([]int{3, 1})
	if got.NumRows() != 2 || got.Row(0)[0].I != 3 || got.Row(1)[0].I != 1 {
		t.Errorf("Take: %v", got)
	}
}

func TestRelationAppendRelation(t *testing.T) {
	a := NewRelation(schemaAB())
	a.AppendRow(rowIS(1, "x"))
	b := NewRelation(schemaAB())
	b.AppendRow(rowIS(2, "y"))
	a.AppendRelation(b)
	if a.NumRows() != 2 || a.Row(1)[0].I != 2 {
		t.Errorf("AppendRelation: %v", a)
	}
}

func TestRelationString(t *testing.T) {
	r := NewRelation(schemaAB())
	r.AppendRow(rowIS(1, "x"))
	s := r.String()
	if s == "" {
		t.Error("empty String()")
	}
}

func TestTableAppendRelation(t *testing.T) {
	tb := NewTable("t", schemaAB())
	r := NewRelation(schemaAB())
	r.AppendRow(rowIS(1, "x"))
	if err := tb.AppendRelation(r); err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 1 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestSnapshotRelation(t *testing.T) {
	tb := NewTable("t", schemaAB())
	_ = tb.AppendRow(rowIS(1, "x"))
	r := tb.SnapshotRelation()
	if r.NumRows() != 1 || r.Schema.Index("b") != 1 {
		t.Errorf("SnapshotRelation: %v", r)
	}
}
