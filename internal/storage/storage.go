// Package storage provides the in-memory column tables of the kernel and
// the Relation value that flows between operators. Tables are
// append-optimized: inserts extend every column; snapshots are cheap
// read-only views; deletions (used by baskets to drop consumed tuples)
// compact in place.
package storage

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/vector"
)

// Relation is a transient result set: a schema plus aligned columns. It is
// what the executor produces and what emitters consume.
type Relation struct {
	Schema *catalog.Schema
	Cols   []*vector.Vector
}

// NewRelation allocates an empty relation with the given schema.
func NewRelation(s *catalog.Schema) *Relation {
	cols := make([]*vector.Vector, s.Len())
	for i, c := range s.Columns {
		cols[i] = vector.New(c.Type)
	}
	return &Relation{Schema: s, Cols: cols}
}

// NumRows returns the row count.
func (r *Relation) NumRows() int {
	if len(r.Cols) == 0 {
		return 0
	}
	return r.Cols[0].Len()
}

// Row materializes row i as values.
func (r *Relation) Row(i int) []vector.Value {
	out := make([]vector.Value, len(r.Cols))
	for c, col := range r.Cols {
		out[c] = col.Get(i)
	}
	return out
}

// AppendRow appends one row of values.
func (r *Relation) AppendRow(row []vector.Value) {
	for c, col := range r.Cols {
		col.AppendValue(row[c])
	}
}

// AppendRelation appends all rows of other (schemas must be compatible).
func (r *Relation) AppendRelation(other *Relation) {
	for c, col := range r.Cols {
		col.AppendVector(other.Cols[c])
	}
}

// Take materializes the rows at the given positions into a new relation.
func (r *Relation) Take(pos []int) *Relation {
	out := &Relation{Schema: r.Schema, Cols: make([]*vector.Vector, len(r.Cols))}
	for i, col := range r.Cols {
		out.Cols[i] = col.Take(pos)
	}
	return out
}

// String renders the relation as an aligned text table (for debugging and
// the CLI).
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Schema.Names(), "\t"))
	b.WriteByte('\n')
	for i := 0; i < r.NumRows(); i++ {
		for c := range r.Cols {
			if c > 0 {
				b.WriteByte('\t')
			}
			b.WriteString(r.Cols[c].Get(i).String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DefaultChunkTarget is the sealing threshold: the active tail chunk is
// frozen once it reaches this many rows. It bounds both the granularity
// of O(1) consumption (DropPrefix releases whole sealed chunks) and the
// work Retain redoes when a chunk is partially rewritten.
const DefaultChunkTarget = 4096

// sealedChunk is one frozen run of rows. Its vectors are never mutated
// after sealing, so snapshots may share them without copying.
type sealedChunk struct {
	cols []*vector.Vector
	n    int
}

// Table is a named, concurrency-safe column table implementing
// catalog.Source. Storage is chunked: appends fill an active tail chunk
// that is sealed (frozen) at chunkTarget rows; consumption releases whole
// sealed chunks in O(1) and rewrites only the chunks it actually touches.
// Snapshots share chunk references, so they cost no tuple copying and
// stay valid across later appends and consumption.
type Table struct {
	name   string
	schema *catalog.Schema

	mu     sync.RWMutex
	sealed []sealedChunk
	// tail is the active chunk: append-only vectors holding tailRows rows.
	// Snapshots window it (appends past the window's capped length never
	// disturb published views).
	tail     []*vector.Vector
	tailRows int
	// rows is the total live count across sealed chunks and the tail.
	rows int
	// dropped counts tuples consumed from the front so far; it is the OID
	// of the oldest live tuple, keeping the table's OID sequence stable
	// across consumption (see bat.View).
	dropped     int64
	chunkTarget int
	// version counts mutations (appends, removals); cached derivations —
	// a streaming join's table-side hash — invalidate when it moves.
	version uint64
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema *catalog.Schema) *Table {
	t := &Table{name: name, schema: schema, chunkTarget: DefaultChunkTarget}
	t.tail = t.freshCols()
	return t
}

func (t *Table) freshCols() []*vector.Vector {
	cols := make([]*vector.Vector, t.schema.Len())
	for i, c := range t.schema.Columns {
		cols[i] = vector.New(c.Type)
	}
	return cols
}

// SetChunkTarget overrides the sealing threshold (tests and tuning). A
// tail already at or past the new threshold is sealed immediately so
// later appends never see negative headroom.
func (t *Table) SetChunkTarget(n int) {
	if n < 1 {
		n = 1
	}
	t.mu.Lock()
	t.chunkTarget = n
	if t.tailRows >= n {
		t.seal()
	}
	t.mu.Unlock()
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema implements catalog.Source.
func (t *Table) Schema() *catalog.Schema { return t.schema }

// NumRows returns the current row count.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// Hseq returns the OID of the first live tuple (tuples dropped so far).
func (t *Table) Hseq() bat.OID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return bat.OID(t.dropped)
}

// Version returns the table's mutation counter: it moves on every
// append or removal, so cached derivations (a streaming join's
// table-side hash index) can detect change cheaply.
func (t *Table) Version() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// Stats reports the physical layout: resident chunk count (sealed plus a
// non-empty tail), live rows, and the cumulative count of tuples consumed
// from the front over the table's lifetime.
func (t *Table) Stats() (chunks, rows int, dropped int64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	chunks = len(t.sealed)
	if t.tailRows > 0 {
		chunks++
	}
	return chunks, t.rows, t.dropped
}

// seal freezes the tail as a sealed chunk and starts a fresh one. The
// caller must hold mu.
func (t *Table) seal() {
	if t.tailRows == 0 {
		return
	}
	t.sealed = append(t.sealed, sealedChunk{cols: t.tail, n: t.tailRows})
	t.tail = t.freshCols()
	t.tailRows = 0
}

// AppendRow appends one row. The row must match the schema.
func (t *Table) AppendRow(row []vector.Value) error {
	if len(row) != t.schema.Len() {
		return fmt.Errorf("storage: %s expects %d values, got %d", t.name, t.schema.Len(), len(row))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, col := range t.tail {
		col.AppendValue(row[i])
	}
	t.tailRows++
	t.rows++
	t.version++
	if t.tailRows >= t.chunkTarget {
		t.seal()
	}
	return nil
}

// AppendBatch appends whole column batches; all must have equal length
// and match the schema's types. Large batches are split so no chunk
// exceeds the sealing threshold.
func (t *Table) AppendBatch(cols []*vector.Vector) error {
	if len(cols) != t.schema.Len() {
		return fmt.Errorf("storage: %s expects %d columns, got %d", t.name, t.schema.Len(), len(cols))
	}
	n := -1
	for i, c := range cols {
		if c.Type() != t.schema.Columns[i].Type {
			return fmt.Errorf("storage: %s column %s expects %s, got %s",
				t.name, t.schema.Columns[i].Name, t.schema.Columns[i].Type, c.Type())
		}
		if n == -1 {
			n = c.Len()
		} else if c.Len() != n {
			return fmt.Errorf("storage: ragged batch for %s", t.name)
		}
	}
	if n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.version++
	for off := 0; off < n; {
		take := t.chunkTarget - t.tailRows
		if take > n-off {
			take = n - off
		}
		if off == 0 && take == n {
			for i, col := range t.tail {
				col.AppendVector(cols[i])
			}
		} else {
			for i, col := range t.tail {
				col.AppendVector(cols[i].Window(off, off+take))
			}
		}
		t.tailRows += take
		t.rows += take
		off += take
		if t.tailRows >= t.chunkTarget {
			t.seal()
		}
	}
	return nil
}

// AppendRelation appends all rows of a relation (types must match).
func (t *Table) AppendRelation(r *Relation) error { return t.AppendBatch(r.Cols) }

// Snapshot implements catalog.Source: a chunked view sharing the sealed
// chunks by reference. Only the tail is windowed (its vectors keep
// growing); sealed chunks cost nothing per snapshot. The view always
// carries at least one chunk so scans see the column layout even when the
// table is empty.
func (t *Table) Snapshot() bat.View {
	t.mu.RLock()
	defer t.mu.RUnlock()
	chunks := make([]bat.Chunk, 0, len(t.sealed)+1)
	base := bat.OID(t.dropped)
	for _, c := range t.sealed {
		chunks = append(chunks, bat.Chunk{Base: base, Cols: c.cols})
		base += bat.OID(c.n)
	}
	tcols := make([]*vector.Vector, len(t.tail))
	for i, col := range t.tail {
		tcols[i] = col.Window(0, t.tailRows)
	}
	chunks = append(chunks, bat.Chunk{Base: base, Cols: tcols})
	return bat.View{Hseq: bat.OID(t.dropped), Chunks: chunks}
}

// SnapshotRelation bundles the snapshot's columns with the schema.
func (t *Table) SnapshotRelation() *Relation {
	return &Relation{Schema: t.schema, Cols: t.Snapshot().Columns()}
}

// DropPrefix removes the first n tuples (consumed stream data). Whole
// sealed chunks are released in O(1); only the boundary chunk is trimmed
// (by re-windowing — still no copying). Snapshots taken before the call
// stay valid: they hold their own chunk references.
func (t *Table) DropPrefix(n int) {
	if n <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.version++
	if n > t.rows {
		n = t.rows
	}
	rem := n
	for len(t.sealed) > 0 && rem >= t.sealed[0].n {
		rem -= t.sealed[0].n
		t.sealed[0] = sealedChunk{} // release the vectors
		t.sealed = t.sealed[1:]
	}
	if rem > 0 && len(t.sealed) > 0 {
		c := t.sealed[0]
		w := make([]*vector.Vector, len(c.cols))
		for i, col := range c.cols {
			w[i] = col.Window(rem, c.n)
		}
		t.sealed[0] = sealedChunk{cols: w, n: c.n - rem}
		rem = 0
	}
	if rem > 0 {
		// The drop reaches into the tail: freeze the surviving suffix as a
		// windowed sealed chunk and start a fresh tail. No tuple copying.
		if rem < t.tailRows {
			w := make([]*vector.Vector, len(t.tail))
			for i, col := range t.tail {
				w[i] = col.Window(rem, t.tailRows)
			}
			t.sealed = append(t.sealed, sealedChunk{cols: w, n: t.tailRows - rem})
		}
		t.tail = t.freshCols()
		t.tailRows = 0
	}
	t.rows -= n
	t.dropped += int64(n)
}

// Retain keeps only the rows at the given sorted positions — the basket
// expression's "remove everything I referenced" side effect inverted.
// Chunks with no removals are shared untouched; chunks losing rows are
// rewritten in isolation, so prior snapshots stay valid and the cost is
// proportional to the chunks touched, not the table depth.
func (t *Table) Retain(pos []int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.version++
	n := t.rows
	newSealed := t.sealed[:0:0]
	i, base := 0, 0
	for _, c := range t.sealed {
		// Fast path: the chunk's whole position range is present (positions
		// are sorted and unique, so checking the two endpoints suffices).
		if i+c.n <= len(pos) && pos[i] == base && pos[i+c.n-1] == base+c.n-1 {
			newSealed = append(newSealed, c)
			i, base = i+c.n, base+c.n
			continue
		}
		j := i
		for j < len(pos) && pos[j] < base+c.n {
			j++
		}
		if kept := j - i; kept > 0 {
			newSealed = append(newSealed, sealedChunk{cols: takeCols(c.cols, pos[i:j], base), n: kept})
		}
		i, base = j, base+c.n
	}
	t.sealed = newSealed
	// The tail is rewritten (into fresh, still-appendable vectors) only
	// when it loses rows.
	if kept := len(pos) - i; kept != t.tailRows {
		t.tail = takeCols(t.tail, pos[i:], base)
		t.tailRows = kept
	}
	t.rows = len(pos)
	t.dropped += int64(n - len(pos))
}

// takeCols gathers the rows at the given global positions (shifted down
// by base) out of every column into fresh vectors.
func takeCols(cols []*vector.Vector, pos []int, base int) []*vector.Vector {
	out := make([]*vector.Vector, len(cols))
	for i, col := range cols {
		out[i] = vector.NewWithCap(col.Type(), len(pos))
		out[i].AppendTake(col, pos, base)
	}
	return out
}

// Remove deletes the rows at the given sorted positions. It is the dual
// of Retain driven by the (usually much shorter) drop list: chunks with
// no dropped rows are shared untouched, so the cost is proportional to
// the drop list and the chunks it lands in — not the table depth.
func (t *Table) Remove(pos []int) {
	if len(pos) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.version++
	n := t.rows
	newSealed := t.sealed[:0:0]
	i, base := 0, 0
	for _, c := range t.sealed {
		j := i
		for j < len(pos) && pos[j] < base+c.n {
			j++
		}
		switch dropped := j - i; {
		case dropped == 0:
			newSealed = append(newSealed, c)
		case dropped < c.n:
			keep := bat.Complement(base, base+c.n, pos[i:j])
			newSealed = append(newSealed, sealedChunk{cols: takeCols(c.cols, keep, base), n: len(keep)})
		}
		i, base = j, base+c.n
	}
	t.sealed = newSealed
	if td := len(pos) - i; td > 0 {
		keep := bat.Complement(base, base+t.tailRows, pos[i:])
		t.tail = takeCols(t.tail, keep, base)
		t.tailRows = len(keep)
	}
	t.rows = n - len(pos)
	t.dropped += int64(len(pos))
}

// Truncate removes all rows, advancing the OID base as if every tuple had
// been consumed. Prior snapshots stay valid.
func (t *Table) Truncate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.version++
	t.sealed = nil
	t.tail = t.freshCols()
	t.tailRows = 0
	t.dropped += int64(t.rows)
	t.rows = 0
}
