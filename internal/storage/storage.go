// Package storage provides the in-memory column tables of the kernel and
// the Relation value that flows between operators. Tables are
// append-optimized: inserts extend every column; snapshots are cheap
// read-only views; deletions (used by baskets to drop consumed tuples)
// compact in place.
package storage

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/vector"
)

// Relation is a transient result set: a schema plus aligned columns. It is
// what the executor produces and what emitters consume.
type Relation struct {
	Schema *catalog.Schema
	Cols   []*vector.Vector
}

// NewRelation allocates an empty relation with the given schema.
func NewRelation(s *catalog.Schema) *Relation {
	cols := make([]*vector.Vector, s.Len())
	for i, c := range s.Columns {
		cols[i] = vector.New(c.Type)
	}
	return &Relation{Schema: s, Cols: cols}
}

// NumRows returns the row count.
func (r *Relation) NumRows() int {
	if len(r.Cols) == 0 {
		return 0
	}
	return r.Cols[0].Len()
}

// Row materializes row i as values.
func (r *Relation) Row(i int) []vector.Value {
	out := make([]vector.Value, len(r.Cols))
	for c, col := range r.Cols {
		out[c] = col.Get(i)
	}
	return out
}

// AppendRow appends one row of values.
func (r *Relation) AppendRow(row []vector.Value) {
	for c, col := range r.Cols {
		col.AppendValue(row[c])
	}
}

// AppendRelation appends all rows of other (schemas must be compatible).
func (r *Relation) AppendRelation(other *Relation) {
	for c, col := range r.Cols {
		col.AppendVector(other.Cols[c])
	}
}

// Take materializes the rows at the given positions into a new relation.
func (r *Relation) Take(pos []int) *Relation {
	out := &Relation{Schema: r.Schema, Cols: make([]*vector.Vector, len(r.Cols))}
	for i, col := range r.Cols {
		out.Cols[i] = col.Take(pos)
	}
	return out
}

// String renders the relation as an aligned text table (for debugging and
// the CLI).
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Schema.Names(), "\t"))
	b.WriteByte('\n')
	for i := 0; i < r.NumRows(); i++ {
		for c := range r.Cols {
			if c > 0 {
				b.WriteByte('\t')
			}
			b.WriteString(r.Cols[c].Get(i).String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table is a named, concurrency-safe column table. It implements
// catalog.Source.
type Table struct {
	name   string
	schema *catalog.Schema

	mu   sync.RWMutex
	cols []*vector.Vector
	// dropped counts tuples compacted away from the front; it keeps the
	// table's OID sequence stable across consumption (see bat.DropPrefix).
	dropped int64
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema *catalog.Schema) *Table {
	cols := make([]*vector.Vector, schema.Len())
	for i, c := range schema.Columns {
		cols[i] = vector.New(c.Type)
	}
	return &Table{name: name, schema: schema, cols: cols}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema implements catalog.Source.
func (t *Table) Schema() *catalog.Schema { return t.schema }

// NumRows returns the current row count.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.cols) == 0 {
		return 0
	}
	return t.cols[0].Len()
}

// Hseq returns the OID of the first live tuple (tuples dropped so far).
func (t *Table) Hseq() bat.OID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return bat.OID(t.dropped)
}

// AppendRow appends one row. The row must match the schema.
func (t *Table) AppendRow(row []vector.Value) error {
	if len(row) != len(t.cols) {
		return fmt.Errorf("storage: %s expects %d values, got %d", t.name, len(t.cols), len(row))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, col := range t.cols {
		col.AppendValue(row[i])
	}
	return nil
}

// AppendBatch appends whole column chunks; all must have equal length and
// match the schema's types.
func (t *Table) AppendBatch(cols []*vector.Vector) error {
	if len(cols) != len(t.cols) {
		return fmt.Errorf("storage: %s expects %d columns, got %d", t.name, len(t.cols), len(cols))
	}
	n := -1
	for i, c := range cols {
		if c.Type() != t.schema.Columns[i].Type {
			return fmt.Errorf("storage: %s column %s expects %s, got %s",
				t.name, t.schema.Columns[i].Name, t.schema.Columns[i].Type, c.Type())
		}
		if n == -1 {
			n = c.Len()
		} else if c.Len() != n {
			return fmt.Errorf("storage: ragged batch for %s", t.name)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, col := range t.cols {
		col.AppendVector(cols[i])
	}
	return nil
}

// AppendRelation appends all rows of a relation (types must match).
func (t *Table) AppendRelation(r *Relation) error { return t.AppendBatch(r.Cols) }

// Snapshot implements catalog.Source: it returns read-only views of the
// current columns. Views stay valid across later appends (appends may
// reallocate, never mutate shared prefixes).
func (t *Table) Snapshot() []*vector.Vector {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*vector.Vector, len(t.cols))
	for i, col := range t.cols {
		out[i] = col.Window(0, col.Len())
	}
	return out
}

// SnapshotRelation bundles Snapshot with the schema.
func (t *Table) SnapshotRelation() *Relation {
	return &Relation{Schema: t.schema, Cols: t.Snapshot()}
}

// DropPrefix removes the first n tuples (consumed stream data). The
// surviving suffix is copied into fresh columns so snapshots taken before
// the call stay valid.
func (t *Table) DropPrefix(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, col := range t.cols {
		t.cols[i] = col.Window(n, col.Len()).Clone()
	}
	t.dropped += int64(n)
}

// Retain keeps only the rows at the given sorted positions — the basket
// expression's "remove everything I referenced" side effect inverted. The
// survivors are copied into fresh columns so prior snapshots stay valid.
func (t *Table) Retain(pos []int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	if len(t.cols) > 0 {
		n = t.cols[0].Len()
	}
	for i, col := range t.cols {
		t.cols[i] = col.Take(pos)
	}
	t.dropped += int64(n - len(pos))
}

// Remove deletes the rows at the given sorted positions.
func (t *Table) Remove(pos []int) {
	if len(pos) == 0 {
		return
	}
	t.mu.Lock()
	n := 0
	if len(t.cols) > 0 {
		n = t.cols[0].Len()
	}
	t.mu.Unlock()
	keep := bat.Difference(bat.All(n), bat.Candidates(pos))
	t.Retain(keep)
}

// Truncate removes all rows, advancing the OID base as if every tuple had
// been consumed. Prior snapshots stay valid.
func (t *Table) Truncate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.cols) == 0 {
		return
	}
	n := t.cols[0].Len()
	for i := range t.cols {
		t.cols[i] = vector.New(t.schema.Columns[i].Type)
	}
	t.dropped += int64(n)
}
