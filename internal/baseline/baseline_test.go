package baseline

import (
	"testing"

	"repro/internal/vector"
)

func tup(vals ...int64) Tuple {
	out := make(Tuple, len(vals))
	for i, v := range vals {
		out[i] = vector.NewInt(v)
	}
	return out
}

func TestFilterChain(t *testing.T) {
	e := New()
	var got []Tuple
	q := &Query{
		Name: "q",
		Ops: []Operator{
			&Filter{Pred: func(t Tuple) bool { return t[0].I > 10 }},
			&Map{Fn: func(t Tuple) Tuple { return Tuple{vector.NewInt(t[0].I * 2)} }},
		},
		Sink: func(t Tuple) { got = append(got, t) },
	}
	if err := e.Subscribe("s", q); err != nil {
		t.Fatal(err)
	}
	e.PushBatch("s", []Tuple{tup(5), tup(15), tup(25)})
	if len(got) != 2 || got[0][0].I != 30 || got[1][0].I != 50 {
		t.Errorf("got = %v", got)
	}
	if q.Emitted() != 2 || e.Pushed() != 3 {
		t.Errorf("counters: emitted=%d pushed=%d", q.Emitted(), e.Pushed())
	}
}

func TestRangeFilter(t *testing.T) {
	rf := &RangeFilter{Attr: 0, Lo: vector.NewInt(10), Hi: vector.NewInt(20)}
	cases := []struct {
		v    int64
		want bool
	}{{5, false}, {10, true}, {15, true}, {20, false}, {25, false}}
	for _, c := range cases {
		if _, ok := rf.Process(tup(c.v)); ok != c.want {
			t.Errorf("RangeFilter(%d) = %v, want %v", c.v, ok, c.want)
		}
	}
	// NULL never qualifies.
	if _, ok := rf.Process(Tuple{vector.NullValue(vector.Int64)}); ok {
		t.Error("NULL should not qualify")
	}
	// Unbounded sides.
	open := &RangeFilter{Attr: 0, Lo: vector.NullValue(vector.Int64), Hi: vector.NewInt(20)}
	if _, ok := open.Process(tup(-100)); !ok {
		t.Error("unbounded low should accept")
	}
}

func TestTumblingAggregate(t *testing.T) {
	e := New()
	var got []Tuple
	q := &Query{
		Name: "w",
		Ops:  []Operator{&TumblingAggregate{Attr: 0, Size: 3}},
		Sink: func(t Tuple) { got = append(got, t) },
	}
	_ = e.Subscribe("s", q)
	e.PushBatch("s", []Tuple{tup(1), tup(2), tup(3), tup(4), tup(5)})
	if len(got) != 1 {
		t.Fatalf("windows = %d", len(got))
	}
	w := got[0]
	if w[0].I != 3 || w[1].F != 6 || w[2].F != 1 || w[3].F != 3 {
		t.Errorf("window = %v", w)
	}
	// Flush emits the partial window.
	e.Flush("s")
	if len(got) != 2 {
		t.Fatalf("after flush: %d", len(got))
	}
	if got[1][0].I != 2 || got[1][1].F != 9 {
		t.Errorf("partial = %v", got[1])
	}
}

func TestMultipleQueriesPerStream(t *testing.T) {
	e := New()
	counts := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		_ = e.Subscribe("s", &Query{
			Name: "q",
			Ops:  []Operator{&Filter{Pred: func(t Tuple) bool { return t[0].I%int64(i+1) == 0 }}},
			Sink: func(Tuple) { counts[i]++ },
		})
	}
	for v := int64(1); v <= 12; v++ {
		e.Push("s", tup(v))
	}
	if counts[0] != 12 || counts[1] != 6 || counts[2] != 4 {
		t.Errorf("counts = %v", counts)
	}
}

func TestSubscribeValidation(t *testing.T) {
	e := New()
	if err := e.Subscribe("s", nil); err == nil {
		t.Error("nil query should fail")
	}
	if err := e.Subscribe("s", &Query{}); err == nil {
		t.Error("unnamed query should fail")
	}
}

func TestIsolatedStreams(t *testing.T) {
	e := New()
	var a, b int
	_ = e.Subscribe("s1", &Query{Name: "a", Sink: func(Tuple) { a++ }})
	_ = e.Subscribe("s2", &Query{Name: "b", Sink: func(Tuple) { b++ }})
	e.Push("s1", tup(1))
	if a != 1 || b != 0 {
		t.Errorf("a=%d b=%d", a, b)
	}
}
