// Package baseline implements a classic tuple-at-a-time data-stream
// engine, the processing model of the first-generation DSMS designs the
// paper compares against (§4: "Tuple-at-a-time processing, used in other
// systems, incurs a significant overhead while batch processing provides
// the flexibility for better query scheduling"). Each arriving tuple is
// pushed individually through every standing query's operator chain. It
// exists as the comparator for experiment E2.
package baseline

import (
	"fmt"
	"sync"

	"repro/internal/vector"
)

// Tuple is one stream event.
type Tuple = []vector.Value

// Operator is one stage of a query chain processing a single tuple at a
// time. It returns the transformed tuple and whether it survives.
type Operator interface {
	// Process handles one tuple.
	Process(t Tuple) (Tuple, bool)
	// Flush emits any buffered state (window operators); nil otherwise.
	Flush() []Tuple
}

// Filter drops tuples failing a predicate.
type Filter struct {
	Pred func(Tuple) bool
}

// Process implements Operator.
func (f *Filter) Process(t Tuple) (Tuple, bool) { return t, f.Pred(t) }

// Flush implements Operator.
func (f *Filter) Flush() []Tuple { return nil }

// Map transforms each tuple.
type Map struct {
	Fn func(Tuple) Tuple
}

// Process implements Operator.
func (m *Map) Process(t Tuple) (Tuple, bool) { return m.Fn(t), true }

// Flush implements Operator.
func (m *Map) Flush() []Tuple { return nil }

// RangeFilter selects attr in [Lo, Hi) — the baseline twin of the
// kernel's range select, specialized per tuple.
type RangeFilter struct {
	Attr   int
	Lo, Hi vector.Value
}

// Process implements Operator.
func (r *RangeFilter) Process(t Tuple) (Tuple, bool) {
	v := t[r.Attr]
	if v.Null {
		return t, false
	}
	if !r.Lo.Null && vector.Compare(v, r.Lo) < 0 {
		return t, false
	}
	if !r.Hi.Null && vector.Compare(v, r.Hi) >= 0 {
		return t, false
	}
	return t, true
}

// Flush implements Operator.
func (r *RangeFilter) Flush() []Tuple { return nil }

// TumblingAggregate maintains a count-based tumbling window over one
// numeric attribute and emits one {count, sum, min, max} tuple per window
// — per-tuple state updates, the way tuple-at-a-time engines implement
// windows.
type TumblingAggregate struct {
	Attr int
	Size int

	n        int
	sum      float64
	min, max float64
}

// Process implements Operator.
func (w *TumblingAggregate) Process(t Tuple) (Tuple, bool) {
	v := t[w.Attr].AsFloat()
	if w.n == 0 {
		w.min, w.max = v, v
	} else {
		if v < w.min {
			w.min = v
		}
		if v > w.max {
			w.max = v
		}
	}
	w.n++
	w.sum += v
	if w.n < w.Size {
		return nil, false
	}
	out := Tuple{
		vector.NewInt(int64(w.n)),
		vector.NewFloat(w.sum),
		vector.NewFloat(w.min),
		vector.NewFloat(w.max),
	}
	w.n, w.sum = 0, 0
	return out, true
}

// Flush implements Operator.
func (w *TumblingAggregate) Flush() []Tuple {
	if w.n == 0 {
		return nil
	}
	out := Tuple{
		vector.NewInt(int64(w.n)),
		vector.NewFloat(w.sum),
		vector.NewFloat(w.min),
		vector.NewFloat(w.max),
	}
	w.n, w.sum = 0, 0
	return []Tuple{out}
}

// Query is one standing query: an operator chain and a sink.
type Query struct {
	Name string
	Ops  []Operator
	Sink func(Tuple)

	emitted int64
}

// Emitted returns the number of tuples the query delivered.
func (q *Query) Emitted() int64 { return q.emitted }

func (q *Query) push(t Tuple) {
	cur := t
	for _, op := range q.Ops {
		next, ok := op.Process(cur)
		if !ok {
			return
		}
		cur = next
	}
	q.emitted++
	if q.Sink != nil {
		q.Sink(cur)
	}
}

// Engine is the tuple-at-a-time stream engine: every Push traverses every
// subscribed query's chain immediately.
type Engine struct {
	mu      sync.Mutex
	queries map[string][]*Query // stream → standing queries
	pushed  int64
}

// New creates an empty baseline engine.
func New() *Engine {
	return &Engine{queries: map[string][]*Query{}}
}

// Subscribe registers a standing query on a stream.
func (e *Engine) Subscribe(stream string, q *Query) error {
	if q == nil || q.Name == "" {
		return fmt.Errorf("baseline: query needs a name")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.queries[stream] = append(e.queries[stream], q)
	return nil
}

// Push delivers one tuple: it is immediately processed, tuple-at-a-time,
// by every standing query on the stream.
func (e *Engine) Push(stream string, t Tuple) {
	e.mu.Lock()
	qs := e.queries[stream]
	e.pushed++
	e.mu.Unlock()
	for _, q := range qs {
		q.push(t)
	}
}

// PushBatch delivers tuples one by one — there is no bulk path in this
// model; the loop is the point.
func (e *Engine) PushBatch(stream string, ts []Tuple) {
	for _, t := range ts {
		e.Push(stream, t)
	}
}

// Flush drains buffered window state in every query.
func (e *Engine) Flush(stream string) {
	e.mu.Lock()
	qs := e.queries[stream]
	e.mu.Unlock()
	for _, q := range qs {
		for _, op := range q.Ops {
			for _, t := range op.Flush() {
				q.emitted++
				if q.Sink != nil {
					q.Sink(t)
				}
			}
		}
	}
}

// Pushed returns the number of tuples delivered so far.
func (e *Engine) Pushed() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pushed
}

// QueuedEngine is the architecturally faithful variant of the
// tuple-at-a-time model: every standing query is an operator thread fed by
// a bounded queue, and each tuple is enqueued individually — the
// queue-and-schedule transport of the first-generation DSMS designs
// (Aurora's operator queues, STREAM's per-tuple scheduler). This is the
// comparator experiment E2 uses: the per-tuple transport is precisely the
// overhead the DataCell's bulk processing amortizes away.
type QueuedEngine struct {
	mu      sync.Mutex
	queries map[string][]*queuedQuery
	pushed  int64
}

type queuedQuery struct {
	q    *Query
	in   chan Tuple
	done sync.WaitGroup
}

// NewQueued creates a queued engine.
func NewQueued() *QueuedEngine {
	return &QueuedEngine{queries: map[string][]*queuedQuery{}}
}

// Subscribe registers a standing query and starts its operator thread.
func (e *QueuedEngine) Subscribe(stream string, q *Query) error {
	if q == nil || q.Name == "" {
		return fmt.Errorf("baseline: query needs a name")
	}
	qq := &queuedQuery{q: q, in: make(chan Tuple, 1024)}
	qq.done.Add(1)
	go func() {
		defer qq.done.Done()
		for t := range qq.in {
			qq.q.push(t)
		}
	}()
	e.mu.Lock()
	e.queries[stream] = append(e.queries[stream], qq)
	e.mu.Unlock()
	return nil
}

// Push enqueues one tuple to every standing query's operator thread.
func (e *QueuedEngine) Push(stream string, t Tuple) {
	e.mu.Lock()
	qs := e.queries[stream]
	e.pushed++
	e.mu.Unlock()
	for _, qq := range qs {
		qq.in <- t
	}
}

// Close shuts the operator threads down and waits for the queues to
// drain.
func (e *QueuedEngine) Close() {
	e.mu.Lock()
	var all []*queuedQuery
	for _, qs := range e.queries {
		all = append(all, qs...)
	}
	e.queries = map[string][]*queuedQuery{}
	e.mu.Unlock()
	for _, qq := range all {
		close(qq.in)
	}
	for _, qq := range all {
		qq.done.Wait()
	}
}

// Pushed returns the number of tuples delivered so far.
func (e *QueuedEngine) Pushed() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pushed
}
