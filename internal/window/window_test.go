package window

import (
	"testing"

	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/vector"
)

// streamSchema mimics a basket: v BIGINT, g VARCHAR, ts TIMESTAMP.
func streamSchema() *catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Name: "v", Type: vector.Int64},
		catalog.Column{Name: "g", Type: vector.String},
	).WithTimestamp()
}

// buildQuery compiles a continuous aggregate over the stream basket and
// returns the plan plus catalog.
func buildQuery(t *testing.T, q string) (plan.Node, *catalog.Catalog) {
	t.Helper()
	cat := catalog.New()
	tbl := storage.NewTable("s", streamSchema())
	if err := cat.Register("s", catalog.KindBasket, tbl); err != nil {
		t.Fatal(err)
	}
	sel, err := sql.ParseSelect(q)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	return p, cat
}

func batch(vals []int64, groups []string, ts []int64) *storage.Relation {
	r := storage.NewRelation(streamSchema())
	for i := range vals {
		r.AppendRow([]vector.Value{
			vector.NewInt(vals[i]), vector.NewString(groups[i]), vector.NewTimestamp(ts[i]),
		})
	}
	return r
}

func seq(n int, f func(i int) int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = f(i)
	}
	return out
}

func strs(n int, f func(i int) string) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = f(i)
	}
	return out
}

const sumQuery = "SELECT SUM(S.v) AS total FROM [SELECT * FROM s] AS S"

func newRunnerPair(t *testing.T, q string, spec Spec) (*Runner, *Runner) {
	t.Helper()
	p, cat := buildQuery(t, q)
	reEval, err := NewRunner(spec, ReEvaluate,
		&PlanEvaluator{Plan: p, Catalog: cat, Source: "s"}, nil, streamSchema())
	if err != nil {
		t.Fatal(err)
	}
	paneEval, ok := RecognizeIncremental(p)
	if !ok {
		t.Fatalf("plan not recognized for incremental mode:\n%s", plan.Explain(p))
	}
	incr, err := NewRunner(spec, Incremental, nil, paneEval, streamSchema())
	if err != nil {
		t.Fatal(err)
	}
	return reEval, incr
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Kind: sql.WindowRows, Size: 0, Slide: 1},
		{Kind: sql.WindowRows, Size: 4, Slide: 0},
		{Kind: sql.WindowRows, Size: 4, Slide: 5},
		{Kind: sql.WindowNone, Size: 4, Slide: 4},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", s)
		}
	}
	good := Spec{Kind: sql.WindowRange, Size: 10, Slide: 5}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(%+v): %v", good, err)
	}
}

func TestCountTumblingSum(t *testing.T) {
	spec := Spec{Kind: sql.WindowRows, Size: 4, Slide: 4, TSIndex: 2}
	re, inc := newRunnerPair(t, sumQuery, spec)
	for _, r := range []*Runner{re, inc} {
		in := batch(seq(10, func(i int) int64 { return int64(i) }),
			strs(10, func(int) string { return "x" }),
			seq(10, func(i int) int64 { return int64(i) }))
		results, err := r.Append(in)
		if err != nil {
			t.Fatalf("%s: %v", r.Mode(), err)
		}
		// Windows [0,4): 0+1+2+3=6 and [4,8): 4+5+6+7=22; 2 tuples pending.
		if len(results) != 2 {
			t.Fatalf("%s: %d windows", r.Mode(), len(results))
		}
		if got := results[0].Rel.Cols[0].Get(0).I; got != 6 {
			t.Errorf("%s: w0 sum = %d", r.Mode(), got)
		}
		if got := results[1].Rel.Cols[0].Get(0).I; got != 22 {
			t.Errorf("%s: w1 sum = %d", r.Mode(), got)
		}
		if r.Buffered() != 2 {
			t.Errorf("%s: buffered = %d", r.Mode(), r.Buffered())
		}
	}
}

func TestCountSlidingAgreement(t *testing.T) {
	spec := Spec{Kind: sql.WindowRows, Size: 8, Slide: 2, TSIndex: 2}
	re, inc := newRunnerPair(t,
		"SELECT SUM(S.v) AS total, COUNT(*) AS n, MIN(S.v) AS lo, MAX(S.v) AS hi, AVG(S.v) AS mean FROM [SELECT * FROM s] AS S",
		spec)
	n := 50
	in := batch(seq(n, func(i int) int64 { return int64(i*i%37 - 10) }),
		strs(n, func(int) string { return "x" }),
		seq(n, func(i int) int64 { return int64(i) }))
	a, err := re.Append(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := inc.Append(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("window counts: re=%d inc=%d", len(a), len(b))
	}
	for i := range a {
		if a[i].Rel.String() != b[i].Rel.String() {
			t.Errorf("window %d differs:\nre-eval:\n%s\nincremental:\n%s",
				i, a[i].Rel, b[i].Rel)
		}
		if a[i].Start != b[i].Start || a[i].End != b[i].End {
			t.Errorf("window %d bounds differ: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGroupedSlidingAgreement(t *testing.T) {
	spec := Spec{Kind: sql.WindowRows, Size: 6, Slide: 3, TSIndex: 2}
	re, inc := newRunnerPair(t,
		"SELECT S.g, SUM(S.v) AS total FROM [SELECT * FROM s] AS S GROUP BY S.g",
		spec)
	n := 30
	groups := strs(n, func(i int) string { return string(rune('a' + i%3)) })
	in := batch(seq(n, func(i int) int64 { return int64(i) }), groups,
		seq(n, func(i int) int64 { return int64(i) }))
	a, _ := re.Append(in)
	b, _ := inc.Append(in)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("window counts: re=%d inc=%d", len(a), len(b))
	}
	for i := range a {
		// Group output order may differ; compare as sets of rows.
		if !sameRows(a[i].Rel, b[i].Rel) {
			t.Errorf("window %d differs:\n%s\nvs\n%s", i, a[i].Rel, b[i].Rel)
		}
	}
}

func sameRows(x, y *storage.Relation) bool {
	if x.NumRows() != y.NumRows() {
		return false
	}
	seen := map[string]int{}
	for i := 0; i < x.NumRows(); i++ {
		key := ""
		for _, v := range x.Row(i) {
			key += v.String() + "|"
		}
		seen[key]++
	}
	for i := 0; i < y.NumRows(); i++ {
		key := ""
		for _, v := range y.Row(i) {
			key += v.String() + "|"
		}
		seen[key]--
	}
	for _, c := range seen {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestTimeWindows(t *testing.T) {
	spec := Spec{Kind: sql.WindowRange, Size: 100, Slide: 50, TSIndex: 2}
	re, inc := newRunnerPair(t, sumQuery, spec)
	for _, r := range []*Runner{re, inc} {
		// Tuples at ts 0,10,…,240; value = ts/10.
		n := 25
		in := batch(seq(n, func(i int) int64 { return int64(i) }),
			strs(n, func(int) string { return "x" }),
			seq(n, func(i int) int64 { return int64(i * 10) }))
		results, err := r.Append(in)
		if err != nil {
			t.Fatalf("%s: %v", r.Mode(), err)
		}
		// Windows: [0,100) sum 0..9=45, [50,150) sum 5..14=95, [100,200) sum 10..19=145.
		// [150,250) not yet complete (no tuple with ts >= 250).
		want := []int64{45, 95, 145}
		if len(results) != len(want) {
			t.Fatalf("%s: %d windows, want %d", r.Mode(), len(results), len(want))
		}
		for i, w := range want {
			if got := results[i].Rel.Cols[0].Get(0).I; got != w {
				t.Errorf("%s: window %d sum = %d, want %d", r.Mode(), i, got, w)
			}
		}
	}
}

func TestTimeWindowFlush(t *testing.T) {
	spec := Spec{Kind: sql.WindowRange, Size: 100, Slide: 100, TSIndex: 2}
	re, inc := newRunnerPair(t, sumQuery, spec)
	for _, r := range []*Runner{re, inc} {
		in := batch([]int64{1, 2, 3}, []string{"x", "x", "x"}, []int64{0, 10, 20})
		results, err := r.Append(in)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 0 {
			t.Fatalf("%s: premature emission", r.Mode())
		}
		// Clock passes the window end with no new tuples.
		results, err = r.Flush(150)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 1 || results[0].Rel.Cols[0].Get(0).I != 6 {
			t.Fatalf("%s: flush results = %v", r.Mode(), results)
		}
	}
}

func TestFlushOnCountWindowIsNoop(t *testing.T) {
	spec := Spec{Kind: sql.WindowRows, Size: 4, Slide: 4, TSIndex: 2}
	re, _ := newRunnerPair(t, sumQuery, spec)
	res, err := re.Flush(1 << 40)
	if err != nil || res != nil {
		t.Errorf("flush on count window: %v %v", res, err)
	}
}

func TestIncrementalRequiresDivisibility(t *testing.T) {
	p, cat := buildQuery(t, sumQuery)
	pe, _ := RecognizeIncremental(p)
	_, err := NewRunner(Spec{Kind: sql.WindowRows, Size: 10, Slide: 3, TSIndex: 2},
		Incremental, nil, pe, streamSchema())
	if err == nil {
		t.Error("size not divisible by slide should fail in incremental mode")
	}
	_, err = NewRunner(Spec{Kind: sql.WindowRows, Size: 10, Slide: 5, TSIndex: 2},
		ReEvaluate, &PlanEvaluator{Plan: p, Catalog: cat, Source: "s"}, nil, streamSchema())
	if err != nil {
		t.Errorf("re-eval should accept any slide: %v", err)
	}
}

func TestRecognizeIncrementalRejectsNonAggregates(t *testing.T) {
	p, _ := buildQuery(t, "SELECT S.v FROM [SELECT * FROM s] AS S WHERE S.v > 0")
	if _, ok := RecognizeIncremental(p); ok {
		t.Error("non-aggregate plan should not be recognized")
	}
}

func TestRecognizeIncrementalWithFilterAndHaving(t *testing.T) {
	q := "SELECT S.g, COUNT(*) AS n FROM [SELECT * FROM s WHERE v >= 0] AS S GROUP BY S.g HAVING COUNT(*) > 1"
	spec := Spec{Kind: sql.WindowRows, Size: 6, Slide: 6, TSIndex: 2}
	re, inc := newRunnerPair(t, q, spec)
	in := batch([]int64{1, -5, 2, 3, -7, 4, 5, 6, 7, 8, 9, 10},
		[]string{"a", "a", "a", "b", "b", "b", "a", "a", "b", "b", "b", "b"},
		seq(12, func(i int) int64 { return int64(i) }))
	a, err := re.Append(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := inc.Append(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("windows: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !sameRows(a[i].Rel, b[i].Rel) {
			t.Errorf("window %d differs:\n%s\nvs\n%s", i, a[i].Rel, b[i].Rel)
		}
	}
}

func TestRunnerConstructionErrors(t *testing.T) {
	if _, err := NewRunner(Spec{Kind: sql.WindowRows, Size: 4, Slide: 4}, ReEvaluate, nil, nil, streamSchema()); err == nil {
		t.Error("re-eval without evaluator should fail")
	}
	if _, err := NewRunner(Spec{Kind: sql.WindowRows, Size: 4, Slide: 4}, Incremental, nil, nil, streamSchema()); err == nil {
		t.Error("incremental without pane evaluator should fail")
	}
}

func TestPlanEvaluatorMatchesDirectExec(t *testing.T) {
	p, cat := buildQuery(t, sumQuery)
	ev := &PlanEvaluator{Plan: p, Catalog: cat, Source: "s"}
	win := batch([]int64{5, 6}, []string{"x", "y"}, []int64{1, 2})
	got, err := ev.Eval(win)
	if err != nil {
		t.Fatal(err)
	}
	ctx := exec.NewContext(cat)
	ctx.Overrides["s"] = bat.ViewOf(win.Cols...)
	want, err := exec.Run(p, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("evaluator mismatch:\n%s\nvs\n%s", got, want)
	}
	if ev.Schema().Len() != 1 {
		t.Errorf("schema = %v", ev.Schema())
	}
}

func TestModeString(t *testing.T) {
	if ReEvaluate.String() != "re-evaluation" || Incremental.String() != "incremental" {
		t.Error("mode strings wrong")
	}
}

func TestCountDistinctSlidingAgreement(t *testing.T) {
	spec := Spec{Kind: sql.WindowRows, Size: 8, Slide: 2, TSIndex: 2}
	re, inc := newRunnerPair(t,
		"SELECT S.g, COUNT(DISTINCT S.v) AS dv FROM [SELECT * FROM s] AS S GROUP BY S.g",
		spec)
	n := 40
	in := batch(seq(n, func(i int) int64 { return int64(i % 5) }), // repeating values
		strs(n, func(i int) string { return string(rune('a' + i%2)) }),
		seq(n, func(i int) int64 { return int64(i) }))
	a, err := re.Append(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := inc.Append(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("windows: re=%d inc=%d", len(a), len(b))
	}
	for i := range a {
		if !sameRows(a[i].Rel, b[i].Rel) {
			t.Errorf("window %d differs:\n%s\nvs\n%s", i, a[i].Rel, b[i].Rel)
		}
	}
}
