package window

// Event-time correctness under out-of-order arrival: watermark-driven
// emission, bounded-lateness permutation invariance, late-tuple
// accounting, and the expiry of stragglers that used to leak.

import (
	"math/rand"
	"testing"

	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/vector"
)

// tuple is one generated stream element.
type tuple struct {
	v  int64
	g  string
	ts int64
}

func toBatch(in []tuple) *storage.Relation {
	r := storage.NewRelation(streamSchema())
	for _, t := range in {
		r.AppendRow([]vector.Value{
			vector.NewInt(t.v), vector.NewString(t.g), vector.NewTimestamp(t.ts),
		})
	}
	return r
}

// blockShuffle permutes tuples within contiguous event-time blocks of
// span at most `bound`, so any tuple trails the running maximum by less
// than bound — a disorder profile within `lateness = bound`.
func blockShuffle(rng *rand.Rand, in []tuple, bound int64) []tuple {
	out := append([]tuple(nil), in...)
	for lo := 0; lo < len(out); {
		hi := lo
		for hi < len(out) && out[hi].ts-out[lo].ts < bound {
			hi++
		}
		rng.Shuffle(hi-lo, func(i, j int) { out[lo+i], out[lo+j] = out[lo+j], out[lo+i] })
		lo = hi
	}
	return out
}

// feed appends tuples in random-sized batches and collects every emitted
// window.
func feed(t *testing.T, r *Runner, rng *rand.Rand, in []tuple) []Result {
	t.Helper()
	var out []Result
	for lo := 0; lo < len(in); {
		hi := lo + 1 + rng.Intn(7)
		if hi > len(in) {
			hi = len(in)
		}
		res, err := r.Append(toBatch(in[lo:hi]))
		if err != nil {
			t.Fatalf("%s: %v", r.Mode(), err)
		}
		out = append(out, res...)
		lo = hi
	}
	return out
}

// TestTimeWindowMaxNotLastEmits: a batch whose largest timestamp is not
// the last tuple must still trigger emission — completion is driven by
// the maximum seen timestamp (the watermark), not by buffer position.
func TestTimeWindowMaxNotLastEmits(t *testing.T) {
	spec := Spec{Kind: sql.WindowRange, Size: 100, Slide: 100, TSIndex: 2}
	re, inc := newRunnerPair(t, sumQuery, spec)
	for _, r := range []*Runner{re, inc} {
		in := batch([]int64{1, 2, 3, 4}, []string{"x", "x", "x", "x"}, []int64{0, 10, 150, 90})
		results, err := r.Append(in)
		if err != nil {
			t.Fatalf("%s: %v", r.Mode(), err)
		}
		if len(results) != 1 {
			t.Fatalf("%s: %d windows, want 1 (max ts 150 closes [0,100))", r.Mode(), len(results))
		}
		// Window [0,100) holds ts 0, 10, 90 → sum 1+2+4 = 7.
		if got := results[0].Rel.Cols[0].Get(0).I; got != 7 {
			t.Errorf("%s: window sum = %d, want 7", r.Mode(), got)
		}
	}
}

// TestTimeWindowLateCounted: a tuple older than the already-emitted
// window boundary is counted and dropped — not silently lost, not
// retained forever, and never corrupting later windows.
func TestTimeWindowLateCounted(t *testing.T) {
	spec := Spec{Kind: sql.WindowRange, Size: 100, Slide: 100, TSIndex: 2}
	re, inc := newRunnerPair(t, sumQuery, spec)
	for _, r := range []*Runner{re, inc} {
		if _, err := r.Append(batch([]int64{1, 2}, []string{"x", "x"}, []int64{10, 120})); err != nil {
			t.Fatal(err)
		}
		if r.Late() != 0 {
			t.Fatalf("%s: late = %d before any late arrival", r.Mode(), r.Late())
		}
		// [0,100) is emitted; ts 50 now trails the frontier.
		buffered := r.Buffered()
		if _, err := r.Append(batch([]int64{9}, []string{"x"}, []int64{50})); err != nil {
			t.Fatal(err)
		}
		if r.Late() != 1 {
			t.Errorf("%s: late = %d, want 1", r.Mode(), r.Late())
		}
		if r.Buffered() != buffered {
			t.Errorf("%s: late tuple was buffered (%d -> %d)", r.Mode(), buffered, r.Buffered())
		}
		// The late tuple must not leak into the next window.
		results, err := r.Append(batch([]int64{4}, []string{"x"}, []int64{230}))
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 1 || results[0].Rel.Cols[0].Get(0).I != 2 {
			t.Errorf("%s: window [100,200) = %v, want sum 2", r.Mode(), results)
		}
	}
}

// TestTimeWindowShuffledBoundedBuffer is the expiry-leak regression: under
// shuffled (bounded out-of-order) input the buffer must stay bounded by
// the window span plus the disorder, never growing with the stream.
func TestTimeWindowShuffledBoundedBuffer(t *testing.T) {
	const lateness = 40
	spec := Spec{Kind: sql.WindowRange, Size: 100, Slide: 50, TSIndex: 2, Lateness: lateness}
	re, inc := newRunnerPair(t, sumQuery, spec)
	for _, r := range []*Runner{re, inc} {
		rng := rand.New(rand.NewSource(11))
		n := 10_000
		in := make([]tuple, n)
		for i := range in {
			in[i] = tuple{v: int64(i), g: "x", ts: int64(i)}
		}
		shuffled := blockShuffle(rng, in, lateness)
		feed(t, r, rng, shuffled)
		// Retained suffix: at most window size + lateness worth of tuples
		// (1 tuple per ts unit here), with slack for batch boundaries.
		if max := int(spec.Size + lateness + 64); r.Buffered() > max {
			t.Errorf("%s: buffered = %d after %d tuples, want <= %d", r.Mode(), r.Buffered(), n, max)
		}
		if r.Late() != 0 {
			t.Errorf("%s: late = %d under bounded disorder", r.Mode(), r.Late())
		}
	}
}

// TestEventTimePermutationProperty: any permutation of an in-order stream
// bounded by the allowed lateness produces byte-identical window results
// to the sorted stream, in both evaluation modes.
func TestEventTimePermutationProperty(t *testing.T) {
	queries := map[string]string{
		"scalar":  sumQuery,
		"grouped": "SELECT S.g, SUM(S.v) AS total, COUNT(*) AS n, MIN(S.v) AS lo, MAX(S.v) AS hi FROM [SELECT * FROM s] AS S GROUP BY S.g",
	}
	for qname, q := range queries {
		t.Run(qname, func(t *testing.T) {
			for trial := 0; trial < 5; trial++ {
				rng := rand.New(rand.NewSource(int64(100 + trial)))
				const lateness = 30
				spec := Spec{Kind: sql.WindowRange, Size: 60, Slide: 20, TSIndex: 2, Lateness: lateness}
				n := 400
				in := make([]tuple, n)
				ts := int64(0)
				for i := range in {
					ts += int64(rng.Intn(4))
					in[i] = tuple{v: int64(rng.Intn(50) - 10), g: string(rune('a' + i%3)), ts: ts}
				}
				shuffled := blockShuffle(rng, in, lateness)

				for _, mode := range []Mode{ReEvaluate, Incremental} {
					var sortedRun, shuffledRun *Runner
					if mode == ReEvaluate {
						sortedRun, _ = newRunnerPair(t, q, spec)
						shuffledRun, _ = newRunnerPair(t, q, spec)
					} else {
						_, sortedRun = newRunnerPair(t, q, spec)
						_, shuffledRun = newRunnerPair(t, q, spec)
					}
					a := feed(t, sortedRun, rng, in)
					b := feed(t, shuffledRun, rng, shuffled)
					if shuffledRun.Late() != 0 {
						t.Fatalf("%s: %d late tuples under bounded disorder", mode, shuffledRun.Late())
					}
					if len(a) != len(b) || len(a) == 0 {
						t.Fatalf("%s: %d windows sorted vs %d shuffled", mode, len(a), len(b))
					}
					for i := range a {
						if a[i].Start != b[i].Start || a[i].End != b[i].End {
							t.Fatalf("%s: window %d bounds differ: [%d,%d) vs [%d,%d)",
								mode, i, a[i].Start, a[i].End, b[i].Start, b[i].End)
						}
						if !sameRows(a[i].Rel, b[i].Rel) {
							t.Fatalf("%s: window %d differs:\n%s\nvs\n%s", mode, i, a[i].Rel, b[i].Rel)
						}
					}
				}
			}
		})
	}
}

// TestWindowOriginLowersBeforeEmission: before anything is emitted, an
// earlier tuple pulls the window origin back so results match the sorted
// arrival order.
func TestWindowOriginLowersBeforeEmission(t *testing.T) {
	spec := Spec{Kind: sql.WindowRange, Size: 100, Slide: 50, TSIndex: 2, Lateness: 60}
	re, inc := newRunnerPair(t, sumQuery, spec)
	for _, r := range []*Runner{re, inc} {
		// First tuple at 105 would align the origin to 100; the next at 60
		// (within lateness) must reopen [50,150).
		if _, err := r.Append(batch([]int64{1}, []string{"x"}, []int64{105})); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Append(batch([]int64{2}, []string{"x"}, []int64{60})); err != nil {
			t.Fatal(err)
		}
		results, err := r.Append(batch([]int64{4}, []string{"x"}, []int64{215}))
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 1 {
			t.Fatalf("%s: %d windows, want 1", r.Mode(), len(results))
		}
		if results[0].Start != 50 || results[0].End != 150 {
			t.Errorf("%s: window [%d,%d), want [50,150)", r.Mode(), results[0].Start, results[0].End)
		}
		if got := results[0].Rel.Cols[0].Get(0).I; got != 3 {
			t.Errorf("%s: sum = %d, want 3 (both 60 and 105)", r.Mode(), got)
		}
		if r.Late() != 0 {
			t.Errorf("%s: late = %d", r.Mode(), r.Late())
		}
	}
}

// TestWatermarkGroupClosesSparseRunner: a runner whose own partition
// stopped receiving tuples still closes its windows once the shared
// group watermark moves past them.
func TestWatermarkGroupClosesSparseRunner(t *testing.T) {
	spec := Spec{Kind: sql.WindowRange, Size: 100, Slide: 100, TSIndex: 2, EventTime: true}
	_, sparse := newRunnerPair(t, sumQuery, spec)
	_, busy := newRunnerPair(t, sumQuery, spec)
	g := NewWatermarkGroup()
	sparse.ShareWatermark(g)
	busy.ShareWatermark(g)

	if _, err := sparse.Append(batch([]int64{7}, []string{"x"}, []int64{10})); err != nil {
		t.Fatal(err)
	}
	if wm, ok := sparse.Watermark(); !ok || wm != 10 {
		t.Fatalf("sparse watermark = %d, %v", wm, ok)
	}
	// The busy runner races ahead; once the sparse one observes the
	// group (its owner does so whenever its backlog is empty), the
	// shared clock carries it along.
	if _, err := busy.Append(batch([]int64{1}, []string{"x"}, []int64{250})); err != nil {
		t.Fatal(err)
	}
	if g, ok := sparse.GroupMax(); !ok {
		t.Fatal("group has no reading")
	} else {
		sparse.ObserveGroup(g)
	}
	results, err := sparse.Flush(0) // event time: the clock reading is ignored
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("sparse emitted %d windows, want 2 ([0,100) and the empty [100,200))", len(results))
	}
	if got := results[0].Rel.Cols[0].Get(0).I; got != 7 {
		t.Errorf("window [0,100) sum = %d", got)
	}
}

// TestEmptyWindowScalarModesAgree: a window with no tuples still yields
// one row for a scalar aggregate, identically in both modes (and a
// grouped aggregate yields zero rows in both).
func TestEmptyWindowScalarModesAgree(t *testing.T) {
	spec := Spec{Kind: sql.WindowRange, Size: 100, Slide: 100, TSIndex: 2}
	re, inc := newRunnerPair(t, "SELECT COUNT(*) AS n, SUM(S.v) AS total FROM [SELECT * FROM s] AS S", spec)
	var prev []Result
	for _, r := range []*Runner{re, inc} {
		in := batch([]int64{1, 2, 3}, []string{"x", "x", "x"}, []int64{0, 10, 250})
		results, err := r.Append(in)
		if err != nil {
			t.Fatal(err)
		}
		// Windows [0,100) and the empty [100,200) close; [200,300) pends.
		if len(results) != 2 {
			t.Fatalf("%s: %d windows, want 2", r.Mode(), len(results))
		}
		for i, res := range results {
			if res.Rel.NumRows() != 1 {
				t.Fatalf("%s: window %d has %d rows, want 1", r.Mode(), i, res.Rel.NumRows())
			}
		}
		if got := results[1].Rel.Cols[0].Get(0).I; got != 0 {
			t.Errorf("%s: empty window COUNT = %d", r.Mode(), got)
		}
		if !results[1].Rel.Cols[1].Get(0).Null {
			t.Errorf("%s: empty window SUM should be NULL", r.Mode())
		}
		if prev != nil {
			for i := range results {
				if results[i].Rel.String() != prev[i].Rel.String() {
					t.Errorf("modes disagree on window %d:\n%s\nvs\n%s", i, prev[i].Rel, results[i].Rel)
				}
			}
		}
		prev = results
	}
}
