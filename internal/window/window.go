// Package window implements windowed continuous-query processing per the
// thesis outline (§3.1): no new kernel operators are introduced; instead
// windows are realized at the query-plan level by slicing basket content
// and either re-evaluating the full plan per window (re-evaluation) or
// maintaining per-basic-window summaries that merge into window results
// (incremental evaluation, the basic-window model of StatStream).
package window

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/vector"
)

// Mode selects the evaluation strategy.
type Mode uint8

// Evaluation strategies.
const (
	// ReEvaluate computes every window from scratch over its full content.
	ReEvaluate Mode = iota
	// Incremental summarizes each basic window (pane) once and synthesizes
	// window results by merging pane summaries.
	Incremental
)

// String names the mode.
func (m Mode) String() string {
	if m == Incremental {
		return "incremental"
	}
	return "re-evaluation"
}

// Spec describes a sliding window.
type Spec struct {
	Kind  sql.WindowKind // WindowRows (count-based) or WindowRange (time-based)
	Size  int64          // tuples, or nanoseconds
	Slide int64          // tuples, or nanoseconds; Slide <= Size
	// TSIndex is the position of the timestamp column in the buffered
	// tuples (time-based windows).
	TSIndex int
}

// Validate checks the spec's invariants.
func (s Spec) Validate() error {
	if s.Kind != sql.WindowRows && s.Kind != sql.WindowRange {
		return fmt.Errorf("window: invalid kind")
	}
	if s.Size <= 0 || s.Slide <= 0 || s.Slide > s.Size {
		return fmt.Errorf("window: need 0 < slide <= size, got size=%d slide=%d", s.Size, s.Slide)
	}
	return nil
}

// Evaluator computes the continuous query over one complete window.
type Evaluator interface {
	// Eval runs the query over the window's columns.
	Eval(win *storage.Relation) (*storage.Relation, error)
	// Schema describes the result columns.
	Schema() *catalog.Schema
}

// PaneEvaluator is the incremental counterpart: it summarizes individual
// panes and merges k consecutive pane summaries into a window result.
type PaneEvaluator interface {
	// Summarize reduces one pane to a mergeable summary.
	Summarize(pane *storage.Relation) (Summary, error)
	// Merge combines consecutive pane summaries into the window result.
	Merge(panes []Summary) (*storage.Relation, error)
	// Schema describes the result columns.
	Schema() *catalog.Schema
}

// Summary is an opaque pane digest produced by a PaneEvaluator.
type Summary interface{}

// Result is one emitted window.
type Result struct {
	// Start and End delimit the window: tuple indexes for count windows
	// (absolute, since the start of the stream) or timestamps for time
	// windows.
	Start, End int64
	Rel        *storage.Relation
}

// Runner buffers arriving tuples and emits one Result per completed
// window, using the configured strategy. It is not safe for concurrent
// use; the owning factory serializes access.
type Runner struct {
	spec Spec
	mode Mode

	eval Evaluator     // ReEvaluate mode
	pane PaneEvaluator // Incremental mode

	buf      *storage.Relation // pending tuples (window suffix)
	absBase  int64             // absolute index of buf row 0 (count windows)
	absCount int64             // absolute count of tuples ever appended
	winStart int64             // current window start (abs index or timestamp)
	started  bool              // time windows: winStart initialized from first tuple

	panes     []Summary // Incremental: pane summaries inside current horizon
	paneStart int64     // start of the first un-summarized pane (abs or ts)
}

// NewRunner builds a runner. For ReEvaluate pass an Evaluator; for
// Incremental pass a PaneEvaluator and the spec must have Size divisible
// by Slide (panes are slide-sized).
func NewRunner(spec Spec, mode Mode, eval Evaluator, pane PaneEvaluator, schema *catalog.Schema) (*Runner, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if mode == Incremental {
		if pane == nil {
			return nil, fmt.Errorf("window: incremental mode needs a pane evaluator")
		}
		if spec.Size%spec.Slide != 0 {
			return nil, fmt.Errorf("window: incremental mode needs size %% slide == 0")
		}
	} else if eval == nil {
		return nil, fmt.Errorf("window: re-evaluation mode needs an evaluator")
	}
	return &Runner{
		spec: spec,
		mode: mode,
		eval: eval,
		pane: pane,
		buf:  storage.NewRelation(schema),
	}, nil
}

// Mode returns the evaluation strategy.
func (r *Runner) Mode() Mode { return r.mode }

// Spec returns the window specification.
func (r *Runner) Spec() Spec { return r.spec }

// Buffered returns the number of pending tuples.
func (r *Runner) Buffered() int { return r.buf.NumRows() }

// Append adds arriving tuples (columns aligned with the runner's schema)
// and returns any windows they complete.
func (r *Runner) Append(rel *storage.Relation) ([]Result, error) {
	if rel.NumRows() > 0 {
		r.buf.AppendRelation(rel)
		r.absCount += int64(rel.NumRows())
		if !r.started && r.spec.Kind == sql.WindowRange {
			// Time windows align to the slide grid (floor the first
			// timestamp to a slide multiple), the usual tumbling-window
			// convention — so wall minutes map to window boundaries.
			first := r.buf.Cols[r.spec.TSIndex].Get(0).I
			aligned := first - mod(first, r.spec.Slide)
			r.winStart = aligned
			r.paneStart = aligned
			r.started = true
		}
	}
	return r.advance(nil)
}

// Flush advances time-based windows to the given clock reading, emitting
// windows that ended at or before it even if no later tuple arrived.
func (r *Runner) Flush(now int64) ([]Result, error) {
	if r.spec.Kind != sql.WindowRange || !r.started {
		return nil, nil
	}
	return r.advance(&now)
}

func (r *Runner) advance(now *int64) ([]Result, error) {
	var out []Result
	for {
		res, ok, err := r.tryEmit(now)
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, res)
	}
}

// tryEmit emits the next complete window, if any.
func (r *Runner) tryEmit(now *int64) (Result, bool, error) {
	if r.spec.Kind == sql.WindowRows {
		if r.absCount-r.winStart < r.spec.Size {
			return Result{}, false, nil
		}
		return r.emitCount()
	}
	if !r.started {
		return Result{}, false, nil
	}
	end := r.winStart + r.spec.Size
	complete := false
	if n := r.buf.NumRows(); n > 0 {
		lastTS := r.buf.Cols[r.spec.TSIndex].Get(n - 1).I
		complete = lastTS >= end
	}
	if now != nil && *now >= end {
		complete = true
	}
	if !complete {
		return Result{}, false, nil
	}
	return r.emitTime(end)
}

func (r *Runner) emitCount() (Result, bool, error) {
	lo := int(r.winStart - r.absBase)
	hi := lo + int(r.spec.Size)
	var rel *storage.Relation
	var err error
	if r.mode == ReEvaluate {
		win := r.slice(lo, hi)
		rel, err = r.eval.Eval(win)
	} else {
		// Summarize any completed slide-sized panes up to hi.
		for r.paneStart+r.spec.Slide <= r.absBase+int64(r.buf.NumRows()) {
			plo := int(r.paneStart - r.absBase)
			phi := plo + int(r.spec.Slide)
			sum, serr := r.pane.Summarize(r.slice(plo, phi))
			if serr != nil {
				return Result{}, false, serr
			}
			r.panes = append(r.panes, sum)
			r.paneStart += r.spec.Slide
		}
		k := int(r.spec.Size / r.spec.Slide)
		if len(r.panes) < k {
			return Result{}, false, fmt.Errorf("window: internal pane shortfall (%d < %d)", len(r.panes), k)
		}
		rel, err = r.pane.Merge(r.panes[:k])
	}
	if err != nil {
		return Result{}, false, err
	}
	res := Result{Start: r.winStart, End: r.winStart + r.spec.Size, Rel: rel}
	// Slide: drop expired tuples (and pane summaries).
	r.winStart += r.spec.Slide
	drop := int(r.winStart - r.absBase)
	if drop > r.buf.NumRows() {
		drop = r.buf.NumRows()
	}
	if drop > 0 {
		for _, c := range r.buf.Cols {
			c.DropPrefix(drop)
		}
		r.absBase += int64(drop)
	}
	if r.mode == Incremental && len(r.panes) > 0 {
		r.panes = r.panes[1:]
	}
	return res, true, nil
}

func (r *Runner) emitTime(end int64) (Result, bool, error) {
	ts := r.buf.Cols[r.spec.TSIndex]
	// Locate the first tuple at or beyond the window end.
	hi := 0
	for hi < r.buf.NumRows() && ts.Get(hi).I < end {
		hi++
	}
	var rel *storage.Relation
	var err error
	if r.mode == ReEvaluate {
		rel, err = r.eval.Eval(r.slice(0, hi))
	} else {
		// Summarize panes covering [paneStart, end).
		for r.paneStart+r.spec.Slide <= end {
			pEnd := r.paneStart + r.spec.Slide
			plo, phi := 0, 0
			for phi < r.buf.NumRows() && ts.Get(phi).I < pEnd {
				phi++
			}
			for plo < phi && ts.Get(plo).I < r.paneStart {
				plo++
			}
			sum, serr := r.pane.Summarize(r.slice(plo, phi))
			if serr != nil {
				return Result{}, false, serr
			}
			r.panes = append(r.panes, sum)
			r.paneStart = pEnd
		}
		k := int(r.spec.Size / r.spec.Slide)
		if len(r.panes) < k {
			return Result{}, false, fmt.Errorf("window: internal pane shortfall (%d < %d)", len(r.panes), k)
		}
		// The pane list starts at winStart, so the window is the first k.
		rel, err = r.pane.Merge(r.panes[:k])
	}
	if err != nil {
		return Result{}, false, err
	}
	res := Result{Start: r.winStart, End: end, Rel: rel}
	r.winStart += r.spec.Slide
	// Expire tuples before the new window start.
	drop := 0
	for drop < r.buf.NumRows() && ts.Get(drop).I < r.winStart {
		drop++
	}
	if drop > 0 {
		for _, c := range r.buf.Cols {
			c.DropPrefix(drop)
		}
		r.absBase += int64(drop)
	}
	if r.mode == Incremental && len(r.panes) > 0 {
		r.panes = r.panes[1:]
	}
	return res, true, nil
}

// mod is a non-negative modulus (timestamps may precede the epoch).
func mod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

// slice materializes buffer rows [lo, hi) as window views.
func (r *Runner) slice(lo, hi int) *storage.Relation {
	out := &storage.Relation{Schema: r.buf.Schema, Cols: make([]*vector.Vector, len(r.buf.Cols))}
	for i, c := range r.buf.Cols {
		out.Cols[i] = c.Window(lo, hi)
	}
	return out
}
