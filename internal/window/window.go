// Package window implements windowed continuous-query processing per the
// thesis outline (§3.1): no new kernel operators are introduced; instead
// windows are realized at the query-plan level by slicing basket content
// and either re-evaluating the full plan per window (re-evaluation) or
// maintaining per-basic-window summaries that merge into window results
// (incremental evaluation, the basic-window model of StatStream).
//
// Time-based windows are event-time-correct under out-of-order arrival:
// the buffer is kept ordered by timestamp, emission is driven by a
// watermark (max seen timestamp minus the allowed lateness) instead of
// the last tuple, and tuples arriving behind an already-emitted window
// boundary are counted as late and dropped rather than silently lost or
// retained forever.
package window

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/vector"
)

// Mode selects the evaluation strategy.
type Mode uint8

// Evaluation strategies.
const (
	// ReEvaluate computes every window from scratch over its full content.
	ReEvaluate Mode = iota
	// Incremental summarizes each basic window (pane) once and synthesizes
	// window results by merging pane summaries.
	Incremental
)

// String names the mode.
func (m Mode) String() string {
	if m == Incremental {
		return "incremental"
	}
	return "re-evaluation"
}

// noTS marks "no timestamp observed yet" for watermark state.
const noTS = math.MinInt64

// Spec describes a sliding window.
type Spec struct {
	Kind  sql.WindowKind // WindowRows (count-based) or WindowRange (time-based)
	Size  int64          // tuples, or nanoseconds
	Slide int64          // tuples, or nanoseconds; Slide <= Size
	// TSIndex is the position of the timestamp column in the buffered
	// tuples (time-based windows).
	TSIndex int
	// Lateness is the out-of-order tolerance of time-based windows: the
	// watermark trails the maximum seen timestamp by this much, so a
	// window [s, s+Size) is emitted only once a tuple with
	// ts >= s+Size+Lateness arrives (or the clock passes that point).
	Lateness int64
	// EventTime marks the timestamp column as application-supplied event
	// time rather than the basket's arrival stamp. Event-time windows
	// advance on data only — Flush is a no-op, because wall-clock
	// readings are not comparable to the event domain.
	EventTime bool
}

// Validate checks the spec's invariants.
func (s Spec) Validate() error {
	if s.Kind != sql.WindowRows && s.Kind != sql.WindowRange {
		return fmt.Errorf("window: invalid kind")
	}
	if s.Size <= 0 || s.Slide <= 0 || s.Slide > s.Size {
		return fmt.Errorf("window: need 0 < slide <= size, got size=%d slide=%d", s.Size, s.Slide)
	}
	if s.Lateness < 0 {
		return fmt.Errorf("window: negative lateness %d", s.Lateness)
	}
	if s.Kind == sql.WindowRows && (s.Lateness != 0 || s.EventTime) {
		return fmt.Errorf("window: lateness/event time apply to time-based windows only")
	}
	return nil
}

// Evaluator computes the continuous query over one complete window.
type Evaluator interface {
	// Eval runs the query over the window's columns.
	Eval(win *storage.Relation) (*storage.Relation, error)
	// Schema describes the result columns.
	Schema() *catalog.Schema
}

// PaneEvaluator is the incremental counterpart: it summarizes individual
// panes and merges k consecutive pane summaries into a window result.
type PaneEvaluator interface {
	// Summarize reduces one pane to a mergeable summary.
	Summarize(pane *storage.Relation) (Summary, error)
	// Merge combines consecutive pane summaries into the window result.
	Merge(panes []Summary) (*storage.Relation, error)
	// Schema describes the result columns.
	Schema() *catalog.Schema
}

// Summary is an opaque pane digest produced by a PaneEvaluator.
type Summary interface{}

// Result is one emitted window.
type Result struct {
	// Start and End delimit the window: tuple indexes for count windows
	// (absolute, since the start of the stream) or timestamps for time
	// windows.
	Start, End int64
	Rel        *storage.Relation
}

// WatermarkGroup is a shared event-time clock for the shard runners of
// one partitioned windowed query: every runner raises it with the
// timestamps it sees, and every runner's watermark reads the group
// maximum. A shard whose own partition lags (or is empty) still closes
// its windows once the stream as a whole has moved past them — bounded
// disorder is a property of the stream, not of one shard's subsequence.
type WatermarkGroup struct {
	max int64 // atomic; noTS until the first Raise
}

// NewWatermarkGroup returns an empty group clock.
func NewWatermarkGroup() *WatermarkGroup {
	g := &WatermarkGroup{}
	atomic.StoreInt64(&g.max, noTS)
	return g
}

// Raise lifts the group maximum to at least ts.
func (g *WatermarkGroup) Raise(ts int64) {
	for {
		cur := atomic.LoadInt64(&g.max)
		if ts <= cur || atomic.CompareAndSwapInt64(&g.max, cur, ts) {
			return
		}
	}
}

// Max returns the group maximum (noTS if nothing was raised).
func (g *WatermarkGroup) Max() int64 { return atomic.LoadInt64(&g.max) }

// Runner buffers arriving tuples and emits one Result per completed
// window, using the configured strategy. It is not safe for concurrent
// use; the owning factory serializes access.
type Runner struct {
	spec Spec
	mode Mode

	eval Evaluator     // ReEvaluate mode
	pane PaneEvaluator // Incremental mode

	buf      *storage.Relation // pending tuples (window suffix), ts-ordered for time windows
	absBase  int64             // absolute index of buf row 0 (count windows)
	absCount int64             // absolute count of tuples ever appended
	winStart int64             // current window start (abs index or timestamp)
	started  bool              // time windows: winStart initialized from first tuple
	emitted  bool              // time windows: at least one window emitted (late cutoff active)

	maxTS   int64 // largest event timestamp appended (time windows)
	flushTS int64 // latest Flush clock reading (arrival-time windows)
	late    int64 // tuples dropped because they arrived behind the emitted frontier

	group *WatermarkGroup // optional shared clock (partitioned shard runners)
	// groupSeen is the group reading this runner is allowed to act on.
	// The watermark never reads the group live: a faster shard may have
	// raised it past tuples still sitting unprocessed in this shard's
	// input basket, and advancing on that reading would misclassify them
	// as late. The owner observes the group at safe points — before
	// pinning its input batch, or when its backlog is empty.
	groupSeen int64

	panes     []Summary // Incremental: pane summaries inside current horizon
	paneStart int64     // start of the first un-summarized pane (abs or ts)
}

// NewRunner builds a runner. For ReEvaluate pass an Evaluator; for
// Incremental pass a PaneEvaluator and the spec must have Size divisible
// by Slide (panes are slide-sized).
func NewRunner(spec Spec, mode Mode, eval Evaluator, pane PaneEvaluator, schema *catalog.Schema) (*Runner, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if mode == Incremental {
		if pane == nil {
			return nil, fmt.Errorf("window: incremental mode needs a pane evaluator")
		}
		if spec.Size%spec.Slide != 0 {
			return nil, fmt.Errorf("window: incremental mode needs size %% slide == 0")
		}
	} else if eval == nil {
		return nil, fmt.Errorf("window: re-evaluation mode needs an evaluator")
	}
	return &Runner{
		spec:      spec,
		mode:      mode,
		eval:      eval,
		pane:      pane,
		buf:       storage.NewRelation(schema),
		maxTS:     noTS,
		flushTS:   noTS,
		groupSeen: noTS,
	}, nil
}

// Mode returns the evaluation strategy.
func (r *Runner) Mode() Mode { return r.mode }

// Spec returns the window specification.
func (r *Runner) Spec() Spec { return r.spec }

// Buffered returns the number of pending tuples.
func (r *Runner) Buffered() int { return r.buf.NumRows() }

// Started reports whether a time-based runner has seen any tuple.
func (r *Runner) Started() bool { return r.started }

// Late returns the number of tuples dropped because they arrived behind
// an already-emitted window boundary.
func (r *Runner) Late() int64 { return r.late }

// ShareWatermark attaches a group clock; the shard runners of one
// partitioned query share one so window completion tracks the whole
// stream's progress. Must be called before the first Append.
func (r *Runner) ShareWatermark(g *WatermarkGroup) { r.group = g }

// GroupMax returns the shared group clock's live maximum; ok is false
// without a group or before any shard raised it. Callers pass a safe
// reading (taken before pinning their input) to ObserveGroup.
func (r *Runner) GroupMax() (int64, bool) {
	if r.group == nil {
		return 0, false
	}
	g := r.group.Max()
	return g, g != noTS
}

// ObserveGroup admits a group clock reading into this runner's
// watermark. Only readings taken while every tuple below them was
// already handed to (or pinned for) this runner are safe — see
// groupSeen.
func (r *Runner) ObserveGroup(ts int64) {
	if ts > r.groupSeen {
		r.groupSeen = ts
	}
}

// Watermark returns the event-time watermark — the boundary up to which
// window content is final: max(seen timestamps, flush clock, observed
// group maximum) − lateness. The second result is false until any of
// those sources has a reading (and always for count windows).
func (r *Runner) Watermark() (int64, bool) {
	if r.spec.Kind != sql.WindowRange {
		return 0, false
	}
	wm := r.maxTS
	if r.flushTS > wm {
		wm = r.flushTS
	}
	if r.groupSeen > wm {
		wm = r.groupSeen
	}
	if wm == noTS {
		return 0, false
	}
	return wm - r.spec.Lateness, true
}

// Append adds arriving tuples (columns aligned with the runner's schema)
// and returns any windows they complete.
func (r *Runner) Append(rel *storage.Relation) ([]Result, error) {
	if rel.NumRows() > 0 {
		if r.spec.Kind == sql.WindowRange {
			r.appendTime(rel)
		} else {
			r.buf.AppendRelation(rel)
			r.absCount += int64(rel.NumRows())
		}
	}
	return r.advance()
}

// appendTime merges a batch into the ts-ordered buffer: the window
// origin is established (or, before anything was emitted, lowered) from
// the batch minimum, tuples behind the emitted frontier are counted late
// and dropped, and the survivors are placed in timestamp order.
func (r *Runner) appendTime(rel *storage.Relation) {
	ts := rel.Cols[r.spec.TSIndex]
	n := rel.NumRows()
	lo, hi := ts.Get(0).I, ts.Get(0).I
	sorted := true
	for i := 1; i < n; i++ {
		v := ts.Get(i).I
		if v < ts.Get(i-1).I {
			sorted = false
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > r.maxTS {
		r.maxTS = hi
	}
	if r.group != nil {
		r.group.Raise(hi)
	}
	aligned := lo - mod(lo, r.spec.Slide)
	if !r.started {
		r.winStart = aligned
		r.paneStart = aligned
		r.started = true
	} else if !r.emitted && aligned < r.winStart {
		// Nothing emitted yet: an earlier tuple can still pull the window
		// origin back so it lands in the same windows a sorted arrival
		// order would have produced.
		r.winStart = aligned
		r.paneStart = aligned
	}

	// Drop tuples behind the frontier nothing can be re-opened for: the
	// current window start under re-evaluation, the summarized pane
	// frontier under incremental evaluation.
	if r.emitted && lo < r.cutoff() {
		cut := r.cutoff()
		keep := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if ts.Get(i).I >= cut {
				keep = append(keep, i)
			}
		}
		r.late += int64(n - len(keep))
		if len(keep) == 0 {
			return
		}
		rel = rel.Take(keep)
		ts = rel.Cols[r.spec.TSIndex]
		n = rel.NumRows()
		lo = ts.Get(0).I
		sorted = true
		for i := 1; i < n; i++ {
			if ts.Get(i).I < ts.Get(i-1).I {
				sorted = false
				break
			}
		}
	}

	inOrder := sorted
	if b := r.buf.NumRows(); inOrder && b > 0 && lo < r.buf.Cols[r.spec.TSIndex].Get(b-1).I {
		inOrder = false
	}
	r.buf.AppendRelation(rel)
	r.absCount += int64(n)
	if !inOrder {
		r.restoreOrder(n)
	}
}

// restoreOrder re-establishes timestamp order after appending the last
// `appended` rows at the tail. Only the displaced suffix is rewritten —
// the sorted prefix below the batch minimum stays in place — so the
// cost is O(batch + displaced span), not O(buffer). Ties keep arrival
// order (resident rows before batch rows), matching a stable sort of
// the whole buffer.
func (r *Runner) restoreOrder(appended int) {
	ts := r.buf.Cols[r.spec.TSIndex]
	n := r.buf.NumRows()
	old := n - appended
	batch := make([]int, appended)
	for i := range batch {
		batch[i] = old + i
	}
	sort.SliceStable(batch, func(a, b int) bool { return ts.Get(batch[a]).I < ts.Get(batch[b]).I })
	// The prefix strictly below the batch minimum is untouched.
	lo := ts.Get(batch[0]).I
	k := sort.Search(old, func(i int) bool { return ts.Get(i).I >= lo })
	// Two-pointer merge of the resident rows [k, old) with the sorted
	// batch; resident rows win ties.
	perm := make([]int, 0, n-k)
	i, j := k, 0
	for i < old && j < appended {
		if ts.Get(i).I <= ts.Get(batch[j]).I {
			perm = append(perm, i)
			i++
		} else {
			perm = append(perm, batch[j])
			j++
		}
	}
	for ; i < old; i++ {
		perm = append(perm, i)
	}
	perm = append(perm, batch[j:]...)
	for _, col := range r.buf.Cols {
		suffix := col.Take(perm)
		col.Truncate(k)
		col.AppendVector(suffix)
	}
}

// cutoff is the timestamp below which an arriving tuple can no longer be
// integrated: the current window start for re-evaluation (every pending
// window is recomputed from the buffer), the summarized pane frontier
// for incremental evaluation (sealed summaries are never reopened).
func (r *Runner) cutoff() int64 {
	if r.mode == Incremental {
		return r.paneStart
	}
	return r.winStart
}

// Flush advances arrival-time windows to the given clock reading,
// emitting windows whose end passed watermark-deep into the past even if
// no later tuple arrived. Event-time windows never take the clock
// reading — the wall clock says nothing about how far the event domain
// has progressed — but they still re-check completion, because a shared
// watermark group may have advanced since the last append.
func (r *Runner) Flush(now int64) ([]Result, error) {
	if r.spec.Kind != sql.WindowRange {
		return nil, nil
	}
	if !r.spec.EventTime && now > r.flushTS {
		r.flushTS = now
	}
	if !r.started {
		return nil, nil
	}
	return r.advance()
}

func (r *Runner) advance() ([]Result, error) {
	var out []Result
	for {
		res, ok, err := r.tryEmit()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, res)
	}
}

// tryEmit emits the next complete window, if any.
func (r *Runner) tryEmit() (Result, bool, error) {
	if r.spec.Kind == sql.WindowRows {
		if r.absCount-r.winStart < r.spec.Size {
			return Result{}, false, nil
		}
		return r.emitCount()
	}
	if !r.started {
		return Result{}, false, nil
	}
	end := r.winStart + r.spec.Size
	wm, ok := r.Watermark()
	if !ok || wm < end {
		return Result{}, false, nil
	}
	return r.emitTime(end)
}

func (r *Runner) emitCount() (Result, bool, error) {
	lo := int(r.winStart - r.absBase)
	hi := lo + int(r.spec.Size)
	var rel *storage.Relation
	var err error
	if r.mode == ReEvaluate {
		win := r.slice(lo, hi)
		rel, err = r.eval.Eval(win)
	} else {
		// Summarize any completed slide-sized panes up to hi.
		for r.paneStart+r.spec.Slide <= r.absBase+int64(r.buf.NumRows()) {
			plo := int(r.paneStart - r.absBase)
			phi := plo + int(r.spec.Slide)
			sum, serr := r.pane.Summarize(r.slice(plo, phi))
			if serr != nil {
				return Result{}, false, serr
			}
			r.panes = append(r.panes, sum)
			r.paneStart += r.spec.Slide
		}
		k := int(r.spec.Size / r.spec.Slide)
		if len(r.panes) < k {
			return Result{}, false, fmt.Errorf("window: internal pane shortfall (%d < %d)", len(r.panes), k)
		}
		rel, err = r.pane.Merge(r.panes[:k])
	}
	if err != nil {
		return Result{}, false, err
	}
	res := Result{Start: r.winStart, End: r.winStart + r.spec.Size, Rel: rel}
	// Slide: drop expired tuples (and pane summaries).
	r.winStart += r.spec.Slide
	drop := int(r.winStart - r.absBase)
	if drop > r.buf.NumRows() {
		drop = r.buf.NumRows()
	}
	if drop > 0 {
		for _, c := range r.buf.Cols {
			c.DropPrefix(drop)
		}
		r.absBase += int64(drop)
	}
	if r.mode == Incremental && len(r.panes) > 0 {
		r.panes = r.panes[1:]
	}
	return res, true, nil
}

// lowerBound returns the first buffer position whose timestamp is >= t
// (the buffer is ts-ordered for time windows).
func (r *Runner) lowerBound(t int64) int {
	ts := r.buf.Cols[r.spec.TSIndex]
	return sort.Search(r.buf.NumRows(), func(i int) bool { return ts.Get(i).I >= t })
}

func (r *Runner) emitTime(end int64) (Result, bool, error) {
	r.emitted = true
	hi := r.lowerBound(end)
	var rel *storage.Relation
	var err error
	if r.mode == ReEvaluate {
		rel, err = r.eval.Eval(r.slice(0, hi))
	} else {
		// Summarize panes covering [paneStart, end). The watermark passed
		// end, so every tuple that may still arrive for these panes is
		// beyond the allowed lateness — sealing them now loses nothing
		// that in-order arrival would have kept.
		for r.paneStart+r.spec.Slide <= end {
			pEnd := r.paneStart + r.spec.Slide
			plo := r.lowerBound(r.paneStart)
			phi := r.lowerBound(pEnd)
			sum, serr := r.pane.Summarize(r.slice(plo, phi))
			if serr != nil {
				return Result{}, false, serr
			}
			r.panes = append(r.panes, sum)
			r.paneStart = pEnd
		}
		k := int(r.spec.Size / r.spec.Slide)
		if len(r.panes) < k {
			return Result{}, false, fmt.Errorf("window: internal pane shortfall (%d < %d)", len(r.panes), k)
		}
		// The pane list starts at winStart, so the window is the first k.
		rel, err = r.pane.Merge(r.panes[:k])
	}
	if err != nil {
		return Result{}, false, err
	}
	res := Result{Start: r.winStart, End: end, Rel: rel}
	r.winStart += r.spec.Slide
	// Expire everything before the new window start. The buffer is
	// ts-ordered, so the prefix is exactly the tuples whose value is
	// below the boundary — an out-of-order straggler can never hide
	// behind a newer tuple and leak.
	if drop := r.lowerBound(r.winStart); drop > 0 {
		for _, c := range r.buf.Cols {
			c.DropPrefix(drop)
		}
		r.absBase += int64(drop)
	}
	if r.mode == Incremental && len(r.panes) > 0 {
		r.panes = r.panes[1:]
	}
	return res, true, nil
}

// State is a serializable image of a runner for checkpoints. Pane
// summaries are deliberately absent: they are opaque (not gob-friendly)
// and fully reconstructible, because every summarized-but-unmerged pane
// covers [WinStart, PaneStart) and the buffer still holds every tuple
// at or past WinStart.
type State struct {
	Buf       []vector.Wire
	AbsBase   int64
	AbsCount  int64
	WinStart  int64
	Started   bool
	Emitted   bool
	MaxTS     int64
	FlushTS   int64
	Late      int64
	GroupSeen int64
	PaneStart int64
}

// Snapshot captures the runner's state. The caller must hold the same
// serialization the owning factory uses for Append/Flush.
func (r *Runner) Snapshot() *State {
	return &State{
		Buf:       vector.WireColumns(r.buf.Cols),
		AbsBase:   r.absBase,
		AbsCount:  r.absCount,
		WinStart:  r.winStart,
		Started:   r.started,
		Emitted:   r.emitted,
		MaxTS:     r.maxTS,
		FlushTS:   r.flushTS,
		Late:      r.late,
		GroupSeen: r.groupSeen,
		PaneStart: r.paneStart,
	}
}

// Restore loads a snapshot into a freshly built runner (same spec, mode,
// and evaluators). Incremental pane summaries are rebuilt by
// re-summarizing the restored buffer over [WinStart, PaneStart); a
// shared watermark group, if attached, is re-raised to the restored
// maximum so the group clock never runs behind restored state.
func (r *Runner) Restore(st *State) error {
	if r.buf.NumRows() != 0 {
		return fmt.Errorf("window: restore into non-empty runner")
	}
	if len(st.Buf) != len(r.buf.Cols) {
		return fmt.Errorf("window: restore image has %d columns, want %d", len(st.Buf), len(r.buf.Cols))
	}
	r.buf.Cols = vector.ColumnsFromWire(st.Buf)
	r.absBase = st.AbsBase
	r.absCount = st.AbsCount
	r.winStart = st.WinStart
	r.started = st.Started
	r.emitted = st.Emitted
	r.maxTS = st.MaxTS
	r.flushTS = st.FlushTS
	r.late = st.Late
	r.groupSeen = st.GroupSeen
	r.paneStart = st.PaneStart
	if r.group != nil && r.maxTS != noTS {
		r.group.Raise(r.maxTS)
	}
	if r.mode == Incremental {
		for p := st.WinStart; p+r.spec.Slide <= st.PaneStart; p += r.spec.Slide {
			var plo, phi int
			if r.spec.Kind == sql.WindowRows {
				plo = int(p - r.absBase)
				phi = plo + int(r.spec.Slide)
			} else {
				plo = r.lowerBound(p)
				phi = r.lowerBound(p + r.spec.Slide)
			}
			sum, err := r.pane.Summarize(r.slice(plo, phi))
			if err != nil {
				return fmt.Errorf("window: rebuilding pane at %d: %w", p, err)
			}
			r.panes = append(r.panes, sum)
		}
	}
	return nil
}

// mod is a non-negative modulus (timestamps may precede the epoch).
func mod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

// slice materializes buffer rows [lo, hi) as window views.
func (r *Runner) slice(lo, hi int) *storage.Relation {
	out := &storage.Relation{Schema: r.buf.Schema, Cols: make([]*vector.Vector, len(r.buf.Cols))}
	for i, c := range r.buf.Cols {
		out.Cols[i] = c.Window(lo, hi)
	}
	return out
}
