package window

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/vector"
)

// PlanEvaluator implements re-evaluation: each window is computed by
// running the full compiled plan with the window content substituted for
// the stream basket — exactly what a factory does for unwindowed queries.
type PlanEvaluator struct {
	Plan    plan.Node
	Catalog *catalog.Catalog
	// Source is the basket name the plan scans; the window content
	// overrides it.
	Source string
}

// Eval implements Evaluator.
func (p *PlanEvaluator) Eval(win *storage.Relation) (*storage.Relation, error) {
	ctx := exec.NewContext(p.Catalog)
	ctx.Overrides[strings.ToLower(p.Source)] = bat.ViewOf(win.Cols...)
	return exec.Run(p.Plan, ctx)
}

// Schema implements Evaluator.
func (p *PlanEvaluator) Schema() *catalog.Schema { return p.Plan.Schema() }

// aggState is the mergeable per-group accumulator for one aggregate.
type aggState struct {
	count    int64 // non-NULL inputs (COUNT(e)); rows for COUNT(*)
	sumI     int64
	sumF     float64
	min      vector.Value
	max      vector.Value
	seen     bool
	isFlt    bool
	distinct map[vector.Value]struct{} // COUNT(DISTINCT e) only
}

func (s *aggState) merge(o *aggState) {
	s.count += o.count
	s.sumI += o.sumI
	s.sumF += o.sumF
	if o.seen {
		if !s.seen {
			s.min, s.max, s.seen = o.min, o.max, true
		} else {
			if vector.Compare(o.min, s.min) < 0 {
				s.min = o.min
			}
			if vector.Compare(o.max, s.max) > 0 {
				s.max = o.max
			}
		}
	}
	if o.distinct != nil {
		if s.distinct == nil {
			s.distinct = map[vector.Value]struct{}{}
		}
		for v := range o.distinct {
			s.distinct[v] = struct{}{}
		}
	}
	s.isFlt = s.isFlt || o.isFlt
}

// groupSummary is one pane's digest: per composite group key, the states
// of every aggregate, plus a representative key row.
type groupSummary struct {
	keys   map[string][]vector.Value // group signature → key values
	states map[string][]*aggState
	order  []string // first-seen order for deterministic output
}

// IncrementalAggEvaluator implements the basic-window model for plans of
// the shape Project(Select?(Aggregate(Scan))) — grouped or scalar
// aggregation over a single stream. Panes are summarized once into
// per-group {count, sum, min, max} states; window results are synthesized
// by merging the pane states and then applying the plan's HAVING and
// projection expressions over the merged aggregate output.
type IncrementalAggEvaluator struct {
	filter    expr.Expr      // Scan filter over the buffered schema
	keys      []expr.Expr    // group-by keys over the buffered schema
	specs     []plan.AggSpec // aggregates over the buffered schema
	having    expr.Expr      // over [keys…, aggs…]
	projExprs []expr.Expr    // over [keys…, aggs…]
	aggSchema *catalog.Schema
	outSchema *catalog.Schema
}

// RecognizeIncremental inspects a compiled plan and builds the incremental
// evaluator when the plan shape supports it. The second result reports
// whether recognition succeeded; callers fall back to re-evaluation
// otherwise.
func RecognizeIncremental(p plan.Node) (*IncrementalAggEvaluator, bool) {
	proj, ok := p.(*plan.Project)
	if !ok {
		return nil, false
	}
	inner := proj.Child
	var having expr.Expr
	if sel, ok := inner.(*plan.Select); ok {
		having = sel.Pred
		inner = sel.Child
	}
	agg, ok := inner.(*plan.Aggregate)
	if !ok {
		return nil, false
	}
	ev, ok := recognizeAgg(agg)
	if !ok {
		return nil, false
	}
	ev.having = having
	ev.outSchema = proj.Out
	ev.projExprs = proj.Exprs
	return ev, true
}

// RecognizePartial builds the incremental evaluator for a bare
// partial-aggregation plan (Aggregate over Scan, no HAVING/projection) —
// the shape shard pipelines of a partitioned windowed query execute,
// emitting mergeable per-window partials instead of final rows.
func RecognizePartial(p plan.Node) (*IncrementalAggEvaluator, bool) {
	agg, ok := p.(*plan.Aggregate)
	if !ok {
		return nil, false
	}
	ev, ok := recognizeAgg(agg)
	if !ok {
		return nil, false
	}
	// Identity projection: the partial rows ARE the aggregate output.
	ev.outSchema = agg.Out
	for i, c := range agg.Out.Columns {
		ev.projExprs = append(ev.projExprs, &expr.ColRef{Index: i, Name: c.Name, Typ: c.Type})
	}
	return ev, true
}

// recognizeAgg builds the shared core (filter, keys, aggregate states)
// from an Aggregate-over-Scan subtree; callers attach the HAVING and
// projection layer.
func recognizeAgg(agg *plan.Aggregate) (*IncrementalAggEvaluator, bool) {
	scan, ok := agg.Child.(*plan.Scan)
	if !ok {
		return nil, false
	}
	// The scan must emit source columns 1:1 so buffered tuples line up
	// with the plan's column indexes (pruning may reorder; require the
	// identity prefix mapping instead of assuming it).
	remap := map[int]int{}
	for outIdx, srcIdx := range scan.Cols {
		remap[outIdx] = srcIdx
	}
	ev := &IncrementalAggEvaluator{aggSchema: agg.Out}
	if scan.Filter != nil {
		ev.filter = scan.Filter // already over the full source schema
	}
	for _, k := range agg.Keys {
		ev.keys = append(ev.keys, expr.Remap(k, remap))
	}
	for _, a := range agg.Aggs {
		spec := a
		if a.Arg != nil {
			spec.Arg = expr.Remap(a.Arg, remap)
		}
		switch a.Kind {
		case algebra.AggCount, algebra.AggCountAll, algebra.AggCountDistinct,
			algebra.AggSum, algebra.AggMin, algebra.AggMax, algebra.AggAvg:
		default:
			return nil, false
		}
		ev.specs = append(ev.specs, spec)
	}
	return ev, true
}

// Schema implements PaneEvaluator.
func (e *IncrementalAggEvaluator) Schema() *catalog.Schema { return e.outSchema }

func groupSig(vals []vector.Value) string {
	var b strings.Builder
	for _, v := range vals {
		if v.Null {
			b.WriteString("\x00N")
		} else {
			b.WriteString(v.String())
		}
		b.WriteByte('\x1f')
	}
	return b.String()
}

// Summarize implements PaneEvaluator.
func (e *IncrementalAggEvaluator) Summarize(pane *storage.Relation) (Summary, error) {
	cands := bat.All(pane.NumRows())
	if e.filter != nil {
		mask, err := expr.Eval(e.filter, pane.Cols, nil)
		if err != nil {
			return nil, err
		}
		cands = algebra.MaskSelect(mask, nil)
	}
	keyVecs := make([]*vector.Vector, len(e.keys))
	for i, k := range e.keys {
		kv, err := expr.Eval(k, pane.Cols, cands)
		if err != nil {
			return nil, err
		}
		keyVecs[i] = kv
	}
	argVecs := make([]*vector.Vector, len(e.specs))
	for i, s := range e.specs {
		if s.Arg == nil {
			continue
		}
		av, err := expr.Eval(s.Arg, pane.Cols, cands)
		if err != nil {
			return nil, err
		}
		argVecs[i] = av
	}

	gs := &groupSummary{keys: map[string][]vector.Value{}, states: map[string][]*aggState{}}
	for row := 0; row < len(cands); row++ {
		keyVals := make([]vector.Value, len(keyVecs))
		for i, kv := range keyVecs {
			keyVals[i] = kv.Get(row)
		}
		sig := groupSig(keyVals)
		states, ok := gs.states[sig]
		if !ok {
			states = make([]*aggState, len(e.specs))
			for i := range states {
				states[i] = &aggState{}
			}
			gs.states[sig] = states
			gs.keys[sig] = keyVals
			gs.order = append(gs.order, sig)
		}
		for i, spec := range e.specs {
			st := states[i]
			if spec.Kind == algebra.AggCountAll {
				st.count++
				continue
			}
			v := argVecs[i].Get(row)
			if v.Null {
				continue
			}
			if spec.Kind == algebra.AggCountDistinct {
				if st.distinct == nil {
					st.distinct = map[vector.Value]struct{}{}
				}
				st.distinct[v] = struct{}{}
				continue
			}
			st.count++
			switch v.Typ {
			case vector.Float64:
				st.sumF += v.F
				st.isFlt = true
			default:
				st.sumI += v.I
				st.sumF += float64(v.I)
			}
			if !st.seen {
				st.min, st.max, st.seen = v, v, true
			} else {
				if vector.Compare(v, st.min) < 0 {
					st.min = v
				}
				if vector.Compare(v, st.max) > 0 {
					st.max = v
				}
			}
		}
	}
	return gs, nil
}

// Merge implements PaneEvaluator.
func (e *IncrementalAggEvaluator) Merge(panes []Summary) (*storage.Relation, error) {
	merged := &groupSummary{keys: map[string][]vector.Value{}, states: map[string][]*aggState{}}
	for _, p := range panes {
		gs, ok := p.(*groupSummary)
		if !ok {
			return nil, fmt.Errorf("window: unexpected summary type %T", p)
		}
		for _, sig := range gs.order {
			dst, exists := merged.states[sig]
			if !exists {
				dst = make([]*aggState, len(e.specs))
				for i := range dst {
					dst[i] = &aggState{}
				}
				merged.states[sig] = dst
				merged.keys[sig] = gs.keys[sig]
				merged.order = append(merged.order, sig)
			}
			for i, st := range gs.states[sig] {
				dst[i].merge(st)
			}
		}
	}

	// A scalar aggregate (no GROUP BY) over an empty window still yields
	// one row — COUNT 0, NULL extremes — matching the kernel's aggregate
	// operator, so both evaluation modes and the shard-merge stage agree
	// on empty windows.
	if len(e.keys) == 0 && len(merged.order) == 0 {
		states := make([]*aggState, len(e.specs))
		for i := range states {
			states[i] = &aggState{}
		}
		sig := groupSig(nil)
		merged.states[sig] = states
		merged.keys[sig] = nil
		merged.order = append(merged.order, sig)
	}

	// Materialize the aggregate output [keys…, aggs…].
	aggRel := storage.NewRelation(e.aggSchema)
	for _, sig := range merged.order {
		row := make([]vector.Value, 0, e.aggSchema.Len())
		row = append(row, merged.keys[sig]...)
		for i, spec := range e.specs {
			st := merged.states[sig][i]
			row = append(row, finishAgg(spec.Kind, st, e.aggSchema.Columns[len(e.keys)+i].Type))
		}
		aggRel.AppendRow(row)
	}

	// HAVING.
	cands := bat.All(aggRel.NumRows())
	if e.having != nil {
		mask, err := expr.Eval(e.having, aggRel.Cols, nil)
		if err != nil {
			return nil, err
		}
		cands = algebra.MaskSelect(mask, nil)
	}
	// Projection.
	out := &storage.Relation{Schema: e.outSchema, Cols: make([]*vector.Vector, len(e.projExprs))}
	for i, pe := range e.projExprs {
		col, err := expr.Eval(pe, aggRel.Cols, cands)
		if err != nil {
			return nil, err
		}
		out.Cols[i] = col
	}
	return out, nil
}

func finishAgg(kind algebra.AggKind, st *aggState, outType vector.Type) vector.Value {
	switch kind {
	case algebra.AggCount, algebra.AggCountAll:
		return vector.NewInt(st.count)
	case algebra.AggCountDistinct:
		return vector.NewInt(int64(len(st.distinct)))
	case algebra.AggSum:
		if st.count == 0 {
			return vector.NullValue(outType)
		}
		if outType == vector.Float64 {
			return vector.NewFloat(st.sumF)
		}
		return vector.NewInt(st.sumI)
	case algebra.AggAvg:
		if st.count == 0 {
			return vector.NullValue(vector.Float64)
		}
		return vector.NewFloat(st.sumF / float64(st.count))
	case algebra.AggMin:
		if !st.seen {
			return vector.NullValue(outType)
		}
		return st.min
	case algebra.AggMax:
		if !st.seen {
			return vector.NullValue(outType)
		}
		return st.max
	default:
		return vector.NullValue(outType)
	}
}
