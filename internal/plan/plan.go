// Package plan builds logical query plans from parsed SQL and optimizes
// them. The planner resolves names against the catalog, turns SQL
// expressions into typed expr trees, and produces a small algebra of nodes
// (Scan, Select, Project, Join, Aggregate, Sort) that the executor runs
// with the kernel's bulk operators.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/sql"
	"repro/internal/vector"
)

// Node is a logical plan operator.
type Node interface {
	// Schema describes the node's output columns.
	Schema() *catalog.Schema
	// String renders one line of plan display.
	String() string
}

// Scan reads a table or basket. Filter (over the FULL source schema) is
// applied during the scan; Cols selects which source columns are emitted
// (column pruning). Consuming marks the paper's basket-expression
// side effect: the positions that survive Filter are recorded for removal
// from the underlying basket.
type Scan struct {
	Source    string
	Kind      catalog.SourceKind
	Consuming bool
	Filter    expr.Expr
	Cols      []int
	Src       *catalog.Schema // full source schema (Filter refers to it)
	Out       *catalog.Schema
}

// Schema implements Node.
func (s *Scan) Schema() *catalog.Schema { return s.Out }

// String implements Node.
func (s *Scan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scan(%s", s.Source)
	if s.Consuming {
		b.WriteString(", consuming")
	}
	if s.Filter != nil {
		fmt.Fprintf(&b, ", filter=%s", s.Filter)
	}
	b.WriteString(")")
	return b.String()
}

// Select filters rows by a boolean predicate over the child schema.
type Select struct {
	Child Node
	Pred  expr.Expr
}

// Schema implements Node.
func (s *Select) Schema() *catalog.Schema { return s.Child.Schema() }

// String implements Node.
func (s *Select) String() string { return fmt.Sprintf("Select(%s)", s.Pred) }

// Project computes output expressions over the child schema.
type Project struct {
	Child Node
	Exprs []expr.Expr
	Out   *catalog.Schema
}

// Schema implements Node.
func (p *Project) Schema() *catalog.Schema { return p.Out }

// String implements Node.
func (p *Project) String() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return "Project(" + strings.Join(parts, ", ") + ")"
}

// Join combines two inputs; On (which may be nil for a cross product) is a
// predicate over the concatenated schema (left columns first). Within,
// when positive, is a time bound in nanoseconds: rows match only when
// their timestamps (columns LTs and RTs of the concatenated schema)
// differ by at most Within — the join-window of JOIN … ON … WITHIN '5s',
// which also bounds streaming join state.
type Join struct {
	L, R   Node
	On     expr.Expr
	Within int64
	// LTs and RTs index the two sides' timestamp columns in the
	// concatenated schema (valid only when Within > 0).
	LTs, RTs int
	Out      *catalog.Schema
}

// Schema implements Node.
func (j *Join) Schema() *catalog.Schema { return j.Out }

// String implements Node.
func (j *Join) String() string {
	if j.On == nil {
		return "CrossJoin"
	}
	if j.Within > 0 {
		return fmt.Sprintf("Join(%s, within=%dns)", j.On, j.Within)
	}
	return fmt.Sprintf("Join(%s)", j.On)
}

// AggSpec is one aggregate computation.
type AggSpec struct {
	Kind algebra.AggKind
	Arg  expr.Expr // nil for COUNT(*)
	Name string
}

// Aggregate groups the child by Keys and computes Aggs per group. Its
// output schema is the keys followed by the aggregates. With no keys it is
// a scalar aggregation producing one row.
type Aggregate struct {
	Child Node
	Keys  []expr.Expr
	Aggs  []AggSpec
	Out   *catalog.Schema
}

// Schema implements Node.
func (a *Aggregate) Schema() *catalog.Schema { return a.Out }

// String implements Node.
func (a *Aggregate) String() string {
	return fmt.Sprintf("Aggregate(keys=%d, aggs=%d)", len(a.Keys), len(a.Aggs))
}

// Distinct removes duplicate rows (SELECT DISTINCT).
type Distinct struct {
	Child Node
}

// Schema implements Node.
func (d *Distinct) Schema() *catalog.Schema { return d.Child.Schema() }

// String implements Node.
func (d *Distinct) String() string { return "Distinct" }

// Sort orders the child by Keys (over the child schema) and optionally
// truncates to Limit rows. Empty Keys with a Limit is a plain LIMIT.
type Sort struct {
	Child Node
	Keys  []expr.Expr
	Desc  []bool
	Limit int64 // -1 for none
}

// Schema implements Node.
func (s *Sort) Schema() *catalog.Schema { return s.Child.Schema() }

// String implements Node.
func (s *Sort) String() string {
	return fmt.Sprintf("Sort(keys=%d, limit=%d)", len(s.Keys), s.Limit)
}

// Walk calls fn for every node of the plan tree in pre-order — the one
// traversal analyzers build on, so adding a node type means extending
// exactly this switch.
func Walk(n Node, fn func(Node)) {
	fn(n)
	switch x := n.(type) {
	case *Select:
		Walk(x.Child, fn)
	case *Project:
		Walk(x.Child, fn)
	case *Aggregate:
		Walk(x.Child, fn)
	case *Distinct:
		Walk(x.Child, fn)
	case *Sort:
		Walk(x.Child, fn)
	case *Join:
		Walk(x.L, fn)
		Walk(x.R, fn)
	}
}

// Explain renders the plan tree, one node per line.
func Explain(n Node) string {
	var b strings.Builder
	var walk func(Node, int)
	walk = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.String())
		b.WriteByte('\n')
		switch x := n.(type) {
		case *Select:
			walk(x.Child, depth+1)
		case *Project:
			walk(x.Child, depth+1)
		case *Join:
			walk(x.L, depth+1)
			walk(x.R, depth+1)
		case *Aggregate:
			walk(x.Child, depth+1)
		case *Sort:
			walk(x.Child, depth+1)
		case *Distinct:
			walk(x.Child, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}

// frame is one name-resolution scope entry: the columns a FROM item
// contributes, at a given offset in the concatenated row.
type frame struct {
	alias      string
	schema     *catalog.Schema
	offset     int
	implicitTS bool // basket scans: hide ts from SELECT *
}

type binder struct {
	frames []frame
}

func (b *binder) width() int {
	if len(b.frames) == 0 {
		return 0
	}
	last := b.frames[len(b.frames)-1]
	return last.offset + last.schema.Len()
}

// resolve turns an identifier into a ColRef over the concatenated schema.
func (b *binder) resolve(id *sql.Ident) (*expr.ColRef, error) {
	if id.Qualifier != "" {
		for _, f := range b.frames {
			if strings.EqualFold(f.alias, id.Qualifier) {
				idx := f.schema.Index(id.Name)
				if idx < 0 {
					return nil, fmt.Errorf("plan: column %q not found in %q", id.Name, id.Qualifier)
				}
				c := f.schema.Columns[idx]
				return &expr.ColRef{Index: f.offset + idx, Name: id.String(), Typ: c.Type}, nil
			}
		}
		return nil, fmt.Errorf("plan: unknown table alias %q", id.Qualifier)
	}
	var found *expr.ColRef
	for _, f := range b.frames {
		idx := f.schema.Index(id.Name)
		if idx < 0 {
			continue
		}
		if found != nil {
			return nil, fmt.Errorf("plan: ambiguous column %q", id.Name)
		}
		c := f.schema.Columns[idx]
		found = &expr.ColRef{Index: f.offset + idx, Name: id.Name, Typ: c.Type}
	}
	if found == nil {
		return nil, fmt.Errorf("plan: unknown column %q", id.Name)
	}
	return found, nil
}

// Build plans a SELECT statement against the catalog. The statement's
// window clause, if any, is not part of the logical plan — the window layer
// handles it (see internal/window).
func Build(sel *sql.SelectStmt, cat *catalog.Catalog) (Node, error) {
	return BuildWithEventTime(sel, cat, "")
}

// BuildWithEventTime plans like Build but resolves JOIN ... WITHIN time
// bounds against the named event-time column instead of the implicit
// arrival ts column (the engine's timestamp = col option). The column
// must exist, uniquely, on both join inputs and be INT or TIMESTAMP.
func BuildWithEventTime(sel *sql.SelectStmt, cat *catalog.Catalog, tsCol string) (Node, error) {
	n, _, err := build(sel, cat, tsCol)
	if err != nil {
		return nil, err
	}
	return Optimize(n), nil
}

// BuildUnoptimized plans without running the optimizer (used by tests and
// the EXPLAIN path).
func BuildUnoptimized(sel *sql.SelectStmt, cat *catalog.Catalog) (Node, error) {
	n, _, err := build(sel, cat, "")
	return n, err
}

func build(sel *sql.SelectStmt, cat *catalog.Catalog, tsCol string) (Node, *binder, error) {
	if len(sel.From) == 0 {
		return nil, nil, fmt.Errorf("plan: SELECT without FROM is not supported")
	}
	b := &binder{}
	var root Node
	for i := range sel.From {
		item := &sel.From[i]
		child, fr, err := buildFromItem(item, cat)
		if err != nil {
			return nil, nil, err
		}
		fr.offset = b.width()
		b.frames = append(b.frames, fr)
		if root == nil {
			root = child
			continue
		}
		out := &catalog.Schema{}
		out.Columns = append(out.Columns, root.Schema().Columns...)
		out.Columns = append(out.Columns, child.Schema().Columns...)
		join := &Join{L: root, R: child, Out: out}
		if item.JoinOn != nil {
			on, err := resolveExpr(item.JoinOn, b, false)
			if err != nil {
				return nil, nil, err
			}
			if on.Type() != vector.Bool {
				return nil, nil, fmt.Errorf("plan: JOIN condition must be boolean")
			}
			join.On = expr.Fold(on)
		}
		if item.Within > 0 {
			tsName := tsCol
			if tsName == "" {
				tsName = catalog.TimestampColumn
			}
			lts, err := soleTimestamp(root.Schema(), tsName, "left")
			if err != nil {
				return nil, nil, err
			}
			rts, err := soleTimestamp(child.Schema(), tsName, "right")
			if err != nil {
				return nil, nil, err
			}
			join.Within = item.Within
			join.LTs = lts
			join.RTs = root.Schema().Len() + rts
		}
		root = join
	}

	if sel.Where != nil {
		pred, err := resolveExpr(sel.Where, b, false)
		if err != nil {
			return nil, nil, err
		}
		if pred.Type() != vector.Bool {
			return nil, nil, fmt.Errorf("plan: WHERE must be boolean, got %s", pred.Type())
		}
		root = &Select{Child: root, Pred: expr.Fold(pred)}
	}

	// Expand the select list; detect aggregation.
	items, err := expandStars(sel.Items, b)
	if err != nil {
		return nil, nil, err
	}
	hasAgg := sel.GroupBy != nil || sel.Having != nil
	for _, it := range items {
		if containsCall(it.Expr) {
			hasAgg = true
		}
	}

	var outNames []string
	var outExprs []expr.Expr
	if hasAgg {
		root, outExprs, outNames, err = buildAggregate(sel, items, root, b)
		if err != nil {
			return nil, nil, err
		}
	} else {
		for _, it := range items {
			e, err := resolveExpr(it.Expr, b, false)
			if err != nil {
				return nil, nil, err
			}
			outExprs = append(outExprs, expr.Fold(e))
			outNames = append(outNames, itemName(it))
		}
	}

	out := &catalog.Schema{}
	for i, e := range outExprs {
		out.Columns = append(out.Columns, catalog.Column{Name: outNames[i], Type: e.Type()})
	}

	// SELECT DISTINCT wraps the projected rows.
	dedupe := func(n Node) Node {
		if sel.Distinct {
			return &Distinct{Child: n}
		}
		return n
	}

	// ORDER BY / LIMIT. Keys are resolved against the projected output
	// first (aliases and output names); if any key only resolves against
	// the pre-projection input, the whole sort is planned below the
	// row-wise Project, which commutes with it.
	if len(sel.OrderBy) == 0 && sel.Limit < 0 {
		return dedupe(&Project{Child: root, Exprs: outExprs, Out: out}), b, nil
	}
	var desc []bool
	for _, o := range sel.OrderBy {
		desc = append(desc, o.Desc)
	}
	outBinder := &binder{frames: []frame{{alias: "", schema: out}}}
	outKeys, errOut := resolveAll(sel.OrderBy, outBinder)
	if errOut == nil {
		proj := dedupe(&Project{Child: root, Exprs: outExprs, Out: out})
		return &Sort{Child: proj, Keys: outKeys, Desc: desc, Limit: sel.Limit}, b, nil
	}
	if hasAgg {
		return nil, nil, fmt.Errorf("plan: ORDER BY must reference output columns: %w", errOut)
	}
	inKeys, errIn := resolveAll(sel.OrderBy, b)
	if errIn != nil {
		return nil, nil, fmt.Errorf("plan: ORDER BY must reference output or input columns: %w", errOut)
	}
	sorted := &Sort{Child: root, Keys: inKeys, Desc: desc, Limit: sel.Limit}
	return dedupe(&Project{Child: sorted, Exprs: outExprs, Out: out}), b, nil
}

// soleTimestamp finds the single time column of one join side for a
// WITHIN bound; zero or several candidates make the bound meaningless (a
// table side has no arrival stamp, a multi-basket side an ambiguous one).
func soleTimestamp(s *catalog.Schema, name, side string) (int, error) {
	found := -1
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			if found >= 0 {
				return 0, fmt.Errorf("plan: WITHIN is ambiguous — the %s join input has several %q columns", side, name)
			}
			found = i
		}
	}
	if found < 0 {
		return 0, fmt.Errorf("plan: WITHIN needs a %q column on the %s join input", name, side)
	}
	switch s.Columns[found].Type {
	case vector.Int64, vector.Timestamp:
	default:
		return 0, fmt.Errorf("plan: WITHIN column %q on the %s join input must be INT or TIMESTAMP, is %s",
			name, side, s.Columns[found].Type)
	}
	return found, nil
}

func resolveAll(items []sql.OrderItem, b *binder) ([]expr.Expr, error) {
	var keys []expr.Expr
	for _, o := range items {
		k, err := resolveExpr(o.Expr, b, false)
		if err != nil {
			return nil, err
		}
		keys = append(keys, expr.Fold(k))
	}
	return keys, nil
}

func itemName(it sql.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if id, ok := it.Expr.(*sql.Ident); ok {
		return id.Name
	}
	if c, ok := it.Expr.(*sql.CallExpr); ok {
		return strings.ToLower(c.Name)
	}
	return "col"
}

// buildFromItem plans a single FROM entry and returns its frame.
func buildFromItem(item *sql.FromItem, cat *catalog.Catalog) (Node, frame, error) {
	if item.Sub != nil {
		if item.Basket {
			return buildBasketExpr(item, cat)
		}
		sub, _, err := build(item.Sub, cat, "")
		if err != nil {
			return nil, frame{}, err
		}
		return sub, frame{alias: item.Alias, schema: sub.Schema()}, nil
	}
	entry, err := cat.Lookup(item.Table)
	if err != nil {
		return nil, frame{}, err
	}
	alias := item.Alias
	if alias == "" {
		alias = item.Table
	}
	src := entry.Source.Schema()
	scan := &Scan{
		Source: entry.Name,
		Kind:   entry.Kind,
		Cols:   allCols(src.Len()),
		Src:    src,
		Out:    src,
	}
	return scan, frame{alias: alias, schema: src, implicitTS: entry.Kind == catalog.KindBasket}, nil
}

// buildBasketExpr plans the paper's `[select … from B where …]` construct.
// The inner query must read exactly one basket; its WHERE becomes the scan
// filter, and the scan is marked consuming so the referenced tuples are
// removed from the basket after execution.
func buildBasketExpr(item *sql.FromItem, cat *catalog.Catalog) (Node, frame, error) {
	inner := item.Sub
	if len(inner.From) != 1 || inner.From[0].Table == "" {
		return nil, frame{}, fmt.Errorf("plan: basket expression must read exactly one basket")
	}
	if inner.GroupBy != nil || inner.Having != nil || len(inner.OrderBy) > 0 || inner.Limit >= 0 || inner.Window != nil {
		return nil, frame{}, fmt.Errorf("plan: basket expression supports only SELECT-FROM-WHERE")
	}
	entry, err := cat.Lookup(inner.From[0].Table)
	if err != nil {
		return nil, frame{}, err
	}
	if entry.Kind != catalog.KindBasket {
		return nil, frame{}, fmt.Errorf("plan: basket expression over %q, which is a %s", entry.Name, entry.Kind)
	}
	src := entry.Source.Schema()
	innerAlias := inner.From[0].Alias
	if innerAlias == "" {
		innerAlias = inner.From[0].Table
	}
	ib := &binder{frames: []frame{{alias: innerAlias, schema: src, implicitTS: true}}}

	scan := &Scan{
		Source:    entry.Name,
		Kind:      entry.Kind,
		Consuming: true,
		Cols:      allCols(src.Len()),
		Src:       src,
		Out:       src,
	}
	if inner.Where != nil {
		pred, err := resolveExpr(inner.Where, ib, false)
		if err != nil {
			return nil, frame{}, err
		}
		if pred.Type() != vector.Bool {
			return nil, frame{}, fmt.Errorf("plan: basket expression WHERE must be boolean")
		}
		scan.Filter = expr.Fold(pred)
	}

	// Inner projection (a bare * keeps the scan as-is).
	star := len(inner.Items) == 1 && inner.Items[0].Star
	if star {
		return scan, frame{alias: item.Alias, schema: src, implicitTS: true}, nil
	}
	items, err := expandStars(inner.Items, ib)
	if err != nil {
		return nil, frame{}, err
	}
	var exprs []expr.Expr
	out := &catalog.Schema{}
	for _, it := range items {
		e, err := resolveExpr(it.Expr, ib, false)
		if err != nil {
			return nil, frame{}, err
		}
		if containsCall(it.Expr) {
			return nil, frame{}, fmt.Errorf("plan: aggregates are not allowed inside a basket expression")
		}
		exprs = append(exprs, expr.Fold(e))
		out.Columns = append(out.Columns, catalog.Column{Name: itemName(it), Type: e.Type()})
	}
	proj := &Project{Child: scan, Exprs: exprs, Out: out}
	return proj, frame{alias: item.Alias, schema: out}, nil
}

func allCols(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// expandStars replaces * items with one item per visible column (hiding
// the implicit basket ts column).
func expandStars(items []sql.SelectItem, b *binder) ([]sql.SelectItem, error) {
	var out []sql.SelectItem
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		for _, f := range b.frames {
			for _, c := range f.schema.Columns {
				if f.implicitTS && strings.EqualFold(c.Name, catalog.TimestampColumn) {
					continue
				}
				out = append(out, sql.SelectItem{
					Expr: &sql.Ident{Qualifier: f.alias, Name: c.Name},
				})
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("plan: empty select list")
	}
	return out, nil
}

func containsCall(e sql.Expr) bool {
	switch x := e.(type) {
	case *sql.CallExpr:
		return true
	case *sql.UnaryExpr:
		return containsCall(x.E)
	case *sql.BinaryExpr:
		return containsCall(x.L) || containsCall(x.R)
	case *sql.IsNullExpr:
		return containsCall(x.E)
	default:
		return false
	}
}

// resolveExpr lowers a SQL expression into a typed expr tree. Aggregate
// calls are rejected unless allowCalls (they are handled by
// buildAggregate, which replaces them before resolution).
func resolveExpr(e sql.Expr, b *binder, allowCalls bool) (expr.Expr, error) {
	switch x := e.(type) {
	case *sql.Ident:
		return b.resolve(x)
	case *sql.Lit:
		return &expr.Const{Val: x.Val}, nil
	case *sql.UnaryExpr:
		inner, err := resolveExpr(x.E, b, allowCalls)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			if inner.Type() != vector.Bool {
				return nil, fmt.Errorf("plan: NOT over %s", inner.Type())
			}
			return &expr.Not{E: inner}, nil
		}
		if !inner.Type().Numeric() {
			return nil, fmt.Errorf("plan: unary minus over %s", inner.Type())
		}
		return &expr.Neg{E: inner}, nil
	case *sql.BinaryExpr:
		l, err := resolveExpr(x.L, b, allowCalls)
		if err != nil {
			return nil, err
		}
		r, err := resolveExpr(x.R, b, allowCalls)
		if err != nil {
			return nil, err
		}
		op, err := binOp(x.Op)
		if err != nil {
			return nil, err
		}
		l, r = retypeNulls(l, r)
		if err := checkBinary(op, l, r); err != nil {
			return nil, err
		}
		return &expr.Binary{Op: op, L: l, R: r}, nil
	case *sql.IsNullExpr:
		inner, err := resolveExpr(x.E, b, allowCalls)
		if err != nil {
			return nil, err
		}
		return &expr.IsNull{E: inner, Negate: x.Not}, nil
	case *sql.CallExpr:
		return nil, fmt.Errorf("plan: aggregate %s not allowed here", x.Name)
	default:
		return nil, fmt.Errorf("plan: unsupported expression %T", e)
	}
}

func binOp(op string) (expr.BinOp, error) {
	switch op {
	case "+":
		return expr.Add, nil
	case "-":
		return expr.Sub, nil
	case "*":
		return expr.Mul, nil
	case "/":
		return expr.Div, nil
	case "%":
		return expr.Mod, nil
	case "=":
		return expr.CmpEq, nil
	case "<>":
		return expr.CmpNe, nil
	case "<":
		return expr.CmpLt, nil
	case "<=":
		return expr.CmpLe, nil
	case ">":
		return expr.CmpGt, nil
	case ">=":
		return expr.CmpGe, nil
	case "AND":
		return expr.And, nil
	case "OR":
		return expr.Or, nil
	default:
		return 0, fmt.Errorf("plan: unknown operator %q", op)
	}
}

// retypeNulls gives untyped NULL literals the type of their peer operand,
// so evaluation never sees an Unknown-typed column.
func retypeNulls(l, r expr.Expr) (expr.Expr, expr.Expr) {
	if c, ok := l.(*expr.Const); ok && c.Val.Null && c.Val.Typ == vector.Unknown {
		l = &expr.Const{Val: vector.NullValue(r.Type())}
	}
	if c, ok := r.(*expr.Const); ok && c.Val.Null && c.Val.Typ == vector.Unknown {
		r = &expr.Const{Val: vector.NullValue(l.Type())}
	}
	return l, r
}

func checkBinary(op expr.BinOp, l, r expr.Expr) error {
	lt, rt := l.Type(), r.Type()
	// NULL literals adopt any type.
	if lt == vector.Unknown || rt == vector.Unknown {
		return nil
	}
	switch {
	case op == expr.And || op == expr.Or:
		if lt != vector.Bool || rt != vector.Bool {
			return fmt.Errorf("plan: %s needs booleans, got %s and %s", op, lt, rt)
		}
	case op.IsComparison():
		if lt != rt && !(lt.Numeric() && rt.Numeric()) {
			return fmt.Errorf("plan: cannot compare %s with %s", lt, rt)
		}
	case op == expr.Add && lt == vector.String && rt == vector.String:
		return nil
	default:
		if !lt.Numeric() || !rt.Numeric() {
			return fmt.Errorf("plan: %s needs numeric operands, got %s and %s", op, lt, rt)
		}
	}
	return nil
}

// buildAggregate plans GROUP BY / aggregate queries. It produces an
// Aggregate node whose output is [keys…, aggs…], then rewrites the select
// items (and HAVING) to reference that output.
func buildAggregate(sel *sql.SelectStmt, items []sql.SelectItem, child Node, b *binder) (Node, []expr.Expr, []string, error) {
	agg := &Aggregate{Child: child}
	keyOf := map[string]int{} // resolved-expr string → key slot

	for _, g := range sel.GroupBy {
		k, err := resolveExpr(g, b, false)
		if err != nil {
			return nil, nil, nil, err
		}
		k = expr.Fold(k)
		if _, dup := keyOf[k.String()]; !dup {
			keyOf[k.String()] = len(agg.Keys)
			agg.Keys = append(agg.Keys, k)
		}
	}

	aggOf := map[string]int{} // call signature → agg slot
	addAgg := func(c *sql.CallExpr) (int, vector.Type, error) {
		kind, err := aggKind(c)
		if err != nil {
			return 0, vector.Unknown, err
		}
		var arg expr.Expr
		sig := "COUNT(*)"
		if !c.Star {
			arg, err = resolveExpr(c.Arg, b, false)
			if err != nil {
				return 0, vector.Unknown, err
			}
			arg = expr.Fold(arg)
			if kind != algebra.AggCount && kind != algebra.AggCountDistinct &&
				kind != algebra.AggMin && kind != algebra.AggMax && !arg.Type().Numeric() {
				return 0, vector.Unknown, fmt.Errorf("plan: %s over %s", c.Name, arg.Type())
			}
			sig = fmt.Sprintf("%s(%s)", c.Name, arg)
			if c.Distinct {
				sig = fmt.Sprintf("%s(DISTINCT %s)", c.Name, arg)
			}
		}
		if slot, ok := aggOf[sig]; ok {
			return slot, aggType(kind, arg), nil
		}
		slot := len(agg.Aggs)
		aggOf[sig] = slot
		agg.Aggs = append(agg.Aggs, AggSpec{Kind: kind, Arg: arg, Name: strings.ToLower(c.Name)})
		return slot, aggType(kind, arg), nil
	}

	// rewrite maps a select-list/having expression over the aggregate's
	// output: aggregate calls become ColRefs to agg slots; subexpressions
	// equal to a group key become ColRefs to key slots.
	nkeysOffset := func(slot int) int { return len(agg.Keys) + slot }
	var rewrite func(e sql.Expr) (expr.Expr, error)
	rewrite = func(e sql.Expr) (expr.Expr, error) {
		if c, ok := e.(*sql.CallExpr); ok {
			slot, typ, err := addAgg(c)
			if err != nil {
				return nil, err
			}
			return &expr.ColRef{Index: nkeysOffset(slot), Name: strings.ToLower(c.Name), Typ: typ}, nil
		}
		// Try to match the whole expression against a group key.
		if resolved, err := resolveExpr(e, b, false); err == nil {
			if slot, ok := keyOf[expr.Fold(resolved).String()]; ok {
				k := agg.Keys[slot]
				return &expr.ColRef{Index: slot, Name: keyName(k), Typ: k.Type()}, nil
			}
			if _, isLit := e.(*sql.Lit); isLit {
				return resolved, nil
			}
		}
		switch x := e.(type) {
		case *sql.UnaryExpr:
			inner, err := rewrite(x.E)
			if err != nil {
				return nil, err
			}
			if x.Op == "NOT" {
				return &expr.Not{E: inner}, nil
			}
			return &expr.Neg{E: inner}, nil
		case *sql.BinaryExpr:
			l, err := rewrite(x.L)
			if err != nil {
				return nil, err
			}
			r, err := rewrite(x.R)
			if err != nil {
				return nil, err
			}
			op, err := binOp(x.Op)
			if err != nil {
				return nil, err
			}
			l, r = retypeNulls(l, r)
			if err := checkBinary(op, l, r); err != nil {
				return nil, err
			}
			return &expr.Binary{Op: op, L: l, R: r}, nil
		case *sql.IsNullExpr:
			inner, err := rewrite(x.E)
			if err != nil {
				return nil, err
			}
			return &expr.IsNull{E: inner, Negate: x.Not}, nil
		case *sql.Lit:
			return &expr.Const{Val: x.Val}, nil
		default:
			return nil, fmt.Errorf("plan: %s must appear in GROUP BY or inside an aggregate", sql.ExprString(e))
		}
	}

	var outExprs []expr.Expr
	var outNames []string
	for _, it := range items {
		e, err := rewrite(it.Expr)
		if err != nil {
			return nil, nil, nil, err
		}
		outExprs = append(outExprs, expr.Fold(e))
		outNames = append(outNames, itemName(it))
	}

	var havingPred expr.Expr
	if sel.Having != nil {
		h, err := rewrite(sel.Having)
		if err != nil {
			return nil, nil, nil, err
		}
		if h.Type() != vector.Bool {
			return nil, nil, nil, fmt.Errorf("plan: HAVING must be boolean")
		}
		havingPred = expr.Fold(h)
	}

	// Aggregate output schema: keys then aggs.
	out := &catalog.Schema{}
	for _, k := range agg.Keys {
		out.Columns = append(out.Columns, catalog.Column{Name: keyName(k), Type: k.Type()})
	}
	for _, a := range agg.Aggs {
		out.Columns = append(out.Columns, catalog.Column{Name: a.Name, Type: aggType(a.Kind, a.Arg)})
	}
	agg.Out = out

	var root Node = agg
	if havingPred != nil {
		root = &Select{Child: root, Pred: havingPred}
	}
	return root, outExprs, outNames, nil
}

func keyName(k expr.Expr) string {
	if c, ok := k.(*expr.ColRef); ok {
		return c.Name
	}
	return k.String()
}

func aggType(kind algebra.AggKind, arg expr.Expr) vector.Type {
	in := vector.Int64
	if arg != nil {
		in = arg.Type()
	}
	return kind.ResultType(in)
}

func aggKind(c *sql.CallExpr) (algebra.AggKind, error) {
	switch c.Name {
	case "COUNT":
		if c.Star {
			return algebra.AggCountAll, nil
		}
		if c.Distinct {
			return algebra.AggCountDistinct, nil
		}
		return algebra.AggCount, nil
	case "SUM":
		return algebra.AggSum, nil
	case "MIN":
		return algebra.AggMin, nil
	case "MAX":
		return algebra.AggMax, nil
	case "AVG":
		return algebra.AggAvg, nil
	default:
		return 0, fmt.Errorf("plan: unknown aggregate %q", c.Name)
	}
}
