package plan

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/vector"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	tbl := storage.NewTable("t", catalog.NewSchema(
		catalog.Column{Name: "a", Type: vector.Int64},
		catalog.Column{Name: "b", Type: vector.Float64},
		catalog.Column{Name: "c", Type: vector.String},
	))
	if err := cat.Register("t", catalog.KindTable, tbl); err != nil {
		t.Fatal(err)
	}
	bk := storage.NewTable("s", catalog.NewSchema(
		catalog.Column{Name: "v", Type: vector.Int64},
	).WithTimestamp())
	if err := cat.Register("s", catalog.KindBasket, bk); err != nil {
		t.Fatal(err)
	}
	return cat
}

func mustBuild(t *testing.T, cat *catalog.Catalog, q string) Node {
	t.Helper()
	sel, err := sql.ParseSelect(q)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(sel, cat)
	if err != nil {
		t.Fatalf("Build(%q): %v", q, err)
	}
	return p
}

func TestBuildShapes(t *testing.T) {
	cat := testCatalog(t)
	cases := map[string]string{
		"SELECT a FROM t":                      "Project",
		"SELECT a FROM t WHERE a > 1":          "Project", // filter pushed into scan
		"SELECT COUNT(*) FROM t":               "Project",
		"SELECT a FROM t ORDER BY a":           "Sort",
		"SELECT a FROM t LIMIT 3":              "Sort",
		"SELECT t1.a FROM t t1, t t2":          "Project",
		"SELECT a, COUNT(*) FROM t GROUP BY a": "Project",
	}
	for q, wantRoot := range cases {
		p := mustBuild(t, cat, q)
		if got := nodeName(p); got != wantRoot {
			t.Errorf("%q root = %s, want %s\n%s", q, got, wantRoot, Explain(p))
		}
	}
}

func nodeName(n Node) string {
	switch n.(type) {
	case *Scan:
		return "Scan"
	case *Select:
		return "Select"
	case *Project:
		return "Project"
	case *Join:
		return "Join"
	case *Aggregate:
		return "Aggregate"
	case *Sort:
		return "Sort"
	default:
		return "?"
	}
}

func TestOutputSchemaNamesAndTypes(t *testing.T) {
	cat := testCatalog(t)
	p := mustBuild(t, cat, "SELECT a, b * 2 AS dbl, c FROM t")
	s := p.Schema()
	if s.Len() != 3 {
		t.Fatalf("schema = %v", s)
	}
	if s.Columns[0].Type != vector.Int64 || s.Columns[1].Type != vector.Float64 || s.Columns[2].Type != vector.String {
		t.Errorf("types = %v", s)
	}
	if s.Columns[1].Name != "dbl" {
		t.Errorf("alias = %q", s.Columns[1].Name)
	}
}

func TestAggregateSchema(t *testing.T) {
	cat := testCatalog(t)
	p := mustBuild(t, cat, "SELECT a, COUNT(*) AS n, AVG(b) AS m FROM t GROUP BY a")
	s := p.Schema()
	if s.Columns[1].Type != vector.Int64 || s.Columns[2].Type != vector.Float64 {
		t.Errorf("agg types = %v", s)
	}
}

func TestDuplicateAggregatesShareSlot(t *testing.T) {
	cat := testCatalog(t)
	p := mustBuild(t, cat, "SELECT COUNT(*), COUNT(*) + 1 FROM t")
	// Inner aggregate node computes COUNT(*) once.
	proj, ok := p.(*Project)
	if !ok {
		t.Fatalf("root = %T", p)
	}
	agg, ok := proj.Child.(*Aggregate)
	if !ok {
		t.Fatalf("child = %T", proj.Child)
	}
	if len(agg.Aggs) != 1 {
		t.Errorf("aggs = %d, want 1 (deduplicated)", len(agg.Aggs))
	}
}

func TestPushdownThroughJoin(t *testing.T) {
	cat := testCatalog(t)
	p := mustBuild(t, cat,
		"SELECT t1.a FROM t t1 JOIN t t2 ON t1.a = t2.a WHERE t1.b > 1 AND t2.b < 5 AND t1.a + t2.a > 0")
	// The single-side conjuncts must be gone from above the join.
	explained := Explain(p)
	if strings.Count(explained, "Select(") > 1 {
		t.Errorf("expected at most one residual Select:\n%s", explained)
	}
	// Both scans carry filters.
	filters := strings.Count(explained, "filter=")
	if filters != 2 {
		t.Errorf("pushed filters = %d, want 2:\n%s", filters, explained)
	}
}

func TestOptimizeIsIdempotent(t *testing.T) {
	cat := testCatalog(t)
	for _, q := range []string{
		"SELECT a FROM t WHERE a > 1 AND b < 2",
		"SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY a LIMIT 3",
		"SELECT t1.a FROM t t1 JOIN t t2 ON t1.a = t2.a WHERE t1.b > 1",
	} {
		sel, _ := sql.ParseSelect(q)
		p1, err := Build(sel, cat)
		if err != nil {
			t.Fatal(err)
		}
		p2 := Optimize(p1)
		if Explain(p1) != Explain(p2) {
			t.Errorf("%q: Optimize not idempotent:\n%s\nvs\n%s", q, Explain(p1), Explain(p2))
		}
	}
}

func TestBasketExprPlanHasConsumingScan(t *testing.T) {
	cat := testCatalog(t)
	p := mustBuild(t, cat, "SELECT * FROM [SELECT * FROM s WHERE v > 5] AS x")
	found := false
	var walk func(Node)
	walk = func(n Node) {
		switch x := n.(type) {
		case *Scan:
			if x.Consuming {
				found = true
				if x.Filter == nil {
					t.Error("predicate window lost its filter")
				}
			}
		case *Select:
			walk(x.Child)
		case *Project:
			walk(x.Child)
		case *Sort:
			walk(x.Child)
		case *Aggregate:
			walk(x.Child)
		case *Join:
			walk(x.L)
			walk(x.R)
		}
	}
	walk(p)
	if !found {
		t.Fatalf("no consuming scan:\n%s", Explain(p))
	}
}

func TestStarOverBasketHidesTS(t *testing.T) {
	cat := testCatalog(t)
	p := mustBuild(t, cat, "SELECT * FROM s")
	if p.Schema().Index(catalog.TimestampColumn) >= 0 {
		t.Errorf("ts leaked into *: %v", p.Schema().Names())
	}
	p = mustBuild(t, cat, "SELECT ts FROM s")
	if p.Schema().Len() != 1 {
		t.Error("explicit ts select failed")
	}
}

func TestJoinSchemaConcatenation(t *testing.T) {
	cat := testCatalog(t)
	sel, _ := sql.ParseSelect("SELECT * FROM t t1 JOIN t t2 ON t1.a = t2.a")
	p, err := Build(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema().Len() != 6 {
		t.Errorf("star over join = %v", p.Schema().Names())
	}
}

func TestExplainCoversAllNodes(t *testing.T) {
	cat := testCatalog(t)
	p := mustBuild(t, cat,
		"SELECT a, COUNT(*) AS n FROM t WHERE b > 0 GROUP BY a HAVING COUNT(*) > 1 ORDER BY a LIMIT 2")
	out := Explain(p)
	for _, want := range []string{"Sort", "Project", "Select", "Aggregate", "Scan"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %s:\n%s", want, out)
		}
	}
}

func TestRetypedNullComparison(t *testing.T) {
	cat := testCatalog(t)
	p := mustBuild(t, cat, "SELECT a FROM t WHERE b = NULL")
	// The NULL literal must have been retyped (no Unknown left anywhere).
	var check func(e expr.Expr)
	check = func(e expr.Expr) {
		switch x := e.(type) {
		case *expr.Const:
			if x.Val.Typ == vector.Unknown {
				t.Error("untyped NULL survived planning")
			}
		case *expr.Binary:
			check(x.L)
			check(x.R)
		case *expr.Not:
			check(x.E)
		case *expr.Neg:
			check(x.E)
		case *expr.IsNull:
			check(x.E)
		}
	}
	var walk func(Node)
	walk = func(n Node) {
		switch x := n.(type) {
		case *Scan:
			if x.Filter != nil {
				check(x.Filter)
			}
		case *Select:
			check(x.Pred)
			walk(x.Child)
		case *Project:
			for _, e := range x.Exprs {
				check(e)
			}
			walk(x.Child)
		}
	}
	walk(p)
}
