package plan

import (
	"repro/internal/catalog"
	"repro/internal/expr"
)

// Optimize runs the rule-based optimizer: predicate pushdown into scans
// and join sides, followed by column pruning so scans materialize only the
// attributes a query touches — the column-store benefit the paper leans on
// (§2.2: "a query needs to read and process only the attributes required").
func Optimize(n Node) Node {
	n = pushdown(n)
	all := make([]bool, n.Schema().Len())
	for i := range all {
		all[i] = true
	}
	pruned, _ := prune(n, all)
	return pruned
}

// pushdown moves filter predicates toward the scans that can evaluate
// them. Consuming scans never absorb outer predicates: the basket
// expression alone decides which tuples are consumed (§2.6).
func pushdown(n Node) Node {
	switch x := n.(type) {
	case *Select:
		child := pushdown(x.Child)
		return pushSelect(x.Pred, child)
	case *Project:
		return &Project{Child: pushdown(x.Child), Exprs: x.Exprs, Out: x.Out}
	case *Join:
		return &Join{L: pushdown(x.L), R: pushdown(x.R), On: x.On,
			Within: x.Within, LTs: x.LTs, RTs: x.RTs, Out: x.Out}
	case *Aggregate:
		return &Aggregate{Child: pushdown(x.Child), Keys: x.Keys, Aggs: x.Aggs, Out: x.Out}
	case *Sort:
		return &Sort{Child: pushdown(x.Child), Keys: x.Keys, Desc: x.Desc, Limit: x.Limit}
	case *Distinct:
		return &Distinct{Child: pushdown(x.Child)}
	default:
		return n
	}
}

func pushSelect(pred expr.Expr, child Node) Node {
	switch c := child.(type) {
	case *Scan:
		if c.Consuming {
			return &Select{Child: c, Pred: pred}
		}
		combined := pred
		if c.Filter != nil {
			combined = &expr.Binary{Op: expr.And, L: c.Filter, R: pred}
		}
		return &Scan{Source: c.Source, Kind: c.Kind, Filter: combined,
			Cols: c.Cols, Src: c.Src, Out: c.Out}
	case *Select:
		return pushSelect(&expr.Binary{Op: expr.And, L: c.Pred, R: pred}, c.Child)
	case *Distinct:
		// A filter commutes with duplicate elimination.
		return &Distinct{Child: pushSelect(pred, c.Child)}
	case *Join:
		lw := c.L.Schema().Len()
		var leftParts, rightParts, keep []expr.Expr
		for _, p := range expr.SplitConjuncts(pred) {
			cols := expr.Columns(p)
			left, right := false, false
			for _, ci := range cols {
				if ci < lw {
					left = true
				} else {
					right = true
				}
			}
			switch {
			case left && !right:
				leftParts = append(leftParts, p)
			case right && !left:
				// Shift indexes into the right child's frame.
				mapping := map[int]int{}
				for _, ci := range cols {
					mapping[ci] = ci - lw
				}
				rightParts = append(rightParts, expr.Remap(p, mapping))
			default:
				keep = append(keep, p)
			}
		}
		l, r := c.L, c.R
		if lp := expr.JoinConjuncts(leftParts); lp != nil {
			l = pushSelect(lp, l)
		}
		if rp := expr.JoinConjuncts(rightParts); rp != nil {
			r = pushSelect(rp, r)
		}
		join := &Join{L: l, R: r, On: c.On,
			Within: c.Within, LTs: c.LTs, RTs: c.RTs, Out: c.Out}
		if kp := expr.JoinConjuncts(keep); kp != nil {
			return &Select{Child: join, Pred: kp}
		}
		return join
	default:
		return &Select{Child: child, Pred: pred}
	}
}

// prune removes unused columns bottom-up. need marks which output columns
// of n the parent requires. It returns the pruned node and the index
// mapping old→new for surviving columns.
func prune(n Node, need []bool) (Node, map[int]int) {
	switch x := n.(type) {
	case *Scan:
		newCols := make([]int, 0, len(x.Cols))
		mapping := map[int]int{}
		out := &catalog.Schema{}
		for i, src := range x.Cols {
			if !need[i] {
				continue
			}
			mapping[i] = len(newCols)
			newCols = append(newCols, src)
			out.Columns = append(out.Columns, x.Out.Columns[i])
		}
		// Row cardinality must survive even when no column's values are
		// needed (e.g. COUNT(*)): keep one column.
		if len(newCols) == 0 && len(x.Cols) > 0 {
			newCols = append(newCols, x.Cols[0])
			out.Columns = append(out.Columns, x.Out.Columns[0])
			mapping[0] = 0
		}
		return &Scan{Source: x.Source, Kind: x.Kind, Consuming: x.Consuming,
			Filter: x.Filter, Cols: newCols, Src: x.Src, Out: out}, mapping

	case *Select:
		childNeed := append([]bool(nil), need...)
		for _, ci := range expr.Columns(x.Pred) {
			childNeed[ci] = true
		}
		child, m := prune(x.Child, childNeed)
		return &Select{Child: child, Pred: expr.Remap(x.Pred, m)}, m

	case *Project:
		var exprs []expr.Expr
		out := &catalog.Schema{}
		mapping := map[int]int{}
		childNeed := make([]bool, x.Child.Schema().Len())
		for i, e := range x.Exprs {
			if !need[i] {
				continue
			}
			mapping[i] = len(exprs)
			exprs = append(exprs, e)
			out.Columns = append(out.Columns, x.Out.Columns[i])
			for _, ci := range expr.Columns(e) {
				childNeed[ci] = true
			}
		}
		child, m := prune(x.Child, childNeed)
		for i, e := range exprs {
			exprs[i] = expr.Remap(e, m)
		}
		return &Project{Child: child, Exprs: exprs, Out: out}, mapping

	case *Join:
		lw := x.L.Schema().Len()
		lNeed := make([]bool, lw)
		rNeed := make([]bool, x.R.Schema().Len())
		mark := func(i int) {
			if i < lw {
				lNeed[i] = true
			} else {
				rNeed[i-lw] = true
			}
		}
		for i, nd := range need {
			if nd {
				mark(i)
			}
		}
		if x.On != nil {
			for _, ci := range expr.Columns(x.On) {
				mark(ci)
			}
		}
		if x.Within > 0 {
			// The WITHIN band reads both sides' ts columns at execution.
			mark(x.LTs)
			mark(x.RTs)
		}
		l, lm := prune(x.L, lNeed)
		r, rm := prune(x.R, rNeed)
		newLW := l.Schema().Len()
		mapping := map[int]int{}
		for old, nw := range lm {
			mapping[old] = nw
		}
		for old, nw := range rm {
			mapping[lw+old] = newLW + nw
		}
		out := &catalog.Schema{}
		out.Columns = append(out.Columns, l.Schema().Columns...)
		out.Columns = append(out.Columns, r.Schema().Columns...)
		var on expr.Expr
		if x.On != nil {
			on = expr.Remap(x.On, mapping)
		}
		nj := &Join{L: l, R: r, On: on, Within: x.Within, Out: out}
		if x.Within > 0 {
			nj.LTs = mapping[x.LTs]
			nj.RTs = mapping[x.RTs]
		}
		return nj, mapping

	case *Aggregate:
		// Keep all aggregate outputs (they are cheap scalars); prune below.
		childNeed := make([]bool, x.Child.Schema().Len())
		for _, k := range x.Keys {
			for _, ci := range expr.Columns(k) {
				childNeed[ci] = true
			}
		}
		for _, a := range x.Aggs {
			if a.Arg != nil {
				for _, ci := range expr.Columns(a.Arg) {
					childNeed[ci] = true
				}
			}
		}
		child, m := prune(x.Child, childNeed)
		keys := make([]expr.Expr, len(x.Keys))
		for i, k := range x.Keys {
			keys[i] = expr.Remap(k, m)
		}
		aggs := make([]AggSpec, len(x.Aggs))
		for i, a := range x.Aggs {
			aggs[i] = a
			if a.Arg != nil {
				aggs[i].Arg = expr.Remap(a.Arg, m)
			}
		}
		mapping := map[int]int{}
		for i := 0; i < x.Out.Len(); i++ {
			mapping[i] = i
		}
		return &Aggregate{Child: child, Keys: keys, Aggs: aggs, Out: x.Out}, mapping

	case *Distinct:
		// Duplicate elimination compares whole rows: every child column is
		// needed regardless of what the parent uses.
		all := make([]bool, x.Child.Schema().Len())
		for i := range all {
			all[i] = true
		}
		child, m := prune(x.Child, all)
		return &Distinct{Child: child}, m

	case *Sort:
		childNeed := append([]bool(nil), need...)
		for _, k := range x.Keys {
			for _, ci := range expr.Columns(k) {
				childNeed[ci] = true
			}
		}
		child, m := prune(x.Child, childNeed)
		keys := make([]expr.Expr, len(x.Keys))
		for i, k := range x.Keys {
			keys[i] = expr.Remap(k, m)
		}
		return &Sort{Child: child, Keys: keys, Desc: x.Desc, Limit: x.Limit}, m

	default:
		mapping := map[int]int{}
		for i := range need {
			mapping[i] = i
		}
		return n, mapping
	}
}
