package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// The experiment tests run at small scale and assert the directional
// claims of the paper — who wins — not absolute numbers.

const testScale = Scale(0.02)

func parseRate(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse rate %q: %v", s, err)
	}
	return v
}

func TestF1(t *testing.T) {
	tbl, err := F1(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if parseRate(t, tbl.Rows[0][3]) <= 0 {
		t.Error("zero throughput")
	}
	// Selectivity 50%: about half selected.
	total, _ := strconv.Atoi(tbl.Rows[0][0])
	selected, _ := strconv.Atoi(tbl.Rows[0][4])
	if selected < total/3 || selected > 2*total/3 {
		t.Errorf("selected = %d of %d, expected ~half", selected, total)
	}
	if tbl.String() == "" {
		t.Error("empty render")
	}
}

func TestE1SharedWinsAtScale(t *testing.T) {
	tbl, err := E1(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// At 64 queries the shared strategy must beat separate (the copy
	// elimination claim). Small-N rows may go either way.
	last := tbl.Rows[len(tbl.Rows)-1]
	sep := parseRate(t, last[1])
	sh := parseRate(t, last[2])
	if sh <= sep {
		t.Errorf("at N=64 shared (%.0f/s) should beat separate (%.0f/s)\n%s", sh, sep, tbl)
	}
}

func TestE2BulkBeatsTupleAtATime(t *testing.T) {
	tbl, err := E2(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The largest batch size must beat the baseline; batch=1 must lose to
	// the largest batch (the batching claim).
	first := tbl.Rows[0]
	last := tbl.Rows[len(tbl.Rows)-1]
	dcSmall := parseRate(t, first[1])
	dcBig := parseRate(t, last[1])
	base := parseRate(t, last[2])
	if dcBig <= base {
		t.Errorf("bulk DataCell (%.0f/s) should beat tuple-at-a-time (%.0f/s)\n%s", dcBig, base, tbl)
	}
	if dcBig <= dcSmall {
		t.Errorf("large batches (%.0f/s) should beat batch=1 (%.0f/s)\n%s", dcBig, dcSmall, tbl)
	}
}

func TestE3CascadeReducesWork(t *testing.T) {
	tbl, err := E3(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	examined := map[string]int{}
	for _, row := range tbl.Rows {
		n, _ := strconv.Atoi(row[3])
		examined[row[0]] = n
	}
	// Separate and shared both examine N×tuples; the cascade examines
	// strictly less (later stages see only rejected tuples).
	if examined["cascade"] >= examined["shared"] {
		t.Errorf("cascade examined %d, shared %d\n%s", examined["cascade"], examined["shared"], tbl)
	}
	if examined["separate"] != examined["shared"] {
		t.Errorf("separate (%d) and shared (%d) should examine the same tuple count",
			examined["separate"], examined["shared"])
	}
}

func TestE4IncrementalWins(t *testing.T) {
	tbl, err := E4(Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Incremental must win on the largest window.
	last := tbl.Rows[len(tbl.Rows)-1]
	re := parseRate(t, last[2])
	inc := parseRate(t, last[3])
	if inc <= re {
		t.Errorf("incremental (%.0f/s) should beat re-evaluation (%.0f/s)\n%s", inc, re, tbl)
	}
}

func TestE5ValidatesAndMeetsBound(t *testing.T) {
	tbl, err := E5(Scale(0.25))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[6] != "PASS" {
			t.Errorf("L=%s misses the response bound\n%s", row[0], tbl)
		}
		if row[7] != "true" {
			t.Errorf("L=%s failed validation\n%s", row[0], tbl)
		}
	}
}

func TestE7OutputsMatchAndRetentionGrows(t *testing.T) {
	tbl, err := E7(Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 10 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// q1 drains fully every round; q2's basket grows monotonically with
	// the out-of-window tuples.
	for i, row := range tbl.Rows {
		q1len, _ := strconv.Atoi(row[1])
		if q1len != 0 {
			t.Errorf("round %d: q1 basket = %d, want 0", i+1, q1len)
		}
	}
	firstQ2, _ := strconv.Atoi(tbl.Rows[0][3])
	lastQ2, _ := strconv.Atoi(tbl.Rows[len(tbl.Rows)-1][3])
	if lastQ2 <= firstQ2 {
		t.Errorf("q2 retention should grow: %d -> %d", firstQ2, lastQ2)
	}
	found := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "matching tuples") {
			found = true
		}
	}
	if !found {
		t.Error("missing output-match note")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID: "X", Title: "t",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"111", "2"}},
		Notes:  []string{"n"},
	}
	s := tbl.String()
	if !strings.Contains(s, "== X: t ==") || !strings.Contains(s, "note: n") {
		t.Errorf("render = %q", s)
	}
}
