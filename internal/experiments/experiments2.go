package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/datacell"
	"repro/internal/linearroad"
	"repro/internal/vector"
	"repro/internal/window"
)

// E3 measures the cascade strategy against shared and separate baskets
// for k disjoint range queries (§2.5: later stages process fewer tuples).
func E3(scale Scale) (*Table, error) {
	total := scale.n(200_000)
	const k = 8
	const domain = 80 // ranges of width 10 cover the whole domain
	rows := intStream(total, domain)

	tbl := &Table{
		ID:     "E3",
		Title:  fmt.Sprintf("cascade vs shared vs separate, %d disjoint range queries", k),
		Header: []string{"strategy", "elapsed", "tuples/s", "tuples examined"},
		Notes:  []string{"examined: total tuples every query/stage had to look at"},
	}

	for _, strategy := range []datacell.Strategy{datacell.SeparateBaskets, datacell.SharedBaskets} {
		eng := datacell.New(datacell.Config{})
		if err := mustSQL(eng, "CREATE BASKET s (v INT)"); err != nil {
			return nil, err
		}
		for i := 0; i < k; i++ {
			_, err := eng.RegisterContinuous(fmt.Sprintf("q%d", i),
				fmt.Sprintf("SELECT * FROM [SELECT * FROM s] AS x WHERE x.v >= %d AND x.v < %d", i*10, (i+1)*10),
				datacell.WithStrategy(strategy), datacell.WithSQLPolling())
			if err != nil {
				return nil, err
			}
		}
		start := time.Now()
		if err := eng.Ingest(context.Background(), "s", rows); err != nil {
			return nil, err
		}
		eng.Drain()
		elapsed := time.Since(start)
		var examined int64
		for i := 0; i < k; i++ {
			q, _ := eng.Query(fmt.Sprintf("q%d", i))
			examined += q.Stats().TuplesIn
		}
		tbl.Rows = append(tbl.Rows, []string{
			strategy.String(), elapsed.Round(time.Millisecond).String(),
			fmtRate(total, elapsed), fmt.Sprint(examined),
		})
	}

	// Cascade.
	eng := datacell.New(datacell.Config{})
	if err := mustSQL(eng, "CREATE BASKET s (v INT)"); err != nil {
		return nil, err
	}
	preds := make([]datacell.CascadePredicate, k)
	for i := range preds {
		preds[i] = datacell.CascadePredicate{
			Attr: "v", Lo: vector.NewInt(int64(i * 10)), Hi: vector.NewInt(int64((i + 1) * 10)),
		}
	}
	c, err := eng.RegisterCascade("casc", "s", preds)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := eng.Ingest(context.Background(), "s", rows); err != nil {
		return nil, err
	}
	eng.Drain()
	elapsed := time.Since(start)
	var examined int64
	for i := 0; i < c.Stages(); i++ {
		examined += c.Processed(i)
	}
	tbl.Rows = append(tbl.Rows, []string{
		"cascade", elapsed.Round(time.Millisecond).String(),
		fmtRate(total, elapsed), fmt.Sprint(examined),
	})
	return tbl, nil
}

// E4 compares window re-evaluation against incremental basic-window
// evaluation for sliding aggregates (§3.1).
func E4(scale Scale) (*Table, error) {
	total := scale.n(400_000)
	tbl := &Table{
		ID:     "E4",
		Title:  "sliding-window SUM/AVG/MIN/MAX: re-evaluation vs incremental",
		Header: []string{"window", "slide", "re-eval tuples/s", "incremental tuples/s", "incremental/re-eval"},
	}
	for _, w := range []int{1_000, 4_000, 16_000, 64_000} {
		if w*2 > total {
			break
		}
		slide := w / 8
		re, err := e4Run(window.ReEvaluate, w, slide, total)
		if err != nil {
			return nil, err
		}
		inc, err := e4Run(window.Incremental, w, slide, total)
		if err != nil {
			return nil, err
		}
		reRate := float64(total) / re.Seconds()
		incRate := float64(total) / inc.Seconds()
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(w), fmt.Sprint(slide),
			fmt.Sprintf("%.0f", reRate), fmt.Sprintf("%.0f", incRate),
			fmt.Sprintf("%.2fx", incRate/reRate),
		})
	}
	return tbl, nil
}

func e4Run(mode window.Mode, w, slide, total int) (time.Duration, error) {
	eng := datacell.New(datacell.Config{})
	if err := mustSQL(eng, "CREATE BASKET s (v INT)"); err != nil {
		return 0, err
	}
	q := fmt.Sprintf(`SELECT SUM(x.v) AS s, AVG(x.v) AS a, MIN(x.v) AS lo, MAX(x.v) AS hi
		FROM [SELECT * FROM s] AS x WINDOW ROWS %d SLIDE %d`, w, slide)
	if _, err := eng.RegisterContinuous("w", q,
		datacell.WithWindowMode(mode), datacell.WithSQLPolling()); err != nil {
		return 0, err
	}
	rows := intStream(total, 1000)
	const batch = 10_000
	start := time.Now()
	for i := 0; i < total; i += batch {
		end := i + batch
		if end > total {
			end = total
		}
		if err := eng.Ingest(context.Background(), "s", rows[i:end]); err != nil {
			return 0, err
		}
		eng.Drain()
	}
	return time.Since(start), nil
}

// E5 runs the scaled Linear Road benchmark and validates against the
// oracle (§5's "out of the box" claim).
func E5(scale Scale) (*Table, error) {
	tbl := &Table{
		ID:     "E5",
		Title:  "Linear Road (scaled): throughput, response time, validation",
		Header: []string{"L", "reports", "reports/s", "notifications", "resp p99", "resp max", "bound", "validated"},
	}
	duration := scale.n(600)
	if duration < 180 {
		duration = 180
	}
	for _, l := range []int{1, 2} {
		cfg := linearroad.GenConfig{
			XWays: l, VehiclesPerXWay: scale.n(200), DurationSec: duration,
			Seed: 42, AccidentEverySec: 120,
		}
		recs := linearroad.Generate(cfg)
		want := linearroad.Reference(recs)
		sys, err := linearroad.NewSystem()
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := sys.Run(recs); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		got := sys.Notifications()
		validated := len(got) == len(want)
		if validated {
			for i := range want {
				if got[i] != want[i] {
					validated = false
					break
				}
			}
		}
		maxResp := time.Duration(sys.Latency.Max())
		bound := "PASS"
		if maxResp >= 5*time.Second {
			bound = "FAIL"
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(l), fmt.Sprint(len(recs)), fmtRate(len(recs), elapsed),
			fmt.Sprint(len(got)),
			time.Duration(sys.Latency.Quantile(0.99)).Round(time.Microsecond).String(),
			maxResp.Round(time.Microsecond).String(),
			bound, fmt.Sprint(validated),
		})
	}
	return tbl, nil
}

// E6 sweeps the offered input rate against a fixed query set and reports
// the latency curve — the knee locates the sustainable throughput.
func E6(scale Scale) (*Table, error) {
	tbl := &Table{
		ID:     "E6",
		Title:  "latency vs offered rate (concurrent scheduler)",
		Header: []string{"offered/s", "achieved/s", "latency p50", "p99", "max"},
		Notes:  []string{"latency: factory batch completion minus newest input timestamp"},
	}
	for _, rate := range []int{10_000, 50_000, 100_000, 250_000, 500_000, 1_000_000} {
		offered := scale.n(rate)
		row, err := e6Run(offered)
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl, nil
}

func e6Run(rate int) ([]string, error) {
	eng := datacell.New(datacell.Config{Workers: 2})
	if err := mustSQL(eng, "CREATE BASKET s (v INT)"); err != nil {
		return nil, err
	}
	q, err := eng.RegisterContinuous("q",
		"SELECT COUNT(*) AS n FROM [SELECT * FROM s] AS x",
		datacell.WithSQLPolling())
	if err != nil {
		return nil, err
	}
	if err := eng.Start(context.Background()); err != nil {
		return nil, err
	}
	defer eng.Stop(context.Background())

	const runFor = 400 * time.Millisecond
	const tick = 5 * time.Millisecond
	perTick := rate * int(tick) / int(time.Second)
	if perTick < 1 {
		perTick = 1
	}
	rows := intStream(perTick, 1000)
	sent := 0
	start := time.Now()
	for time.Since(start) < runFor {
		tickStart := time.Now()
		if err := eng.Ingest(context.Background(), "s", rows); err != nil {
			return nil, err
		}
		sent += perTick
		if d := tick - time.Since(tickStart); d > 0 {
			time.Sleep(d)
		}
	}
	// Allow the engine to finish the backlog.
	deadline := time.Now().Add(2 * time.Second)
	for q.Stats().TuplesIn < int64(sent) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)
	p50, p99, max := ParseLatency(q.Latency())
	return []string{
		fmt.Sprint(rate),
		fmtRate(int(q.Stats().TuplesIn), elapsed),
		p50, p99, max,
	}, nil
}

// E7 contrasts the paper's q1 (consume-all) with q2 (predicate window):
// q2's basket expression consumes only in-window tuples, leaving the rest
// behind — richer semantics, paid for by re-examining retained tuples.
func E7(scale Scale) (*Table, error) {
	rounds := 10
	perRound := scale.n(20_000)
	tbl := &Table{
		ID:     "E7",
		Title:  "q1 consume-all vs q2 predicate window (50% in-window)",
		Header: []string{"round", "q1 basket", "q1 round time", "q2 basket", "q2 round time"},
		Notes: []string{
			"q2 retains out-of-window tuples and re-examines them each firing",
			"matching output is identical (verified)",
		},
	}

	mk := func(query string) (*datacell.Engine, *datacell.Query, error) {
		eng := datacell.New(datacell.Config{})
		if err := mustSQL(eng, "CREATE BASKET s (v INT)"); err != nil {
			return nil, nil, err
		}
		q, err := eng.RegisterContinuous("q", query, datacell.WithSQLPolling())
		return eng, q, err
	}
	e1, q1, err := mk("SELECT * FROM [SELECT * FROM s] AS x WHERE x.v < 500 AND x.v % 2 = 0")
	if err != nil {
		return nil, err
	}
	e2, q2, err := mk("SELECT * FROM [SELECT * FROM s WHERE v < 500] AS x WHERE x.v % 2 = 0")
	if err != nil {
		return nil, err
	}
	for r := 0; r < rounds; r++ {
		rows := intStream(perRound, 1000)
		t1 := time.Now()
		if err := e1.Ingest(context.Background(), "s", rows); err != nil {
			return nil, err
		}
		e1.Drain()
		d1 := time.Since(t1)
		t2 := time.Now()
		if err := e2.Ingest(context.Background(), "s", rows); err != nil {
			return nil, err
		}
		e2.Drain()
		d2 := time.Since(t2)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(r + 1),
			fmt.Sprint(q1.InputBacklog()),
			d1.Round(time.Microsecond).String(),
			fmt.Sprint(q2.InputBacklog()),
			d2.Round(time.Microsecond).String(),
		})
	}
	if q1.Stats().TuplesOut != q2.Stats().TuplesOut {
		return nil, fmt.Errorf("E7: output mismatch: %d vs %d",
			q1.Stats().TuplesOut, q2.Stats().TuplesOut)
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("both variants emitted %d matching tuples", q1.Stats().TuplesOut))
	return tbl, nil
}

// All runs every experiment at the given scale.
func All(scale Scale) ([]*Table, error) {
	type runner struct {
		id string
		fn func(Scale) (*Table, error)
	}
	var out []*Table
	for _, r := range []runner{
		{"F1", F1}, {"E1", E1}, {"E2", E2}, {"E3", E3},
		{"E4", E4}, {"E5", E5}, {"E6", E6}, {"E7", E7},
	} {
		tbl, err := r.fn(scale)
		if err != nil {
			return out, fmt.Errorf("%s: %w", r.id, err)
		}
		out = append(out, tbl)
	}
	return out, nil
}
