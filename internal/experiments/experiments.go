// Package experiments implements the paper-reproduction harness: one
// driver per experiment in DESIGN.md (F1, E1–E7), each returning a
// printable table. cmd/dcbench renders them; the test suite asserts the
// directional claims (who wins) on scaled-down configurations.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/datacell"
	"repro/internal/obs"
	"repro/internal/vector"
)

// Table is one experiment's result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Scale shrinks or grows experiment sizes; 1.0 is the full dcbench run,
// tests use smaller factors.
type Scale float64

func (s Scale) n(full int) int {
	v := int(float64(full) * float64(s))
	if v < 1 {
		return 1
	}
	return v
}

// intStream produces n deterministic pseudo-random ints in [0, domain).
func intStream(n, domain int) [][]vector.Value {
	rows := make([][]vector.Value, n)
	x := uint64(88172645463325252)
	for i := range rows {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		rows[i] = []vector.Value{vector.NewInt(int64(x % uint64(domain)))}
	}
	return rows
}

func fmtRate(n int, d time.Duration) string {
	if d <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.0f", float64(n)/d.Seconds())
}

// F1 measures the Figure-1 pipeline: receptor → basket → factory →
// basket → emitter, one range-filter query.
func F1(scale Scale) (*Table, error) {
	total := scale.n(1_000_000)
	batch := 10_000
	if batch > total {
		batch = total
	}
	eng := datacell.New(datacell.Config{})
	if err := mustSQL(eng, "CREATE BASKET s (v INT)"); err != nil {
		return nil, err
	}
	q, err := eng.RegisterContinuous("f1",
		"SELECT * FROM [SELECT * FROM s] AS x WHERE x.v >= 250 AND x.v < 750",
		datacell.WithSQLPolling())
	if err != nil {
		return nil, err
	}
	rows := intStream(total, 1000)
	start := time.Now()
	for i := 0; i < total; i += batch {
		end := i + batch
		if end > total {
			end = total
		}
		if err := eng.Ingest(context.Background(), "s", rows[i:end]); err != nil {
			return nil, err
		}
		eng.Drain()
	}
	elapsed := time.Since(start)
	st := q.Stats()
	tbl := &Table{
		ID:     "F1",
		Title:  "Figure 1 pipeline: one continuous range filter",
		Header: []string{"tuples", "batch", "elapsed", "tuples/s", "selected", "batch latency p50", "p99"},
		Rows: [][]string{{
			fmt.Sprint(total), fmt.Sprint(batch), elapsed.Round(time.Millisecond).String(),
			fmtRate(total, elapsed), fmt.Sprint(st.TuplesOut),
			time.Duration(q.Latency().Quantile(0.5)).String(),
			time.Duration(q.Latency().Quantile(0.99)).String(),
		}},
	}
	return tbl, nil
}

// E1 compares the separate- and shared-baskets strategies as the number
// of standing queries grows (§2.5: sharing eliminates the input copy).
func E1(scale Scale) (*Table, error) {
	total := scale.n(200_000)
	tbl := &Table{
		ID:     "E1",
		Title:  "separate vs shared baskets, N identical-stream range queries",
		Header: []string{"queries", "separate tuples/s", "shared tuples/s", "shared/separate"},
		Notes:  []string{"same filter per query; separate replicates the input N times"},
	}
	for _, nq := range []int{1, 2, 4, 8, 16, 32, 64} {
		sep, err := e1Run(datacell.SeparateBaskets, nq, total)
		if err != nil {
			return nil, err
		}
		sh, err := e1Run(datacell.SharedBaskets, nq, total)
		if err != nil {
			return nil, err
		}
		sepRate := float64(total) / sep.Seconds()
		shRate := float64(total) / sh.Seconds()
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(nq),
			fmt.Sprintf("%.0f", sepRate),
			fmt.Sprintf("%.0f", shRate),
			fmt.Sprintf("%.2fx", shRate/sepRate),
		})
	}
	return tbl, nil
}

func e1Run(strategy datacell.Strategy, nq, total int) (time.Duration, error) {
	eng := datacell.New(datacell.Config{})
	if err := mustSQL(eng, "CREATE BASKET s (v INT)"); err != nil {
		return 0, err
	}
	for i := 0; i < nq; i++ {
		_, err := eng.RegisterContinuous(fmt.Sprintf("q%d", i),
			"SELECT * FROM [SELECT * FROM s] AS x WHERE x.v >= 100 AND x.v < 200",
			datacell.WithStrategy(strategy), datacell.WithSQLPolling())
		if err != nil {
			return 0, err
		}
	}
	rows := intStream(total, 1000)
	const batch = 10_000
	start := time.Now()
	for i := 0; i < total; i += batch {
		end := i + batch
		if end > total {
			end = total
		}
		if err := eng.Ingest(context.Background(), "s", rows[i:end]); err != nil {
			return 0, err
		}
		eng.Drain()
	}
	return time.Since(start), nil
}

// E2 compares DataCell's bulk processing against the tuple-at-a-time
// baseline across scheduler batch sizes (§4's batch-processing claim).
// The baseline is the queued variant: one operator thread per query fed a
// tuple at a time — the transport cost that defines the model.
func E2(scale Scale) (*Table, error) {
	total := scale.n(200_000)
	rows := intStream(total, 1000)
	col := vector.NewWithCap(vector.Int64, total)
	for _, r := range rows {
		col.AppendInt(r[0].I)
	}

	be := baseline.NewQueued()
	q := &baseline.Query{
		Name: "b",
		Ops: []baseline.Operator{&baseline.RangeFilter{
			Attr: 0, Lo: vector.NewInt(100), Hi: vector.NewInt(200),
		}},
	}
	if err := be.Subscribe("s", q); err != nil {
		return nil, err
	}
	bStart := time.Now()
	for _, r := range rows {
		be.Push("s", r)
	}
	be.Close()
	bElapsed := time.Since(bStart)
	bRate := float64(total) / bElapsed.Seconds()

	tbl := &Table{
		ID:     "E2",
		Title:  "bulk (DataCell) vs tuple-at-a-time (queued baseline), batch-size sweep",
		Header: []string{"batch", "datacell tuples/s", "baseline tuples/s", "datacell/baseline"},
		Notes:  []string{"baseline rate is batch-independent: every tuple takes the operator queue"},
	}
	for _, batch := range []int{1, 10, 100, 1_000, 10_000, 50_000} {
		if batch > total {
			break
		}
		eng := datacell.New(datacell.Config{})
		if err := mustSQL(eng, "CREATE BASKET s (v INT)"); err != nil {
			return nil, err
		}
		if _, err := eng.RegisterContinuous("q",
			"SELECT * FROM [SELECT * FROM s] AS x WHERE x.v >= 100 AND x.v < 200",
			datacell.WithSQLPolling()); err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < total; i += batch {
			end := i + batch
			if end > total {
				end = total
			}
			if err := eng.IngestColumns(context.Background(), "s", []*vector.Vector{col.Window(i, end)}); err != nil {
				return nil, err
			}
			eng.Drain()
		}
		elapsed := time.Since(start)
		rate := float64(total) / elapsed.Seconds()
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(batch),
			fmt.Sprintf("%.0f", rate),
			fmt.Sprintf("%.0f", bRate),
			fmt.Sprintf("%.2fx", rate/bRate),
		})
	}
	return tbl, nil
}

func mustSQL(eng *datacell.Engine, stmt string) error {
	_, err := eng.Exec(context.Background(), stmt)
	return err
}

// ParseLatency summarizes a histogram as (p50, p99, max) strings.
func ParseLatency(h *obs.Histogram) (string, string, string) {
	return time.Duration(h.Quantile(0.5)).String(),
		time.Duration(h.Quantile(0.99)).String(),
		time.Duration(h.Max()).String()
}
