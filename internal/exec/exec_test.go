package exec

import (
	"testing"

	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/vector"
)

// testDB builds a catalog with:
//
//	orders(id INT, cust VARCHAR, amount DOUBLE, qty INT)
//	customers(name VARCHAR, region VARCHAR)
//	events basket(id INT, v INT, ts TIMESTAMP)   — ts implicit
func testDB(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()

	orders := storage.NewTable("orders", catalog.NewSchema(
		catalog.Column{Name: "id", Type: vector.Int64},
		catalog.Column{Name: "cust", Type: vector.String},
		catalog.Column{Name: "amount", Type: vector.Float64},
		catalog.Column{Name: "qty", Type: vector.Int64},
	))
	rows := []struct {
		id     int64
		cust   string
		amount float64
		qty    int64
	}{
		{1, "ann", 10.0, 1},
		{2, "bob", 20.0, 2},
		{3, "ann", 30.0, 3},
		{4, "cat", 40.0, 4},
		{5, "bob", 50.0, 5},
	}
	for _, r := range rows {
		if err := orders.AppendRow([]vector.Value{
			vector.NewInt(r.id), vector.NewString(r.cust),
			vector.NewFloat(r.amount), vector.NewInt(r.qty),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.Register("orders", catalog.KindTable, orders); err != nil {
		t.Fatal(err)
	}

	customers := storage.NewTable("customers", catalog.NewSchema(
		catalog.Column{Name: "name", Type: vector.String},
		catalog.Column{Name: "region", Type: vector.String},
	))
	for _, r := range [][2]string{{"ann", "west"}, {"bob", "east"}, {"dan", "west"}} {
		_ = customers.AppendRow([]vector.Value{vector.NewString(r[0]), vector.NewString(r[1])})
	}
	if err := cat.Register("customers", catalog.KindTable, customers); err != nil {
		t.Fatal(err)
	}

	events := storage.NewTable("events", catalog.NewSchema(
		catalog.Column{Name: "id", Type: vector.Int64},
		catalog.Column{Name: "v", Type: vector.Int64},
	).WithTimestamp())
	for i := int64(0); i < 10; i++ {
		_ = events.AppendRow([]vector.Value{
			vector.NewInt(i), vector.NewInt(i * 10), vector.NewTimestamp(i * 1000),
		})
	}
	if err := cat.Register("events", catalog.KindBasket, events); err != nil {
		t.Fatal(err)
	}
	return cat
}

func runSQL(t *testing.T, cat *catalog.Catalog, q string) (*storage.Relation, *Context) {
	t.Helper()
	sel, err := sql.ParseSelect(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	p, err := plan.Build(sel, cat)
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	ctx := NewContext(cat)
	rel, err := Run(p, ctx)
	if err != nil {
		t.Fatalf("run %q: %v\nplan:\n%s", q, err, plan.Explain(p))
	}
	return rel, ctx
}

func TestSelectStar(t *testing.T) {
	rel, _ := runSQL(t, testDB(t), "SELECT * FROM orders")
	if rel.NumRows() != 5 || rel.Schema.Len() != 4 {
		t.Fatalf("rows=%d cols=%d", rel.NumRows(), rel.Schema.Len())
	}
}

func TestWhereFilter(t *testing.T) {
	rel, _ := runSQL(t, testDB(t), "SELECT id FROM orders WHERE amount > 25")
	if rel.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", rel.NumRows())
	}
	want := map[int64]bool{3: true, 4: true, 5: true}
	for i := 0; i < rel.NumRows(); i++ {
		if !want[rel.Cols[0].Get(i).I] {
			t.Errorf("unexpected id %d", rel.Cols[0].Get(i).I)
		}
	}
}

func TestProjectionExpression(t *testing.T) {
	rel, _ := runSQL(t, testDB(t), "SELECT id, amount * 2 AS double_amt, qty + 1 FROM orders WHERE id = 2")
	if rel.NumRows() != 1 {
		t.Fatalf("rows = %d", rel.NumRows())
	}
	if rel.Schema.Names()[1] != "double_amt" {
		t.Errorf("alias = %v", rel.Schema.Names())
	}
	if rel.Cols[1].Get(0).F != 40.0 || rel.Cols[2].Get(0).I != 3 {
		t.Errorf("row = %v", rel.Row(0))
	}
}

func TestBetweenAndIn(t *testing.T) {
	rel, _ := runSQL(t, testDB(t), "SELECT id FROM orders WHERE amount BETWEEN 20 AND 40")
	if rel.NumRows() != 3 {
		t.Errorf("between rows = %d", rel.NumRows())
	}
	rel, _ = runSQL(t, testDB(t), "SELECT id FROM orders WHERE cust IN ('ann', 'cat')")
	if rel.NumRows() != 3 {
		t.Errorf("in rows = %d", rel.NumRows())
	}
}

func TestOrderByLimit(t *testing.T) {
	rel, _ := runSQL(t, testDB(t), "SELECT id, amount FROM orders ORDER BY amount DESC LIMIT 2")
	if rel.NumRows() != 2 {
		t.Fatalf("rows = %d", rel.NumRows())
	}
	if rel.Cols[0].Get(0).I != 5 || rel.Cols[0].Get(1).I != 4 {
		t.Errorf("order: %v %v", rel.Row(0), rel.Row(1))
	}
}

func TestLimitWithoutOrder(t *testing.T) {
	rel, _ := runSQL(t, testDB(t), "SELECT id FROM orders LIMIT 3")
	if rel.NumRows() != 3 {
		t.Errorf("rows = %d", rel.NumRows())
	}
}

func TestScalarAggregates(t *testing.T) {
	rel, _ := runSQL(t, testDB(t), "SELECT COUNT(*), SUM(amount), MIN(qty), MAX(qty), AVG(amount) FROM orders")
	if rel.NumRows() != 1 {
		t.Fatalf("rows = %d", rel.NumRows())
	}
	row := rel.Row(0)
	if row[0].I != 5 || row[1].F != 150 || row[2].I != 1 || row[3].I != 5 || row[4].F != 30 {
		t.Errorf("aggs = %v", row)
	}
}

func TestGroupBy(t *testing.T) {
	rel, _ := runSQL(t, testDB(t), "SELECT cust, SUM(amount) AS total, COUNT(*) AS n FROM orders GROUP BY cust ORDER BY cust")
	if rel.NumRows() != 3 {
		t.Fatalf("groups = %d", rel.NumRows())
	}
	wantCust := []string{"ann", "bob", "cat"}
	wantTotal := []float64{40, 70, 40}
	wantN := []int64{2, 2, 1}
	for i := 0; i < 3; i++ {
		row := rel.Row(i)
		if row[0].S != wantCust[i] || row[1].F != wantTotal[i] || row[2].I != wantN[i] {
			t.Errorf("group %d = %v", i, row)
		}
	}
}

func TestGroupByHaving(t *testing.T) {
	rel, _ := runSQL(t, testDB(t), "SELECT cust, COUNT(*) AS n FROM orders GROUP BY cust HAVING COUNT(*) > 1 ORDER BY cust")
	if rel.NumRows() != 2 {
		t.Fatalf("groups = %d", rel.NumRows())
	}
	if rel.Cols[0].Get(0).S != "ann" || rel.Cols[0].Get(1).S != "bob" {
		t.Errorf("having: %v", rel)
	}
}

func TestGroupByExpressionOverKeys(t *testing.T) {
	rel, _ := runSQL(t, testDB(t), "SELECT qty % 2 AS parity, COUNT(*) FROM orders GROUP BY qty % 2 ORDER BY parity")
	if rel.NumRows() != 2 {
		t.Fatalf("groups = %d", rel.NumRows())
	}
	// qty 1..5: odd {1,3,5} even {2,4}
	if rel.Cols[1].Get(0).I != 2 || rel.Cols[1].Get(1).I != 3 {
		t.Errorf("parity counts: %v %v", rel.Row(0), rel.Row(1))
	}
}

func TestAggregateArithmetic(t *testing.T) {
	rel, _ := runSQL(t, testDB(t), "SELECT SUM(amount) / COUNT(*) AS mean FROM orders")
	if rel.Cols[0].Get(0).F != 30 {
		t.Errorf("mean = %v", rel.Row(0))
	}
}

func TestJoinHash(t *testing.T) {
	rel, _ := runSQL(t, testDB(t),
		"SELECT o.id, c.region FROM orders AS o JOIN customers AS c ON o.cust = c.name ORDER BY o.id")
	// cat has no customer row; dan has no orders.
	if rel.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4", rel.NumRows())
	}
	if rel.Cols[0].Get(0).I != 1 || rel.Cols[1].Get(0).S != "west" {
		t.Errorf("row0 = %v", rel.Row(0))
	}
}

func TestJoinWithResidualPredicate(t *testing.T) {
	rel, _ := runSQL(t, testDB(t),
		"SELECT o.id FROM orders AS o JOIN customers AS c ON o.cust = c.name AND o.amount > 15 ORDER BY o.id")
	if rel.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", rel.NumRows())
	}
}

func TestCrossJoinWithWhere(t *testing.T) {
	rel, _ := runSQL(t, testDB(t),
		"SELECT o.id FROM orders o, customers c WHERE o.cust = c.name AND c.region = 'east' ORDER BY o.id")
	if rel.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2 (bob's orders)", rel.NumRows())
	}
	if rel.Cols[0].Get(0).I != 2 || rel.Cols[0].Get(1).I != 5 {
		t.Errorf("ids: %v %v", rel.Row(0), rel.Row(1))
	}
}

func TestSubqueryInFrom(t *testing.T) {
	rel, _ := runSQL(t, testDB(t),
		"SELECT big.id FROM (SELECT id, amount FROM orders WHERE amount >= 30) AS big WHERE big.id < 5 ORDER BY big.id")
	if rel.NumRows() != 2 {
		t.Fatalf("rows = %d", rel.NumRows())
	}
	if rel.Cols[0].Get(0).I != 3 || rel.Cols[0].Get(1).I != 4 {
		t.Errorf("rows: %v %v", rel.Row(0), rel.Row(1))
	}
}

func TestBasketScanHidesTimestampFromStar(t *testing.T) {
	rel, _ := runSQL(t, testDB(t), "SELECT * FROM events")
	if rel.Schema.Len() != 2 {
		t.Fatalf("star over basket should hide ts: %v", rel.Schema.Names())
	}
	// But ts is selectable explicitly.
	rel, _ = runSQL(t, testDB(t), "SELECT ts FROM events WHERE id = 3")
	if rel.Cols[0].Get(0).I != 3000 {
		t.Errorf("ts = %v", rel.Row(0))
	}
}

func TestBasketExpressionConsumesAll(t *testing.T) {
	cat := testDB(t)
	rel, ctx := runSQL(t, cat, "SELECT * FROM [SELECT * FROM events] AS S WHERE S.v > 40")
	if rel.NumRows() != 5 { // v in {50..90}
		t.Fatalf("rows = %d, want 5", rel.NumRows())
	}
	// Consume-all: every snapshot tuple referenced (q1 semantics).
	if got := len(ctx.Consumed["events"]); got != 10 {
		t.Errorf("consumed = %d, want 10", got)
	}
}

func TestBasketExpressionPredicateWindow(t *testing.T) {
	cat := testDB(t)
	// q2 semantics: only tuples inside the predicate window are referenced
	// (and therefore consumed); the outer filter does not affect consumption.
	rel, ctx := runSQL(t, cat, "SELECT * FROM [SELECT * FROM events WHERE v < 50] AS S WHERE S.id > 1")
	if rel.NumRows() != 3 { // ids 2,3,4
		t.Fatalf("rows = %d, want 3", rel.NumRows())
	}
	if got := len(ctx.Consumed["events"]); got != 5 { // ids 0..4
		t.Errorf("consumed = %d, want 5", got)
	}
}

func TestBasketExpressionProjection(t *testing.T) {
	rel, _ := runSQL(t, testDB(t), "SELECT S.double_v FROM [SELECT v * 2 AS double_v FROM events WHERE id < 2] AS S")
	if rel.NumRows() != 2 || rel.Cols[0].Get(1).I != 20 {
		t.Fatalf("rel = %v", rel)
	}
}

func TestBasketExpressionErrors(t *testing.T) {
	cat := testDB(t)
	for _, q := range []string{
		"SELECT * FROM [SELECT * FROM orders] AS S",                    // not a basket
		"SELECT * FROM [SELECT * FROM events GROUP BY id] AS S",        // group by inside
		"SELECT * FROM [SELECT COUNT(*) FROM events] AS S",             // aggregate inside
		"SELECT * FROM [SELECT * FROM events ORDER BY id] AS S",        // order inside
		"SELECT * FROM [SELECT * FROM events, orders] AS S",            // two sources
		"SELECT * FROM [SELECT * FROM (SELECT id FROM events) x] AS S", // nested sub-query
	} {
		sel, err := sql.ParseSelect(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, err := plan.Build(sel, cat); err == nil {
			t.Errorf("Build(%q) should fail", q)
		}
	}
}

func TestPlanErrors(t *testing.T) {
	cat := testDB(t)
	for _, q := range []string{
		"SELECT nosuch FROM orders",
		"SELECT id FROM nosuch",
		"SELECT o.nosuch FROM orders o",
		"SELECT x.id FROM orders o",
		"SELECT id FROM orders WHERE amount + 1",             // non-boolean where
		"SELECT id FROM orders WHERE cust > 5",               // type mismatch
		"SELECT id, cust FROM orders GROUP BY id",            // cust not grouped
		"SELECT id FROM orders ORDER BY nosuch",              // unknown order key
		"SELECT id FROM orders o JOIN customers c ON c.name", // non-bool join
		"SELECT SUM(cust) FROM orders",                       // sum over string
		"SELECT -cust FROM orders",                           // neg over string
		"SELECT NOT id FROM orders",                          // not over int
		"SELECT id FROM orders, customers",                   // ambiguous? no: id unique. use:
	} {
		sel, err := sql.ParseSelect(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, err := plan.Build(sel, cat); err == nil && q != "SELECT id FROM orders, customers" {
			t.Errorf("Build(%q) should fail", q)
		}
	}
	// Ambiguous column.
	sel, _ := sql.ParseSelect("SELECT name FROM customers c1, customers c2")
	if _, err := plan.Build(sel, cat); err == nil {
		t.Error("ambiguous column should fail")
	}
}

func TestNullLiteralComparison(t *testing.T) {
	// id = NULL is never true: zero rows.
	rel, _ := runSQL(t, testDB(t), "SELECT id FROM orders WHERE id = NULL")
	if rel.NumRows() != 0 {
		t.Errorf("rows = %d, want 0", rel.NumRows())
	}
	rel, _ = runSQL(t, testDB(t), "SELECT id FROM orders WHERE id IS NOT NULL")
	if rel.NumRows() != 5 {
		t.Errorf("rows = %d, want 5", rel.NumRows())
	}
}

func TestEmptyResultKeepsSchema(t *testing.T) {
	rel, _ := runSQL(t, testDB(t), "SELECT id, amount * 2 AS d FROM orders WHERE id > 100")
	if rel.NumRows() != 0 || rel.Schema.Len() != 2 {
		t.Errorf("rel = %v", rel)
	}
}

func TestOverrides(t *testing.T) {
	cat := testDB(t)
	sel, _ := sql.ParseSelect("SELECT v FROM events WHERE v >= 0")
	p, err := plan.Build(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(cat)
	// Pin the scan to a tiny snapshot.
	ctx.Overrides["events"] = bat.ViewOf(
		vector.FromInts([]int64{100}),
		vector.FromInts([]int64{200}),
		vector.FromTimestamps([]int64{5}),
	)
	rel, err := Run(p, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 1 || rel.Cols[0].Get(0).I != 200 {
		t.Errorf("override result = %v", rel)
	}
}

func TestExplainAndOptimizeShape(t *testing.T) {
	cat := testDB(t)
	sel, _ := sql.ParseSelect("SELECT id FROM orders WHERE amount > 10 AND qty < 4")
	unopt, err := plan.BuildUnoptimized(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	opt := plan.Optimize(unopt)
	// After pushdown the filter lives in the scan: no Select node remains.
	if _, ok := opt.(*plan.Project); !ok {
		t.Fatalf("optimized root = %T\n%s", opt, plan.Explain(opt))
	}
	scan, ok := opt.(*plan.Project).Child.(*plan.Scan)
	if !ok {
		t.Fatalf("optimized child = %T\n%s", opt.(*plan.Project).Child, plan.Explain(opt))
	}
	if scan.Filter == nil {
		t.Error("filter not pushed into scan")
	}
	// Pruning: only id is emitted — amount and qty live only in the scan
	// filter, which evaluates against the full source columns.
	if len(scan.Cols) != 1 || scan.Cols[0] != 0 {
		t.Errorf("scan cols = %v (want just id)", scan.Cols)
	}
	if plan.Explain(opt) == "" {
		t.Error("Explain empty")
	}
}

func TestPruningPreservesResults(t *testing.T) {
	cat := testDB(t)
	for _, q := range []string{
		"SELECT id FROM orders WHERE amount > 25 ORDER BY id",
		"SELECT cust, SUM(amount) FROM orders GROUP BY cust ORDER BY cust",
		"SELECT o.id FROM orders o JOIN customers c ON o.cust = c.name ORDER BY o.id",
	} {
		sel, _ := sql.ParseSelect(q)
		unopt, err := plan.BuildUnoptimized(sel, cat)
		if err != nil {
			t.Fatal(err)
		}
		opt := plan.Optimize(unopt)
		want, err := Run(unopt, NewContext(cat))
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(opt, NewContext(cat))
		if err != nil {
			t.Fatalf("optimized run %q: %v\n%s", q, err, plan.Explain(opt))
		}
		if got.String() != want.String() {
			t.Errorf("%q: optimized result differs\nwant:\n%s\ngot:\n%s", q, want, got)
		}
	}
}

func TestConsumingScanNotAbsorbedByPushdown(t *testing.T) {
	cat := testDB(t)
	sel, _ := sql.ParseSelect("SELECT * FROM [SELECT * FROM events] AS S WHERE S.v > 40")
	p, err := plan.Build(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	// Find the scan and confirm it has no filter (consume-all preserved).
	var findScan func(n plan.Node) *plan.Scan
	findScan = func(n plan.Node) *plan.Scan {
		switch x := n.(type) {
		case *plan.Scan:
			return x
		case *plan.Select:
			return findScan(x.Child)
		case *plan.Project:
			return findScan(x.Child)
		case *plan.Sort:
			return findScan(x.Child)
		case *plan.Aggregate:
			return findScan(x.Child)
		}
		return nil
	}
	scan := findScan(p)
	if scan == nil {
		t.Fatalf("no scan in plan:\n%s", plan.Explain(p))
	}
	if scan.Filter != nil {
		t.Errorf("outer predicate leaked into consuming scan: %s", scan.Filter)
	}
}
