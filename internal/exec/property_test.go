package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/vector"
)

// The property suite compares the full SQL stack (parse → plan → optimize
// → execute) against a brute-force per-row interpreter on randomized data
// and randomized range predicates.

func randomTable(rng *rand.Rand, rows int) *storage.Table {
	t := storage.NewTable("r", catalog.NewSchema(
		catalog.Column{Name: "a", Type: vector.Int64},
		catalog.Column{Name: "b", Type: vector.Int64},
		catalog.Column{Name: "c", Type: vector.Float64},
	))
	for i := 0; i < rows; i++ {
		_ = t.AppendRow([]vector.Value{
			vector.NewInt(int64(rng.Intn(50))),
			vector.NewInt(int64(rng.Intn(50))),
			vector.NewFloat(rng.Float64() * 100),
		})
	}
	return t
}

func TestPropFilterMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		tbl := randomTable(rng, 200)
		cat := catalog.New()
		if err := cat.Register("r", catalog.KindTable, tbl); err != nil {
			t.Fatal(err)
		}
		lo := rng.Intn(50)
		hi := lo + rng.Intn(50)
		q := fmt.Sprintf("SELECT a, b FROM r WHERE a >= %d AND a < %d AND b %% 2 = 0", lo, hi)
		sel, err := sql.ParseSelect(q)
		if err != nil {
			t.Fatal(err)
		}
		p, err := plan.Build(sel, cat)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(p, NewContext(cat))
		if err != nil {
			t.Fatal(err)
		}

		snap := tbl.Snapshot().Columns()
		want := 0
		for i := 0; i < tbl.NumRows(); i++ {
			a := snap[0].Get(i).I
			b := snap[1].Get(i).I
			if a >= int64(lo) && a < int64(hi) && b%2 == 0 {
				want++
			}
		}
		if got.NumRows() != want {
			t.Fatalf("trial %d (%s): got %d rows, want %d", trial, q, got.NumRows(), want)
		}
	}
}

func TestPropGroupByMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		tbl := randomTable(rng, 300)
		cat := catalog.New()
		_ = cat.Register("r", catalog.KindTable, tbl)
		sel, _ := sql.ParseSelect("SELECT a, COUNT(*) AS n, SUM(b) AS s FROM r GROUP BY a ORDER BY a")
		p, err := plan.Build(sel, cat)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(p, NewContext(cat))
		if err != nil {
			t.Fatal(err)
		}

		snap := tbl.Snapshot().Columns()
		type agg struct{ n, s int64 }
		ref := map[int64]*agg{}
		for i := 0; i < tbl.NumRows(); i++ {
			a := snap[0].Get(i).I
			if ref[a] == nil {
				ref[a] = &agg{}
			}
			ref[a].n++
			ref[a].s += snap[1].Get(i).I
		}
		var keys []int64
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		if got.NumRows() != len(keys) {
			t.Fatalf("trial %d: groups %d, want %d", trial, got.NumRows(), len(keys))
		}
		for i, k := range keys {
			row := got.Row(i)
			if row[0].I != k || row[1].I != ref[k].n || row[2].I != ref[k].s {
				t.Fatalf("trial %d group %d: got %v, want key=%d n=%d s=%d",
					trial, i, row, k, ref[k].n, ref[k].s)
			}
		}
	}
}

func TestPropJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		l := randomTable(rng, 80)
		r := randomTable(rng, 60)
		cat := catalog.New()
		_ = cat.Register("l", catalog.KindTable, l)
		_ = cat.Register("rt", catalog.KindTable, r)
		sel, _ := sql.ParseSelect("SELECT l.a FROM l JOIN rt ON l.a = rt.b")
		p, err := plan.Build(sel, cat)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(p, NewContext(cat))
		if err != nil {
			t.Fatal(err)
		}
		ls, rs := l.Snapshot().Columns(), r.Snapshot().Columns()
		want := 0
		for i := 0; i < l.NumRows(); i++ {
			for j := 0; j < r.NumRows(); j++ {
				if ls[0].Get(i).I == rs[1].Get(j).I {
					want++
				}
			}
		}
		if got.NumRows() != want {
			t.Fatalf("trial %d: join rows %d, want %d", trial, got.NumRows(), want)
		}
	}
}

func TestPropOrderByLimitMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		tbl := randomTable(rng, 150)
		cat := catalog.New()
		_ = cat.Register("r", catalog.KindTable, tbl)
		limit := 1 + rng.Intn(20)
		sel, _ := sql.ParseSelect(fmt.Sprintf(
			"SELECT a FROM r ORDER BY a DESC, b ASC LIMIT %d", limit))
		p, err := plan.Build(sel, cat)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(p, NewContext(cat))
		if err != nil {
			t.Fatal(err)
		}
		snap := tbl.Snapshot().Columns()
		type pair struct{ a, b int64 }
		var all []pair
		for i := 0; i < tbl.NumRows(); i++ {
			all = append(all, pair{snap[0].Get(i).I, snap[1].Get(i).I})
		}
		sort.SliceStable(all, func(i, j int) bool {
			if all[i].a != all[j].a {
				return all[i].a > all[j].a
			}
			return all[i].b < all[j].b
		})
		n := limit
		if n > len(all) {
			n = len(all)
		}
		if got.NumRows() != n {
			t.Fatalf("trial %d: rows %d, want %d", trial, got.NumRows(), n)
		}
		for i := 0; i < n; i++ {
			if got.Cols[0].Get(i).I != all[i].a {
				t.Fatalf("trial %d row %d: %d, want %d", trial, i, got.Cols[0].Get(i).I, all[i].a)
			}
		}
	}
}
