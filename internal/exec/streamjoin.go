// Streaming join state: the cross-firing half of runJoin. A continuous
// query's join is not a batch operator — tuples that arrive in different
// firings must still find each other exactly once. StreamJoin keeps the
// persistent state that makes that possible:
//
//   - Symmetric mode (stream ⋈ stream): both sides accumulate into hash
//     tables keyed by the equi-join key. Each firing probes the new
//     tuples of one side against the other side's accumulated table (and
//     vice versa), so every matching pair is produced exactly once no
//     matter how the two arrival orders interleave. A WITHIN bound turns
//     the join into a time-band join and expires entries behind the
//     watermark, keeping the state finite.
//   - Stream-table mode (stream ⋈ table): only the table side is
//     materialized — as a hash table rebuilt when the table's version
//     changes — and each firing's new stream tuples probe it once.
//     Stream tuples are never retained: enrichment matches against the
//     reference table as of the firing.
//
// The factory owns one StreamJoin per join node and installs it in the
// execution Context; runJoin delegates to Probe instead of re-running a
// batch hash join.
package exec

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/vector"
)

// noTS marks "no timestamp observed yet" (same convention as the window
// layer's watermark state).
const noTS = math.MinInt64

// SharedClock is a monotonic max-timestamp register. The shard states of
// one co-partitioned join share one per side, so a shard whose partition
// lags still expires state once the stream as a whole has moved on
// (window.WatermarkGroup satisfies it).
type SharedClock interface {
	Raise(ts int64)
	Max() int64
}

// StreamJoinStats is a snapshot of one join state's counters.
type StreamJoinStats struct {
	// StateRows is the number of rows currently held: both hash sides for
	// a symmetric join, the materialized table for a stream-table join.
	StateRows int64
	// Evictions counts hash entries expired behind the watermark (WITHIN
	// bounds only).
	Evictions int64
	// Late counts probe tuples that arrived behind their side's
	// watermark: their potential matches may already be expired, so the
	// pairs they do find can be incomplete.
	Late int64
}

// StreamJoin is persistent join state for one plan Join node. It is safe
// for concurrent use, though the owning factory serializes Probe; the
// lock mainly guards Stats readers.
type StreamJoin struct {
	join   *plan.Join
	lkeyE  expr.Expr // key expression in the left child's frame
	rkeyE  expr.Expr // key expression in the right child's frame
	rest   expr.Expr // residual predicate over the concatenated frame
	keyTyp vector.Type

	within   int64 // time band in ns; 0 = unbounded
	lateness int64 // allowed disorder per side; watermark trails max by this

	symmetric  bool
	streamSide byte          // stream-table mode: 'L' or 'R'
	tableVer   func() uint64 // stream-table mode: table mutation counter

	mu    sync.Mutex
	left  *joinSide
	right *joinSide
	table *tableCache
	stats StreamJoinStats
}

// joinSide is one accumulated input of a symmetric join.
type joinSide struct {
	rel   *storage.Relation
	keys  []vector.Value // normalized, never NULL (null-key rows are not stored)
	ts    []int64        // event timestamps (timed joins only)
	index map[vector.Value][]int
	tsIdx int // ts column in the child frame; -1 = untimed
	local int64
	clock SharedClock
	// clockSeen is the shared-clock reading this side may act on. The
	// watermark never reads the clock live: another shard may have raised
	// it past tuples still unprocessed in this shard's input basket, and
	// expiring against that reading could evict their partners. The
	// owning factory observes the clock before pinning its inputs (see
	// ObserveClocks), when every tuple below the reading is either
	// already probed or inside the pinned snapshot.
	clockSeen int64
}

// tableCache is the materialized table side of a stream-table join.
type tableCache struct {
	version uint64
	rel     *storage.Relation
	index   map[vector.Value][]int
}

// NewSymmetricJoin builds cross-firing symmetric hash state for a
// stream-stream join. The node must have an equi-join conjunct; lateness
// is the per-side disorder tolerance the watermark trails by.
func NewSymmetricJoin(node *plan.Join, lateness int64) (*StreamJoin, error) {
	sj, err := newStreamJoin(node)
	if err != nil {
		return nil, err
	}
	sj.symmetric = true
	sj.lateness = lateness
	ltsIdx, rtsIdx := -1, -1
	if node.Within > 0 {
		lw := node.L.Schema().Len()
		ltsIdx, rtsIdx = node.LTs, node.RTs-lw
	}
	sj.left = newJoinSide(ltsIdx)
	sj.right = newJoinSide(rtsIdx)
	return sj, nil
}

// NewStreamTableJoin builds enrichment state for a stream-table join:
// streamSide marks which child is the stream ('L' or 'R'); version
// reports the table's mutation counter so the cached hash is rebuilt
// exactly when the table changed.
func NewStreamTableJoin(node *plan.Join, streamSide byte, version func() uint64) (*StreamJoin, error) {
	if node.Within > 0 {
		return nil, fmt.Errorf("exec: WITHIN needs timestamps on both join inputs; a table has none")
	}
	sj, err := newStreamJoin(node)
	if err != nil {
		return nil, err
	}
	if streamSide != 'L' && streamSide != 'R' {
		return nil, fmt.Errorf("exec: invalid stream side %q", streamSide)
	}
	if version == nil {
		return nil, fmt.Errorf("exec: stream-table join needs a table version source")
	}
	sj.streamSide = streamSide
	sj.tableVer = version
	return sj, nil
}

func newStreamJoin(node *plan.Join) (*StreamJoin, error) {
	if node.On == nil {
		return nil, fmt.Errorf("exec: streaming joins need a join condition")
	}
	lw := node.L.Schema().Len()
	lkeyE, rkeyE, rest := expr.EquiKeys(node.On, lw)
	if lkeyE == nil {
		return nil, fmt.Errorf("exec: streaming joins need an equi-join conjunct")
	}
	return &StreamJoin{
		join:   node,
		lkeyE:  lkeyE,
		rkeyE:  rkeyE,
		rest:   expr.JoinConjuncts(rest),
		keyTyp: unifyKeyType(lkeyE.Type(), rkeyE.Type()),
		within: node.Within,
	}, nil
}

func newJoinSide(tsIdx int) *joinSide {
	return &joinSide{
		index:     map[vector.Value][]int{}, // rel is allocated lazily on first insert
		tsIdx:     tsIdx,
		local:     noTS,
		clockSeen: noTS,
	}
}

// Node returns the plan node this state serves (the Context.Joins key).
func (sj *StreamJoin) Node() *plan.Join { return sj.join }

// Symmetric reports whether this is stream-stream state (both inputs are
// streams, so the owning factory must fire when either side has tuples).
func (sj *StreamJoin) Symmetric() bool { return sj.symmetric }

// ShareClocks attaches per-side shared clocks; the shard states of one
// co-partitioned join share them so expiry tracks the whole stream's
// progress, not one shard's subsequence.
func (sj *StreamJoin) ShareClocks(left, right SharedClock) {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	if sj.symmetric {
		sj.left.clock = left
		sj.right.clock = right
	}
}

// ObserveClocks admits the shared clocks' current maxima into this
// state's watermarks. The owning factory calls it BEFORE pinning its
// inputs: every tuple routed below the reading is then either already
// probed or inside the pinned snapshot, so eviction driven by the
// reading can never outrun an unprocessed arrival (the same discipline
// as the window layer's watermark groups).
func (sj *StreamJoin) ObserveClocks() {
	if !sj.symmetric || sj.within == 0 {
		return
	}
	sj.mu.Lock()
	defer sj.mu.Unlock()
	sj.left.observeClock()
	sj.right.observeClock()
}

func (s *joinSide) observeClock() {
	if s.clock == nil {
		return
	}
	if g := s.clock.Max(); g > s.clockSeen {
		s.clockSeen = g
	}
}

// Stats returns a snapshot of the state counters.
func (sj *StreamJoin) Stats() StreamJoinStats {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	st := sj.stats
	st.StateRows = sj.stateRowsLocked()
	return st
}

func (sj *StreamJoin) stateRowsLocked() int64 {
	if sj.symmetric {
		return int64(len(sj.left.keys) + len(sj.right.keys))
	}
	if sj.table != nil {
		return int64(sj.table.rel.NumRows())
	}
	return 0
}

// Probe implements IncrementalJoin.
func (sj *StreamJoin) Probe(eval func(plan.Node) (*storage.Relation, error)) (*storage.Relation, error) {
	if sj.symmetric {
		return sj.probeSymmetric(eval)
	}
	return sj.probeTable(eval)
}

// probeSymmetric is one firing of the symmetric hash join: the new left
// tuples probe the accumulated right side, then join the left table, and
// the new right tuples probe the full (updated) left side — every
// matching pair across firings is found exactly once.
func (sj *StreamJoin) probeSymmetric(eval func(plan.Node) (*storage.Relation, error)) (*storage.Relation, error) {
	lNew, err := eval(sj.join.L)
	if err != nil {
		return nil, err
	}
	rNew, err := eval(sj.join.R)
	if err != nil {
		return nil, err
	}
	sj.mu.Lock()
	defer sj.mu.Unlock()

	lKeys := sj.batchKeys(sj.lkeyE, lNew)
	rKeys := sj.batchKeys(sj.rkeyE, rNew)
	if sj.within > 0 {
		// A tuple behind its own side's watermark may have lost matches to
		// expiry on the opposite side: the eviction frontier there is
		// exactly ownWatermark − within.
		sj.stats.Late += sj.left.countLate(lNew, sj.lateness)
		sj.stats.Late += sj.right.countLate(rNew, sj.lateness)
	}

	out := emptyRelation(sj.join.Out)
	lw := len(sj.join.L.Schema().Columns)

	// New left vs accumulated right (matches across firings, one way).
	sj.matchInto(out, lNew, lKeys, sj.right, true, lw)
	// Absorb the left batch, then new right vs the full left side: pairs
	// inside this firing's two batches are found here, once.
	sj.left.insert(lNew, lKeys)
	sj.matchInto(out, rNew, rKeys, sj.left, false, lw)
	sj.right.insert(rNew, rKeys)

	// Time advances, then state behind the opposite side's horizon goes.
	if sj.within > 0 {
		sj.left.raise(lNew)
		sj.right.raise(rNew)
		if wm, ok := sj.right.watermark(sj.lateness); ok {
			sj.stats.Evictions += int64(sj.left.expire(wm - sj.within))
		}
		if wm, ok := sj.left.watermark(sj.lateness); ok {
			sj.stats.Evictions += int64(sj.right.expire(wm - sj.within))
		}
	}
	return sj.residual(out)
}

// matchInto probes batch rows (with their normalized keys) against the
// accumulated side and appends the matching pairs to out. batchIsLeft
// says which side of the output frame the batch columns fill.
func (sj *StreamJoin) matchInto(out *storage.Relation, batch *storage.Relation, keys []vector.Value, acc *joinSide, batchIsLeft bool, lw int) {
	if batch.NumRows() == 0 || len(acc.keys) == 0 {
		return
	}
	var bts *vector.Vector
	batchTS := -1
	if sj.within > 0 {
		if batchIsLeft {
			batchTS = sj.left.tsIdx
		} else {
			batchTS = sj.right.tsIdx
		}
		bts = batch.Cols[batchTS]
	}
	var bpos, apos []int
	for i, k := range keys {
		if k.Null {
			continue
		}
		cands := acc.index[k]
		if len(cands) == 0 {
			continue
		}
		var t int64
		if bts != nil {
			v := bts.Get(i)
			if v.Null {
				continue
			}
			t = v.I
		}
		for _, p := range cands {
			if bts != nil {
				d := t - acc.ts[p]
				if d < 0 {
					d = -d
				}
				if d > sj.within {
					continue
				}
			}
			bpos = append(bpos, i)
			apos = append(apos, p)
		}
	}
	if len(bpos) == 0 {
		return
	}
	lRel, lpos, rRel, rpos := batch, bpos, acc.rel, apos
	if !batchIsLeft {
		lRel, lpos, rRel, rpos = acc.rel, apos, batch, bpos
	}
	for c := 0; c < lw; c++ {
		out.Cols[c].AppendTake(lRel.Cols[c], lpos, 0)
	}
	for c := lw; c < len(out.Cols); c++ {
		out.Cols[c].AppendTake(rRel.Cols[c-lw], rpos, 0)
	}
}

// probeTable is one firing of the stream-table join: the new stream
// tuples probe the cached table hash, which is re-materialized only when
// the table's version moved.
func (sj *StreamJoin) probeTable(eval func(plan.Node) (*storage.Relation, error)) (*storage.Relation, error) {
	streamChild, tableChild := sj.join.L, sj.join.R
	streamKeyE, tableKeyE := sj.lkeyE, sj.rkeyE
	if sj.streamSide == 'R' {
		streamChild, tableChild = sj.join.R, sj.join.L
		streamKeyE, tableKeyE = sj.rkeyE, sj.lkeyE
	}
	sNew, err := eval(streamChild)
	if err != nil {
		return nil, err
	}

	sj.mu.Lock()
	defer sj.mu.Unlock()
	// The version is read before the snapshot: a concurrent append bumps
	// it after this read, forcing a rebuild next firing — the cache can
	// over-refresh but never silently serve a stale table.
	ver := sj.tableVer()
	if sj.table == nil || sj.table.version != ver {
		tRel, err := eval(tableChild)
		if err != nil {
			return nil, err
		}
		tKeys := sj.batchKeys(tableKeyE, tRel)
		index := make(map[vector.Value][]int, len(tKeys))
		for i, k := range tKeys {
			if k.Null {
				continue
			}
			index[k] = append(index[k], i)
		}
		sj.table = &tableCache{version: ver, rel: tRel, index: index}
	}

	sKeys := sj.batchKeys(streamKeyE, sNew)
	var spos, tpos []int
	for i, k := range sKeys {
		if k.Null {
			continue
		}
		for _, p := range sj.table.index[k] {
			spos = append(spos, i)
			tpos = append(tpos, p)
		}
	}
	out := emptyRelation(sj.join.Out)
	lw := len(sj.join.L.Schema().Columns)
	lRel, lpos, rRel, rpos := sNew, spos, sj.table.rel, tpos
	if sj.streamSide == 'R' {
		lRel, lpos, rRel, rpos = sj.table.rel, tpos, sNew, spos
	}
	for c := 0; c < lw; c++ {
		out.Cols[c].AppendTake(lRel.Cols[c], lpos, 0)
	}
	for c := lw; c < len(out.Cols); c++ {
		out.Cols[c].AppendTake(rRel.Cols[c-lw], rpos, 0)
	}
	return sj.residual(out)
}

// residual applies the non-equi conjuncts of the join condition.
func (sj *StreamJoin) residual(out *storage.Relation) (*storage.Relation, error) {
	if sj.rest == nil || out.NumRows() == 0 {
		return out, nil
	}
	mask, err := expr.Eval(sj.rest, out.Cols, nil)
	if err != nil {
		return nil, err
	}
	return out.Take(algebra.MaskSelect(mask, nil)), nil
}

// batchKeys evaluates and normalizes the join key for every batch row.
func (sj *StreamJoin) batchKeys(keyE expr.Expr, batch *storage.Relation) []vector.Value {
	if batch.NumRows() == 0 {
		return nil
	}
	kv, err := expr.Eval(keyE, batch.Cols, nil)
	if err != nil {
		// Key expressions are type-checked at plan time; evaluation over
		// well-typed columns cannot fail.
		panic(fmt.Sprintf("exec: join key evaluation: %v", err))
	}
	out := make([]vector.Value, kv.Len())
	for i := range out {
		out[i] = normKey(kv.Get(i), sj.keyTyp)
	}
	return out
}

// unifyKeyType picks the normalized key domain for the two key
// expressions: identical types stay (timestamps fold into Int64); mixed
// numeric pairs compare as Float64, matching SQL equality.
func unifyKeyType(l, r vector.Type) vector.Type {
	if l == vector.Float64 || r == vector.Float64 {
		if l != r {
			return vector.Float64
		}
	}
	if l == vector.Timestamp || l == vector.Int64 {
		return vector.Int64
	}
	return l
}

// normKey maps a key value into the unified domain so map equality
// coincides with SQL equality. NULL keys stay NULL (they never match).
func normKey(v vector.Value, typ vector.Type) vector.Value {
	if v.Null {
		return vector.Value{Typ: typ, Null: true}
	}
	switch typ {
	case vector.Int64:
		return vector.Value{Typ: vector.Int64, I: v.I}
	case vector.Float64:
		f := v.F
		if v.Typ == vector.Int64 || v.Typ == vector.Timestamp {
			f = float64(v.I)
		}
		return vector.Value{Typ: vector.Float64, F: f}
	default:
		v.Typ = typ
		return v
	}
}

func emptyRelation(schema *catalog.Schema) *storage.Relation {
	out := &storage.Relation{Schema: schema, Cols: make([]*vector.Vector, schema.Len())}
	for i, c := range schema.Columns {
		out.Cols[i] = vector.New(c.Type)
	}
	return out
}

// --- durability ----------------------------------------------------------

// JoinSideState is the serializable image of one accumulated join side:
// the retained rows plus the side's watermark registers. Keys,
// timestamps, and the hash index are derived data and are rebuilt on
// restore by re-running the insert path over the rows.
type JoinSideState struct {
	Cols      []vector.Wire
	Local     int64
	ClockSeen int64
}

// JoinState is the serializable image of a StreamJoin for checkpoints.
// Stream-table mode carries no rows — the table cache is rebuilt from
// the (separately persisted) table on the first post-restore firing.
type JoinState struct {
	Symmetric bool
	Left      *JoinSideState
	Right     *JoinSideState
	Stats     StreamJoinStats
}

// Snapshot captures the join state.
func (sj *StreamJoin) Snapshot() *JoinState {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	st := &JoinState{Symmetric: sj.symmetric, Stats: sj.stats}
	if sj.symmetric {
		st.Left = sj.left.snapshot()
		st.Right = sj.right.snapshot()
	}
	return st
}

func (s *joinSide) snapshot() *JoinSideState {
	st := &JoinSideState{Local: s.local, ClockSeen: s.clockSeen}
	if s.rel != nil {
		st.Cols = vector.WireColumns(s.rel.Cols)
	}
	return st
}

// Restore loads a snapshot into a freshly built StreamJoin (same plan
// node and configuration). Accumulated rows are re-inserted through the
// normal path, rebuilding keys, timestamps, and the hash index; shared
// clocks, if attached, are re-raised to the restored maxima.
func (sj *StreamJoin) Restore(st *JoinState) error {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	if st.Symmetric != sj.symmetric {
		return fmt.Errorf("exec: join restore mode mismatch")
	}
	sj.stats = st.Stats
	if !sj.symmetric {
		return nil
	}
	if err := sj.left.restore(st.Left, sj.join.L.Schema(), sj, sj.lkeyE); err != nil {
		return err
	}
	return sj.right.restore(st.Right, sj.join.R.Schema(), sj, sj.rkeyE)
}

func (s *joinSide) restore(st *JoinSideState, schema *catalog.Schema, sj *StreamJoin, keyE expr.Expr) error {
	if st == nil {
		return nil
	}
	if len(s.keys) != 0 {
		return fmt.Errorf("exec: join restore into non-empty side")
	}
	if len(st.Cols) > 0 {
		if len(st.Cols) != schema.Len() {
			return fmt.Errorf("exec: join restore image has %d columns, want %d", len(st.Cols), schema.Len())
		}
		rel := &storage.Relation{Schema: schema, Cols: vector.ColumnsFromWire(st.Cols)}
		s.insert(rel, sj.batchKeys(keyE, rel))
	}
	s.local = st.Local
	s.clockSeen = st.ClockSeen
	if s.clock != nil && s.local != noTS {
		s.clock.Raise(s.local)
	}
	return nil
}

// --- joinSide ------------------------------------------------------------

// insert absorbs a batch into the accumulated side. Rows with NULL keys
// (or, on timed sides, NULL timestamps) can never match and are not
// stored.
func (s *joinSide) insert(batch *storage.Relation, keys []vector.Value) {
	n := batch.NumRows()
	if n == 0 {
		return
	}
	if s.rel == nil {
		s.rel = emptyRelation(batch.Schema)
	}
	var tsv *vector.Vector
	if s.tsIdx >= 0 {
		tsv = batch.Cols[s.tsIdx]
	}
	keep := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if keys[i].Null {
			continue
		}
		if tsv != nil && tsv.Get(i).Null {
			continue
		}
		keep = append(keep, i)
	}
	if len(keep) == 0 {
		return
	}
	base := len(s.keys)
	for c, col := range s.rel.Cols {
		col.AppendTake(batch.Cols[c], keep, 0)
	}
	for j, i := range keep {
		k := keys[i]
		s.keys = append(s.keys, k)
		if tsv != nil {
			s.ts = append(s.ts, tsv.Get(i).I)
		}
		s.index[k] = append(s.index[k], base+j)
	}
}

// raise lifts the side's event-time maximum (and the shared clock) to
// the batch maximum.
func (s *joinSide) raise(batch *storage.Relation) {
	if s.tsIdx < 0 || batch.NumRows() == 0 {
		return
	}
	tsv := batch.Cols[s.tsIdx]
	max := int64(noTS)
	for i := 0; i < tsv.Len(); i++ {
		if v := tsv.Get(i); !v.Null && v.I > max {
			max = v.I
		}
	}
	if max == noTS {
		return
	}
	if max > s.local {
		s.local = max
	}
	if s.clock != nil {
		s.clock.Raise(max)
	}
}

// watermark is the side's event-time frontier: max seen (locally, or by
// any shard sharing the clock — via the last safe pre-pin observation)
// minus the allowed lateness.
func (s *joinSide) watermark(lateness int64) (int64, bool) {
	wm := s.local
	if s.clockSeen > wm {
		wm = s.clockSeen
	}
	if wm == noTS {
		return 0, false
	}
	return wm - lateness, true
}

// countLate counts batch tuples behind the side's watermark (computed
// before the batch raises it): the opposite side's expiry frontier is
// watermark − within, so such a tuple's match range may already be gone.
func (s *joinSide) countLate(batch *storage.Relation, lateness int64) int64 {
	if s.tsIdx < 0 || batch.NumRows() == 0 {
		return 0
	}
	wm, ok := s.watermark(lateness)
	if !ok {
		return 0
	}
	tsv := batch.Cols[s.tsIdx]
	late := int64(0)
	for i := 0; i < tsv.Len(); i++ {
		if v := tsv.Get(i); !v.Null && v.I < wm {
			late++
		}
	}
	return late
}

// expire drops rows whose timestamp is behind the frontier. The sweep
// runs every firing (a cheap scan); the O(n) compaction only when the
// expired fraction is worth it, so the retained state stays within a
// small constant factor of the live rows.
func (s *joinSide) expire(frontier int64) int {
	if s.tsIdx < 0 || len(s.ts) == 0 {
		return 0
	}
	expired := 0
	for _, t := range s.ts {
		if t < frontier {
			expired++
		}
	}
	n := len(s.ts)
	if expired == 0 || (expired < n/4 && expired < 4096) {
		return 0
	}
	keep := make([]int, 0, n-expired)
	for i, t := range s.ts {
		if t >= frontier {
			keep = append(keep, i)
		}
	}
	s.rel = s.rel.Take(keep)
	newKeys := make([]vector.Value, 0, len(keep))
	newTS := make([]int64, 0, len(keep))
	index := make(map[vector.Value][]int, len(keep))
	for j, i := range keep {
		k := s.keys[i]
		newKeys = append(newKeys, k)
		newTS = append(newTS, s.ts[i])
		index[k] = append(index[k], j)
	}
	s.keys, s.ts, s.index = newKeys, newTS, index
	return expired
}
