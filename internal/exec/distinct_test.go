package exec

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/vector"
)

func dupDB(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	tbl := storage.NewTable("d", catalog.NewSchema(
		catalog.Column{Name: "k", Type: vector.Int64},
		catalog.Column{Name: "v", Type: vector.String},
	))
	for _, r := range []struct {
		k int64
		v string
	}{
		{1, "a"}, {1, "a"}, {1, "b"}, {2, "a"}, {2, "a"}, {3, "c"},
	} {
		_ = tbl.AppendRow([]vector.Value{vector.NewInt(r.k), vector.NewString(r.v)})
	}
	if err := cat.Register("d", catalog.KindTable, tbl); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestSelectDistinct(t *testing.T) {
	rel, _ := runSQL(t, dupDB(t), "SELECT DISTINCT k, v FROM d ORDER BY k, v")
	if rel.NumRows() != 4 {
		t.Fatalf("distinct rows = %d, want 4\n%s", rel.NumRows(), rel)
	}
	want := []struct {
		k int64
		v string
	}{{1, "a"}, {1, "b"}, {2, "a"}, {3, "c"}}
	for i, w := range want {
		row := rel.Row(i)
		if row[0].I != w.k || row[1].S != w.v {
			t.Errorf("row %d = %v, want %+v", i, row, w)
		}
	}
}

func TestSelectDistinctSingleColumn(t *testing.T) {
	rel, _ := runSQL(t, dupDB(t), "SELECT DISTINCT k FROM d ORDER BY k")
	if rel.NumRows() != 3 {
		t.Fatalf("distinct k = %d rows", rel.NumRows())
	}
}

func TestSelectDistinctWithWhere(t *testing.T) {
	rel, _ := runSQL(t, dupDB(t), "SELECT DISTINCT v FROM d WHERE k = 1")
	if rel.NumRows() != 2 {
		t.Fatalf("rows = %d", rel.NumRows())
	}
}

func TestSelectDistinctWithLimit(t *testing.T) {
	rel, _ := runSQL(t, dupDB(t), "SELECT DISTINCT k FROM d ORDER BY k DESC LIMIT 2")
	if rel.NumRows() != 2 || rel.Cols[0].Get(0).I != 3 {
		t.Fatalf("rel = %v", rel)
	}
}

func TestCountDistinct(t *testing.T) {
	rel, _ := runSQL(t, dupDB(t), "SELECT COUNT(DISTINCT k), COUNT(DISTINCT v), COUNT(v) FROM d")
	row := rel.Row(0)
	if row[0].I != 3 || row[1].I != 3 || row[2].I != 6 {
		t.Errorf("counts = %v", row)
	}
}

func TestCountDistinctGrouped(t *testing.T) {
	rel, _ := runSQL(t, dupDB(t), "SELECT k, COUNT(DISTINCT v) AS dv FROM d GROUP BY k ORDER BY k")
	want := []int64{2, 1, 1}
	if rel.NumRows() != 3 {
		t.Fatalf("groups = %d", rel.NumRows())
	}
	for i, w := range want {
		if rel.Cols[1].Get(i).I != w {
			t.Errorf("group %d distinct = %d, want %d", i, rel.Cols[1].Get(i).I, w)
		}
	}
}

func TestCountDistinctIgnoresNulls(t *testing.T) {
	cat := catalog.New()
	tbl := storage.NewTable("n", catalog.NewSchema(
		catalog.Column{Name: "v", Type: vector.Int64},
	))
	_ = tbl.AppendRow([]vector.Value{vector.NewInt(1)})
	_ = tbl.AppendRow([]vector.Value{vector.NullValue(vector.Int64)})
	_ = tbl.AppendRow([]vector.Value{vector.NewInt(1)})
	_ = cat.Register("n", catalog.KindTable, tbl)
	rel, _ := runSQL(t, cat, "SELECT COUNT(DISTINCT v) FROM n")
	if rel.Cols[0].Get(0).I != 1 {
		t.Errorf("count distinct with nulls = %v", rel.Row(0))
	}
}

func TestDistinctOnlyInCount(t *testing.T) {
	cat := dupDB(t)
	_ = cat
	if _, err := runSQLErr(cat, "SELECT SUM(DISTINCT k) FROM d"); err == nil {
		t.Error("SUM(DISTINCT) should be rejected")
	}
}

func runSQLErr(cat *catalog.Catalog, q string) (*storage.Relation, error) {
	sel, err := sql.ParseSelect(q)
	if err != nil {
		return nil, err
	}
	p, err := plan.Build(sel, cat)
	if err != nil {
		return nil, err
	}
	return Run(p, NewContext(cat))
}
