package exec

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/vector"
)

func joinDB(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	a := storage.NewTable("a", catalog.NewSchema(
		catalog.Column{Name: "x", Type: vector.Int64},
	))
	for _, v := range []int64{1, 2, 3} {
		_ = a.AppendRow([]vector.Value{vector.NewInt(v)})
	}
	b := storage.NewTable("b", catalog.NewSchema(
		catalog.Column{Name: "y", Type: vector.Int64},
	))
	for _, v := range []int64{2, 3, 4} {
		_ = b.AppendRow([]vector.Value{vector.NewInt(v)})
	}
	if err := cat.Register("a", catalog.KindTable, a); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register("b", catalog.KindTable, b); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestPureCrossJoin(t *testing.T) {
	rel, _ := runSQL(t, joinDB(t), "SELECT a.x, b.y FROM a, b")
	if rel.NumRows() != 9 {
		t.Errorf("cross join rows = %d, want 9", rel.NumRows())
	}
}

func TestNonEquiJoinFallsBackToCross(t *testing.T) {
	rel, _ := runSQL(t, joinDB(t), "SELECT a.x, b.y FROM a JOIN b ON a.x < b.y ORDER BY a.x, b.y")
	// pairs where x < y: (1,2)(1,3)(1,4)(2,3)(2,4)(3,4) = 6
	if rel.NumRows() != 6 {
		t.Fatalf("non-equi rows = %d, want 6", rel.NumRows())
	}
	if rel.Cols[0].Get(0).I != 1 || rel.Cols[1].Get(0).I != 2 {
		t.Errorf("first pair = %v", rel.Row(0))
	}
}

func TestEquiJoinOnExpressionKeys(t *testing.T) {
	// Key expressions, not bare columns: x+1 = y.
	rel, _ := runSQL(t, joinDB(t), "SELECT a.x FROM a JOIN b ON a.x + 1 = b.y ORDER BY a.x")
	// x+1 ∈ {2,3,4} matches y ∈ {2,3,4}: all three x qualify.
	if rel.NumRows() != 3 {
		t.Fatalf("expr-key join rows = %d, want 3", rel.NumRows())
	}
}

func TestThreeWayJoin(t *testing.T) {
	rel, _ := runSQL(t, joinDB(t),
		"SELECT a.x FROM a JOIN b ON a.x = b.y JOIN a AS a2 ON b.y = a2.x ORDER BY a.x")
	// x=y for {2,3}; then y=a2.x again {2,3}.
	if rel.NumRows() != 2 {
		t.Fatalf("three-way rows = %d, want 2", rel.NumRows())
	}
}

func TestJoinEmptySide(t *testing.T) {
	cat := joinDB(t)
	empty := storage.NewTable("e", catalog.NewSchema(
		catalog.Column{Name: "z", Type: vector.Int64},
	))
	_ = cat.Register("e", catalog.KindTable, empty)
	rel, _ := runSQL(t, cat, "SELECT a.x FROM a JOIN e ON a.x = e.z")
	if rel.NumRows() != 0 {
		t.Errorf("join with empty side = %d rows", rel.NumRows())
	}
	rel, _ = runSQL(t, cat, "SELECT a.x FROM a, e")
	if rel.NumRows() != 0 {
		t.Errorf("cross with empty side = %d rows", rel.NumRows())
	}
}

func TestSelfJoinWithAliases(t *testing.T) {
	rel, _ := runSQL(t, joinDB(t),
		"SELECT a1.x, a2.x FROM a a1 JOIN a a2 ON a1.x = a2.x")
	if rel.NumRows() != 3 {
		t.Errorf("self join rows = %d", rel.NumRows())
	}
}
