// Package exec is the physical executor: it runs logical plans with the
// kernel's bulk operators, producing materialized relations. A factory
// executes its compiled plan here on every firing; the Context carries the
// snapshot overrides and collects basket-expression consumption so the
// factory can remove the referenced tuples afterwards.
package exec

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/vector"
)

// Context carries per-execution state.
type Context struct {
	// Catalog resolves scan sources.
	Catalog *catalog.Catalog
	// Overrides, when set, pin a scan source to a fixed chunked view
	// instead of a live catalog snapshot. Keys are lower-case source
	// names. Factories use this to run a plan against the snapshot they
	// locked; wrap flat columns with bat.ViewOf.
	Overrides map[string]bat.View
	// Consumed collects, per basket, the snapshot positions referenced by
	// consuming scans. The caller applies the removal (§2.6: "all tuples
	// referenced in a basket expression are removed … automatically").
	Consumed map[string]bat.Candidates
	// Joins binds plan Join nodes to persistent streaming join state: the
	// node's children then feed the state's delta probe instead of a
	// batch hash join. Factories install their StreamJoin here per
	// firing.
	Joins map[*plan.Join]IncrementalJoin
}

// IncrementalJoin is persistent cross-firing join state for one plan
// Join node. Probe receives an evaluator for the node's children and
// returns only the new matches this firing produced.
type IncrementalJoin interface {
	Probe(eval func(plan.Node) (*storage.Relation, error)) (*storage.Relation, error)
}

// NewContext returns a Context over the catalog.
func NewContext(cat *catalog.Catalog) *Context {
	return &Context{
		Catalog:   cat,
		Overrides: map[string]bat.View{},
		Consumed:  map[string]bat.Candidates{},
		Joins:     map[*plan.Join]IncrementalJoin{},
	}
}

// Run executes the plan and returns the result relation.
func Run(n plan.Node, ctx *Context) (*storage.Relation, error) {
	switch x := n.(type) {
	case *plan.Scan:
		return runScan(x, ctx)
	case *plan.Select:
		return runSelect(x, ctx)
	case *plan.Project:
		return runProject(x, ctx)
	case *plan.Join:
		return runJoin(x, ctx)
	case *plan.Aggregate:
		return runAggregate(x, ctx)
	case *plan.Sort:
		return runSort(x, ctx)
	case *plan.Distinct:
		return runDistinct(x, ctx)
	default:
		return nil, fmt.Errorf("exec: unknown plan node %T", n)
	}
}

func sourceView(name string, ctx *Context) (bat.View, error) {
	if view, ok := ctx.Overrides[strings.ToLower(name)]; ok {
		return view, nil
	}
	entry, err := ctx.Catalog.Lookup(name)
	if err != nil {
		return bat.View{}, err
	}
	return entry.Source.Snapshot(), nil
}

// filterCandidates evaluates a boolean predicate over cols, using
// candidate-list theta-selects for `column ⋈ constant` conjuncts (the
// kernel's native selection path) and falling back to mask evaluation for
// the rest. A nil result means "all rows".
func filterCandidates(pred expr.Expr, cols []*vector.Vector, n int) (bat.Candidates, error) {
	var cands bat.Candidates
	var rest []expr.Expr
	for _, c := range expr.SplitConjuncts(pred) {
		col, op, val, ok := thetaConjunct(c)
		if !ok {
			rest = append(rest, c)
			continue
		}
		cands = algebra.ThetaSelect(cols[col], cands, op, val)
	}
	if leftover := expr.JoinConjuncts(rest); leftover != nil {
		mask, err := expr.Eval(leftover, cols, cands)
		if err != nil {
			return nil, err
		}
		cands = algebra.MaskSelect(mask, cands)
	}
	return cands, nil
}

// thetaConjunct recognizes `col ⋈ const` (or the flipped form) conjuncts.
func thetaConjunct(e expr.Expr) (col int, op algebra.CmpOp, val vector.Value, ok bool) {
	b, isBin := e.(*expr.Binary)
	if !isBin || !b.Op.IsComparison() {
		return 0, 0, vector.Value{}, false
	}
	if cr, isCol := b.L.(*expr.ColRef); isCol {
		if c, isConst := b.R.(*expr.Const); isConst && comparable(cr.Typ, c.Val.Typ) {
			return cr.Index, b.Op.CmpOp(), c.Val, true
		}
	}
	if cr, isCol := b.R.(*expr.ColRef); isCol {
		if c, isConst := b.L.(*expr.Const); isConst && comparable(cr.Typ, c.Val.Typ) {
			return cr.Index, flip(b.Op.CmpOp()), c.Val, true
		}
	}
	return 0, 0, vector.Value{}, false
}

// comparable reports whether ThetaSelect can compare the column type with
// the constant type directly (identical types, or int/timestamp pairs).
func comparable(col, c vector.Type) bool {
	if col == c {
		return true
	}
	return (col == vector.Int64 || col == vector.Timestamp) &&
		(c == vector.Int64 || c == vector.Timestamp)
}

// flip mirrors a comparison for swapped operands: const op col → col op' const.
func flip(op algebra.CmpOp) algebra.CmpOp {
	switch op {
	case algebra.Lt:
		return algebra.Gt
	case algebra.Le:
		return algebra.Ge
	case algebra.Gt:
		return algebra.Lt
	case algebra.Ge:
		return algebra.Le
	default:
		return op // Eq, Ne are symmetric
	}
}

// runScan reads a source one chunk at a time: the filter runs per chunk
// (chunk-local candidate lists shifted by the chunk's base offset into
// view positions) so no flat copy of the source is ever materialized.
func runScan(s *plan.Scan, ctx *Context) (*storage.Relation, error) {
	view, err := sourceView(s.Source, ctx)
	if err != nil {
		return nil, err
	}
	if view.NumCols() != s.Src.Len() {
		return nil, fmt.Errorf("exec: %s has %d columns, plan expects %d", s.Source, view.NumCols(), s.Src.Len())
	}
	n := view.NumRows()
	var cands bat.Candidates
	if s.Filter != nil {
		// Non-nil even when nothing matches (nil means "no filter"); grown
		// by append so the allocation tracks matches, not source depth.
		cands = bat.Candidates{}
		base := 0
		for _, ch := range view.Chunks {
			cn := ch.Len()
			if cn == 0 {
				continue
			}
			cc, err := filterCandidates(s.Filter, ch.Cols, cn)
			if err != nil {
				return nil, err
			}
			if cc == nil {
				for p := 0; p < cn; p++ {
					cands = append(cands, base+p)
				}
			} else {
				for _, p := range cc {
					cands = append(cands, base+p)
				}
			}
			base += cn
		}
	}
	if s.Consuming {
		key := strings.ToLower(s.Source)
		consumed := cands
		if consumed == nil {
			consumed = bat.All(n)
		}
		ctx.Consumed[key] = bat.Union(ctx.Consumed[key], consumed)
	}
	out := &storage.Relation{Schema: s.Out, Cols: make([]*vector.Vector, len(s.Cols))}
	for i, src := range s.Cols {
		if cands == nil {
			out.Cols[i] = view.Column(src)
		} else {
			out.Cols[i] = view.TakeColumn(src, cands)
		}
	}
	return out, nil
}

func runSelect(s *plan.Select, ctx *Context) (*storage.Relation, error) {
	child, err := Run(s.Child, ctx)
	if err != nil {
		return nil, err
	}
	keep, err := filterCandidates(s.Pred, child.Cols, child.NumRows())
	if err != nil {
		return nil, err
	}
	return child.Take(keep), nil
}

func runProject(p *plan.Project, ctx *Context) (*storage.Relation, error) {
	child, err := Run(p.Child, ctx)
	if err != nil {
		return nil, err
	}
	out := &storage.Relation{Schema: p.Out, Cols: make([]*vector.Vector, len(p.Exprs))}
	for i, e := range p.Exprs {
		col, err := expr.Eval(e, child.Cols, nil)
		if err != nil {
			return nil, err
		}
		// A constant expression over an empty input must still be empty.
		if child.NumRows() == 0 && col.Len() != 0 {
			col = vector.New(col.Type())
		}
		out.Cols[i] = col
	}
	return out, nil
}

func runJoin(j *plan.Join, ctx *Context) (*storage.Relation, error) {
	if ij, ok := ctx.Joins[j]; ok {
		return ij.Probe(func(n plan.Node) (*storage.Relation, error) {
			return Run(n, ctx)
		})
	}
	left, err := Run(j.L, ctx)
	if err != nil {
		return nil, err
	}
	right, err := Run(j.R, ctx)
	if err != nil {
		return nil, err
	}
	lw := len(left.Cols)

	var lpos, rpos []int
	var rest []expr.Expr
	hashed := false
	if j.On != nil {
		var lkeyE, rkeyE expr.Expr
		lkeyE, rkeyE, rest = expr.EquiKeys(j.On, lw)
		if lkeyE != nil {
			lkey, err := expr.Eval(lkeyE, left.Cols, nil)
			if err != nil {
				return nil, err
			}
			rkey, err := expr.Eval(rkeyE, right.Cols, nil)
			if err != nil {
				return nil, err
			}
			lpos, rpos = algebra.HashJoin(lkey, rkey, nil, nil)
			hashed = true
		}
	}
	if !hashed {
		// Cross product (no equi key found, or no condition at all); any
		// non-equi condition is applied as the residual filter below.
		ln, rn := left.NumRows(), right.NumRows()
		lpos = make([]int, 0, ln*rn)
		rpos = make([]int, 0, ln*rn)
		for i := 0; i < ln; i++ {
			for k := 0; k < rn; k++ {
				lpos = append(lpos, i)
				rpos = append(rpos, k)
			}
		}
	}
	if j.Within > 0 {
		lts, rts := left.Cols[j.LTs], right.Cols[j.RTs-lw]
		keepL := lpos[:0]
		keepR := rpos[:0]
		for i := range lpos {
			if withinBand(lts.Get(lpos[i]), rts.Get(rpos[i]), j.Within) {
				keepL = append(keepL, lpos[i])
				keepR = append(keepR, rpos[i])
			}
		}
		lpos, rpos = keepL, keepR
	}

	out := &storage.Relation{Schema: j.Out, Cols: make([]*vector.Vector, lw+len(right.Cols))}
	for i, col := range left.Cols {
		out.Cols[i] = col.Take(lpos)
	}
	for i, col := range right.Cols {
		out.Cols[lw+i] = col.Take(rpos)
	}
	if restPred := expr.JoinConjuncts(rest); restPred != nil {
		mask, err := expr.Eval(restPred, out.Cols, nil)
		if err != nil {
			return nil, err
		}
		keep := algebra.MaskSelect(mask, nil)
		out = out.Take(keep)
	}
	return out, nil
}

// withinBand reports whether two timestamps differ by at most d; NULL
// timestamps never satisfy a band.
func withinBand(l, r vector.Value, d int64) bool {
	if l.Null || r.Null {
		return false
	}
	diff := l.I - r.I
	if diff < 0 {
		diff = -diff
	}
	return diff <= d
}

func runAggregate(a *plan.Aggregate, ctx *Context) (*storage.Relation, error) {
	child, err := Run(a.Child, ctx)
	if err != nil {
		return nil, err
	}
	out := &storage.Relation{Schema: a.Out, Cols: make([]*vector.Vector, a.Out.Len())}

	var gids []int
	var ngroups int
	if len(a.Keys) > 0 {
		keyVecs := make([]*vector.Vector, len(a.Keys))
		for i, k := range a.Keys {
			kv, err := expr.Eval(k, child.Cols, nil)
			if err != nil {
				return nil, err
			}
			keyVecs[i] = kv
		}
		var reps []int
		gids, ngroups, reps = algebra.Group(keyVecs, nil)
		for i, kv := range keyVecs {
			out.Cols[i] = kv.Take(reps)
		}
	}

	for i, spec := range a.Aggs {
		var arg *vector.Vector
		if spec.Arg != nil {
			arg, err = expr.Eval(spec.Arg, child.Cols, nil)
			if err != nil {
				return nil, err
			}
		}
		out.Cols[len(a.Keys)+i] = algebra.Aggregate(spec.Kind, arg, bat.All(child.NumRows()), gids, ngroups)
	}
	return out, nil
}

func runDistinct(d *plan.Distinct, ctx *Context) (*storage.Relation, error) {
	child, err := Run(d.Child, ctx)
	if err != nil {
		return nil, err
	}
	keep := algebra.Distinct(child.Cols, nil)
	return child.Take(keep), nil
}

func runSort(s *plan.Sort, ctx *Context) (*storage.Relation, error) {
	child, err := Run(s.Child, ctx)
	if err != nil {
		return nil, err
	}
	order := bat.All(child.NumRows())
	if len(s.Keys) > 0 {
		keyVecs := make([]*vector.Vector, len(s.Keys))
		for i, k := range s.Keys {
			kv, err := expr.Eval(k, child.Cols, nil)
			if err != nil {
				return nil, err
			}
			keyVecs[i] = kv
		}
		order = algebra.SortOrder(keyVecs, s.Desc, nil)
	}
	if s.Limit >= 0 && int64(len(order)) > s.Limit {
		order = order[:s.Limit]
	}
	if len(s.Keys) == 0 && s.Limit < 0 {
		return child, nil
	}
	return child.Take(order), nil
}
