package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := Write(dir, 42, []byte("state-image")); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if len(files) != 1 {
		t.Fatalf("files = %v", files)
	}
	seq, payload, err := Load(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 || string(payload) != "state-image" {
		t.Fatalf("Load = (%d, %q)", seq, payload)
	}
}

func TestLoadCorruptPayload(t *testing.T) {
	dir := t.TempDir()
	if err := Write(dir, 7, []byte("payload-bytes")); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(files[0]); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("Load = %v, want ErrCheckpointMismatch", err)
	}
}

func TestLoadBadMagic(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "checkpoint-0000000000000001.ckpt")
	if err := os.WriteFile(file, []byte("not a checkpoint file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(file); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("Load = %v, want ErrCheckpointMismatch", err)
	}
}

func TestLatestPicksNewestValidWithinBound(t *testing.T) {
	dir := t.TempDir()
	for _, seq := range []int64{10, 20, 30} {
		if err := Write(dir, seq, []byte{byte(seq)}); err != nil {
			t.Fatal(err)
		}
	}
	// Unbounded: newest wins.
	seq, payload, err := Latest(dir, 1<<40)
	if err != nil || seq != 30 || payload[0] != 30 {
		t.Fatalf("Latest = (%d, %v, %v)", seq, payload, err)
	}
	// Bounded below 30: the too-new checkpoint is skipped.
	seq, payload, err = Latest(dir, 25)
	if err != nil || seq != 20 || payload[0] != 20 {
		t.Fatalf("Latest(25) = (%d, %v, %v)", seq, payload, err)
	}
	// Corrupt the newest: Latest falls back.
	files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	newest := files[len(files)-1]
	data, _ := os.ReadFile(newest)
	data[len(data)-1] ^= 0xff
	os.WriteFile(newest, data, 0o644)
	seq, _, err = Latest(dir, 1<<40)
	if err != nil || seq != 20 {
		t.Fatalf("Latest after corruption = (%d, %v)", seq, err)
	}
}

func TestLatestEmptyDir(t *testing.T) {
	seq, payload, err := Latest(filepath.Join(t.TempDir(), "missing"), 100)
	if err != nil || seq != 0 || payload != nil {
		t.Fatalf("Latest on missing dir = (%d, %v, %v)", seq, payload, err)
	}
}

func TestPrune(t *testing.T) {
	dir := t.TempDir()
	for _, seq := range []int64{1, 2, 3, 4, 5} {
		if err := Write(dir, seq, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := Prune(dir, 2); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if len(files) != 2 {
		t.Fatalf("files after prune = %v", files)
	}
	seq, _, err := Latest(dir, 100)
	if err != nil || seq != 5 {
		t.Fatalf("Latest after prune = (%d, %v)", seq, err)
	}
}
