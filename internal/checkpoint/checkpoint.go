// Package checkpoint stores and recovers point-in-time snapshots of
// engine operator state. Each checkpoint is a single file carrying the
// WAL sequence number it covers plus an opaque CRC-checked payload (the
// engine's gob-encoded state image). Files are written atomically
// (tmp + rename + fsync), so a crash mid-checkpoint leaves the previous
// checkpoint intact and recovery simply falls back to it.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ErrCheckpointMismatch marks a checkpoint file whose header or CRC
// does not verify — it is skipped during recovery, never trusted.
var ErrCheckpointMismatch = errors.New("checkpoint: header or crc mismatch")

var magic = []byte("DCCK\x01")

const (
	suffix     = ".ckpt"
	headerSize = 5 + 8 + 4 // magic + u64 walSeq + u32 crc32(payload)
)

func path(dir string, seq int64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%016x%s", seq, suffix))
}

// Write atomically persists one checkpoint covering WAL records up to
// and including seq.
func Write(dir string, seq int64, payload []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	buf := make([]byte, headerSize+len(payload))
	copy(buf, magic)
	binary.LittleEndian.PutUint64(buf[5:13], uint64(seq))
	binary.LittleEndian.PutUint32(buf[13:17], crc32.ChecksumIEEE(payload))
	copy(buf[headerSize:], payload)

	final := path(dir, seq)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	// fsync the directory so the rename itself is durable.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// Load reads and verifies one checkpoint file, returning its WAL
// sequence number and payload. Returns ErrCheckpointMismatch if the
// file fails verification.
func Load(file string) (seq int64, payload []byte, err error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return 0, nil, err
	}
	if len(data) < headerSize || string(data[:5]) != string(magic) {
		return 0, nil, fmt.Errorf("%w: %s: bad header", ErrCheckpointMismatch, file)
	}
	seq = int64(binary.LittleEndian.Uint64(data[5:13]))
	crc := binary.LittleEndian.Uint32(data[13:17])
	payload = data[headerSize:]
	if crc32.ChecksumIEEE(payload) != crc {
		return 0, nil, fmt.Errorf("%w: %s: crc mismatch", ErrCheckpointMismatch, file)
	}
	return seq, payload, nil
}

// Latest finds the newest valid checkpoint whose WAL sequence number is
// at most maxSeq (the durable extent of the log — a checkpoint claiming
// records the log does not hold cannot be recovered against). Invalid
// or too-new files are skipped. Returns seq 0 and nil payload when no
// usable checkpoint exists.
func Latest(dir string, maxSeq int64) (seq int64, payload []byte, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil, nil
		}
		return 0, nil, err
	}
	var files []string
	for _, ent := range entries {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), suffix) {
			files = append(files, ent.Name())
		}
	}
	// Names embed the seq in fixed-width hex: lexical order = seq order.
	sort.Sort(sort.Reverse(sort.StringSlice(files)))
	for _, name := range files {
		s, p, lerr := Load(filepath.Join(dir, name))
		if lerr != nil || s > maxSeq {
			continue
		}
		return s, p, nil
	}
	return 0, nil, nil
}

// Prune removes all but the newest keep checkpoint files (invalid-named
// files are left alone).
func Prune(dir string, keep int) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var seqs []int64
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, suffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, "checkpoint-"), suffix)
		s, perr := strconv.ParseInt(hex, 16, 64)
		if perr != nil {
			continue
		}
		seqs = append(seqs, s)
	}
	if len(seqs) <= keep {
		return nil
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, s := range seqs[keep:] {
		if err := os.Remove(path(dir, s)); err != nil {
			return err
		}
	}
	return nil
}
