package obs

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram not zero: %s", h.Summary())
	}
	for _, v := range []int64{0, 1, 2, 3, 100, 1000, -5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Fatalf("count = %d, want 7", got)
	}
	if got := h.Sum(); got != 1106 { // -5 clamps to 0
		t.Fatalf("sum = %d, want 1106", got)
	}
	if got := h.Max(); got != 1000 {
		t.Fatalf("max = %d, want 1000", got)
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	// The bucketed quantile is an upper bound, at most 2x the true value.
	for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
		truth := int64(q * 1000)
		got := h.Quantile(q)
		if got < truth {
			t.Errorf("Quantile(%g) = %d, below true value %d", q, got, truth)
		}
		if got > 2*truth {
			t.Errorf("Quantile(%g) = %d, above 2x true value %d", q, got, truth)
		}
	}
	if got := h.Quantile(1.0); got != 1024-1 && got != 1000 {
		// rank 1000 lands in bucket [512,1023]
		t.Errorf("Quantile(1) = %d", got)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram()
	huge := int64(1) << 50 // beyond the last finite bucket
	h.Observe(huge)
	if got := h.Quantile(1.0); got != huge {
		t.Fatalf("overflow quantile = %d, want max %d", got, huge)
	}
	counts, n, _ := h.snapshot()
	if n != 1 || counts[numBuckets] != 1 {
		t.Fatalf("overflow observation not in +Inf bucket: counts[last]=%d", counts[numBuckets])
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const per = 1000
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != 8*per {
		t.Fatalf("count = %d, want %d", got, 8*per)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", Labels{"a": "1"})
	b := r.Counter("x_total", "help", Labels{"a": "1"})
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	c := r.Counter("x_total", "help", Labels{"a": "2"})
	if a == c {
		t.Fatal("distinct labels returned same counter")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering counter as gauge did not panic")
		}
	}()
	r.Gauge("x_total", "", nil)
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("esc", "back\\slash and\nnewline", Labels{"v": "a\"b\\c\nd"}).Set(1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `# HELP esc back\\slash and\nnewline`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc{v="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

// buildFixture assembles a deterministic registry covering every
// instrument kind, collectors, multi-series families, and escaping.
func buildFixture() *Registry {
	r := NewRegistry()
	r.Counter("dc_ingest_tuples_total", "Tuples ingested across all streams.", nil).Add(42)
	r.Counter("dc_ingest_batches_total", "Ingest batches per stream.", Labels{"stream": "trades"}).Add(7)
	r.Counter("dc_ingest_batches_total", "Ingest batches per stream.", Labels{"stream": "quo\"tes"}).Add(3)
	r.Gauge("dc_tail_depth", "Pending tuples per shard tail.", Labels{"query": "q1", "shard": "0"}).Set(5)
	r.Gauge("dc_tail_depth", "Pending tuples per shard tail.", Labels{"query": "q1", "shard": "1"}).Set(9)
	h := r.Histogram("dc_fire_ns", "Firing duration (ns).", nil)
	for _, v := range []int64{1, 2, 3, 500, 70000} {
		h.Observe(v)
	}
	r.CollectGauge("dc_sched_runnable", "Runnable transitions.", func() []Sample {
		return []Sample{{Labels: Labels{"shard": "1"}, Value: 2}, {Labels: Labels{"shard": "0"}, Value: 1}}
	})
	r.CollectCounter("dc_sched_fired_total", "Total transition firings.", func() []Sample {
		return []Sample{{Value: 123}}
	})
	return r
}

func TestPrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := buildFixture().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPrometheusScrapeParses runs a minimal format checker over the
// fixture output: every line is a comment or `name[{labels}] value`,
// every series is preceded by its # TYPE, histogram buckets are
// cumulative and end at +Inf, and counter families never decrease
// across series lines.
func TestPrometheusScrapeParses(t *testing.T) {
	var sb strings.Builder
	if err := buildFixture().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	types := map[string]string{} // family -> type
	var lastBucketCum float64
	var lastBucketFamily string
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown type %q in %q", parts[3], line)
			}
			if _, dup := types[parts[2]]; dup {
				t.Fatalf("duplicate TYPE for %s", parts[2])
			}
			types[parts[2]] = parts[3]
			continue
		}
		name, labels, valStr, ok := splitSeries(line)
		if !ok {
			t.Fatalf("malformed series line: %q", line)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil && valStr != "+Inf" && valStr != "NaN" {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		fam := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && types[base] == "histogram" {
				fam = base
			}
		}
		typ, known := types[fam]
		if !known {
			t.Fatalf("series %q has no preceding TYPE", line)
		}
		if typ == "counter" && val < 0 {
			t.Fatalf("negative counter: %q", line)
		}
		if typ == "histogram" && strings.HasSuffix(name, "_bucket") {
			if fam != lastBucketFamily {
				lastBucketCum = 0
				lastBucketFamily = fam
			}
			if val+1e-9 < lastBucketCum {
				t.Fatalf("histogram buckets not cumulative at %q (%g < %g)", line, val, lastBucketCum)
			}
			lastBucketCum = val
			if _, hasLE := labels["le"]; !hasLE {
				t.Fatalf("bucket line missing le label: %q", line)
			}
		}
	}
	// The fixture histogram must terminate with an +Inf bucket equal to count.
	if types["dc_fire_ns"] != "histogram" {
		t.Fatal("dc_fire_ns not typed histogram")
	}
	if math.Abs(lastBucketCum-5) > 1e-9 && lastBucketFamily == "dc_fire_ns" {
		t.Fatalf("dc_fire_ns +Inf bucket = %g, want 5", lastBucketCum)
	}
}

// splitSeries parses `name{k="v",...} value` (labels optional).
func splitSeries(line string) (name string, labels map[string]string, value string, ok bool) {
	labels = map[string]string{}
	brace := strings.IndexByte(line, '{')
	if brace < 0 {
		parts := strings.Fields(line)
		if len(parts) != 2 {
			return "", nil, "", false
		}
		return parts[0], labels, parts[1], true
	}
	name = line[:brace]
	end := strings.LastIndexByte(line, '}')
	if end < brace {
		return "", nil, "", false
	}
	body := line[brace+1 : end]
	rest := strings.TrimSpace(line[end+1:])
	// Parse k="v" pairs; values may contain escaped quotes.
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return "", nil, "", false
		}
		key := body[i : i+eq]
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return "", nil, "", false
		}
		i++
		var val strings.Builder
		for i < len(body) {
			if body[i] == '\\' && i+1 < len(body) {
				val.WriteByte(body[i+1])
				i += 2
				continue
			}
			if body[i] == '"' {
				break
			}
			val.WriteByte(body[i])
			i++
		}
		if i >= len(body) || body[i] != '"' {
			return "", nil, "", false
		}
		i++
		labels[key] = val.String()
		if i < len(body) {
			if body[i] != ',' {
				return "", nil, "", false
			}
			i++
		}
	}
	return name, labels, rest, true
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(4)
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("empty ring snapshot has %d events", len(got))
	}
	for i := 0; i < 6; i++ {
		r.Add(TraceEvent{Stage: "fire", FireNS: int64(i)})
	}
	evs := r.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(i + 3); ev.Seq != want {
			t.Errorf("evs[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
		if want := int64(i + 2); ev.FireNS != want {
			t.Errorf("evs[%d].FireNS = %d, want %d", i, ev.FireNS, want)
		}
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
}
