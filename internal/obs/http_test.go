package obs

import (
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerMetricsAndHealth(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "", nil).Inc()
	healthy := true
	h := Handler(reg, func() error {
		if !healthy {
			return errors.New("degraded")
		}
		return nil
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(string(body), "up_total 1") {
		t.Fatalf("metrics body missing counter:\n%s", body)
	}

	resp, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz status %d, want 200", resp.StatusCode)
	}
	healthy = false
	resp, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("/healthz status %d, want 503", resp.StatusCode)
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/pprof/cmdline status %d", resp.StatusCode)
	}
}
