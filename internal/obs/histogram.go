package obs

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// numBuckets is the number of finite log-scale buckets. Bucket b holds
// observations v with bits.Len64(v) == b, i.e. v in [2^(b-1), 2^b - 1]
// (bucket 0 holds exactly v == 0). The last finite upper bound is
// 2^48 - 1, about 3.3 days in nanoseconds; anything larger lands in the
// overflow (+Inf) bucket.
const numBuckets = 49

// Histogram is a fixed-footprint log-scale histogram safe for
// concurrent use. Unlike metrics.Histogram it does not retain
// individual observations, so it can sit on hot paths of long-running
// engines without growing. Quantiles are approximate: Quantile returns
// the upper bound of the bucket containing the requested rank, so the
// answer is at most 2x the true value (one power of two).
type Histogram struct {
	counts   [numBuckets + 1]atomic.Int64 // +1 = overflow bucket
	count    atomic.Int64
	sum      atomic.Int64
	maxValue atomic.Int64
}

// NewHistogram returns an empty histogram. A zero Histogram is also
// ready to use; the constructor exists for call-site symmetry with
// metrics.NewHistogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	if b > numBuckets {
		b = numBuckets
	}
	return b
}

// bucketUpper returns the inclusive upper bound of finite bucket b.
func bucketUpper(b int) int64 {
	if b >= numBuckets {
		return int64(1)<<numBuckets - 1
	}
	return int64(1)<<b - 1
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.maxValue.Load()
		if v <= cur || h.maxValue.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observed value (0 if empty).
func (h *Histogram) Max() int64 { return h.maxValue.Load() }

// Mean returns the arithmetic mean (0 if empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1): the
// upper edge of the log-scale bucket holding that rank. Empty
// histograms return 0.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(n-1)) + 1 // 1-based rank
	var cum int64
	for b := 0; b <= numBuckets; b++ {
		cum += h.counts[b].Load()
		if cum >= rank {
			if b == numBuckets {
				return h.maxValue.Load()
			}
			return bucketUpper(b)
		}
	}
	return h.maxValue.Load()
}

// Summary renders count/mean/p50/p99/max on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("count=%d mean=%.1f p50=%d p99=%d max=%d",
		h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// snapshot copies the bucket counts for exposition. Buckets are read
// without a global lock, so the cut is only approximately consistent —
// fine for scraping.
func (h *Histogram) snapshot() (counts [numBuckets + 1]int64, count, sum int64) {
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.count.Load(), h.sum.Load()
}
