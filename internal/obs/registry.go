// Package obs is the engine's observability layer: a low-overhead
// metrics registry (atomic counters, gauges, and fixed-bucket log-scale
// histograms), a Prometheus text encoder, bounded firing-trace rings,
// and the HTTP handler that serves /metrics, /healthz, and pprof.
//
// Hot paths hold *Counter / *Histogram pointers directly — recording is
// a few atomic adds with no map lookups or locks. Values that are cheap
// to read but expensive to push (queue depths, state sizes) register
// scrape-time collectors instead, evaluated only when /metrics is hit.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels name one series within a metric family.
type Labels map[string]string

// Sample is one collector-produced series value.
type Sample struct {
	Labels Labels
	Value  float64
}

// Kind classifies a metric family for the # TYPE line.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for Prometheus semantics; not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// series is one labeled instrument inside a family.
type series struct {
	labels Labels
	key    string
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family is one named metric with help, type, and its series.
type family struct {
	name    string
	help    string
	kind    Kind
	series  []*series          // registration order; sorted at exposition
	index   map[string]*series // label key -> series
	collect func() []Sample    // scrape-time collector (counter/gauge only)
}

// Registry holds metric families and renders them as Prometheus text.
// All methods are safe for concurrent use. Registration is idempotent:
// asking for the same (name, labels) twice returns the same instrument.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// labelKey serializes labels deterministically for series identity.
func labelKey(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('\x00')
		sb.WriteString(labels[k])
		sb.WriteByte('\x00')
	}
	return sb.String()
}

func copyLabels(labels Labels) Labels {
	if len(labels) == 0 {
		return nil
	}
	out := make(Labels, len(labels))
	for k, v := range labels {
		out[k] = v
	}
	return out
}

// getFamily finds or creates a family, enforcing kind consistency.
func (r *Registry) getFamily(name, help string, kind Kind) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, index: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

func (r *Registry) getSeries(name, help string, kind Kind, labels Labels) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kind)
	if f.collect != nil {
		panic(fmt.Sprintf("obs: metric %q already registered as a collector", name))
	}
	key := labelKey(labels)
	if s, ok := f.index[key]; ok {
		return s
	}
	s := &series{labels: copyLabels(labels), key: key}
	f.index[key] = s
	f.series = append(f.series, s)
	return s
}

// Counter finds or creates the counter (name, labels).
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	s := r.getSeries(name, help, KindCounter, labels)
	if s.ctr == nil {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// Gauge finds or creates the gauge (name, labels).
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	s := r.getSeries(name, help, KindGauge, labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram finds or creates the histogram (name, labels). The exposed
// buckets are the fixed log-scale bounds of obs.Histogram.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	s := r.getSeries(name, help, KindHistogram, labels)
	if s.hist == nil {
		s.hist = &Histogram{}
	}
	return s.hist
}

// registerCollector installs a scrape-time multi-series collector.
func (r *Registry) registerCollector(name, help string, kind Kind, fn func() []Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kind)
	if len(f.series) > 0 {
		panic(fmt.Sprintf("obs: metric %q already has direct series", name))
	}
	f.collect = fn
}

// CollectCounter registers fn to produce the series of counter family
// name at scrape time. Use for cheap-to-read cumulative values owned by
// other subsystems (scheduler fired counts, per-stream ingested).
func (r *Registry) CollectCounter(name, help string, fn func() []Sample) {
	r.registerCollector(name, help, KindCounter, fn)
}

// CollectGauge registers fn to produce the series of gauge family name
// at scrape time. Use for instantaneous values (queue depths, state
// sizes) that would be wasteful to push on every change.
func (r *Registry) CollectGauge(name, help string, fn func() []Sample) {
	r.registerCollector(name, help, KindGauge, fn)
}
