package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// escapeHelp escapes a # HELP line per the Prometheus text format:
// backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// escapeLabel escapes a label value: backslash, double-quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// formatLabels renders {k="v",...} with keys sorted, plus optional
// extra pairs appended last (used for le). Empty input renders "".
func formatLabels(labels Labels, extra ...[2]string) string {
	if len(labels) == 0 && len(extra) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	for _, k := range keys {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(labels[k]))
		sb.WriteByte('"')
	}
	for _, kv := range extra {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		sb.WriteString(kv[0])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(kv[1]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4), families sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		if err := writeFamily(w, f); err != nil {
			return err
		}
	}
	return nil
}

func writeFamily(w io.Writer, f *family) error {
	// Snapshot series under the registry lock's absence: the slices
	// only grow, and instruments are atomic, so reading without the
	// lock is safe for exposition purposes. Collectors run here.
	var samples []Sample
	if f.collect != nil {
		samples = f.collect()
	}
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	if f.collect != nil {
		// Sort collector output for stable scrapes.
		sort.Slice(samples, func(i, j int) bool {
			return labelKey(samples[i].Labels) < labelKey(samples[j].Labels)
		})
		for _, s := range samples {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, formatLabels(s.Labels), formatValue(s.Value)); err != nil {
				return err
			}
		}
		return nil
	}
	ordered := make([]*series, len(f.series))
	copy(ordered, f.series)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].key < ordered[j].key })
	for _, s := range ordered {
		if err := writeSeries(w, f, s); err != nil {
			return err
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.kind {
	case KindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, formatLabels(s.labels), s.ctr.Value())
		return err
	case KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, formatLabels(s.labels), s.gauge.Value())
		return err
	case KindHistogram:
		counts, count, sum := s.hist.snapshot()
		var cum int64
		for b := 0; b <= numBuckets; b++ {
			cum += counts[b]
			le := "+Inf"
			if b < numBuckets {
				le = strconv.FormatInt(bucketUpper(b), 10)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, formatLabels(s.labels, [2]string{"le", le}), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", f.name, formatLabels(s.labels), sum); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, formatLabels(s.labels), count)
		return err
	}
	return nil
}
