package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
)

// Handler serves the observability HTTP surface:
//
//	/metrics       Prometheus text exposition of reg
//	/healthz       200 "ok" (or 503 with the error when health fails)
//	/debug/pprof/  the standard net/http/pprof profiles
//
// health may be nil, in which case /healthz always reports ok.
func Handler(reg *Registry, health func() error) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// Too late for a status code; the connection will surface it.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		if health != nil {
			if err := health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
