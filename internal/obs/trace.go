package obs

import "sync"

// TraceEvent is one recorded pipeline firing: a transition (shard
// factory, merge stage, or emitter) ran once, with its queue delay and
// execution time and the tuple counts it moved.
type TraceEvent struct {
	Seq        int64  // per-ring sequence number, increasing
	Stage      string // "fire", "merge", "deliver"
	Transition string // transition name (shard factories carry :sN)
	Start      int64  // engine-clock ns at which execution began
	QueueNS    int64  // wake -> execution delay (0 when not pool-driven)
	FireNS     int64  // execution duration
	TuplesIn   int64  // input tuples consumed by this firing
	TuplesOut  int64  // output tuples produced by this firing
	Err        string // non-empty if the firing failed
}

// TraceRing is a bounded ring of the last K firings of one query's
// pipeline. Writers pay one short mutex hold per firing; Snapshot
// copies out events oldest-first.
type TraceRing struct {
	mu   sync.Mutex
	buf  []TraceEvent
	next int   // index of the slot to overwrite
	seq  int64 // total events ever added
}

// NewTraceRing returns a ring retaining the last k events (k >= 1).
func NewTraceRing(k int) *TraceRing {
	if k < 1 {
		k = 1
	}
	return &TraceRing{buf: make([]TraceEvent, k)}
}

// Add records one event, assigning its sequence number.
func (r *TraceRing) Add(ev TraceEvent) {
	r.mu.Lock()
	r.seq++
	ev.Seq = r.seq
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	r.mu.Unlock()
}

// Len returns the number of retained events.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq < int64(len(r.buf)) {
		return int(r.seq)
	}
	return len(r.buf)
}

// Snapshot returns the retained events, oldest first.
func (r *TraceRing) Snapshot() []TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.buf)
	if r.seq < int64(n) {
		out := make([]TraceEvent, r.seq)
		copy(out, r.buf[:r.seq])
		return out
	}
	out := make([]TraceEvent, 0, n)
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
