package adapters

import (
	"strings"
	"testing"

	"repro/internal/basket"
	"repro/internal/catalog"
	"repro/internal/metrics"
	"repro/internal/vector"
)

func schemaIV() *catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Name: "id", Type: vector.Int64},
		catalog.Column{Name: "v", Type: vector.Float64},
	)
}

func TestParseTuple(t *testing.T) {
	row, err := ParseTuple(schemaIV(), "42,3.5")
	if err != nil {
		t.Fatal(err)
	}
	if row[0].I != 42 || row[1].F != 3.5 {
		t.Errorf("row = %v", row)
	}
}

func TestParseTupleErrors(t *testing.T) {
	if _, err := ParseTuple(schemaIV(), "1"); err == nil {
		t.Error("short tuple should fail")
	}
	if _, err := ParseTuple(schemaIV(), "abc,1.0"); err == nil {
		t.Error("bad int should fail")
	}
}

func TestParseTupleNull(t *testing.T) {
	row, err := ParseTuple(schemaIV(), "1,NULL")
	if err != nil {
		t.Fatal(err)
	}
	if !row[1].Null {
		t.Error("NULL field should parse as null")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	row := []vector.Value{vector.NewInt(7), vector.NewFloat(2.25)}
	line := FormatTuple(row)
	back, err := ParseTuple(schemaIV(), line)
	if err != nil {
		t.Fatal(err)
	}
	if vector.Compare(back[0], row[0]) != 0 || vector.Compare(back[1], row[1]) != 0 {
		t.Errorf("round trip: %v -> %q -> %v", row, line, back)
	}
}

func TestReceptorConsume(t *testing.T) {
	clk := metrics.NewManualClock(1)
	b := basket.New("in", schemaIV(), clk)
	r := NewReceptor("rec", schemaIV(), []*basket.Basket{b}, 3)
	input := "1,1.5\n2,2.5\n\nbogus line\n3,3.5\n4,4.5\n"
	if err := r.Consume(strings.NewReader(input)); err != nil {
		t.Fatal(err)
	}
	if r.Received() != 4 {
		t.Errorf("received = %d", r.Received())
	}
	if r.Rejected() != 1 {
		t.Errorf("rejected = %d", r.Rejected())
	}
	if b.Len() != 4 {
		t.Errorf("basket len = %d", b.Len())
	}
}

func TestReceptorReplicatesToAllTargets(t *testing.T) {
	clk := metrics.NewManualClock(1)
	b1 := basket.New("q1", schemaIV(), clk)
	b2 := basket.New("q2", schemaIV(), clk)
	r := NewReceptor("rec", schemaIV(), []*basket.Basket{b1}, 1)
	r.AddTarget(b2)
	if err := r.Deliver([][]vector.Value{{vector.NewInt(1), vector.NewFloat(1)}}); err != nil {
		t.Fatal(err)
	}
	if b1.Len() != 1 || b2.Len() != 1 {
		t.Errorf("replication: %d %d", b1.Len(), b2.Len())
	}
}

func TestEmitterDrains(t *testing.T) {
	clk := metrics.NewManualClock(1)
	b := basket.New("out", schemaIV(), clk)
	_ = b.AppendRows([][]vector.Value{
		{vector.NewInt(1), vector.NewFloat(1.5)},
		{vector.NewInt(2), vector.NewFloat(2.5)},
	})
	var sb strings.Builder
	e := NewEmitter("emit", b, &sb)
	if !e.Ready() {
		t.Fatal("emitter should be ready")
	}
	if err := e.Fire(); err != nil {
		t.Fatal(err)
	}
	want := "1,1.5\n2,2.5\n"
	if sb.String() != want {
		t.Errorf("output = %q, want %q", sb.String(), want)
	}
	if e.Delivered() != 2 {
		t.Errorf("delivered = %d", e.Delivered())
	}
	if b.Len() != 0 {
		t.Errorf("basket not drained: %d", b.Len())
	}
	if e.Ready() {
		t.Error("drained emitter should not be ready")
	}
}

func TestChannelEmitter(t *testing.T) {
	clk := metrics.NewManualClock(1)
	b := basket.New("out", schemaIV(), clk)
	e := NewChannelEmitter("sub", b, 2, BackpressureBlock)
	if e.Ready() {
		t.Error("empty basket: not ready")
	}
	_ = b.AppendRows([][]vector.Value{{vector.NewInt(9), vector.NewFloat(9.5)}})
	if !e.Ready() {
		t.Fatal("should be ready")
	}
	if err := e.Fire(); err != nil {
		t.Fatal(err)
	}
	select {
	case rel := <-e.C():
		if rel.NumRows() != 1 || rel.Cols[0].Get(0).I != 9 {
			t.Errorf("rel = %v", rel)
		}
	default:
		t.Fatal("nothing on channel")
	}
}

func TestChannelEmitterBackpressure(t *testing.T) {
	clk := metrics.NewManualClock(1)
	b := basket.New("out", schemaIV(), clk)
	e := NewChannelEmitter("sub", b, 1, BackpressureBlock)
	_ = b.AppendRows([][]vector.Value{{vector.NewInt(1), vector.NewFloat(1)}})
	_ = e.Fire()
	_ = b.AppendRows([][]vector.Value{{vector.NewInt(2), vector.NewFloat(2)}})
	// Channel full: emitter reports not ready instead of dropping.
	if e.Ready() {
		t.Error("full channel should gate readiness")
	}
	<-e.C()
	if !e.Ready() {
		t.Error("drained channel should unblock")
	}
}
