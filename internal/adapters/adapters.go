// Package adapters provides the periphery of the stream engine (§2.1):
// receptors pick up incoming events from a communication channel, validate
// their structure, and forward them into baskets; emitters pick up result
// tuples and deliver them to subscribed clients. The interchange format is
// the paper's deliberately simple one — flat relational tuples as text
// (comma-separated fields, one tuple per line).
package adapters

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/basket"
	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/vector"
)

// ParseTuple decodes one comma-separated line against a schema (which must
// NOT include the implicit ts column — receptors never trust sender
// timestamps).
func ParseTuple(schema *catalog.Schema, line string) ([]vector.Value, error) {
	fields := strings.Split(line, ",")
	if len(fields) != schema.Len() {
		return nil, fmt.Errorf("adapters: tuple has %d fields, schema %s needs %d",
			len(fields), schema, schema.Len())
	}
	out := make([]vector.Value, len(fields))
	for i, f := range fields {
		v, err := vector.Parse(schema.Columns[i].Type, f)
		if err != nil {
			return nil, fmt.Errorf("adapters: field %d (%s): %w", i, schema.Columns[i].Name, err)
		}
		out[i] = v
	}
	return out, nil
}

// FormatTuple encodes one row in the flat-text interchange format.
func FormatTuple(row []vector.Value) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = v.String()
	}
	return strings.Join(parts, ",")
}

// Receptor is a separate thread that continuously picks up incoming events
// from a channel, validates their structure, and appends them to one or
// more baskets (several, under the separate-baskets strategy).
type Receptor struct {
	name    string
	schema  *catalog.Schema // user schema (no ts)
	targets []*basket.Basket
	batch   int

	mu       sync.Mutex
	received int64
	rejected int64
}

// NewReceptor builds a receptor delivering into the given baskets. batch
// controls how many tuples are accumulated before an append (1 = per-tuple
// delivery; larger batches exercise the engine's bulk advantage).
func NewReceptor(name string, schema *catalog.Schema, targets []*basket.Basket, batch int) *Receptor {
	if batch < 1 {
		batch = 1
	}
	return &Receptor{name: name, schema: schema, targets: targets, batch: batch}
}

// Name returns the receptor name.
func (r *Receptor) Name() string { return r.name }

// Received returns the number of accepted tuples.
func (r *Receptor) Received() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.received
}

// Rejected returns the number of malformed tuples dropped.
func (r *Receptor) Rejected() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rejected
}

// AddTarget registers another basket to replicate into (separate-baskets
// strategy: each new query brings its private input basket).
func (r *Receptor) AddTarget(b *basket.Basket) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.targets = append(r.targets, b)
}

// Deliver validates and appends a batch of already-parsed rows to every
// target basket.
func (r *Receptor) Deliver(rows [][]vector.Value) error {
	if len(rows) == 0 {
		return nil
	}
	r.mu.Lock()
	targets := append([]*basket.Basket(nil), r.targets...)
	r.received += int64(len(rows))
	r.mu.Unlock()
	for _, b := range targets {
		if err := b.AppendRows(rows); err != nil {
			return fmt.Errorf("receptor %s: %w", r.name, err)
		}
	}
	return nil
}

// Consume reads newline-delimited tuples from rd until EOF, delivering
// them in batches. Malformed lines are counted and skipped — a receptor
// must not die because one sensor hiccuped. It is meant to run on its own
// goroutine (the paper's receptor thread).
func (r *Receptor) Consume(rd io.Reader) error {
	scanner := bufio.NewScanner(rd)
	scanner.Buffer(make([]byte, 64*1024), 1024*1024)
	pending := make([][]vector.Value, 0, r.batch)
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		err := r.Deliver(pending)
		pending = pending[:0]
		return err
	}
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		row, err := ParseTuple(r.schema, line)
		if err != nil {
			r.mu.Lock()
			r.rejected++
			r.mu.Unlock()
			continue
		}
		pending = append(pending, row)
		if len(pending) >= r.batch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	return scanner.Err()
}

// Emitter is a transition that picks up result tuples from an output
// basket and delivers them to the interested client as text. It implements
// scheduler.Transition.
type Emitter struct {
	name   string
	source *basket.Basket
	out    io.Writer

	mu        sync.Mutex
	delivered int64
}

// NewEmitter builds an emitter draining source into w.
func NewEmitter(name string, source *basket.Basket, w io.Writer) *Emitter {
	return &Emitter{name: name, source: source, out: w}
}

// Name implements scheduler.Transition.
func (e *Emitter) Name() string { return e.name }

// Ready implements scheduler.Transition: fire when results wait.
func (e *Emitter) Ready() bool { return e.source.Len() > 0 }

// Delivered returns the number of tuples written so far.
func (e *Emitter) Delivered() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.delivered
}

// Fire implements scheduler.Transition: drain the basket and write every
// tuple (without the implicit ts column) to the client.
func (e *Emitter) Fire() error {
	e.source.Lock()
	view, n := e.source.LockedSnapshot()
	e.source.LockedDropPrefix(n)
	e.source.Unlock()
	if n == 0 {
		return nil
	}
	userW := e.source.UserWidth()
	var b strings.Builder
	row := make([]vector.Value, userW)
	for _, ch := range view.Chunks {
		for i := 0; i < ch.Len(); i++ {
			for c := 0; c < userW; c++ {
				row[c] = ch.Cols[c].Get(i)
			}
			b.WriteString(FormatTuple(row))
			b.WriteByte('\n')
		}
	}
	e.mu.Lock()
	e.delivered += int64(n)
	e.mu.Unlock()
	if _, err := io.WriteString(e.out, b.String()); err != nil {
		return fmt.Errorf("emitter %s: %w", e.name, err)
	}
	return nil
}

// Backpressure selects what a channel emitter does when its subscriber
// falls behind and the channel fills up.
type Backpressure uint8

// Backpressure policies.
const (
	// BackpressureBlock keeps results in the output basket until the
	// subscriber catches up — nothing is lost, the producer slows down.
	BackpressureBlock Backpressure = iota
	// BackpressureDropOldest evicts the oldest undelivered batch to make
	// room — the subscriber always sees the freshest results.
	BackpressureDropOldest
)

// String names the policy.
func (b Backpressure) String() string {
	if b == BackpressureDropOldest {
		return "drop_oldest"
	}
	return "block"
}

// ChannelEmitter delivers result batches to a Go channel instead of a
// writer — the embedding API's subscription mechanism. It implements
// scheduler.Transition.
type ChannelEmitter struct {
	name   string
	source *basket.Basket
	policy Backpressure
	ch     chan *storage.Relation

	// done unblocks an in-flight blocking send when the emitter closes;
	// sendMu serializes senders against Close so ch is never closed while
	// a send is in flight.
	done    chan struct{}
	once    sync.Once
	sendMu  sync.Mutex
	closed  bool
	dropped int64

	// Durability hooks (guarded by sendMu). delivered counts rows handed
	// to the subscriber since the query registered; after a restart the
	// engine seeds it with the checkpointed value and sets suppress to
	// the number of re-derived rows that were already delivered before
	// the crash — those are trimmed instead of re-sent, which is what
	// makes recovery resumption exactly-once at this boundary. onDeliver
	// publishes the advancing frontier (the engine journals it).
	delivered int64
	suppress  int64
	onDeliver func(delivered int64)

	// Latency observation (guarded by sendMu). The engine samples ~1/N
	// result batches: the factory result hook stamps the batch's newest
	// input timestamp and the emission instant via StampE2E, and the
	// next delivery reports both distances to latFn.
	latNow      func() int64
	latFn       func(deliveryNS, e2eNS int64, rows int)
	e2eIngestTS int64
	e2eEmitTS   int64
}

// SetLatencyObserver arms delivery-latency sampling: now is the engine
// clock, fn receives (delivery latency, end-to-end latency, rows) for
// each delivery whose batch was stamped via StampE2E. e2eNS is -1 when
// the stamp carried no input timestamp.
func (e *ChannelEmitter) SetLatencyObserver(now func() int64, fn func(deliveryNS, e2eNS int64, rows int)) {
	e.sendMu.Lock()
	e.latNow, e.latFn = now, fn
	e.sendMu.Unlock()
}

// StampE2E marks the in-flight result batch as a latency sample.
// ingestTS is the newest input-tuple timestamp the batch covers (<= 0
// when unknown). Called from the factory result hook, i.e. after the
// results reached the output basket but before the emitter fires.
func (e *ChannelEmitter) StampE2E(ingestTS int64) {
	e.sendMu.Lock()
	if e.latFn != nil {
		e.e2eIngestTS = ingestTS
		e.e2eEmitTS = e.latNow()
	}
	e.sendMu.Unlock()
}

// NewChannelEmitter builds a channel emitter with the given buffer depth
// and backpressure policy.
func NewChannelEmitter(name string, source *basket.Basket, depth int, policy Backpressure) *ChannelEmitter {
	if depth < 1 {
		depth = 1
	}
	return &ChannelEmitter{
		name:   name,
		source: source,
		policy: policy,
		ch:     make(chan *storage.Relation, depth),
		done:   make(chan struct{}),
	}
}

// Name implements scheduler.Transition.
func (e *ChannelEmitter) Name() string { return e.name }

// Policy returns the emitter's backpressure policy.
func (e *ChannelEmitter) Policy() Backpressure { return e.policy }

// Ready implements scheduler.Transition. Under the blocking policy the
// emitter stays not-ready while the subscriber's channel is full, exerting
// back-pressure instead of dropping results; under drop-oldest it is ready
// whenever results wait.
func (e *ChannelEmitter) Ready() bool {
	if e.source.Len() == 0 {
		return false
	}
	select {
	case <-e.done:
		return false
	default:
	}
	return e.policy == BackpressureDropOldest || len(e.ch) < cap(e.ch)
}

// C returns the subscription channel. It is closed by Close.
func (e *ChannelEmitter) C() <-chan *storage.Relation { return e.ch }

// Dropped returns the number of batches evicted under drop-oldest.
func (e *ChannelEmitter) Dropped() int64 { return atomic.LoadInt64(&e.dropped) }

// Close terminates delivery: any blocked send is released, the channel is
// closed, and later firings discard their batches. Safe to call more than
// once and concurrently with Fire.
func (e *ChannelEmitter) Close() {
	e.once.Do(func() { close(e.done) })
	e.sendMu.Lock()
	if !e.closed {
		e.closed = true
		close(e.ch)
	}
	e.sendMu.Unlock()
}

// Delivered returns the number of rows handed to the subscriber (plus
// any checkpoint-seeded base after a restart).
func (e *ChannelEmitter) Delivered() int64 {
	e.sendMu.Lock()
	defer e.sendMu.Unlock()
	return e.delivered
}

// SetDelivered seeds the delivered counter (recovery: the checkpointed
// frontier). Call before the emitter is scheduled.
func (e *ChannelEmitter) SetDelivered(n int64) {
	e.sendMu.Lock()
	e.delivered = n
	e.sendMu.Unlock()
}

// SetSuppress arranges for the next n emitted rows to be trimmed rather
// than sent — recovery replay re-derives results that were already
// delivered before the crash. Call before the emitter is scheduled.
func (e *ChannelEmitter) SetSuppress(n int64) {
	e.sendMu.Lock()
	if n > 0 {
		e.suppress = n
	}
	e.sendMu.Unlock()
}

// OnDeliver registers the frontier callback, invoked with the new
// delivered total after each successful hand-off.
func (e *ChannelEmitter) OnDeliver(fn func(delivered int64)) {
	e.sendMu.Lock()
	e.onDeliver = fn
	e.sendMu.Unlock()
}

// Fire implements scheduler.Transition.
func (e *ChannelEmitter) Fire() error {
	e.source.Lock()
	view, n := e.source.LockedSnapshot()
	e.source.LockedDropPrefix(n)
	e.source.Unlock()
	if n == 0 {
		return nil
	}
	e.sendMu.Lock()
	defer e.sendMu.Unlock()
	if e.closed {
		return nil
	}
	if e.suppress > 0 {
		k := int(e.suppress)
		if k > n {
			k = n
		}
		e.suppress -= int64(k)
		e.delivered += int64(k)
		view = view.Slice(k, n)
		n -= k
		if n == 0 {
			if e.onDeliver != nil {
				e.onDeliver(e.delivered)
			}
			return nil
		}
	}
	rel := &storage.Relation{Schema: e.source.Schema(), Cols: view.Columns()}
	if e.policy == BackpressureDropOldest {
		for {
			select {
			case e.ch <- rel:
				e.markDelivered(n)
				return nil
			default:
				select {
				case <-e.ch:
					atomic.AddInt64(&e.dropped, 1)
				default:
				}
			}
		}
	}
	// Blocking policy: Ready() said there was room, but a concurrent firing
	// may have filled it; requeue by re-appending would reorder, so block
	// until the subscriber catches up (or the emitter closes).
	select {
	case e.ch <- rel:
		e.markDelivered(n)
	case <-e.done:
	}
	return nil
}

// markDelivered advances the delivered counter and publishes the new
// frontier; the caller holds sendMu.
func (e *ChannelEmitter) markDelivered(n int) {
	e.delivered += int64(n)
	if e.onDeliver != nil {
		e.onDeliver(e.delivered)
	}
	if e.latFn != nil && e.e2eEmitTS != 0 {
		now := e.latNow()
		e2e := int64(-1)
		if e.e2eIngestTS > 0 {
			e2e = now - e.e2eIngestTS
		}
		e.latFn(now-e.e2eEmitTS, e2e, n)
		e.e2eEmitTS, e.e2eIngestTS = 0, 0
	}
}
