package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestManualClock(t *testing.T) {
	c := NewManualClock(100)
	if c.Now() != 100 {
		t.Fatalf("Now = %d", c.Now())
	}
	c.Advance(50)
	if c.Now() != 150 {
		t.Errorf("after Advance: %d", c.Now())
	}
	c.Set(10)
	if c.Now() != 10 {
		t.Errorf("after Set: %d", c.Now())
	}
}

func TestWallClockMonotonicEnough(t *testing.T) {
	var w WallClock
	a := w.Now()
	b := w.Now()
	if b < a {
		t.Errorf("wall clock went backwards: %d then %d", a, b)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should be all zeros")
	}
	for _, v := range []int64{10, 20, 30, 40} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 25 {
		t.Errorf("Mean = %f", h.Mean())
	}
	if h.Max() != 40 {
		t.Errorf("Max = %d", h.Max())
	}
	if got := h.Quantile(0.5); got != 20 {
		t.Errorf("p50 = %d", got)
	}
	if got := h.Quantile(1.0); got != 40 {
		t.Errorf("p100 = %d", got)
	}
	if got := h.Quantile(0.0); got != 10 {
		t.Errorf("p0 = %d", got)
	}
	if h.Summary() == "" {
		t.Error("Summary empty")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(5)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 100; i++ {
				h.Observe(i)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 800 {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Add(2)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 800 {
		t.Errorf("Value = %d", c.Value())
	}
}

func TestRate(t *testing.T) {
	if got := Rate(100, time.Second); got != 100 {
		t.Errorf("Rate = %f", got)
	}
	if got := Rate(100, 0); got != 0 {
		t.Errorf("Rate at zero elapsed = %f", got)
	}
}
