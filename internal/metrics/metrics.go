// Package metrics provides the small measurement kit used by the engine
// and the benchmark harness: an injectable clock, latency histograms, and
// throughput counters. Everything is safe for concurrent use.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Clock abstracts time so tests and simulations can drive it manually.
type Clock interface {
	// Now returns nanoseconds since the epoch.
	Now() int64
}

// WallClock reads the system clock.
type WallClock struct{}

// Now implements Clock.
func (WallClock) Now() int64 { return time.Now().UnixNano() }

// ManualClock is an explicitly advanced clock for deterministic tests.
type ManualClock struct {
	mu sync.Mutex
	ns int64
}

// NewManualClock starts at the given nanosecond timestamp.
func NewManualClock(start int64) *ManualClock { return &ManualClock{ns: start} }

// Now implements Clock.
func (c *ManualClock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ns
}

// Advance moves the clock forward by d nanoseconds.
func (c *ManualClock) Advance(d int64) {
	c.mu.Lock()
	c.ns += d
	c.mu.Unlock()
}

// Set jumps the clock to ns.
func (c *ManualClock) Set(ns int64) {
	c.mu.Lock()
	c.ns = ns
	c.mu.Unlock()
}

// Histogram records int64 observations (typically latencies in
// nanoseconds) and reports order statistics. It keeps every observation,
// so it is exact-mode only: use it in bounded bench harnesses (Linear
// Road, experiment tables) where exact quantiles make results
// reproducible. Long-running engine hot paths must use obs.Histogram,
// whose footprint is fixed.
type Histogram struct {
	mu   sync.Mutex
	vals []int64
	sum  int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.mu.Lock()
	h.vals = append(h.vals, v)
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.vals)
}

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.vals) == 0 {
		return 0
	}
	return float64(h.sum) / float64(len(h.vals))
}

// Quantile returns the q-th (0..1) order statistic, or 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.vals) == 0 {
		return 0
	}
	sorted := append([]int64(nil), h.vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Max returns the largest observation, or 0 when empty.
func (h *Histogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var max int64
	for _, v := range h.vals {
		if v > max {
			max = v
		}
	}
	return max
}

// Reset discards all observations.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.vals = h.vals[:0]
	h.sum = 0
	h.mu.Unlock()
}

// Summary renders count/mean/p50/p99/max with the values interpreted as
// nanoseconds.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p99=%s max=%s",
		h.Count(),
		time.Duration(int64(h.Mean())),
		time.Duration(h.Quantile(0.50)),
		time.Duration(h.Quantile(0.99)),
		time.Duration(h.Max()))
}

// Counter is a concurrency-safe monotonic counter.
type Counter struct {
	mu sync.Mutex
	n  int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	c.mu.Lock()
	c.n += d
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Rate computes a throughput given a wall-time interval.
func Rate(count int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(count) / elapsed.Seconds()
}
