package scheduler

import (
	"sync/atomic"
	"testing"
)

// countTransition consumes one token per firing.
type countTransition struct {
	name   string
	tokens atomic.Int64
	fired  atomic.Int64
}

func (c *countTransition) Name() string { return c.name }
func (c *countTransition) Ready() bool  { return c.tokens.Load() > 0 }
func (c *countTransition) Fire() error {
	c.tokens.Add(-1)
	c.fired.Add(1)
	return nil
}

// BenchmarkSteadyStateFiring measures the wake→enqueue→claim→fire path in
// concurrent mode. The acceptance bar is 0 allocs/op: steady-state
// scheduling must not allocate per firing (AllocsPerOp counts allocations
// across all goroutines, including the workers).
func BenchmarkSteadyStateFiring(b *testing.B) {
	tr := &countTransition{name: "t"}
	s := New()
	h := s.Register(tr, 0)
	s.Start(2)
	defer s.Stop()

	// Warm up: let run-queues reach steady-state capacity.
	tr.tokens.Add(1000)
	for i := 0; i < 1000; i++ {
		h.Wake()
	}
	for tr.fired.Load() < 1000 {
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.tokens.Add(1)
		h.Wake()
	}
	for tr.fired.Load() < int64(b.N)+1000 {
	}
	b.StopTimer()

	st := s.Stats()
	var misses int64
	for _, t := range st.Transitions {
		misses += t.ClaimMisses
	}
	b.ReportMetric(float64(misses)/float64(b.N), "claim-misses/op")
	// Claim misses must be ~0: the event-driven ready-set only enqueues
	// transitions that actually have work. Allow a tiny residue from
	// epilogue re-checks racing the producer.
	if float64(misses) > 0.01*float64(b.N)+16 {
		b.Fatalf("claim misses = %d over %d firings; want ~0", misses, b.N)
	}
}

// BenchmarkWakeWhileRunning measures the coalesced-wake fast path: waking a
// transition that is already queued costs one atomic load.
func BenchmarkWakeWhileRunning(b *testing.B) {
	tr := &countTransition{name: "t"}
	s := New()
	h := s.Register(tr, 0)
	// No pool: state stays idle and Wake returns after the pool check —
	// this isolates the caller-side cost without workers consuming.
	s.mu.Lock()
	s.entries[0].state.Store(stateQueued)
	s.mu.Unlock()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Wake()
	}
}
