package scheduler

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestRemoveFencesInFlightFiring verifies the Remove use-after-drop fix:
// Remove must not return while a worker is inside Fire, so teardown after
// Remove cannot race with a firing.
func TestRemoveFencesInFlightFiring(t *testing.T) {
	var torn, firedAfterTeardown atomic.Bool
	inFire := make(chan struct{}, 1)
	release := make(chan struct{})
	tr := &funcTransition{
		name:  "victim",
		ready: func() bool { return true },
		fire: func() error {
			if torn.Load() {
				firedAfterTeardown.Store(true)
			}
			select {
			case inFire <- struct{}{}:
			default:
			}
			<-release
			return nil
		},
	}
	s := New()
	s.Add(tr)
	s.Start(2)
	defer s.Stop()

	<-inFire // a worker is now inside Fire
	removed := make(chan struct{})
	go func() {
		s.Remove("victim")
		torn.Store(true) // simulates DROP CONTINUOUS QUERY teardown
		close(removed)
	}()
	select {
	case <-removed:
		t.Fatal("Remove returned while Fire was in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(release) // let the firing finish
	select {
	case <-removed:
	case <-time.After(5 * time.Second):
		t.Fatal("Remove never returned")
	}
	// Give any stray queued claim a chance to run; it must see removed.
	time.Sleep(20 * time.Millisecond)
	if firedAfterTeardown.Load() {
		t.Fatal("transition fired after Remove returned")
	}
}

// TestLowPriorityNotStarved proves a continuously-ready high-priority
// transition cannot starve a low-priority one: after each firing a ready
// transition re-queues at the tail, so the queue stays fair.
func TestLowPriorityNotStarved(t *testing.T) {
	var highFired, lowFired atomic.Int64
	high := &funcTransition{
		name:  "high",
		ready: func() bool { return true },
		fire:  func() error { highFired.Add(1); return nil },
	}
	low := &funcTransition{
		name:  "low",
		ready: func() bool { return true },
		fire:  func() error { lowFired.Add(1); return nil },
	}
	s := New()
	s.AddWithPriority(high, 10)
	s.AddWithPriority(low, 0)
	s.Start(1) // a single worker makes starvation possible if scheduling is unfair
	deadline := time.After(5 * time.Second)
	for lowFired.Load() < 100 {
		select {
		case <-deadline:
			t.Fatalf("low-priority starved: low=%d high=%d", lowFired.Load(), highFired.Load())
		case <-time.After(time.Millisecond):
		}
	}
	s.Stop()
	if highFired.Load() == 0 {
		t.Fatal("high-priority never fired")
	}
}

// TestWakeCoalescing proves K rapid wakes cause at most K+1 readiness
// scans of the woken transition — not K × workers. Wakes landing while
// the transition is queued or running must be absorbed.
func TestWakeCoalescing(t *testing.T) {
	var scans, tokens atomic.Int64
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	tr := &funcTransition{
		name: "sink",
		ready: func() bool {
			scans.Add(1)
			return tokens.Load() > 0
		},
		fire: func() error {
			select {
			case started <- struct{}{}:
			default:
			}
			<-block // hold the transition in "running" while wakes arrive
			tokens.Store(0)
			return nil
		},
	}
	s := New()
	h := s.Register(tr, 0)
	s.Start(4)
	defer s.Stop()

	tokens.Store(1)
	h.Wake()
	<-started // transition is mid-fire
	scansBefore := scans.Load()
	const K = 1000
	for i := 0; i < K; i++ {
		h.Wake() // all land in running/runningDirty: one re-enqueue total
	}
	close(block)
	// Wait for the post-fire settle.
	deadline := time.After(5 * time.Second)
	for h.Coalesced() < K-1 {
		select {
		case <-deadline:
			t.Fatalf("coalesced = %d, want >= %d", h.Coalesced(), K-1)
		case <-time.After(time.Millisecond):
		}
	}
	time.Sleep(20 * time.Millisecond) // let any residual scans land
	extra := scans.Load() - scansBefore
	// The dirty re-enqueue costs one scan, the epilogue re-check one more,
	// and the final idle settle one — far below K, and nowhere near K × 4.
	if extra > 16 {
		t.Fatalf("K=%d wakes caused %d scans; want ≤ 16", K, extra)
	}
}

// TestTargetedWakeDrivesPipeline checks that Handle.Wake alone (no global
// Notify) is enough to drive a two-stage pipeline, including the chained
// wake from stage 1's output to stage 2.
func TestTargetedWakeDrivesPipeline(t *testing.T) {
	var a, b, c int64
	s := New()
	h2 := s.Register(&tokenTransition{name: "t2", in: &b, out: &c, min: 1}, 0)
	t1 := &funcTransition{
		name:  "t1",
		ready: func() bool { return atomic.LoadInt64(&a) >= 1 },
		fire: func() error {
			n := atomic.SwapInt64(&a, 0)
			atomic.AddInt64(&b, n)
			h2.Wake() // the basket-append listener in the real wiring
			return nil
		},
	}
	h1 := s.Register(t1, 0)
	s.Start(2)
	defer s.Stop()
	for i := 0; i < 50; i++ {
		atomic.AddInt64(&a, 2)
		h1.Wake()
	}
	deadline := time.After(5 * time.Second)
	for atomic.LoadInt64(&c) != 100 {
		select {
		case <-deadline:
			t.Fatalf("timeout: a=%d b=%d c=%d", atomic.LoadInt64(&a), atomic.LoadInt64(&b), atomic.LoadInt64(&c))
		case <-time.After(time.Millisecond):
		}
	}
}

// TestStatsCounters sanity-checks the observability counters.
func TestStatsCounters(t *testing.T) {
	var in, out int64 = 5, 0
	s := New()
	h := s.Register(&tokenTransition{name: "t", in: &in, out: &out, min: 1}, 3)
	s.Step()
	st := s.Stats()
	if st.Fired != 1 || h.Fired() != 1 {
		t.Fatalf("fired: total=%d handle=%d", st.Fired, h.Fired())
	}
	if len(st.Transitions) != 1 || st.Transitions[0].Name != "t" || st.Transitions[0].Priority != 3 {
		t.Fatalf("transitions = %+v", st.Transitions)
	}
}
