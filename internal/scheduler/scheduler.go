// Package scheduler implements the DataCell's Petri-net processing model
// (§2.4): receptors, factories, and emitters are transitions; baskets are
// token places. A transition fires when all of its input places hold
// enough tuples. The scheduler continuously re-evaluates firing conditions
// and runs fireable transitions.
//
// Two modes are provided:
//
//   - Step/Drain: deterministic, single-threaded firing on the caller's
//     goroutine — used by tests and the benchmark harness.
//   - Start/Stop: an event-driven worker pool — the multi-threaded
//     architecture of the paper. Baskets wake the specific transitions
//     they feed via Handle.Wake; each wake enqueues the transition onto a
//     per-worker run-queue (with work-stealing), so there is no global
//     scan and no allocation on the firing path.
//
// A scheduler must be driven by exactly one of the two modes at a time.
//
// Each registered transition owns a four-state claim machine:
//
//	idle ──Wake──▶ queued ──worker pop──▶ running ──done──▶ idle
//	                            ▲                │
//	                            └── runningDirty ◀─ Wake while running
//
// Wakes arriving while the transition is queued or running coalesce: N
// appends during one firing produce at most one re-enqueue (runningDirty).
// After a firing the worker re-checks Ready and self-requeues at the tail
// of its run-queue, so a continuously-ready transition keeps running
// without starving others and without any periodic polling in the workers.
// Time-based windows are advanced by the engine's dedicated timer
// goroutine (which calls Notify), not by per-worker tickers.
package scheduler

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Transition is a Petri-net transition: a receptor, factory, or emitter.
type Transition interface {
	// Name identifies the transition in diagnostics.
	Name() string
	// Ready reports whether the firing condition holds (all input baskets
	// hold at least the transition's minimum tuple count).
	Ready() bool
	// Fire performs one processing step: consume inputs, produce outputs.
	Fire() error
}

// Handle claim-machine states.
const (
	stateIdle int32 = iota
	stateQueued
	stateRunning
	stateRunningDirty
)

// Handle is a registered transition's scheduling identity. Baskets (and
// other upstream places) hold the handles of the transitions they feed and
// call Wake on append — the transition→input-place edge map of the
// event-driven ready-set.
type Handle struct {
	t    Transition
	s    *Scheduler
	prio int

	state   atomic.Int32
	removed atomic.Bool

	fired     atomic.Int64 // completed firings
	misses    atomic.Int64 // dequeued while not ready (claim misses)
	coalesced atomic.Int64 // wakes absorbed by queued/running states

	// obsFn, when armed via Observe, receives (queueNS, fireNS, err)
	// after every firing. wakeNS holds the wall-clock stamp of the wake
	// that enqueued the handle; 0 when idle or unobserved.
	obsFn  atomic.Pointer[func(queueNS, fireNS int64, err error)]
	wakeNS atomic.Int64
}

// Observe arms a per-firing observer: after each firing of this
// transition, fn receives the queue delay (wake to execution start; 0 in
// deterministic Step mode), the firing duration, and the firing error if
// any. fn runs on the worker goroutine and must be fast and non-blocking.
// Passing nil disarms. Unobserved handles pay one atomic load per firing.
func (h *Handle) Observe(fn func(queueNS, fireNS int64, err error)) {
	if fn == nil {
		h.obsFn.Store(nil)
		return
	}
	h.obsFn.Store(&fn)
}

// Name returns the underlying transition's name.
func (h *Handle) Name() string { return h.t.Name() }

// Fired returns the number of times this transition has fired.
func (h *Handle) Fired() int64 { return h.fired.Load() }

// Misses returns the number of times the transition was dequeued but
// found not ready (wasted scans).
func (h *Handle) Misses() int64 { return h.misses.Load() }

// Coalesced returns the number of wakes absorbed without a new enqueue.
func (h *Handle) Coalesced() int64 { return h.coalesced.Load() }

// Wake marks the transition potentially fireable. It is safe from any
// goroutine, never blocks, and never allocates. Wakes while the transition
// is already queued or running coalesce into at most one re-enqueue.
func (h *Handle) Wake() {
	for {
		switch h.state.Load() {
		case stateIdle:
			p := h.s.pool.Load()
			if p == nil {
				return // deterministic mode: Step scans everything
			}
			if h.state.CompareAndSwap(stateIdle, stateQueued) {
				if h.obsFn.Load() != nil {
					h.wakeNS.Store(time.Now().UnixNano())
				}
				p.enqueue(h, -1)
				return
			}
		case stateQueued:
			h.coalesced.Add(1)
			return
		case stateRunning:
			if h.state.CompareAndSwap(stateRunning, stateRunningDirty) {
				h.coalesced.Add(1)
				return
			}
		case stateRunningDirty:
			h.coalesced.Add(1)
			return
		}
	}
}

// runq is one worker's run-queue: a growable power-of-two ring deque.
// Steady state never grows, so pushes and pops allocate nothing. A mutex
// (not a lock-free deque) keeps it simple; it is per-worker, so contention
// is limited to stealing.
type runq struct {
	mu   sync.Mutex
	buf  []*Handle
	head uint64
	tail uint64
}

func newRunq() *runq { return &runq{buf: make([]*Handle, 64)} }

func (q *runq) push(h *Handle) {
	q.mu.Lock()
	if q.tail-q.head == uint64(len(q.buf)) {
		bigger := make([]*Handle, len(q.buf)*2)
		for i := q.head; i < q.tail; i++ {
			bigger[i%uint64(len(bigger))] = q.buf[i%uint64(len(q.buf))]
		}
		q.buf = bigger
	}
	q.buf[q.tail%uint64(len(q.buf))] = h
	q.tail++
	q.mu.Unlock()
}

// pop removes the oldest handle (FIFO keeps firing order fair).
func (q *runq) pop() *Handle {
	q.mu.Lock()
	if q.head == q.tail {
		q.mu.Unlock()
		return nil
	}
	h := q.buf[q.head%uint64(len(q.buf))]
	q.buf[q.head%uint64(len(q.buf))] = nil
	q.head++
	q.mu.Unlock()
	return h
}

// pool is one Start/Stop generation of the worker fleet.
type pool struct {
	queues []*runq
	// beds[i] parks worker i; sleepers tracks parked workers as a bitmask
	// so a wake costs one atomic load when everyone is busy.
	beds     []chan struct{}
	sleepers atomic.Uint64
	done     chan struct{}
	rr       atomic.Uint64
}

// enqueue places h on a run-queue. from names the calling worker (its own
// queue is used, keeping self-requeues local); -1 round-robins.
func (p *pool) enqueue(h *Handle, from int) {
	i := from
	if i < 0 {
		i = int(p.rr.Add(1) % uint64(len(p.queues)))
	}
	p.queues[i].push(h)
	p.wakeOne()
}

func (p *pool) wakeOne() {
	for {
		m := p.sleepers.Load()
		if m == 0 {
			return
		}
		id := bits.TrailingZeros64(m)
		if p.sleepers.CompareAndSwap(m, m&^(1<<uint(id))) {
			select {
			case p.beds[id] <- struct{}{}:
			default:
			}
			return
		}
	}
}

// popAny pops from the worker's own queue, then steals round-robin.
func (p *pool) popAny(id int) *Handle {
	if h := p.queues[id].pop(); h != nil {
		return h
	}
	n := len(p.queues)
	for off := 1; off < n; off++ {
		if h := p.queues[(id+off)%n].pop(); h != nil {
			return h
		}
	}
	return nil
}

// WorkerStats reports one worker's accumulated busy/idle time.
type WorkerStats struct {
	BusyNS int64
	IdleNS int64
}

// TransitionStats reports one transition's scheduling counters.
type TransitionStats struct {
	Name           string
	Priority       int
	Fired          int64
	ClaimMisses    int64
	CoalescedWakes int64
}

// Stats is a snapshot of scheduler activity.
type Stats struct {
	Fired          int64
	ClaimMisses    int64
	CoalescedWakes int64
	Workers        []WorkerStats
	Transitions    []TransitionStats
}

// Scheduler organizes transition execution.
type Scheduler struct {
	mu      sync.Mutex
	entries []*Handle // priority order; ties keep registration order

	pool    atomic.Pointer[pool]
	wg      sync.WaitGroup
	started bool

	// OnError, when set, receives transition failures; by default they are
	// recorded and firing continues.
	OnError func(name string, err error)

	errMu   sync.Mutex
	lastErr error
	fired   int64

	workerStats []workerClock
}

type workerClock struct {
	busyNS atomic.Int64
	idleNS atomic.Int64
}

// New returns an empty scheduler.
func New() *Scheduler { return &Scheduler{} }

// Register adds a transition and returns its wake handle. Higher-priority
// transitions are scanned (and therefore fired) first in Step mode and
// seeded first on Start — the paper's "different query priorities" hook.
// Ties keep registration order.
func (s *Scheduler) Register(t Transition, priority int) *Handle {
	h := &Handle{t: t, s: s, prio: priority}
	s.mu.Lock()
	pos := len(s.entries)
	for i, e := range s.entries {
		if e.prio < priority {
			pos = i
			break
		}
	}
	s.entries = append(s.entries, nil)
	copy(s.entries[pos+1:], s.entries[pos:])
	s.entries[pos] = h
	s.mu.Unlock()
	// If the pool is live, let the new transition compete immediately.
	h.Wake()
	return h
}

// Add registers a transition at priority 0.
func (s *Scheduler) Add(t Transition) { s.Register(t, 0) }

// AddWithPriority registers a transition at the given priority.
func (s *Scheduler) AddWithPriority(t Transition, priority int) { s.Register(t, priority) }

// Remove unregisters a transition by name and fences in-flight claims: it
// does not return while a worker is firing the transition, so callers can
// tear the transition's state down safely afterwards.
func (s *Scheduler) Remove(name string) {
	s.mu.Lock()
	var h *Handle
	for i, e := range s.entries {
		if e.t.Name() == name {
			h = e
			s.entries = append(s.entries[:i], s.entries[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	if h == nil {
		return
	}
	h.removed.Store(true)
	// Wait out an in-flight firing. A queued (not yet claimed) handle is
	// fine: workers check removed before firing. With no pool running
	// nothing can be mid-fire, so the fence is a no-op.
	for s.pool.Load() != nil {
		st := h.state.Load()
		if st != stateRunning && st != stateRunningDirty {
			return
		}
		runtime.Gosched()
	}
}

// Transitions returns a snapshot of the registered transitions in
// scheduling order.
func (s *Scheduler) Transitions() []Transition {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Transition, len(s.entries))
	for i, e := range s.entries {
		out[i] = e.t
	}
	return out
}

// Notify wakes every registered transition — the legacy broadcast kick.
// The engine's timer goroutine calls it so time-based windows advance;
// hot-path appends should use the per-transition Handle.Wake instead.
func (s *Scheduler) Notify() {
	if s.pool.Load() == nil {
		return
	}
	s.mu.Lock()
	for _, h := range s.entries {
		h.Wake()
	}
	s.mu.Unlock()
}

// Step runs one deterministic pass: every currently-ready transition fires
// once, in registration order. It returns the number of firings.
func (s *Scheduler) Step() int {
	s.mu.Lock()
	es := append([]*Handle(nil), s.entries...)
	s.mu.Unlock()
	fired := 0
	for _, h := range es {
		if h.removed.Load() || !h.t.Ready() {
			continue
		}
		s.fire(h)
		fired++
	}
	return fired
}

// Drain repeatedly Steps until no transition is ready (the net is dead, in
// Petri-net terms) or maxRounds passes elapse. It returns the total number
// of firings.
func (s *Scheduler) Drain(maxRounds int) int {
	total := 0
	for round := 0; round < maxRounds; round++ {
		n := s.Step()
		total += n
		if n == 0 {
			return total
		}
	}
	return total
}

func (s *Scheduler) fire(h *Handle) {
	atomic.AddInt64(&s.fired, 1)
	h.fired.Add(1)
	fn := h.obsFn.Load()
	var t0 time.Time
	if fn != nil {
		t0 = time.Now()
	}
	err := h.t.Fire()
	if fn != nil {
		fireNS := int64(time.Since(t0))
		var queueNS int64
		if w := h.wakeNS.Swap(0); w != 0 {
			if queueNS = t0.UnixNano() - w; queueNS < 0 {
				queueNS = 0
			}
		}
		(*fn)(queueNS, fireNS, err)
	}
	if err != nil {
		s.errMu.Lock()
		s.lastErr = err
		s.errMu.Unlock()
		if s.OnError != nil {
			s.OnError(h.t.Name(), err)
		}
	}
}

// Fired returns the total number of transition firings.
func (s *Scheduler) Fired() int64 { return atomic.LoadInt64(&s.fired) }

// Err returns the most recent transition error, if any.
func (s *Scheduler) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.lastErr
}

// Stats returns a snapshot of scheduler counters: total and per-transition
// firings, claim misses (dequeued-but-not-ready scans), coalesced wakes,
// and per-worker busy/idle time.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	ts := make([]TransitionStats, len(s.entries))
	var misses, coalesced int64
	for i, h := range s.entries {
		ts[i] = TransitionStats{
			Name:           h.t.Name(),
			Priority:       h.prio,
			Fired:          h.fired.Load(),
			ClaimMisses:    h.misses.Load(),
			CoalescedWakes: h.coalesced.Load(),
		}
		misses += ts[i].ClaimMisses
		coalesced += ts[i].CoalescedWakes
	}
	ws := make([]WorkerStats, len(s.workerStats))
	for i := range s.workerStats {
		ws[i] = WorkerStats{
			BusyNS: s.workerStats[i].busyNS.Load(),
			IdleNS: s.workerStats[i].idleNS.Load(),
		}
	}
	s.mu.Unlock()
	return Stats{
		Fired:          s.Fired(),
		ClaimMisses:    misses,
		CoalescedWakes: coalesced,
		Workers:        ws,
		Transitions:    ts,
	}
}

// Start launches the worker pool (concurrent mode). Workers drain their
// run-queues, steal from each other when empty, and park on a per-worker
// channel otherwise; there is no polling in the workers.
func (s *Scheduler) Start(workers int) {
	if workers < 1 {
		workers = 1
	}
	if workers > 64 {
		workers = 64 // sleeper bitmask width
	}
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	p := &pool{
		queues: make([]*runq, workers),
		beds:   make([]chan struct{}, workers),
		done:   make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		p.queues[i] = newRunq()
		p.beds[i] = make(chan struct{}, 1)
	}
	s.workerStats = make([]workerClock, workers)
	// Seed: everything currently registered competes from the start, in
	// priority order.
	seed := append([]*Handle(nil), s.entries...)
	s.pool.Store(p)
	s.mu.Unlock()
	for _, h := range seed {
		// A handle stuck in queued from a previous generation sits in a
		// dead queue; re-enqueue it directly.
		if h.state.Load() == stateQueued {
			p.enqueue(h, -1)
		} else {
			h.Wake()
		}
	}
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go s.worker(p, w)
	}
}

func (s *Scheduler) worker(p *pool, id int) {
	defer s.wg.Done()
	clock := &s.workerStats[id]
	for {
		select {
		case <-p.done:
			return
		default:
		}
		h := p.popAny(id)
		if h == nil {
			// Park protocol: advertise, re-scan (an enqueue may have raced
			// with the advertisement), then sleep.
			bit := uint64(1) << uint(id)
			p.sleepers.Or(bit)
			if h = p.popAny(id); h != nil {
				p.sleepers.And(^bit)
				select { // drop a stale wake token, if any
				case <-p.beds[id]:
				default:
				}
			} else {
				t0 := time.Now()
				select {
				case <-p.done:
					return
				case <-p.beds[id]:
				}
				clock.idleNS.Add(int64(time.Since(t0)))
				continue
			}
		}
		s.runHandle(p, id, h, clock)
	}
}

// runHandle claims, checks, and fires one dequeued handle, then settles
// its state machine.
func (s *Scheduler) runHandle(p *pool, id int, h *Handle, clock *workerClock) {
	if !h.state.CompareAndSwap(stateQueued, stateRunning) {
		return // defensive: only a pop should claim a queued handle
	}
	if h.removed.Load() {
		h.state.Store(stateIdle)
		return
	}
	if h.t.Ready() {
		t0 := time.Now()
		s.fire(h)
		clock.busyNS.Add(int64(time.Since(t0)))
	} else {
		h.misses.Add(1)
	}
	// Epilogue: settle running → idle, honoring wakes that arrived during
	// the firing (runningDirty) and re-queuing while still ready so a
	// continuously-ready net keeps draining without polling.
	if h.state.CompareAndSwap(stateRunning, stateIdle) {
		if !h.removed.Load() && h.t.Ready() {
			h.Wake()
		}
		return
	}
	// Dirty: new tokens arrived mid-fire; exactly one re-enqueue.
	h.state.Store(stateQueued)
	if h.removed.Load() {
		h.state.Store(stateIdle)
		return
	}
	p.enqueue(h, id)
}

// Stop terminates the worker pool and waits for in-flight firings.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	p := s.pool.Load()
	s.pool.Store(nil)
	close(p.done)
	s.mu.Unlock()
	s.wg.Wait()
}
