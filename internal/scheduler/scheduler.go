// Package scheduler implements the DataCell's Petri-net processing model
// (§2.4): receptors, factories, and emitters are transitions; baskets are
// token places. A transition fires when all of its input places hold
// enough tuples. The scheduler continuously re-evaluates firing conditions
// and runs fireable transitions.
//
// Two modes are provided:
//
//   - Step/Drain: deterministic, single-threaded firing on the caller's
//     goroutine — used by tests and the benchmark harness.
//   - Start/Stop: a worker pool woken by basket appends — the
//     multi-threaded architecture of the paper.
//
// A scheduler must be driven by exactly one of the two modes at a time.
package scheduler

import (
	"sync"
	"sync/atomic"
	"time"
)

// Transition is a Petri-net transition: a receptor, factory, or emitter.
type Transition interface {
	// Name identifies the transition in diagnostics.
	Name() string
	// Ready reports whether the firing condition holds (all input baskets
	// hold at least the transition's minimum tuple count).
	Ready() bool
	// Fire performs one processing step: consume inputs, produce outputs.
	Fire() error
}

// entry pairs a transition with its priority and its concurrent-mode
// claim flag (the flag travels with the transition across reorderings).
type entry struct {
	t    Transition
	prio int
	busy int32
}

// Scheduler organizes transition execution.
type Scheduler struct {
	mu      sync.Mutex
	entries []*entry

	wake    chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup
	started bool

	// OnError, when set, receives transition failures; by default they are
	// recorded and firing continues.
	OnError func(name string, err error)

	errMu   sync.Mutex
	lastErr error
	fired   int64
}

// New returns an empty scheduler.
func New() *Scheduler {
	return &Scheduler{wake: make(chan struct{}, 1)}
}

// Add registers a transition at priority 0.
func (s *Scheduler) Add(t Transition) { s.AddWithPriority(t, 0) }

// AddWithPriority registers a transition. Higher-priority transitions are
// scanned (and therefore fired) first — the paper's "different query
// priorities" hook. Ties keep registration order.
func (s *Scheduler) AddWithPriority(t Transition, priority int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Insert before the first strictly lower priority, keeping stability.
	pos := len(s.entries)
	for i, e := range s.entries {
		if e.prio < priority {
			pos = i
			break
		}
	}
	s.entries = append(s.entries, nil)
	copy(s.entries[pos+1:], s.entries[pos:])
	s.entries[pos] = &entry{t: t, prio: priority}
}

// Remove unregisters a transition by name.
func (s *Scheduler) Remove(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, e := range s.entries {
		if e.t.Name() == name {
			s.entries = append(s.entries[:i], s.entries[i+1:]...)
			return
		}
	}
}

// Transitions returns a snapshot of the registered transitions in
// scheduling order.
func (s *Scheduler) Transitions() []Transition {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Transition, len(s.entries))
	for i, e := range s.entries {
		out[i] = e.t
	}
	return out
}

// Notify wakes the worker pool; baskets call it on append.
func (s *Scheduler) Notify() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Step runs one deterministic pass: every currently-ready transition fires
// once, in registration order. It returns the number of firings.
func (s *Scheduler) Step() int {
	fired := 0
	for _, t := range s.Transitions() {
		if !t.Ready() {
			continue
		}
		s.fire(t)
		fired++
	}
	return fired
}

// Drain repeatedly Steps until no transition is ready (the net is dead, in
// Petri-net terms) or maxRounds passes elapse. It returns the total number
// of firings.
func (s *Scheduler) Drain(maxRounds int) int {
	total := 0
	for round := 0; round < maxRounds; round++ {
		n := s.Step()
		total += n
		if n == 0 {
			return total
		}
	}
	return total
}

func (s *Scheduler) fire(t Transition) {
	atomic.AddInt64(&s.fired, 1)
	if err := t.Fire(); err != nil {
		s.errMu.Lock()
		s.lastErr = err
		s.errMu.Unlock()
		if s.OnError != nil {
			s.OnError(t.Name(), err)
		}
	}
}

// Fired returns the total number of transition firings.
func (s *Scheduler) Fired() int64 { return atomic.LoadInt64(&s.fired) }

// Err returns the most recent transition error, if any.
func (s *Scheduler) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.lastErr
}

// Start launches the worker pool (concurrent mode). Each worker scans for
// a ready, unclaimed transition and fires it; with nothing ready, workers
// sleep until a basket append notifies them (with a periodic fallback scan
// so time-based windows advance).
func (s *Scheduler) Start(workers int) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.done = make(chan struct{})
	s.mu.Unlock()
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		if s.fireOne() {
			// Keep going while there is work — but let Stop interrupt a
			// continuously-ready net.
			select {
			case <-s.done:
				return
			default:
			}
			continue
		}
		select {
		case <-s.done:
			return
		case <-s.wake:
		case <-tick.C:
		}
	}
}

// fireOne claims and fires the first ready transition; it reports whether
// it fired anything.
func (s *Scheduler) fireOne() bool {
	s.mu.Lock()
	es := append([]*entry(nil), s.entries...)
	s.mu.Unlock()
	for _, e := range es {
		if !atomic.CompareAndSwapInt32(&e.busy, 0, 1) {
			continue
		}
		if e.t.Ready() {
			s.fire(e.t)
			atomic.StoreInt32(&e.busy, 0)
			return true
		}
		atomic.StoreInt32(&e.busy, 0)
	}
	return false
}

// Stop terminates the worker pool and waits for in-flight firings.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	close(s.done)
	s.mu.Unlock()
	s.wg.Wait()
}
