package scheduler

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tokenTransition moves tokens from an input counter to an output counter,
// modeling a factory between two baskets.
type tokenTransition struct {
	name     string
	in, out  *int64
	min      int64
	failWith error
}

func (t *tokenTransition) Name() string { return t.name }
func (t *tokenTransition) Ready() bool  { return atomic.LoadInt64(t.in) >= t.min }
func (t *tokenTransition) Fire() error {
	if t.failWith != nil {
		return t.failWith
	}
	n := atomic.LoadInt64(t.in)
	atomic.AddInt64(t.in, -n)
	atomic.AddInt64(t.out, n)
	return nil
}

func TestStepFiresReadyTransitions(t *testing.T) {
	s := New()
	var a, b, c int64 = 5, 0, 0
	s.Add(&tokenTransition{name: "t1", in: &a, out: &b, min: 1})
	s.Add(&tokenTransition{name: "t2", in: &b, out: &c, min: 1})
	// First pass: t1 fires (a→b); t2 fires too because it runs after t1.
	fired := s.Step()
	if fired != 2 {
		t.Fatalf("fired = %d", fired)
	}
	if a != 0 || b != 0 || c != 5 {
		t.Errorf("tokens: a=%d b=%d c=%d", a, b, c)
	}
	if s.Step() != 0 {
		t.Error("dead net should not fire")
	}
}

func TestMinTokensGatesFiring(t *testing.T) {
	s := New()
	var a, b int64 = 3, 0
	s.Add(&tokenTransition{name: "t", in: &a, out: &b, min: 5})
	if s.Step() != 0 {
		t.Error("transition below threshold fired")
	}
	atomic.AddInt64(&a, 2)
	if s.Step() != 1 {
		t.Error("transition at threshold did not fire")
	}
}

func TestDrainChains(t *testing.T) {
	s := New()
	// Chain of 4 stages; each Step moves tokens one stage in order, so a
	// Drain settles the whole chain.
	var stages [5]int64
	stages[0] = 7
	for i := 0; i < 4; i++ {
		s.Add(&tokenTransition{name: "t", in: &stages[i], out: &stages[i+1], min: 1})
	}
	total := s.Drain(100)
	if stages[4] != 7 {
		t.Errorf("tokens at sink = %d", stages[4])
	}
	if total < 4 {
		t.Errorf("total firings = %d", total)
	}
	if s.Fired() != int64(total) {
		t.Errorf("Fired = %d, want %d", s.Fired(), total)
	}
}

func TestErrorsRecordedAndReported(t *testing.T) {
	s := New()
	boom := errors.New("boom")
	var a, b int64 = 1, 0
	var gotName string
	s.OnError = func(name string, err error) { gotName = name }
	s.Add(&tokenTransition{name: "bad", in: &a, out: &b, failWith: boom, min: 1})
	s.Step()
	if !errors.Is(s.Err(), boom) {
		t.Errorf("Err = %v", s.Err())
	}
	if gotName != "bad" {
		t.Errorf("OnError name = %q", gotName)
	}
}

func TestRemove(t *testing.T) {
	s := New()
	var a, b int64 = 1, 0
	s.Add(&tokenTransition{name: "t1", in: &a, out: &b, min: 1})
	s.Remove("t1")
	if len(s.Transitions()) != 0 {
		t.Error("transition not removed")
	}
	if s.Step() != 0 {
		t.Error("removed transition fired")
	}
	s.Remove("absent") // no panic
}

func TestConcurrentModeProcessesStream(t *testing.T) {
	s := New()
	var in, out int64
	s.Add(&tokenTransition{name: "t", in: &in, out: &out, min: 1})
	s.Start(4)
	defer s.Stop()
	for i := 0; i < 100; i++ {
		atomic.AddInt64(&in, 10)
		s.Notify()
	}
	deadline := time.After(5 * time.Second)
	for atomic.LoadInt64(&out) != 1000 {
		select {
		case <-deadline:
			t.Fatalf("timeout: out = %d", atomic.LoadInt64(&out))
		case <-time.After(time.Millisecond):
		}
	}
	s.Stop() // idempotent with deferred Stop
}

func TestNoSelfOverlapInConcurrentMode(t *testing.T) {
	// A transition that checks it is never fired concurrently with itself.
	var active, maxActive int32
	var mu sync.Mutex
	tr := &funcTransition{
		name:  "serial",
		ready: func() bool { return true },
		fire: func() error {
			cur := atomic.AddInt32(&active, 1)
			mu.Lock()
			if cur > maxActive {
				maxActive = cur
			}
			mu.Unlock()
			time.Sleep(100 * time.Microsecond)
			atomic.AddInt32(&active, -1)
			return nil
		},
	}
	s := New()
	s.Add(tr)
	s.Start(8)
	time.Sleep(50 * time.Millisecond)
	s.Stop()
	mu.Lock()
	defer mu.Unlock()
	if maxActive > 1 {
		t.Errorf("transition overlapped with itself: max %d", maxActive)
	}
}

type funcTransition struct {
	name  string
	ready func() bool
	fire  func() error
}

func (f *funcTransition) Name() string { return f.name }
func (f *funcTransition) Ready() bool  { return f.ready() }
func (f *funcTransition) Fire() error  { return f.fire() }

func TestStartTwiceAndStopTwice(t *testing.T) {
	s := New()
	s.Start(1)
	s.Start(1) // no-op
	s.Stop()
	s.Stop() // no-op
}

func TestStopInterruptsAlwaysReadyNet(t *testing.T) {
	// A transition that is permanently ready must not prevent Stop.
	s := New()
	s.Add(&funcTransition{
		name:  "busy",
		ready: func() bool { return true },
		fire:  func() error { return nil },
	})
	s.Start(2)
	time.Sleep(10 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		s.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung on an always-ready transition")
	}
}

func TestPriorityOrdering(t *testing.T) {
	s := New()
	var order []string
	mk := func(name string) *funcTransition {
		fired := false
		return &funcTransition{
			name:  name,
			ready: func() bool { return !fired },
			fire: func() error {
				fired = true
				order = append(order, name)
				return nil
			},
		}
	}
	s.Add(mk("low1"))                 // prio 0
	s.AddWithPriority(mk("high"), 10) // scanned first
	s.AddWithPriority(mk("mid"), 5)   // between
	s.Add(mk("low2"))                 // prio 0, after low1
	s.Step()
	want := []string{"high", "mid", "low1", "low2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
