package basket

import (
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/vector"
)

func sensorSchema() *catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Name: "id", Type: vector.Int64},
		catalog.Column{Name: "temp", Type: vector.Float64},
	)
}

func newB(t *testing.T) (*Basket, *metrics.ManualClock) {
	t.Helper()
	clk := metrics.NewManualClock(1000)
	return New("sensors", sensorSchema(), clk), clk
}

func TestSchemaGetsTimestamp(t *testing.T) {
	b, _ := newB(t)
	if b.Schema().Len() != 3 {
		t.Fatalf("schema = %v", b.Schema())
	}
	if b.Schema().Index(catalog.TimestampColumn) != 2 {
		t.Error("ts column missing")
	}
	if b.UserWidth() != 2 {
		t.Errorf("UserWidth = %d", b.UserWidth())
	}
}

func TestAppendStampsTimestamps(t *testing.T) {
	b, clk := newB(t)
	if err := b.Append([]*vector.Vector{
		vector.FromInts([]int64{1, 2}),
		vector.FromFloats([]float64{20.5, 21.5}),
	}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(500)
	if err := b.AppendRows([][]vector.Value{
		{vector.NewInt(3), vector.NewFloat(22.5)},
	}); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	view := b.Snapshot()
	if view.Get(2, 0).I != 1000 || view.Get(2, 2).I != 1500 {
		t.Errorf("timestamps: %v", view.Column(2))
	}
}

func TestAppendArityError(t *testing.T) {
	b, _ := newB(t)
	if err := b.Append([]*vector.Vector{vector.FromInts([]int64{1})}); err == nil {
		t.Error("short append should fail")
	}
	if err := b.AppendRows([][]vector.Value{{vector.NewInt(1)}}); err == nil {
		t.Error("short row should fail")
	}
}

func TestOnAppendHook(t *testing.T) {
	b, _ := newB(t)
	calls := 0
	b.OnAppend(func() { calls++ })
	_ = b.AppendRows([][]vector.Value{{vector.NewInt(1), vector.NewFloat(1)}})
	_ = b.AppendRows([][]vector.Value{{vector.NewInt(2), vector.NewFloat(2)}})
	if calls != 2 {
		t.Errorf("hook calls = %d", calls)
	}
}

func TestOwnedConsumption(t *testing.T) {
	b, _ := newB(t)
	for i := int64(0); i < 5; i++ {
		_ = b.AppendRows([][]vector.Value{{vector.NewInt(i), vector.NewFloat(float64(i))}})
	}
	b.Lock()
	view, n := b.LockedSnapshot()
	if n != 5 {
		t.Fatalf("n = %d", n)
	}
	b.LockedRemove([]int{0, 2, 4})
	b.Unlock()
	if b.Len() != 2 {
		t.Fatalf("Len after remove = %d", b.Len())
	}
	// The pre-removal snapshot stays intact.
	if view.NumRows() != 5 || view.Get(0, 0).I != 0 {
		t.Error("snapshot corrupted by removal")
	}
	// Survivors are ids 1 and 3.
	after := b.Snapshot()
	if after.Get(0, 0).I != 1 || after.Get(0, 1).I != 3 {
		t.Errorf("survivors: %v", after.Column(0))
	}
}

func TestLockedDropPrefix(t *testing.T) {
	b, _ := newB(t)
	for i := int64(0); i < 4; i++ {
		_ = b.AppendRows([][]vector.Value{{vector.NewInt(i), vector.NewFloat(0)}})
	}
	b.Lock()
	b.LockedDropPrefix(3)
	b.Unlock()
	if b.Len() != 1 || b.Snapshot().Get(0, 0).I != 3 {
		t.Errorf("after drop: len=%d", b.Len())
	}
	if b.Hseq() != 3 {
		t.Errorf("Hseq = %d", b.Hseq())
	}
}

func TestSharedWatermarks(t *testing.T) {
	b, _ := newB(t)
	b.RegisterReader("q1")
	b.RegisterReader("q2")
	if b.Readers() != 2 {
		t.Fatalf("Readers = %d", b.Readers())
	}
	for i := int64(0); i < 6; i++ {
		_ = b.AppendRows([][]vector.Value{{vector.NewInt(i), vector.NewFloat(0)}})
	}

	// q1 sees everything; tuples must be retained for q2.
	b.Lock()
	off, n := b.UnseenLocked("q1")
	if off != 0 || n != 6 {
		t.Fatalf("q1 unseen = %d..%d", off, n)
	}
	b.LockedSetMark("q1", b.LockedHseq()+6)
	b.Unlock()
	if b.Len() != 6 {
		t.Fatalf("retained for q2: Len = %d", b.Len())
	}

	// q1 has nothing unseen now.
	b.Lock()
	off, n = b.UnseenLocked("q1")
	b.Unlock()
	if n-off != 0 {
		t.Errorf("q1 unseen after mark = %d", n-off)
	}

	// q2 consumes 4 of 6: prefix min(q1=6, q2=4) = 4 compacted.
	b.Lock()
	b.LockedSetMark("q2", b.LockedHseq()+4)
	b.Unlock()
	if b.Len() != 2 {
		t.Fatalf("after q2 partial mark: Len = %d", b.Len())
	}

	// q2 finishes; everything compacts.
	b.Lock()
	b.LockedSetMark("q2", b.LockedHseq()+2)
	b.Unlock()
	if b.Len() != 0 {
		t.Errorf("after full marks: Len = %d", b.Len())
	}
}

func TestLateReaderStartsAtCurrentHead(t *testing.T) {
	b, _ := newB(t)
	b.RegisterReader("q1")
	for i := int64(0); i < 3; i++ {
		_ = b.AppendRows([][]vector.Value{{vector.NewInt(i), vector.NewFloat(0)}})
	}
	b.Lock()
	b.LockedSetMark("q1", 3)
	b.Unlock()
	// New reader registers after compaction; it must not block on history.
	b.RegisterReader("q2")
	_ = b.AppendRows([][]vector.Value{{vector.NewInt(9), vector.NewFloat(0)}})
	b.Lock()
	off, n := b.UnseenLocked("q2")
	b.Unlock()
	if n-off != 1 {
		t.Errorf("q2 unseen = %d, want 1", n-off)
	}
}

func TestUnregisterReaderUnblocksCompaction(t *testing.T) {
	b, _ := newB(t)
	b.RegisterReader("fast")
	b.RegisterReader("slow")
	for i := int64(0); i < 4; i++ {
		_ = b.AppendRows([][]vector.Value{{vector.NewInt(i), vector.NewFloat(0)}})
	}
	b.Lock()
	b.LockedSetMark("fast", 4)
	b.Unlock()
	if b.Len() != 4 {
		t.Fatal("slow reader should retain")
	}
	b.UnregisterReader("slow")
	if b.Len() != 0 {
		t.Errorf("Len after unregister = %d", b.Len())
	}
}

func TestAppendRelationDropsForeignTS(t *testing.T) {
	b, clk := newB(t)
	other := New("other", sensorSchema(), metrics.NewManualClock(1))
	_ = other.AppendRows([][]vector.Value{{vector.NewInt(7), vector.NewFloat(7)}})
	clk.Set(9999)
	// A relation carrying a ts column (3 cols) gets fresh stamps.
	rel := &storage.Relation{Schema: other.Schema(), Cols: other.Snapshot().Columns()}
	if err := b.AppendRelation(rel); err != nil {
		t.Fatal(err)
	}
	got := b.Snapshot()
	if got.Get(2, 0).I != 9999 {
		t.Errorf("ts = %d, want fresh 9999", got.Get(2, 0).I)
	}
}

func TestConcurrentAppendAndConsume(t *testing.T) {
	b, _ := newB(t)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := int64(0); i < 500; i++ {
			_ = b.AppendRows([][]vector.Value{{vector.NewInt(i), vector.NewFloat(0)}})
		}
	}()
	consumed := 0
	go func() {
		defer wg.Done()
		for consumed < 500 {
			b.Lock()
			_, n := b.LockedSnapshot()
			b.LockedDropPrefix(n)
			b.Unlock()
			consumed += n
		}
	}()
	wg.Wait()
	if b.Len() != 0 {
		t.Errorf("leftover = %d", b.Len())
	}
	if consumed != 500 {
		t.Errorf("consumed = %d", consumed)
	}
}
