// Package basket implements the DataCell's central data structure (§2.2):
// a stream-holding, main-memory column table. Tuples are appended on
// arrival (with an implicit timestamp column), wait to be processed, and
// are removed once every relevant continuous query has consumed them.
//
// A basket supports both consumption disciplines of the paper:
//
//   - Owned (separate-baskets strategy): a single factory owns the basket
//     and removes tuples directly (DropPrefix / Remove for predicate
//     windows).
//   - Shared (shared-baskets strategy): multiple factories register as
//     readers; each advances a private watermark after processing, and the
//     basket compacts the prefix all readers have seen.
package basket

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/vector"
)

// Feed is an out-of-lock staging area for arriving tuples — the engine's
// ingest fan-out publishes shard slices to an SPSC ring (see
// partition.Inbox) instead of taking every shard basket's lock. The basket
// admits staged batches lazily: every code path that enters the basket
// lock first drains the feed, so feed content is indistinguishable from
// appended content to readers, factories, and checkpoint capture.
//
// Drain is only called with the basket lock held, making the basket the
// single consumer the SPSC contract requires.
type Feed interface {
	// Pending returns the number of staged tuples (cheap; lock-free).
	Pending() int
	// Drain emits staged batches oldest-first. emit receives the user
	// columns and the arrival timestamp to stamp them with. A non-nil
	// error aborts the drain, leaving the remainder staged.
	Drain(emit func(cols []*vector.Vector, ts int64) error) error
}

// listener is one append subscriber (a downstream transition's wake hook).
type listener struct {
	id uint64
	fn func()
}

// Basket is a concurrency-safe stream buffer. It implements
// catalog.Source so plans can scan it like any table.
type Basket struct {
	name   string
	schema *catalog.Schema // user schema + implicit ts column
	clock  metrics.Clock

	mu      sync.Mutex
	table   *storage.Table
	readers map[string]bat.OID // shared-mode watermarks: next unseen OID
	// listeners are invoked (outside the lock) after every append — the
	// downstream transitions' wake hooks. Copy-on-write so notify() is a
	// single atomic load on the hot path.
	listeners atomic.Pointer[[]listener]
	lisMu     sync.Mutex
	lisSeq    atomic.Uint64
	// feed, when set, stages arriving tuples outside the lock; feedEmit is
	// the pre-bound admission callback (avoids a closure per drain).
	feed     Feed
	feedEmit func(cols []*vector.Vector, ts int64) error
	feedErr  error
	// capacity, when positive, bounds the basket: appends beyond it shed
	// the oldest tuples (the paper's load-shedding requirement). shed
	// counts the victims.
	capacity int
	shed     int64
}

// New creates an empty basket. The given schema must NOT include the
// timestamp column; it is appended automatically, per the paper.
func New(name string, schema *catalog.Schema, clock metrics.Clock) *Basket {
	if clock == nil {
		clock = metrics.WallClock{}
	}
	full := schema.WithTimestamp()
	return &Basket{
		name:    name,
		schema:  full,
		clock:   clock,
		table:   storage.NewTable(name, full),
		readers: map[string]bat.OID{},
	}
}

// Name returns the basket name.
func (b *Basket) Name() string { return b.name }

// Schema implements catalog.Source. It includes the implicit ts column.
func (b *Basket) Schema() *catalog.Schema { return b.schema }

// UserWidth returns the number of user columns (excluding ts).
func (b *Basket) UserWidth() int { return b.schema.Len() - 1 }

// OnAppend replaces all append listeners with the single given hook (or
// none, when fn is nil). It predates Subscribe and is kept for callers
// that want one broadcast hook; engine wiring uses Subscribe so each
// downstream transition gets a targeted wake.
func (b *Basket) OnAppend(fn func()) {
	b.lisMu.Lock()
	defer b.lisMu.Unlock()
	if fn == nil {
		b.listeners.Store(nil)
		return
	}
	ls := []listener{{id: b.lisSeq.Add(1), fn: fn}}
	b.listeners.Store(&ls)
}

// Subscribe registers an append listener and returns its id for
// Unsubscribe. Listeners run outside the basket lock after every append;
// the engine subscribes each consuming transition's Handle.Wake here —
// the transition→input-place edge map of the event-driven scheduler.
func (b *Basket) Subscribe(fn func()) uint64 {
	b.lisMu.Lock()
	defer b.lisMu.Unlock()
	id := b.lisSeq.Add(1)
	var cur []listener
	if p := b.listeners.Load(); p != nil {
		cur = *p
	}
	next := make([]listener, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = listener{id: id, fn: fn}
	b.listeners.Store(&next)
	return id
}

// Unsubscribe removes a listener registered with Subscribe.
func (b *Basket) Unsubscribe(id uint64) {
	b.lisMu.Lock()
	defer b.lisMu.Unlock()
	p := b.listeners.Load()
	if p == nil {
		return
	}
	cur := *p
	next := make([]listener, 0, len(cur))
	for _, l := range cur {
		if l.id != id {
			next = append(next, l)
		}
	}
	if len(next) == 0 {
		b.listeners.Store(nil)
		return
	}
	b.listeners.Store(&next)
}

// notify invokes every append listener (outside the basket lock).
func (b *Basket) notify() {
	if p := b.listeners.Load(); p != nil {
		for _, l := range *p {
			l.fn()
		}
	}
}

// SetFeed attaches a staging feed (nil detaches). Baskets admit staged
// batches on every lock entry, so the feed's content is visible to all
// readers without the producer ever taking the basket lock.
func (b *Basket) SetFeed(f Feed) {
	b.mu.Lock()
	b.feed = f
	if f != nil {
		b.feedEmit = b.stampedAppendLocked
	}
	b.mu.Unlock()
}

// FeedErr returns the most recent feed admission error, if any.
func (b *Basket) FeedErr() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.feedErr
}

// admitLocked drains staged batches into the table; the caller holds mu.
func (b *Basket) admitLocked() {
	if b.feed == nil || b.feed.Pending() == 0 {
		return
	}
	if err := b.feed.Drain(b.feedEmit); err != nil {
		b.feedErr = err
	}
}

// Len returns the number of buffered tuples.
func (b *Basket) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.admitLocked()
	return b.table.NumRows()
}

// Hseq returns the OID of the oldest buffered tuple.
func (b *Basket) Hseq() bat.OID {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.admitLocked()
	return b.table.Hseq()
}

// Bounds returns the oldest OID and the tuple count in one consistent
// view; hseq+n is the OID the next arrival will get. Removing tuples
// never decreases hseq+n, so it serves as a monotonic arrival watermark.
func (b *Basket) Bounds() (hseq bat.OID, n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.admitLocked()
	return b.table.Hseq(), b.table.NumRows()
}

// Append adds a batch of user columns, stamping every tuple with the
// current clock time. It wakes the append listeners.
func (b *Basket) Append(cols []*vector.Vector) error {
	b.mu.Lock()
	b.admitLocked() // staged tuples arrived earlier; keep FIFO
	err := b.stampedAppendLocked(cols, b.clock.Now())
	b.mu.Unlock()
	if err != nil {
		return err
	}
	b.notify()
	return nil
}

// LockedAppend is Append for a caller that already holds Lock — retained
// for callers that append to several baskets under their locks at once.
// The caller fires NotifyAppend after unlocking. (The engine's sharded
// fan-out now stages through a Feed instead.)
func (b *Basket) LockedAppend(cols []*vector.Vector) error {
	return b.stampedAppendLocked(cols, b.clock.Now())
}

// stampedAppendLocked is the append core: stamp every tuple with the given
// arrival time, append, and shed over capacity. Caller holds mu.
func (b *Basket) stampedAppendLocked(cols []*vector.Vector, now int64) error {
	if len(cols) != b.UserWidth() {
		return fmt.Errorf("basket %s: expected %d columns, got %d", b.name, b.UserWidth(), len(cols))
	}
	n := 0
	if len(cols) > 0 {
		n = cols[0].Len()
	}
	ts := vector.NewWithCap(vector.Timestamp, n)
	for i := 0; i < n; i++ {
		ts.AppendInt(now)
	}
	full := append(append([]*vector.Vector(nil), cols...), ts)
	err := b.table.AppendBatch(full)
	if err == nil && b.capacity > 0 {
		if over := b.table.NumRows() - b.capacity; over > 0 {
			// Shed the oldest tuples and release any shared readers still
			// pointing at them.
			b.table.DropPrefix(over)
			b.shed += int64(over)
			hseq := b.table.Hseq()
			for id, mark := range b.readers {
				if mark < hseq {
					b.readers[id] = hseq
				}
			}
		}
	}
	return err
}

// SetChunkTarget overrides the storage layer's chunk sealing threshold
// (tests and tuning).
func (b *Basket) SetChunkTarget(n int) {
	b.mu.Lock()
	b.table.SetChunkTarget(n)
	b.mu.Unlock()
}

// SetCapacity bounds the basket to n tuples (0 disables shedding).
func (b *Basket) SetCapacity(n int) {
	b.mu.Lock()
	b.capacity = n
	b.mu.Unlock()
}

// Shed returns the number of tuples dropped by load shedding.
func (b *Basket) Shed() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.shed
}

// AppendRows adds user-column rows one batch at a time.
func (b *Basket) AppendRows(rows [][]vector.Value) error {
	if len(rows) == 0 {
		return nil
	}
	cols := make([]*vector.Vector, b.UserWidth())
	for i := 0; i < b.UserWidth(); i++ {
		cols[i] = vector.NewWithCap(b.schema.Columns[i].Type, len(rows))
	}
	for _, row := range rows {
		if len(row) != b.UserWidth() {
			return fmt.Errorf("basket %s: row has %d values, want %d", b.name, len(row), b.UserWidth())
		}
		for i, v := range row {
			cols[i].AppendValue(v)
		}
	}
	return b.Append(cols)
}

// AppendRelation appends the user columns of a relation whose schema
// matches the basket's user schema (a trailing ts column, if present, is
// replaced with fresh timestamps).
func (b *Basket) AppendRelation(r *storage.Relation) error {
	cols := r.Cols
	if len(cols) == b.schema.Len() {
		cols = cols[:b.UserWidth()]
	}
	return b.Append(cols)
}

// Snapshot implements catalog.Source.
func (b *Basket) Snapshot() bat.View {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.admitLocked()
	return b.table.Snapshot()
}

// SnapshotAt returns the chunked view, the head OID, and the length of
// the current content in one consistent view.
func (b *Basket) SnapshotAt() (view bat.View, hseq bat.OID, n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.admitLocked()
	return b.table.Snapshot(), b.table.Hseq(), b.table.NumRows()
}

// Stats reports the physical layout of the basket: resident chunk count,
// live (retained) tuples, cumulative tuples consumed from the front, and
// the subset of those evicted by load shedding.
func (b *Basket) Stats() (chunks, resident int, dropped, shed int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.admitLocked()
	chunks, resident, dropped = b.table.Stats()
	return chunks, resident, dropped, b.shed
}

// Lock acquires the basket exclusively — the paper's basket.lock() used by
// factories around their processing step. Staged feed batches are admitted
// on entry, so a locked reader always sees everything that has arrived.
func (b *Basket) Lock() {
	b.mu.Lock()
	b.admitLocked()
}

// Unlock releases the basket.
func (b *Basket) Unlock() { b.mu.Unlock() }

// LockedSnapshot returns the current chunked view and length; the caller
// must hold Lock.
func (b *Basket) LockedSnapshot() (view bat.View, n int) {
	return b.table.Snapshot(), b.table.NumRows()
}

// LockedHseq returns the OID of the oldest buffered tuple; the caller must
// hold Lock.
func (b *Basket) LockedHseq() bat.OID { return b.table.Hseq() }

// LockedRemove removes the tuples at the given sorted snapshot positions;
// the caller must hold Lock. This is the basket-expression side effect in
// owned mode.
func (b *Basket) LockedRemove(pos []int) { b.table.Remove(pos) }

// LockedDropPrefix removes the first n tuples; the caller must hold Lock.
func (b *Basket) LockedDropPrefix(n int) { b.table.DropPrefix(n) }

// LockedAppendRelation appends result tuples while the caller holds Lock
// (used by factories writing their output baskets). Fresh timestamps are
// assigned; the scheduler hook fires when the caller unlocks via
// NotifyAppend.
func (b *Basket) LockedAppendRelation(r *storage.Relation) error {
	cols := r.Cols
	if len(cols) == b.schema.Len() {
		cols = cols[:b.UserWidth()]
	}
	if len(cols) != b.UserWidth() {
		return fmt.Errorf("basket %s: relation has %d columns, want %d", b.name, len(cols), b.UserWidth())
	}
	n := 0
	if len(cols) > 0 {
		n = cols[0].Len()
	}
	ts := vector.NewWithCap(vector.Timestamp, n)
	now := b.clock.Now()
	for i := 0; i < n; i++ {
		ts.AppendInt(now)
	}
	full := append(append([]*vector.Vector(nil), cols...), ts)
	return b.table.AppendBatch(full)
}

// NotifyAppend invokes the append listeners; factories call it after
// unlocking an output basket they appended to, and the ingest fan-out
// calls it after publishing to a feed.
func (b *Basket) NotifyAppend() {
	b.notify()
}

// --- shared-baskets mode -------------------------------------------------

// RegisterReader adds a shared-mode reader starting at the current oldest
// tuple. Tuples are retained until every registered reader has marked them
// seen.
func (b *Basket) RegisterReader(id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.readers[id]; !dup {
		b.readers[id] = b.table.Hseq()
	}
}

// UnregisterReader removes a reader; retained tuples it was blocking are
// freed on the next mark.
func (b *Basket) UnregisterReader(id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.readers, id)
	b.compactLocked()
}

// UnseenLocked returns the snapshot offset of the first tuple reader id
// has not seen, plus the current length; the caller must hold Lock.
func (b *Basket) UnseenLocked(id string) (offset, n int) {
	mark, ok := b.readers[id]
	hseq := b.table.Hseq()
	n = b.table.NumRows()
	if !ok || mark < hseq {
		mark = hseq
	}
	offset = int(mark - hseq)
	if offset > n {
		offset = n
	}
	return offset, n
}

// LockedSetMark records that reader id has seen everything below oid and
// compacts the prefix all readers have seen; the caller must hold Lock.
func (b *Basket) LockedSetMark(id string, oid bat.OID) {
	b.readers[id] = oid
	b.compactLocked()
}

// compactLocked drops the prefix every reader has seen.
func (b *Basket) compactLocked() {
	if len(b.readers) == 0 {
		return
	}
	hseq := b.table.Hseq()
	min := hseq + bat.OID(b.table.NumRows())
	for _, m := range b.readers {
		if m < min {
			min = m
		}
	}
	if d := int(min - hseq); d > 0 {
		b.table.DropPrefix(d)
	}
}

// Readers returns the number of registered shared-mode readers.
func (b *Basket) Readers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.readers)
}

// --- durability ----------------------------------------------------------

// CaptureState returns a serializable image of the basket: a deep copy
// of every resident column (including the implicit ts column) plus each
// shared reader's mark relative to the content start. Part of the
// checkpoint cut — the engine holds its consistency gate while calling.
func (b *Basket) CaptureState() (cols []vector.Wire, marks map[string]int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.admitLocked() // staged arrivals are part of the cut
	view := b.table.Snapshot()
	cols = make([]vector.Wire, view.NumCols())
	for i := range cols {
		cols[i] = view.Column(i).Wire()
	}
	hseq := b.table.Hseq()
	n := int64(b.table.NumRows())
	marks = make(map[string]int64, len(b.readers))
	for id, mark := range b.readers {
		rel := int64(mark - hseq)
		marks[id] = min(max(rel, 0), n)
	}
	return cols, marks
}

// RestoreState loads a captured image into an empty basket. Timestamps
// are restored verbatim (the image includes the ts column); reader
// marks are re-applied for readers already registered — a mark for an
// unknown reader is dropped, since an unregistered reader holds no
// retention claim.
func (b *Basket) RestoreState(cols []vector.Wire, marks map[string]int64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.table.NumRows() != 0 {
		return fmt.Errorf("basket %s: restore into non-empty basket", b.name)
	}
	if len(cols) != b.schema.Len() {
		return fmt.Errorf("basket %s: restore image has %d columns, want %d", b.name, len(cols), b.schema.Len())
	}
	if err := b.table.AppendBatch(vector.ColumnsFromWire(cols)); err != nil {
		return err
	}
	hseq := b.table.Hseq()
	for id := range b.readers {
		if rel, ok := marks[id]; ok {
			b.readers[id] = hseq + bat.OID(rel)
		}
	}
	return nil
}
