package datacell

import (
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/basket"
	"repro/internal/catalog"
	"repro/internal/factory"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/scheduler"
	"repro/internal/storage"
)

// traceRingDepth is K in "last-K firings per query" (SHOW TRACE).
const traceRingDepth = 32

// e2eSampleEvery is N in "stamp ~1/N result batches" for the end-to-end
// tuple-latency histogram: every Nth non-empty result batch of a
// subscribed query carries a latency stamp from ingest to delivery.
const e2eSampleEvery = 64

// engineObs is the engine's metrics surface: the registry behind
// /metrics, the direct hot-path instruments, and the scrape-time
// collectors that walk live engine state. Nil when Config.DisableMetrics
// is set — every hot-path site guards with `if e.obs != nil`.
type engineObs struct {
	reg *obs.Registry

	// Hot-path instruments (direct atomic updates).
	ingestBatches *obs.Counter
	ingestTuples  *obs.Counter
	walCommitNS   *obs.Histogram
	walFsyncNS    *obs.Histogram
	walFsyncs     *obs.Counter
	checkpoints   *obs.Counter
	checkpointNS  *obs.Histogram

	// Per-stage pipeline latency: firing duration and wake→run queue
	// delay, labeled by stage (fire = shard factory, merge = merge
	// transition, deliver = subscription emitter).
	fireNS  map[string]*obs.Histogram
	queueNS map[string]*obs.Histogram

	// Sampled subscriber-delivery and end-to-end tuple latency.
	deliveryNS *obs.Histogram
	e2eNS      *obs.Histogram

	// Shared-scan routing (routed strategy): batches routed, member
	// queries matched vs. skipped by the predicate index, and shared
	// subplan evaluations (one per matched plan group per batch).
	routeBatches *obs.Counter
	routeMatched *obs.Counter
	routeSkipped *obs.Counter
	routeEvals   *obs.Counter
}

const (
	stageFire    = "fire"
	stageMerge   = "merge"
	stageDeliver = "deliver"
)

// newEngineObs builds the registry, the direct instruments, and the
// collectors closing over e. The collectors read live engine state
// (scheduler counters, basket depths, query stats, WAL posture) only
// when /metrics is scraped.
func newEngineObs(e *Engine) *engineObs {
	reg := obs.NewRegistry()
	o := &engineObs{
		reg:           reg,
		ingestBatches: reg.Counter("dc_ingest_batches_total", "Ingest batches accepted across all streams.", nil),
		ingestTuples:  reg.Counter("dc_ingest_tuples_total", "Tuples accepted across all streams.", nil),
		walCommitNS:   reg.Histogram("dc_wal_commit_ns", "Ingest group-commit wait (WAL append to durable ack), ns.", nil),
		walFsyncNS:    reg.Histogram("dc_wal_fsync_ns", "Physical WAL fsync duration, ns.", nil),
		walFsyncs:     reg.Counter("dc_wal_fsync_rounds_total", "Physical fsync rounds (group commits).", nil),
		checkpoints:   reg.Counter("dc_checkpoint_total", "Completed operator-state checkpoints.", nil),
		checkpointNS:  reg.Histogram("dc_checkpoint_ns", "Checkpoint capture-to-install duration, ns.", nil),
		deliveryNS:    reg.Histogram("dc_delivery_latency_ns", "Subscriber delivery latency (result emission to channel handoff), sampled, ns.", nil),
		e2eNS:         reg.Histogram("dc_e2e_latency_ns", "End-to-end tuple latency (ingest to subscriber delivery), sampled, ns.", nil),
		fireNS:        map[string]*obs.Histogram{},
		queueNS:       map[string]*obs.Histogram{},
		routeBatches:  reg.Counter("dc_route_batches_total", "Batches pushed through shared-scan predicate routing.", nil),
		routeMatched:  reg.Counter("dc_route_matched_queries_total", "Per-batch routed-query matches (query received the batch).", nil),
		routeSkipped:  reg.Counter("dc_route_skipped_queries_total", "Per-batch routed-query skips (predicate index proved no match).", nil),
		routeEvals:    reg.Counter("dc_route_shared_evals_total", "Shared subplan evaluations (one per matched plan group per batch).", nil),
	}
	for _, st := range []string{stageFire, stageMerge, stageDeliver} {
		o.fireNS[st] = reg.Histogram("dc_stage_fire_ns", "Transition firing duration by pipeline stage, ns.", obs.Labels{"stage": st})
		o.queueNS[st] = reg.Histogram("dc_stage_queue_ns", "Wake-to-execution queue delay by pipeline stage, ns.", obs.Labels{"stage": st})
	}

	reg.CollectCounter("dc_scheduler_fired_total", "Total transition firings.", func() []obs.Sample {
		return []obs.Sample{{Value: float64(e.sched.Fired())}}
	})
	reg.CollectCounter("dc_scheduler_claim_misses_total", "Transitions dequeued while not ready.", func() []obs.Sample {
		return []obs.Sample{{Value: float64(e.sched.Stats().ClaimMisses)}}
	})
	reg.CollectCounter("dc_scheduler_coalesced_wakes_total", "Wakes absorbed by queued/running transitions.", func() []obs.Sample {
		return []obs.Sample{{Value: float64(e.sched.Stats().CoalescedWakes)}}
	})
	reg.CollectCounter("dc_worker_busy_ns_total", "Per-worker time spent firing transitions, ns.", func() []obs.Sample {
		var out []obs.Sample
		for i, w := range e.sched.Stats().Workers {
			out = append(out, obs.Sample{Labels: obs.Labels{"worker": fmt.Sprint(i)}, Value: float64(w.BusyNS)})
		}
		return out
	})
	reg.CollectCounter("dc_worker_idle_ns_total", "Per-worker time spent parked, ns.", func() []obs.Sample {
		var out []obs.Sample
		for i, w := range e.sched.Stats().Workers {
			out = append(out, obs.Sample{Labels: obs.Labels{"worker": fmt.Sprint(i)}, Value: float64(w.IdleNS)})
		}
		return out
	})

	reg.CollectCounter("dc_stream_ingested_total", "Tuples routed into each stream.", func() []obs.Sample {
		var out []obs.Sample
		e.mu.Lock()
		for _, s := range e.streams {
			out = append(out, obs.Sample{Labels: obs.Labels{"stream": s.name}, Value: float64(s.ingested)})
		}
		e.mu.Unlock()
		return out
	})
	reg.CollectGauge("dc_stream_backlog", "Unconsumed tuples in each stream's primary basket.", func() []obs.Sample {
		type pair struct {
			name string
			b    *basket.Basket
		}
		e.mu.Lock()
		pairs := make([]pair, 0, len(e.streams))
		for _, s := range e.streams {
			pairs = append(pairs, pair{s.name, s.primary})
		}
		e.mu.Unlock()
		out := make([]obs.Sample, 0, len(pairs))
		for _, p := range pairs {
			out = append(out, obs.Sample{Labels: obs.Labels{"stream": p.name}, Value: float64(p.b.Len())})
		}
		return out
	})

	// Basket physical depths, the metric twin of SHOW BASKETS: shard
	// baskets and pipeline tails appear with their shard index.
	reg.CollectGauge("dc_basket_tuples", "Resident tuples per basket (shard baskets and tails included).", func() []obs.Sample {
		return basketSamples(e, func(resident int, dropped, shed int64, pending int) float64 {
			return float64(resident + pending)
		})
	})
	reg.CollectCounter("dc_basket_dropped_total", "Tuples consumed or dropped per basket.", func() []obs.Sample {
		return basketSamples(e, func(resident int, dropped, shed int64, pending int) float64 {
			return float64(dropped)
		})
	})
	reg.CollectCounter("dc_basket_shed_total", "Tuples shed under overload per basket.", func() []obs.Sample {
		return basketSamples(e, func(resident int, dropped, shed int64, pending int) float64 {
			return float64(shed)
		})
	})

	queryGauge := func(name, help string, fn func(q *Query) float64) {
		reg.CollectGauge(name, help, func() []obs.Sample {
			var out []obs.Sample
			for _, q := range e.Queries() {
				out = append(out, obs.Sample{Labels: obs.Labels{"query": q.Name}, Value: fn(q)})
			}
			return out
		})
	}
	queryCounter := func(name, help string, fn func(q *Query) float64) {
		reg.CollectCounter(name, help, func() []obs.Sample {
			var out []obs.Sample
			for _, q := range e.Queries() {
				out = append(out, obs.Sample{Labels: obs.Labels{"query": q.Name}, Value: fn(q)})
			}
			return out
		})
	}
	queryCounter("dc_query_firings_total", "Factory firings per query (summed across shard pipelines).", func(q *Query) float64 {
		return float64(q.Stats().Firings)
	})
	queryCounter("dc_query_tuples_in_total", "Tuples consumed per query.", func(q *Query) float64 {
		return float64(q.Stats().TuplesIn)
	})
	queryCounter("dc_query_tuples_out_total", "Result tuples produced per query.", func(q *Query) float64 {
		return float64(q.Stats().TuplesOut)
	})
	queryCounter("dc_query_late_tuples_total", "Tuples dropped as too late per query.", func(q *Query) float64 {
		return float64(q.Stats().Late)
	})
	queryCounter("dc_query_delivered_total", "Result tuples delivered to the query's subscriber.", func(q *Query) float64 {
		if q.sub == nil {
			return 0
		}
		return float64(q.sub.em.Delivered())
	})
	queryGauge("dc_query_merge_lag", "Shard emissions not yet merged into the output basket.", func(q *Query) float64 {
		return float64(q.MergeLag())
	})
	queryGauge("dc_query_join_state", "Rows retained by the query's streaming join state.", func(q *Query) float64 {
		return float64(q.Stats().JoinState)
	})
	queryGauge("dc_query_watermark_lag_ns", "Engine-clock distance behind the query's event-time watermark, ns (-1 when unwindowed).", func(q *Query) float64 {
		wm, ok := q.Watermark()
		if !ok {
			return -1
		}
		return float64(e.clock.Now() - wm)
	})
	queryGauge("dc_query_backlog", "Unconsumed tuples in the query's output basket.", func(q *Query) float64 {
		return float64(q.out.Len())
	})

	reg.CollectGauge("dc_wal_segments", "Live WAL segments (0 when not durable).", func() []obs.Sample {
		return []obs.Sample{{Value: float64(e.dur.snapshot().wal.Segments)}}
	})
	reg.CollectGauge("dc_wal_bytes", "Total bytes across WAL segments.", func() []obs.Sample {
		return []obs.Sample{{Value: float64(e.dur.snapshot().wal.Bytes)}}
	})
	reg.CollectGauge("dc_wal_last_seq", "Last appended WAL sequence number.", func() []obs.Sample {
		return []obs.Sample{{Value: float64(e.dur.snapshot().wal.LastSeq)}}
	})
	reg.CollectGauge("dc_wal_synced_seq", "Last WAL sequence known durable.", func() []obs.Sample {
		return []obs.Sample{{Value: float64(e.dur.snapshot().wal.SyncedSeq)}}
	})
	reg.CollectGauge("dc_replay_lag", "WAL records a crash right now would replay.", func() []obs.Sample {
		return []obs.Sample{{Value: float64(e.dur.snapshot().replayLag())}}
	})
	reg.CollectGauge("dc_last_checkpoint_unix_ns", "Wall-clock time of the newest checkpoint (0 when none).", func() []obs.Sample {
		t := e.dur.snapshot().ckptTime
		if t.IsZero() {
			return []obs.Sample{{Value: 0}}
		}
		return []obs.Sample{{Value: float64(t.UnixNano())}}
	})
	return o
}

// basketSamples walks the catalog like SHOW BASKETS and projects one
// value per basket/tail via pick(resident, dropped, shed, pending).
func basketSamples(e *Engine, pick func(resident int, dropped, shed int64, pending int) float64) []obs.Sample {
	var out []obs.Sample
	for _, name := range e.cat.Names() {
		entry, err := e.cat.Lookup(name)
		if err != nil || entry.Kind != catalog.KindBasket {
			continue
		}
		labels := obs.Labels{"basket": entry.Name}
		if entry.Shard >= 0 {
			labels["shard"] = fmt.Sprint(entry.Shard)
		}
		switch src := entry.Source.(type) {
		case *basket.Basket:
			_, resident, dropped, shed := src.Stats()
			out = append(out, obs.Sample{Labels: labels, Value: pick(resident, dropped, shed, 0)})
		case *partition.Tail:
			out = append(out, obs.Sample{Labels: labels, Value: pick(0, src.Drained(), 0, src.Pending())})
		}
	}
	return out
}

// observeStage arms the scheduler observer of one pipeline-stage handle:
// every firing lands in the per-stage duration/queue-delay histograms
// and (via tuples, which reports the in/out moved by the firing) in the
// query's bounded trace ring.
func (e *Engine) observeStage(q *Query, h *scheduler.Handle, stage, name string, tuples func() (int64, int64)) {
	o := e.obs
	if o == nil {
		return
	}
	fireH, queueH := o.fireNS[stage], o.queueNS[stage]
	clock := e.clock
	ring := q.trace
	h.Observe(func(queueNS, fireNS int64, err error) {
		fireH.Observe(fireNS)
		if queueNS > 0 {
			queueH.Observe(queueNS)
		}
		var in, out int64
		if tuples != nil {
			in, out = tuples()
		}
		ev := obs.TraceEvent{
			Stage:      stage,
			Transition: name,
			Start:      clock.Now() - fireNS,
			QueueNS:    queueNS,
			FireNS:     fireNS,
			TuplesIn:   in,
			TuplesOut:  out,
		}
		if err != nil {
			ev.Err = err.Error()
		}
		ring.Add(ev)
	})
}

// factoryDelta returns a closure reporting the tuples a firing moved:
// the difference of the factory's cumulative counters since the last
// call. A transition fires on one worker at a time (the claim state
// machine guarantees it), so the closure state needs no lock.
func factoryDelta(f *factory.Factory) func() (int64, int64) {
	var lastIn, lastOut int64
	return func() (int64, int64) {
		st := f.Stats()
		in, out := st.TuplesIn-lastIn, st.TuplesOut-lastOut
		lastIn, lastOut = st.TuplesIn, st.TuplesOut
		return in, out
	}
}

// counterDelta adapts a single cumulative counter (merged rows,
// delivered rows) the same way; the count appears as both in and out.
func counterDelta(read func() int64) func() (int64, int64) {
	var last int64
	return func() (int64, int64) {
		v := read()
		d := v - last
		last = v
		return d, d
	}
}

// armQueryObservers instruments one query's pipeline at install time:
// per-stage scheduler observers feeding the histograms and the trace
// ring, plus — when the query has a subscription — delivery/e2e latency
// sampling via the factory result hook and the emitter.
func (e *Engine) armQueryObservers(q *Query) {
	if e.obs == nil {
		return
	}
	q.trace = obs.NewTraceRing(traceRingDepth)
	if q.sub != nil {
		em := q.sub.em
		em.SetLatencyObserver(e.clock.Now, func(deliveryNS, e2eNS int64, rows int) {
			e.obs.deliveryNS.Observe(deliveryNS)
			if e2eNS >= 0 {
				e.obs.e2eNS.Observe(e2eNS)
			}
		})
		var sampleCounter atomic.Int64
		stamp := func(rel *storage.Relation, maxInputTS int64) {
			if sampleCounter.Add(1)%e2eSampleEvery == 1 {
				em.StampE2E(maxInputTS)
			}
		}
		for _, f := range q.facts {
			f.SetResultHook(stamp)
		}
	}
}

// metricsHealth is the /healthz probe: healthy unless the engine
// stopped or a transition reported an unrecovered error.
func (e *Engine) metricsHealth() error {
	e.mu.Lock()
	stopped := e.state == stateStopped
	e.mu.Unlock()
	if stopped {
		return ErrEngineStopped
	}
	return nil
}

// MetricsHandler returns the engine's observability HTTP handler
// (/metrics, /healthz, /debug/pprof/), or nil when metrics are disabled.
// Server front ends mount it on their own listeners.
func (e *Engine) MetricsHandler() http.Handler {
	if e.obs == nil {
		return nil
	}
	return obs.Handler(e.obs.reg, e.metricsHealth)
}

// MetricsAddr returns the bound address of the metrics endpoint, or ""
// when Config.MetricsAddr was empty. Useful with a ":0" listen address.
func (e *Engine) MetricsAddr() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.metricsLn == nil {
		return ""
	}
	return e.metricsLn.Addr().String()
}

// startMetricsServer binds Config.MetricsAddr and serves the handler
// until Stop. Called by Open.
func (e *Engine) startMetricsServer(addr string) error {
	h := e.MetricsHandler()
	if h == nil {
		return fmt.Errorf("datacell: MetricsAddr set but metrics are disabled")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("datacell: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	e.mu.Lock()
	e.metricsLn = ln
	e.metricsSrv = srv
	e.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return nil
}

// stopMetricsServer closes the metrics endpoint; idempotent.
func (e *Engine) stopMetricsServer() {
	e.mu.Lock()
	srv := e.metricsSrv
	e.metricsSrv = nil
	e.metricsLn = nil
	e.mu.Unlock()
	if srv != nil {
		_ = srv.Close()
	}
}
