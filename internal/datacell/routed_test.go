package datacell

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/storage"
)

// rowsOf flattens the delivered relations of a query into sortable
// "a|b" strings (both projected columns are INTs in these tests; the
// implicit ts column is never projected, so routed and separate paths
// are comparable byte-for-byte).
func rowsOf(t *testing.T, rels []*storage.Relation) []string {
	t.Helper()
	var out []string
	for _, r := range rels {
		for i := 0; i < r.NumRows(); i++ {
			row := r.Row(i)
			s := ""
			for j, v := range row {
				if j > 0 {
					s += "|"
				}
				s += fmt.Sprint(v.I)
			}
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// TestRoutedMatchesSeparate is the flat-vs-shared equality property: N
// queries attached to one routed scan must produce exactly the result
// sets of N independent separate-strategy replicas.
func TestRoutedMatchesSeparate(t *testing.T) {
	e, _ := newEngine(t)
	const nq = 8
	var routed, flat []*Query
	for i := 0; i < nq; i++ {
		var text string
		switch i % 3 {
		case 0: // equality, selective
			text = fmt.Sprintf("SELECT S.a, S.b FROM [SELECT * FROM R] AS S WHERE S.a = %d", i*10)
		case 1: // range
			text = fmt.Sprintf("SELECT S.a, S.b FROM [SELECT * FROM R] AS S WHERE S.a > %d AND S.a <= %d", i*5, i*5+20)
		default: // residual (always-match)
			text = "SELECT S.a, S.b FROM [SELECT * FROM R] AS S"
		}
		rq, err := e.RegisterContinuous(fmt.Sprintf("rq%d", i), text, WithStrategy(RoutedScan))
		if err != nil {
			t.Fatal(err)
		}
		if rq.Strategy != RoutedScan {
			t.Fatalf("rq%d: strategy = %s, want routed", i, rq.Strategy)
		}
		fq, err := e.RegisterContinuous(fmt.Sprintf("fq%d", i), text, WithStrategy(SeparateBaskets))
		if err != nil {
			t.Fatal(err)
		}
		routed, flat = append(routed, rq), append(flat, fq)
	}
	var pairs [][2]int64
	for v := int64(0); v < 120; v++ {
		pairs = append(pairs, [2]int64{v % 60, v})
	}
	ingestPairs(t, e, "R", pairs)
	ingestPairs(t, e, "R", [][2]int64{{10, 1000}, {10, 1001}, {59, 1002}})
	e.Drain()
	for i := range routed {
		got := rowsOf(t, collect(routed[i]))
		want := rowsOf(t, collect(flat[i]))
		if len(got) != len(want) {
			t.Fatalf("q%d: routed %d rows, separate %d rows", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("q%d row %d: routed %q, separate %q", i, j, got[j], want[j])
			}
		}
	}
	// Per-query stats must stay correct under sharing: every routed query
	// saw every batch (TuplesIn) but only matching tuples came out.
	st := routed[0].Stats() // WHERE S.a = 0
	if st.TuplesIn != 123 {
		t.Errorf("rq0 TuplesIn = %d, want 123", st.TuplesIn)
	}
	if st.TuplesOut != 2 { // a=0 occurs for v=0 and v=60
		t.Errorf("rq0 TuplesOut = %d, want 2", st.TuplesOut)
	}
}

// TestRoutedSkipsNonMatching checks the predicate index actually short-
// circuits: a batch that cannot match an equality query's bucket must
// not evaluate that query's plan.
func TestRoutedSkipsNonMatching(t *testing.T) {
	e, _ := newEngine(t)
	hit, err := e.RegisterContinuous("hit",
		"SELECT S.a FROM [SELECT * FROM R] AS S WHERE S.a = 1", WithStrategy(RoutedScan))
	if err != nil {
		t.Fatal(err)
	}
	miss, err := e.RegisterContinuous("miss",
		"SELECT S.a FROM [SELECT * FROM R] AS S WHERE S.a = 999", WithStrategy(RoutedScan))
	if err != nil {
		t.Fatal(err)
	}
	if hit.routed.scan != miss.routed.scan {
		t.Fatal("queries on one stream should share one scan")
	}
	// Flush the pending overlay so the second batch routes precisely.
	ingestPairs(t, e, "R", [][2]int64{{5, 0}})
	e.Drain()
	base := miss.Stats().Firings
	ingestPairs(t, e, "R", [][2]int64{{1, 1}, {2, 2}})
	e.Drain()
	if got := miss.Stats().Firings - base; got != 0 {
		t.Errorf("miss fired %d times on a non-matching batch", got)
	}
	if got := hit.Stats().TuplesOut; got != 1 {
		t.Errorf("hit TuplesOut = %d, want 1", got)
	}
	if hit.routed.group == miss.routed.group {
		t.Error("different predicates must not share a plan group")
	}
}

// TestRoutedSharedGroupEvaluatesOnce: identical plans land in one group
// with a single evaluation per batch fanned out to both members.
func TestRoutedSharedGroupEvaluatesOnce(t *testing.T) {
	e, _ := newEngine(t)
	const text = "SELECT S.a, S.b FROM [SELECT * FROM R] AS S WHERE S.a > 3"
	q1, err := e.RegisterContinuous("g1", text, WithStrategy(RoutedScan))
	if err != nil {
		t.Fatal(err)
	}
	q2, err := e.RegisterContinuous("g2", text, WithStrategy(RoutedScan))
	if err != nil {
		t.Fatal(err)
	}
	if q1.routed.group != q2.routed.group {
		t.Fatal("identical plans should share one group")
	}
	ingestPairs(t, e, "R", [][2]int64{{1, 1}, {5, 2}, {7, 3}})
	e.Drain()
	if got := q1.routed.group.evals.Load(); got != 1 {
		t.Errorf("group evals = %d, want 1", got)
	}
	for _, q := range []*Query{q1, q2} {
		if rows := countRows(collect(q)); rows != 2 {
			t.Errorf("%s: %d rows, want 2", q.Name, rows)
		}
	}
}

// TestRoutedFallback: shapes the shared scan cannot serve (windows here)
// must degrade to the shared-basket arrangement, not fail.
func TestRoutedFallback(t *testing.T) {
	e, _ := newEngine(t)
	q, err := e.RegisterContinuous("w",
		"SELECT SUM(S.b) AS total FROM [SELECT * FROM R] AS S WINDOW ROWS 2 SLIDE 2",
		WithStrategy(RoutedScan))
	if err != nil {
		t.Fatal(err)
	}
	if q.routed != nil || q.Strategy == RoutedScan {
		t.Fatalf("windowed query must fall back, got strategy %s", q.Strategy)
	}
	ingestPairs(t, e, "R", [][2]int64{{1, 10}, {2, 20}})
	e.Drain()
	if rows := countRows(collect(q)); rows != 1 {
		t.Errorf("fallback query produced %d rows, want 1", rows)
	}
}

// TestRoutedWithLaggingSharedReader: when another shared reader on the
// primary basket retains a prefix the routed scan has already consumed
// (here a SharedBaskets query whose firing threshold keeps it from
// draining), UnseenLocked reports a non-zero offset and the scan must
// deliver exactly the unseen suffix — not re-deliver the retained prefix
// or overshoot the arrival watermark and silently drop later arrivals.
func TestRoutedWithLaggingSharedReader(t *testing.T) {
	e, _ := newEngine(t)
	rq, err := e.RegisterContinuous("rq",
		"SELECT S.a, S.b FROM [SELECT * FROM R] AS S", WithStrategy(RoutedScan))
	if err != nil {
		t.Fatal(err)
	}
	if rq.Strategy != RoutedScan {
		t.Fatalf("rq strategy = %s, want routed", rq.Strategy)
	}
	if _, err := e.RegisterContinuous("lag",
		"SELECT S.a, S.b FROM [SELECT * FROM R] AS S",
		WithStrategy(SharedBaskets), WithMinTuples(100)); err != nil {
		t.Fatal(err)
	}
	// One tuple per drained batch: from the second batch on, the lagging
	// reader's retained prefix makes the scan's offset grow every firing.
	const n = 5
	var want []string
	for v := int64(0); v < n; v++ {
		ingestPairs(t, e, "R", [][2]int64{{v, v * 10}})
		e.Drain()
		// Third field: the implicit arrival-ts column (manual clock, fixed).
		want = append(want, fmt.Sprintf("%d|%d|1000000", v, v*10))
	}
	got := rowsOf(t, collect(rq))
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("routed query got %d rows %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %q, want %q", i, got[i], want[i])
		}
	}
	if st := rq.Stats(); st.TuplesIn != n {
		t.Errorf("TuplesIn = %d, want %d", st.TuplesIn, n)
	}
}

// TestRoutedExplainAndShow: SHOW QUERIES and EXPLAIN ANALYZE must render
// per-query stats under sharing.
func TestRoutedExplainAndShow(t *testing.T) {
	e, _ := newEngine(t)
	if _, err := e.Exec(context.Background(),
		"CREATE CONTINUOUS QUERY cq WITH (strategy = routed) AS SELECT S.a FROM [SELECT * FROM R] AS S WHERE S.a = 2"); err != nil {
		t.Fatal(err)
	}
	ingestPairs(t, e, "R", [][2]int64{{2, 1}, {3, 2}})
	e.Drain()
	rel, err := e.Exec(context.Background(), "SHOW QUERIES")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := 0; i < rel.NumRows(); i++ {
		row := rel.Row(i)
		if row[0].S == "cq" {
			found = true
			if row[1].S != "routed" {
				t.Errorf("SHOW QUERIES strategy = %q, want routed", row[1].S)
			}
		}
	}
	if !found {
		t.Fatal("cq missing from SHOW QUERIES")
	}
	rel, err = e.Exec(context.Background(), "EXPLAIN ANALYZE cq")
	if err != nil {
		t.Fatal(err)
	}
	ops := map[string]bool{}
	for i := 0; i < rel.NumRows(); i++ {
		ops[rel.Row(i)[0].S] = true
	}
	for _, want := range []string{"query", "stream", "scan", "route", "plan", "output"} {
		if !ops[want] {
			t.Errorf("EXPLAIN ANALYZE missing %q row (got %v)", want, ops)
		}
	}
	if _, err := e.Exec(context.Background(), "DROP CONTINUOUS QUERY cq"); err != nil {
		t.Fatal(err)
	}
}

// TestRoutedChurnUnderIngest is the -race register/drop churn test: the
// predicate index and the scan's membership change continuously while
// ingest keeps firing the shared scan.
func TestRoutedChurnUnderIngest(t *testing.T) {
	e, _ := newEngine(t)
	if err := e.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer e.Stop(context.Background())
	// One stable member keeps the scan alive through the churn.
	stable, err := e.RegisterContinuous("stable",
		"SELECT S.a FROM [SELECT * FROM R] AS S WHERE S.a = 7", WithStrategy(RoutedScan))
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ingestPairs(t, e, "R", [][2]int64{{i % 16, i}, {7, i}})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			name := fmt.Sprintf("churn%d", i)
			text := fmt.Sprintf("SELECT S.a FROM [SELECT * FROM R] AS S WHERE S.a = %d", i%16)
			if i%5 == 4 { // exercise group sharing under churn too
				text = "SELECT S.a FROM [SELECT * FROM R] AS S WHERE S.a = 7"
			}
			q, err := e.RegisterContinuous(name, text, WithStrategy(RoutedScan))
			if err != nil {
				t.Error(err)
				return
			}
			if i%2 == 0 {
				collect(q)
			}
			if err := e.UnregisterContinuous(name); err != nil {
				t.Error(err)
				return
			}
		}
		close(stop)
	}()
	wg.Wait()
	// The churn may outpace the ingest goroutine entirely; a final
	// deterministic batch proves the scan survived the churn intact.
	ingestPairs(t, e, "R", [][2]int64{{7, -1}})
	e.Drain()
	if stable.Stats().TuplesOut == 0 {
		t.Error("stable query delivered nothing through the churn")
	}
	// Dropping the last member tears the scan down and a new registration
	// rebuilds it.
	if err := e.UnregisterContinuous("stable"); err != nil {
		t.Fatal(err)
	}
	q2, err := e.RegisterContinuous("rebuilt",
		"SELECT S.a FROM [SELECT * FROM R] AS S WHERE S.a = 3", WithStrategy(RoutedScan))
	if err != nil {
		t.Fatal(err)
	}
	ingestPairs(t, e, "R", [][2]int64{{3, 1}})
	e.Drain()
	if q2.Stats().TuplesOut != 1 {
		t.Errorf("rebuilt scan delivered %d tuples, want 1", q2.Stats().TuplesOut)
	}
}
