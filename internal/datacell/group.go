package datacell

import (
	"fmt"
)

// GroupMember is one query of a shared-factory filter group: its residual
// predicate runs over the tuples the group's common filter admitted.
type GroupMember struct {
	Name string
	// Residual is a boolean SQL expression over the group's intermediate
	// tuples, referencing columns as x.<col> (e.g. "x.v < 10"). Empty
	// means "everything the common filter admits".
	Residual string
}

// FilterGroup is a registered shared-factory group (§3.2: "queries
// requiring similar ranges in selection operators can be supported by
// shared factories that give output to more than one query's factories").
type FilterGroup struct {
	Name    string
	Common  *Query
	Members []*Query
}

// RegisterFilterGroup splits N similar queries into a shared common
// factory plus per-query residual factories: the common predicate is
// evaluated once per tuple, its qualifying tuples land in an intermediate
// basket, and every member reads that basket under the shared-baskets
// discipline. This is the paper's query-plan-splitting direction — an
// auxiliary factory covering the overlapping requirement.
func (e *Engine) RegisterFilterGroup(name, streamName, common string, members []GroupMember) (*FilterGroup, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("datacell: filter group needs members")
	}
	if common == "" {
		return nil, fmt.Errorf("datacell: filter group needs a common predicate")
	}
	commonName := name + "_common"
	commonQuery := fmt.Sprintf(
		"SELECT * FROM [SELECT * FROM %s] AS x WHERE %s", streamName, common)
	cq, err := e.RegisterContinuous(commonName, commonQuery,
		WithStrategy(SharedBaskets), WithSQLPolling())
	if err != nil {
		return nil, err
	}
	g := &FilterGroup{Name: name, Common: cq}
	for _, m := range members {
		memberQuery := fmt.Sprintf("SELECT * FROM [SELECT * FROM %s_out] AS x", commonName)
		if m.Residual != "" {
			memberQuery += " WHERE " + m.Residual
		}
		q, err := e.RegisterContinuous(m.Name, memberQuery, WithStrategy(SharedBaskets))
		if err != nil {
			// Roll back what we registered so far.
			for _, reg := range g.Members {
				_ = e.UnregisterContinuous(reg.Name)
			}
			_ = e.UnregisterContinuous(commonName)
			return nil, err
		}
		g.Members = append(g.Members, q)
	}
	return g, nil
}
