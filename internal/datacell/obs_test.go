package datacell

// End-to-end coverage of the observability layer: the /metrics HTTP
// endpoint served from Config.MetricsAddr, EXPLAIN ANALYZE across the
// four query shapes, SHOW TRACE, metrics-disabled engines, and a race
// hammer over Stats()/SHOW during concurrent ingest.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/vector"
)

func intRows(vals ...int64) [][]vector.Value {
	rows := make([][]vector.Value, len(vals))
	for i, v := range vals {
		rows[i] = []vector.Value{vector.NewInt(v)}
	}
	return rows
}

// column returns the named column's values over all rows, as strings.
func column(t *testing.T, rel *storage.Relation, name string) []string {
	t.Helper()
	idx := rel.Schema.Index(name)
	if idx < 0 {
		t.Fatalf("relation has no column %q (schema %v)", name, rel.Schema)
	}
	out := make([]string, rel.NumRows())
	for i := range out {
		out[i] = rel.Cols[idx].Get(i).String()
	}
	return out
}

func TestMetricsEndpointServes(t *testing.T) {
	ctx := context.Background()
	eng, err := Open(ctx, Config{
		Clock:       metrics.NewManualClock(1_000_000),
		MetricsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop(ctx)
	addr := eng.MetricsAddr()
	if addr == "" {
		t.Fatal("MetricsAddr empty after Open with MetricsAddr set")
	}

	if _, err := eng.Exec(ctx, "CREATE BASKET s (a INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(ctx,
		"CREATE CONTINUOUS QUERY q AS SELECT * FROM [SELECT * FROM s] AS x WHERE x.a > 1"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Ingest(ctx, "s", intRows(1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	eng.Drain()

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"dc_ingest_tuples_total 4",
		"dc_ingest_batches_total 1",
		`dc_stream_ingested_total{stream="s"} 4`,
		`dc_query_firings_total{query="q"}`,
		`dc_stage_fire_ns_bucket{stage="fire",le="+Inf"}`,
		"dc_stage_fire_ns_count",
		"# TYPE dc_stage_fire_ns histogram",
		"# TYPE dc_ingest_tuples_total counter",
		"# TYPE dc_stream_backlog gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The firing stage must have recorded at least one observation.
	if strings.Contains(text, "dc_stage_fire_ns_count{stage=\"fire\"} 0\n") {
		t.Error("no fire-stage firings recorded")
	}

	resp, err = http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
}

func TestMetricsDisabled(t *testing.T) {
	ctx := context.Background()
	e := New(Config{Clock: metrics.NewManualClock(1), DisableMetrics: true})
	if e.MetricsHandler() != nil {
		t.Fatal("MetricsHandler non-nil with DisableMetrics")
	}
	if _, err := e.Exec(ctx, "CREATE BASKET s (a INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(ctx,
		"CREATE CONTINUOUS QUERY q AS SELECT * FROM [SELECT * FROM s] AS x"); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(ctx, "s", intRows(1, 2)); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	rel, err := e.Exec(ctx, "SHOW TRACE q")
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 0 {
		t.Fatalf("SHOW TRACE rows = %d on a metrics-disabled engine, want 0", rel.NumRows())
	}
	// EXPLAIN ANALYZE still works: topology and counters are not gated
	// on the metrics registry.
	if _, err := e.Exec(ctx, "EXPLAIN ANALYZE q"); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(ctx, Config{DisableMetrics: true, MetricsAddr: "127.0.0.1:0"}); err == nil {
		t.Fatal("Open with MetricsAddr + DisableMetrics did not fail")
	}
}

func TestShowTrace(t *testing.T) {
	ctx := context.Background()
	e := New(Config{Clock: metrics.NewManualClock(1_000_000)})
	if _, err := e.Exec(ctx, "CREATE BASKET s (a INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(ctx,
		"CREATE CONTINUOUS QUERY q AS SELECT * FROM [SELECT * FROM s] AS x"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := e.Ingest(ctx, "s", intRows(int64(i), int64(i+10))); err != nil {
			t.Fatal(err)
		}
		e.Drain()
	}
	rel, err := e.Exec(ctx, "SHOW TRACE q")
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() == 0 {
		t.Fatal("SHOW TRACE returned no events after firings")
	}
	stages := column(t, rel, "stage")
	joined := strings.Join(stages, ",")
	if !strings.Contains(joined, "fire") || !strings.Contains(joined, "deliver") {
		t.Fatalf("trace stages = %v, want fire and deliver events", stages)
	}
	// Sequence numbers must be strictly increasing (oldest first).
	seqs := column(t, rel, "seq")
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("trace seq not increasing: %v", seqs)
		}
	}
	// Fired tuples are accounted: at least one fire event moved tuples.
	in := column(t, rel, "tuples_in")
	movedTuples := false
	for i := range in {
		if stages[i] == "fire" && in[i] != "0" {
			movedTuples = true
		}
	}
	if !movedTuples {
		t.Fatalf("no fire event recorded tuples_in > 0: in=%v stages=%v", in, stages)
	}
	if _, err := e.Exec(ctx, "SHOW TRACE nosuch"); err == nil {
		t.Fatal("SHOW TRACE on unknown query did not fail")
	}
}

// explainOps runs EXPLAIN ANALYZE and returns the operator column.
func explainOps(t *testing.T, e *Engine, query string) ([]string, *storage.Relation) {
	t.Helper()
	rel, err := e.Exec(context.Background(), "EXPLAIN ANALYZE "+query)
	if err != nil {
		t.Fatal(err)
	}
	return column(t, rel, "operator"), rel
}

func TestExplainAnalyzeFlat(t *testing.T) {
	ctx := context.Background()
	e := New(Config{Clock: metrics.NewManualClock(1_000_000)})
	if _, err := e.Exec(ctx, "CREATE BASKET s (a INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(ctx,
		"CREATE CONTINUOUS QUERY q AS SELECT * FROM [SELECT * FROM s] AS x WHERE x.a > 10"); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(ctx, "s", intRows(5, 15, 25)); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	ops, rel := explainOps(t, e, "q")
	for _, want := range []string{"query", "stream", "factory", "plan", "output", "deliver"} {
		if !strings.Contains(strings.Join(ops, ","), want) {
			t.Errorf("EXPLAIN ANALYZE operators %v missing %q", ops, want)
		}
	}
	if strings.Contains(strings.Join(ops, ","), "merge") {
		t.Errorf("flat query shows a merge stage: %v", ops)
	}
	// The query row carries the cumulative counters.
	ins := column(t, rel, "tuples_in")
	outs := column(t, rel, "tuples_out")
	if ops[0] != "query" || ins[0] != "3" || outs[0] != "2" {
		t.Fatalf("query row = op %s in %s out %s, want query/3/2", ops[0], ins[0], outs[0])
	}
	if _, err := e.Exec(ctx, "EXPLAIN ANALYZE nosuch"); err == nil {
		t.Fatal("EXPLAIN ANALYZE on unknown query did not fail")
	}
}

func TestExplainAnalyzePartitioned(t *testing.T) {
	ctx := context.Background()
	e := New(Config{Clock: metrics.NewManualClock(1_000_000)})
	if _, err := e.Exec(ctx,
		"CREATE BASKET s (k INT, v INT) WITH (partitions = 4, partition_by = k)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(ctx,
		"CREATE CONTINUOUS QUERY q AS SELECT s.k AS k, SUM(s.v) AS total FROM [SELECT * FROM s] AS s GROUP BY s.k"); err != nil {
		t.Fatal(err)
	}
	rows := make([][]vector.Value, 0, 32)
	for i := int64(0); i < 32; i++ {
		rows = append(rows, []vector.Value{vector.NewInt(i % 8), vector.NewInt(i)})
	}
	if err := e.Ingest(ctx, "s", rows); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	ops, rel := explainOps(t, e, "q")
	joined := strings.Join(ops, ",")
	for _, want := range []string{"query", "factory", "merge", "tail", "output"} {
		if !strings.Contains(joined, want) {
			t.Errorf("partitioned EXPLAIN ANALYZE operators %v missing %q", ops, want)
		}
	}
	factories := 0
	for _, op := range ops {
		if op == "factory" {
			factories++
		}
	}
	if factories != 4 {
		t.Fatalf("factory rows = %d, want one per shard (4)", factories)
	}
	details := column(t, rel, "detail")
	if !strings.Contains(details[0], "partitioned") || !strings.Contains(details[0], "4 shards") {
		t.Fatalf("query detail = %q, want partitioned with 4 shards", details[0])
	}
}

func TestExplainAnalyzeWindowed(t *testing.T) {
	ctx := context.Background()
	clock := metrics.NewManualClock(1_000)
	e := New(Config{Clock: clock})
	if _, err := e.Exec(ctx, "CREATE BASKET s (a INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(ctx,
		"CREATE CONTINUOUS QUERY q AS SELECT COUNT(*) AS n FROM [SELECT * FROM s] AS x WINDOW RANGE 1000 SLIDE 1000"); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(ctx, "s", intRows(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	clock.Set(5_000)
	if err := e.Ingest(ctx, "s", intRows(4)); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	ops, rel := explainOps(t, e, "q")
	details := column(t, rel, "detail")
	if !strings.Contains(details[0], "windowed") {
		t.Fatalf("query detail = %q, want windowed shape", details[0])
	}
	watermarked := false
	for i, op := range ops {
		if op == "factory" && strings.Contains(details[i], "watermark=") {
			watermarked = true
		}
	}
	if !watermarked {
		t.Fatalf("no factory row carries a watermark: ops=%v details=%v", ops, details)
	}
}

func TestExplainAnalyzeJoin(t *testing.T) {
	ctx := context.Background()
	e := New(Config{Clock: metrics.NewManualClock(1_000_000)})
	for _, ddl := range []string{
		"CREATE BASKET l (k INT, v INT)",
		"CREATE BASKET r (k INT, w INT)",
	} {
		if _, err := e.Exec(ctx, ddl); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Exec(ctx,
		`CREATE CONTINUOUS QUERY j AS SELECT l.k AS k, l.v AS v, r.w AS w
		 FROM [SELECT * FROM l] AS l JOIN [SELECT * FROM r] AS r ON l.k = r.k`); err != nil {
		t.Fatal(err)
	}
	ingest2 := func(stream string, k, v int64) {
		if err := e.Ingest(ctx, stream,
			[][]vector.Value{{vector.NewInt(k), vector.NewInt(v)}}); err != nil {
			t.Fatal(err)
		}
	}
	ingest2("l", 1, 10)
	ingest2("r", 1, 20)
	e.Drain()
	ops, rel := explainOps(t, e, "j")
	details := column(t, rel, "detail")
	if !strings.Contains(details[0], "join") {
		t.Fatalf("query detail = %q, want join shape", details[0])
	}
	// Both source streams appear.
	streams := 0
	for _, op := range ops {
		if op == "stream" {
			streams++
		}
	}
	if streams != 2 {
		t.Fatalf("stream rows = %d, want 2 (both join sides)", streams)
	}
}

// TestStatsShowRace hammers the consistent-cut read paths — Stats(),
// SHOW QUERIES/BASKETS/SCHEDULER, EXPLAIN ANALYZE, /metrics rendering —
// while concurrent ingesters and the worker pool mutate everything they
// read. Run under -race this is the satellite's epoch-mixing guard.
func TestStatsShowRace(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	eng, err := Open(ctx, Config{Workers: 2, DataDir: dir, CheckpointInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(ctx, "CREATE BASKET s (k INT, v INT) WITH (partitions = 2, partition_by = k)"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(ctx,
		"CREATE CONTINUOUS QUERY q AS SELECT s.k AS k, SUM(s.v) AS total FROM [SELECT * FROM s] AS s GROUP BY s.k"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(ctx); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := int64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				rows := [][]vector.Value{{vector.NewInt(i % 7), vector.NewInt(i)}}
				_ = eng.Ingest(ctx, "s", rows)
				i++
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			stmts := []string{"SHOW QUERIES", "SHOW BASKETS", "SHOW SCHEDULER", "SHOW STREAMS", "EXPLAIN ANALYZE q", "SHOW TRACE q"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				st := eng.Stats()
				if st.WALLastSeq < st.CheckpointSeq {
					t.Errorf("inconsistent cut: WALLastSeq %d < CheckpointSeq %d", st.WALLastSeq, st.CheckpointSeq)
					return
				}
				if _, err := eng.Exec(ctx, stmts[i%len(stmts)]); err != nil {
					t.Errorf("%s: %v", stmts[i%len(stmts)], err)
					return
				}
				var sb strings.Builder
				if h := eng.MetricsHandler(); h != nil {
					req, _ := http.NewRequest("GET", "/metrics", nil)
					h.ServeHTTP(&nopResponseWriter{&sb}, req)
				}
			}
		}()
	}
	time.Sleep(250 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := eng.Stop(ctx); err != nil {
		t.Fatal(err)
	}
}

// nopResponseWriter adapts a strings.Builder for handler-level scrapes.
type nopResponseWriter struct{ sb *strings.Builder }

func (w *nopResponseWriter) Header() http.Header { return http.Header{} }
func (w *nopResponseWriter) WriteHeader(int)     {}
func (w *nopResponseWriter) Write(p []byte) (int, error) {
	return w.sb.Write(p)
}

// The consistent cut must also hold when read through a query handle.
func TestQueryCheckpointConsistent(t *testing.T) {
	ctx := context.Background()
	eng, err := Open(ctx, Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop(ctx)
	if _, err := eng.Exec(ctx, "CREATE BASKET s (a INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(ctx,
		"CREATE CONTINUOUS QUERY q AS SELECT * FROM [SELECT * FROM s] AS x"); err != nil {
		t.Fatal(err)
	}
	q, err := eng.Query("q")
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Ingest(ctx, "s", intRows(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	info := q.Checkpoint()
	if !info.Durable {
		t.Fatal("query not durable on a durable engine")
	}
	if info.LastCheckpoint.IsZero() {
		t.Fatal("LastCheckpoint zero after explicit checkpoint")
	}
	if info.ReplayLag != 0 {
		t.Fatalf("ReplayLag = %d immediately after checkpoint, want 0", info.ReplayLag)
	}
	_ = fmt.Sprint(info)
}
