package datacell

import (
	"context"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/vector"
)

func TestLoadSheddingBoundsBacklog(t *testing.T) {
	e, _ := newEngine(t)
	q, err := e.RegisterContinuous("shed",
		"SELECT * FROM [SELECT * FROM R] AS S",
		WithLoadShedding(100))
	if err != nil {
		t.Fatal(err)
	}
	// Flood without draining: the basket must stay bounded.
	var rows [][2]int64
	for i := int64(0); i < 500; i++ {
		rows = append(rows, [2]int64{i, i})
	}
	ingestPairs(t, e, "R", rows)
	if got := q.InputBacklog(); got > 100 {
		t.Errorf("backlog = %d, want <= 100", got)
	}
	if q.Shed() != 400 {
		t.Errorf("shed = %d, want 400", q.Shed())
	}
	// The survivors are the newest tuples.
	e.Drain()
	rels := collect(q)
	if countRows(rels) != 100 {
		t.Fatalf("processed = %d", countRows(rels))
	}
	first := rels[0].Cols[0].Get(0).I
	if first != 400 {
		t.Errorf("oldest survivor = %d, want 400", first)
	}
}

func TestNoSheddingByDefault(t *testing.T) {
	e, _ := newEngine(t)
	q, _ := e.RegisterContinuous("noshed", "SELECT * FROM [SELECT * FROM R] AS S")
	var rows [][2]int64
	for i := int64(0); i < 300; i++ {
		rows = append(rows, [2]int64{i, i})
	}
	ingestPairs(t, e, "R", rows)
	if q.InputBacklog() != 300 || q.Shed() != 0 {
		t.Errorf("backlog=%d shed=%d", q.InputBacklog(), q.Shed())
	}
}

func TestPriorityQueryFiresFirst(t *testing.T) {
	e, _ := newEngine(t)
	// Registration order low-then-high; the scheduler must still scan the
	// high-priority factory first.
	_, err := e.RegisterContinuous("low",
		"SELECT * FROM [SELECT * FROM R] AS S", WithSQLPolling())
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.RegisterContinuous("high",
		"SELECT * FROM [SELECT * FROM R] AS S", WithSQLPolling(), WithPriority(5))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, tr := range e.Scheduler().Transitions() {
		names = append(names, tr.Name())
	}
	if len(names) != 2 || names[0] != "high" || names[1] != "low" {
		t.Errorf("scheduling order = %v", names)
	}
}

func TestAutoFlushClosesTimeWindows(t *testing.T) {
	// Wall-clock engine: a RANGE window must close via the Start ticker
	// even though no further tuples arrive.
	e := New(Config{Workers: 2})
	if err := e.CreateStream("m", catalog.NewSchema(
		catalog.Column{Name: "v", Type: vector.Int64})); err != nil {
		t.Fatal(err)
	}
	winNS := int64(50 * time.Millisecond)
	q, err := e.RegisterContinuous("tw",
		"SELECT COUNT(*) AS n FROM [SELECT * FROM m] AS S WINDOW RANGE "+
			itoa(winNS)+" SLIDE "+itoa(winNS))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer e.Stop(context.Background())
	if err := e.Ingest(context.Background(), "m", [][]vector.Value{{vector.NewInt(1)}, {vector.NewInt(2)}}); err != nil {
		t.Fatal(err)
	}
	select {
	case rel := <-q.Subscription().C():
		if rel.Cols[0].Get(0).I != 2 {
			t.Errorf("window count = %v", rel.Row(0))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("time window never closed without new arrivals")
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
