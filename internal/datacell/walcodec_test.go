package datacell

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/vector"
	"repro/internal/wal"
)

func roundTrip(t *testing.T, rec *walRecord) *walRecord {
	t.Helper()
	p, err := encodeRecord(rec)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := decodeRecord(p)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

func TestWALCodecRoundTrip(t *testing.T) {
	recs := []*walRecord{
		{Kind: recStmt, Stmt: "CREATE BASKET s (a INT)"},
		{Kind: recStmt, Stmt: ""},
		{Kind: recFrontier, Query: "q1", Count: 1<<40 + 7},
		{Kind: recIngest, Stream: "s", Cols: nil},
		{Kind: recIngest, Stream: "s", Cols: []vector.Wire{
			{Typ: vector.Int64, Ints: []int64{1, -2, 1 << 50}},
			{Typ: vector.Float64, Flts: []float64{0.5, -3.25}},
			{Typ: vector.Bool, Bools: []bool{true, false, true}},
			{Typ: vector.String, Strs: []string{"", "x", "héllo|world"}, Nulls: []bool{false, true, false}},
		}},
	}
	for i, rec := range recs {
		if got := roundTrip(t, rec); !reflect.DeepEqual(got, rec) {
			t.Errorf("record %d: round trip = %+v, want %+v", i, got, rec)
		}
	}
}

// Every truncation of a valid record, every stray trailing byte, and a
// bad format or kind byte must surface as ErrCorruptWAL — never as a
// panic or a silently wrong record.
func TestWALCodecRejectsMalformed(t *testing.T) {
	rec := &walRecord{Kind: recIngest, Stream: "s", Cols: []vector.Wire{
		{Typ: vector.Int64, Ints: []int64{1, 2, 3}},
		{Typ: vector.String, Strs: []string{"a", "bc"}, Nulls: []bool{false, true}},
	}}
	p, err := encodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(p); cut++ {
		if _, err := decodeRecord(p[:cut]); !errors.Is(err, wal.ErrCorruptWAL) {
			t.Fatalf("truncation at %d: err = %v, want ErrCorruptWAL", cut, err)
		}
	}
	if _, err := decodeRecord(append(append([]byte(nil), p...), 0)); !errors.Is(err, wal.ErrCorruptWAL) {
		t.Fatalf("trailing byte: err = %v, want ErrCorruptWAL", err)
	}
	bad := append([]byte(nil), p...)
	bad[0] = 0x7f
	if _, err := decodeRecord(bad); !errors.Is(err, wal.ErrCorruptWAL) {
		t.Fatalf("bad format byte: err = %v, want ErrCorruptWAL", err)
	}
	bad = append([]byte(nil), p...)
	bad[1] = 'Z'
	if _, err := decodeRecord(bad); !errors.Is(err, wal.ErrCorruptWAL) {
		t.Fatalf("bad kind byte: err = %v, want ErrCorruptWAL", err)
	}
}

func TestWALCodecRejectsUnknownKindOnEncode(t *testing.T) {
	if _, err := encodeRecord(&walRecord{Kind: 'Z'}); err == nil {
		t.Fatal("encoding unknown kind succeeded")
	}
}

func BenchmarkEncodeIngestRecord(b *testing.B) {
	k := vector.NewWithCap(vector.Int64, 4096)
	v := vector.NewWithCap(vector.Int64, 4096)
	for i := 0; i < 4096; i++ {
		k.AppendInt(int64(i * 7 % 4096))
		v.AppendInt(int64(i % 1000))
	}
	cols := []*vector.Vector{k, v}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := encodeRecord(&walRecord{Kind: recIngest, Stream: "d", Cols: vector.WireColumns(cols)})
		if err != nil {
			b.Fatal(err)
		}
		_ = p
	}
}

// The pooled direct-from-vector encoder must be byte-identical to the
// generic record encoder — the decoder only knows one layout.
func TestAppendIngestRecordMatchesEncodeRecord(t *testing.T) {
	k := vector.NewWithCap(vector.Int64, 8)
	f := vector.NewWithCap(vector.Float64, 8)
	s := vector.NewWithCap(vector.String, 8)
	for i := 0; i < 8; i++ {
		k.AppendInt(int64(i*1000 - 4000))
		f.AppendFloat(float64(i) / 3)
		if i == 5 {
			s.AppendNull()
		} else {
			s.AppendString(fmt.Sprintf("v%d", i))
		}
	}
	cols := []*vector.Vector{k, f, s}
	want, err := encodeRecord(&walRecord{Kind: recIngest, Stream: "st", Cols: vector.WireColumns(cols)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := appendIngestRecord(nil, "st", cols)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("direct encoding differs:\n got %v\nwant %v", got, want)
	}
}
