package datacell

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/catalog"
	"repro/internal/storage"
)

// Crash-injection property test: run a durable engine, "kill" it by
// copying its data directory without Stop, truncate the copied WAL at a
// randomized byte offset, reopen, and check the recovery contract
// against a reference run over the surviving input prefix:
//
//   - Open always succeeds (a torn tail is truncated, never fatal);
//   - every group-committed ingest at or below the cut survives
//     (Ingested equals the surviving prefix length);
//   - post-recovery emissions are a contiguous suffix of the reference
//     emission sequence for that prefix (no reordering, no fabricated
//     rows, no duplicates past the logged delivery frontier);
//   - rows acked but never delivered before the crash re-emit (no loss).
//
// The pre-crash run drains after each of the first deliveredRows
// ingests (so the delivery frontier advances row by row) and then acks
// the remaining rows without draining (so the tail is durable but
// undelivered — the no-loss half of the contract).

const (
	crashTotalRows     = 120
	crashDeliveredRows = 80
	crashCheckpointRow = 60
)

func crashRow(i int) [2]int64 {
	return [2]int64{(int64(i) * 37) % 100, int64(i) * 10}
}

const crashFilterDDL = `CREATE CONTINUOUS QUERY qf AS
	SELECT * FROM [SELECT * FROM S] AS x WHERE x.a > 40`

const crashWindowDDL = `CREATE CONTINUOUS QUERY qw WITH (timestamp = et) AS
	SELECT COUNT(*) AS c FROM [SELECT * FROM S] AS x WINDOW RANGE 100 SLIDE 100`

// refFilter is the filter query's emission sequence for an input
// prefix, computed directly from the predicate.
func refFilter(p int) []string {
	var out []string
	for i := 0; i < p; i++ {
		r := crashRow(i)
		if r[0] > 40 {
			out = append(out, fmt.Sprintf("%d|%d", r[0], r[1]))
		}
	}
	return out
}

// flattenRows renders emitted rows for comparison, skipping the
// implicit arrival-timestamp column (re-stamped on replay, so it is
// deliberately outside the recovery contract).
func flattenRows(rels []*storage.Relation) []string {
	var out []string
	for _, rel := range rels {
		skip := -1
		if rel.Schema != nil {
			skip = rel.Schema.Index(catalog.TimestampColumn)
		}
		for r := 0; r < rel.NumRows(); r++ {
			s := ""
			for c, col := range rel.Cols {
				if c == skip {
					continue
				}
				if s != "" {
					s += "|"
				}
				s += fmt.Sprint(col.Get(r))
			}
			out = append(out, s)
		}
	}
	return out
}

// isSuffix reports whether got equals the trailing len(got) entries of ref.
func isSuffix(ref, got []string) bool {
	if len(got) > len(ref) {
		return false
	}
	off := len(ref) - len(got)
	for i, v := range got {
		if ref[off+i] != v {
			return false
		}
	}
	return true
}

// refWindow runs the windowed query on a volatile engine over the first
// p input rows and returns its emission sequence. Memoized per prefix.
func refWindow(t *testing.T, memo map[int][]string, p int) []string {
	if got, ok := memo[p]; ok {
		return got
	}
	t.Helper()
	e, _ := newCrashEngine(t, "")
	for i := 0; i < p; i++ {
		ingestPairs(t, e, "S", [][2]int64{crashRow(i)})
	}
	e.Drain()
	q, err := e.Query("qw")
	if err != nil {
		t.Fatal(err)
	}
	got := flattenRows(collect(q))
	memo[p] = got
	return got
}

// newCrashEngine builds an engine with the crash-test schema and both
// queries; durable when dir is non-empty, volatile otherwise.
func newCrashEngine(t *testing.T, dir string) (*Engine, error) {
	t.Helper()
	ctx := context.Background()
	var e *Engine
	if dir == "" {
		e = New(Config{})
	} else {
		var err error
		e, err = Open(ctx, Config{DataDir: dir, CheckpointInterval: -1})
		if err != nil {
			return nil, err
		}
	}
	if _, err := e.Exec(ctx, "CREATE BASKET S (a INT, et INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(ctx, crashFilterDDL); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(ctx, crashWindowDDL); err != nil {
		t.Fatal(err)
	}
	return e, nil
}

func TestCrashRecoveryProperty(t *testing.T) {
	ctx := context.Background()
	base := t.TempDir()

	// Pre-crash run: deliver the first crashDeliveredRows row by row,
	// checkpoint mid-stream, then ack the tail without delivering.
	e, err := newCrashEngine(t, base)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < crashTotalRows; i++ {
		ingestPairs(t, e, "S", [][2]int64{crashRow(i)})
		if i < crashDeliveredRows {
			e.Drain()
			collectAll(e, t)
		}
		if i == crashCheckpointRow-1 {
			if err := e.Checkpoint(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Copy the live directory — the crash image. The source engine is
	// deliberately never stopped (stopping would write a clean
	// checkpoint and defeat the test); it is torn down with the process.
	image := t.TempDir()
	copyTree(t, base, image)

	segs, err := filepath.Glob(filepath.Join(image, "wal", "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments in image: %v %v", segs, err)
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	size := info.Size()

	rng := rand.New(rand.NewSource(7))
	cuts := []int64{size, 16} // full log, then nearly everything gone
	for i := 0; i < 10; i++ {
		cuts = append(cuts, rng.Int63n(size+1))
	}

	wmemo := map[int][]string{}
	for ti, cut := range cuts {
		trial := t.TempDir()
		copyTree(t, image, trial)
		tl := filepath.Join(trial, "wal", filepath.Base(last))
		if err := os.Truncate(tl, cut); err != nil {
			t.Fatal(err)
		}

		e2, err := Open(ctx, Config{DataDir: trial, CheckpointInterval: -1})
		if err != nil {
			t.Fatalf("trial %d (cut %d): recovery Open failed: %v", ti, cut, err)
		}
		p := int(e2.Ingested("S"))
		if p > crashTotalRows {
			t.Fatalf("trial %d: recovered %d rows, more than ever ingested", ti, p)
		}
		if cut == size && p != crashTotalRows {
			t.Fatalf("full-log trial lost acked rows: recovered %d of %d", ti, crashTotalRows)
		}
		// A cut past ingest crashCheckpointRow+1 necessarily preserved
		// every record the mid-run checkpoint covers (at p == 60 the
		// checkpoint may also cover trailing frontier records the cut
		// dropped, making it legitimately ineligible).
		st := e2.Stats()
		if p > crashCheckpointRow && st.CheckpointSeq == 0 {
			t.Errorf("trial %d: cut %d kept %d rows but dropped the checkpoint", ti, cut, p)
		}
		e2.Drain()

		qf, errF := e2.Query("qf")
		if errF != nil {
			// The cut fell before the query's DDL record; nothing more
			// to check beyond a successful Open.
			if p > 0 {
				t.Errorf("trial %d: %d rows recovered but query missing: %v", ti, p, errF)
			}
			stopQuiet(e2)
			continue
		}
		gotF := flattenRows(collect(qf))
		refF := refFilter(p)
		if !isSuffix(refF, gotF) {
			t.Fatalf("trial %d (p=%d): filter emissions %v not a suffix of reference %v", ti, p, gotF, refF)
		}
		delivered := len(refFilter(min(p, crashDeliveredRows)))
		if missing := len(refF) - len(gotF); missing > delivered {
			t.Errorf("trial %d (p=%d): %d filter rows missing but only %d were ever delivered (lost acked tuples)",
				ti, p, missing, delivered)
		}
		if p > crashDeliveredRows {
			// Every frontier record predates the undelivered tail, so
			// suppression is exact: emissions resume precisely past the
			// pre-crash frontier.
			if want := len(refF) - len(refFilter(crashDeliveredRows)); len(gotF) != want {
				t.Errorf("trial %d (p=%d): filter emitted %d rows, want exactly %d", ti, p, len(gotF), want)
			}
		} else if p > 0 {
			// Only the final drain's frontier record can be lost to the
			// cut: at most one delivery may repeat.
			if dup := len(gotF) - (len(refF) - len(refFilter(p-1))); dup > 0 {
				t.Errorf("trial %d (p=%d): %d duplicate filter emissions past the surviving frontier", ti, p, dup)
			}
		}

		qw, err := e2.Query("qw")
		if err != nil {
			t.Fatalf("trial %d: windowed query missing: %v", ti, err)
		}
		gotW := flattenRows(collect(qw))
		refW := refWindow(t, wmemo, p)
		if !isSuffix(refW, gotW) {
			t.Fatalf("trial %d (p=%d): windowed emissions %v not a suffix of reference %v", ti, p, gotW, refW)
		}
		if p > crashDeliveredRows {
			if want := len(refW) - len(refWindow(t, wmemo, crashDeliveredRows)); len(gotW) != want {
				t.Errorf("trial %d (p=%d): windowed emitted %d rows, want exactly %d", ti, p, len(gotW), want)
			}
		}
		stopQuiet(e2)
	}
	stopQuiet(e)
}

// collectAll drains every registered query's subscription so the
// delivery frontier advances (the rows themselves are discarded).
func collectAll(e *Engine, t *testing.T) {
	t.Helper()
	for _, q := range e.Queries() {
		collect(q)
	}
}

func stopQuiet(e *Engine) { _ = e.Stop(context.Background()) }
