package datacell

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/vector"
)

// explainAnalyze renders a continuous query's live pipeline topology as
// a relation: one row per operator (inputs, shard factories with their
// compiled plan nodes, merge stage, tails, output basket, emitter),
// annotated with cumulative tuple counters. The row order follows the
// dataflow: source streams, then shard pipelines, then recombination,
// then delivery.
func (e *Engine) explainAnalyze(name string) (*storage.Relation, error) {
	q, err := e.Query(name)
	if err != nil {
		return nil, err
	}
	rel := storage.NewRelation(catalog.NewSchema(
		catalog.Column{Name: "operator", Type: vector.String},
		catalog.Column{Name: "name", Type: vector.String},
		catalog.Column{Name: "shard", Type: vector.Int64},
		catalog.Column{Name: "detail", Type: vector.String},
		catalog.Column{Name: "tuples_in", Type: vector.Int64},
		catalog.Column{Name: "tuples_out", Type: vector.Int64},
		catalog.Column{Name: "firings", Type: vector.Int64},
		catalog.Column{Name: "backlog", Type: vector.Int64},
	))
	nullInt := vector.NullValue(vector.Int64)
	row := func(op, name string, shard vector.Value, detail string, in, out, firings, backlog vector.Value) {
		rel.AppendRow([]vector.Value{
			vector.NewString(op), vector.NewString(name), shard,
			vector.NewString(detail), in, out, firings, backlog,
		})
	}
	n := func(v int64) vector.Value { return vector.NewInt(v) }

	// Query header: shape, strategy, and the pipeline-wide totals.
	strat := q.Strategy.String()
	if q.Partitioned() {
		strat = "partitioned"
	}
	shape := "flat"
	switch {
	case q.Stats().JoinState > 0 || strings.Contains(strings.ToUpper(q.SQL), " JOIN "):
		shape = "join"
	case hasWindow(q):
		shape = "windowed"
	}
	if q.Partitioned() {
		shape += fmt.Sprintf(", %d shards", q.Shards())
	}
	total := q.Stats()
	row("query", q.Name, nullInt,
		fmt.Sprintf("strategy=%s shape=%s", strat, shape),
		n(total.TuplesIn), n(total.TuplesOut), n(total.Firings), nullInt)

	// Source streams with their arrival counters and primary backlog.
	for _, sn := range q.streams {
		e.mu.Lock()
		s := e.streams[strings.ToLower(sn)]
		e.mu.Unlock()
		if s == nil {
			continue
		}
		e.mu.Lock()
		ingested := s.ingested
		e.mu.Unlock()
		row("stream", s.name, nullInt,
			fmt.Sprintf("shards=%d", max(len(s.shards), 1)),
			nullInt, n(ingested), nullInt, n(int64(s.primary.Len())))
	}

	// Shard pipelines: one factory row per shard (shard NULL when the
	// query is unpartitioned), each followed by its compiled plan tree.
	for i, f := range q.facts {
		shard := nullInt
		if q.Partitioned() {
			shard = n(int64(i))
		}
		st := f.Stats()
		detail := ""
		if wm, ok := f.WindowWatermark(); ok {
			detail = fmt.Sprintf("watermark=%d late=%d", wm, st.Late)
		}
		if st.JoinState > 0 || st.JoinEvictions > 0 {
			if detail != "" {
				detail += " "
			}
			detail += fmt.Sprintf("join_state=%d evictions=%d", st.JoinState, st.JoinEvictions)
		}
		row("factory", f.Name(), shard, detail,
			n(st.TuplesIn), n(st.TuplesOut), n(st.Firings), nullInt)
		if i == 0 || !q.Partitioned() {
			// The compiled plan is identical across shard pipelines;
			// render it once under the first factory.
			for _, line := range strings.Split(strings.TrimRight(plan.Explain(f.Plan()), "\n"), "\n") {
				row("plan", strings.TrimLeft(line, " "), shard,
					line, nullInt, nullInt, nullInt, nullInt)
			}
		}
	}

	// Routed queries: the shared scan transition, the query's routing
	// anchor in the predicate index, and the shared plan group it belongs
	// to (evaluated once per matched batch, fanned out to all members).
	if r := q.routed; r != nil {
		sc, g := r.scan, r.group
		row("scan", sc.name, nullInt,
			fmt.Sprintf("shared members=%d groups=%d index=%d", sc.memberCount.Load(), sc.groupCount(), sc.idx.Len()),
			n(sc.rows.Load()), nullInt, n(sc.batches.Load()), n(int64(sc.primary.Len())))
		row("route", q.Name, nullInt,
			fmt.Sprintf("anchor=%s group_members=%d group_evals=%d", g.pred.Describe(), len(*g.members.Load()), g.evals.Load()),
			nullInt, nullInt, nullInt, nullInt)
		for _, line := range strings.Split(strings.TrimRight(plan.Explain(g.node), "\n"), "\n") {
			row("plan", strings.TrimLeft(line, " "), nullInt,
				line, nullInt, nullInt, nullInt, nullInt)
		}
	}

	// Recombination: the merge transition and the SPSC tails feeding it.
	if q.merge != nil {
		detail := fmt.Sprintf("lag=%d", q.merge.Lag())
		var merged vector.Value = nullInt
		if m, ok := q.merge.(interface{ Merged() int64 }); ok {
			merged = n(m.Merged())
		}
		row("merge", q.merge.Name(), nullInt, detail, merged, merged, nullInt, n(int64(q.merge.Lag())))
		for i, t := range q.tails {
			row("tail", t.Name(), n(int64(i)), "",
				nullInt, n(t.Drained()), nullInt, n(int64(t.Pending())))
		}
		for i, so := range q.shardOuts {
			_, resident, dropped, _ := so.Stats()
			row("tail", so.Name(), n(int64(i)), "basket",
				nullInt, n(dropped), nullInt, n(int64(resident)))
		}
	}

	// Delivery: output basket and (when subscribed) the emitter.
	_, resident, dropped, _ := q.out.Stats()
	row("output", q.out.Name(), nullInt, "", nullInt, n(dropped), nullInt, n(int64(resident)))
	if q.sub != nil {
		em := q.sub.em
		row("deliver", em.Name(), nullInt,
			fmt.Sprintf("policy=%s dropped_batches=%d", em.Policy(), em.Dropped()),
			nullInt, n(em.Delivered()), nullInt, nullInt)
	}
	return rel, nil
}

// hasWindow reports whether any factory runs a window runner.
func hasWindow(q *Query) bool {
	for _, f := range q.facts {
		if _, ok := f.WindowWatermark(); ok {
			return true
		}
	}
	return false
}

// showTrace renders a query's bounded firing-trace ring (last-K
// pipeline firings with stage timings) as a relation, oldest first.
func (e *Engine) showTrace(name string) (*storage.Relation, error) {
	q, err := e.Query(name)
	if err != nil {
		return nil, err
	}
	rel := storage.NewRelation(catalog.NewSchema(
		catalog.Column{Name: "seq", Type: vector.Int64},
		catalog.Column{Name: "stage", Type: vector.String},
		catalog.Column{Name: "transition", Type: vector.String},
		catalog.Column{Name: "start", Type: vector.Timestamp},
		catalog.Column{Name: "queue_ns", Type: vector.Int64},
		catalog.Column{Name: "fire_ns", Type: vector.Int64},
		catalog.Column{Name: "tuples_in", Type: vector.Int64},
		catalog.Column{Name: "tuples_out", Type: vector.Int64},
		catalog.Column{Name: "error", Type: vector.String},
	))
	if q.trace == nil {
		// Metrics disabled: the trace ring was never armed.
		return rel, nil
	}
	for _, ev := range q.trace.Snapshot() {
		rel.AppendRow([]vector.Value{
			vector.NewInt(ev.Seq),
			vector.NewString(ev.Stage),
			vector.NewString(ev.Transition),
			vector.NewTimestamp(ev.Start),
			vector.NewInt(ev.QueueNS),
			vector.NewInt(ev.FireNS),
			vector.NewInt(ev.TuplesIn),
			vector.NewInt(ev.TuplesOut),
			vector.NewString(ev.Err),
		})
	}
	return rel, nil
}
