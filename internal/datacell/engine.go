// Package datacell wires the kernel and the stream layer into the
// DataCell engine: a catalog of tables and baskets, a Petri-net scheduler,
// receptor-style ingestion, factories for continuous queries, and emitters
// for result delivery. It implements the paper's processing strategies —
// separate baskets, shared baskets, and the cascade of disjoint predicates
// (§2.5) — as per-query options on one shared substrate.
//
// The whole continuous-query lifecycle is SQL: CREATE CONTINUOUS QUERY,
// DROP CONTINUOUS QUERY, and SHOW QUERIES/BASKETS all execute through
// Exec, the same entry point as one-time statements.
package datacell

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/basket"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/plan"
	"repro/internal/scheduler"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/vector"
)

// Strategy selects how a continuous query's input is arranged (§2.5).
type Strategy uint8

// Processing strategies.
const (
	// SeparateBaskets gives the query a private input basket; every
	// incoming tuple is copied into it. Maximum independence, at the cost
	// of replicating the stream.
	SeparateBaskets Strategy = iota
	// SharedBaskets lets all queries read one basket; a tuple is removed
	// once every registered query has seen it. No replication.
	SharedBaskets
	// RoutedScan attaches eligible queries on the same stream to one
	// shared scan transition: a single consumption frontier on the
	// primary basket, a predicate index that routes each batch only to
	// the queries whose filters can match it, and one evaluation per
	// distinct subplan fanned out to the member queries. Opt-in via
	// `strategy = routed`; queries whose shape is ineligible (windows,
	// joins, shedding, filtered consuming scans) fall back to
	// SharedBaskets.
	RoutedScan
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case SharedBaskets:
		return "shared"
	case RoutedScan:
		return "routed"
	}
	return "separate"
}

// Config parameterizes an Engine.
type Config struct {
	// Clock drives basket timestamps and latency accounting; nil means the
	// wall clock.
	Clock metrics.Clock
	// Workers sizes the concurrent scheduler pool for Start (default 2).
	Workers int
	// DataDir, when non-empty, makes the engine durable: ingests and DDL
	// are written to a segmented WAL under it, operator state is
	// checkpointed periodically, and Open replays the log tail so a
	// crashed engine resumes without losing acknowledged batches or
	// re-emitting delivered results. Only Open honors DataDir; New
	// ignores it.
	DataDir string
	// CheckpointInterval paces the background checkpointer (default 10s;
	// negative disables it, leaving only Stop's final checkpoint).
	CheckpointInterval time.Duration
	// WALSegmentBytes caps one log segment (default 64 MiB).
	WALSegmentBytes int64
	// MetricsAddr, when non-empty, serves the observability HTTP
	// endpoint (/metrics Prometheus text, /healthz, /debug/pprof/) on
	// the given listen address. ":0" picks a free port (see
	// Engine.MetricsAddr). Only Open honors it; New ignores it.
	MetricsAddr string
	// DisableMetrics turns the metrics registry and all hot-path
	// instrumentation off (used by benchmarks to measure the
	// instrumentation tax; MetricsAddr then cannot be served).
	DisableMetrics bool
}

// Engine lifecycle states.
const (
	stateIdle int = iota
	stateRunning
	stateStopped
)

// Engine is the DataCell instance.
type Engine struct {
	clock metrics.Clock
	cat   *catalog.Catalog
	sched *scheduler.Scheduler

	// gate is the durability consistency gate: mutating entry points and
	// transition firings hold it in read mode, checkpoint capture in
	// write mode, so every checkpoint is a transaction-consistent cut.
	// Unused (never contended) on a non-durable engine. Lock order:
	// gate, then e.mu, then basket locks.
	gate sync.RWMutex
	dur  *durability // nil unless opened with Config.DataDir

	// obs is the metrics/tracing surface; nil when Config.DisableMetrics
	// is set. Hot-path call sites guard with `if e.obs != nil`.
	obs *engineObs

	mu         sync.Mutex
	metricsLn  net.Listener // bound metrics endpoint (nil unless served)
	metricsSrv *http.Server
	streams    map[string]*stream
	tables     map[string]*storage.Table
	queries    map[string]*Query
	cascades   map[string]*Cascade
	subs       []*Subscription
	workers    int
	state      int
	flushStop  chan struct{}
	// done is closed exactly once, on Stop; context watchers select on it.
	done chan struct{}
}

// stream is one ingestion point: the primary (shared) basket plus the
// private replicas created by separate-strategy queries. A partitioned
// stream additionally owns N shard baskets; the fan-out routes each
// tuple to exactly one of them (hash of the partition column, or
// round-robin) once at least one partitioned query reads them.
type stream struct {
	name     string
	schema   *catalog.Schema // user schema, no ts
	primary  *basket.Basket
	replicas []*basket.Basket
	ingested int64

	// scan is the stream's shared routed-scan transition; nil until the
	// first routed-strategy query registers, nil again after the last one
	// drops (a closed scan is replaced on the next registration).
	scan *sharedScan

	// Partitioned streams only. shardReaders counts the registered
	// partitioned queries; routing is skipped while it is zero so shard
	// baskets do not accumulate unread tuples. The inbox is the
	// ingest→shard handoff: the fan-out publishes each batch's shard
	// slices with a single atomic epoch store instead of locking every
	// shard basket; each shard basket drains its inbox feed on demand.
	router       *partition.Router
	shards       []*basket.Basket
	inbox        *partition.Inbox
	shardReaders int
}

// inboxRingBatches sizes each shard's ingest staging ring (in batches);
// bursts beyond it spill to an unbounded FIFO overflow list.
// tailRingBatches does the same for the shard-pipeline→merge tails.
const (
	inboxRingBatches = 256
	tailRingBatches  = 256
)

// New creates an engine. Prefer Open, which validates the configuration
// and ties the engine's lifetime to a context.
func New(cfg Config) *Engine {
	clock := cfg.Clock
	if clock == nil {
		clock = metrics.WallClock{}
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 2
	}
	e := &Engine{
		clock:    clock,
		cat:      catalog.New(),
		sched:    scheduler.New(),
		streams:  map[string]*stream{},
		tables:   map[string]*storage.Table{},
		queries:  map[string]*Query{},
		cascades: map[string]*Cascade{},
		workers:  workers,
		done:     make(chan struct{}),
	}
	if !cfg.DisableMetrics {
		e.obs = newEngineObs(e)
	}
	return e
}

// Open creates an engine whose lifetime is bounded by ctx: when ctx is
// cancelled the engine shuts down as if Stop had been called. It fails
// fast on an already-cancelled context or an invalid configuration.
func Open(ctx context.Context, cfg Config) (*Engine, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("datacell: negative worker count %d", cfg.Workers)
	}
	e := New(cfg)
	if cfg.DataDir != "" {
		if err := e.initDurability(cfg); err != nil {
			return nil, err
		}
	}
	if cfg.MetricsAddr != "" {
		if err := e.startMetricsServer(cfg.MetricsAddr); err != nil {
			if e.dur != nil {
				_ = e.dur.wal.Close()
			}
			return nil, err
		}
	}
	e.watchContext(ctx)
	return e, nil
}

// watchContext stops the engine when ctx ends; the watcher goroutine is
// released when the engine stops first.
func (e *Engine) watchContext(ctx context.Context) {
	if ctx == nil || ctx.Done() == nil {
		return
	}
	go func() {
		select {
		case <-ctx.Done():
			_ = e.Stop(context.Background())
		case <-e.done:
		}
	}()
}

// Catalog exposes the engine's catalog (diagnostics and tests).
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Scheduler exposes the engine's scheduler (deterministic driving).
func (e *Engine) Scheduler() *scheduler.Scheduler { return e.sched }

// Clock returns the engine clock.
func (e *Engine) Clock() metrics.Clock { return e.clock }

// guard rejects calls on a stopped engine or under a cancelled context.
func (e *Engine) guard(ctx context.Context) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	e.mu.Lock()
	stopped := e.state == stateStopped
	e.mu.Unlock()
	if stopped {
		return ErrEngineStopped
	}
	return nil
}

// Start launches the concurrent scheduler pool, plus a background ticker
// that advances time-based windows so they close even when their stream
// pauses. Cancelling ctx stops the engine. Start on a running engine is a
// no-op; after Stop it returns ErrEngineStopped.
func (e *Engine) Start(ctx context.Context) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	// The state transition and its checks share one mu acquisition: a
	// concurrent Stop must not be overwritten by a resurrecting Start.
	e.mu.Lock()
	switch e.state {
	case stateStopped:
		e.mu.Unlock()
		return ErrEngineStopped
	case stateRunning:
		e.mu.Unlock()
		return nil
	}
	e.state = stateRunning
	w := e.workers
	stop := make(chan struct{})
	e.flushStop = stop
	e.mu.Unlock()
	e.sched.Start(w)
	go func() {
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				_ = e.FlushWindows()
			}
		}
	}()
	if e.dur != nil {
		go e.checkpointLoop(stop)
	}
	e.watchContext(ctx)
	return nil
}

// Stop shuts the engine down: the window ticker stops, in-flight work is
// drained gracefully (bounded by ctx), the scheduler pool terminates, and
// every subscription closes with ErrEngineStopped. Stop is idempotent and
// safe before Start; once stopped, the engine rejects further work.
func (e *Engine) Stop(ctx context.Context) error {
	e.mu.Lock()
	if e.state == stateStopped {
		e.mu.Unlock()
		return nil
	}
	wasRunning := e.state == stateRunning
	e.state = stateStopped
	stop := e.flushStop
	e.flushStop = nil
	e.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	var drainErr error
	if wasRunning {
		drainErr = e.drainRunning(ctx)
	}
	e.sched.Stop()
	// With the scheduler quiescent, write the final clean-shutdown
	// checkpoint: it covers the whole log, so the next Open skips replay.
	if e.dur != nil {
		if err := e.checkpoint(true); err != nil && drainErr == nil {
			drainErr = err
		}
		if err := e.dur.wal.Close(); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	e.stopMetricsServer()
	close(e.done)
	e.mu.Lock()
	subs := append([]*Subscription(nil), e.subs...)
	e.mu.Unlock()
	for _, s := range subs {
		s.closeWith(ErrEngineStopped)
	}
	return drainErr
}

// drainRunning waits for the concurrent scheduler to go quiescent: every
// transition unready, or no firing progress for a grace period (a blocked
// emitter must not wedge shutdown), or ctx done.
func (e *Engine) drainRunning(ctx context.Context) error {
	const stallLimit = 50 * time.Millisecond
	idleSince := time.Time{}
	last := e.sched.Fired()
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		ready := false
		for _, t := range e.sched.Transitions() {
			if t.Ready() {
				ready = true
				break
			}
		}
		if !ready {
			return nil
		}
		if now := e.sched.Fired(); now != last {
			last = now
			idleSince = time.Time{}
		} else if idleSince.IsZero() {
			idleSince = time.Now()
		} else if time.Since(idleSince) > stallLimit {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
}

// Step runs one deterministic scheduler pass (test/bench mode).
func (e *Engine) Step() int { return e.sched.Step() }

// Drain runs scheduler passes until the Petri net is quiescent.
func (e *Engine) Drain() int { return e.sched.Drain(1_000_000) }

// CreateStream declares a stream: a named basket fed by Ingest. The schema
// must not include the implicit ts column.
func (e *Engine) CreateStream(name string, schema *catalog.Schema) error {
	return e.CreatePartitionedStream(name, schema, partition.Spec{})
}

// CreatePartitionedStream declares a stream with a sharding declaration —
// the Go equivalent of CREATE BASKET ... WITH (partitions = N,
// partition_by = col). With spec.Shards > 1 the stream owns N shard
// baskets (named <name>#i, visible in SHOW BASKETS) and the ingest
// fan-out hash-routes each tuple to one of them; partitionable
// continuous queries over the stream then run as N parallel shard
// pipelines. A zero spec declares an ordinary stream.
func (e *Engine) CreatePartitionedStream(name string, schema *catalog.Schema, spec partition.Spec) error {
	if e.dur != nil {
		e.gate.RLock()
		defer e.gate.RUnlock()
	}
	if err := e.createPartitionedStream(name, schema, spec); err != nil {
		return err
	}
	return e.dur.logStmt(context.Background(), createBasketDDL(name, schema, spec), true)
}

func (e *Engine) createPartitionedStream(name string, schema *catalog.Schema, spec partition.Spec) error {
	// partition_by is validated even for the degenerate partitions = 1
	// declaration, so a typo'd column never silently disables routing.
	if spec.By != "" && schema.Index(spec.By) < 0 {
		return fmt.Errorf("%w: partition_by column %q not in schema %s", ErrInvalidOption, spec.By, schema)
	}
	var router *partition.Router
	if spec.Enabled() {
		var err error
		router, err = partition.NewRouter(schema, spec)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidOption, err)
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	key := strings.ToLower(name)
	if _, dup := e.streams[key]; dup {
		return fmt.Errorf("%w: stream %q", ErrDuplicateName, name)
	}
	b := basket.New(name, schema, e.clock)
	regErr := func() error {
		if router == nil {
			return e.cat.Register(name, catalog.KindBasket, b)
		}
		return e.cat.RegisterPartitioned(name, catalog.KindBasket, b, spec.Shards, spec.By)
	}()
	if regErr != nil {
		return fmt.Errorf("%w: %q", ErrDuplicateName, name)
	}
	s := &stream{name: name, schema: schema, primary: b, router: router}
	if router != nil {
		s.inbox = partition.NewInbox(spec.Shards, inboxRingBatches)
		for i := 0; i < spec.Shards; i++ {
			sh := basket.New(fmt.Sprintf("%s#%d", name, i), schema, e.clock)
			sh.SetFeed(s.inbox.Shard(i))
			if err := e.cat.RegisterShard(sh.Name(), catalog.KindBasket, sh, name, i); err != nil {
				// Roll back: '#' is not a legal identifier, so a collision
				// means a previous partitioned stream's leftovers — impossible
				// after the duplicate check above, but keep the catalog clean.
				for j := 0; j < i; j++ {
					_ = e.cat.Drop(fmt.Sprintf("%s#%d", name, j))
				}
				_ = e.cat.Drop(name)
				return fmt.Errorf("%w: %q", ErrDuplicateName, sh.Name())
			}
			s.shards = append(s.shards, sh)
		}
	}
	e.streams[key] = s
	return nil
}

// CreateTable declares a static relational table.
func (e *Engine) CreateTable(name string, schema *catalog.Schema) error {
	if e.dur != nil {
		e.gate.RLock()
		defer e.gate.RUnlock()
	}
	if err := e.createTable(name, schema); err != nil {
		return err
	}
	return e.dur.logStmt(context.Background(), createTableDDL(name, schema), true)
}

func (e *Engine) createTable(name string, schema *catalog.Schema) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := storage.NewTable(name, schema)
	if err := e.cat.Register(name, catalog.KindTable, t); err != nil {
		return fmt.Errorf("%w: %q", ErrDuplicateName, name)
	}
	e.tables[strings.ToLower(name)] = t
	return nil
}

// columnsDDL renders a schema as a DDL column list.
func columnsDDL(schema *catalog.Schema) string {
	var b strings.Builder
	for i, c := range schema.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	return b.String()
}

// createBasketDDL and createTableDDL synthesize journal spellings for
// the Go registration APIs, so Go-declared objects recover exactly like
// DDL-declared ones.
func createBasketDDL(name string, schema *catalog.Schema, spec partition.Spec) string {
	s := fmt.Sprintf("CREATE BASKET %s (%s)", name, columnsDDL(schema))
	var opts []string
	if spec.Shards > 0 {
		opts = append(opts, fmt.Sprintf("partitions = %d", spec.Shards))
	}
	if spec.By != "" {
		opts = append(opts, fmt.Sprintf("partition_by = %s", spec.By))
	}
	if len(opts) > 0 {
		s += " WITH (" + strings.Join(opts, ", ") + ")"
	}
	return s
}

func createTableDDL(name string, schema *catalog.Schema) string {
	return fmt.Sprintf("CREATE TABLE %s (%s)", name, columnsDDL(schema))
}

// Stream returns the primary basket of a stream.
func (e *Engine) Stream(name string) (*basket.Basket, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.streams[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownStream, name)
	}
	return s.primary, nil
}

// Ingest routes rows into a stream: to the primary basket when shared
// consumers (or no queries at all) read it, and to every private replica
// created by separate-strategy queries — the receptor's replication step.
// It honors ctx cancellation and fails after Stop. Rows are transposed to
// columns once, then fanned out (appending copies, so targets never share
// storage).
func (e *Engine) Ingest(ctx context.Context, streamName string, rows [][]vector.Value) error {
	if err := e.guard(ctx); err != nil {
		return err
	}
	if e.dur != nil {
		e.gate.RLock()
		defer e.gate.RUnlock()
	}
	return e.ingestRows(ctx, streamName, rows)
}

// ingestRows is the core behind Ingest and basket INSERTs; the caller
// holds the consistency gate on a durable engine.
func (e *Engine) ingestRows(ctx context.Context, streamName string, rows [][]vector.Value) error {
	s, err := e.lookupStream(streamName)
	if err != nil {
		return err
	}
	cols, err := rowsToCols(s.schema, rows)
	if err != nil {
		return fmt.Errorf("basket %s: %w", streamName, err)
	}
	return e.ingest(ctx, s, len(rows), cols)
}

// IngestColumns is the bulk variant of Ingest.
func (e *Engine) IngestColumns(ctx context.Context, streamName string, cols []*vector.Vector) error {
	if err := e.guard(ctx); err != nil {
		return err
	}
	if e.dur != nil {
		e.gate.RLock()
		defer e.gate.RUnlock()
	}
	s, err := e.lookupStream(streamName)
	if err != nil {
		return err
	}
	n := 0
	if len(cols) > 0 {
		n = cols[0].Len()
	}
	return e.ingest(ctx, s, n, cols)
}

// ingest logs the batch to the WAL (waiting for the group commit, so an
// acknowledged batch survives a crash) and fans it out. The log append
// and the fan-out share one gate hold, so the log order matches the
// apply order.
func (e *Engine) ingest(ctx context.Context, s *stream, n int, cols []*vector.Vector) error {
	if e.dur != nil && e.obs != nil {
		start := time.Now()
		if err := e.dur.logIngest(ctx, s.name, cols); err != nil {
			return err
		}
		e.obs.walCommitNS.Observe(time.Since(start).Nanoseconds())
	} else if err := e.dur.logIngest(ctx, s.name, cols); err != nil {
		return err
	}
	return e.fanout(s, n, cols)
}

func (e *Engine) lookupStream(name string) (*stream, error) {
	e.mu.Lock()
	s, ok := e.streams[strings.ToLower(name)]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownStream, name)
	}
	return s, nil
}

// fanout is the shared receptor step behind Ingest and IngestColumns: it
// charges the stream's arrival counter and appends the batch to the
// primary basket (when shared consumers, or nobody, read it), to every
// separate-strategy replica, and — on a partitioned stream with
// registered shard readers — routes each tuple to its shard basket. The
// replica slice is copy-on-write (see registerParsed), so the snapshot
// taken under e.mu is used as-is instead of being recloned on every call.
func (e *Engine) fanout(s *stream, n int, cols []*vector.Vector) error {
	if e.obs != nil {
		e.obs.ingestBatches.Inc()
		e.obs.ingestTuples.Add(int64(n))
	}
	e.mu.Lock()
	s.ingested += int64(n)
	primary := s.primary
	replicas := s.replicas
	shardReaders := s.shardReaders
	e.mu.Unlock()

	if primary.Readers() > 0 || (len(replicas) == 0 && shardReaders == 0) {
		if err := primary.Append(cols); err != nil {
			return err
		}
	}
	for _, r := range replicas {
		if err := r.Append(cols); err != nil {
			return err
		}
	}
	if shardReaders > 0 {
		parts, err := s.router.Split(cols)
		if err != nil {
			return err
		}
		// The whole batch must become visible to every shard atomically:
		// shard window runners share a watermark group raised while
		// PROCESSING a batch, and a shard's pre-pin group reading assumes
		// every tuple below it was already routed to its input. Per-shard
		// appends break that — a fast shard can fire on its slice and
		// raise the group clock while a sibling's slice is still in
		// flight, and the sibling then seals windows those tuples belong
		// to and mislabels them late. The inbox preserves the invariant
		// without locking every shard basket: all slices are staged on
		// per-shard rings, then published together with one atomic epoch
		// store; a shard basket admits only published epochs when it
		// drains its feed. The append itself is therefore lock-free on
		// the shard baskets — only the targeted wake below touches them.
		s.inbox.Publish(parts, e.clock.Now())
		for i, part := range parts {
			if len(part) > 0 && part[0].Len() > 0 {
				s.shards[i].NotifyAppend()
			}
		}
	}
	return nil
}

// rowsToCols transposes user rows into per-column vectors of the stream's
// user schema (no ts column).
func rowsToCols(schema *catalog.Schema, rows [][]vector.Value) ([]*vector.Vector, error) {
	w := schema.Len()
	cols := make([]*vector.Vector, w)
	for i := 0; i < w; i++ {
		cols[i] = vector.NewWithCap(schema.Columns[i].Type, len(rows))
	}
	for _, row := range rows {
		if len(row) != w {
			return nil, fmt.Errorf("row has %d values, want %d", len(row), w)
		}
		for i, v := range row {
			cols[i].AppendValue(v)
		}
	}
	return cols, nil
}

// Ingested returns the number of tuples routed into the stream so far.
func (e *Engine) Ingested(streamName string) int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if s, ok := e.streams[strings.ToLower(streamName)]; ok {
		return s.ingested
	}
	return 0
}

// Exec runs one SQL statement: DDL (including the continuous-query
// lifecycle), INSERT, a one-time SELECT, or SHOW introspection. It honors
// ctx cancellation and fails after Stop. Every front end — the embedding
// API, script execution, and the TCP control listener — routes through
// this single entry point.
func (e *Engine) Exec(ctx context.Context, text string) (*storage.Relation, error) {
	if err := e.guard(ctx); err != nil {
		return nil, err
	}
	st, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	if e.dur != nil {
		e.gate.RLock()
		defer e.gate.RUnlock()
	}
	// logDDL records a schema-shaping statement after it succeeds: in
	// the WAL and in the DDL journal every checkpoint embeds.
	logDDL := func(err error) error {
		if err != nil {
			return err
		}
		return e.dur.logStmt(ctx, text, true)
	}
	switch x := st.(type) {
	case *sql.CreateStmt:
		schema := &catalog.Schema{}
		for _, c := range x.Cols {
			schema.Columns = append(schema.Columns, catalog.Column{Name: c.Name, Type: c.Type})
		}
		if x.Basket {
			spec, rest, err := partition.FromOptions(x.Options)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrInvalidOption, err)
			}
			if len(rest) > 0 {
				return nil, fmt.Errorf("%w: unknown option %q", ErrInvalidOption, rest[0].Key)
			}
			return nil, logDDL(e.createPartitionedStream(x.Name, schema, spec))
		}
		// The parser rejects WITH on CREATE TABLE, so x.Options is empty here.
		return nil, logDDL(e.createTable(x.Name, schema))
	case *sql.CreateContinuousStmt:
		opts, err := optionsFromSpecs(x.Options)
		if err != nil {
			return nil, err
		}
		_, err = e.registerParsed(x.Name, x.SelectText, x.Select, opts...)
		return nil, logDDL(err)
	case *sql.DropContinuousStmt:
		return nil, logDDL(e.unregisterContinuous(x.Name))
	case *sql.DropStmt:
		return nil, logDDL(e.drop(x.Name))
	case *sql.ShowStmt:
		if x.What == sql.ShowTrace {
			return e.showTrace(x.Name)
		}
		return e.show(x.What)
	case *sql.ExplainStmt:
		return e.explainAnalyze(x.Target)
	case *sql.InsertStmt:
		selfLogged, err := e.insert(ctx, x)
		if err != nil {
			return nil, err
		}
		if !selfLogged {
			// Table INSERTs are WAL-only (table contents live in the
			// checkpoint image, not the DDL journal).
			err = e.dur.logStmt(ctx, text, false)
		}
		return nil, err
	case *sql.SelectStmt:
		if x.IsContinuous() {
			return nil, fmt.Errorf("%w: %s", ErrContinuousViaExec, sql.StmtString(x))
		}
		p, err := plan.Build(x, e.cat)
		if err != nil {
			return nil, e.planError(err)
		}
		return exec.Run(p, exec.NewContext(e.cat))
	default:
		return nil, fmt.Errorf("datacell: unsupported statement")
	}
}

// show builds the introspection relations for SHOW QUERIES / BASKETS /
// TABLES / STREAMS.
func (e *Engine) show(what sql.ShowKind) (*storage.Relation, error) {
	switch what {
	case sql.ShowQueries:
		// shards is the query's pipeline fan-out (1 = unpartitioned);
		// merge_lag counts shard emissions not yet merged into the output
		// basket, so skew between shards is visible from the control port.
		// late_tuples counts arrivals dropped behind an emitted window
		// boundary or a streaming join's watermark, watermark is the
		// event-time frontier window content is final up to (NULL for
		// unwindowed queries). join_state is the number of rows the
		// query's streaming join retains across pipelines and
		// join_evictions the state rows expired behind the watermark (0
		// for join-free queries). last_checkpoint is when the durability
		// subsystem last captured the query's state (NULL on a
		// non-durable engine or before the first checkpoint) and
		// replay_lag the number of WAL records a crash right now would
		// replay.
		rel := storage.NewRelation(catalog.NewSchema(
			catalog.Column{Name: "name", Type: vector.String},
			catalog.Column{Name: "strategy", Type: vector.String},
			catalog.Column{Name: "shards", Type: vector.Int64},
			catalog.Column{Name: "merge_lag", Type: vector.Int64},
			catalog.Column{Name: "late_tuples", Type: vector.Int64},
			catalog.Column{Name: "watermark", Type: vector.Timestamp},
			catalog.Column{Name: "join_state", Type: vector.Int64},
			catalog.Column{Name: "join_evictions", Type: vector.Int64},
			catalog.Column{Name: "last_checkpoint", Type: vector.Timestamp},
			catalog.Column{Name: "replay_lag", Type: vector.Int64},
			catalog.Column{Name: "sql", Type: vector.String},
		))
		snap := e.dur.snapshot()
		lastCkpt := vector.NullValue(vector.Timestamp)
		if !snap.ckptTime.IsZero() {
			lastCkpt = vector.NewTimestamp(snap.ckptTime.UnixNano())
		}
		lag := snap.replayLag()
		qs := e.Queries()
		sort.Slice(qs, func(i, j int) bool { return qs[i].Name < qs[j].Name })
		for _, q := range qs {
			// Partitioned queries consume the stream's shard baskets by
			// watermark regardless of the declared strategy; report the
			// arrangement actually in effect.
			strat := q.Strategy.String()
			if q.Partitioned() {
				strat = "partitioned"
			}
			watermark := vector.NullValue(vector.Timestamp)
			if wm, ok := q.Watermark(); ok {
				watermark = vector.NewTimestamp(wm)
			}
			st := q.Stats()
			rel.AppendRow([]vector.Value{
				vector.NewString(q.Name),
				vector.NewString(strat),
				vector.NewInt(int64(q.Shards())),
				vector.NewInt(int64(q.MergeLag())),
				vector.NewInt(st.Late),
				watermark,
				vector.NewInt(st.JoinState),
				vector.NewInt(st.JoinEvictions),
				lastCkpt,
				vector.NewInt(lag),
				vector.NewString(q.SQL),
			})
		}
		return rel, nil
	case sql.ShowStreams:
		rel := storage.NewRelation(catalog.NewSchema(
			catalog.Column{Name: "name", Type: vector.String},
			catalog.Column{Name: "ingested", Type: vector.Int64},
			catalog.Column{Name: "backlog", Type: vector.Int64},
		))
		// s.ingested is written under e.mu by Ingest; snapshot it there.
		type row struct {
			name     string
			ingested int64
			primary  *basket.Basket
		}
		e.mu.Lock()
		rows := make([]row, 0, len(e.streams))
		for _, s := range e.streams {
			rows = append(rows, row{s.name, s.ingested, s.primary})
		}
		e.mu.Unlock()
		sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
		for _, s := range rows {
			rel.AppendRow([]vector.Value{
				vector.NewString(s.name),
				vector.NewInt(s.ingested),
				vector.NewInt(int64(s.primary.Len())),
			})
		}
		return rel, nil
	case sql.ShowBaskets:
		// Per-basket physical layout from the chunked storage layer:
		// resident tuples and chunks, plus the cumulative consumption
		// counters (dropped includes shed). Shard baskets of partitioned
		// streams and queries appear as their own rows with shard >= 0
		// (NULL for unsharded baskets), so per-shard skew is visible.
		rel := storage.NewRelation(catalog.NewSchema(
			catalog.Column{Name: "name", Type: vector.String},
			catalog.Column{Name: "shard", Type: vector.Int64},
			catalog.Column{Name: "tuples", Type: vector.Int64},
			catalog.Column{Name: "chunks", Type: vector.Int64},
			catalog.Column{Name: "dropped", Type: vector.Int64},
			catalog.Column{Name: "shed", Type: vector.Int64},
		))
		for _, name := range e.cat.Names() {
			entry, err := e.cat.Lookup(name)
			if err != nil || entry.Kind != catalog.KindBasket {
				continue
			}
			shard := vector.NullValue(vector.Int64)
			if entry.Shard >= 0 {
				shard = vector.NewInt(int64(entry.Shard))
			}
			var chunks, resident int
			var dropped, shed int64
			switch src := entry.Source.(type) {
			case *basket.Basket:
				chunks, resident, dropped, shed = src.Stats()
			case *partition.Tail:
				// Shard-pipeline tails report buffered batches as chunks
				// and drained tuples as consumed; they never shed.
				resident = src.Pending()
				chunks = src.Batches()
				dropped = src.Drained()
			default:
				continue
			}
			rel.AppendRow([]vector.Value{
				vector.NewString(entry.Name),
				shard,
				vector.NewInt(int64(resident)),
				vector.NewInt(int64(chunks)),
				vector.NewInt(dropped),
				vector.NewInt(shed),
			})
		}
		return rel, nil
	case sql.ShowScheduler:
		// Execution-core introspection: one row per transition with its
		// scheduling counters, then one row per worker with its busy/idle
		// accounting (counter columns NULL and vice versa).
		rel := storage.NewRelation(catalog.NewSchema(
			catalog.Column{Name: "kind", Type: vector.String},
			catalog.Column{Name: "name", Type: vector.String},
			catalog.Column{Name: "priority", Type: vector.Int64},
			catalog.Column{Name: "fired", Type: vector.Int64},
			catalog.Column{Name: "claim_misses", Type: vector.Int64},
			catalog.Column{Name: "coalesced_wakes", Type: vector.Int64},
			catalog.Column{Name: "busy_ns", Type: vector.Int64},
			catalog.Column{Name: "idle_ns", Type: vector.Int64},
		))
		st := e.sched.Stats()
		null := vector.NullValue(vector.Int64)
		for _, t := range st.Transitions {
			rel.AppendRow([]vector.Value{
				vector.NewString("transition"),
				vector.NewString(t.Name),
				vector.NewInt(int64(t.Priority)),
				vector.NewInt(t.Fired),
				vector.NewInt(t.ClaimMisses),
				vector.NewInt(t.CoalescedWakes),
				null,
				null,
			})
		}
		for i, w := range st.Workers {
			rel.AppendRow([]vector.Value{
				vector.NewString("worker"),
				vector.NewString(fmt.Sprintf("worker#%d", i)),
				null,
				null,
				null,
				null,
				vector.NewInt(w.BusyNS),
				vector.NewInt(w.IdleNS),
			})
		}
		return rel, nil
	case sql.ShowTables:
		rel := storage.NewRelation(catalog.NewSchema(
			catalog.Column{Name: "name", Type: vector.String},
			catalog.Column{Name: "tuples", Type: vector.Int64},
		))
		for _, name := range e.cat.Names() {
			entry, err := e.cat.Lookup(name)
			if err != nil || entry.Kind != catalog.KindTable {
				continue
			}
			rel.AppendRow([]vector.Value{
				vector.NewString(entry.Name),
				vector.NewInt(int64(entry.Source.Snapshot().NumRows())),
			})
		}
		return rel, nil
	default:
		return nil, fmt.Errorf("datacell: unsupported SHOW")
	}
}

func (e *Engine) drop(name string) error {
	e.mu.Lock()
	key := strings.ToLower(name)
	if _, ok := e.streams[key]; ok {
		for _, q := range e.queries {
			for _, streamName := range q.streams {
				if strings.ToLower(streamName) == key {
					e.mu.Unlock()
					return fmt.Errorf("%w: %q is read by %q", ErrStreamInUse, name, q.Name)
				}
			}
		}
		for _, c := range e.cascades {
			if strings.ToLower(c.stream) == key {
				e.mu.Unlock()
				return fmt.Errorf("%w: %q is read by cascade %q", ErrStreamInUse, name, c.Name)
			}
		}
		s := e.streams[key]
		delete(e.streams, key)
		e.mu.Unlock()
		for i := range s.shards {
			_ = e.cat.Drop(fmt.Sprintf("%s#%d", s.name, i))
		}
		return e.cat.Drop(name)
	}
	if _, ok := e.tables[key]; ok {
		delete(e.tables, key)
		e.mu.Unlock()
		return e.cat.Drop(name)
	}
	e.mu.Unlock()
	return fmt.Errorf("%w: no table or stream %q", ErrUnknownStream, name)
}

// insert applies an INSERT. The returned bool reports whether the
// statement already logged itself durably (a basket INSERT routes
// through the ingest core, which writes an 'I' record); a table INSERT
// leaves logging to Exec.
func (e *Engine) insert(ctx context.Context, ins *sql.InsertStmt) (bool, error) {
	entry, err := e.cat.Lookup(ins.Table)
	if err != nil {
		return false, fmt.Errorf("%w: %q", ErrUnknownStream, ins.Table)
	}
	userW := entry.Source.Schema().Len()
	if entry.Kind == catalog.KindBasket {
		userW-- // implicit ts is never inserted
	}
	rows := make([][]vector.Value, 0, len(ins.Rows))
	for _, exprRow := range ins.Rows {
		if len(exprRow) != userW {
			return false, fmt.Errorf("datacell: INSERT into %s needs %d values, got %d",
				ins.Table, userW, len(exprRow))
		}
		row := make([]vector.Value, len(exprRow))
		for i, ex := range exprRow {
			v, err := literalValue(ex, entry.Source.Schema().Columns[i].Type)
			if err != nil {
				return false, err
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	if entry.Kind == catalog.KindBasket {
		// The gate is already held by Exec on a durable engine.
		return true, e.ingestRows(ctx, ins.Table, rows)
	}
	e.mu.Lock()
	tbl := e.tables[strings.ToLower(ins.Table)]
	e.mu.Unlock()
	if tbl == nil {
		return false, fmt.Errorf("datacell: %q is not writable", ins.Table)
	}
	for _, row := range rows {
		if err := tbl.AppendRow(row); err != nil {
			return false, err
		}
	}
	return false, nil
}

// literalValue reduces an INSERT expression (literal, possibly negated) to
// a value of the target column type.
func literalValue(ex sql.Expr, want vector.Type) (vector.Value, error) {
	switch x := ex.(type) {
	case *sql.Lit:
		return coerce(x.Val, want)
	case *sql.UnaryExpr:
		if x.Op != "-" {
			return vector.Value{}, fmt.Errorf("datacell: INSERT values must be literals")
		}
		inner, err := literalValue(x.E, want)
		if err != nil {
			return vector.Value{}, err
		}
		switch inner.Typ {
		case vector.Int64, vector.Timestamp:
			inner.I = -inner.I
		case vector.Float64:
			inner.F = -inner.F
		default:
			return vector.Value{}, fmt.Errorf("datacell: cannot negate %s", inner.Typ)
		}
		return inner, nil
	default:
		return vector.Value{}, fmt.Errorf("datacell: INSERT values must be literals")
	}
}

func coerce(v vector.Value, want vector.Type) (vector.Value, error) {
	if v.Null {
		return vector.NullValue(want), nil
	}
	if v.Typ == want {
		return v, nil
	}
	switch {
	case want == vector.Float64 && v.Typ == vector.Int64:
		return vector.NewFloat(float64(v.I)), nil
	case want == vector.Timestamp && v.Typ == vector.Int64:
		return vector.NewTimestamp(v.I), nil
	case want == vector.Int64 && v.Typ == vector.Float64 && v.F == float64(int64(v.F)):
		return vector.NewInt(int64(v.F)), nil
	default:
		return vector.Value{}, fmt.Errorf("datacell: cannot store %s into %s column", v.Typ, want)
	}
}

// Queries lists the registered continuous queries.
func (e *Engine) Queries() []*Query {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Query, 0, len(e.queries))
	for _, q := range e.queries {
		out = append(out, q)
	}
	return out
}

// Query returns a registered continuous query by name.
func (e *Engine) Query(name string) (*Query, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	q, ok := e.queries[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownQuery, name)
	}
	return q, nil
}

// FlushWindows advances every windowed query to the current clock,
// emitting time-based windows that closed without new arrivals.
func (e *Engine) FlushWindows() error {
	if e.dur != nil {
		e.gate.RLock()
		defer e.gate.RUnlock()
	}
	for _, q := range e.Queries() {
		for _, f := range q.facts {
			if err := f.FlushWindows(); err != nil {
				return err
			}
		}
	}
	e.sched.Notify()
	return nil
}
