// Package datacell wires the kernel and the stream layer into the
// DataCell engine: a catalog of tables and baskets, a Petri-net scheduler,
// receptor-style ingestion, factories for continuous queries, and emitters
// for result delivery. It implements the paper's processing strategies —
// separate baskets, shared baskets, and the cascade of disjoint predicates
// (§2.5) — as per-query options on one shared substrate.
package datacell

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/basket"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/scheduler"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/vector"
)

// Strategy selects how a continuous query's input is arranged (§2.5).
type Strategy uint8

// Processing strategies.
const (
	// SeparateBaskets gives the query a private input basket; every
	// incoming tuple is copied into it. Maximum independence, at the cost
	// of replicating the stream.
	SeparateBaskets Strategy = iota
	// SharedBaskets lets all queries read one basket; a tuple is removed
	// once every registered query has seen it. No replication.
	SharedBaskets
)

// String names the strategy.
func (s Strategy) String() string {
	if s == SharedBaskets {
		return "shared"
	}
	return "separate"
}

// Config parameterizes an Engine.
type Config struct {
	// Clock drives basket timestamps and latency accounting; nil means the
	// wall clock.
	Clock metrics.Clock
	// Workers sizes the concurrent scheduler pool for Start (default 2).
	Workers int
}

// Engine is the DataCell instance.
type Engine struct {
	clock metrics.Clock
	cat   *catalog.Catalog
	sched *scheduler.Scheduler

	mu        sync.Mutex
	streams   map[string]*stream
	tables    map[string]*storage.Table
	queries   map[string]*Query
	cascades  map[string]*Cascade
	workers   int
	started   bool
	flushStop chan struct{}
}

// stream is one ingestion point: the primary (shared) basket plus the
// private replicas created by separate-strategy queries.
type stream struct {
	name     string
	schema   *catalog.Schema // user schema, no ts
	primary  *basket.Basket
	replicas []*basket.Basket
	ingested int64
}

// New creates an engine.
func New(cfg Config) *Engine {
	clock := cfg.Clock
	if clock == nil {
		clock = metrics.WallClock{}
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 2
	}
	return &Engine{
		clock:    clock,
		cat:      catalog.New(),
		sched:    scheduler.New(),
		streams:  map[string]*stream{},
		tables:   map[string]*storage.Table{},
		queries:  map[string]*Query{},
		cascades: map[string]*Cascade{},
		workers:  workers,
	}
}

// Catalog exposes the engine's catalog (diagnostics and tests).
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Scheduler exposes the engine's scheduler (deterministic driving).
func (e *Engine) Scheduler() *scheduler.Scheduler { return e.sched }

// Clock returns the engine clock.
func (e *Engine) Clock() metrics.Clock { return e.clock }

// Start launches the concurrent scheduler pool, plus a background ticker
// that advances time-based windows so they close even when their stream
// pauses.
func (e *Engine) Start() {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return
	}
	e.started = true
	w := e.workers
	stop := make(chan struct{})
	e.flushStop = stop
	e.mu.Unlock()
	e.sched.Start(w)
	go func() {
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				_ = e.FlushWindows()
			}
		}
	}()
}

// Stop terminates the scheduler pool and the window ticker.
func (e *Engine) Stop() {
	e.mu.Lock()
	if e.flushStop != nil {
		close(e.flushStop)
		e.flushStop = nil
	}
	e.started = false
	e.mu.Unlock()
	e.sched.Stop()
}

// Step runs one deterministic scheduler pass (test/bench mode).
func (e *Engine) Step() int { return e.sched.Step() }

// Drain runs scheduler passes until the Petri net is quiescent.
func (e *Engine) Drain() int { return e.sched.Drain(1_000_000) }

// CreateStream declares a stream: a named basket fed by Ingest. The schema
// must not include the implicit ts column.
func (e *Engine) CreateStream(name string, schema *catalog.Schema) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := strings.ToLower(name)
	if _, dup := e.streams[key]; dup {
		return fmt.Errorf("datacell: stream %q already exists", name)
	}
	b := basket.New(name, schema, e.clock)
	b.OnAppend(e.sched.Notify)
	if err := e.cat.Register(name, catalog.KindBasket, b); err != nil {
		return err
	}
	e.streams[key] = &stream{name: name, schema: schema, primary: b}
	return nil
}

// CreateTable declares a static relational table.
func (e *Engine) CreateTable(name string, schema *catalog.Schema) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := storage.NewTable(name, schema)
	if err := e.cat.Register(name, catalog.KindTable, t); err != nil {
		return err
	}
	e.tables[strings.ToLower(name)] = t
	return nil
}

// Stream returns the primary basket of a stream.
func (e *Engine) Stream(name string) (*basket.Basket, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.streams[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("datacell: unknown stream %q", name)
	}
	return s.primary, nil
}

// Ingest routes rows into a stream: to the primary basket when shared
// consumers (or no queries at all) read it, and to every private replica
// created by separate-strategy queries — the receptor's replication step.
func (e *Engine) Ingest(streamName string, rows [][]vector.Value) error {
	e.mu.Lock()
	s, ok := e.streams[strings.ToLower(streamName)]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("datacell: unknown stream %q", streamName)
	}
	s.ingested += int64(len(rows))
	primary := s.primary
	replicas := append([]*basket.Basket(nil), s.replicas...)
	e.mu.Unlock()

	if primary.Readers() > 0 || len(replicas) == 0 {
		if err := primary.AppendRows(rows); err != nil {
			return err
		}
	}
	for _, r := range replicas {
		if err := r.AppendRows(rows); err != nil {
			return err
		}
	}
	return nil
}

// IngestColumns is the bulk variant of Ingest.
func (e *Engine) IngestColumns(streamName string, cols []*vector.Vector) error {
	e.mu.Lock()
	s, ok := e.streams[strings.ToLower(streamName)]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("datacell: unknown stream %q", streamName)
	}
	n := 0
	if len(cols) > 0 {
		n = cols[0].Len()
	}
	s.ingested += int64(n)
	primary := s.primary
	replicas := append([]*basket.Basket(nil), s.replicas...)
	e.mu.Unlock()

	if primary.Readers() > 0 || len(replicas) == 0 {
		if err := primary.Append(cols); err != nil {
			return err
		}
	}
	for _, r := range replicas {
		if err := r.Append(cols); err != nil {
			return err
		}
	}
	return nil
}

// Ingested returns the number of tuples routed into the stream so far.
func (e *Engine) Ingested(streamName string) int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if s, ok := e.streams[strings.ToLower(streamName)]; ok {
		return s.ingested
	}
	return 0
}

// Exec runs one SQL statement: DDL, INSERT, or a one-time SELECT.
// Continuous queries (those containing a basket expression) must be
// registered with RegisterContinuous instead.
func (e *Engine) Exec(text string) (*storage.Relation, error) {
	st, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	switch x := st.(type) {
	case *sql.CreateStmt:
		schema := &catalog.Schema{}
		for _, c := range x.Cols {
			schema.Columns = append(schema.Columns, catalog.Column{Name: c.Name, Type: c.Type})
		}
		if x.Basket {
			return nil, e.CreateStream(x.Name, schema)
		}
		return nil, e.CreateTable(x.Name, schema)
	case *sql.DropStmt:
		return nil, e.drop(x.Name)
	case *sql.InsertStmt:
		return nil, e.insert(x)
	case *sql.SelectStmt:
		if x.IsContinuous() {
			return nil, fmt.Errorf("datacell: continuous query; use RegisterContinuous")
		}
		p, err := plan.Build(x, e.cat)
		if err != nil {
			return nil, err
		}
		return exec.Run(p, exec.NewContext(e.cat))
	default:
		return nil, fmt.Errorf("datacell: unsupported statement")
	}
}

func (e *Engine) drop(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := e.streams[key]; ok {
		delete(e.streams, key)
		return e.cat.Drop(name)
	}
	if _, ok := e.tables[key]; ok {
		delete(e.tables, key)
		return e.cat.Drop(name)
	}
	return fmt.Errorf("datacell: unknown table or stream %q", name)
}

func (e *Engine) insert(ins *sql.InsertStmt) error {
	entry, err := e.cat.Lookup(ins.Table)
	if err != nil {
		return err
	}
	userW := entry.Source.Schema().Len()
	if entry.Kind == catalog.KindBasket {
		userW-- // implicit ts is never inserted
	}
	rows := make([][]vector.Value, 0, len(ins.Rows))
	for _, exprRow := range ins.Rows {
		if len(exprRow) != userW {
			return fmt.Errorf("datacell: INSERT into %s needs %d values, got %d",
				ins.Table, userW, len(exprRow))
		}
		row := make([]vector.Value, len(exprRow))
		for i, ex := range exprRow {
			v, err := literalValue(ex, entry.Source.Schema().Columns[i].Type)
			if err != nil {
				return err
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	if entry.Kind == catalog.KindBasket {
		return e.Ingest(ins.Table, rows)
	}
	e.mu.Lock()
	tbl := e.tables[strings.ToLower(ins.Table)]
	e.mu.Unlock()
	if tbl == nil {
		return fmt.Errorf("datacell: %q is not writable", ins.Table)
	}
	for _, row := range rows {
		if err := tbl.AppendRow(row); err != nil {
			return err
		}
	}
	return nil
}

// literalValue reduces an INSERT expression (literal, possibly negated) to
// a value of the target column type.
func literalValue(ex sql.Expr, want vector.Type) (vector.Value, error) {
	switch x := ex.(type) {
	case *sql.Lit:
		return coerce(x.Val, want)
	case *sql.UnaryExpr:
		if x.Op != "-" {
			return vector.Value{}, fmt.Errorf("datacell: INSERT values must be literals")
		}
		inner, err := literalValue(x.E, want)
		if err != nil {
			return vector.Value{}, err
		}
		switch inner.Typ {
		case vector.Int64, vector.Timestamp:
			inner.I = -inner.I
		case vector.Float64:
			inner.F = -inner.F
		default:
			return vector.Value{}, fmt.Errorf("datacell: cannot negate %s", inner.Typ)
		}
		return inner, nil
	default:
		return vector.Value{}, fmt.Errorf("datacell: INSERT values must be literals")
	}
}

func coerce(v vector.Value, want vector.Type) (vector.Value, error) {
	if v.Null {
		return vector.NullValue(want), nil
	}
	if v.Typ == want {
		return v, nil
	}
	switch {
	case want == vector.Float64 && v.Typ == vector.Int64:
		return vector.NewFloat(float64(v.I)), nil
	case want == vector.Timestamp && v.Typ == vector.Int64:
		return vector.NewTimestamp(v.I), nil
	case want == vector.Int64 && v.Typ == vector.Float64 && v.F == float64(int64(v.F)):
		return vector.NewInt(int64(v.F)), nil
	default:
		return vector.Value{}, fmt.Errorf("datacell: cannot store %s into %s column", v.Typ, want)
	}
}

// Queries lists the registered continuous queries.
func (e *Engine) Queries() []*Query {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Query, 0, len(e.queries))
	for _, q := range e.queries {
		out = append(out, q)
	}
	return out
}

// Query returns a registered continuous query by name.
func (e *Engine) Query(name string) (*Query, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	q, ok := e.queries[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("datacell: unknown continuous query %q", name)
	}
	return q, nil
}

// FlushWindows advances every windowed query to the current clock,
// emitting time-based windows that closed without new arrivals.
func (e *Engine) FlushWindows() error {
	for _, q := range e.Queries() {
		if err := q.fact.FlushWindows(); err != nil {
			return err
		}
	}
	e.sched.Notify()
	return nil
}
