package datacell

import (
	"context"
	"sync"

	"repro/internal/adapters"
	"repro/internal/storage"
)

// Backpressure selects what a subscription does when its consumer falls
// behind; see the adapters package for the policies.
type Backpressure = adapters.Backpressure

// Backpressure policies.
const (
	// BackpressureBlock retains results until the consumer catches up.
	BackpressureBlock = adapters.BackpressureBlock
	// BackpressureDropOldest evicts the oldest undelivered batch.
	BackpressureDropOldest = adapters.BackpressureDropOldest
)

// Subscription is a handle on a continuous query's result delivery: a
// channel emitter scheduled as a Petri-net transition, wrapped with
// lifecycle control. It is created by the engine (one per subscribing
// query, and one per cascade stage) and stays valid until Close, the
// owning query's drop, or engine Stop.
type Subscription struct {
	eng *Engine
	em  *adapters.ChannelEmitter

	mu     sync.Mutex
	closed bool
	err    error
}

func newSubscription(e *Engine, em *adapters.ChannelEmitter) *Subscription {
	s := &Subscription{eng: e, em: em}
	e.mu.Lock()
	e.subs = append(e.subs, s)
	e.mu.Unlock()
	return s
}

// C returns the delivery channel: one relation per result batch. The
// channel is closed when the subscription closes; Err explains why.
func (s *Subscription) C() <-chan *storage.Relation { return s.em.C() }

// Recv waits for the next result batch, honoring ctx cancellation. After
// the subscription closes (and its buffer drains) it returns Err().
func (s *Subscription) Recv(ctx context.Context) (*storage.Relation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case rel, ok := <-s.em.C():
		if !ok {
			return nil, s.Err()
		}
		return rel, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close detaches the emitter from the scheduler and closes the delivery
// channel. The query itself keeps running — its results keep accumulating
// in the output basket, queryable via one-time SQL. Close is idempotent.
func (s *Subscription) Close() error {
	s.closeWith(ErrSubscriptionClosed)
	return nil
}

// Err reports why the subscription closed: nil while open,
// ErrSubscriptionClosed after Close or a query drop, ErrEngineStopped
// after engine shutdown.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Dropped returns the number of batches evicted under the drop-oldest
// backpressure policy.
func (s *Subscription) Dropped() int64 { return s.em.Dropped() }

// closeWith records the close reason, unschedules the emitter, and closes
// the channel. First reason wins.
func (s *Subscription) closeWith(cause error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.err = cause
	s.mu.Unlock()
	s.eng.sched.Remove(s.em.Name())
	s.em.Close()
	// Drop the engine's reference so repeated create/drop cycles don't
	// accumulate dead subscriptions.
	s.eng.mu.Lock()
	for i, x := range s.eng.subs {
		if x == s {
			s.eng.subs = append(s.eng.subs[:i], s.eng.subs[i+1:]...)
			break
		}
	}
	s.eng.mu.Unlock()
}
