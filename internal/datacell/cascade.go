package datacell

import (
	"fmt"
	"strings"

	"repro/internal/adapters"
	"repro/internal/algebra"
	"repro/internal/basket"
	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/vector"
)

// CascadePredicate is one stage of the cascade strategy (§2.5, third
// strategy): a range predicate lo <= attr < hi over one stream attribute.
// Stages must be pairwise disjoint for the cascade to be equivalent to
// independent queries — stage i removes its qualifying tuples, so stage
// i+1 only processes what earlier stages rejected.
type CascadePredicate struct {
	Attr   string
	Lo, Hi vector.Value // half-open [Lo, Hi); NULL bound = unbounded
}

// String renders the predicate.
func (p CascadePredicate) String() string {
	return fmt.Sprintf("%s in [%s, %s)", p.Attr, p.Lo, p.Hi)
}

// Cascade is a registered chain of disjoint-range stages over one stream.
type Cascade struct {
	Name   string
	stream string
	stages []*cascadeStage
}

// Stage returns the i-th stage's output basket (its matched tuples).
func (c *Cascade) Stage(i int) *basket.Basket { return c.stages[i].out }

// Subscription returns the i-th stage's result subscription.
func (c *Cascade) Subscription(i int) *Subscription { return c.stages[i].sub }

// Stages returns the number of stages.
func (c *Cascade) Stages() int { return len(c.stages) }

// Processed returns the number of tuples stage i examined — the quantity
// the cascade strategy reduces for later stages.
func (c *Cascade) Processed(i int) int64 { return c.stages[i].processed.Value() }

// cascadeStage is a custom transition: it selects its range from its input
// basket, forwards the rest to the next stage's basket, and consumes
// everything — q2 never sees what qualified for q1.
type cascadeStage struct {
	name    string
	pred    CascadePredicate
	attrIdx int
	in      *basket.Basket
	next    *basket.Basket // nil for the last stage
	out     *basket.Basket
	sub     *Subscription

	processed counter
}

// counter is a tiny atomic-free counter guarded by the stage's single-fire
// discipline (the scheduler never fires one transition concurrently with
// itself); Value is approximate under concurrent readers, which is fine
// for statistics.
type counter struct{ n int64 }

func (c *counter) Add(d int64)  { c.n += d }
func (c *counter) Value() int64 { return c.n }

// Name implements scheduler.Transition.
func (s *cascadeStage) Name() string { return s.name }

// Ready implements scheduler.Transition.
func (s *cascadeStage) Ready() bool { return s.in.Len() > 0 }

// Fire implements scheduler.Transition: one bulk select-and-split step.
// The drained view is processed chunk by chunk: the range select runs on
// each chunk's column segment and the split relations are gathered with
// chunk-local takes — no flat copy of the basket is materialized.
func (s *cascadeStage) Fire() error {
	s.in.Lock()
	view, n := s.in.LockedSnapshot()
	s.in.LockedDropPrefix(n)
	s.in.Unlock()
	if n == 0 {
		return nil
	}
	s.processed.Add(int64(n))

	matched := make(bat.Candidates, 0, n)
	base := 0
	for _, ch := range view.Chunks {
		cn := ch.Len()
		if cn == 0 {
			continue
		}
		for _, p := range algebra.RangeSelect(ch.Cols[s.attrIdx], nil, s.pred.Lo, s.pred.Hi, true, false) {
			matched = append(matched, base+p)
		}
		base += cn
	}
	rest := bat.Complement(0, n, matched)

	userW := s.in.UserWidth()
	split := func(pos bat.Candidates, dst *basket.Basket) error {
		if dst == nil || len(pos) == 0 {
			return nil
		}
		rel := &storage.Relation{Cols: make([]*vector.Vector, userW)}
		for c := 0; c < userW; c++ {
			rel.Cols[c] = view.TakeColumn(c, pos)
		}
		if err := dst.AppendRelation(rel); err != nil {
			return fmt.Errorf("cascade %s: %w", s.name, err)
		}
		return nil
	}
	if err := split(matched, s.out); err != nil {
		return err
	}
	return split(rest, s.next)
}

// RegisterCascade installs the cascade strategy for k disjoint range
// queries over one stream: stage i receives what stages 0..i-1 rejected.
// Each stage's matches land in basket <name>_s<i>_out with a subscription
// channel.
func (e *Engine) RegisterCascade(name, streamName string, preds []CascadePredicate) (*Cascade, error) {
	if len(preds) == 0 {
		return nil, fmt.Errorf("datacell: cascade needs at least one predicate")
	}
	key := strings.ToLower(name)
	e.mu.Lock()
	if _, dup := e.cascades[key]; dup {
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: cascade %q", ErrDuplicateQuery, name)
	}
	s, ok := e.streams[strings.ToLower(streamName)]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownStream, streamName)
	}

	c := &Cascade{Name: name, stream: streamName}
	// Stage 0 reads a private replica of the stream; the paper's "extra
	// basket between q1 and q2" connects consecutive stages.
	head := basket.New(name+"_s0_in", s.schema, e.clock)
	chain := head
	for i, p := range preds {
		attrIdx := s.schema.Index(p.Attr)
		if attrIdx < 0 {
			return nil, fmt.Errorf("datacell: cascade attribute %q not in stream %s", p.Attr, streamName)
		}
		var next *basket.Basket
		if i+1 < len(preds) {
			next = basket.New(fmt.Sprintf("%s_s%d_in", name, i+1), s.schema, e.clock)
		}
		out := basket.New(fmt.Sprintf("%s_s%d_out", name, i), s.schema, e.clock)
		if err := e.cat.Register(out.Name(), catalog.KindBasket, out); err != nil {
			return nil, err
		}
		emitter := adapters.NewChannelEmitter(fmt.Sprintf("%s_s%d_emit", name, i), out, 64, adapters.BackpressureBlock)
		stage := &cascadeStage{
			name:    fmt.Sprintf("%s_s%d", name, i),
			pred:    p,
			attrIdx: attrIdx,
			in:      chain,
			next:    next,
			out:     out,
			sub:     newSubscription(e, emitter),
		}
		c.stages = append(c.stages, stage)
		chain = next
	}

	e.mu.Lock()
	// Copy-on-write: see registerParsed.
	s.replicas = append(append([]*basket.Basket(nil), s.replicas...), head)
	e.cascades[key] = c
	e.mu.Unlock()
	// Cascades are Go-only (no DDL spelling) and therefore not journaled
	// for recovery, but their firings are still gated so a checkpoint
	// cut never splits one. Each stage wakes on appends to its input
	// basket, each emitter on appends to its stage's output.
	for _, st := range c.stages {
		h := e.addTransition(st, 0)
		st.in.Subscribe(h.Wake)
		eh := e.addTransition(st.sub.em, 0)
		st.out.Subscribe(eh.Wake)
	}
	return c, nil
}

// Cascade returns a registered cascade by name.
func (e *Engine) CascadeByName(name string) (*Cascade, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.cascades[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: cascade %q", ErrUnknownQuery, name)
	}
	return c, nil
}
