package datacell

import (
	"context"
	"errors"
	"testing"

	"repro/internal/vector"
)

// TestDDLRoundTrip drives the full SQL-first lifecycle through Exec:
// CREATE CONTINUOUS QUERY registers, SHOW QUERIES reflects it, results
// flow, and DROP CONTINUOUS QUERY frees the output basket and closes the
// subscription.
func TestDDLRoundTrip(t *testing.T) {
	ctx := context.Background()
	e, _ := newEngine(t)
	if _, err := e.Exec(ctx, `CREATE CONTINUOUS QUERY big
		WITH (strategy = shared, depth = 8) AS
		SELECT * FROM [SELECT * FROM R] AS S WHERE S.a > 10`); err != nil {
		t.Fatal(err)
	}
	q, err := e.Query("big")
	if err != nil {
		t.Fatal(err)
	}
	if q.Strategy != SharedBaskets {
		t.Errorf("strategy = %v", q.Strategy)
	}

	// SHOW QUERIES lists it with its SQL.
	rel, err := e.Exec(ctx, "SHOW QUERIES")
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 1 || rel.Cols[0].Get(0).S != "big" || rel.Cols[1].Get(0).S != "shared" {
		t.Fatalf("SHOW QUERIES = %v", rel)
	}

	// Results flow through the subscription.
	ingestPairs(t, e, "R", [][2]int64{{5, 1}, {15, 2}})
	e.Drain()
	batch, err := q.Subscription().Recv(ctx)
	if err != nil || batch.NumRows() != 1 {
		t.Fatalf("recv = %v, %v", batch, err)
	}

	// SHOW BASKETS includes the stream and the output basket.
	rel, err = e.Exec(ctx, "SHOW BASKETS")
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for i := 0; i < rel.NumRows(); i++ {
		names[rel.Cols[0].Get(i).S] = true
	}
	if !names["R"] || !names["big_out"] {
		t.Errorf("SHOW BASKETS = %v", names)
	}

	// DROP frees the basket and closes the subscription.
	sub := q.Subscription()
	if _, err := e.Exec(ctx, "DROP CONTINUOUS QUERY big"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query("big"); !errors.Is(err, ErrUnknownQuery) {
		t.Errorf("query still registered: %v", err)
	}
	if _, err := e.Exec(ctx, "SELECT * FROM big_out"); err == nil {
		t.Error("output basket should be dropped")
	}
	if _, err := sub.Recv(ctx); !errors.Is(err, ErrSubscriptionClosed) {
		t.Errorf("subscription still open: %v", err)
	}
	// The dropped reader released its watermark: a remaining shared query
	// alone decides when the basket compacts.
	if _, err := e.Exec(ctx, `CREATE CONTINUOUS QUERY other WITH (strategy = shared) AS
		SELECT * FROM [SELECT * FROM R] AS S`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(ctx, "DROP CONTINUOUS QUERY other"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(ctx, `CREATE CONTINUOUS QUERY survivor WITH (strategy = shared) AS
		SELECT * FROM [SELECT * FROM R] AS S`); err != nil {
		t.Fatal(err)
	}
	ingestPairs(t, e, "R", [][2]int64{{1, 1}})
	e.Drain()
	primary, _ := e.Stream("R")
	if primary.Len() != 0 {
		t.Errorf("shared basket retains %d tuples behind a dropped reader", primary.Len())
	}
	// The name is free again.
	if _, err := e.Exec(ctx, `CREATE CONTINUOUS QUERY big AS
		SELECT * FROM [SELECT * FROM R] AS S`); err != nil {
		t.Errorf("re-create after drop: %v", err)
	}
}

func TestDDLSeparateReplicaFreedOnDrop(t *testing.T) {
	ctx := context.Background()
	e, _ := newEngine(t)
	if _, err := e.Exec(ctx, `CREATE CONTINUOUS QUERY sep AS
		SELECT * FROM [SELECT * FROM R] AS S`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(ctx, "DROP CONTINUOUS QUERY sep"); err != nil {
		t.Fatal(err)
	}
	// The private replica is detached: ingest no longer fans out to it.
	e.mu.Lock()
	replicas := len(e.streams["r"].replicas)
	e.mu.Unlock()
	if replicas != 0 {
		t.Errorf("replicas = %d after drop", replicas)
	}
}

// TestFailedRegisterLeavesNoReplica: when registration fails after the
// private replica was published (here: the <name>_out name is taken),
// the replica must be withdrawn from the fan-out — an orphaned replica
// would absorb every future ingest batch with nothing consuming it.
func TestFailedRegisterLeavesNoReplica(t *testing.T) {
	ctx := context.Background()
	e, _ := newEngine(t)
	if _, err := e.Exec(ctx, "CREATE BASKET q_out (a INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(ctx, `CREATE CONTINUOUS QUERY q AS
		SELECT * FROM [SELECT * FROM R] AS S`); !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("err = %v, want ErrDuplicateName", err)
	}
	e.mu.Lock()
	replicas := len(e.streams["r"].replicas)
	e.mu.Unlock()
	if replicas != 0 {
		t.Errorf("failed registration leaked %d replica(s)", replicas)
	}
}

func TestDDLShowStreamsAndTables(t *testing.T) {
	ctx := context.Background()
	e, _ := newEngine(t)
	if _, err := e.Exec(ctx, "CREATE TABLE ref (k INT)"); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(ctx, "R", [][]vector.Value{{vector.NewInt(1), vector.NewInt(2)}}); err != nil {
		t.Fatal(err)
	}
	rel, err := e.Exec(ctx, "SHOW STREAMS")
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 1 || rel.Cols[0].Get(0).S != "R" || rel.Cols[1].Get(0).I != 1 {
		t.Errorf("SHOW STREAMS = %v", rel)
	}
	rel, err = e.Exec(ctx, "SHOW TABLES")
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 1 || rel.Cols[0].Get(0).S != "ref" {
		t.Errorf("SHOW TABLES = %v", rel)
	}
}

func TestDropStreamReadByCascade(t *testing.T) {
	ctx := context.Background()
	e, _ := newEngine(t)
	if _, err := e.RegisterCascade("c", "R", []CascadePredicate{
		{Attr: "a", Lo: vector.NewInt(0), Hi: vector.NewInt(10)},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(ctx, "DROP BASKET R"); !errors.Is(err, ErrStreamInUse) {
		t.Errorf("drop under cascade: %v", err)
	}
}

func TestSubscriptionsReleasedOnDrop(t *testing.T) {
	ctx := context.Background()
	e, _ := newEngine(t)
	for i := 0; i < 10; i++ {
		if _, err := e.Exec(ctx, "CREATE CONTINUOUS QUERY churn AS SELECT * FROM [SELECT * FROM R] AS S"); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Exec(ctx, "DROP CONTINUOUS QUERY churn"); err != nil {
			t.Fatal(err)
		}
	}
	e.mu.Lock()
	n := len(e.subs)
	e.mu.Unlock()
	if n != 0 {
		t.Errorf("dead subscriptions retained: %d", n)
	}
}

func TestDDLDropUnknownQuery(t *testing.T) {
	e, _ := newEngine(t)
	_, err := e.Exec(context.Background(), "DROP CONTINUOUS QUERY nosuch")
	if !errors.Is(err, ErrUnknownQuery) {
		t.Errorf("err = %v", err)
	}
}

// TestGracefulStopDrainsBacklog verifies Stop's graceful drain: work
// ingested right before Stop is still processed into the output basket.
func TestGracefulStopDrainsBacklog(t *testing.T) {
	ctx := context.Background()
	e, _ := newEngine(t)
	if _, err := e.Exec(ctx, `CREATE CONTINUOUS QUERY q WITH (polling = true) AS
		SELECT * FROM [SELECT * FROM R] AS S`); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(ctx); err != nil {
		t.Fatal(err)
	}
	var rows [][2]int64
	for i := int64(0); i < 1000; i++ {
		rows = append(rows, [2]int64{i, i})
	}
	ingestPairs(t, e, "R", rows)
	if err := e.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	q, err := e.Query("q")
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Stats().TuplesIn; got != 1000 {
		t.Errorf("drained %d of 1000 tuples", got)
	}
}
