// Durability: a segmented write-ahead log plus periodic operator-state
// checkpoints, giving the engine crash recovery with exactly-once
// resumption of continuous queries.
//
// The WAL records three kinds of events, in the fixed binary layout of
// walcodec.go (checkpoint images, off the hot path, use gob):
//
//   - 'S' statements: DDL (CREATE/DROP of baskets, tables, and continuous
//     queries) and INSERTs into tables. DDL is additionally kept in an
//     in-memory journal that every checkpoint image embeds, so recovery
//     can rebuild the catalog before restoring operator state.
//   - 'I' ingests: one record per Ingest/IngestColumns batch (and per
//     INSERT into a basket), appended to the log *before* the fan-out so
//     an acknowledged batch is always recoverable. Ingest returns only
//     after the record is group-committed (fsync batching in the WAL).
//   - 'F' delivery frontiers: the cumulative count of result tuples a
//     query's subscription has delivered. Logged asynchronously after
//     delivery, so recovery suppresses re-emission of everything at or
//     below the highest frontier on disk (exactly-once with respect to
//     the durable frontier; the tail of in-flight deliveries whose
//     frontier record was lost is re-delivered at-least-once).
//
// A checkpoint is a consistent cut: the engine's consistency gate (a
// write lock all mutating entry points and transition firings take in
// read mode) is held while the image — basket contents and reader marks,
// window panes, symmetric-join state, watermarks, windowed-merge
// pendings, per-query delivery counts, table contents, and the DDL
// journal — is captured; the image is then encoded, fsynced, and
// atomically installed outside the gate, after which the WAL prefix it
// covers is pruned.
//
// Recovery (Engine.Open with Config.DataDir) replays the newest valid
// checkpoint whose sequence number is covered by the durable WAL prefix,
// re-executes the DDL journal, restores operator state, replays the WAL
// tail past the checkpoint, and arms each durable query's emitter with
// the delivery frontier so already-delivered results are not re-emitted.
// A final clean-shutdown checkpoint written by Stop makes clean restarts
// skip the replay entirely.
//
// Known caveats, by design: arrival timestamps of replayed tuples are
// re-stamped at replay time (event-time queries, which order by a user
// column, are unaffected); Go-only registrations that have no DDL
// spelling (cascades, filter groups, custom QueryOptions) are not
// journaled and must be re-registered after a restart; consumption of a
// polling query's output basket via one-time SELECTs is not logged, so
// such reads may reappear after a crash.
package datacell

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/basket"
	"repro/internal/checkpoint"
	"repro/internal/factory"
	"repro/internal/partition"
	"repro/internal/scheduler"
	"repro/internal/storage"
	"repro/internal/vector"
	"repro/internal/wal"
)

// Typed durability errors, re-exported from the subsystem packages so
// callers can errors.Is against the engine package alone.
var (
	// ErrCorruptWAL reports an unrecoverable write-ahead-log corruption
	// (a bad frame before the final torn tail, or a sequence gap).
	ErrCorruptWAL = wal.ErrCorruptWAL
	// ErrCheckpointMismatch reports a checkpoint image that fails
	// validation or does not match the recovered catalog.
	ErrCheckpointMismatch = checkpoint.ErrCheckpointMismatch
	// ErrNotDurable reports a durability operation on an engine opened
	// without Config.DataDir.
	ErrNotDurable = fmt.Errorf("datacell: engine has no data directory")
)

// WAL record kinds.
const (
	recStmt     byte = 'S'
	recIngest   byte = 'I'
	recFrontier byte = 'F'
)

const (
	walSubdir       = "wal"
	ckptSubdir      = "checkpoint"
	keepCheckpoints = 2
	// defaultCheckpointInterval paces the background checkpointer when
	// Config.CheckpointInterval is zero.
	defaultCheckpointInterval = 10 * time.Second
)

// walRecord is the on-log representation of one durable event. Exactly
// the fields for its Kind are populated.
type walRecord struct {
	Kind   byte
	Stmt   string        // 'S': statement text
	Stream string        // 'I': target stream
	Cols   []vector.Wire // 'I': batch columns (user schema, no ts)
	Query  string        // 'F': query key (lower-cased name)
	Count  int64         // 'F': cumulative delivered tuples
}

// durability is the engine-side state of the subsystem. Nil on a
// non-durable engine; every method tolerates a nil receiver so call
// sites need no guards.
type durability struct {
	dir string
	wal *wal.WAL

	mu           sync.Mutex
	ckptEvery    time.Duration // background checkpoint cadence; < 0 disables
	ddl          []string      // DDL journal since engine birth
	delivered    map[string]int64
	lastCkptSeq  int64
	lastCkptTime time.Time

	// ckptMu serializes whole checkpoints (ticker vs Stop vs explicit).
	ckptMu sync.Mutex

	// Recovery-time switches; set only while Open replays, before the
	// engine is visible to any other goroutine.
	noWAL     bool // suppress all WAL appends (records are already on disk)
	noJournal bool // suppress the DDL journal too (journal is pre-seeded)

	recoveredRecords int64
	recoveredClean   bool
}

func (d *durability) ckptDir() string { return filepath.Join(d.dir, ckptSubdir) }

// logStmt journals and WAL-appends one statement. Schema-shaping
// statements (journal=true) enter the DDL journal embedded in every
// checkpoint; data statements (INSERT into a table) are WAL-only — the
// checkpoint image carries table contents directly.
func (d *durability) logStmt(ctx context.Context, text string, journal bool) error {
	if d == nil {
		return nil
	}
	if journal && !d.noJournal {
		d.mu.Lock()
		d.ddl = append(d.ddl, text)
		d.mu.Unlock()
	}
	if d.noWAL {
		return nil
	}
	p, err := encodeRecord(&walRecord{Kind: recStmt, Stmt: text})
	if err != nil {
		return err
	}
	seq, err := d.wal.Append(p)
	if err != nil {
		return err
	}
	return d.wal.Commit(ctx, seq)
}

// walBufPool recycles ingest-record encode buffers: the WAL copies the
// payload into its write buffer during Append, so the encode buffer is
// reusable the moment Append returns.
var walBufPool = sync.Pool{New: func() any { return new([]byte) }}

// logIngest appends one ingest batch and waits for the group commit.
// Called before the fan-out, under the consistency gate, so the log
// order matches the apply order and an acknowledged batch is durable.
func (d *durability) logIngest(ctx context.Context, stream string, cols []*vector.Vector) error {
	if d == nil || d.noWAL {
		return nil
	}
	bp := walBufPool.Get().(*[]byte)
	p, err := appendIngestRecord((*bp)[:0], stream, cols)
	if err != nil {
		walBufPool.Put(bp)
		return err
	}
	seq, err := d.wal.Append(p)
	*bp = p[:0]
	walBufPool.Put(bp)
	if err != nil {
		return err
	}
	return d.wal.Commit(ctx, seq)
}

// logFrontier records a query's cumulative delivery count. Append-only
// (no commit wait): losing the tail frontier record downgrades those
// deliveries to at-least-once, never to lost.
func (d *durability) logFrontier(query string, delivered int64) {
	if d == nil || d.noWAL {
		return
	}
	d.mu.Lock()
	if delivered <= d.delivered[query] {
		d.mu.Unlock()
		return
	}
	d.delivered[query] = delivered
	d.mu.Unlock()
	if p, err := encodeRecord(&walRecord{Kind: recFrontier, Query: query, Count: delivered}); err == nil {
		_, _ = d.wal.Append(p)
	}
}

// tighten lowers the background checkpoint cadence to at most every.
func (d *durability) tighten(every time.Duration) {
	if d == nil || every <= 0 {
		return
	}
	d.mu.Lock()
	if d.ckptEvery <= 0 || every < d.ckptEvery {
		d.ckptEvery = every
	}
	d.mu.Unlock()
}

// gatedTransition wraps a scheduler transition so its firing holds the
// engine's consistency gate in read mode: checkpoints (write mode) see
// either all or none of each firing's effects.
type gatedTransition struct {
	scheduler.Transition
	gate *sync.RWMutex
}

func (g gatedTransition) Fire() error {
	g.gate.RLock()
	defer g.gate.RUnlock()
	return g.Transition.Fire()
}

// addTransition registers a transition, gated on a durable engine, and
// returns its scheduler handle so callers can wire targeted wake-ups.
func (e *Engine) addTransition(t scheduler.Transition, priority int) *scheduler.Handle {
	if e.dur != nil {
		t = gatedTransition{Transition: t, gate: &e.gate}
	}
	return e.sched.Register(t, priority)
}

// basketImage is one basket's captured content plus shared-reader marks
// (relative to the content start).
type basketImage struct {
	Cols  []vector.Wire
	Marks map[string]int64
}

func captureBasket(b *basket.Basket) basketImage {
	cols, marks := b.CaptureState()
	return basketImage{Cols: cols, Marks: marks}
}

func restoreBasket(b *basket.Basket, img basketImage) error {
	return b.RestoreState(img.Cols, img.Marks)
}

// ckptStream is one stream's captured state: the arrival counter, the
// primary basket, and the shard baskets of a partitioned stream.
// Separate-strategy replicas are captured under their owning query.
type ckptStream struct {
	Ingested int64
	Primary  basketImage
	Shards   []basketImage
}

// ckptQuery is one durable continuous query's captured state.
type ckptQuery struct {
	Delivered int64 // emitter's cumulative delivery count
	Out       basketImage
	Replicas  []basketImage
	ShardOuts []basketImage
	Tails     []partition.TailImage
	Facts     []*factory.State
	Merge     *partition.WindowedMergeState
}

// ckptImage is a full checkpoint: everything needed to restart the
// engine at WAL sequence WALSeq.
type ckptImage struct {
	WALSeq  int64
	Clean   bool // written by Stop after the scheduler quiesced
	DDL     []string
	Tables  map[string][]vector.Wire
	Streams map[string]ckptStream
	Queries map[string]ckptQuery // durable queries only, keyed lower-cased
}

// captureImage builds the checkpoint cut. Caller holds e.gate (write).
func (e *Engine) captureImage(clean bool) *ckptImage {
	d := e.dur
	img := &ckptImage{
		WALSeq:  d.wal.LastSeq(),
		Clean:   clean,
		Tables:  map[string][]vector.Wire{},
		Streams: map[string]ckptStream{},
		Queries: map[string]ckptQuery{},
	}
	d.mu.Lock()
	img.DDL = append([]string(nil), d.ddl...)
	d.mu.Unlock()

	e.mu.Lock()
	tables := make(map[string]*storage.Table, len(e.tables))
	for k, t := range e.tables {
		tables[k] = t
	}
	streams := make(map[string]*stream, len(e.streams))
	for k, s := range e.streams {
		streams[k] = s
	}
	queries := make(map[string]*Query, len(e.queries))
	for k, q := range e.queries {
		queries[k] = q
	}
	ingested := make(map[string]int64, len(streams))
	for k, s := range streams {
		ingested[k] = s.ingested
	}
	e.mu.Unlock()

	for name, tbl := range tables {
		view := tbl.Snapshot()
		cols := make([]vector.Wire, view.NumCols())
		for i := range cols {
			cols[i] = view.Column(i).Wire()
		}
		img.Tables[name] = cols
	}
	for name, s := range streams {
		cs := ckptStream{Ingested: ingested[name], Primary: captureBasket(s.primary)}
		for _, sh := range s.shards {
			cs.Shards = append(cs.Shards, captureBasket(sh))
		}
		img.Streams[name] = cs
	}
	for name, q := range queries {
		if !q.durable {
			continue
		}
		cq := ckptQuery{Out: captureBasket(q.out)}
		if q.sub != nil {
			cq.Delivered = q.sub.em.Delivered()
		}
		for _, r := range q.replicas {
			cq.Replicas = append(cq.Replicas, captureBasket(r))
		}
		for _, so := range q.shardOuts {
			cq.ShardOuts = append(cq.ShardOuts, captureBasket(so))
		}
		for _, t := range q.tails {
			cq.Tails = append(cq.Tails, t.CaptureState())
		}
		for _, f := range q.facts {
			cq.Facts = append(cq.Facts, f.CaptureState())
		}
		if wm, ok := q.merge.(*partition.WindowedMerge); ok {
			cq.Merge = wm.Snapshot()
		}
		img.Queries[name] = cq
	}
	return img
}

// restoreImage loads a checkpoint image into a freshly journal-replayed
// engine. Any shape mismatch between the image and the rebuilt catalog
// is reported as ErrCheckpointMismatch.
func (e *Engine) restoreImage(img *ckptImage) error {
	mismatch := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrCheckpointMismatch, fmt.Sprintf(format, args...))
	}
	for name, cols := range img.Tables {
		e.mu.Lock()
		tbl := e.tables[name]
		e.mu.Unlock()
		if tbl == nil {
			return mismatch("table %q in image but not in journal", name)
		}
		vs := vector.ColumnsFromWire(cols)
		if len(vs) > 0 && vs[0].Len() > 0 {
			if err := tbl.AppendBatch(vs); err != nil {
				return mismatch("table %q: %v", name, err)
			}
		}
	}
	for name, cs := range img.Streams {
		e.mu.Lock()
		s := e.streams[name]
		e.mu.Unlock()
		if s == nil {
			return mismatch("stream %q in image but not in journal", name)
		}
		e.mu.Lock()
		s.ingested = cs.Ingested
		e.mu.Unlock()
		if err := restoreBasket(s.primary, cs.Primary); err != nil {
			return mismatch("stream %q: %v", name, err)
		}
		if len(cs.Shards) != len(s.shards) {
			return mismatch("stream %q has %d shards, image has %d", name, len(s.shards), len(cs.Shards))
		}
		for i, sh := range cs.Shards {
			if err := restoreBasket(s.shards[i], sh); err != nil {
				return mismatch("stream %q shard %d: %v", name, i, err)
			}
		}
	}
	for name, cq := range img.Queries {
		e.mu.Lock()
		q := e.queries[name]
		e.mu.Unlock()
		if q == nil {
			return mismatch("query %q in image but not in journal", name)
		}
		if err := q.restoreState(&cq); err != nil {
			return mismatch("query %q: %v", name, err)
		}
	}
	return nil
}

// restoreState loads one query's captured operator state.
func (q *Query) restoreState(st *ckptQuery) error {
	if err := restoreBasket(q.out, st.Out); err != nil {
		return err
	}
	if len(st.Replicas) != len(q.replicas) {
		return fmt.Errorf("%d replicas, image has %d", len(q.replicas), len(st.Replicas))
	}
	for i, r := range st.Replicas {
		if err := restoreBasket(q.replicas[i], r); err != nil {
			return err
		}
	}
	if len(st.ShardOuts) != len(q.shardOuts) {
		return fmt.Errorf("%d shard outputs, image has %d", len(q.shardOuts), len(st.ShardOuts))
	}
	for i, so := range st.ShardOuts {
		if err := restoreBasket(q.shardOuts[i], so); err != nil {
			return err
		}
	}
	if len(st.Tails) != len(q.tails) {
		return fmt.Errorf("%d shard tails, image has %d", len(q.tails), len(st.Tails))
	}
	for i, ti := range st.Tails {
		if err := q.tails[i].RestoreState(ti); err != nil {
			return err
		}
	}
	if len(st.Facts) != len(q.facts) {
		return fmt.Errorf("%d factories, image has %d", len(q.facts), len(st.Facts))
	}
	for i, fs := range st.Facts {
		if fs == nil {
			continue
		}
		if err := q.facts[i].RestoreState(fs); err != nil {
			return err
		}
	}
	if st.Merge != nil {
		wm, ok := q.merge.(*partition.WindowedMerge)
		if !ok {
			return fmt.Errorf("image has windowed-merge state but query has none")
		}
		if err := wm.Restore(st.Merge); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint captures a consistent snapshot of all durable state,
// installs it atomically, and prunes the WAL prefix it covers. The
// background ticker calls this on the configured cadence; explicit
// calls are safe any time the engine is not stopped.
func (e *Engine) Checkpoint(ctx context.Context) error {
	if e.dur == nil {
		return ErrNotDurable
	}
	if err := e.guard(ctx); err != nil {
		return err
	}
	return e.checkpoint(false)
}

func (e *Engine) checkpoint(clean bool) error {
	d := e.dur
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	if e.obs != nil {
		start := time.Now()
		defer func() {
			e.obs.checkpoints.Inc()
			e.obs.checkpointNS.Observe(time.Since(start).Nanoseconds())
		}()
	}

	e.gate.Lock()
	img := e.captureImage(clean)
	e.gate.Unlock()

	// Everything the image covers must be durable before the image
	// claims it: records <= WALSeq were appended before the capture.
	if err := d.wal.Sync(); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		return err
	}
	if err := checkpoint.Write(d.ckptDir(), img.WALSeq, buf.Bytes()); err != nil {
		return err
	}
	d.mu.Lock()
	d.lastCkptSeq = img.WALSeq
	d.lastCkptTime = time.Now()
	d.mu.Unlock()
	if err := d.wal.Prune(img.WALSeq); err != nil {
		return err
	}
	return checkpoint.Prune(d.ckptDir(), keepCheckpoints)
}

// initDurability opens the WAL, loads the newest covered checkpoint,
// replays the DDL journal and the WAL tail, and arms delivery
// suppression — the whole crash-recovery path. Called by Open before
// the engine is visible to any other goroutine.
func (e *Engine) initDurability(cfg Config) error {
	wopts := wal.Options{SegmentBytes: cfg.WALSegmentBytes}
	if e.obs != nil {
		wopts.OnSync = func(d time.Duration) {
			e.obs.walFsyncs.Inc()
			e.obs.walFsyncNS.Observe(d.Nanoseconds())
		}
	}
	w, err := wal.Open(filepath.Join(cfg.DataDir, walSubdir), wopts)
	if err != nil {
		return err
	}
	every := cfg.CheckpointInterval
	if every == 0 {
		every = defaultCheckpointInterval
	}
	e.dur = &durability{
		dir:       cfg.DataDir,
		wal:       w,
		ckptEvery: every,
		delivered: map[string]int64{},
	}
	if err := e.recoverDurable(); err != nil {
		_ = w.Close()
		e.dur = nil
		return err
	}
	return nil
}

// recoverDurable rebuilds engine state from the checkpoint + WAL tail.
func (e *Engine) recoverDurable() error {
	d := e.dur
	durable := d.wal.DurableSeq()
	seq, payload, err := checkpoint.Latest(d.ckptDir(), durable)
	if err != nil {
		return err
	}
	d.noWAL = true
	defer func() { d.noWAL = false; d.noJournal = false }()

	var img *ckptImage
	if payload != nil {
		img = &ckptImage{}
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(img); err != nil {
			return fmt.Errorf("%w: checkpoint %d undecodable: %v", ErrCheckpointMismatch, seq, err)
		}
		// Rebuild the catalog from the journal, then load operator state.
		d.mu.Lock()
		d.ddl = append([]string(nil), img.DDL...)
		d.mu.Unlock()
		d.noJournal = true
		for _, stmt := range img.DDL {
			if _, err := e.Exec(context.Background(), stmt); err != nil {
				return fmt.Errorf("datacell: recovery: journal statement %q: %w", stmt, err)
			}
		}
		d.noJournal = false
		if err := e.restoreImage(img); err != nil {
			return err
		}
		d.mu.Lock()
		d.lastCkptSeq = img.WALSeq
		d.lastCkptTime = time.Now()
		d.mu.Unlock()
	}

	base := int64(0)
	if img != nil {
		base = img.WALSeq
	}
	frontiers := map[string]int64{}
	if img != nil && img.Clean && img.WALSeq == durable {
		// Clean shutdown: the final checkpoint covers the whole log.
		d.recoveredClean = true
	} else {
		n := int64(0)
		err := d.wal.Replay(base+1, func(_ int64, p []byte) error {
			rec, err := decodeRecord(p)
			if err != nil {
				return err
			}
			n++
			switch rec.Kind {
			case recStmt:
				if _, err := e.Exec(context.Background(), rec.Stmt); err != nil {
					return fmt.Errorf("datacell: recovery: replaying %q: %w", rec.Stmt, err)
				}
			case recIngest:
				s, err := e.lookupStream(rec.Stream)
				if err != nil {
					return fmt.Errorf("datacell: recovery: %w", err)
				}
				cols := vector.ColumnsFromWire(rec.Cols)
				rows := 0
				if len(cols) > 0 {
					rows = cols[0].Len()
				}
				if err := e.fanout(s, rows, cols); err != nil {
					return fmt.Errorf("datacell: recovery: replaying ingest into %q: %w", rec.Stream, err)
				}
			case recFrontier:
				key := strings.ToLower(rec.Query)
				if rec.Count > frontiers[key] {
					frontiers[key] = rec.Count
				}
			default:
				return fmt.Errorf("%w: unknown record kind %q", ErrCorruptWAL, rec.Kind)
			}
			return nil
		})
		if err != nil {
			return err
		}
		d.recoveredRecords = n
	}

	// Arm exactly-once resumption: each durable query's emitter restarts
	// at the checkpointed delivery count and suppresses re-emission up to
	// the highest logged frontier.
	for _, q := range e.Queries() {
		if !q.durable || q.sub == nil {
			continue
		}
		key := strings.ToLower(q.Name)
		var d0 int64
		if img != nil {
			if cq, ok := img.Queries[key]; ok {
				d0 = cq.Delivered
			}
		}
		front := max(frontiers[key], d0)
		q.sub.em.SetDelivered(d0)
		q.sub.em.SetSuppress(front - d0)
		d.delivered[key] = front
	}
	return nil
}

// checkpointLoop is the background checkpointer, launched by Start and
// stopped with the flush ticker. The cadence is re-read every round so
// a query's checkpoint_interval option can tighten it after Start.
func (e *Engine) checkpointLoop(stop chan struct{}) {
	d := e.dur
	for {
		d.mu.Lock()
		every := d.ckptEvery
		d.mu.Unlock()
		if every <= 0 {
			// Disabled: only Stop's final checkpoint runs.
			<-stop
			return
		}
		t := time.NewTimer(every)
		select {
		case <-stop:
			t.Stop()
			return
		case <-t.C:
			_ = e.checkpoint(false)
		}
	}
}

// EngineStats reports the engine's durability posture and the
// scheduler's activity counters.
type EngineStats struct {
	// Scheduler snapshots the execution core: per-transition fired /
	// claim-miss / coalesced-wake counters and per-worker busy/idle
	// time. Populated on every engine, durable or not.
	Scheduler scheduler.Stats
	// Durable reports whether the engine was opened with a DataDir.
	Durable bool
	// WALSegments and WALBytes size the live log; WALLastSeq is the last
	// appended record.
	WALSegments int
	WALBytes    int64
	WALLastSeq  int64
	// CheckpointSeq is the WAL sequence the newest checkpoint covers;
	// LastCheckpoint is when it was written (zero before the first).
	CheckpointSeq  int64
	LastCheckpoint time.Time
	// RecoveredRecords counts WAL records replayed by the last Open;
	// CleanStart reports that the replay was skipped because the final
	// clean-shutdown checkpoint covered the whole log.
	RecoveredRecords int64
	CleanStart       bool
}

// durSnapshot is one consistent cut through the durability state: the
// WAL's physical stats and the checkpoint bookkeeping are captured under
// a single d.mu hold, so no reader can pair a fresh log sequence with a
// stale checkpoint sequence (or vice versa). Every read-side consumer —
// Engine.Stats, SHOW QUERIES, Query.Checkpoint, the metrics collectors —
// goes through this one accessor.
type durSnapshot struct {
	durable          bool
	wal              wal.Stats
	ckptSeq          int64
	ckptTime         time.Time
	recoveredRecords int64
	recoveredClean   bool
}

// snapshot captures a consistent durability cut. Safe on a nil receiver
// (non-durable engine): all fields stay zero.
func (d *durability) snapshot() durSnapshot {
	if d == nil {
		return durSnapshot{}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	// Lock order d.mu → wal's internal mutex; the WAL never calls back
	// into durability, so the order cannot invert.
	return durSnapshot{
		durable:          true,
		wal:              d.wal.Stats(),
		ckptSeq:          d.lastCkptSeq,
		ckptTime:         d.lastCkptTime,
		recoveredRecords: d.recoveredRecords,
		recoveredClean:   d.recoveredClean,
	}
}

// replayLag is the number of WAL records past the snapshot's checkpoint.
func (s durSnapshot) replayLag() int64 {
	return max(s.wal.LastSeq-s.ckptSeq, 0)
}

// Stats returns the engine statistics. The durability fields are all
// zero on a non-durable engine.
func (e *Engine) Stats() EngineStats {
	snap := e.dur.snapshot()
	return EngineStats{
		Scheduler:        e.sched.Stats(),
		Durable:          snap.durable,
		WALSegments:      snap.wal.Segments,
		WALBytes:         snap.wal.Bytes,
		WALLastSeq:       snap.wal.LastSeq,
		CheckpointSeq:    snap.ckptSeq,
		LastCheckpoint:   snap.ckptTime,
		RecoveredRecords: snap.recoveredRecords,
		CleanStart:       snap.recoveredClean,
	}
}

// replayLag returns the number of WAL records past the last checkpoint
// (0 on a non-durable engine).
func (e *Engine) replayLag() int64 {
	return e.dur.snapshot().replayLag()
}

// lastCheckpointTime returns when the newest checkpoint was written
// (zero time when none, or on a non-durable engine).
func (e *Engine) lastCheckpointTime() time.Time {
	return e.dur.snapshot().ckptTime
}
