package datacell

// Engine-level coverage of the chunked basket storage: SHOW BASKETS
// layout introspection, multi-chunk scans through the SQL path, and the
// -race stress for snapshots under concurrent ingest + firing.

import (
	"context"
	"sync"
	"testing"

	"repro/internal/vector"
)

// TestShowBasketsChunkStats checks the extended SHOW BASKETS columns:
// resident tuples, chunk count, and the cumulative dropped/shed counters
// surfaced from the chunked storage layer.
func TestShowBasketsChunkStats(t *testing.T) {
	e, _ := newEngine(t)
	ctx := context.Background()
	q, err := e.RegisterContinuous("q",
		"SELECT * FROM [SELECT * FROM R] AS x WHERE x.a >= 0",
		WithStrategy(SharedBaskets), WithSQLPolling())
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Stream("R")
	if err != nil {
		t.Fatal(err)
	}
	b.SetChunkTarget(4)
	for i := int64(0); i < 10; i++ {
		ingestPairs(t, e, "R", [][2]int64{{i, i}})
	}
	e.Drain()
	if got := q.Stats().TuplesIn; got != 10 {
		t.Fatalf("consumed %d tuples", got)
	}

	rel, err := e.Exec(ctx, "SHOW BASKETS")
	if err != nil {
		t.Fatal(err)
	}
	wantCols := []string{"name", "shard", "tuples", "chunks", "dropped", "shed"}
	for i, w := range wantCols {
		if rel.Schema.Columns[i].Name != w {
			t.Fatalf("SHOW BASKETS column %d = %s, want %s", i, rel.Schema.Columns[i].Name, w)
		}
	}
	stats := map[string][]int64{}
	for i := 0; i < rel.NumRows(); i++ {
		row := rel.Row(i)
		if !row[1].Null {
			t.Errorf("%s: unsharded basket has shard = %v", row[0].S, row[1])
		}
		stats[row[0].S] = []int64{row[2].I, row[3].I, row[4].I, row[5].I}
	}
	// The shared input basket was fully consumed: nothing resident, all 10
	// dropped, none shed.
	r := stats["R"]
	if r == nil || r[0] != 0 || r[2] != 10 || r[3] != 0 {
		t.Errorf("R stats = %v, want tuples=0 dropped=10 shed=0", r)
	}
	// The polling output basket retains the 10 results.
	out := stats["q_out"]
	if out == nil || out[0] != 10 || out[1] < 1 {
		t.Errorf("q_out stats = %v, want tuples=10 chunks>=1", out)
	}
}

// TestMultiChunkScanThroughSQL pushes a stream across many sealed chunks
// and checks that a continuous filter still sees every tuple exactly
// once, in order.
func TestMultiChunkScanThroughSQL(t *testing.T) {
	e, _ := newEngine(t)
	q, err := e.RegisterContinuous("q",
		"SELECT * FROM [SELECT * FROM R] AS x WHERE x.a % 2 = 0",
		WithStrategy(SharedBaskets))
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Stream("R")
	if err != nil {
		t.Fatal(err)
	}
	b.SetChunkTarget(3)
	// One big batch spanning several chunks, no firing in between.
	rows := make([][]vector.Value, 20)
	for i := range rows {
		rows[i] = []vector.Value{vector.NewInt(int64(i)), vector.NewInt(0)}
	}
	if err := e.Ingest(context.Background(), "R", rows); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	var got []int64
	for _, rel := range collect(q) {
		for i := 0; i < rel.NumRows(); i++ {
			got = append(got, rel.Row(i)[0].I)
		}
	}
	if len(got) != 10 {
		t.Fatalf("matched %d tuples: %v", len(got), got)
	}
	for i, v := range got {
		if v != int64(2*i) {
			t.Fatalf("result %d = %d, want %d", i, v, 2*i)
		}
	}
}

// TestConcurrentIngestAndFiringStress is the engine-level -race stress:
// several ingesters feed a stream while the concurrent scheduler fires a
// consuming query and a one-time SELECT repeatedly snapshots the output
// basket. Totals must balance exactly.
func TestConcurrentIngestAndFiringStress(t *testing.T) {
	e := New(Config{Workers: 4})
	ctx := context.Background()
	if _, err := e.Exec(ctx, "CREATE BASKET s (v INT)"); err != nil {
		t.Fatal(err)
	}
	q, err := e.RegisterContinuous("q", "SELECT * FROM [SELECT * FROM s] AS x",
		WithSQLPolling())
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Stream("s")
	if err != nil {
		t.Fatal(err)
	}
	b.SetChunkTarget(8)
	if err := e.Start(ctx); err != nil {
		t.Fatal(err)
	}

	const (
		writers = 4
		each    = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				rows := [][]vector.Value{{vector.NewInt(int64(w*each + i))}}
				if err := e.Ingest(ctx, "s", rows); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Snapshot readers racing the firings.
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := e.Exec(ctx, "SELECT COUNT(*) AS n FROM q_out"); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for q.Stats().TuplesIn < writers*each {
			e.Drain()
		}
	}()
	<-done
	close(stop)
	wg.Wait()
	if err := e.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if got := q.Stats().TuplesIn; got != writers*each {
		t.Fatalf("consumed %d tuples, want %d", got, writers*each)
	}
	if got := q.Stats().TuplesOut; got != writers*each {
		t.Fatalf("emitted %d tuples, want %d", got, writers*each)
	}
}
