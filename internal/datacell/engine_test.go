package datacell

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/vector"
	"repro/internal/window"
)

func newEngine(t *testing.T) (*Engine, *metrics.ManualClock) {
	t.Helper()
	clk := metrics.NewManualClock(1_000_000)
	e := New(Config{Clock: clk})
	if _, err := e.Exec(context.Background(), "CREATE BASKET R (a INT, b INT)"); err != nil {
		t.Fatal(err)
	}
	return e, clk
}

func ingestPairs(t *testing.T, e *Engine, stream string, pairs [][2]int64) {
	t.Helper()
	rows := make([][]vector.Value, len(pairs))
	for i, p := range pairs {
		rows[i] = []vector.Value{vector.NewInt(p[0]), vector.NewInt(p[1])}
	}
	if err := e.Ingest(context.Background(), stream, rows); err != nil {
		t.Fatal(err)
	}
}

func collect(q *Query) []*storage.Relation {
	var out []*storage.Relation
	for {
		select {
		case rel := <-q.Subscription().C():
			out = append(out, rel)
		default:
			return out
		}
	}
}

func countRows(rels []*storage.Relation) int {
	n := 0
	for _, r := range rels {
		n += r.NumRows()
	}
	return n
}

func TestDDLAndOneTimeQuery(t *testing.T) {
	e, _ := newEngine(t)
	if _, err := e.Exec(context.Background(), "CREATE TABLE static (k INT, v VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(context.Background(), "INSERT INTO static VALUES (1, 'one'), (2, 'two')"); err != nil {
		t.Fatal(err)
	}
	rel, err := e.Exec(context.Background(), "SELECT v FROM static WHERE k = 2")
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 1 || rel.Cols[0].Get(0).S != "two" {
		t.Errorf("result = %v", rel)
	}
}

func TestInsertIntoBasketRoutesAsIngest(t *testing.T) {
	e, _ := newEngine(t)
	if _, err := e.Exec(context.Background(), "INSERT INTO R VALUES (1, 10), (2, 20)"); err != nil {
		t.Fatal(err)
	}
	if e.Ingested("R") != 2 {
		t.Errorf("ingested = %d", e.Ingested("R"))
	}
	rel, err := e.Exec(context.Background(), "SELECT a FROM R WHERE b >= 20")
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 1 {
		t.Errorf("rows = %d", rel.NumRows())
	}
}

func TestInsertLiteralCoercion(t *testing.T) {
	e, _ := newEngine(t)
	if _, err := e.Exec(context.Background(), "CREATE TABLE m (f DOUBLE, i INT, ts TIMESTAMP)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(context.Background(), "INSERT INTO m VALUES (1, 2.0, 3)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(context.Background(), "INSERT INTO m VALUES (-1.5, -2, NULL)"); err != nil {
		t.Fatal(err)
	}
	rel, _ := e.Exec(context.Background(), "SELECT f, i, ts FROM m ORDER BY f")
	if rel.Cols[0].Get(0).F != -1.5 || rel.Cols[1].Get(0).I != -2 || !rel.Cols[2].Get(0).Null {
		t.Errorf("row0 = %v", rel.Row(0))
	}
	if _, err := e.Exec(context.Background(), "INSERT INTO m VALUES ('x', 1, 1)"); err == nil {
		t.Error("string into double should fail")
	}
}

func TestExecErrors(t *testing.T) {
	e, _ := newEngine(t)
	for _, q := range []string{
		"SELECT * FROM [SELECT * FROM R] AS S", // continuous via Exec
		"INSERT INTO nosuch VALUES (1)",        // unknown target
		"INSERT INTO R VALUES (1)",             // arity
		"INSERT INTO R VALUES (1+1, 2)",        // non-literal
		"CREATE BASKET R (a INT, b INT)",       // duplicate
		"DROP TABLE nosuch",                    // unknown drop
	} {
		if _, err := e.Exec(context.Background(), q); err == nil {
			t.Errorf("Exec(%q) should fail", q)
		}
	}
}

// The paper's q1: consume everything, filter in the outer query.
func TestContinuousQ1SeparateStrategy(t *testing.T) {
	e, _ := newEngine(t)
	q, err := e.RegisterContinuous("q1",
		"SELECT * FROM [SELECT * FROM R] AS S WHERE S.a > 10")
	if err != nil {
		t.Fatal(err)
	}
	ingestPairs(t, e, "R", [][2]int64{{5, 1}, {15, 2}, {25, 3}})
	e.Drain()
	rels := collect(q)
	if countRows(rels) != 2 {
		t.Fatalf("results = %d rows", countRows(rels))
	}
	// The private input basket is fully consumed.
	if q.InputBacklog() != 0 {
		t.Errorf("replica len = %d", q.InputBacklog())
	}
	// New batch flows incrementally, no duplicates.
	ingestPairs(t, e, "R", [][2]int64{{50, 4}})
	e.Drain()
	rels = collect(q)
	if countRows(rels) != 1 {
		t.Errorf("second batch rows = %d", countRows(rels))
	}
	st := q.Stats()
	if st.TuplesIn != 4 || st.TuplesOut != 3 {
		t.Errorf("stats = %+v", st)
	}
}

// The paper's q2: predicate window — only tuples inside the window are
// consumed; others stay in the basket.
func TestContinuousQ2PredicateWindow(t *testing.T) {
	e, _ := newEngine(t)
	q, err := e.RegisterContinuous("q2",
		"SELECT * FROM [SELECT * FROM R WHERE b < 100] AS S WHERE S.a > 10")
	if err != nil {
		t.Fatal(err)
	}
	ingestPairs(t, e, "R", [][2]int64{
		{20, 50},  // in window, matches outer
		{5, 60},   // in window, fails outer (still consumed)
		{30, 500}, // outside window: retained
	})
	e.Drain()
	rels := collect(q)
	if countRows(rels) != 1 {
		t.Fatalf("results = %d", countRows(rels))
	}
	if q.InputBacklog() != 1 {
		t.Errorf("retained = %d, want 1 (the out-of-window tuple)", q.InputBacklog())
	}
}

func TestSharedStrategyTwoQueries(t *testing.T) {
	e, _ := newEngine(t)
	qa, err := e.RegisterContinuous("qa",
		"SELECT * FROM [SELECT * FROM R] AS S WHERE S.a > 10", WithStrategy(SharedBaskets))
	if err != nil {
		t.Fatal(err)
	}
	qb, err := e.RegisterContinuous("qb",
		"SELECT * FROM [SELECT * FROM R] AS S WHERE S.a <= 10", WithStrategy(SharedBaskets))
	if err != nil {
		t.Fatal(err)
	}
	primary, _ := e.Stream("R")
	if primary.Readers() != 2 {
		t.Fatalf("readers = %d", primary.Readers())
	}
	ingestPairs(t, e, "R", [][2]int64{{5, 1}, {15, 2}, {25, 3}, {8, 4}})
	e.Drain()
	if got := countRows(collect(qa)); got != 2 {
		t.Errorf("qa rows = %d", got)
	}
	if got := countRows(collect(qb)); got != 2 {
		t.Errorf("qb rows = %d", got)
	}
	// Both saw everything once; the shared basket is compacted.
	if primary.Len() != 0 {
		t.Errorf("shared basket len = %d", primary.Len())
	}
	// No duplicates on the next batch.
	ingestPairs(t, e, "R", [][2]int64{{11, 9}})
	e.Drain()
	if got := countRows(collect(qa)); got != 1 {
		t.Errorf("qa second batch = %d", got)
	}
	if got := countRows(collect(qb)); got != 0 {
		t.Errorf("qb second batch = %d", got)
	}
}

func TestSeparateAndSharedCoexist(t *testing.T) {
	e, _ := newEngine(t)
	qSep, _ := e.RegisterContinuous("sep",
		"SELECT * FROM [SELECT * FROM R] AS S", WithStrategy(SeparateBaskets))
	qSh, _ := e.RegisterContinuous("sh",
		"SELECT * FROM [SELECT * FROM R] AS S", WithStrategy(SharedBaskets))
	ingestPairs(t, e, "R", [][2]int64{{1, 1}, {2, 2}})
	e.Drain()
	if got := countRows(collect(qSep)); got != 2 {
		t.Errorf("separate rows = %d", got)
	}
	if got := countRows(collect(qSh)); got != 2 {
		t.Errorf("shared rows = %d", got)
	}
}

func TestResultBasketQueryableViaSQL(t *testing.T) {
	e, _ := newEngine(t)
	_, err := e.RegisterContinuous("q",
		"SELECT S.a AS a, S.b AS b FROM [SELECT * FROM R] AS S WHERE S.a > 0",
		WithSQLPolling())
	if err != nil {
		t.Fatal(err)
	}
	ingestPairs(t, e, "R", [][2]int64{{7, 70}})
	e.Drain()
	// Consume results via one-time SQL over the output basket.
	rel, err := e.Exec(context.Background(), "SELECT a, b FROM q_out")
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 1 || rel.Cols[1].Get(0).I != 70 {
		t.Errorf("q_out = %v", rel)
	}
}

func TestContinuousAggregate(t *testing.T) {
	e, _ := newEngine(t)
	q, err := e.RegisterContinuous("agg",
		"SELECT COUNT(*) AS n, SUM(S.b) AS total FROM [SELECT * FROM R] AS S",
		WithMinTuples(3))
	if err != nil {
		t.Fatal(err)
	}
	ingestPairs(t, e, "R", [][2]int64{{1, 10}, {2, 20}})
	e.Drain()
	if len(collect(q)) != 0 {
		t.Fatal("fired below min-tuples threshold")
	}
	ingestPairs(t, e, "R", [][2]int64{{3, 30}})
	e.Drain()
	rels := collect(q)
	if len(rels) != 1 {
		t.Fatalf("batches = %d", len(rels))
	}
	if rels[0].Cols[0].Get(0).I != 3 || rels[0].Cols[1].Get(0).I != 60 {
		t.Errorf("agg = %v", rels[0].Row(0))
	}
}

func TestWindowedContinuousQuery(t *testing.T) {
	e, _ := newEngine(t)
	q, err := e.RegisterContinuous("w",
		"SELECT SUM(S.b) AS total FROM [SELECT * FROM R] AS S WINDOW ROWS 4 SLIDE 4")
	if err != nil {
		t.Fatal(err)
	}
	if q.Stats().Firings != 0 {
		t.Fatal("no firings yet")
	}
	ingestPairs(t, e, "R", [][2]int64{{1, 1}, {2, 2}, {3, 3}})
	e.Drain()
	if len(collect(q)) != 0 {
		t.Fatal("window emitted early")
	}
	ingestPairs(t, e, "R", [][2]int64{{4, 4}, {5, 5}})
	e.Drain()
	rels := collect(q)
	if len(rels) != 1 {
		t.Fatalf("windows = %d", len(rels))
	}
	if rels[0].Cols[0].Get(0).I != 10 {
		t.Errorf("window sum = %v", rels[0].Row(0))
	}
}

func TestWindowedTimeFlush(t *testing.T) {
	e, clk := newEngine(t)
	q, err := e.RegisterContinuous("tw",
		"SELECT COUNT(*) AS n FROM [SELECT * FROM R] AS S WINDOW RANGE 1000 SLIDE 1000",
		WithWindowMode(window.Incremental))
	if err != nil {
		t.Fatal(err)
	}
	ingestPairs(t, e, "R", [][2]int64{{1, 1}, {2, 2}})
	e.Drain()
	if len(collect(q)) != 0 {
		t.Fatal("window emitted before time passed")
	}
	clk.Advance(5000)
	if err := e.FlushWindows(); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	rels := collect(q)
	if len(rels) != 1 || rels[0].Cols[0].Get(0).I != 2 {
		t.Fatalf("flush results = %v", rels)
	}
}

func TestWindowModeForcedIncompatible(t *testing.T) {
	e, _ := newEngine(t)
	// Non-aggregate query cannot run incrementally.
	_, err := e.RegisterContinuous("bad",
		"SELECT * FROM [SELECT * FROM R] AS S WINDOW ROWS 4",
		WithWindowMode(window.Incremental))
	if err == nil {
		t.Error("forcing incremental on non-aggregate plan should fail")
	}
}

func TestCascadeStrategy(t *testing.T) {
	e, _ := newEngine(t)
	c, err := e.RegisterCascade("casc", "R", []CascadePredicate{
		{Attr: "a", Lo: vector.NewInt(0), Hi: vector.NewInt(10)},
		{Attr: "a", Lo: vector.NewInt(10), Hi: vector.NewInt(20)},
		{Attr: "a", Lo: vector.NewInt(20), Hi: vector.NewInt(30)},
	})
	if err != nil {
		t.Fatal(err)
	}
	var rows [][2]int64
	for i := int64(0); i < 30; i++ {
		rows = append(rows, [2]int64{i, i * 10})
	}
	ingestPairs(t, e, "R", rows)
	e.Drain()
	for i := 0; i < 3; i++ {
		got := 0
		for {
			select {
			case rel := <-c.Subscription(i).C():
				got += rel.NumRows()
			default:
				goto done
			}
		}
	done:
		if got != 10 {
			t.Errorf("stage %d rows = %d, want 10", i, got)
		}
	}
	// Work reduction: stage 0 saw 30, stage 1 saw 20, stage 2 saw 10.
	if c.Processed(0) != 30 || c.Processed(1) != 20 || c.Processed(2) != 10 {
		t.Errorf("processed = %d %d %d", c.Processed(0), c.Processed(1), c.Processed(2))
	}
	if _, err := e.CascadeByName("casc"); err != nil {
		t.Error(err)
	}
}

func TestCascadeErrors(t *testing.T) {
	e, _ := newEngine(t)
	if _, err := e.RegisterCascade("c", "nosuch", []CascadePredicate{{Attr: "a"}}); err == nil {
		t.Error("unknown stream should fail")
	}
	if _, err := e.RegisterCascade("c", "R", nil); err == nil {
		t.Error("empty cascade should fail")
	}
	if _, err := e.RegisterCascade("c", "R", []CascadePredicate{{Attr: "zzz"}}); err == nil {
		t.Error("unknown attribute should fail")
	}
}

func TestUnregisterContinuous(t *testing.T) {
	e, _ := newEngine(t)
	_, err := e.RegisterContinuous("tmp", "SELECT * FROM [SELECT * FROM R] AS S")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.UnregisterContinuous("tmp"); err != nil {
		t.Fatal(err)
	}
	if err := e.UnregisterContinuous("tmp"); err == nil {
		t.Error("double unregister should fail")
	}
	// Replicas are detached: ingest doesn't fail and nothing leaks.
	ingestPairs(t, e, "R", [][2]int64{{1, 1}})
	if _, err := e.Exec(context.Background(), "SELECT * FROM tmp_out"); err == nil {
		t.Error("output basket should be dropped")
	}
}

func TestRegisterErrors(t *testing.T) {
	e, _ := newEngine(t)
	if _, err := e.RegisterContinuous("x", "SELECT a FROM R"); err == nil {
		t.Error("non-continuous query should be rejected")
	}
	if _, err := e.RegisterContinuous("x", "SELECT * FROM [SELECT * FROM nosuch] AS S"); err == nil {
		t.Error("unknown stream should fail")
	}
	_, _ = e.RegisterContinuous("dup", "SELECT * FROM [SELECT * FROM R] AS S")
	if _, err := e.RegisterContinuous("dup", "SELECT * FROM [SELECT * FROM R] AS S"); err == nil {
		t.Error("duplicate name should fail")
	}
}

func TestConcurrentModeEndToEnd(t *testing.T) {
	e := New(Config{Workers: 4}) // wall clock for realistic latency
	if err := e.CreateStream("s", catalog.NewSchema(
		catalog.Column{Name: "v", Type: vector.Int64})); err != nil {
		t.Fatal(err)
	}
	q, err := e.RegisterContinuous("big",
		"SELECT * FROM [SELECT * FROM s] AS S WHERE S.v % 2 = 0",
		WithStrategy(SharedBaskets), WithSubscriptionDepth(1024))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer e.Stop(context.Background())
	go func() {
		for i := int64(0); i < 2000; i += 100 {
			rows := make([][]vector.Value, 100)
			for j := range rows {
				rows[j] = []vector.Value{vector.NewInt(i + int64(j))}
			}
			_ = e.Ingest(context.Background(), "s", rows)
		}
	}()
	got := 0
	deadline := time.After(10 * time.Second)
	for got < 1000 {
		select {
		case rel := <-q.Subscription().C():
			got += rel.NumRows()
		case <-deadline:
			t.Fatalf("timeout: got %d of 1000", got)
		}
	}
	if got != 1000 {
		t.Errorf("evens = %d", got)
	}
}

func TestManyQueriesManyBatches(t *testing.T) {
	e, _ := newEngine(t)
	const nq = 8
	qs := make([]*Query, nq)
	for i := 0; i < nq; i++ {
		var err error
		qs[i], err = e.RegisterContinuous(fmt.Sprintf("q%d", i),
			fmt.Sprintf("SELECT * FROM [SELECT * FROM R] AS S WHERE S.a >= %d", i*10),
			WithStrategy(SharedBaskets))
		if err != nil {
			t.Fatal(err)
		}
	}
	var rows [][2]int64
	for i := int64(0); i < 80; i++ {
		rows = append(rows, [2]int64{i, 0})
	}
	ingestPairs(t, e, "R", rows)
	e.Drain()
	for i, q := range qs {
		want := 80 - i*10
		if got := countRows(collect(q)); got != want {
			t.Errorf("q%d rows = %d, want %d", i, got, want)
		}
	}
	primary, _ := e.Stream("R")
	if primary.Len() != 0 {
		t.Errorf("shared basket leak: %d", primary.Len())
	}
}
