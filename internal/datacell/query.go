package datacell

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/adapters"
	"repro/internal/basket"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/factory"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/plan"
	"repro/internal/scheduler"
	"repro/internal/sql"
	"repro/internal/vector"
	"repro/internal/window"
)

// mergeStage is the recombination transition of a partitioned query:
// the plain concat/re-aggregation Merge, or the window-aligned
// WindowedMerge for sharded time windows.
type mergeStage interface {
	scheduler.Transition
	Lag() int
}

// Query is a registered continuous query: one or more factories between
// an input arrangement (per strategy) and an output basket with a
// subscription emitter. On a partitioned stream a partitionable query
// runs as N shard pipelines (facts) whose emissions a merge transition
// recombines into the output basket; otherwise there is exactly one
// factory.
type Query struct {
	Name     string
	SQL      string
	Strategy Strategy

	streams   []string // the stream(s) the basket expressions read (two for a stream-stream join)
	facts     []*factory.Factory
	merge     mergeStage // nil when unpartitioned
	out       *basket.Basket
	shardIns  []*basket.Basket  // stream-owned shard baskets (partitioned only)
	shardOuts []*basket.Basket  // per-shard emission baskets (non-aligned windowed merges only)
	tails     []*partition.Tail // per-shard SPSC handoff rings (plain/aligned merges)
	unsubs    []func()          // basket listener detach hooks, run at unregister
	sub       *Subscription     // nil when the query polls via SQL
	replicas  []*basket.Basket  // separate strategy only (one per joined stream)
	routed    *routedQuery      // routed strategy only (shared-scan attachment)
	engine    *Engine
	durable   bool // state captured by checkpoints (durable engines only)

	// trace is the bounded ring of the query's last-K pipeline firings
	// (SHOW TRACE). Nil when the engine's metrics are disabled.
	trace *obs.TraceRing
}

// Subscription returns the query's result subscription, or nil when the
// query was registered for SQL polling (results then accumulate in the
// <name>_out basket until a one-time SELECT consumes them).
func (q *Query) Subscription() *Subscription { return q.sub }

// Out returns the query's output basket (queryable by one-time SQL under
// the name <query>_out).
func (q *Query) Out() *basket.Basket { return q.out }

// Stats returns the factory counters, summed across shard pipelines.
// Late additionally includes partials a windowed merge had to discard
// because their window was already merged (stragglers beyond the
// declared lateness). JoinState/JoinEvictions aggregate the streaming
// join state of all pipelines (0 for join-free queries).
func (q *Query) Stats() factory.Stats {
	if q.routed != nil {
		m := q.routed.member
		return factory.Stats{
			Firings:   m.firings.Load(),
			TuplesIn:  m.tuplesIn.Load(),
			TuplesOut: m.tuplesOut.Load(),
		}
	}
	var total factory.Stats
	for _, f := range q.facts {
		st := f.Stats()
		total.Firings += st.Firings
		total.TuplesIn += st.TuplesIn
		total.TuplesOut += st.TuplesOut
		total.Late += st.Late
		total.JoinState += st.JoinState
		total.JoinEvictions += st.JoinEvictions
	}
	if lm, ok := q.merge.(interface{ Late() int64 }); ok {
		total.Late += lm.Late()
	}
	return total
}

// JoinState returns the number of rows the query's streaming join
// currently retains across all shard pipelines: both hash sides of a
// stream-stream join, the materialized table of a stream-table join. 0
// for join-free queries.
func (q *Query) JoinState() int64 { return q.Stats().JoinState }

// JoinEvictions returns the cumulative number of join-state rows expired
// behind the watermark (WITHIN-bounded joins only).
func (q *Query) JoinEvictions() int64 { return q.Stats().JoinEvictions }

// LateTuples returns the number of tuples dropped as too late across the
// query's pipelines — arrivals behind an already-emitted window boundary
// (and, for partitioned windowed queries, shard partials that surfaced
// after their window was merged). 0 for unwindowed queries.
func (q *Query) LateTuples() int64 { return q.Stats().Late }

// Watermark returns the query's event-time watermark — the boundary up
// to which window content is final, the minimum across shard pipelines.
// ok is false for unwindowed queries and before any timestamp was seen.
func (q *Query) Watermark() (int64, bool) {
	wm := int64(math.MaxInt64)
	for _, f := range q.facts {
		v, vok := f.WindowWatermark()
		if !vok {
			return 0, false
		}
		if v < wm {
			wm = v
		}
	}
	return wm, len(q.facts) > 0
}

// Latency returns the per-batch latency histogram. Shard pipelines of a
// partitioned query share one histogram, so this is always the whole
// query's distribution.
func (q *Query) Latency() *obs.Histogram {
	if q.routed != nil {
		return q.routed.member.latency
	}
	return q.facts[0].Latency
}

// Shards returns the number of parallel shard pipelines executing the
// query (1 for an unpartitioned query).
func (q *Query) Shards() int {
	if q.routed != nil {
		return 1
	}
	return len(q.facts)
}

// Partitioned reports whether the query runs as shard pipelines with a
// merge transition.
func (q *Query) Partitioned() bool { return q.merge != nil }

// MergeLag returns the number of shard-emitted tuples not yet merged
// into the output basket (0 for unpartitioned queries).
func (q *Query) MergeLag() int {
	if q.merge == nil {
		return 0
	}
	return q.merge.Lag()
}

// Shed returns the number of tuples load shedding evicted from this
// query's private input basket(s).
func (q *Query) Shed() int64 {
	var n int64
	for _, r := range q.replicas {
		n += r.Shed()
	}
	return n
}

// InputBacklog returns the number of tuples currently buffered in the
// query's input arrangement: the private replica(s) under the separate
// strategy, the stream's shard baskets when partitioned, or the whole
// shared basket(s) otherwise. Retained predicate-window tuples show up
// here.
func (q *Query) InputBacklog() int {
	if len(q.replicas) > 0 {
		n := 0
		for _, r := range q.replicas {
			n += r.Len()
		}
		return n
	}
	if len(q.shardIns) > 0 {
		n := 0
		for _, b := range q.shardIns {
			n += b.Len()
		}
		return n
	}
	n := 0
	for _, name := range q.streams {
		if b, err := q.engine.Stream(name); err == nil {
			n += b.Len()
		}
	}
	return n
}

// QueryOption configures RegisterContinuous.
type QueryOption func(*queryConfig)

type queryConfig struct {
	strategy   Strategy
	minTuples  int
	windowMode window.Mode
	forceMode  bool
	subDepth   int
	priority   int
	shedAt     int
	policy     Backpressure
	lateness   int64  // out-of-order tolerance of WINDOW RANGE, ns
	tsCol      string // event-time column for WINDOW RANGE ("" = arrival ts)
	durable    bool   // include operator state in checkpoints (default true)
	ckptEvery  int64  // requested checkpoint cadence, ns (0 = engine default)
}

// WithStrategy selects the basket arrangement (default SeparateBaskets,
// the paper's first strategy).
func WithStrategy(s Strategy) QueryOption {
	return func(c *queryConfig) { c.strategy = s }
}

// WithMinTuples sets the factory's firing threshold.
func WithMinTuples(n int) QueryOption {
	return func(c *queryConfig) { c.minTuples = n }
}

// WithWindowMode pins the window evaluation strategy; without it, windowed
// queries use incremental evaluation when the plan shape allows and fall
// back to re-evaluation otherwise.
func WithWindowMode(m window.Mode) QueryOption {
	return func(c *queryConfig) { c.windowMode = m; c.forceMode = true }
}

// WithSubscriptionDepth sizes the result channel (default 64).
func WithSubscriptionDepth(n int) QueryOption {
	return func(c *queryConfig) { c.subDepth = n }
}

// WithSQLPolling disables the subscription emitter: results accumulate in
// the <name>_out basket until a one-time SELECT (or another continuous
// query) consumes them — the paper's network-of-queries usage, where one
// query's output basket is another's input.
func WithSQLPolling() QueryOption {
	return func(c *queryConfig) { c.subDepth = 0 }
}

// WithPriority schedules this query's factory ahead of lower-priority
// transitions (default 0) — the paper's "different query priorities".
func WithPriority(p int) QueryOption {
	return func(c *queryConfig) { c.priority = p }
}

// WithLoadShedding bounds the query's private input basket to n tuples:
// arrivals beyond it evict the oldest unprocessed tuples (the paper's
// load-shedding requirement under overload). Only meaningful with the
// separate-baskets strategy, where the query owns its basket.
func WithLoadShedding(n int) QueryOption {
	return func(c *queryConfig) { c.shedAt = n }
}

// WithBackpressure selects what the subscription does when its consumer
// falls behind (default BackpressureBlock).
func WithBackpressure(p Backpressure) QueryOption {
	return func(c *queryConfig) { c.policy = p }
}

// WithLateness sets the out-of-order tolerance of a time-based window
// (lateness = ...): the watermark trails the maximum seen timestamp by
// d, so tuples up to d behind the stream's progress still land in their
// windows; anything older is counted late and dropped.
func WithLateness(d time.Duration) QueryOption {
	return func(c *queryConfig) { c.lateness = d.Nanoseconds() }
}

// WithDurable includes or excludes the query's operator state from
// checkpoints (durable = true | false; default true). A non-durable
// query on a durable engine is re-created by DDL replay but restarts
// with empty state and no delivery suppression.
func WithDurable(durable bool) QueryOption {
	return func(c *queryConfig) { c.durable = durable }
}

// WithCheckpointInterval tightens the engine's background checkpoint
// cadence to at most d while this query is registered
// (checkpoint_interval = ...). Zero keeps the engine default.
func WithCheckpointInterval(d time.Duration) QueryOption {
	return func(c *queryConfig) { c.ckptEvery = d.Nanoseconds() }
}

// WithEventTimeColumn slices a time-based window by the named stream
// column (timestamp = ...) instead of the implicit arrival stamp. The
// column must be INT or TIMESTAMP. Event-time windows advance on data
// only: the wall clock never closes them.
func WithEventTimeColumn(col string) QueryOption {
	return func(c *queryConfig) { c.tsCol = col }
}

// optionsFromSpecs translates a DDL WITH (...) list into QueryOptions —
// the bridge that lets CREATE CONTINUOUS QUERY express everything the Go
// option API can.
func optionsFromSpecs(specs []sql.OptionSpec) ([]QueryOption, error) {
	var opts []QueryOption
	intOpt := func(s sql.OptionSpec, f func(int) QueryOption) error {
		n, err := strconv.Atoi(s.Val)
		if err != nil {
			return fmt.Errorf("%w: %s = %q wants an integer", ErrInvalidOption, s.Key, s.Val)
		}
		opts = append(opts, f(n))
		return nil
	}
	for _, s := range specs {
		key := strings.ToLower(s.Key)
		val := strings.ToLower(s.Val)
		switch key {
		case "strategy":
			switch val {
			case "separate":
				opts = append(opts, WithStrategy(SeparateBaskets))
			case "shared":
				opts = append(opts, WithStrategy(SharedBaskets))
			case "routed":
				opts = append(opts, WithStrategy(RoutedScan))
			default:
				return nil, fmt.Errorf("%w: strategy = %q (want separate, shared, or routed)", ErrInvalidOption, s.Val)
			}
		case "min_tuples":
			if err := intOpt(s, WithMinTuples); err != nil {
				return nil, err
			}
		case "window_mode":
			switch val {
			case "incremental":
				opts = append(opts, WithWindowMode(window.Incremental))
			case "reeval", "re_evaluate", "reevaluate":
				opts = append(opts, WithWindowMode(window.ReEvaluate))
			default:
				return nil, fmt.Errorf("%w: window_mode = %q (want incremental or reeval)", ErrInvalidOption, s.Val)
			}
		case "priority":
			if err := intOpt(s, WithPriority); err != nil {
				return nil, err
			}
		case "shed_limit":
			if err := intOpt(s, WithLoadShedding); err != nil {
				return nil, err
			}
		case "depth", "subscription_depth":
			if err := intOpt(s, WithSubscriptionDepth); err != nil {
				return nil, err
			}
		case "polling":
			switch val {
			case "true":
				opts = append(opts, WithSQLPolling())
			case "false":
			default:
				return nil, fmt.Errorf("%w: polling = %q (want true or false)", ErrInvalidOption, s.Val)
			}
		case "backpressure":
			switch val {
			case "block":
				opts = append(opts, WithBackpressure(BackpressureBlock))
			case "drop_oldest":
				opts = append(opts, WithBackpressure(BackpressureDropOldest))
			default:
				return nil, fmt.Errorf("%w: backpressure = %q (want block or drop_oldest)", ErrInvalidOption, s.Val)
			}
		case "lateness":
			ns, err := parseDurationNS(s.Val)
			if err != nil || ns < 0 {
				return nil, fmt.Errorf("%w: lateness = %q (want a non-negative duration like '250ms' or nanoseconds)", ErrInvalidOption, s.Val)
			}
			opts = append(opts, func(c *queryConfig) { c.lateness = ns })
		case "timestamp":
			if s.Val == "" {
				return nil, fmt.Errorf("%w: timestamp needs a column name", ErrInvalidOption)
			}
			opts = append(opts, WithEventTimeColumn(s.Val))
		case "durable":
			switch val {
			case "true":
				opts = append(opts, WithDurable(true))
			case "false":
				opts = append(opts, WithDurable(false))
			default:
				return nil, fmt.Errorf("%w: durable = %q (want true or false)", ErrInvalidOption, s.Val)
			}
		case "checkpoint_interval":
			ns, err := parseDurationNS(s.Val)
			if err != nil || ns <= 0 {
				return nil, fmt.Errorf("%w: checkpoint_interval = %q (want a positive duration like '5s' or nanoseconds)", ErrInvalidOption, s.Val)
			}
			opts = append(opts, WithCheckpointInterval(time.Duration(ns)))
		default:
			return nil, fmt.Errorf("%w: unknown option %q", ErrInvalidOption, s.Key)
		}
	}
	return opts, nil
}

// parseDurationNS reads a WITH duration value: a bare integer is
// nanoseconds, anything else goes through time.ParseDuration (quoted in
// DDL, e.g. lateness = '250ms').
func parseDurationNS(val string) (int64, error) {
	if ns, err := strconv.ParseInt(val, 10, 64); err == nil {
		return ns, nil
	}
	d, err := time.ParseDuration(val)
	if err != nil {
		return 0, err
	}
	return d.Nanoseconds(), nil
}

// RegisterContinuous compiles and installs a continuous query — the Go
// equivalent of CREATE CONTINUOUS QUERY (both run the same registration
// path). The query must contain exactly one basket expression (the paper's
// continuous marker); the referenced basket must be a stream created with
// CreateStream. The query's results land in a basket named <name>_out and
// on the subscription.
func (e *Engine) RegisterContinuous(name, text string, opts ...QueryOption) (*Query, error) {
	sel, err := sql.ParseSelect(text)
	if err != nil {
		return nil, err
	}
	if e.dur != nil {
		e.gate.RLock()
		defer e.gate.RUnlock()
	}
	q, err := e.registerParsed(name, text, sel, opts...)
	if err != nil {
		return nil, err
	}
	if e.dur != nil {
		cfg := defaultQueryConfig()
		for _, o := range opts {
			o(&cfg)
		}
		if err := e.dur.logStmt(context.Background(), continuousDDL(name, text, cfg), true); err != nil {
			return q, err
		}
	}
	return q, nil
}

func defaultQueryConfig() queryConfig {
	return queryConfig{strategy: SeparateBaskets, minTuples: 1, subDepth: 64, durable: true}
}

// continuousDDL synthesizes the journal spelling of a Go-registered
// continuous query. Every QueryOption has a WITH equivalent, so the
// replayed DDL reconstructs the same pipeline shape — a requirement for
// checkpoint images to load (replica and shard counts must match).
func continuousDDL(name, text string, cfg queryConfig) string {
	def := defaultQueryConfig()
	var opts []string
	add := func(k, v string) { opts = append(opts, k+" = "+v) }
	if cfg.strategy != def.strategy {
		add("strategy", cfg.strategy.String())
	}
	if cfg.minTuples != def.minTuples {
		add("min_tuples", strconv.Itoa(cfg.minTuples))
	}
	if cfg.forceMode {
		if cfg.windowMode == window.Incremental {
			add("window_mode", "incremental")
		} else {
			add("window_mode", "reeval")
		}
	}
	if cfg.priority != def.priority {
		add("priority", strconv.Itoa(cfg.priority))
	}
	if cfg.shedAt != def.shedAt {
		add("shed_limit", strconv.Itoa(cfg.shedAt))
	}
	if cfg.subDepth <= 0 {
		add("polling", "true")
	} else if cfg.subDepth != def.subDepth {
		add("depth", strconv.Itoa(cfg.subDepth))
	}
	if cfg.policy != def.policy {
		add("backpressure", "drop_oldest")
	}
	if cfg.lateness != def.lateness {
		add("lateness", strconv.FormatInt(cfg.lateness, 10))
	}
	if cfg.tsCol != "" {
		add("timestamp", cfg.tsCol)
	}
	if cfg.durable != def.durable {
		add("durable", "false")
	}
	if cfg.ckptEvery > 0 {
		add("checkpoint_interval", strconv.FormatInt(cfg.ckptEvery, 10))
	}
	s := "CREATE CONTINUOUS QUERY " + name
	if len(opts) > 0 {
		s += " WITH (" + strings.Join(opts, ", ") + ")"
	}
	return s + " AS " + text
}

// registerParsed is the single registration path behind both
// RegisterContinuous and CREATE CONTINUOUS QUERY.
func (e *Engine) registerParsed(name, text string, sel *sql.SelectStmt, opts ...QueryOption) (*Query, error) {
	if err := e.guard(nil); err != nil {
		return nil, err
	}
	cfg := defaultQueryConfig()
	for _, o := range opts {
		o(&cfg)
	}
	key := strings.ToLower(name)
	e.mu.Lock()
	if _, dup := e.queries[key]; dup {
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDuplicateQuery, name)
	}
	e.mu.Unlock()

	if !sel.IsContinuous() {
		return nil, fmt.Errorf("%w: %q; run it with Exec", ErrNotContinuous, name)
	}
	streamNames, err := basketExprStreams(sel)
	if err != nil {
		return nil, err
	}
	if len(streamNames) == 2 {
		// Two basket expressions: a stream-stream join, executed by a
		// symmetric-hash factory (one per shard when co-partitioned).
		return e.registerStreamStream(name, text, sel, streamNames, cfg)
	}
	streamName := streamNames[0]
	e.mu.Lock()
	s, isStream := e.streams[strings.ToLower(streamName)]
	e.mu.Unlock()

	// The basket expression may also read another query's output basket —
	// the paper's network of queries, where "continuous queries … take
	// their input from other queries".
	var chained *basket.Basket
	if !isStream {
		entry, err := e.cat.Lookup(streamName)
		if err != nil {
			return nil, fmt.Errorf("%w: basket expression reads %q, which is neither a stream nor a basket", ErrUnknownStream, streamName)
		}
		b, ok := entry.Source.(*basket.Basket)
		if !ok || entry.Kind != catalog.KindBasket {
			return nil, fmt.Errorf("%w: basket expression over %q, which is a %s", ErrUnknownStream, streamName, entry.Kind)
		}
		chained = b
	}

	p, err := plan.Build(sel, e.cat)
	if err != nil {
		return nil, e.planError(err)
	}

	if cfg.lateness != 0 || cfg.tsCol != "" {
		if sel.Window == nil || sel.Window.Kind != sql.WindowRange {
			return nil, fmt.Errorf("%w: lateness/timestamp apply to WINDOW RANGE queries only", ErrInvalidOption)
		}
		if cfg.lateness < 0 {
			return nil, fmt.Errorf("%w: negative lateness", ErrInvalidOption)
		}
	}

	// Stream-table join: when the plan is a single two-way equi-join of
	// this stream with a table, the factory gets persistent enrichment
	// state — a table-side hash rebuilt only when the table's version
	// moves — instead of re-running a batch join per firing. Other join
	// shapes (non-equi, multi-way, windowed) keep per-firing evaluation.
	joinBuilder := e.streamTableJoinBuilder(p, sel, streamName, chained != nil)

	// Routed path: eligible filter/project pipelines over a stream attach
	// to the stream's shared scan — one consumption frontier, predicate-
	// indexed routing, one evaluation per distinct subplan — instead of a
	// private pipeline. Ineligible shapes (windows, joins, chained
	// baskets, shedding, batching, filtered consuming scans) and
	// partitioned streams (ingest routes to shard baskets; a shared scan
	// on the primary would retain and duplicate every tuple alongside the
	// shard copies) fall back to the shared-basket arrangement below.
	if cfg.strategy == RoutedScan {
		if info, ok := routedPlanInfo(p, streamName); ok &&
			isStream && s.router == nil && chained == nil && joinBuilder == nil &&
			sel.Window == nil && cfg.shedAt == 0 && cfg.minTuples == 1 {
			return e.registerRouted(name, text, streamName, s, info, cfg)
		}
		cfg.strategy = SharedBaskets
	}

	// Partitioned path: on a partitioned stream, a partitionable query is
	// cloned into one pipeline per shard with a merge transition
	// recombining the emissions. Time-based windows shard when their plan
	// has mergeable pane summaries (the shards share one slide grid, so
	// the merge can align window boundaries); count windows are defined
	// over the whole stream's arrival order and stay single-pipeline, as
	// do queries with a private shedding bound (shard baskets are shared
	// between the stream's partitioned queries).
	if isStream && s.router != nil && cfg.shedAt == 0 {
		if sel.Window == nil {
			if joinBuilder != nil {
				// Stream×table: broadcast the table to every shard — each
				// stream tuple lives in exactly one shard, so the
				// concatenated emissions are exact regardless of the key.
				if an := partition.AnalyzeJoin(p, e.partitionLookup); an.OK && an.Broadcast {
					return e.registerPartitioned(name, text, streamName, s,
						p, partition.Analysis{OK: true, Mode: partition.MergeConcat, ShardPlan: p}, cfg, joinBuilder)
				}
			} else if an := partition.Analyze(p, streamName, s.router.Spec().By, name+"#partials"); an.OK {
				return e.registerPartitioned(name, text, streamName, s, p, an, cfg, nil)
			}
		} else if wan := partition.AnalyzeWindowed(p, streamName, s.router.Spec().By, name+"#partials", sel.Window); wan.OK {
			return e.registerPartitionedWindowed(name, text, streamName, s, p, wan, sel.Window, cfg)
		}
	}

	// Input arrangement per strategy.
	var in factory.Input
	var replica *basket.Basket
	switch {
	case chained != nil && cfg.strategy == SharedBaskets:
		in = factory.Input{Basket: chained, Mode: factory.Shared, ReaderID: name, Bind: streamName}
	case chained != nil:
		// Owned-direct: this query is the exclusive consumer of the
		// upstream basket (no receptor fan-out exists to replicate it).
		in = factory.Input{Basket: chained, Mode: factory.Owned, Bind: streamName}
	case cfg.strategy == SharedBaskets:
		in = factory.Input{Basket: s.primary, Mode: factory.Shared, ReaderID: name, Bind: streamName}
	default:
		replica = basket.New(name+"_in", s.schema, e.clock)
		if cfg.shedAt > 0 {
			replica.SetCapacity(cfg.shedAt)
		}
		in = factory.Input{Basket: replica, Mode: factory.Owned, Bind: streamName}
		e.mu.Lock()
		// Copy-on-write: Ingest's fan-out reads the slice outside e.mu, so
		// published slices are never extended or reordered in place.
		s.replicas = append(append([]*basket.Basket(nil), s.replicas...), replica)
		e.mu.Unlock()
	}

	// rollback undoes the replica publication (and, once registered, the
	// output catalog entry) when a later registration step fails — an
	// orphaned replica would keep receiving every future ingest batch
	// with nothing consuming it.
	rollback := func(dropOut bool) {
		if replica != nil {
			e.mu.Lock()
			next := make([]*basket.Basket, 0, len(s.replicas))
			for _, r := range s.replicas {
				if r != replica {
					next = append(next, r)
				}
			}
			s.replicas = next
			e.mu.Unlock()
		}
		if dropOut {
			_ = e.cat.Drop(name + "_out")
		}
	}

	// Output basket: the plan's schema (plus its own delivery ts), exposed
	// in the catalog for one-time inspection.
	out := basket.New(name+"_out", p.Schema(), e.clock)
	if err := e.cat.Register(name+"_out", catalog.KindBasket, out); err != nil {
		rollback(false)
		return nil, fmt.Errorf("%w: %q", ErrDuplicateName, name+"_out")
	}

	fopts := []factory.Option{
		factory.WithMinTuples(cfg.minTuples),
		factory.WithClock(e.clock),
	}
	if sel.Window != nil {
		runner, err := e.buildWindowRunner(p, in.Basket.Schema(), streamName, sel.Window, cfg)
		if err != nil {
			rollback(true)
			return nil, err
		}
		fopts = append(fopts, factory.WithWindow(runner))
	}
	if joinBuilder != nil {
		sj, err := joinBuilder()
		if err != nil {
			rollback(true)
			return nil, err
		}
		fopts = append(fopts, factory.WithStreamJoin(sj))
	}
	fact, err := factory.New(name, p, e.cat, []factory.Input{in}, []factory.Sink{out}, fopts...)
	if err != nil {
		rollback(true)
		return nil, err
	}

	var replicas []*basket.Basket
	if replica != nil {
		replicas = []*basket.Basket{replica}
	}
	q := &Query{
		Name:     name,
		SQL:      text,
		Strategy: cfg.strategy,
		streams:  []string{streamName},
		facts:    []*factory.Factory{fact},
		out:      out,
		replicas: replicas,
		engine:   e,
	}
	if cfg.subDepth > 0 {
		emitter := adapters.NewChannelEmitter(name+"_emit", out, cfg.subDepth, cfg.policy)
		q.sub = newSubscription(e, emitter)
	}
	e.mu.Lock()
	e.queries[key] = q
	e.mu.Unlock()
	e.installQuery(q, cfg)
	return q, nil
}

// installQuery finalizes a registered query: durability wiring (the
// delivery-frontier hook for exactly-once resumption, plus any
// checkpoint-cadence tightening), then scheduler registration — with
// gate-wrapped transitions on a durable engine so checkpoints cut
// between firings, never through one. Each transition's input places
// are subscribed to its scheduler handle, so an append wakes exactly
// the transitions it can make fireable instead of rescanning the net;
// the detach hooks accumulate in q.unsubs for unregistration.
func (e *Engine) installQuery(q *Query, cfg queryConfig) {
	q.durable = cfg.durable && e.dur != nil
	if q.durable {
		if q.sub != nil {
			key := strings.ToLower(q.Name)
			q.sub.em.OnDeliver(func(n int64) { e.dur.logFrontier(key, n) })
		}
		e.dur.tighten(time.Duration(cfg.ckptEvery))
	}
	// Observability arming must precede scheduling: hooks are not
	// synchronized with firings once a transition is registered.
	e.armQueryObservers(q)
	for _, f := range q.facts {
		h := e.addTransition(f, cfg.priority)
		e.observeStage(q, h, stageFire, f.Name(), factoryDelta(f))
		for _, in := range f.InputBaskets() {
			q.subscribe(in, h)
		}
	}
	if q.merge != nil {
		h := e.addTransition(q.merge, cfg.priority)
		var delta func() (int64, int64)
		if m, ok := q.merge.(interface{ Merged() int64 }); ok {
			delta = counterDelta(m.Merged)
		}
		e.observeStage(q, h, stageMerge, q.merge.Name(), delta)
		if m, ok := q.merge.(*partition.Merge); ok {
			// Plain/aligned merges consume SPSC tails: the producer-side
			// push invokes the wake hook directly, no basket listener.
			m.SetWake(h.Wake)
		}
		for _, so := range q.shardOuts {
			q.subscribe(so, h)
		}
	}
	if q.sub != nil {
		h := e.addTransition(q.sub.em, cfg.priority)
		e.observeStage(q, h, stageDeliver, q.sub.em.Name(), counterDelta(q.sub.em.Delivered))
		q.subscribe(q.out, h)
	}
}

// subscribe wires a basket append to a transition wake-up and records the
// detach hook for unregisterContinuous.
func (q *Query) subscribe(b *basket.Basket, h *scheduler.Handle) {
	id := b.Subscribe(h.Wake)
	q.unsubs = append(q.unsubs, func() { b.Unsubscribe(id) })
}

// CheckpointInfo reports a query's durability posture (see
// Query.Checkpoint).
type CheckpointInfo struct {
	// Durable reports whether checkpoints capture this query's state.
	Durable bool
	// LastCheckpoint is when the engine last checkpointed (zero before
	// the first checkpoint or on a non-durable engine).
	LastCheckpoint time.Time
	// ReplayLag is the number of WAL records a crash right now would
	// replay (engine-wide, 0 when not durable).
	ReplayLag int64
	// Delivered is the cumulative number of result tuples the query's
	// subscription has delivered.
	Delivered int64
}

// Checkpoint returns the query's durability posture: whether its state
// is checkpointed, when the last checkpoint ran, the replay lag a crash
// would incur, and the delivery frontier.
func (q *Query) Checkpoint() CheckpointInfo {
	snap := q.engine.dur.snapshot()
	info := CheckpointInfo{
		Durable:        q.durable,
		LastCheckpoint: snap.ckptTime,
		ReplayLag:      snap.replayLag(),
	}
	if q.sub != nil {
		info.Delivered = q.sub.em.Delivered()
	}
	return info
}

// registerPartitioned installs a continuous query as N shard pipelines
// over the stream's shard baskets: per shard one factory running the
// analysis' shard plan into a private emission basket (<name>_out#i),
// plus a merge transition recombining the emissions into <name>_out —
// order-preserving per shard, with a global distinct/re-aggregation
// stage when the analysis requires one. Shard factories consume the
// stream's shard baskets in shared (watermark) mode, so several
// partitioned queries share one routed copy of the stream. joinBuilder,
// when non-nil, gives every shard factory its own stream-table join
// state (the broadcast decomposition).
func (e *Engine) registerPartitioned(name, text, streamName string, s *stream, p plan.Node, an partition.Analysis, cfg queryConfig, joinBuilder func() (*exec.StreamJoin, error)) (*Query, error) {
	key := strings.ToLower(name)
	out := basket.New(name+"_out", p.Schema(), e.clock)
	if err := e.cat.Register(name+"_out", catalog.KindBasket, out); err != nil {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateName, name+"_out")
	}
	unregister := func(upTo int) {
		for i := 0; i < upTo; i++ {
			_ = e.cat.Drop(fmt.Sprintf("%s_out#%d", name, i))
		}
		_ = e.cat.Drop(name + "_out")
	}

	n := len(s.shards)
	latency := obs.NewHistogram()
	facts := make([]*factory.Factory, 0, n)
	tails := make([]*partition.Tail, 0, n)
	for i := 0; i < n; i++ {
		so := partition.NewTail(fmt.Sprintf("%s_out#%d", name, i), an.ShardPlan.Schema(), tailRingBatches, e.clock)
		if err := e.cat.RegisterShard(so.Name(), catalog.KindBasket, so, name+"_out", i); err != nil {
			unregister(i)
			return nil, fmt.Errorf("%w: %q", ErrDuplicateName, so.Name())
		}
		in := factory.Input{Basket: s.shards[i], Mode: factory.Shared, ReaderID: name, Bind: streamName}
		fopts := []factory.Option{
			factory.WithMinTuples(cfg.minTuples),
			factory.WithClock(e.clock),
			factory.WithLatency(latency),
		}
		if joinBuilder != nil {
			sj, err := joinBuilder()
			if err != nil {
				unregister(i + 1)
				for _, done := range facts {
					done.Close()
				}
				return nil, err
			}
			fopts = append(fopts, factory.WithStreamJoin(sj))
		}
		f, err := factory.New(fmt.Sprintf("%s#%d", name, i), an.ShardPlan, e.cat,
			[]factory.Input{in}, []factory.Sink{so}, fopts...)
		if err != nil {
			unregister(i + 1)
			for _, done := range facts {
				done.Close()
			}
			return nil, err
		}
		facts = append(facts, f)
		tails = append(tails, so)
	}
	merge := partition.NewMerge(name+"_merge", an.MergeSource, tails, out, an.MergePlan, e.cat)

	q := &Query{
		Name:     name,
		SQL:      text,
		Strategy: cfg.strategy,
		streams:  []string{streamName},
		facts:    facts,
		merge:    merge,
		out:      out,
		shardIns: s.shards,
		tails:    tails,
		engine:   e,
	}
	if cfg.subDepth > 0 {
		emitter := adapters.NewChannelEmitter(name+"_emit", out, cfg.subDepth, cfg.policy)
		q.sub = newSubscription(e, emitter)
	}
	e.mu.Lock()
	e.queries[key] = q
	s.shardReaders++
	e.mu.Unlock()
	e.installQuery(q, cfg)
	return q, nil
}

// registerPartitionedWindowed installs a time-windowed continuous query
// as N shard pipelines: per shard a window runner over the shard's
// subsequence of the stream (all runners share one watermark group, so a
// lagging or empty shard still closes its windows once the stream as a
// whole has moved past them). When the grouping is partition-aligned the
// per-shard window results are final and the plain concat merge
// recombines them; otherwise the shards emit per-window partial
// aggregates tagged with the window end and a WindowedMerge aligns the
// slide grid across shards, re-aggregates each window's union, and
// replays HAVING and the projection.
func (e *Engine) registerPartitionedWindowed(name, text, streamName string, s *stream, p plan.Node, wan partition.WindowedAnalysis, w *sql.WindowClause, cfg queryConfig) (*Query, error) {
	key := strings.ToLower(name)
	out := basket.New(name+"_out", p.Schema(), e.clock)
	if err := e.cat.Register(name+"_out", catalog.KindBasket, out); err != nil {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateName, name+"_out")
	}
	unregister := func(upTo int) {
		for i := 0; i < upTo; i++ {
			_ = e.cat.Drop(fmt.Sprintf("%s_out#%d", name, i))
		}
		_ = e.cat.Drop(name + "_out")
	}

	shardSchema := p.Schema()
	if !wan.Aligned {
		shardSchema = wan.ShardPlan.Schema().Clone()
		shardSchema.Columns = append(shardSchema.Columns,
			catalog.Column{Name: partition.WindowEndColumn, Type: vector.Timestamp})
	}

	group := window.NewWatermarkGroup()
	n := len(s.shards)
	latency := obs.NewHistogram()
	facts := make([]*factory.Factory, 0, n)
	// Aligned shard windows emit final results and hand them to the merge
	// over SPSC tails; non-aligned shards emit window-tagged partials into
	// baskets the WindowedMerge buckets by window end.
	var shardOuts []*basket.Basket
	var tails []*partition.Tail
	fail := func(i int, err error) (*Query, error) {
		unregister(i)
		for _, done := range facts {
			done.Close()
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		runner, err := e.buildShardWindowRunner(wan, p, s.shards[i].Schema(), streamName, w, cfg)
		if err != nil {
			return fail(i, err)
		}
		runner.ShareWatermark(group)
		var sink factory.Sink
		if wan.Aligned {
			t := partition.NewTail(fmt.Sprintf("%s_out#%d", name, i), shardSchema, tailRingBatches, e.clock)
			if err := e.cat.RegisterShard(t.Name(), catalog.KindBasket, t, name+"_out", i); err != nil {
				return fail(i, fmt.Errorf("%w: %q", ErrDuplicateName, t.Name()))
			}
			tails = append(tails, t)
			sink = t
		} else {
			so := basket.New(fmt.Sprintf("%s_out#%d", name, i), shardSchema, e.clock)
			if err := e.cat.RegisterShard(so.Name(), catalog.KindBasket, so, name+"_out", i); err != nil {
				return fail(i, fmt.Errorf("%w: %q", ErrDuplicateName, so.Name()))
			}
			shardOuts = append(shardOuts, so)
			sink = so
		}
		in := factory.Input{Basket: s.shards[i], Mode: factory.Shared, ReaderID: name, Bind: streamName}
		fopts := []factory.Option{
			factory.WithMinTuples(cfg.minTuples),
			factory.WithClock(e.clock),
			factory.WithLatency(latency),
			factory.WithWindow(runner),
		}
		if !wan.Aligned {
			fopts = append(fopts, factory.WithWindowEndTag())
		}
		f, err := factory.New(fmt.Sprintf("%s#%d", name, i), wan.ShardPlan, e.cat,
			[]factory.Input{in}, []factory.Sink{sink}, fopts...)
		if err != nil {
			return fail(i+1, err)
		}
		facts = append(facts, f)
	}
	var merge mergeStage
	if wan.Aligned {
		merge = partition.NewMerge(name+"_merge", "", tails, out, nil, e.cat)
	} else {
		frontiers := make([]func() int64, n)
		for i, f := range facts {
			frontiers[i] = f.WindowFrontier
		}
		merge = partition.NewWindowedMerge(name+"_merge", wan.MergeSource, shardOuts, out,
			wan.MergePlan, e.cat, wan.ShardPlan.Schema().Len(), frontiers)
	}

	q := &Query{
		Name:      name,
		SQL:       text,
		Strategy:  cfg.strategy,
		streams:   []string{streamName},
		facts:     facts,
		merge:     merge,
		out:       out,
		shardIns:  s.shards,
		shardOuts: shardOuts,
		tails:     tails,
		engine:    e,
	}
	if cfg.subDepth > 0 {
		emitter := adapters.NewChannelEmitter(name+"_emit", out, cfg.subDepth, cfg.policy)
		q.sub = newSubscription(e, emitter)
	}
	e.mu.Lock()
	e.queries[key] = q
	s.shardReaders++
	e.mu.Unlock()
	e.installQuery(q, cfg)
	return q, nil
}

// windowSpec resolves the window clause plus the timestamp/lateness
// options against the buffered schema.
func windowSpec(bufSchema *catalog.Schema, w *sql.WindowClause, cfg queryConfig) (window.Spec, error) {
	spec := window.Spec{
		Kind:     w.Kind,
		Size:     w.Size,
		Slide:    w.Slide,
		TSIndex:  bufSchema.Index(catalog.TimestampColumn),
		Lateness: cfg.lateness,
	}
	if cfg.tsCol != "" {
		idx := bufSchema.Index(cfg.tsCol)
		if idx < 0 {
			return window.Spec{}, fmt.Errorf("%w: timestamp column %q not in schema %s", ErrInvalidOption, cfg.tsCol, bufSchema)
		}
		switch bufSchema.Columns[idx].Type {
		case vector.Int64, vector.Timestamp:
		default:
			return window.Spec{}, fmt.Errorf("%w: timestamp column %q must be INT or TIMESTAMP, is %s",
				ErrInvalidOption, cfg.tsCol, bufSchema.Columns[idx].Type)
		}
		spec.TSIndex = idx
		spec.EventTime = !strings.EqualFold(cfg.tsCol, catalog.TimestampColumn)
	}
	return spec, nil
}

// buildWindowRunner assembles the window layer for a windowed query.
// bufSchema is the input basket's full schema (including ts); sourceName
// is the scan source the window content overrides during re-evaluation.
func (e *Engine) buildWindowRunner(p plan.Node, bufSchema *catalog.Schema, sourceName string, w *sql.WindowClause, cfg queryConfig) (*window.Runner, error) {
	spec, err := windowSpec(bufSchema, w, cfg)
	if err != nil {
		return nil, err
	}
	mode := window.ReEvaluate
	paneEval, recognized := window.RecognizeIncremental(p)
	if cfg.forceMode {
		mode = cfg.windowMode
		if mode == window.Incremental && !recognized {
			return nil, fmt.Errorf("datacell: plan shape does not support incremental windows")
		}
	} else if recognized && spec.Size%spec.Slide == 0 {
		mode = window.Incremental
	}
	if mode == window.Incremental {
		return window.NewRunner(spec, mode, nil, paneEval, bufSchema)
	}
	reEval := &window.PlanEvaluator{Plan: p, Catalog: e.cat, Source: sourceName}
	return window.NewRunner(spec, mode, reEval, nil, bufSchema)
}

// buildShardWindowRunner assembles the window layer for one shard
// pipeline of a partitioned windowed query: the full plan when the
// grouping is partition-aligned, the bare partial-aggregation plan
// (per-window mergeable partials) otherwise.
func (e *Engine) buildShardWindowRunner(wan partition.WindowedAnalysis, p plan.Node, bufSchema *catalog.Schema, sourceName string, w *sql.WindowClause, cfg queryConfig) (*window.Runner, error) {
	if wan.Aligned {
		return e.buildWindowRunner(p, bufSchema, sourceName, w, cfg)
	}
	spec, err := windowSpec(bufSchema, w, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.forceMode && cfg.windowMode == window.ReEvaluate {
		reEval := &window.PlanEvaluator{Plan: wan.ShardPlan, Catalog: e.cat, Source: sourceName}
		return window.NewRunner(spec, window.ReEvaluate, reEval, nil, bufSchema)
	}
	paneEval, ok := window.RecognizePartial(wan.ShardPlan)
	if !ok {
		// AnalyzeWindowed only accepts recognizable shapes, so this is a
		// bug guard, not a user-reachable path.
		return nil, fmt.Errorf("datacell: partial plan not recognizable for incremental windows")
	}
	return window.NewRunner(spec, window.Incremental, nil, paneEval, bufSchema)
}

// UnregisterContinuous removes a continuous query — the Go equivalent of
// DROP CONTINUOUS QUERY. Every factory (all shard pipelines) detaches
// from the scheduler, shared readers release their watermarks, the merge
// transition and the private replica and output baskets are freed, and
// the subscription closes.
func (e *Engine) UnregisterContinuous(name string) error {
	if e.dur != nil {
		e.gate.RLock()
		defer e.gate.RUnlock()
	}
	if err := e.unregisterContinuous(name); err != nil {
		return err
	}
	return e.dur.logStmt(context.Background(), "DROP CONTINUOUS QUERY "+name, true)
}

func (e *Engine) unregisterContinuous(name string) error {
	key := strings.ToLower(name)
	e.mu.Lock()
	q, ok := e.queries[key]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownQuery, name)
	}
	delete(e.queries, key)
	for _, streamName := range q.streams {
		s := e.streams[strings.ToLower(streamName)]
		if s == nil {
			continue
		}
		if len(q.replicas) > 0 {
			// Copy-on-write removal (see registerParsed).
			next := make([]*basket.Basket, 0, len(s.replicas))
			for _, r := range s.replicas {
				mine := false
				for _, qr := range q.replicas {
					if r == qr {
						mine = true
						break
					}
				}
				if !mine {
					next = append(next, r)
				}
			}
			s.replicas = next
		}
		if q.merge != nil && s.router != nil {
			// Every partitioned pipeline registered as a shard reader on
			// each stream it consumes (both sides of a co-partitioned
			// join).
			s.shardReaders--
		}
	}
	e.mu.Unlock()
	// Detach the targeted wake-ups first: once the listeners are gone, no
	// append can re-enqueue the transitions the removals below tear down.
	for _, unsub := range q.unsubs {
		unsub()
	}
	q.unsubs = nil
	if q.routed != nil {
		// Detach from the shared scan (and tear the scan transition down
		// when this was its last member) before dropping the out basket.
		e.dropRouted(q)
	}
	for _, t := range q.tails {
		t.SetWake(nil)
	}
	for _, f := range q.facts {
		e.sched.Remove(f.Name())
		// Close releases shared-reader watermarks, so shard (or shared)
		// baskets compact tuples only this query was retaining.
		f.Close()
	}
	if q.merge != nil {
		e.sched.Remove(q.merge.Name())
	}
	if q.sub != nil {
		q.sub.closeWith(ErrSubscriptionClosed)
	}
	for i := 0; i < len(q.shardOuts)+len(q.tails); i++ {
		_ = e.cat.Drop(fmt.Sprintf("%s_out#%d", q.Name, i))
	}
	return e.cat.Drop(name + "_out")
}

// basketExprStreams locates the basket expressions in the query and
// returns the streams they read: one for an ordinary continuous query,
// two for a stream-stream join.
func basketExprStreams(sel *sql.SelectStmt) ([]string, error) {
	var found []string
	var walk func(s *sql.SelectStmt)
	walk = func(s *sql.SelectStmt) {
		for _, f := range s.From {
			if f.Basket && f.Sub != nil && len(f.Sub.From) == 1 {
				found = append(found, f.Sub.From[0].Table)
			} else if f.Sub != nil {
				walk(f.Sub)
			}
		}
	}
	walk(sel)
	if len(found) < 1 || len(found) > 2 {
		return nil, fmt.Errorf("datacell: continuous queries need one basket expression (two for a stream-stream join), found %d", len(found))
	}
	return found, nil
}
