package datacell

// Engine-level coverage of partitioned parallel execution: shard
// pipelines produce the same result sets as a single pipeline, DROP
// tears every shard transition down, routing is visible through SHOW,
// and concurrent ingest across shards survives the race detector.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/vector"
)

// newPartitionedPair returns two engines with the same stream schema —
// one sharded 4 ways by k, one unpartitioned — so a query registered on
// both can be compared row for row.
func newPartitionedPair(t *testing.T) (part, flat *Engine) {
	t.Helper()
	ctx := context.Background()
	part = New(Config{Clock: metrics.NewManualClock(1_000_000)})
	flat = New(Config{Clock: metrics.NewManualClock(1_000_000)})
	if _, err := part.Exec(ctx, "CREATE BASKET s (k INT, v INT) WITH (partitions = 4, partition_by = k)"); err != nil {
		t.Fatal(err)
	}
	if _, err := flat.Exec(ctx, "CREATE BASKET s (k INT, v INT)"); err != nil {
		t.Fatal(err)
	}
	return part, flat
}

func kvRows(pairs [][2]int64) [][]vector.Value {
	rows := make([][]vector.Value, len(pairs))
	for i, p := range pairs {
		rows[i] = []vector.Value{vector.NewInt(p[0]), vector.NewInt(p[1])}
	}
	return rows
}

// sortedRows renders a relation's rows (excluding the trailing ts
// column when present) as sorted strings for order-insensitive
// comparison.
func sortedRows(t *testing.T, rels ...*storage.Relation) []string {
	t.Helper()
	var out []string
	for _, rel := range rels {
		w := rel.Schema.Len()
		if rel.Schema.Index("ts") == w-1 {
			w--
		}
		for i := 0; i < rel.NumRows(); i++ {
			var parts []string
			for c := 0; c < w; c++ {
				parts = append(parts, rel.Cols[c].Get(i).String())
			}
			out = append(out, strings.Join(parts, ","))
		}
	}
	sort.Strings(out)
	return out
}

func drainOut(t *testing.T, e *Engine, query string) *storage.Relation {
	t.Helper()
	rel, err := e.Exec(context.Background(), "SELECT * FROM "+query+"_out")
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// TestPartitionedFilterMatchesFlat interleaves ingest and scheduler
// passes arbitrarily; a row-preserving filter query must produce the
// same result multiset on the sharded and flat engines.
func TestPartitionedFilterMatchesFlat(t *testing.T) {
	ctx := context.Background()
	part, flat := newPartitionedPair(t)
	const query = `CREATE CONTINUOUS QUERY q WITH (polling = true) AS
		SELECT * FROM [SELECT * FROM s] AS x WHERE x.v % 3 <> 0`
	for _, e := range []*Engine{part, flat} {
		if _, err := e.Exec(ctx, query); err != nil {
			t.Fatal(err)
		}
	}
	qp, _ := part.Query("q")
	if qp.Shards() != 4 || !qp.Partitioned() {
		t.Fatalf("shards = %d, partitioned = %v", qp.Shards(), qp.Partitioned())
	}
	qf, _ := flat.Query("q")
	if qf.Shards() != 1 {
		t.Fatalf("flat shards = %d", qf.Shards())
	}

	rng := rand.New(rand.NewSource(42))
	total := 0
	for round := 0; round < 30; round++ {
		n := 1 + rng.Intn(40)
		var pairs [][2]int64
		for i := 0; i < n; i++ {
			pairs = append(pairs, [2]int64{int64(rng.Intn(16)), int64(total + i)})
		}
		total += n
		rows := kvRows(pairs)
		if err := part.Ingest(ctx, "s", rows); err != nil {
			t.Fatal(err)
		}
		if err := flat.Ingest(ctx, "s", rows); err != nil {
			t.Fatal(err)
		}
		// Fire at arbitrary points: sometimes after every batch, sometimes
		// letting backlog build up across rounds.
		if rng.Intn(3) > 0 {
			part.Step()
		}
		if rng.Intn(3) > 0 {
			flat.Step()
		}
	}
	part.Drain()
	flat.Drain()

	got := sortedRows(t, drainOut(t, part, "q"))
	want := sortedRows(t, drainOut(t, flat, "q"))
	if len(got) == 0 {
		t.Fatal("no results")
	}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("partitioned %d rows != flat %d rows", len(got), len(want))
	}
	if qp.Stats().TuplesIn != int64(total) {
		t.Errorf("shard pipelines consumed %d of %d tuples", qp.Stats().TuplesIn, total)
	}
	if lag := qp.MergeLag(); lag != 0 {
		t.Errorf("merge lag = %d after drain", lag)
	}
}

// TestPartitionedAggregatesMatchFlat checks the grouped shapes under an
// ingest-then-drain schedule (both engines fire exactly once over the
// full backlog, so per-firing aggregation semantics coincide): aligned
// grouping (concat merge), non-aligned grouping (global re-aggregation),
// HAVING at the merge stage, scalar aggregates, and DISTINCT.
func TestPartitionedAggregatesMatchFlat(t *testing.T) {
	queries := map[string]string{
		"aligned": `CREATE CONTINUOUS QUERY q WITH (polling = true) AS
			SELECT x.k, COUNT(*) AS c, SUM(x.v) AS sv FROM [SELECT * FROM s] AS x GROUP BY x.k`,
		"global": `CREATE CONTINUOUS QUERY q WITH (polling = true) AS
			SELECT x.v, COUNT(*) AS c, SUM(x.k) AS sk, MIN(x.k) AS mn, MAX(x.k) AS mx
			FROM [SELECT * FROM s] AS x GROUP BY x.v`,
		"having": `CREATE CONTINUOUS QUERY q WITH (polling = true) AS
			SELECT x.v, COUNT(*) AS c FROM [SELECT * FROM s] AS x GROUP BY x.v HAVING COUNT(*) > 2`,
		"scalar": `CREATE CONTINUOUS QUERY q WITH (polling = true) AS
			SELECT COUNT(*) AS c, SUM(x.v) AS sv, MIN(x.v) AS mn FROM [SELECT * FROM s] AS x`,
		"distinct": `CREATE CONTINUOUS QUERY q WITH (polling = true) AS
			SELECT DISTINCT x.v FROM [SELECT * FROM s] AS x`,
	}
	for name, query := range queries {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			part, flat := newPartitionedPair(t)
			for _, e := range []*Engine{part, flat} {
				if _, err := e.Exec(ctx, query); err != nil {
					t.Fatal(err)
				}
			}
			qp, _ := part.Query("q")
			if qp.Shards() != 4 {
				t.Fatalf("shards = %d", qp.Shards())
			}
			rng := rand.New(rand.NewSource(9))
			var pairs [][2]int64
			for i := 0; i < 500; i++ {
				pairs = append(pairs, [2]int64{int64(rng.Intn(32)), int64(rng.Intn(8))})
			}
			rows := kvRows(pairs)
			if err := part.Ingest(ctx, "s", rows); err != nil {
				t.Fatal(err)
			}
			if err := flat.Ingest(ctx, "s", rows); err != nil {
				t.Fatal(err)
			}
			part.Drain()
			flat.Drain()
			got := sortedRows(t, drainOut(t, part, "q"))
			want := sortedRows(t, drainOut(t, flat, "q"))
			if len(want) == 0 {
				t.Fatal("flat engine produced nothing")
			}
			if strings.Join(got, ";") != strings.Join(want, ";") {
				t.Errorf("partitioned = %v\nflat = %v", got, want)
			}
		})
	}
}

// TestPartitionedFallbacks: shapes the analyzer rejects (and options the
// partitioned path cannot honor) must still run — as one pipeline.
func TestPartitionedFallbacks(t *testing.T) {
	ctx := context.Background()
	part, _ := newPartitionedPair(t)
	cases := map[string]string{
		"avg":     `CREATE CONTINUOUS QUERY avgq WITH (polling = true) AS SELECT AVG(x.v) AS a FROM [SELECT * FROM s] AS x`,
		"orderby": `CREATE CONTINUOUS QUERY ordq WITH (polling = true) AS SELECT * FROM [SELECT * FROM s] AS x ORDER BY x.v`,
		"window": `CREATE CONTINUOUS QUERY winq WITH (polling = true) AS
			SELECT SUM(x.v) AS sv FROM [SELECT * FROM s] AS x WINDOW ROWS 4 SLIDE 4`,
		"shedding": `CREATE CONTINUOUS QUERY shedq WITH (polling = true, shed_limit = 100) AS
			SELECT * FROM [SELECT * FROM s] AS x`,
	}
	for name, ddl := range cases {
		if _, err := part.Exec(ctx, ddl); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	for _, qn := range []string{"avgq", "ordq", "winq", "shedq"} {
		q, err := part.Query(qn)
		if err != nil {
			t.Fatal(err)
		}
		if q.Shards() != 1 || q.Partitioned() {
			t.Errorf("%s: shards = %d, partitioned = %v", qn, q.Shards(), q.Partitioned())
		}
	}
	// The fallback pipelines still see the stream: a replica receives the
	// full batches next to the shard routing.
	if err := part.Ingest(ctx, "s", kvRows([][2]int64{{1, 10}, {2, 20}})); err != nil {
		t.Fatal(err)
	}
	part.Drain()
	if rel := drainOut(t, part, "shedq"); rel.NumRows() != 2 {
		t.Errorf("fallback query saw %d of 2 tuples", rel.NumRows())
	}
}

// TestPartitionedDropTeardown: DROP CONTINUOUS QUERY must remove every
// shard factory, the merge transition, and the emitter from the
// scheduler, release the shard watermarks, and free the output baskets.
func TestPartitionedDropTeardown(t *testing.T) {
	ctx := context.Background()
	part, _ := newPartitionedPair(t)
	baseline := len(part.Scheduler().Transitions())
	if _, err := part.Exec(ctx, `CREATE CONTINUOUS QUERY q AS
		SELECT * FROM [SELECT * FROM s] AS x WHERE x.v >= 0`); err != nil {
		t.Fatal(err)
	}
	// 4 shard factories + merge + emitter.
	if got := len(part.Scheduler().Transitions()); got != baseline+6 {
		t.Fatalf("transitions = %d, want %d", got, baseline+6)
	}
	if err := part.Ingest(ctx, "s", kvRows([][2]int64{{1, 1}, {2, 2}, {3, 3}, {4, 4}})); err != nil {
		t.Fatal(err)
	}
	part.Drain()
	if _, err := part.Exec(ctx, "DROP CONTINUOUS QUERY q"); err != nil {
		t.Fatal(err)
	}
	if got := len(part.Scheduler().Transitions()); got != baseline {
		t.Errorf("transitions leaked after drop: %d, want %d", got, baseline)
	}
	for _, obj := range []string{"q_out"} {
		if _, err := part.Exec(ctx, "SELECT * FROM "+obj); err == nil {
			t.Errorf("%s still queryable after drop", obj)
		}
	}
	// No registered readers: later ingest must not accumulate in shards.
	if err := part.Ingest(ctx, "s", kvRows([][2]int64{{9, 9}})); err != nil {
		t.Fatal(err)
	}
	part.mu.Lock()
	s := part.streams["s"]
	part.mu.Unlock()
	if s.shardReaders != 0 {
		t.Errorf("shardReaders = %d after drop", s.shardReaders)
	}
	for i, sh := range s.shards {
		if sh.Len() != 0 {
			t.Errorf("shard %d retains %d tuples after drop", i, sh.Len())
		}
	}
	// The name is reusable.
	if _, err := part.Exec(ctx, `CREATE CONTINUOUS QUERY q AS
		SELECT * FROM [SELECT * FROM s] AS x`); err != nil {
		t.Errorf("re-create after drop: %v", err)
	}
}

// TestPartitionedDropStream: DROP BASKET is blocked while a partitioned
// query reads the stream and removes the shard catalog entries once
// free.
func TestPartitionedDropStream(t *testing.T) {
	ctx := context.Background()
	part, _ := newPartitionedPair(t)
	if _, err := part.Exec(ctx, `CREATE CONTINUOUS QUERY q AS
		SELECT * FROM [SELECT * FROM s] AS x`); err != nil {
		t.Fatal(err)
	}
	if _, err := part.Exec(ctx, "DROP BASKET s"); err == nil {
		t.Fatal("dropped a stream a partitioned query reads")
	}
	if _, err := part.Exec(ctx, "DROP CONTINUOUS QUERY q"); err != nil {
		t.Fatal(err)
	}
	if _, err := part.Exec(ctx, "DROP BASKET s"); err != nil {
		t.Fatal(err)
	}
	rel, err := part.Exec(ctx, "SHOW BASKETS")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rel.NumRows(); i++ {
		if name := rel.Cols[0].Get(i).S; strings.HasPrefix(name, "s#") {
			t.Errorf("shard basket %s survived DROP BASKET", name)
		}
	}
}

// TestPartitionedShow checks the per-shard introspection columns: SHOW
// QUERIES reports shard count and merge lag, SHOW BASKETS lists the
// stream's and the query's shard baskets with their shard indexes.
func TestPartitionedShow(t *testing.T) {
	ctx := context.Background()
	part, _ := newPartitionedPair(t)
	if _, err := part.Exec(ctx, `CREATE CONTINUOUS QUERY q WITH (polling = true) AS
		SELECT * FROM [SELECT * FROM s] AS x`); err != nil {
		t.Fatal(err)
	}
	rel, err := part.Exec(ctx, "SHOW QUERIES")
	if err != nil {
		t.Fatal(err)
	}
	wantCols := []string{"name", "strategy", "shards", "merge_lag", "late_tuples", "watermark", "join_state", "join_evictions", "last_checkpoint", "replay_lag", "sql"}
	for i, w := range wantCols {
		if rel.Schema.Columns[i].Name != w {
			t.Fatalf("SHOW QUERIES column %d = %s, want %s", i, rel.Schema.Columns[i].Name, w)
		}
	}
	if rel.NumRows() != 1 || rel.Cols[2].Get(0).I != 4 || rel.Cols[3].Get(0).I != 0 {
		t.Fatalf("SHOW QUERIES = %v", rel)
	}
	// The effective arrangement is reported, not the declared strategy.
	if got := rel.Cols[1].Get(0).S; got != "partitioned" {
		t.Errorf("strategy = %q, want partitioned", got)
	}

	if err := part.Ingest(ctx, "s", kvRows([][2]int64{{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}, {6, 6}, {7, 7}})); err != nil {
		t.Fatal(err)
	}
	part.Drain()
	rel, err = part.Exec(ctx, "SHOW BASKETS")
	if err != nil {
		t.Fatal(err)
	}
	shardRows := map[string]int64{}
	for i := 0; i < rel.NumRows(); i++ {
		row := rel.Row(i)
		if !row[1].Null {
			shardRows[row[0].S] = row[1].I
		}
	}
	for i := 0; i < 4; i++ {
		if got, ok := shardRows[fmt.Sprintf("s#%d", i)]; !ok || got != int64(i) {
			t.Errorf("stream shard %d row = %v, %v", i, got, ok)
		}
		if got, ok := shardRows[fmt.Sprintf("q_out#%d", i)]; !ok || got != int64(i) {
			t.Errorf("query shard-out %d row = %v, %v", i, got, ok)
		}
	}
}

// TestPartitionedCreateErrors: invalid partitioning declarations are
// rejected with typed errors and register nothing.
func TestPartitionedCreateErrors(t *testing.T) {
	ctx := context.Background()
	e := New(Config{})
	for _, ddl := range []string{
		"CREATE BASKET s (k INT) WITH (partitions = 4, partition_by = nope)",
		"CREATE BASKET s (k INT) WITH (bogus = 1)",
		"CREATE BASKET s (k INT) WITH (partitions = 0)",
		// A typo'd column must fail even when partitions = 1 disables routing.
		"CREATE BASKET s (k INT) WITH (partitions = 1, partition_by = nope)",
	} {
		if _, err := e.Exec(ctx, ddl); !errors.Is(err, ErrInvalidOption) {
			t.Errorf("%s: err = %v, want ErrInvalidOption", ddl, err)
		}
	}
	// The failed declarations left no catalog entries behind.
	if _, err := e.Exec(ctx, "CREATE BASKET s (k INT) WITH (partitions = 2, partition_by = k)"); err != nil {
		t.Fatalf("name not reusable after failed creates: %v", err)
	}
}

// TestPartitionedConcurrentIngest is the -race stress: several producers
// ingest across shards while the concurrent scheduler fires shard
// pipelines and a subscriber drains — every tuple must come out exactly
// once.
func TestPartitionedConcurrentIngest(t *testing.T) {
	ctx := context.Background()
	e := New(Config{Workers: 4})
	if _, err := e.Exec(ctx, "CREATE BASKET s (k INT, v INT) WITH (partitions = 4, partition_by = k)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(ctx, `CREATE CONTINUOUS QUERY q WITH (depth = 64) AS
		SELECT * FROM [SELECT * FROM s] AS x WHERE x.v >= 0`); err != nil {
		t.Fatal(err)
	}
	q, err := e.Query("q")
	if err != nil {
		t.Fatal(err)
	}
	if q.Shards() != 4 {
		t.Fatalf("shards = %d", q.Shards())
	}
	if err := e.Start(ctx); err != nil {
		t.Fatal(err)
	}

	const producers, batches, batchSize = 4, 25, 20
	const want = producers * batches * batchSize
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				var pairs [][2]int64
				for i := 0; i < batchSize; i++ {
					pairs = append(pairs, [2]int64{int64(p*31 + b*7 + i), int64(i)})
				}
				if err := e.Ingest(ctx, "s", kvRows(pairs)); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}

	got := 0
	deadline := time.After(20 * time.Second)
	recvCtx, cancel := context.WithTimeout(ctx, 20*time.Second)
	defer cancel()
	for got < want {
		select {
		case <-deadline:
			t.Fatalf("timed out with %d of %d rows", got, want)
		default:
		}
		rel, err := q.Subscription().Recv(recvCtx)
		if err != nil {
			t.Fatalf("recv after %d of %d rows: %v", got, want, err)
		}
		got += rel.NumRows()
	}
	wg.Wait()
	if got != want {
		t.Fatalf("delivered %d rows, want %d", got, want)
	}
	if err := e.Stop(ctx); err != nil {
		t.Fatal(err)
	}
}
