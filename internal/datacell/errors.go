package datacell

import "errors"

// Sentinel errors of the engine API. Engine methods wrap them with detail
// (names, positions) via fmt.Errorf("%w: ..."), so callers branch with
// errors.Is and never parse message strings. Parse failures additionally
// carry a position and are asserted with errors.As against *sql.ParseError.
var (
	// ErrUnknownStream is returned when a statement or Ingest references a
	// stream that was never created.
	ErrUnknownStream = errors.New("datacell: unknown stream")
	// ErrUnknownQuery is returned when a name does not resolve to a
	// registered continuous query.
	ErrUnknownQuery = errors.New("datacell: unknown continuous query")
	// ErrDuplicateQuery is returned when a continuous query name is
	// already taken.
	ErrDuplicateQuery = errors.New("datacell: continuous query already exists")
	// ErrDuplicateName is returned when a CREATE collides with an existing
	// table, stream, or basket.
	ErrDuplicateName = errors.New("datacell: name already exists")
	// ErrEngineStopped is returned by every entry point after Stop.
	ErrEngineStopped = errors.New("datacell: engine stopped")
	// ErrNotContinuous is returned when continuous-query registration is
	// attempted on a query without a basket expression.
	ErrNotContinuous = errors.New("datacell: query has no basket expression")
	// ErrContinuousViaExec is returned when a continuous SELECT is passed
	// to Exec directly instead of through CREATE CONTINUOUS QUERY.
	ErrContinuousViaExec = errors.New("datacell: continuous query; use CREATE CONTINUOUS QUERY name AS ...")
	// ErrStreamInUse is returned when DROP targets a stream that standing
	// queries still read.
	ErrStreamInUse = errors.New("datacell: stream is read by continuous queries")
	// ErrSubscriptionClosed is returned by Recv after the subscription was
	// closed (explicitly, or because its query was dropped).
	ErrSubscriptionClosed = errors.New("datacell: subscription closed")
	// ErrInvalidOption is returned for an unknown or malformed WITH option
	// in CREATE CONTINUOUS QUERY (and the option helpers).
	ErrInvalidOption = errors.New("datacell: invalid query option")
	// ErrSelfJoin is returned when a continuous query joins a stream with
	// itself (two basket expressions over one stream); alias two distinct
	// streams instead.
	ErrSelfJoin = errors.New("datacell: stream joined with itself")
	// ErrUnsupportedJoin is returned when a stream-stream continuous query
	// has a join shape the streaming executor cannot run incrementally
	// (no equi-join conjunct, more than one join, or a WINDOW clause).
	ErrUnsupportedJoin = errors.New("datacell: unsupported streaming join")
)
