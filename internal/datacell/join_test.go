package datacell

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/vector"
)

// joinEngine builds an engine with two (optionally partitioned) streams
// l(k, v, et) and r(k, w, et) — et is an explicit event-time column so
// tests control the join clock deterministically.
func joinEngine(t *testing.T, partitions int) *Engine {
	t.Helper()
	e := New(Config{})
	ctx := context.Background()
	with := ""
	if partitions > 1 {
		with = fmt.Sprintf(" WITH (partitions = %d, partition_by = k)", partitions)
	}
	for _, ddl := range []string{
		"CREATE BASKET l (k INT, v INT, et INT)" + with,
		"CREATE BASKET r (k INT, w INT, et INT)" + with,
	} {
		if _, err := e.Exec(ctx, ddl); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func ingest3(t *testing.T, e *Engine, stream string, rows [][3]int64) {
	t.Helper()
	vr := make([][]vector.Value, len(rows))
	for i, r := range rows {
		vr[i] = []vector.Value{vector.NewInt(r[0]), vector.NewInt(r[1]), vector.NewInt(r[2])}
	}
	if err := e.Ingest(context.Background(), stream, vr); err != nil {
		t.Fatal(err)
	}
}

// sortedRows renders a relation's rows as sorted strings so result sets
// compare as multisets, independent of emission order.
func queryRows(t *testing.T, e *Engine, query string) []string {
	t.Helper()
	rel, err := e.Exec(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, rel.NumRows())
	for i := 0; i < rel.NumRows(); i++ {
		var parts []string
		for _, v := range rel.Row(i) {
			parts = append(parts, v.String())
		}
		out = append(out, strings.Join(parts, "|"))
	}
	sort.Strings(out)
	return out
}

const symJoinSQL = `SELECT l.k AS k, l.v AS v, r.w AS w
	FROM [SELECT * FROM l] AS l JOIN [SELECT * FROM r] AS r ON l.k = r.k`

// A stream-stream equi-join finds matches across firings exactly once:
// tuples that arrived in earlier firings still pair with later arrivals
// of the other side, and no pair is emitted twice.
func TestStreamStreamJoinCrossFiring(t *testing.T) {
	e := joinEngine(t, 1)
	q, err := e.RegisterContinuous("j", symJoinSQL, WithSQLPolling())
	if err != nil {
		t.Fatal(err)
	}
	if q.Partitioned() {
		t.Fatal("flat engine unexpectedly partitioned")
	}

	// Firing 1: only the left side has data — no matches yet.
	ingest3(t, e, "l", [][3]int64{{1, 10, 0}})
	e.Drain()
	if got := queryRows(t, e, "SELECT * FROM j_out"); len(got) != 0 {
		t.Fatalf("premature results %v", got)
	}
	// Firing 2: the right arrival meets the buffered left tuple.
	ingest3(t, e, "r", [][3]int64{{1, 100, 0}})
	e.Drain()
	if got := queryRows(t, e, "SELECT * FROM j_out"); len(got) != 1 {
		t.Fatalf("rows = %v, want 1 match", got)
	}
	// Firing 3: a second left tuple with the same key matches the
	// accumulated right tuple — once, without re-emitting the first pair.
	ingest3(t, e, "l", [][3]int64{{1, 11, 0}})
	e.Drain()
	if got := queryRows(t, e, "SELECT * FROM j_out"); len(got) != 2 {
		t.Fatalf("rows = %v, want 2 matches", got)
	}
	// Both sides in one drain, plus a key that never matches.
	ingest3(t, e, "l", [][3]int64{{2, 20, 0}, {9, 90, 0}})
	ingest3(t, e, "r", [][3]int64{{2, 200, 0}})
	e.Drain()
	got := queryRows(t, e, "SELECT * FROM j_out")
	want := []string{"1|10|100", "1|11|100", "2|20|200"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	if st := q.Stats(); st.JoinState != 6 {
		t.Errorf("join state = %d, want 6 buffered rows", st.JoinState)
	}
	if q.InputBacklog() != 0 {
		t.Errorf("input backlog = %d, want fully consumed", q.InputBacklog())
	}
}

// Duplicate tuples are distinct join partners: two equal left rows both
// match, yielding two result rows.
func TestStreamStreamJoinDuplicates(t *testing.T) {
	e := joinEngine(t, 1)
	if _, err := e.RegisterContinuous("j", symJoinSQL, WithSQLPolling()); err != nil {
		t.Fatal(err)
	}
	ingest3(t, e, "l", [][3]int64{{7, 1, 0}, {7, 1, 0}})
	e.Drain()
	ingest3(t, e, "r", [][3]int64{{7, 2, 0}})
	e.Drain()
	if got := queryRows(t, e, "SELECT * FROM j_out"); len(got) != 2 {
		t.Fatalf("rows = %v, want the duplicate to match twice", got)
	}
}

// WITHIN bounds both the match band and the retained state: only pairs
// within the event-time distance join, expired entries are evicted, and
// probes behind the watermark are counted late.
func TestStreamStreamJoinWithinBoundsState(t *testing.T) {
	e := joinEngine(t, 1)
	q, err := e.RegisterContinuous("j",
		`SELECT l.k AS k, l.et AS lt, r.et AS rt
		 FROM [SELECT * FROM l] AS l JOIN [SELECT * FROM r] AS r
		 ON l.k = r.k WITHIN 100`,
		WithSQLPolling(), WithEventTimeColumn("et"))
	if err != nil {
		t.Fatal(err)
	}
	// In-band and out-of-band pairs for one key.
	ingest3(t, e, "l", [][3]int64{{1, 0, 1000}})
	e.Drain()
	ingest3(t, e, "r", [][3]int64{{1, 0, 1050}, {1, 0, 1500}})
	e.Drain()
	got := queryRows(t, e, "SELECT * FROM j_out")
	if fmt.Sprint(got) != fmt.Sprint([]string{"1|1000|1050"}) {
		t.Fatalf("rows = %v, want only the in-band pair", got)
	}

	// Advance event time far past the band on both sides: earlier entries
	// are expired once the batch is large enough to trigger compaction.
	var lRows, rRows [][3]int64
	for i := int64(0); i < 600; i++ {
		lRows = append(lRows, [3]int64{100 + i, 0, 100_000 + i})
		rRows = append(rRows, [3]int64{200 + i, 0, 100_000 + i})
	}
	ingest3(t, e, "l", lRows)
	ingest3(t, e, "r", rRows)
	e.Drain()
	st := q.Stats()
	if st.JoinEvictions == 0 {
		t.Errorf("evictions = 0, want expiry behind the watermark")
	}
	if st.JoinState > 2*1200 {
		t.Errorf("join state = %d, want bounded near the live rows", st.JoinState)
	}
	// A straggler far behind the watermark counts late.
	ingest3(t, e, "l", [][3]int64{{1, 0, 1060}})
	e.Drain()
	if st := q.Stats(); st.Late == 0 {
		t.Errorf("late = 0, want the straggler counted")
	}
}

// Join state stays bounded under WITHIN across a long advancing stream:
// the retained rows track the band, not the stream length.
func TestStreamStreamJoinStateBounded(t *testing.T) {
	e := joinEngine(t, 1)
	q, err := e.RegisterContinuous("j",
		`SELECT l.k AS k FROM [SELECT * FROM l] AS l JOIN [SELECT * FROM r] AS r
		 ON l.k = r.k WITHIN 64`,
		WithSQLPolling(), WithEventTimeColumn("et"))
	if err != nil {
		t.Fatal(err)
	}
	peak := int64(0)
	for batch := int64(0); batch < 50; batch++ {
		var lRows, rRows [][3]int64
		for i := int64(0); i < 64; i++ {
			et := batch*64 + i
			lRows = append(lRows, [3]int64{et % 7, 0, et})
			rRows = append(rRows, [3]int64{et % 5, 0, et})
		}
		ingest3(t, e, "l", lRows)
		ingest3(t, e, "r", rRows)
		e.Drain()
		if st := q.Stats().JoinState; st > peak {
			peak = st
		}
	}
	// Live rows per side ≈ 2×band (the [wm−within, max] span plus the
	// amortization slack); 3200 tuples per side must not accumulate.
	if peak > 1200 {
		t.Fatalf("peak join state = %d, want bounded by the WITHIN band", peak)
	}
	if q.JoinEvictions() == 0 {
		t.Fatal("no evictions under an advancing watermark")
	}
}

// Typed error paths for JOIN registration.
func TestJoinTypedErrors(t *testing.T) {
	e := joinEngine(t, 1)
	cases := []struct {
		name string
		sql  string
		want error
	}{
		{"self-join", `SELECT a.k AS k FROM [SELECT * FROM l] AS a JOIN [SELECT * FROM l] AS b ON a.k = b.k`, ErrSelfJoin},
		{"unknown-right-stream", `SELECT a.k AS k FROM [SELECT * FROM l] AS a JOIN [SELECT * FROM nope] AS b ON a.k = b.k`, ErrUnknownStream},
		{"unknown-join-table", `SELECT a.k AS k FROM [SELECT * FROM l] AS a JOIN nope AS b ON a.k = b.k`, ErrUnknownStream},
		{"no-equi-key", `SELECT a.k AS k FROM [SELECT * FROM l] AS a JOIN [SELECT * FROM r] AS b ON a.k < b.k`, ErrUnsupportedJoin},
		{"windowed-stream-stream", `SELECT a.k AS k FROM [SELECT * FROM l] AS a JOIN [SELECT * FROM r] AS b ON a.k = b.k WINDOW ROWS 4`, ErrUnsupportedJoin},
	}
	for _, c := range cases {
		_, err := e.RegisterContinuous("q_"+c.name, c.sql)
		if !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
	// One-time SELECT joining an unknown relation is typed too.
	if _, err := e.Exec(context.Background(), "SELECT * FROM l JOIN nope ON l.k = nope.k"); !errors.Is(err, ErrUnknownStream) {
		t.Errorf("one-time unknown join relation: %v", err)
	}
}

// Stream-table enrichment: the table-side hash is cached across firings
// and re-snapshot when the table changes; stream tuples match the table
// as of their firing.
func TestStreamTableJoinEnrichment(t *testing.T) {
	e := joinEngine(t, 1)
	ctx := context.Background()
	for _, stmt := range []string{
		"CREATE TABLE ref (k INT, name VARCHAR)",
		"INSERT INTO ref VALUES (1, 'one'), (2, 'two')",
	} {
		if _, err := e.Exec(ctx, stmt); err != nil {
			t.Fatal(err)
		}
	}
	q, err := e.RegisterContinuous("enrich",
		`SELECT s.k AS k, s.v AS v, ref.name AS name
		 FROM [SELECT * FROM l] AS s JOIN ref ON s.k = ref.k`,
		WithSQLPolling())
	if err != nil {
		t.Fatal(err)
	}
	ingest3(t, e, "l", [][3]int64{{1, 10, 0}, {3, 30, 0}})
	e.Drain()
	got := queryRows(t, e, "SELECT * FROM enrich_out")
	if fmt.Sprint(got) != fmt.Sprint([]string{"1|10|one"}) {
		t.Fatalf("rows = %v", got)
	}
	if st := q.Stats(); st.JoinState != 2 {
		t.Errorf("join state = %d, want the 2 materialized table rows", st.JoinState)
	}
	// The table changes; later stream tuples see the new row. The earlier
	// non-matching tuple was consumed, not retained — no retro-match.
	if _, err := e.Exec(ctx, "INSERT INTO ref VALUES (3, 'three')"); err != nil {
		t.Fatal(err)
	}
	ingest3(t, e, "l", [][3]int64{{3, 31, 0}})
	e.Drain()
	got = queryRows(t, e, "SELECT * FROM enrich_out")
	want := []string{"1|10|one", "3|31|three"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	if st := q.Stats(); st.JoinState != 3 {
		t.Errorf("join state = %d, want 3 after re-snapshot", st.JoinState)
	}
}

// Property: a co-partitioned stream-stream join produces exactly the flat
// pipeline's result set for any lateness-bounded shuffle of both inputs.
func TestPropCoPartitionedJoinMatchesFlat(t *testing.T) {
	const (
		n        = 400
		keys     = 13
		within   = 50
		lateness = 16
	)
	joinSQL := fmt.Sprintf(`SELECT l.k AS k, l.v AS v, r.w AS w
		FROM [SELECT * FROM l] AS l JOIN [SELECT * FROM r] AS r
		ON l.k = r.k WITHIN %d`, within)

	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		mk := func(valBase int64) [][3]int64 {
			rows := make([][3]int64, n)
			for i := range rows {
				rows[i] = [3]int64{rng.Int63n(keys), valBase + int64(i), int64(i)}
			}
			// Lateness-bounded shuffle of event-time order: shuffling within
			// lateness-sized blocks keeps every tuple less than `lateness`
			// behind the running maximum, so nothing is dropped as late.
			for base := 0; base < len(rows); base += lateness {
				end := base + lateness
				if end > len(rows) {
					end = len(rows)
				}
				rng.Shuffle(end-base, func(a, b int) {
					rows[base+a], rows[base+b] = rows[base+b], rows[base+a]
				})
			}
			return rows
		}
		lRows, rRows := mk(1_000), mk(2_000)

		run := func(partitions int) ([]string, *Query) {
			e := joinEngine(t, partitions)
			q, err := e.RegisterContinuous("j", joinSQL,
				WithSQLPolling(), WithEventTimeColumn("et"), WithLateness(lateness))
			if err != nil {
				t.Fatal(err)
			}
			// Interleave both sides in random chunk sizes, draining between
			// chunks so matches span many firings.
			li, ri := 0, 0
			for li < len(lRows) || ri < len(rRows) {
				if li < len(lRows) {
					hi := li + 1 + rng.Intn(40)
					if hi > len(lRows) {
						hi = len(lRows)
					}
					ingest3(t, e, "l", lRows[li:hi])
					li = hi
				}
				if ri < len(rRows) {
					hi := ri + 1 + rng.Intn(40)
					if hi > len(rRows) {
						hi = len(rRows)
					}
					ingest3(t, e, "r", rRows[ri:hi])
					ri = hi
				}
				e.Drain()
			}
			e.Drain()
			return queryRows(t, e, "SELECT * FROM j_out"), q
		}

		flat, fq := run(1)
		sharded, sq := run(4)
		if fq.Partitioned() || fq.Shards() != 1 {
			t.Fatalf("flat query: partitioned=%v shards=%d", fq.Partitioned(), fq.Shards())
		}
		if !sq.Partitioned() || sq.Shards() != 4 {
			t.Fatalf("sharded query fell back: partitioned=%v shards=%d", sq.Partitioned(), sq.Shards())
		}

		// Brute-force expectation over the full inputs: the sorted batch
		// join with the WITHIN band.
		var want []string
		for _, lr := range lRows {
			for _, rr := range rRows {
				d := lr[2] - rr[2]
				if d < 0 {
					d = -d
				}
				if lr[0] == rr[0] && d <= within {
					want = append(want, fmt.Sprintf("%d|%d|%d", lr[0], lr[1], rr[1]))
				}
			}
		}
		sort.Strings(want)

		if fmt.Sprint(flat) != fmt.Sprint(want) {
			t.Fatalf("seed %d: flat join diverges from batch join (%d vs %d rows)", seed, len(flat), len(want))
		}
		if fmt.Sprint(sharded) != fmt.Sprint(flat) {
			t.Fatalf("seed %d: co-partitioned join diverges from flat (%d vs %d rows)", seed, len(sharded), len(flat))
		}
	}
}

// A broadcast stream-table join over a partitioned stream produces the
// flat pipeline's result set.
func TestBroadcastJoinMatchesFlat(t *testing.T) {
	joinSQL := `SELECT s.k AS k, s.v AS v, ref.name AS name
		FROM [SELECT * FROM l] AS s JOIN ref ON s.k = ref.k`
	run := func(partitions int) ([]string, *Query) {
		e := joinEngine(t, partitions)
		ctx := context.Background()
		for _, stmt := range []string{
			"CREATE TABLE ref (k INT, name VARCHAR)",
			"INSERT INTO ref VALUES (0, 'zero'), (1, 'one'), (2, 'two'), (3, 'three')",
		} {
			if _, err := e.Exec(ctx, stmt); err != nil {
				t.Fatal(err)
			}
		}
		q, err := e.RegisterContinuous("j", joinSQL, WithSQLPolling())
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for b := 0; b < 10; b++ {
			var rows [][3]int64
			for i := 0; i < 50; i++ {
				rows = append(rows, [3]int64{rng.Int63n(6), int64(b*50 + i), 0})
			}
			ingest3(t, e, "l", rows)
			e.Drain()
		}
		return queryRows(t, e, "SELECT * FROM j_out"), q
	}
	flat, _ := run(1)
	sharded, sq := run(4)
	if !sq.Partitioned() || sq.Shards() != 4 {
		t.Fatalf("broadcast join fell back: partitioned=%v shards=%d", sq.Partitioned(), sq.Shards())
	}
	if len(flat) == 0 || fmt.Sprint(flat) != fmt.Sprint(sharded) {
		t.Fatalf("broadcast result diverges: flat %d rows, sharded %d rows", len(flat), len(sharded))
	}
}

// Stream-table join under concurrent table growth and subscription drain
// (exercised with -race): every emitted row carries a name consistent
// with its key, and the engine drains cleanly.
func TestStreamTableJoinConcurrent(t *testing.T) {
	e := joinEngine(t, 4)
	ctx := context.Background()
	if _, err := e.Exec(ctx, "CREATE TABLE ref (k INT, name VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		if _, err := e.Exec(ctx, fmt.Sprintf("INSERT INTO ref VALUES (%d, 'n%d')", k, k)); err != nil {
			t.Fatal(err)
		}
	}
	q, err := e.RegisterContinuous("j",
		`SELECT s.k AS k, ref.name AS name
		 FROM [SELECT * FROM l] AS s JOIN ref ON s.k = ref.k`,
		WithBackpressure(BackpressureDropOldest), WithSubscriptionDepth(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(ctx); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // subscription drain: every row's name must match its key
		defer wg.Done()
		for {
			select {
			case rel, ok := <-q.Subscription().C():
				if !ok {
					return
				}
				for i := 0; i < rel.NumRows(); i++ {
					row := rel.Row(i)
					if want := fmt.Sprintf("n%d", row[0].I); row[1].S != want {
						t.Errorf("row %v: name mismatch", row)
						return
					}
				}
			case <-stop:
				return
			}
		}
	}()
	var inserts sync.WaitGroup
	inserts.Add(1)
	go func() { // concurrent table growth
		defer inserts.Done()
		for k := 8; k < 64; k++ {
			if _, err := e.Exec(ctx, fmt.Sprintf("INSERT INTO ref VALUES (%d, 'n%d')", k, k)); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	}()
	for b := 0; b < 40; b++ {
		var rows [][3]int64
		for i := 0; i < 32; i++ {
			rows = append(rows, [3]int64{int64((b*32 + i) % 64), int64(i), 0})
		}
		ingest3(t, e, "l", rows)
	}
	inserts.Wait()
	if err := e.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
}

// DROP CONTINUOUS QUERY tears a co-partitioned join down completely:
// scheduler transitions, shard output baskets, shard readers on BOTH
// streams (so the streams can be dropped afterwards).
func TestJoinTeardown(t *testing.T) {
	e := joinEngine(t, 4)
	ctx := context.Background()
	q, err := e.RegisterContinuous("j", symJoinSQL, WithSQLPolling())
	if err != nil {
		t.Fatal(err)
	}
	if !q.Partitioned() {
		t.Fatal("expected co-partitioned execution")
	}
	ingest3(t, e, "l", [][3]int64{{1, 1, 0}})
	ingest3(t, e, "r", [][3]int64{{1, 2, 0}})
	e.Drain()
	before := len(e.Scheduler().Transitions())
	if _, err := e.Exec(ctx, "DROP CONTINUOUS QUERY j"); err != nil {
		t.Fatal(err)
	}
	// 4 shard factories + merge + (no emitter: polling) gone.
	if after := len(e.Scheduler().Transitions()); before-after != 5 {
		t.Errorf("transitions %d -> %d, want 5 removed", before, after)
	}
	if _, err := e.Exec(ctx, "SELECT * FROM j_out"); err == nil {
		t.Error("j_out still queryable after drop")
	}
	for _, stream := range []string{"l", "r"} {
		if _, err := e.Exec(ctx, "DROP BASKET "+stream); err != nil {
			t.Errorf("drop %s after query teardown: %v", stream, err)
		}
	}
	// Ingest into dropped streams fails; nothing leaked keeps routing.
	if err := e.Ingest(ctx, "l", nil); !errors.Is(err, ErrUnknownStream) {
		t.Errorf("ingest into dropped stream: %v", err)
	}
}

// A one-time SELECT honors the WITHIN band too (batch join path): only
// pairs whose arrival timestamps are close enough match.
func TestOneTimeJoinWithin(t *testing.T) {
	clk := metrics.NewManualClock(0)
	e := New(Config{Clock: clk})
	ctx := context.Background()
	for _, ddl := range []string{
		"CREATE BASKET a (x INT)",
		"CREATE BASKET b (y INT)",
	} {
		if _, err := e.Exec(ctx, ddl); err != nil {
			t.Fatal(err)
		}
	}
	ingest := func(stream string, v int64) {
		if err := e.Ingest(ctx, stream, [][]vector.Value{{vector.NewInt(v)}}); err != nil {
			t.Fatal(err)
		}
	}
	ingest("a", 1) // t = 0
	ingest("a", 3) // t = 0
	clk.Advance(10)
	ingest("b", 1) // t = 10: within 50 of a's tuples
	clk.Advance(100)
	ingest("b", 3) // t = 110: key matches, but outside the band
	got := queryRows(t, e, "SELECT a.x AS x, b.y AS y FROM a JOIN b ON a.x = b.y WITHIN 50")
	if fmt.Sprint(got) != fmt.Sprint([]string{"1|1"}) {
		t.Fatalf("rows = %v, want only the in-band pair", got)
	}
}

// SHOW QUERIES surfaces join_state and join_evictions.
func TestShowQueriesJoinColumns(t *testing.T) {
	e := joinEngine(t, 1)
	if _, err := e.RegisterContinuous("j", symJoinSQL, WithSQLPolling()); err != nil {
		t.Fatal(err)
	}
	ingest3(t, e, "l", [][3]int64{{1, 1, 0}})
	e.Drain()
	rel, err := e.Exec(context.Background(), "SHOW QUERIES")
	if err != nil {
		t.Fatal(err)
	}
	jsIdx := rel.Schema.Index("join_state")
	jeIdx := rel.Schema.Index("join_evictions")
	if jsIdx < 0 || jeIdx < 0 {
		t.Fatalf("SHOW QUERIES missing join columns: %v", rel.Schema)
	}
	if rel.NumRows() != 1 || rel.Row(0)[jsIdx].I != 1 {
		t.Errorf("join_state = %v, want 1 buffered row", rel.Row(0)[jsIdx])
	}
}
