package datacell

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// copyTree clones a durability data directory, simulating the on-disk
// state a crash would leave behind: the source engine is still "running"
// (never stopped), so only fsynced bytes are guaranteed present — but a
// same-process copy sees the page cache, which is exactly the acked
// prefix plus whatever unflushed tail the OS would also have kept.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatalf("copyTree: %v", err)
	}
}

func openDurable(t *testing.T, dir string) *Engine {
	t.Helper()
	e, err := Open(context.Background(), Config{
		DataDir:            dir,
		CheckpointInterval: -1, // checkpoints driven explicitly by the test
	})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return e
}

// A clean Stop writes a final checkpoint covering the whole log, so the
// next Open skips replay entirely and resumes with identical state.
func TestDurableCleanRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	e := openDurable(t, dir)
	if _, err := e.Exec(ctx, "CREATE BASKET R (a INT, b INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(ctx, "CREATE TABLE dim (k INT, v VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(ctx, "INSERT INTO dim VALUES (1, 'one'), (2, 'two')"); err != nil {
		t.Fatal(err)
	}
	q, err := e.RegisterContinuous("q1",
		"SELECT * FROM [SELECT * FROM R] AS S WHERE S.a > 10")
	if err != nil {
		t.Fatal(err)
	}
	ingestPairs(t, e, "R", [][2]int64{{5, 1}, {15, 2}, {25, 3}})
	e.Drain()
	if got := countRows(collect(q)); got != 2 {
		t.Fatalf("pre-stop emissions = %d rows, want 2", got)
	}
	if err := e.Stop(ctx); err != nil {
		t.Fatalf("Stop: %v", err)
	}

	e2 := openDurable(t, dir)
	defer e2.Stop(ctx)
	st := e2.Stats()
	if !st.Durable || !st.CleanStart || st.RecoveredRecords != 0 {
		t.Fatalf("clean restart stats = %+v, want CleanStart with 0 replayed", st)
	}
	if st.CheckpointSeq == 0 {
		t.Errorf("CheckpointSeq = 0, want the final checkpoint's sequence")
	}
	if got := e2.Ingested("R"); got != 3 {
		t.Errorf("Ingested(R) = %d, want 3", got)
	}
	// Static table contents came back through the checkpoint image.
	rel, err := e2.Exec(ctx, "SELECT v FROM dim WHERE k = 2")
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 1 || rel.Cols[0].Get(0).S != "two" {
		t.Errorf("dim after restart = %v", rel)
	}
	q2, err := e2.Query("q1")
	if err != nil {
		t.Fatalf("query not recovered: %v", err)
	}
	// No re-emission of pre-restart results; new tuples flow normally.
	e2.Drain()
	if got := countRows(collect(q2)); got != 0 {
		t.Fatalf("clean restart re-emitted %d rows", got)
	}
	ingestPairs(t, e2, "R", [][2]int64{{50, 4}, {3, 5}})
	e2.Drain()
	if got := countRows(collect(q2)); got != 1 {
		t.Errorf("post-restart emissions = %d rows, want 1", got)
	}
	ci := q2.Checkpoint()
	if !ci.Durable || ci.Delivered != 3 {
		t.Errorf("Checkpoint() = %+v, want durable with 3 delivered", ci)
	}
}

// A dirty restart (no Stop) replays the WAL tail past the newest
// checkpoint: every acknowledged batch survives and already-delivered
// rows are suppressed rather than re-emitted.
func TestDurableDirtyRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	e := openDurable(t, dir)
	if _, err := e.Exec(ctx, "CREATE BASKET R (a INT, b INT)"); err != nil {
		t.Fatal(err)
	}
	q, err := e.RegisterContinuous("q1",
		"SELECT * FROM [SELECT * FROM R] AS S WHERE S.a > 10")
	if err != nil {
		t.Fatal(err)
	}
	ingestPairs(t, e, "R", [][2]int64{{15, 1}, {5, 2}})
	e.Drain()
	if got := countRows(collect(q)); got != 1 {
		t.Fatalf("batch 1 emissions = %d", got)
	}
	if err := e.Checkpoint(ctx); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	ingestPairs(t, e, "R", [][2]int64{{25, 3}, {7, 4}})
	e.Drain()
	if got := countRows(collect(q)); got != 1 {
		t.Fatalf("batch 2 emissions = %d", got)
	}
	// Frontier records are appended asynchronously; this committed batch
	// group-commits them to disk along with itself.
	ingestPairs(t, e, "R", [][2]int64{{1, 5}})

	crash := t.TempDir()
	copyTree(t, dir, crash)

	e2 := openDurable(t, crash)
	defer e2.Stop(ctx)
	st := e2.Stats()
	if st.CleanStart {
		t.Fatal("dirty restart reported CleanStart")
	}
	if st.RecoveredRecords == 0 {
		t.Fatal("dirty restart replayed nothing")
	}
	if got := e2.Ingested("R"); got != 5 {
		t.Errorf("Ingested(R) = %d, want 5", got)
	}
	q2, err := e2.Query("q1")
	if err != nil {
		t.Fatalf("query not recovered: %v", err)
	}
	e2.Drain()
	if got := countRows(collect(q2)); got != 0 {
		t.Fatalf("dirty restart re-emitted %d rows", got)
	}
	ingestPairs(t, e2, "R", [][2]int64{{99, 6}})
	e2.Drain()
	if got := countRows(collect(q2)); got != 1 {
		t.Errorf("post-recovery emissions = %d, want 1", got)
	}
	// The original engine keeps running on its own directory; shut it
	// down last so the copied tree was taken while "live".
	if err := e.Stop(ctx); err != nil {
		t.Fatal(err)
	}
}

// WITH (durable = false) excludes a query's operator state from
// checkpoints: DDL replay re-creates it, but it restarts from empty and
// may re-emit (documented at-least-once for opted-out queries).
func TestDurableOptOutQuery(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	e := openDurable(t, dir)
	if _, err := e.Exec(ctx, "CREATE BASKET R (a INT, b INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(ctx, `CREATE CONTINUOUS QUERY eph WITH (durable = false) AS
		SELECT * FROM [SELECT * FROM R] AS S WHERE S.a > 10`); err != nil {
		t.Fatal(err)
	}
	q, err := e.Query("eph")
	if err != nil {
		t.Fatal(err)
	}
	if q.Checkpoint().Durable {
		t.Error("durable=false query reports Durable")
	}
	ingestPairs(t, e, "R", [][2]int64{{15, 1}})
	e.Drain()
	if got := countRows(collect(q)); got != 1 {
		t.Fatalf("emissions = %d", got)
	}
	if err := e.Stop(ctx); err != nil {
		t.Fatal(err)
	}

	e2 := openDurable(t, dir)
	defer e2.Stop(ctx)
	if _, err := e2.Query("eph"); err != nil {
		t.Fatalf("DDL replay lost the query: %v", err)
	}
}

// Engines without a DataDir reject durability operations with typed
// errors and report a zero posture.
func TestNotDurable(t *testing.T) {
	e, _ := newEngine(t)
	if err := e.Checkpoint(context.Background()); !errors.Is(err, ErrNotDurable) {
		t.Errorf("Checkpoint on volatile engine = %v, want ErrNotDurable", err)
	}
	if st := e.Stats(); st.Durable || st.WALSegments != 0 {
		t.Errorf("volatile Stats = %+v", st)
	}
	q, err := e.RegisterContinuous("q", "SELECT * FROM [SELECT * FROM R] AS S")
	if err != nil {
		t.Fatal(err)
	}
	if ci := q.Checkpoint(); ci.Durable {
		t.Errorf("volatile query Checkpoint = %+v", ci)
	}
}

// Explicit checkpoints advance the durability posture visible through
// Stats and Query.Checkpoint.
func TestCheckpointAdvancesPosture(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	e := openDurable(t, dir)
	defer e.Stop(ctx)
	if _, err := e.Exec(ctx, "CREATE BASKET R (a INT, b INT)"); err != nil {
		t.Fatal(err)
	}
	q, err := e.RegisterContinuous("q1",
		"SELECT * FROM [SELECT * FROM R] AS S WHERE S.a > 10")
	if err != nil {
		t.Fatal(err)
	}
	ingestPairs(t, e, "R", [][2]int64{{15, 1}, {25, 2}})
	e.Drain()
	before := e.Stats()
	if before.CheckpointSeq != 0 || !before.LastCheckpoint.IsZero() {
		t.Fatalf("pre-checkpoint stats = %+v", before)
	}
	if q.Checkpoint().ReplayLag == 0 {
		t.Error("ReplayLag = 0 before the first checkpoint with records logged")
	}
	if err := e.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	after := e.Stats()
	if after.CheckpointSeq == 0 || after.LastCheckpoint.IsZero() {
		t.Fatalf("post-checkpoint stats = %+v", after)
	}
	ci := q.Checkpoint()
	if ci.ReplayLag != 0 {
		t.Errorf("ReplayLag = %d after checkpoint, want 0", ci.ReplayLag)
	}
	if time.Since(ci.LastCheckpoint) > time.Minute {
		t.Errorf("LastCheckpoint = %v", ci.LastCheckpoint)
	}
}
