package datacell

// Hand-rolled binary codec for WAL records. The ingest record is on the
// hot path of every durable Ingest call — gob's reflective encoding
// costs more CPU per 4096-row batch than the entire volatile ingest
// path, so records use a fixed little-endian layout instead:
//
//	[u8 format][u8 kind]
//	'S': [str stmt]
//	'I': [str stream][u16 ncols] ncols × column
//	'F': [str query][u64 count]
//
//	str    = [u32 len][len bytes]
//	column = [u8 typ][i64s][f64s][bools][strs][bools]   (Wire field order)
//	slices = [u32 n][n × payload]                       (strs: n × str)
//
// Int columns are zigzag-varint coded ([u32 n][n × varint]): group
// commit is fsync-byte-bound, so shrinking the dominant column type
// directly buys ingest throughput. Floats stay fixed 8-byte (varints
// cannot compress high-entropy mantissa bits).
//
// Checkpoint images keep using gob — they are rare, large, and carry
// nested maps the fixed layout would complicate for no hot-path gain.

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/vector"
	"repro/internal/wal"
)

const walFormatV1 byte = 0x01

func encodeRecord(rec *walRecord) ([]byte, error) {
	n := 2 + 4 + len(rec.Stmt) + 4 + len(rec.Stream) + 4 + len(rec.Query) + 8
	for i := range rec.Cols {
		w := &rec.Cols[i]
		n += 1 + 5*4 + 3*len(w.Ints) + 8*len(w.Flts) + len(w.Bools) + len(w.Nulls)
		for _, s := range w.Strs {
			n += 4 + len(s)
		}
	}
	b := make([]byte, 0, n)
	b = append(b, walFormatV1, rec.Kind)
	switch rec.Kind {
	case recStmt:
		b = putStr(b, rec.Stmt)
	case recIngest:
		b = putStr(b, rec.Stream)
		if len(rec.Cols) > math.MaxUint16 {
			return nil, fmt.Errorf("wal record: %d columns", len(rec.Cols))
		}
		b = binary.LittleEndian.AppendUint16(b, uint16(len(rec.Cols)))
		for i := range rec.Cols {
			b = putWire(b, &rec.Cols[i])
		}
	case recFrontier:
		b = putStr(b, rec.Query)
		b = binary.LittleEndian.AppendUint64(b, uint64(rec.Count))
	default:
		return nil, fmt.Errorf("wal record: unknown kind %q", rec.Kind)
	}
	return b, nil
}

// appendIngestRecord encodes an 'I' record for cols directly from the
// live vectors into dst, byte-identical to encodeRecord with
// WireColumns(cols). The hot path uses this to skip the intermediate
// Wire deep copy and, with a pooled dst, run allocation-free in steady
// state — ingest throughput under the WAL is fsync- and GC-bound, not
// CPU-bound, so every avoided per-batch allocation is visible.
func appendIngestRecord(dst []byte, stream string, cols []*vector.Vector) ([]byte, error) {
	b := append(dst, walFormatV1, recIngest)
	b = putStr(b, stream)
	if len(cols) > math.MaxUint16 {
		return nil, fmt.Errorf("wal record: %d columns", len(cols))
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(cols)))
	for _, c := range cols {
		b = append(b, byte(c.Type()))
		ints := c.Ints()
		b = binary.LittleEndian.AppendUint32(b, uint32(len(ints)))
		for _, v := range ints {
			b = binary.AppendVarint(b, v)
		}
		flts := c.Floats()
		b = binary.LittleEndian.AppendUint32(b, uint32(len(flts)))
		for _, v := range flts {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
		b = putBools(b, c.Bools())
		strs := c.Strings()
		b = binary.LittleEndian.AppendUint32(b, uint32(len(strs)))
		for _, s := range strs {
			b = putStr(b, s)
		}
		b = putBools(b, c.Nulls())
	}
	return b, nil
}

func putStr(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func putWire(b []byte, w *vector.Wire) []byte {
	b = append(b, byte(w.Typ))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(w.Ints)))
	for _, v := range w.Ints {
		b = binary.AppendVarint(b, v)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(w.Flts)))
	for _, v := range w.Flts {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	b = putBools(b, w.Bools)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(w.Strs)))
	for _, s := range w.Strs {
		b = putStr(b, s)
	}
	return putBools(b, w.Nulls)
}

func putBools(b []byte, vs []bool) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(vs)))
	for _, v := range vs {
		if v {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

// walReader decodes the layout above with bounds checks on every read:
// the WAL's CRC already rejects bit rot, so a short or oversized field
// here means a record written by something that was not this codec.
type walReader struct {
	p   []byte
	off int
}

func (r *walReader) corrupt(what string) error {
	return fmt.Errorf("%w: truncated record (%s at offset %d)", wal.ErrCorruptWAL, what, r.off)
}

func (r *walReader) bytes(n int, what string) ([]byte, error) {
	if n < 0 || n > len(r.p)-r.off {
		return nil, r.corrupt(what)
	}
	b := r.p[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *walReader) u32(what string) (uint32, error) {
	b, err := r.bytes(4, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *walReader) str(what string) (string, error) {
	n, err := r.u32(what)
	if err != nil {
		return "", err
	}
	b, err := r.bytes(int(n), what)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *walReader) bools(what string) ([]bool, error) {
	n, err := r.u32(what)
	if err != nil {
		return nil, err
	}
	b, err := r.bytes(int(n), what)
	if err != nil {
		return nil, err
	}
	if len(b) == 0 {
		return nil, nil
	}
	out := make([]bool, len(b))
	for i, v := range b {
		out[i] = v != 0
	}
	return out, nil
}

func (r *walReader) wire(w *vector.Wire) error {
	tb, err := r.bytes(1, "column type")
	if err != nil {
		return err
	}
	w.Typ = vector.Type(tb[0])
	n, err := r.u32("int column")
	if err != nil {
		return err
	}
	if n > 0 {
		if int(n) > len(r.p)-r.off { // each varint costs ≥ 1 byte
			return r.corrupt("int column")
		}
		w.Ints = make([]int64, n)
		for i := range w.Ints {
			v, sz := binary.Varint(r.p[r.off:])
			if sz <= 0 {
				return r.corrupt("int column")
			}
			r.off += sz
			w.Ints[i] = v
		}
	}
	n, err = r.u32("float column")
	if err != nil {
		return err
	}
	if raw, err := r.bytes(int(n)*8, "float column"); err != nil {
		return err
	} else if n > 0 {
		w.Flts = make([]float64, n)
		for i := range w.Flts {
			w.Flts[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
	}
	if w.Bools, err = r.bools("bool column"); err != nil {
		return err
	}
	n, err = r.u32("string column")
	if err != nil {
		return err
	}
	if n > 0 {
		if int(n) > len(r.p)-r.off { // each string costs ≥ 4 bytes of length
			return r.corrupt("string column")
		}
		w.Strs = make([]string, n)
		for i := range w.Strs {
			if w.Strs[i], err = r.str("string column"); err != nil {
				return err
			}
		}
	}
	w.Nulls, err = r.bools("null column")
	return err
}

func decodeRecord(p []byte) (*walRecord, error) {
	r := &walReader{p: p}
	hdr, err := r.bytes(2, "header")
	if err != nil {
		return nil, err
	}
	if hdr[0] != walFormatV1 {
		return nil, fmt.Errorf("%w: unknown record format 0x%02x", wal.ErrCorruptWAL, hdr[0])
	}
	rec := &walRecord{Kind: hdr[1]}
	switch rec.Kind {
	case recStmt:
		if rec.Stmt, err = r.str("statement"); err != nil {
			return nil, err
		}
	case recIngest:
		if rec.Stream, err = r.str("stream name"); err != nil {
			return nil, err
		}
		nb, err := r.bytes(2, "column count")
		if err != nil {
			return nil, err
		}
		if ncols := int(binary.LittleEndian.Uint16(nb)); ncols > 0 {
			rec.Cols = make([]vector.Wire, ncols)
			for i := range rec.Cols {
				if err := r.wire(&rec.Cols[i]); err != nil {
					return nil, err
				}
			}
		}
	case recFrontier:
		if rec.Query, err = r.str("query name"); err != nil {
			return nil, err
		}
		cb, err := r.bytes(8, "frontier count")
		if err != nil {
			return nil, err
		}
		rec.Count = int64(binary.LittleEndian.Uint64(cb))
	default:
		return nil, fmt.Errorf("%w: unknown record kind 0x%02x", wal.ErrCorruptWAL, rec.Kind)
	}
	if r.off != len(p) {
		return nil, fmt.Errorf("%w: %d trailing bytes after record", wal.ErrCorruptWAL, len(p)-r.off)
	}
	return rec, nil
}
