// Streaming-join registration: the engine-side wiring that turns a
// continuous query with a JOIN into stateful incremental execution.
//
//   - A query with two basket expressions is a stream-stream join: one
//     factory (or one per shard, when both streams are co-partitioned on
//     the join key) holds symmetric hash state, so matches across
//     firings are found exactly once. JOIN ... ON ... WITHIN 'd' bounds
//     the state by event time.
//   - A query joining its stream with a table gets enrichment state: the
//     table side is materialized as a hash index rebuilt only when the
//     table's version moves. On a partitioned stream the table is
//     broadcast — each shard pipeline joins its stream subset against
//     the whole table and the emissions concatenate.
//
// Join shapes the streaming executor cannot run incrementally (non-equi,
// multi-way, windowed plans) keep the per-firing batch join.
package datacell

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/adapters"
	"repro/internal/basket"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/factory"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/window"
)

// planError surfaces catalog misses from planning as the engine's typed
// ErrUnknownStream, so callers can branch with errors.Is instead of
// parsing plan-layer messages.
func (e *Engine) planError(err error) error {
	if errors.Is(err, catalog.ErrNotFound) {
		return fmt.Errorf("%w: %v", ErrUnknownStream, err)
	}
	return err
}

// partitionLookup resolves a stream name to its partitioning spec — the
// lookup AnalyzeJoin uses to decide co-partitioned/broadcast execution.
func (e *Engine) partitionLookup(streamName string) (partition.Spec, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.streams[strings.ToLower(streamName)]
	if !ok || s.router == nil {
		return partition.Spec{}, false
	}
	return s.router.Spec(), true
}

// streamTableJoinBuilder recognizes a single two-way equi-join of the
// query's stream with a registered table and returns a constructor for
// per-pipeline enrichment state; nil means the query keeps per-firing
// join evaluation (no join, unsupported shape, windowed plan, or a
// chained-basket input).
func (e *Engine) streamTableJoinBuilder(p plan.Node, sel *sql.SelectStmt, streamName string, chained bool) func() (*exec.StreamJoin, error) {
	if sel.Window != nil || chained {
		return nil
	}
	shape := partition.InspectJoin(p)
	if shape.Joins != 1 {
		return nil
	}
	var side byte
	var tableChild plan.Node
	switch {
	case shape.LeftStream != nil && strings.EqualFold(shape.LeftStream.Source, streamName) && shape.RightTablesOnly:
		side, tableChild = 'L', shape.Join.R
	case shape.RightStream != nil && strings.EqualFold(shape.RightStream.Source, streamName) && shape.LeftTablesOnly:
		side, tableChild = 'R', shape.Join.L
	default:
		return nil
	}
	scans := collectScans(tableChild)
	if len(scans) != 1 {
		return nil
	}
	e.mu.Lock()
	tbl := e.tables[strings.ToLower(scans[0].Source)]
	e.mu.Unlock()
	if tbl == nil {
		return nil
	}
	node := shape.Join
	if _, err := exec.NewStreamTableJoin(node, side, tbl.Version); err != nil {
		// Non-equi (or otherwise unsupported) shape: per-firing evaluation
		// stays correct, just without cached state.
		return nil
	}
	return func() (*exec.StreamJoin, error) {
		return exec.NewStreamTableJoin(node, side, tbl.Version)
	}
}

func collectScans(n plan.Node) []*plan.Scan {
	var out []*plan.Scan
	plan.Walk(n, func(n plan.Node) {
		if sc, ok := n.(*plan.Scan); ok {
			out = append(out, sc)
		}
	})
	return out
}

// registerStreamStream installs a continuous query whose two basket
// expressions join two streams. The single factory (or one per shard
// when co-partitioned) holds symmetric hash state and fires when either
// side has arrivals.
func (e *Engine) registerStreamStream(name, text string, sel *sql.SelectStmt, streamNames []string, cfg queryConfig) (*Query, error) {
	key := strings.ToLower(name)
	a, b := streamNames[0], streamNames[1]
	if strings.EqualFold(a, b) {
		return nil, fmt.Errorf("%w: %q; a stream-stream join needs two distinct streams", ErrSelfJoin, a)
	}
	if sel.Window != nil {
		return nil, fmt.Errorf("%w: WINDOW over a stream-stream join; bound the join with JOIN ... WITHIN instead", ErrUnsupportedJoin)
	}
	e.mu.Lock()
	_, okA := e.streams[strings.ToLower(a)]
	_, okB := e.streams[strings.ToLower(b)]
	e.mu.Unlock()
	if !okA {
		return nil, fmt.Errorf("%w: %q", ErrUnknownStream, a)
	}
	if !okB {
		return nil, fmt.Errorf("%w: %q", ErrUnknownStream, b)
	}

	// The timestamp = col option is resolved at plan time, so the WITHIN
	// band, state expiry, and column pruning all agree on the event-time
	// columns.
	p, err := plan.BuildWithEventTime(sel, e.cat, cfg.tsCol)
	if err != nil {
		return nil, e.planError(err)
	}
	shape := partition.InspectJoin(p)
	if shape.Joins != 1 || shape.LeftStream == nil || shape.RightStream == nil {
		return nil, fmt.Errorf("%w: stream-stream queries support exactly one two-way JOIN", ErrUnsupportedJoin)
	}
	if (cfg.lateness != 0 || cfg.tsCol != "") && shape.Join.Within == 0 {
		return nil, fmt.Errorf("%w: lateness/timestamp on a join need a JOIN ... WITHIN bound", ErrInvalidOption)
	}
	if cfg.lateness < 0 {
		return nil, fmt.Errorf("%w: negative lateness", ErrInvalidOption)
	}
	buildState := func() (*exec.StreamJoin, error) {
		sj, err := exec.NewSymmetricJoin(shape.Join, cfg.lateness)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrUnsupportedJoin, err)
		}
		return sj, nil
	}
	// Validate the join shape and options once, before any state is
	// published.
	if _, err := buildState(); err != nil {
		return nil, err
	}

	lSrc, rSrc := shape.LeftStream.Source, shape.RightStream.Source
	e.mu.Lock()
	sL := e.streams[strings.ToLower(lSrc)]
	sR := e.streams[strings.ToLower(rSrc)]
	e.mu.Unlock()
	if sL == nil || sR == nil {
		return nil, fmt.Errorf("%w: join scans %q and %q must both be streams", ErrUnknownStream, lSrc, rSrc)
	}

	// Co-partitioned path: both streams hash-sharded on the join key with
	// one shard count — shard i joins lSrc#i with rSrc#i, concat merge.
	if cfg.shedAt == 0 {
		if an := partition.AnalyzeJoin(p, e.partitionLookup); an.OK && !an.Broadcast {
			return e.registerPartitionedJoin(name, text, p, an, sL, sR, lSrc, rSrc, cfg, buildState)
		}
	}

	// Flat path: one symmetric factory over both streams' baskets.
	var replicas []*basket.Basket
	mkInput := func(s *stream, src string, idx int) factory.Input {
		if cfg.strategy == SharedBaskets {
			return factory.Input{Basket: s.primary, Mode: factory.Shared, ReaderID: name, Bind: src}
		}
		replica := basket.New(fmt.Sprintf("%s_in%d", name, idx), s.schema, e.clock)
		if cfg.shedAt > 0 {
			replica.SetCapacity(cfg.shedAt)
		}
		e.mu.Lock()
		// Copy-on-write (see registerParsed).
		s.replicas = append(append([]*basket.Basket(nil), s.replicas...), replica)
		e.mu.Unlock()
		replicas = append(replicas, replica)
		return factory.Input{Basket: replica, Mode: factory.Owned, Bind: src}
	}
	inL := mkInput(sL, lSrc, 0)
	inR := mkInput(sR, rSrc, 1)
	rollback := func(dropOut bool) {
		e.mu.Lock()
		for _, pair := range []struct {
			s *stream
			r factory.Input
		}{{sL, inL}, {sR, inR}} {
			if pair.r.Mode != factory.Owned {
				continue
			}
			next := make([]*basket.Basket, 0, len(pair.s.replicas))
			for _, r := range pair.s.replicas {
				if r != pair.r.Basket {
					next = append(next, r)
				}
			}
			pair.s.replicas = next
		}
		e.mu.Unlock()
		if dropOut {
			_ = e.cat.Drop(name + "_out")
		}
	}

	out := basket.New(name+"_out", p.Schema(), e.clock)
	if err := e.cat.Register(name+"_out", catalog.KindBasket, out); err != nil {
		rollback(false)
		return nil, fmt.Errorf("%w: %q", ErrDuplicateName, name+"_out")
	}
	sj, err := buildState()
	if err != nil {
		rollback(true)
		return nil, err
	}
	fact, err := factory.New(name, p, e.cat,
		[]factory.Input{inL, inR}, []factory.Sink{out},
		factory.WithMinTuples(cfg.minTuples),
		factory.WithClock(e.clock),
		factory.WithStreamJoin(sj))
	if err != nil {
		rollback(true)
		return nil, err
	}

	q := &Query{
		Name:     name,
		SQL:      text,
		Strategy: cfg.strategy,
		streams:  []string{lSrc, rSrc},
		facts:    []*factory.Factory{fact},
		out:      out,
		replicas: replicas,
		engine:   e,
	}
	if cfg.subDepth > 0 {
		emitter := adapters.NewChannelEmitter(name+"_emit", out, cfg.subDepth, cfg.policy)
		q.sub = newSubscription(e, emitter)
	}
	e.mu.Lock()
	e.queries[key] = q
	e.mu.Unlock()
	e.installQuery(q, cfg)
	return q, nil
}

// registerPartitionedJoin installs a co-partitioned stream-stream join:
// per shard one symmetric-join factory over the two streams' matching
// shard baskets, emissions concatenated into <name>_out. All shard
// states share one clock per side, so expiry tracks the whole stream's
// progress rather than one shard's subsequence.
func (e *Engine) registerPartitionedJoin(name, text string, p plan.Node, an partition.JoinAnalysis, sL, sR *stream, lSrc, rSrc string, cfg queryConfig, buildState func() (*exec.StreamJoin, error)) (*Query, error) {
	key := strings.ToLower(name)
	out := basket.New(name+"_out", p.Schema(), e.clock)
	if err := e.cat.Register(name+"_out", catalog.KindBasket, out); err != nil {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateName, name+"_out")
	}
	unregister := func(upTo int) {
		for i := 0; i < upTo; i++ {
			_ = e.cat.Drop(fmt.Sprintf("%s_out#%d", name, i))
		}
		_ = e.cat.Drop(name + "_out")
	}

	n := an.Shards
	lClock, rClock := window.NewWatermarkGroup(), window.NewWatermarkGroup()
	latency := obs.NewHistogram()
	facts := make([]*factory.Factory, 0, n)
	tails := make([]*partition.Tail, 0, n)
	fail := func(i int, err error) (*Query, error) {
		unregister(i)
		for _, done := range facts {
			done.Close()
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		so := partition.NewTail(fmt.Sprintf("%s_out#%d", name, i), p.Schema(), tailRingBatches, e.clock)
		if err := e.cat.RegisterShard(so.Name(), catalog.KindBasket, so, name+"_out", i); err != nil {
			return fail(i, fmt.Errorf("%w: %q", ErrDuplicateName, so.Name()))
		}
		sj, err := buildState()
		if err != nil {
			return fail(i+1, err)
		}
		sj.ShareClocks(lClock, rClock)
		inL := factory.Input{Basket: sL.shards[i], Mode: factory.Shared, ReaderID: name, Bind: lSrc}
		inR := factory.Input{Basket: sR.shards[i], Mode: factory.Shared, ReaderID: name, Bind: rSrc}
		f, err := factory.New(fmt.Sprintf("%s#%d", name, i), p, e.cat,
			[]factory.Input{inL, inR}, []factory.Sink{so},
			factory.WithMinTuples(cfg.minTuples),
			factory.WithClock(e.clock),
			factory.WithLatency(latency),
			factory.WithStreamJoin(sj))
		if err != nil {
			return fail(i+1, err)
		}
		facts = append(facts, f)
		tails = append(tails, so)
	}
	merge := partition.NewMerge(name+"_merge", "", tails, out, nil, e.cat)

	q := &Query{
		Name:     name,
		SQL:      text,
		Strategy: cfg.strategy,
		streams:  []string{lSrc, rSrc},
		facts:    facts,
		merge:    merge,
		out:      out,
		shardIns: append(append([]*basket.Basket(nil), sL.shards...), sR.shards...),
		tails:    tails,
		engine:   e,
	}
	if cfg.subDepth > 0 {
		emitter := adapters.NewChannelEmitter(name+"_emit", out, cfg.subDepth, cfg.policy)
		q.sub = newSubscription(e, emitter)
	}
	e.mu.Lock()
	e.queries[key] = q
	sL.shardReaders++
	sR.shardReaders++
	e.mu.Unlock()
	e.installQuery(q, cfg)
	return q, nil
}
