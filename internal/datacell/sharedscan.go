package datacell

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/adapters"
	"repro/internal/basket"
	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/route"
	"repro/internal/scheduler"
	"repro/internal/storage"
)

// sharedScan is the shared routing layer of the routed-scan strategy:
// one scheduler transition per stream that consumes the primary basket
// exactly once per firing on behalf of every routed query registered on
// the stream. Each firing takes one chunk-view snapshot of the unseen
// suffix, advances the single shared reader frontier (so the basket
// compacts at O(one reader) instead of O(queries)), pushes the batch
// through the predicate index, and evaluates each matched plan group
// once — fanning the group's result out to its member queries' output
// baskets. Queries whose predicates cannot match the batch cost nothing.
//
// Concurrency: regMu serializes membership changes (attach/detach and
// predicate-index writes); fireMu serializes firings and doubles as the
// drop fence — detach cycles it after unpublishing a member, so no
// in-flight firing can still reach a dropped query's output basket. The
// firing path itself reads membership through atomics only (the
// copy-on-write members slice and the index's snapshot pointer), so
// registration never blocks routing.
type sharedScan struct {
	eng     *Engine
	stream  string
	source  string // lower-cased exec.Context override key
	name    string // scheduler transition name + basket reader id
	primary *basket.Basket
	idx     *route.Index
	h       *scheduler.Handle
	subID   uint64

	dirty  atomic.Bool
	closed atomic.Bool

	// fireMu (lock level 46) is held for the whole firing; see above.
	fireMu  sync.Mutex
	scratch []any // matched-group buffer, reused across firings (under fireMu)

	// regMu (lock level 44) guards groups/nextID and all writes to
	// memberCount and the members slices.
	regMu  sync.Mutex
	groups map[string]*scanGroup // by plan fingerprint

	nextID      uint64
	memberCount atomic.Int64
	consumed    atomic.Int64 // OID one past the newest consumed batch
	batches     atomic.Int64
	rows        atomic.Int64
}

// scanGroup is one shared subplan: every routed query whose compiled
// plan fingerprints identically shares one evaluation per firing.
type scanGroup struct {
	id          uint64
	fingerprint string
	node        plan.Node  // non-consuming clone of the shared plan
	pred        route.Pred // routing anchor, for EXPLAIN
	members     atomic.Pointer[[]*scanMember]
	evals       atomic.Int64
}

// scanMember is one routed query's attachment point: its output basket
// plus per-query counters so SHOW QUERIES / EXPLAIN ANALYZE / metrics
// stay per-query under sharing.
type scanMember struct {
	name      string
	out       *basket.Basket
	joinSeq   bat.OID // deliver only batches starting at or after this OID
	firings   atomic.Int64
	tuplesIn  atomic.Int64
	tuplesOut atomic.Int64
	latency   *obs.Histogram
}

// routedQuery ties a Query to its shared-scan attachment.
type routedQuery struct {
	scan   *sharedScan
	group  *scanGroup
	member *scanMember
}

// scanGen disambiguates scan incarnations: a stream whose last routed
// query is dropped and which then gains a new one must not reuse the
// torn-down transition's scheduler name or reader id.
var scanGen atomic.Uint64

// routedInfo is the outcome of routedPlanInfo: the shareable plan and
// the routing predicate in stream-schema column space.
type routedInfo struct {
	node plan.Node
	pred expr.Expr
}

// routedPlanInfo decides routed-scan eligibility from the plan shape:
// any chain of Project/Select nodes over exactly one consume-all scan of
// the stream. A filtered scan (predicate-window retention keeps
// non-matching tuples buffered) is incompatible with the shared frontier,
// and stateful operators (windows, joins, aggregates) are per-query. The
// returned plan is a clone with Consuming cleared — the shared frontier
// already consumed the batch — and the returned predicate is the
// conjunction of the Select filters remapped through the scan's column
// projection into stream-schema space for the predicate index.
func routedPlanInfo(p plan.Node, streamName string) (routedInfo, bool) {
	var scan *plan.Scan
	var preds []expr.Expr
	ok := true
	// clone additionally reports whether the subtree contains a Project:
	// a Select with no Project below it reads the scan's output frame, so
	// its predicate is routable; above a Project the column indexes are in
	// the projected frame and the predicate (conservatively) stays
	// plan-only.
	var clone func(n plan.Node) (plan.Node, bool)
	clone = func(n plan.Node) (plan.Node, bool) {
		switch t := n.(type) {
		case *plan.Project:
			c := *t
			c.Child, _ = clone(t.Child)
			return &c, true
		case *plan.Select:
			c := *t
			var projected bool
			c.Child, projected = clone(t.Child)
			if !projected {
				preds = append(preds, t.Pred)
			}
			return &c, projected
		case *plan.Scan:
			if scan != nil {
				ok = false
				return t, false
			}
			scan = t
			c := *t
			c.Consuming = false
			return &c, false
		default:
			ok = false
			return n, false
		}
	}
	node, _ := clone(p)
	if !ok || scan == nil || !scan.Consuming || scan.Filter != nil ||
		!strings.EqualFold(scan.Source, streamName) {
		return routedInfo{}, false
	}
	pred := expr.JoinConjuncts(preds)
	if pred != nil {
		mapping := make(map[int]int, len(scan.Cols))
		for i, src := range scan.Cols {
			mapping[i] = src
		}
		pred = expr.Remap(pred, mapping)
	}
	return routedInfo{node: node, pred: pred}, true
}

// registerRouted installs a continuous query on the stream's shared
// scan: no private replica, no per-query factory — just a membership in
// a plan group (created on first use) plus the usual output basket and
// subscription emitter.
func (e *Engine) registerRouted(name, text, streamName string, s *stream, info routedInfo, cfg queryConfig) (*Query, error) {
	key := strings.ToLower(name)
	out := basket.New(name+"_out", info.node.Schema(), e.clock)
	if err := e.cat.Register(name+"_out", catalog.KindBasket, out); err != nil {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateName, name+"_out")
	}
	sc, g, m := e.attachRouted(s, name, info, out, cfg.priority)
	q := &Query{
		Name:     name,
		SQL:      text,
		Strategy: RoutedScan,
		streams:  []string{streamName},
		out:      out,
		engine:   e,
		routed:   &routedQuery{scan: sc, group: g, member: m},
	}
	if cfg.subDepth > 0 {
		emitter := adapters.NewChannelEmitter(name+"_emit", out, cfg.subDepth, cfg.policy)
		q.sub = newSubscription(e, emitter)
	}
	e.mu.Lock()
	e.queries[key] = q
	e.mu.Unlock()
	e.installQuery(q, cfg)
	return q, nil
}

// attachRouted joins the stream's shared scan (creating it on first
// use), retrying when it loses the race against a concurrent teardown of
// the scan's last member.
func (e *Engine) attachRouted(s *stream, name string, info routedInfo, out *basket.Basket, priority int) (*sharedScan, *scanGroup, *scanMember) {
	for {
		sc := e.ensureScan(s, priority)
		if g, m, ok := sc.addMember(name, info, out); ok {
			return sc, g, m
		}
	}
}

// ensureScan returns the stream's live shared scan, creating (or
// replacing a closed) one under e.mu.
func (e *Engine) ensureScan(s *stream, priority int) *sharedScan {
	e.mu.Lock()
	defer e.mu.Unlock()
	if s.scan != nil && !s.scan.closed.Load() {
		return s.scan
	}
	sc := &sharedScan{
		eng:     e,
		stream:  s.name,
		source:  strings.ToLower(s.name),
		name:    fmt.Sprintf("~scan:%s#%d", s.name, scanGen.Add(1)),
		primary: s.primary,
		idx:     route.NewIndex(),
		groups:  map[string]*scanGroup{},
	}
	sc.consumed.Store(int64(s.primary.Hseq()))
	s.primary.RegisterReader(sc.name)
	sc.h = e.addTransition(sc, priority)
	e.observeScan(sc)
	sc.subID = s.primary.Subscribe(func() {
		sc.dirty.Store(true)
		sc.h.Wake()
	})
	// Catch any backlog already buffered for other shared readers.
	sc.dirty.Store(true)
	sc.h.Wake()
	s.scan = sc
	return sc
}

// addMember attaches a query to its plan group, creating the group (and
// its predicate-index entry) when this fingerprint is new. Returns
// ok=false when the scan was concurrently closed.
func (sc *sharedScan) addMember(name string, info routedInfo, out *basket.Basket) (*scanGroup, *scanMember, bool) {
	fp := plan.Explain(info.node)
	sc.regMu.Lock()
	defer sc.regMu.Unlock()
	if sc.closed.Load() {
		return nil, nil, false
	}
	// Publish under fireMu (regMu 44 < fireMu 46): with no firing in
	// flight, the consumed frontier cannot advance between the joinSeq
	// read and the member/group publication, so the first batch the
	// member's joinSeq admits is one a later firing will actually deliver.
	// Without the fence, an in-flight Fire could advance the frontier and
	// load the membership after joinSeq was read but before the member was
	// published — the member would permanently miss a batch its joinSeq
	// says it covers, with no replay possible.
	sc.fireMu.Lock()
	defer sc.fireMu.Unlock()
	g := sc.groups[fp]
	if g == nil {
		g = &scanGroup{
			id:          sc.nextID,
			fingerprint: fp,
			node:        info.node,
			pred:        route.Analyze(info.pred),
		}
		sc.nextID++
		none := []*scanMember{}
		g.members.Store(&none)
		sc.groups[fp] = g
		sc.idx.Add(g.id, g.pred, g)
	}
	m := &scanMember{
		name:    name,
		out:     out,
		joinSeq: bat.OID(sc.consumed.Load()),
		latency: obs.NewHistogram(),
	}
	cur := *g.members.Load()
	next := make([]*scanMember, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = m
	g.members.Store(&next)
	sc.memberCount.Add(1)
	return g, m, true
}

// dropRouted detaches a routed query: unpublish the member (and its
// group, when it was the last member) under regMu, cycle the fire mutex
// as the drop fence, and — when the scan lost its last member — close
// and tear the scan transition down.
func (e *Engine) dropRouted(q *Query) {
	r := q.routed
	sc := r.scan
	sc.regMu.Lock()
	cur := *r.group.members.Load()
	next := make([]*scanMember, 0, len(cur))
	for _, m := range cur {
		if m != r.member {
			next = append(next, m)
		}
	}
	r.group.members.Store(&next)
	if len(next) == 0 {
		sc.idx.Remove(r.group.id)
		delete(sc.groups, r.group.fingerprint)
	}
	last := sc.memberCount.Add(-1) == 0
	if last {
		// No member can attach past this point: addMember checks closed
		// under regMu.
		sc.closed.Store(true)
	}
	sc.regMu.Unlock()
	sc.fireMu.Lock()
	//lint:ignore SA2001 drop fence: cycling the firing mutex guarantees any in-flight firing that captured the old membership snapshot has finished before the caller tears the query's baskets down.
	sc.fireMu.Unlock()
	if !last {
		return
	}
	e.mu.Lock()
	if s := e.streams[sc.source]; s != nil && s.scan == sc {
		s.scan = nil
	}
	e.mu.Unlock()
	e.sched.Remove(sc.name)
	sc.primary.Unsubscribe(sc.subID)
	sc.primary.UnregisterReader(sc.name)
}

// Name implements scheduler.Transition.
func (sc *sharedScan) Name() string { return sc.name }

// Ready implements scheduler.Transition.
func (sc *sharedScan) Ready() bool { return sc.dirty.Load() }

// Fire implements scheduler.Transition: consume the unseen suffix of
// the primary basket once, route it, and fan shared evaluation results
// out to the matched members.
func (sc *sharedScan) Fire() error {
	sc.fireMu.Lock()
	defer sc.fireMu.Unlock()
	sc.dirty.Store(false)
	sc.idx.FlushIfDirty()

	b := sc.primary
	b.Lock()
	// UnseenLocked returns (offset, total rows): off rows of the snapshot
	// were already consumed by this reader (another shared reader on the
	// primary can retain a prefix this scan has seen), the unseen suffix
	// is rows [off, n).
	off, n := b.UnseenLocked(sc.name)
	unseen := n - off
	if unseen == 0 {
		b.Unlock()
		return nil
	}
	view, _ := b.LockedSnapshot()
	hseq := b.LockedHseq()
	base := hseq + bat.OID(off)
	batch := view.Slice(off, n)
	// Advance the shared frontier before evaluation: chunk snapshots are
	// immutable, so the views stay valid after the prefix compacts.
	b.LockedSetMark(sc.name, hseq+bat.OID(n))
	b.Unlock()
	sc.consumed.Store(int64(hseq) + int64(n))
	sc.batches.Add(1)
	sc.rows.Add(int64(unseen))

	matched := sc.idx.Match(batch, sc.scratch[:0])
	sc.scratch = matched[:0]

	e := sc.eng
	var delivered int64
	var groupEvals int64
	var firstErr error
	for _, p := range matched {
		g := p.(*scanGroup)
		members := *g.members.Load()
		active := 0
		for _, m := range members {
			if m.joinSeq <= base {
				active++
			}
		}
		if active == 0 {
			continue
		}
		t0 := e.clock.Now()
		rel, err := sc.evalGroup(g, batch)
		g.evals.Add(1)
		groupEvals++
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("routed scan %s: %w", sc.stream, err)
		}
		outRows := 0
		if err == nil && len(rel.Cols) > 0 {
			outRows = rel.Cols[0].Len()
		}
		for _, m := range members {
			if m.joinSeq > base {
				continue // registered after this batch was consumed
			}
			delivered++
			m.firings.Add(1)
			m.tuplesIn.Add(int64(unseen))
			if err != nil {
				continue
			}
			if outRows > 0 {
				// Fresh Relation header per member: the basket append
				// copies values, so the column vectors are shared safely.
				if aerr := m.out.AppendRelation(&storage.Relation{Schema: rel.Schema, Cols: rel.Cols}); aerr != nil && firstErr == nil {
					firstErr = aerr
				}
				m.tuplesOut.Add(int64(outRows))
			}
			m.latency.Observe(e.clock.Now() - t0)
		}
	}
	if o := e.obs; o != nil {
		o.routeBatches.Inc()
		o.routeMatched.Add(delivered)
		if skipped := sc.memberCount.Load() - delivered; skipped > 0 {
			o.routeSkipped.Add(skipped)
		}
		o.routeEvals.Add(groupEvals)
	}
	return firstErr
}

// evalGroup runs the group's shared plan over the batch view.
func (sc *sharedScan) evalGroup(g *scanGroup, batch bat.View) (*storage.Relation, error) {
	ctx := exec.NewContext(sc.eng.cat)
	ctx.Overrides[sc.source] = batch
	return exec.Run(g.node, ctx)
}

// observeScan feeds the scan transition's firings into the fire-stage
// latency histograms (per-query trace rings get their deliver stage from
// the members' own emitters).
func (e *Engine) observeScan(sc *sharedScan) {
	if e.obs == nil {
		return
	}
	fireH, queueH := e.obs.fireNS[stageFire], e.obs.queueNS[stageFire]
	sc.h.Observe(func(queueNS, fireNS int64, err error) {
		fireH.Observe(fireNS)
		if queueNS > 0 {
			queueH.Observe(queueNS)
		}
	})
}

// groupCount returns the number of live plan groups (diagnostics).
func (sc *sharedScan) groupCount() int {
	sc.regMu.Lock()
	defer sc.regMu.Unlock()
	return len(sc.groups)
}
